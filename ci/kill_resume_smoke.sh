#!/usr/bin/env bash
# Kill -9 / resume smoke for the checkpoint layer (engine/checkpoint.h).
#
# Three runs of examples/ckpt_train.cpp on the same deterministic config:
#
#   1. Uninterrupted: 6 epochs, per-epoch checkpoints. Records the CRC32C
#      digest of the final (params, Adam moments, step count) state.
#   2. Killed: same flags, but HONGTU_FAULT_SPEC raises SIGKILL mid-write of
#      the third epoch's snapshot (skip=32: two complete 14-section saves
#      for the 2-layer GCN = 28 pokes, then 4 sections into save 3). That
#      lands in the rotation crash window — the epoch-2 snapshot has already
#      been rotated to ckpt.prev.htck and the new primary is a dangling
#      .tmp — so the resume must fall back to the previous snapshot.
#   3. Resumed: same flags, no fault. Must restart from epoch 2 and finish
#      with a digest bitwise-identical to run 1.
#
# Usage: ci/kill_resume_smoke.sh <path-to-ckpt_train-binary>
set -u

BIN=${1:?usage: kill_resume_smoke.sh <ckpt_train binary>}
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT
mkdir -p "$WORK/ref" "$WORK/kill"
FLAGS=(--epochs=6 --every=1 --scale=0.2)

echo "== run 1: uninterrupted =="
"$BIN" --dir="$WORK/ref" "${FLAGS[@]}" | tee "$WORK/ref.log"
REF_DIGEST=$(grep '^state digest:' "$WORK/ref.log" | awk '{print $3}')

echo "== run 2: killed mid-checkpoint (epoch 3) =="
HONGTU_FAULT_SPEC=ckpt.write:kill:1:0:1:32 \
  "$BIN" --dir="$WORK/kill" "${FLAGS[@]}" && {
    echo "FAIL: killed run exited normally (fault did not fire)"; exit 1; }
STATUS=$?
if [ "$STATUS" -ne 137 ]; then
  echo "FAIL: expected SIGKILL (exit 137), got $STATUS"
  exit 1
fi
if [ ! -f "$WORK/kill/ckpt.prev.htck" ]; then
  echo "FAIL: expected rotated previous snapshot after mid-write kill"
  exit 1
fi
if [ -f "$WORK/kill/ckpt.htck" ]; then
  echo "FAIL: primary snapshot exists despite kill mid-write (atomic rename broken?)"
  exit 1
fi

echo "== run 3: resume =="
"$BIN" --dir="$WORK/kill" "${FLAGS[@]}" | tee "$WORK/resume.log"
RES_DIGEST=$(grep '^state digest:' "$WORK/resume.log" | awk '{print $3}')
RESUMED_FROM=$(grep '^epochs run:' "$WORK/resume.log" | sed 's/.*resumed from \([0-9]*\).*/\1/')

if [ "$RESUMED_FROM" -eq 0 ]; then
  echo "FAIL: resume started from scratch instead of a snapshot"
  exit 1
fi
if [ "$REF_DIGEST" != "$RES_DIGEST" ]; then
  echo "FAIL: digest mismatch: uninterrupted=$REF_DIGEST resumed=$RES_DIGEST"
  exit 1
fi
echo "PASS: resumed from epoch $RESUMED_FROM, digest $RES_DIGEST matches uninterrupted run"
