#!/usr/bin/env bash
# Bounded chaos-soak CI leg for the intra-epoch recovery layer.
#
# Runs the seeded multi-fault scenario battery (bench/chaos_soak.cc) at a
# small dataset scale so the whole battery fits a CI budget (~60s): every
# scenario — mid-epoch kills against each recovery rung, a kill during an
# in-flight recovery, repeated kills, drop/delay/disconnect/corruption
# storms, checkpoint faults, and the coordinator crash domain (coordinator
# crash mid-epoch with successor takeover from the write-ahead cluster
# journal, crash during an in-flight worker recovery, coordinator+worker
# double kill, and a corrupted journal degrading to the checkpoint-fallback
# rung) — must end bitwise-identical to the clean run.
# The recovery-latency <50% assertion is also enabled: the coordinator's
# death-to-resume stall must stay under half of what the epoch-restart
# ladder pays to rerun the epoch, and the successor's adopted epoch must
# finish below a full epoch-0 rerun.
#
# Usage: ci/chaos_soak.sh <chaos_soak binary> [scale] [report.json]

set -euo pipefail

BIN="${1:?usage: ci/chaos_soak.sh <chaos_soak binary> [scale] [report.json]}"
SCALE="${2:-0.04}"
REPORT="${3:-BENCH_chaos_ci.json}"

echo "== chaos soak (scale ${SCALE}, report ${REPORT}) =="
"${BIN}" --scale="${SCALE}" --report="${REPORT}" --assert-recovery-ratio

echo "== chaos soak OK =="
