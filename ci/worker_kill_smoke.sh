#!/usr/bin/env bash
# kill -9 a cluster worker mid-epoch; the run must recover in-flight and
# finish bitwise-identical to an unkilled run (net/cluster.h recovery
# ladder).
#
# Two runs of examples/dist_train.cpp on the same deterministic config:
#
#   1. Clean: 4 worker processes over the chosen transport, 3 epochs.
#      Records the CRC32C digest of the final (params, Adam moments, step
#      count) state.
#   2. Killed: same flags plus --kill-rank=1 --kill-epoch=1 — worker 1
#      raises SIGKILL between forward and backward of epoch 1. Unlike the
#      checkpoint smoke, the *coordinator process must survive*: it detects
#      the death (heartbeat/EOF) and recovers on the step rung — respawns
#      rank 1 and replays just its work in-epoch; the epoch must NOT abort
#      (no epoch_restart event). The run must exit 0, report >= 1 in-epoch
#      recovery, and end with the exact digest of run 1.
#
# Usage: ci/worker_kill_smoke.sh <path-to-dist_train-binary> [transport]
set -u

BIN=${1:?usage: worker_kill_smoke.sh <dist_train binary> [transport]}
TRANSPORT=${2:-uds}
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT
mkdir -p "$WORK/ref" "$WORK/kill"
FLAGS=(--workers=4 --transport="$TRANSPORT" --epochs=3 --scale=0.05)

echo "== run 1: clean ($TRANSPORT, 4 workers) =="
"$BIN" --dir="$WORK/ref" "${FLAGS[@]}" | tee "$WORK/ref.log"
STATUS=${PIPESTATUS[0]}
if [ "$STATUS" -ne 0 ]; then
  echo "FAIL: clean run exited $STATUS"
  exit 1
fi
REF_DIGEST=$(grep '^state digest:' "$WORK/ref.log" | awk '{print $3}')
if grep -q '^  \^ degraded epoch:' "$WORK/ref.log"; then
  echo "FAIL: clean run reported degraded epochs"
  exit 1
fi

echo "== run 2: worker 1 SIGKILLed mid-epoch 1 =="
"$BIN" --dir="$WORK/kill" "${FLAGS[@]}" --kill-rank=1 --kill-epoch=1 \
  | tee "$WORK/kill.log"
STATUS=${PIPESTATUS[0]}
if [ "$STATUS" -ne 0 ]; then
  echo "FAIL: killed run did not recover (exit $STATUS)"
  exit 1
fi
KILL_DIGEST=$(grep '^state digest:' "$WORK/kill.log" | awk '{print $3}')
RESPAWNS=$(grep '^worker respawns:' "$WORK/kill.log" | awk '{print $3}')

RECOVERIES=$(grep '^in-epoch recoveries:' "$WORK/kill.log" | awk '{print $3}')

if [ -z "$RESPAWNS" ] || [ "$RESPAWNS" -lt 1 ]; then
  echo "FAIL: expected >= 1 worker respawn, got '${RESPAWNS:-none}'"
  exit 1
fi
if [ -z "$RECOVERIES" ] || [ "$RECOVERIES" -lt 1 ]; then
  echo "FAIL: expected >= 1 in-epoch (step) recovery, got '${RECOVERIES:-none}'"
  exit 1
fi
if ! grep -q 'peer_death' "$WORK/kill.log"; then
  echo "FAIL: no peer_death recovery event in the killed run's output"
  exit 1
fi
if grep -q 'epoch_restart' "$WORK/kill.log"; then
  echo "FAIL: the step rung should recover in-epoch, but an epoch_restart fired"
  exit 1
fi
if [ -z "$REF_DIGEST" ] || [ -z "$KILL_DIGEST" ]; then
  echo "FAIL: missing state digest (ref='$REF_DIGEST' kill='$KILL_DIGEST')"
  exit 1
fi
if [ "$REF_DIGEST" != "$KILL_DIGEST" ]; then
  echo "FAIL: digest mismatch: clean=$REF_DIGEST killed=$KILL_DIGEST"
  exit 1
fi
echo "PASS: recovered after $RESPAWNS respawn(s), digest $KILL_DIGEST matches clean run"
