#!/usr/bin/env python3
"""Bench regression gate for the kernel layer.

Compares a fresh `micro_primitives --kernels-report` JSON against the
committed baseline (BENCH_kernels.json at the repo root) and fails when any
kernel regressed by more than the allowed fraction.

By default the gate compares the `speedup` field (blocked-backend throughput
normalized by the reference backend measured in the same process on the same
machine). Absolute B/s or FLOP/s numbers are useless across machines — a CI
runner is not the workstation that recorded the baseline — but the ratio
cancels the machine out, so a drop means the blocked kernel itself got
slower relative to the scalar loops it replaced. Pass --absolute to compare
raw `blocked_throughput` instead (only meaningful on the baseline machine).

Exit codes: 0 = no regression, 1 = regression or malformed input.
"""

import argparse
import json
import sys


def load_results(path):
    with open(path, "r", encoding="utf-8") as f:
        report = json.load(f)
    results = report.get("results")
    if not isinstance(results, list) or not results:
        raise ValueError(f"{path}: no 'results' array")
    out = {}
    for entry in results:
        name = entry.get("kernel")
        if not name:
            raise ValueError(f"{path}: result entry without 'kernel': {entry}")
        out[name] = entry
    return out


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="committed BENCH_kernels.json")
    parser.add_argument("current", help="freshly generated kernels report")
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.25,
        help="allowed fractional drop per kernel (default 0.25)",
    )
    parser.add_argument(
        "--absolute",
        action="store_true",
        help="compare blocked_throughput instead of machine-normalized speedup",
    )
    args = parser.parse_args()

    try:
        baseline = load_results(args.baseline)
        current = load_results(args.current)
    except (OSError, ValueError, json.JSONDecodeError) as e:
        print(f"ERROR: {e}", file=sys.stderr)
        return 1

    metric = "blocked_throughput" if args.absolute else "speedup"
    failures = []
    for name, base in sorted(baseline.items()):
        if name not in current:
            failures.append(f"{name}: missing from current report")
            continue
        base_v = base.get(metric)
        cur_v = current[name].get(metric)
        if not isinstance(base_v, (int, float)) or base_v <= 0:
            failures.append(f"{name}: baseline has no usable '{metric}'")
            continue
        if not isinstance(cur_v, (int, float)) or cur_v <= 0:
            failures.append(f"{name}: current report has no usable '{metric}'")
            continue
        change = cur_v / base_v - 1.0
        status = "OK"
        if change < -args.max_regression:
            status = "REGRESSION"
            failures.append(
                f"{name}: {metric} {base_v:.4g} -> {cur_v:.4g} "
                f"({change:+.1%}, limit -{args.max_regression:.0%})"
            )
        print(f"  {status:<10} {name:<40} {metric} {base_v:.4g} -> "
              f"{cur_v:.4g} ({change:+.1%})")

    for name in sorted(set(current) - set(baseline)):
        print(f"  NEW        {name} (not in baseline; not gated)")

    if failures:
        print("\nBench regression gate FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print(f"\nBench regression gate passed "
          f"({len(baseline)} kernels, limit -{args.max_regression:.0%}).")
    return 0


if __name__ == "__main__":
    sys.exit(main())
