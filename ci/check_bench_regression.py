#!/usr/bin/env python3
"""Bench regression gates for the kernel layer and the tensor pool.

Kernel mode (default): compares a fresh `micro_primitives --kernels-report`
JSON against the committed baseline (BENCH_kernels.json at the repo root) and
fails when any kernel regressed by more than the allowed fraction. Entries
are keyed on (kernel, threads) — the report records each kernel at a
single-thread tier and a pinned multi-thread tier, and the two must be gated
independently (a parallel-scaling regression must not hide behind a healthy
single-thread ratio).

By default the gate compares the `speedup` field (blocked-backend throughput
normalized by the reference backend measured in the same process on the same
machine) and, for rows that record it, the `banded_speedup` field (the
propagation-blocked EdgeSchedule path, same normalization) — each gated
independently, so losing the banded d64 win cannot hide behind a healthy
single-pass ratio. The codec_* rows (mixed-precision comm encode/decode/
decode-accumulate, kernels/codec.h) ride the same `speedup` gate: their
ratio is the `omp simd` path over the scalar reference loop. Absolute B/s or FLOP/s numbers are useless across
machines — a CI runner is not the workstation that recorded the baseline —
but the ratio cancels the machine out, so a drop means the kernel itself got
slower relative to the scalar loops it replaced. Pass --absolute to compare
raw `blocked_throughput`/`banded_throughput` instead (only meaningful on the
baseline machine).

Memory mode (--memory): compares `table1_memory` BENCH_memory.json reports,
keyed on `config`. The gate is on allocation-count growth: a config whose
`steady_alloc_count` grew over the baseline fails (the committed baseline
records 0 — zero heap allocations in steady-state epochs — so any growth
means someone put an allocation back on the chunk-loop hot path).
Wall-clock columns are printed for information but not gated (they are
machine-dependent).

Pipeline mode (--pipeline): compares `fig11_scalability` BENCH_pipeline.json
reports, keyed on (model, dataset). Two properties are gated. First, the
sim-time speedups over the serial executor (`speedup`, `taskgraph_speedup`,
`bf16_speedup`) must not drop more than --max-regression below the baseline:
the analytic simulator is deterministic and machine-independent, so a drop
means the executor's modeled schedule itself got worse. Second, the dataflow
task graph must beat or tie the stage pipeline at the same in-flight window
(`taskgraph_sim_s` <= --tie-tolerance * `pipelined_sim_s`): its cross-layer
edges can only release work the per-layer barrier serializes, so losing to
the pipeline means the emitted graph picked up a spurious constraint.

Exit codes: 0 = no regression, 1 = regression or malformed input.
"""

import argparse
import json
import sys


def load_results(path, key_fields):
    with open(path, "r", encoding="utf-8") as f:
        report = json.load(f)
    results = report.get("results")
    if not isinstance(results, list) or not results:
        raise ValueError(f"{path}: no 'results' array")
    out = {}
    for entry in results:
        key = tuple(entry.get(k) for k in key_fields)
        if key[0] is None:
            raise ValueError(
                f"{path}: result entry without '{key_fields[0]}': {entry}")
        out[key] = entry
    return out


def key_name(key):
    if len(key) == 1 or key[1] is None:
        return str(key[0])
    return f"{key[0]} (threads={key[1]})"


def check_kernels(args):
    baseline = load_results(args.baseline, ("kernel", "threads"))
    current = load_results(args.current, ("kernel", "threads"))
    if args.absolute:
        metrics = ("blocked_throughput", "banded_throughput")
    else:
        metrics = ("speedup", "banded_speedup")
    failures = []
    gated = 0
    for key, base in sorted(baseline.items()):
        name = key_name(key)
        if key not in current:
            failures.append(f"{name}: missing from current report")
            continue
        for metric in metrics:
            base_v = base.get(metric)
            if base_v is None and metric != metrics[0]:
                continue  # baseline row predates / lacks the banded column
            cur_v = current[key].get(metric)
            if not isinstance(base_v, (int, float)) or base_v <= 0:
                failures.append(f"{name}: baseline has no usable '{metric}'")
                continue
            if not isinstance(cur_v, (int, float)) or cur_v <= 0:
                failures.append(
                    f"{name}: current report has no usable '{metric}'")
                continue
            gated += 1
            change = cur_v / base_v - 1.0
            status = "OK"
            if change < -args.max_regression:
                status = "REGRESSION"
                failures.append(
                    f"{name}: {metric} {base_v:.4g} -> {cur_v:.4g} "
                    f"({change:+.1%}, limit -{args.max_regression:.0%})"
                )
            print(f"  {status:<10} {name:<44} {metric:<14} {base_v:.4g} -> "
                  f"{cur_v:.4g} ({change:+.1%})")

    for key in sorted(set(current) - set(baseline)):
        print(f"  NEW        {key_name(key)} (not in baseline; not gated)")

    if failures:
        print("\nBench regression gate FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print(f"\nBench regression gate passed ({gated} gated metrics over "
          f"{len(baseline)} kernels, limit -{args.max_regression:.0%}).")
    return 0


def check_memory(args):
    baseline = load_results(args.baseline, ("config",))
    current = load_results(args.current, ("config",))
    failures = []
    for key, base in sorted(baseline.items()):
        name = key_name(key)
        if key not in current:
            failures.append(f"{name}: missing from current report")
            continue
        cur = current[key]
        if "error" in base:
            print(f"  SKIP       {name} (baseline recorded an error)")
            continue
        if "error" in cur:
            failures.append(f"{name}: current run failed: {cur['error']}")
            continue
        base_allocs = base.get("steady_alloc_count")
        cur_allocs = cur.get("steady_alloc_count")
        if not isinstance(base_allocs, int) or not isinstance(cur_allocs, int):
            failures.append(f"{name}: missing steady_alloc_count")
            continue
        status = "OK"
        if cur_allocs > base_allocs + args.max_alloc_growth:
            status = "REGRESSION"
            failures.append(
                f"{name}: steady_alloc_count {base_allocs} -> {cur_allocs} "
                f"(allowed growth {args.max_alloc_growth})"
            )
        speed = cur.get("wall_speedup")
        speed_s = f"pool speedup {speed:.2f}x" if isinstance(
            speed, (int, float)) else ""
        print(f"  {status:<10} {name:<28} steady allocs {base_allocs} -> "
              f"{cur_allocs}  {speed_s}")

    for key in sorted(set(current) - set(baseline)):
        print(f"  NEW        {key_name(key)} (not in baseline; not gated)")

    if failures:
        print("\nMemory regression gate FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print(f"\nMemory regression gate passed ({len(baseline)} configs, "
          f"allowed alloc growth {args.max_alloc_growth}).")
    return 0


def check_pipeline(args):
    baseline = load_results(args.baseline, ("model", "dataset"))
    current = load_results(args.current, ("model", "dataset"))
    metrics = ("speedup", "taskgraph_speedup", "bf16_speedup")
    failures = []
    gated = 0
    for key, base in sorted(baseline.items()):
        name = f"{key[0]}/{key[1]}"
        if key not in current:
            failures.append(f"{name}: missing from current report")
            continue
        cur = current[key]
        if "error" in base:
            print(f"  SKIP       {name} (baseline recorded an error)")
            continue
        if "error" in cur:
            failures.append(f"{name}: current run failed: {cur['error']}")
            continue
        for metric in metrics:
            base_v = base.get(metric)
            if base_v is None:
                continue  # baseline row predates this column
            cur_v = cur.get(metric)
            if not isinstance(cur_v, (int, float)) or cur_v <= 0:
                failures.append(
                    f"{name}: current report has no usable '{metric}'")
                continue
            gated += 1
            change = cur_v / base_v - 1.0
            status = "OK"
            if change < -args.max_regression:
                status = "REGRESSION"
                failures.append(
                    f"{name}: {metric} {base_v:.4g} -> {cur_v:.4g} "
                    f"({change:+.1%}, limit -{args.max_regression:.0%})"
                )
            print(f"  {status:<10} {name:<28} {metric:<18} {base_v:.4g} -> "
                  f"{cur_v:.4g} ({change:+.1%})")
        # The executor-comparison acceptance property: the task graph must
        # beat or tie the stage pipeline at the same in-flight window.
        pipe_s = cur.get("pipelined_sim_s")
        tg_s = cur.get("taskgraph_sim_s")
        if isinstance(pipe_s, (int, float)) and isinstance(
                tg_s, (int, float)) and pipe_s > 0 and tg_s > 0:
            gated += 1
            ratio = tg_s / pipe_s
            status = "OK" if ratio <= args.tie_tolerance else "REGRESSION"
            if status == "REGRESSION":
                failures.append(
                    f"{name}: taskgraph_sim_s {tg_s:.4g} vs pipelined_sim_s "
                    f"{pipe_s:.4g} (ratio {ratio:.4f} > "
                    f"{args.tie_tolerance:.4g})"
                )
            print(f"  {status:<10} {name:<28} tg-vs-pipeline     "
                  f"ratio {ratio:.4f} (limit {args.tie_tolerance:.4g})")

    for key in sorted(set(current) - set(baseline)):
        print(f"  NEW        {key_name(key)} (not in baseline; not gated)")

    if failures:
        print("\nPipeline regression gate FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print(f"\nPipeline regression gate passed ({gated} gated metrics over "
          f"{len(baseline)} configs, limit -{args.max_regression:.0%}, "
          f"tie tolerance {args.tie_tolerance:.4g}).")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="committed baseline JSON")
    parser.add_argument("current", help="freshly generated report")
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.25,
        help="kernel mode: allowed fractional drop per kernel (default 0.25)",
    )
    parser.add_argument(
        "--absolute",
        action="store_true",
        help="kernel mode: compare blocked_throughput instead of speedup",
    )
    parser.add_argument(
        "--memory",
        action="store_true",
        help="gate BENCH_memory.json allocation counts instead of kernels",
    )
    parser.add_argument(
        "--max-alloc-growth",
        type=int,
        default=0,
        help="memory mode: allowed steady_alloc_count growth (default 0)",
    )
    parser.add_argument(
        "--pipeline",
        action="store_true",
        help="gate BENCH_pipeline.json executor speedups instead of kernels",
    )
    parser.add_argument(
        "--tie-tolerance",
        type=float,
        default=1.02,
        help="pipeline mode: allowed taskgraph/pipelined sim-time ratio "
        "(default 1.02)",
    )
    args = parser.parse_args()

    try:
        if args.memory:
            return check_memory(args)
        if args.pipeline:
            return check_pipeline(args)
        return check_kernels(args)
    except (OSError, ValueError, json.JSONDecodeError) as e:
        print(f"ERROR: {e}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
