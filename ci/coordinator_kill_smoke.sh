#!/usr/bin/env bash
# kill -9 the CLUSTER COORDINATOR mid-epoch; a second invocation with
# --resume must replay the write-ahead cluster journal, re-attach the
# surviving worker processes under a bumped term, adopt the in-flight
# epoch (the journaled done reports are NOT recomputed), and finish
# bitwise-identical to an unkilled run (net/cluster.h coordinator rungs:
# park -> re-attach -> journal replay -> checkpoint fallback).
#
# Three runs of examples/dist_train.cpp on the same deterministic config:
#
#   1. Clean: 3 epochs, records the CRC32C digest of the final (params,
#      Adam moments, step count) state.
#   2. Killed: same flags plus --coord-kill-epoch=1 — the coordinator
#      raises SIGKILL inside epoch 1, after every worker's done report is
#      fsynced into the cluster journal but BEFORE any ack or the Adam
#      apply. The process must die by SIGKILL (exit 137), leaving the
#      workers parked on their coordinator lease.
#   3. Resumed: same --dir plus --resume. The successor must re-attach
#      all workers (0 respawns: the originals survived), resume at epoch
#      1 — NOT epoch 0, proving the restart costs less than a full rerun
#      — finish without an epoch_restart, and end with run 1's digest.
#
# Usage: ci/coordinator_kill_smoke.sh <path-to-dist_train-binary> [transport]
set -u

BIN=${1:?usage: coordinator_kill_smoke.sh <dist_train binary> [transport]}
TRANSPORT=${2:-uds}
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT
mkdir -p "$WORK/ref" "$WORK/kill"
FLAGS=(--workers=2 --transport="$TRANSPORT" --epochs=3 --scale=0.05)

echo "== run 1: clean ($TRANSPORT, 2 workers) =="
"$BIN" --dir="$WORK/ref" "${FLAGS[@]}" | tee "$WORK/ref.log"
STATUS=${PIPESTATUS[0]}
if [ "$STATUS" -ne 0 ]; then
  echo "FAIL: clean run exited $STATUS"
  exit 1
fi
REF_DIGEST=$(grep '^state digest:' "$WORK/ref.log" | awk '{print $3}')

echo "== run 2: coordinator SIGKILLed mid-epoch 1 =="
"$BIN" --dir="$WORK/kill" "${FLAGS[@]}" --coord-kill-epoch=1 \
  > "$WORK/kill.log" 2>&1
STATUS=$?
if [ "$STATUS" -ne 137 ]; then
  echo "FAIL: expected the coordinator to die by SIGKILL (137), got $STATUS"
  cat "$WORK/kill.log"
  exit 1
fi

echo "== run 3: successor resumes from the journal =="
# 2>&1: the structured [RECOVERY] rung lines asserted below go to stderr.
"$BIN" --dir="$WORK/kill" "${FLAGS[@]}" --resume 2>&1 | tee "$WORK/resume.log"
STATUS=${PIPESTATUS[0]}
if [ "$STATUS" -ne 0 ]; then
  echo "FAIL: resumed run exited $STATUS"
  exit 1
fi
RES_DIGEST=$(grep '^state digest:' "$WORK/resume.log" | awk '{print $3}')
RESPAWNS=$(grep '^worker respawns:' "$WORK/resume.log" | awk '{print $3}')

if ! grep -q '^resumed at epoch 1 ' "$WORK/resume.log"; then
  echo "FAIL: successor did not resume at epoch 1 (full rerun or bad floor?)"
  exit 1
fi
if grep -q '^epoch 0:' "$WORK/resume.log"; then
  echo "FAIL: resumed run retrained epoch 0 — restart cost a full rerun"
  exit 1
fi
if [ -z "$RESPAWNS" ] || [ "$RESPAWNS" -ne 0 ]; then
  echo "FAIL: expected 0 respawns (survivors re-attach), got '${RESPAWNS:-none}'"
  exit 1
fi
if ! grep -q 'rung=journal_replay' "$WORK/resume.log"; then
  echo "FAIL: no journal_replay recovery event in the resumed run's output"
  exit 1
fi
if ! grep -q 'rung=coord_reattach' "$WORK/resume.log"; then
  echo "FAIL: no coord_reattach recovery event in the resumed run's output"
  exit 1
fi
if grep -q 'epoch_restart' "$WORK/resume.log"; then
  echo "FAIL: the adopted epoch should finish in-flight, but it restarted"
  exit 1
fi
if [ -z "$REF_DIGEST" ] || [ -z "$RES_DIGEST" ]; then
  echo "FAIL: missing state digest (ref='$REF_DIGEST' resume='$RES_DIGEST')"
  exit 1
fi
if [ "$REF_DIGEST" != "$RES_DIGEST" ]; then
  echo "FAIL: digest mismatch: clean=$REF_DIGEST resumed=$RES_DIGEST"
  exit 1
fi
echo "PASS: coordinator restart adopted the in-flight epoch, digest $RES_DIGEST matches clean run"
