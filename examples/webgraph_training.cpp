// Scenario: full-graph GCN training on a web graph that does NOT fit in
// device memory — the workload the paper's introduction motivates.
//
// Shows: memory-capacity-driven engine choice (the in-memory engine OOMs,
// HongTu completes), the communication-dedup ablation, and reading the
// Figure-9-style time breakdown from EpochStats.
//
// Build & run:  ./build/examples/webgraph_training

#include <cstdio>

#include "hongtu/common/format.h"
#include "hongtu/engine/engine.h"
#include "hongtu/graph/datasets.h"

using namespace hongtu;

int main() {
  auto dsr = LoadDatasetScaled("it-2004", 0.4);
  HT_CHECK_OK(dsr.status());
  const Dataset ds = dsr.MoveValueUnsafe();
  std::printf("web graph: %s\n", ds.graph.DebugString().c_str());

  ModelConfig cfg = ModelConfig::Make(GnnKind::kGcn, ds.feature_dim(),
                                      ds.default_hidden_dim, ds.num_classes,
                                      /*layers=*/3, /*seed=*/7);
  // A deliberately tight device budget: the all-in-GPU approach cannot hold
  // every layer's vertex + intermediate data.
  const int64_t capacity = 8ll << 20;

  EngineConfig imo;
  imo.num_devices = 4;
  imo.device_capacity_bytes = capacity;
  auto im = Engine::Create(EngineKind::kInMemory, &ds, cfg, imo);
  HT_CHECK_OK(im.status());
  auto im_run = im.ValueOrDie()->RunEpoch();
  std::printf("in-memory engine: %s\n",
              im_run.ok() ? "completed (unexpected!)"
                          : im_run.status().ToString().c_str());

  // HongTu with CPU offloading trains under the same budget. Compare the
  // three dedup levels (the Fig. 9 ablation).
  for (DedupLevel level :
       {DedupLevel::kNone, DedupLevel::kP2P, DedupLevel::kP2PReuse}) {
    EngineConfig o;
    o.num_devices = 4;
    o.chunks_per_partition = ds.default_chunks_gcn;
    o.device_capacity_bytes = capacity;
    o.dedup = level;
    o.reorganize = level != DedupLevel::kNone;
    auto engine = Engine::Create(EngineKind::kHongTu, &ds, cfg, o);
    HT_CHECK_OK(engine.status());
    auto r = engine.ValueOrDie()->RunEpoch();
    HT_CHECK_OK(r.status());
    const EpochStats& st = r.ValueOrDie();
    std::printf(
        "%-9s  sim %-8s  GPU %-8s H2D %-8s D2D %-8s CPU %-8s  peak %s\n",
        DedupLevelName(level), FormatSeconds(st.SimSeconds()).c_str(),
        FormatSeconds(st.time.gpu).c_str(),
        FormatSeconds(st.time.h2d).c_str(),
        FormatSeconds(st.time.d2d).c_str(),
        FormatSeconds(st.time.cpu).c_str(),
        FormatBytes(static_cast<double>(st.peak_device_bytes)).c_str());
  }
  std::printf("note: +P2P converts host traffic to NVLink; +RU removes it "
              "entirely for\nneighbors shared between adjacent batches "
              "(paper §5.1).\n");
  return 0;
}
