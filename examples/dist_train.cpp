// Real multi-process distributed training with crash recovery.
//
// Drives CpuClusterEngine in its multi-process mode: a coordinator forks one
// worker process per partition (re-exec'ing this binary with
// HONGTU_DIST_ROLE=worker), the workers train a GCN for real over the
// resilient RPC transport (net/transport.h), and the coordinator reduces
// gradients, steps Adam and checkpoints every epoch. Prints a CRC32C digest
// over the final weights and Adam moments.
//
// Because every distributed epoch is deterministic given its starting
// weights — transition fetches follow the owner-grouped dedup plan, gradient
// pushes apply in sender-rank order, and the coordinator reduces in rank
// order — a run where a worker is SIGKILLed mid-epoch (--kill-rank/
// --kill-epoch) recovers and finishes with a digest bitwise-identical to an
// unkilled run. The recovery rung is selectable: --recover-mode=step (the
// default: respawn the dead rank and replay just its work, the epoch never
// aborts), adopt (a survivor hosts the dead partition for the rest of the
// epoch), or epoch (abort + checkpoint restore + rerun).
// ci/worker_kill_smoke.sh asserts the digest identity.
//
// The coordinator itself is also a crash domain: --coord-kill-epoch=E makes
// it SIGKILL itself mid-epoch E (after the workers' done reports hit the
// write-ahead cluster journal, before any ack), and a second invocation with
// --resume + the same --dir replays the journal, re-attaches the surviving
// workers under a bumped term, adopts the in-flight epoch and finishes with
// the same bitwise-identical digest. ci/coordinator_kill_smoke.sh asserts
// it. --epochs is the TOTAL budget: a resumed run only trains the epochs
// the dead incarnation had not yet applied.
//
// Usage: ./build/examples/dist_train [--workers=4] [--transport=uds|tcp]
//          [--epochs=3] [--dataset=reddit] [--scale=0.05] [--chunks=2]
//          [--dir=/tmp/x] [--kill-rank=R --kill-epoch=E]
//          [--recover-mode=step|adopt|epoch]
//          [--coord-kill-epoch=E] [--resume]

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "hongtu/common/crc32c.h"
#include "hongtu/engine/cpu_cluster_engine.h"
#include "hongtu/engine/engine.h"
#include "hongtu/graph/datasets.h"
#include "hongtu/net/cluster.h"

using namespace hongtu;

namespace {

uint32_t TensorDigest(const Tensor& t, uint32_t crc) {
  return Crc32c(t.data(), static_cast<size_t>(t.rows() * t.cols()) * 4, crc);
}

uint32_t StateDigest(GnnModel* model, const Adam& adam) {
  uint32_t crc = 0;
  int i = 0;
  for (const Tensor* p : model->AllParams()) {
    crc = TensorDigest(*p, crc);
    crc = TensorDigest(adam.moment1(i), crc);
    crc = TensorDigest(adam.moment2(i), crc);
    ++i;
  }
  const int64_t t = adam.step_count();
  return Crc32c(&t, sizeof(t), crc);
}

}  // namespace

int main(int argc, char** argv) {
  // Must run before anything else: under HONGTU_DIST_ROLE=worker this
  // process IS a cluster worker and never reaches the coordinator code.
  net::MaybeRunClusterWorker();

  std::string dataset = "reddit";
  std::string transport = "uds";
  std::string recover_mode = "step";
  std::string dir;
  double scale = 0.05;
  int workers = 4;
  int epochs = 3;
  int chunks = 2;
  int kill_rank = -1;
  long long kill_epoch = -1;
  long long coord_kill_epoch = -1;
  bool resume = false;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strncmp(a, "--dataset=", 10) == 0) dataset = a + 10;
    else if (std::strncmp(a, "--transport=", 12) == 0) transport = a + 12;
    else if (std::strncmp(a, "--dir=", 6) == 0) dir = a + 6;
    else if (std::strncmp(a, "--scale=", 8) == 0) scale = std::atof(a + 8);
    else if (std::strncmp(a, "--workers=", 10) == 0) workers = std::atoi(a + 10);
    else if (std::strncmp(a, "--epochs=", 9) == 0) epochs = std::atoi(a + 9);
    else if (std::strncmp(a, "--chunks=", 9) == 0) chunks = std::atoi(a + 9);
    else if (std::strncmp(a, "--kill-rank=", 12) == 0)
      kill_rank = std::atoi(a + 12);
    else if (std::strncmp(a, "--kill-epoch=", 13) == 0)
      kill_epoch = std::atoll(a + 13);
    else if (std::strncmp(a, "--recover-mode=", 15) == 0)
      recover_mode = a + 15;
    else if (std::strncmp(a, "--coord-kill-epoch=", 19) == 0)
      coord_kill_epoch = std::atoll(a + 19);
    else if (std::strcmp(a, "--resume") == 0)
      resume = true;
    else {
      std::fprintf(stderr, "unknown flag: %s\n", a);
      return 2;
    }
  }

  auto dsr = LoadDatasetScaled(dataset, scale);
  HT_CHECK_OK(dsr.status());
  const Dataset ds = dsr.MoveValueUnsafe();

  ModelConfig cfg = ModelConfig::Make(GnnKind::kGcn, ds.feature_dim(),
                                      /*hidden_dim=*/32, ds.num_classes,
                                      /*layers=*/2, /*seed=*/2024);
  EngineConfig opts;
  opts.cluster_transport = transport;
  opts.cluster_workers = workers;
  opts.cluster_checkpoint_dir = dir;
  // The same directory also anchors the runtime state (control sockets,
  // cluster journal), so a --resume invocation can find the previous
  // incarnation's journal and checkpoints.
  opts.cluster_runtime_dir = dir;
  opts.cluster_resume = resume;
  opts.chunks_per_partition = chunks;
  opts.cluster_kill_rank = kill_rank;
  opts.cluster_kill_epoch = kill_epoch;
  opts.cluster_recover_mode = recover_mode;
  opts.cluster_coord_kill_epoch = coord_kill_epoch;

  auto engine_r = CpuClusterEngine::Create(&ds, cfg, opts);
  HT_CHECK_OK(engine_r.status());
  CpuClusterEngine* engine = engine_r.ValueOrDie().get();

  // A resumed coordinator restored its applied-epoch floor from the
  // checkpoint + journal; only the remaining budget is trained.
  const int start_epoch =
      static_cast<int>(engine->coordinator()->epochs_completed());
  if (resume && start_epoch > 0) {
    std::printf("resumed at epoch %d (term %llu, %d re-attached)\n",
                start_epoch,
                static_cast<unsigned long long>(
                    engine->coordinator()->term()),
                engine->coordinator()->reattach_count());
  }
  for (int e = start_epoch; e < epochs; ++e) {
    auto stats_r = engine->RunEpoch();
    HT_CHECK_OK(stats_r.status());
    const EpochStats& s = stats_r.ValueOrDie();
    std::printf("epoch %d: loss=%.6f acc=%.4f wall=%.3fs\n", e, s.loss,
                s.train_accuracy, s.wall_seconds);
    if (s.recovery.total() > 0) {
      std::printf("  ^ degraded epoch: %s\n", s.recovery.ToString().c_str());
    }
  }

  auto acc_r = engine->EvaluateAccuracy(SplitRole::kVal);
  HT_CHECK_OK(acc_r.status());
  std::printf("val accuracy: %.4f\n", acc_r.ValueOrDie());
  std::printf("worker respawns: %d\n", engine->coordinator()->respawn_count());
  std::printf("in-epoch recoveries: %d (adoptions: %d, %.3fs total)\n",
              engine->coordinator()->step_recovery_count(),
              engine->coordinator()->adoption_count(),
              engine->coordinator()->recovery_seconds());
  std::printf("state digest: %08x\n",
              StateDigest(engine->model(), *engine->adam()));
  return 0;
}
