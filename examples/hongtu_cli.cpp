// hongtu_cli: drive any engine/model/dataset combination from the command
// line — the "downstream user" entry point.
//
//   hongtu_cli --dataset friendster --model gcn --layers 3 --engine hongtu \
//              --devices 4 --chunks 32 --dedup ru --epochs 5 --scale 0.3 \
//              --executor taskgraph --max-inflight 4
//
// Engines: hongtu | inmemory | minibatch | cpu-cluster. Dedup: none|p2p|ru.
// All engines are built through the unified factory (Engine::Create) and
// driven through the identical RunEpoch/EvaluateAccuracy interface; the
// runtime-config dump records the knob state every run executed under.
// Prints per-epoch loss/accuracy plus the simulated time breakdown and
// communication volumes, and a final val/test evaluation.

#include <cstdio>
#include <cstring>
#include <string>

#include "hongtu/common/format.h"
#include "hongtu/engine/engine.h"
#include "hongtu/engine/hongtu_engine.h"
#include "hongtu/graph/datasets.h"

using namespace hongtu;

namespace {

struct Args {
  std::string dataset = "reddit";
  std::string model = "gcn";
  std::string engine = "hongtu";
  std::string dedup = "ru";
  std::string executor;  // empty => HONGTU_EXECUTOR / default
  int layers = 2;
  int hidden = 0;  // 0 => dataset default
  int devices = 4;
  int chunks = 0;  // 0 => dataset default
  int epochs = 10;
  double scale = 0.3;
  double lr = 0.01;
  double capacity_mb = 0;   // 0 => unlimited
  int max_inflight = 0;     // 0 => HONGTU_MAX_INFLIGHT / default
  int pipeline_depth = -1;  // deprecated alias; <0 => unset
  bool help = false;
};

void PrintUsage() {
  std::printf(
      "usage: hongtu_cli [options]\n"
      "  --dataset reddit|ogbn-products|it-2004|ogbn-paper|friendster\n"
      "  --model gcn|sage|gin|gat        --layers N      --hidden N\n"
      "  --engine hongtu|inmemory|minibatch|cpu-cluster\n"
      "  --dedup none|p2p|ru             --devices N     --chunks N\n"
      "  --epochs N   --scale F (0,1]    --lr F          --capacity-mb F\n"
      "  --executor serial|pipeline|taskgraph\n"
      "                      (hongtu engine's chunk executor; default from\n"
      "                       HONGTU_EXECUTOR, else pipeline)\n"
      "  --max-inflight N    (in-flight chunk batches / buffer slots;\n"
      "                       default from HONGTU_MAX_INFLIGHT, else 2)\n"
      "  --pipeline-depth N  (DEPRECATED alias: 0|1 -> --executor serial,\n"
      "                       N>=2 -> --executor pipeline --max-inflight N)\n");
}

bool Parse(int argc, char** argv, Args* a) {
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (flag == "--help" || flag == "-h") {
      a->help = true;
      return true;
    }
    const char* v = next();
    if (v == nullptr) {
      std::fprintf(stderr, "missing value for %s\n", flag.c_str());
      return false;
    }
    if (flag == "--dataset") a->dataset = v;
    else if (flag == "--model") a->model = v;
    else if (flag == "--engine") a->engine = v;
    else if (flag == "--dedup") a->dedup = v;
    else if (flag == "--executor") a->executor = v;
    else if (flag == "--layers") a->layers = std::atoi(v);
    else if (flag == "--hidden") a->hidden = std::atoi(v);
    else if (flag == "--devices") a->devices = std::atoi(v);
    else if (flag == "--chunks") a->chunks = std::atoi(v);
    else if (flag == "--epochs") a->epochs = std::atoi(v);
    else if (flag == "--scale") a->scale = std::atof(v);
    else if (flag == "--lr") a->lr = std::atof(v);
    else if (flag == "--capacity-mb") a->capacity_mb = std::atof(v);
    else if (flag == "--max-inflight") a->max_inflight = std::atoi(v);
    else if (flag == "--pipeline-depth") a->pipeline_depth = std::atoi(v);
    else {
      std::fprintf(stderr, "unknown flag %s\n", flag.c_str());
      return false;
    }
  }
  return true;
}

Result<GnnKind> ParseModel(const std::string& s) {
  if (s == "gcn") return GnnKind::kGcn;
  if (s == "sage") return GnnKind::kSage;
  if (s == "gin") return GnnKind::kGin;
  if (s == "gat") return GnnKind::kGat;
  return Status::Invalid("unknown model: " + s);
}

Result<DedupLevel> ParseDedup(const std::string& s) {
  if (s == "none") return DedupLevel::kNone;
  if (s == "p2p") return DedupLevel::kP2P;
  if (s == "ru") return DedupLevel::kP2PReuse;
  return Status::Invalid("unknown dedup level: " + s);
}

void PrintEpoch(int epoch, const EpochStats& st) {
  // Bracketed components are per-resource busy seconds; `sim` is the
  // critical path, i.e. busy minus what the concurrent executor overlapped.
  std::printf("epoch %3d  loss %.4f  acc %.3f  sim %-8s  "
              "[gpu %s h2d %s d2d %s cpu %s ovl %s]  peak %s\n",
              epoch, st.loss, st.train_accuracy,
              FormatSeconds(st.SimSeconds()).c_str(),
              FormatSeconds(st.time.gpu).c_str(),
              FormatSeconds(st.time.h2d).c_str(),
              FormatSeconds(st.time.d2d).c_str(),
              FormatSeconds(st.time.cpu).c_str(),
              FormatSeconds(st.OverlapSeconds()).c_str(),
              FormatBytes(static_cast<double>(st.peak_device_bytes)).c_str());
}

Status Run(const Args& a) {
  HT_ASSIGN_OR_RETURN(Dataset ds, LoadDatasetScaled(a.dataset, a.scale));
  HT_ASSIGN_OR_RETURN(GnnKind kind, ParseModel(a.model));
  HT_ASSIGN_OR_RETURN(DedupLevel dedup, ParseDedup(a.dedup));
  EngineKind ekind;
  if (!ParseEngineKind(a.engine, &ekind)) {
    return Status::Invalid("unknown engine: " + a.engine);
  }
  const int hidden = a.hidden > 0 ? a.hidden : ds.default_hidden_dim;
  ModelConfig cfg = ModelConfig::Make(kind, ds.feature_dim(), hidden,
                                      ds.num_classes, a.layers);

  // One flattened config for every engine kind; knobs an engine does not
  // use are simply ignored by it.
  EngineConfig o;
  o.num_devices = a.devices;
  o.device_capacity_bytes =
      a.capacity_mb > 0 ? static_cast<int64_t>(a.capacity_mb * 1024 * 1024)
                        : (1ll << 40);
  o.dedup = dedup;
  o.reorganize = dedup != DedupLevel::kNone;
  o.chunks_per_partition =
      a.chunks > 0 ? a.chunks
                   : (kind == GnnKind::kGat ? ds.default_chunks_gat
                                            : ds.default_chunks_gcn);
  o.adam.lr = static_cast<float>(a.lr);
  if (!a.executor.empty() && !ParseExecutorKind(a.executor, &o.executor)) {
    return Status::Invalid("unknown executor: " + a.executor);
  }
  if (a.max_inflight > 0) o.max_inflight = a.max_inflight;
  if (a.pipeline_depth >= 0) o.pipeline_depth = a.pipeline_depth;

  std::printf("%s | %s %d-layer hidden=%d | engine=%s devices=%d\n",
              ds.graph.DebugString().c_str(), GnnKindName(kind), a.layers,
              hidden, EngineKindName(ekind), a.devices);
  std::printf("%s", o.runtime().Describe().c_str());

  HT_ASSIGN_OR_RETURN(auto engine, Engine::Create(ekind, &ds, cfg, o));
  // Engine-specific accessors stay reachable through the concrete type when
  // a caller wants them; the training loop below is engine-agnostic.
  if (const auto* ht = dynamic_cast<const HongTuEngine*>(engine.get())) {
    const CommVolumes& v = ht->plan().volumes;
    std::printf("dedup %s: V_ori=%lld V_p2p=%lld V_ru=%lld (rows/layer)\n",
                DedupLevelName(dedup), static_cast<long long>(v.v_ori),
                static_cast<long long>(v.v_p2p),
                static_cast<long long>(v.v_ru));
  }

  for (int e = 1; e <= a.epochs; ++e) {
    HT_ASSIGN_OR_RETURN(EpochStats st, engine->RunEpoch());
    PrintEpoch(e, st);
  }
  Result<double> val = engine->EvaluateAccuracy(SplitRole::kVal);
  if (val.ok()) {
    Result<double> test = engine->EvaluateAccuracy(SplitRole::kTest);
    if (test.ok()) {
      std::printf("final: val %.3f test %.3f\n", val.ValueOrDie(),
                  test.ValueOrDie());
    } else {
      std::printf("final: val %.3f\n", val.ValueOrDie());
    }
  } else if (!val.status().IsNotImplemented()) {
    return val.status();
  }
  return Status::OK();
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!Parse(argc, argv, &args)) {
    PrintUsage();
    return 2;
  }
  if (args.help) {
    PrintUsage();
    return 0;
  }
  const Status st = Run(args);
  if (!st.ok()) {
    std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
    return 1;
  }
  return 0;
}
