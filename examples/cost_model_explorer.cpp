// Scenario: capacity planning with the cost model — the systems-design use
// of Eq. 4 and the memory model without running any training.
//
// Sweeps (a) interconnect generations (PCIe 3/4/5, NVLink on/off) over the
// measured dedup volumes, reproducing §5.3's "effectiveness with various
// interconnects" discussion, and (b) chunk counts against a device memory
// budget, answering "what chunk count do I need for this GPU?".
//
// Build & run:  ./build/examples/cost_model_explorer

#include <cstdio>

#include "hongtu/comm/dedup_plan.h"
#include "hongtu/common/format.h"
#include "hongtu/comm/reorganize.h"
#include "hongtu/graph/datasets.h"
#include "hongtu/sim/memory_model.h"

using namespace hongtu;

int main() {
  auto dsr = LoadDatasetScaled("friendster", 0.3);
  HT_CHECK_OK(dsr.status());
  const Dataset ds = dsr.MoveValueUnsafe();
  std::printf("graph: %s\n\n", ds.graph.DebugString().c_str());

  // Partition once at the paper's friendster setting (4 x 32 chunks).
  auto tlr = BuildTwoLevelPartition(ds.graph, 4, 32);
  HT_CHECK_OK(tlr.status());
  TwoLevelPartition tl = tlr.MoveValueUnsafe();
  HT_CHECK_OK(ReorganizePartition(&tl).status());
  auto planr = BuildDedupPlan(tl, DedupLevel::kP2PReuse);
  HT_CHECK_OK(planr.status());
  const CommVolumes& v = planr.ValueOrDie().volumes;
  std::printf("dedup volumes (rows): V_ori=%lld V_p2p=%lld V_ru=%lld\n\n",
              static_cast<long long>(v.v_ori),
              static_cast<long long>(v.v_p2p),
              static_cast<long long>(v.v_ru));

  // (a) Eq. 4 under different interconnects. Without NVLink (t_dd == t_hd)
  // inter-GPU dedup stops helping but in-place reuse still does (§5.3).
  struct Platform {
    const char* name;
    double t_hd, t_dd;
  };
  const Platform platforms[] = {
      {"PCIe3 + NVLink3", 16e9, 200e9},
      {"PCIe4 + NVLink3", 32e9, 200e9},
      {"PCIe5 + NVLink4", 64e9, 450e9},
      {"PCIe4 only (no NVLink)", 32e9, 32e9},
  };
  const int64_t row_bytes = ds.feature_dim() * 4;
  std::printf("%-26s %-14s %-14s %-10s\n", "platform", "no dedup (Eq.4)",
              "full dedup", "speedup");
  for (const Platform& p : platforms) {
    InterconnectParams ip;
    ip.t_hd = p.t_hd;
    ip.t_dd = p.t_dd;
    CommVolumes none{v.v_ori, v.v_ori, v.v_ori, 0};
    const double base = none.CostSeconds(ip, row_bytes);
    const double full = v.CostSeconds(ip, row_bytes);
    std::printf("%-26s %-14s %-14s %.2fx\n", p.name,
                FormatSeconds(base).c_str(), FormatSeconds(full).c_str(),
                base / full);
  }

  // (b) Memory planning: smallest chunk count that fits a device budget.
  std::printf("\nper-layer chunk working set vs chunk count (feature dim %d):\n",
              ds.feature_dim());
  MemoryModelInput mm;
  mm.num_vertices = ds.graph.num_vertices();
  mm.num_edges = ds.graph.num_edges();
  mm.dims = {static_cast<int64_t>(ds.feature_dim()), 32, 16};
  for (int chunks : {8, 16, 32, 64, 128}) {
    auto tl2 = BuildTwoLevelPartition(ds.graph, 4, chunks / 4);
    HT_CHECK_OK(tl2.status());
    const double alpha =
        tl2.ValueOrDie().ReplicationFactor(ds.graph.num_vertices());
    // Eq. from §4.3: per-subgraph vertex rows ~ (1 + alpha) |V| / chunks.
    const double rows =
        (1.0 + alpha) * static_cast<double>(ds.graph.num_vertices()) / chunks;
    const double bytes = rows * PerLayerVertexBytes(mm, 0);
    std::printf("  %3d subgraphs: alpha=%.2f, ~%s per device-batch\n", chunks,
                alpha, FormatBytes(bytes).c_str());
  }
  std::printf("\nmore chunks -> smaller working set but more duplicated "
              "neighbors (Fig. 10 trade-off).\n");
  return 0;
}
