// Quickstart: train a 2-layer GCN with HongTu on the reddit-like dataset.
//
// Demonstrates the minimal public API path:
//   LoadDataset -> ModelConfig -> Engine::Create -> RunEpoch loop
//   -> EvaluateAccuracy.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "hongtu/common/format.h"
#include "hongtu/engine/engine.h"
#include "hongtu/engine/hongtu_engine.h"
#include "hongtu/graph/datasets.h"

using namespace hongtu;

int main() {
  // 1. Load a dataset (synthetic reddit-like community graph; see
  //    src/hongtu/graph/datasets.h for the registry).
  auto dsr = LoadDatasetScaled("reddit", 0.3);
  HT_CHECK_OK(dsr.status());
  const Dataset ds = dsr.MoveValueUnsafe();
  std::printf("dataset %s: %s, %d features, %d classes\n", ds.name.c_str(),
              ds.graph.DebugString().c_str(), ds.feature_dim(),
              ds.num_classes);

  // 2. Describe the model: a 2-layer GCN ending in class logits.
  ModelConfig cfg = ModelConfig::Make(GnnKind::kGcn, ds.feature_dim(),
                                      /*hidden_dim=*/32, ds.num_classes,
                                      /*layers=*/2, /*seed=*/2024);

  // 3. Configure the engine: 4 simulated GPUs, 2 chunks per partition,
  //    full deduplicated communication (the defaults). EngineConfig is the
  //    one flattened options struct every engine kind accepts.
  EngineConfig opts;
  opts.num_devices = 4;
  opts.chunks_per_partition = 2;
  opts.device_capacity_bytes = 1ll << 40;  // effectively unlimited here
  opts.adam.lr = 0.01f;

  auto engine_r = Engine::Create(EngineKind::kHongTu, &ds, cfg, opts);
  HT_CHECK_OK(engine_r.status());
  Engine& engine = *engine_r.ValueOrDie();

  // Engine-specific accessors (the dedup plan here) stay available through
  // the concrete type when you need them.
  if (const auto* ht = dynamic_cast<const HongTuEngine*>(&engine)) {
    std::printf("dedup plan: V_ori=%lld V_p2p=%lld V_ru=%lld rows/layer\n",
                static_cast<long long>(ht->plan().volumes.v_ori),
                static_cast<long long>(ht->plan().volumes.v_p2p),
                static_cast<long long>(ht->plan().volumes.v_ru));
  }

  // 4. Train.
  for (int epoch = 1; epoch <= 30; ++epoch) {
    auto r = engine.RunEpoch();
    HT_CHECK_OK(r.status());
    if (epoch % 5 == 0) {
      auto val = engine.EvaluateAccuracy(SplitRole::kVal);
      HT_CHECK_OK(val.status());
      std::printf("epoch %2d  loss %.4f  train-acc %.3f  val-acc %.3f  "
                  "(sim %s, H2D %s)\n",
                  epoch, r.ValueOrDie().loss, r.ValueOrDie().train_accuracy,
                  val.ValueOrDie(),
                  FormatSeconds(r.ValueOrDie().SimSeconds()).c_str(),
                  FormatBytes(static_cast<double>(r.ValueOrDie().bytes.h2d))
                      .c_str());
    }
  }

  // 5. Final test accuracy.
  auto test = engine.EvaluateAccuracy(SplitRole::kTest);
  HT_CHECK_OK(test.status());
  std::printf("final test accuracy: %.3f\n", test.ValueOrDie());
  return 0;
}
