// Scenario: training an attention model (GAT) whose O(|E|) edge state rules
// out intermediate caching — HongTu falls back to recomputation (§4.2) and
// the chunk layout guarantees the attention softmax still sees the full
// neighbor set of every destination.
//
// Shows: GAT training end-to-end, correctness of chunked attention against
// the dense reference, and the recompute-vs-cache policy surface.
//
// Build & run:  ./build/examples/gat_attention

#include <cstdio>

#include "hongtu/common/format.h"
#include "hongtu/engine/engine.h"
#include "hongtu/graph/datasets.h"

using namespace hongtu;

int main() {
  auto dsr = LoadDatasetScaled("ogbn-products", 0.2);
  HT_CHECK_OK(dsr.status());
  const Dataset ds = dsr.MoveValueUnsafe();

  ModelConfig cfg = ModelConfig::Make(GnnKind::kGat, ds.feature_dim(),
                                      /*hidden_dim=*/16, ds.num_classes,
                                      /*layers=*/2, /*seed=*/11);

  // Dense single-device reference (stores all intermediates, Fig. 4a).
  EngineConfig imo;
  imo.num_devices = 1;
  imo.device_capacity_bytes = 1ll << 40;
  auto ref = Engine::Create(EngineKind::kInMemory, &ds, cfg, imo);
  HT_CHECK_OK(ref.status());

  // HongTu: chunked, offloaded, recomputation in backward (Fig. 4b).
  EngineConfig o;
  o.num_devices = 4;
  o.chunks_per_partition = 4;
  o.device_capacity_bytes = 1ll << 40;
  auto ht = Engine::Create(EngineKind::kHongTu, &ds, cfg, o);
  HT_CHECK_OK(ht.status());
  std::printf("GAT layers cacheable? %s -> engine uses %s in backward\n",
              ht.ValueOrDie()->model()->layer(0)->cacheable() ? "yes" : "no",
              ht.ValueOrDie()->model()->layer(0)->cacheable()
                  ? "cached aggregates"
                  : "full recomputation");

  std::printf("%-6s %-12s %-12s %-10s\n", "epoch", "ref loss", "hongtu loss",
              "|diff|");
  for (int epoch = 1; epoch <= 10; ++epoch) {
    auto a = ref.ValueOrDie()->RunEpoch();
    auto b = ht.ValueOrDie()->RunEpoch();
    HT_CHECK_OK(a.status());
    HT_CHECK_OK(b.status());
    std::printf("%-6d %-12.6f %-12.6f %-10.2e\n", epoch,
                a.ValueOrDie().loss, b.ValueOrDie().loss,
                std::abs(a.ValueOrDie().loss - b.ValueOrDie().loss));
  }
  auto acc = ht.ValueOrDie()->EvaluateAccuracy(SplitRole::kVal);
  HT_CHECK_OK(acc.status());
  std::printf("HongTu GAT val accuracy after 10 epochs: %.3f\n",
              acc.ValueOrDie());
  std::printf("losses agree to float tolerance: chunked full-neighbor "
              "attention is exact.\n");
  return 0;
}
