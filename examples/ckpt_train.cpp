// Checkpointed training with kill -9 recovery.
//
// Trains a GCN with per-epoch checkpointing (engine/checkpoint.h) and prints
// a CRC32C digest over the final weights and Adam moments. Because a
// snapshot captures the complete inter-epoch state (params, moments, step
// count), a run that is killed at any point and relaunched with the same
// flags finishes with a digest bitwise-identical to an uninterrupted run.
//
// ci/kill_resume_smoke.sh drives exactly that: one uninterrupted run, then a
// run killed mid-checkpoint via
//   HONGTU_FAULT_SPEC=ckpt.write:kill:1:0:1:4
// and a resume, asserting the digests match.
//
// Usage: ./build/examples/ckpt_train --dir=/tmp/ckpt [--dataset=reddit]
//          [--scale=0.2] [--epochs=6] [--every=1] [--no-resume]

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "hongtu/common/crc32c.h"
#include "hongtu/engine/checkpoint.h"
#include "hongtu/engine/engine.h"
#include "hongtu/engine/trainer.h"
#include "hongtu/graph/datasets.h"

using namespace hongtu;

namespace {

uint32_t TensorDigest(const Tensor& t, uint32_t crc) {
  return Crc32c(t.data(), static_cast<size_t>(t.rows() * t.cols()) * 4, crc);
}

uint32_t StateDigest(GnnModel* model, const Adam& adam) {
  uint32_t crc = 0;
  int i = 0;
  for (const Tensor* p : model->AllParams()) {
    crc = TensorDigest(*p, crc);
    crc = TensorDigest(adam.moment1(i), crc);
    crc = TensorDigest(adam.moment2(i), crc);
    ++i;
  }
  const int64_t t = adam.step_count();
  return Crc32c(&t, sizeof(t), crc);
}

}  // namespace

int main(int argc, char** argv) {
  std::string dataset = "reddit";
  std::string dir;
  double scale = 0.2;
  int epochs = 6;
  int every = 1;
  bool resume = true;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strncmp(a, "--dataset=", 10) == 0) dataset = a + 10;
    else if (std::strncmp(a, "--dir=", 6) == 0) dir = a + 6;
    else if (std::strncmp(a, "--scale=", 8) == 0) scale = std::atof(a + 8);
    else if (std::strncmp(a, "--epochs=", 9) == 0) epochs = std::atoi(a + 9);
    else if (std::strncmp(a, "--every=", 8) == 0) every = std::atoi(a + 8);
    else if (std::strcmp(a, "--no-resume") == 0) resume = false;
    else {
      std::fprintf(stderr, "unknown flag: %s\n", a);
      return 2;
    }
  }
  if (dir.empty()) {
    std::fprintf(stderr, "ckpt_train: --dir=<checkpoint dir> is required\n");
    return 2;
  }

  auto dsr = LoadDatasetScaled(dataset, scale);
  HT_CHECK_OK(dsr.status());
  const Dataset ds = dsr.MoveValueUnsafe();

  ModelConfig cfg = ModelConfig::Make(GnnKind::kGcn, ds.feature_dim(),
                                      /*hidden_dim=*/32, ds.num_classes,
                                      /*layers=*/2, /*seed=*/2024);
  EngineConfig opts;
  opts.num_devices = 4;
  opts.chunks_per_partition = 2;
  opts.device_capacity_bytes = 1ll << 40;

  auto engine_r = Engine::Create(EngineKind::kHongTu, &ds, cfg, opts);
  HT_CHECK_OK(engine_r.status());
  Engine* engine = engine_r.ValueOrDie().get();

  TrainerOptions topts;
  topts.max_epochs = epochs;
  topts.eval_every = epochs;  // single final evaluation
  topts.checkpoint_dir = dir;
  topts.checkpoint_every = every;
  topts.resume = resume;

  auto report = TrainToConvergence(engine, topts);
  HT_CHECK_OK(report.status());
  std::printf("epochs run: %d (resumed from %lld)\n",
              report.ValueOrDie().epochs_run,
              static_cast<long long>(report.ValueOrDie().resumed_from_epoch));
  std::printf("final loss: %.6f\n", report.ValueOrDie().final_loss);
  std::printf("state digest: %08x\n",
              StateDigest(engine->model(), *engine->adam()));
  return 0;
}
