/// \file pool.h
/// \brief Arena-backed host buffer pool for Tensor storage.
///
/// Every chunk/layer iteration of the training engines used to heap-allocate
/// and zero-fill fresh Tensor storage, putting allocator traffic and page
/// zeroing on the critical path the chunk pipeline tries to hide. The pool
/// replaces that with size-bucketed free lists of 64-byte-aligned slabs:
/// releasing a buffer parks it in its bucket, and the next same-class acquire
/// reuses it without touching the system allocator. After the first epoch has
/// populated the buckets, steady-state epochs perform zero heap allocations
/// for tensor storage — a property the hit/miss counters make testable.
///
/// Size classes are 16-float (64 B) granules up to 2 KiB and 1/8-of-pow2
/// granules above, bounding per-buffer waste to 12.5% while mapping the
/// slightly varying chunk shapes of one layer onto a handful of buckets.
///
/// Thread safety: all methods are safe to call concurrently (the pipelined
/// executor's three stage lanes allocate and release from worker threads).
///
/// Escape hatch: HONGTU_DISABLE_POOL=1 restores the pre-pool allocation
/// behavior for A/B comparison — every acquire hits the heap, every release
/// frees immediately, Tensor::Uninitialized zero-fills like the old
/// constructor did, and EnsureShape reuses a buffer only on an exact shape
/// match. Counters still meter live/peak bytes and allocation counts, so
/// BENCH_memory.json can quantify exactly what the pool removes.

#pragma once

#include <cstdint>

namespace hongtu {

/// Counter snapshot of the pool (all monotone except live/cached/peak).
struct PoolStats {
  int64_t hits = 0;        ///< acquires served from a free list
  int64_t misses = 0;      ///< acquires that went to the system heap
  int64_t live_bytes = 0;  ///< bytes currently lent out to tensors
  int64_t cached_bytes = 0;     ///< bytes parked in free lists
  int64_t peak_live_bytes = 0;  ///< high watermark of live_bytes (ResetPeak)
  int64_t heap_bytes = 0;  ///< cumulative bytes ever obtained from the heap

  int64_t alloc_count() const { return misses; }
};

class TensorPool {
 public:
  /// The process-wide pool Tensor storage is drawn from. Never destroyed
  /// (tensors with static storage duration may release after static dtors
  /// run), but always reachable, so leak checkers stay quiet.
  static TensorPool& Global();

  /// A 64-byte-aligned buffer holding at least `floats` floats. The bucket
  /// capacity actually granted is written to `*capacity_floats`; pass it
  /// back verbatim to Release. Returns nullptr (capacity 0) for floats <= 0.
  /// Contents are NOT initialized (reused slabs hold stale data).
  float* Acquire(int64_t floats, int64_t* capacity_floats);

  /// Returns a buffer obtained from Acquire. `capacity_floats` must be the
  /// value Acquire reported for it.
  void Release(float* data, int64_t capacity_floats);

  /// Frees every cached slab (buckets empty; live buffers unaffected).
  void Trim();

  PoolStats stats() const;
  /// Resets the live-bytes watermark to the current live bytes. The
  /// SimPlatform calls this at epoch start so peak_live_bytes meters the
  /// epoch's own footprint.
  void ResetPeak();

  /// False when HONGTU_DISABLE_POOL=1 (or SetEnabled(false)): acquires go
  /// straight to the heap, releases free immediately, and Tensor falls back
  /// to the pre-pool allocate-and-zero semantics. Lock-free read.
  bool enabled() const;
  /// A/B toggle for tests and the memory bench. Buffers acquired in either
  /// mode may be released in the other (same underlying aligned allocation).
  void SetEnabled(bool on);

  /// The size class (in floats, always a multiple of 16) Acquire rounds a
  /// request up to. Exposed for tests.
  static int64_t BucketFloats(int64_t floats);

  TensorPool(const TensorPool&) = delete;
  TensorPool& operator=(const TensorPool&) = delete;

 private:
  TensorPool();
  ~TensorPool();

  struct Impl;
  Impl* impl_;
};

/// RAII scratch buffer for kernel internals (GEMM packing panels etc.):
/// pool-backed, 64-byte-aligned, uninitialized. Move-only.
class PoolBuffer {
 public:
  PoolBuffer() = default;
  explicit PoolBuffer(int64_t floats) {
    data_ = TensorPool::Global().Acquire(floats, &cap_);
  }
  ~PoolBuffer() { Reset(); }
  PoolBuffer(PoolBuffer&& o) noexcept : data_(o.data_), cap_(o.cap_) {
    o.data_ = nullptr;
    o.cap_ = 0;
  }
  PoolBuffer& operator=(PoolBuffer&& o) noexcept {
    if (this != &o) {
      Reset();
      data_ = o.data_;
      cap_ = o.cap_;
      o.data_ = nullptr;
      o.cap_ = 0;
    }
    return *this;
  }
  PoolBuffer(const PoolBuffer&) = delete;
  PoolBuffer& operator=(const PoolBuffer&) = delete;

  float* data() const { return data_; }

 private:
  void Reset() {
    if (data_ != nullptr) TensorPool::Global().Release(data_, cap_);
    data_ = nullptr;
    cap_ = 0;
  }

  float* data_ = nullptr;
  int64_t cap_ = 0;
};

}  // namespace hongtu
