#include "hongtu/tensor/pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <mutex>
#include <new>
#include <unordered_map>
#include <vector>

#include "hongtu/common/config.h"

namespace hongtu {

namespace {

constexpr int64_t kGranuleFloats = 16;  // 64 bytes of float32
constexpr std::align_val_t kAlign{64};

float* AlignedNew(int64_t floats) {
  return static_cast<float*>(
      ::operator new(static_cast<size_t>(floats) * sizeof(float), kAlign));
}

void AlignedDelete(float* p) { ::operator delete(p, kAlign); }

int64_t BitWidth(int64_t v) {
  int64_t w = 0;
  while (v > 0) {
    v >>= 1;
    ++w;
  }
  return w;
}

}  // namespace

struct TensorPool::Impl {
  mutable std::mutex mu;
  /// Free lists keyed by bucket capacity in floats.
  std::unordered_map<int64_t, std::vector<float*>> free;
  PoolStats stats;
  /// Atomic so the Tensor fast paths (EnsureShape, Uninitialized) can read
  /// it without taking the pool lock.
  std::atomic<bool> enabled{true};
};

TensorPool::TensorPool() : impl_(new Impl) {
  // HONGTU_DISABLE_POOL, read per-construction through the single parse
  // point so scoped setenv tests see it (common/config.h).
  impl_->enabled = RuntimeConfig::FromEnv().pool_enabled;
}

TensorPool::~TensorPool() {
  Trim();
  delete impl_;
}

TensorPool& TensorPool::Global() {
  // Leaky singleton: Tensors with static storage duration (bench fixtures,
  // test caches) release into the pool during static destruction, so the
  // pool must outlive every static. Reachable through this pointer, so leak
  // checkers treat it as live.
  static TensorPool* const pool = new TensorPool();
  return *pool;
}

int64_t TensorPool::BucketFloats(int64_t floats) {
  if (floats <= 0) return 0;
  if (floats <= kGranuleFloats) return kGranuleFloats;
  // 1/8-of-pow2floor granules (min one 64 B granule): waste <= 12.5%, and
  // the near-equal chunk shapes of one layer land in a handful of buckets.
  const int64_t granule =
      std::max(kGranuleFloats, int64_t{1} << (BitWidth(floats) - 4));
  return (floats + granule - 1) / granule * granule;
}

float* TensorPool::Acquire(int64_t floats, int64_t* capacity_floats) {
  if (floats <= 0) {
    *capacity_floats = 0;
    return nullptr;
  }
  const int64_t cap = BucketFloats(floats);
  const int64_t bytes = cap * static_cast<int64_t>(sizeof(float));
  *capacity_floats = cap;
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    if (impl_->enabled) {
      auto it = impl_->free.find(cap);
      if (it != impl_->free.end() && !it->second.empty()) {
        float* p = it->second.back();
        it->second.pop_back();
        ++impl_->stats.hits;
        impl_->stats.cached_bytes -= bytes;
        impl_->stats.live_bytes += bytes;
        impl_->stats.peak_live_bytes =
            std::max(impl_->stats.peak_live_bytes, impl_->stats.live_bytes);
        return p;
      }
    }
    ++impl_->stats.misses;
    impl_->stats.heap_bytes += bytes;
    impl_->stats.live_bytes += bytes;
    impl_->stats.peak_live_bytes =
        std::max(impl_->stats.peak_live_bytes, impl_->stats.live_bytes);
  }
  // The system allocation itself runs outside the lock.
  return AlignedNew(cap);
}

void TensorPool::Release(float* data, int64_t capacity_floats) {
  if (data == nullptr || capacity_floats <= 0) return;
  const int64_t bytes = capacity_floats * static_cast<int64_t>(sizeof(float));
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->stats.live_bytes -= bytes;
    if (impl_->enabled) {
      impl_->free[capacity_floats].push_back(data);
      impl_->stats.cached_bytes += bytes;
      return;
    }
  }
  AlignedDelete(data);
}

void TensorPool::Trim() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  for (auto& [cap, bucket] : impl_->free) {
    for (float* p : bucket) AlignedDelete(p);
    impl_->stats.cached_bytes -=
        static_cast<int64_t>(bucket.size()) * cap *
        static_cast<int64_t>(sizeof(float));
    bucket.clear();
  }
  impl_->free.clear();
}

PoolStats TensorPool::stats() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->stats;
}

void TensorPool::ResetPeak() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->stats.peak_live_bytes = impl_->stats.live_bytes;
}

bool TensorPool::enabled() const {
  return impl_->enabled.load(std::memory_order_relaxed);
}

void TensorPool::SetEnabled(bool on) {
  impl_->enabled.store(on, std::memory_order_relaxed);
  if (!on) Trim();
}

}  // namespace hongtu
