/// \file ops.h
/// \brief Dense kernels used by the simulated-GPU compute engine.
///
/// These are the CPU stand-ins for the cuBLAS/cuSparse kernels the paper's
/// implementation calls. They are thin Tensor-typed wrappers over the
/// backend-dispatched kernels in hongtu/kernels/ (blocked SIMD by default,
/// seed-faithful reference loops via HONGTU_KERNEL_BACKEND=reference) and
/// are deterministic (no atomics, fixed reduction order per row).

#pragma once

#include "hongtu/tensor/tensor.h"

namespace hongtu {
namespace ops {

/// Activation fused into MatmulBiasAct's epilogue.
enum class Activation {
  kNone,
  kRelu,
  kSigmoid,
  kTanh,
};

/// C = A * B. Shapes: (m x k) * (k x n) -> (m x n). C is overwritten.
void Matmul(const Tensor& a, const Tensor& b, Tensor* c);

/// C = act([C +] A * B + bias): the fused UPDATE-stage kernel. `bias` is a
/// (1 x n) row broadcast over rows; `accumulate` adds onto the existing C
/// (for multi-term updates like SAGE's self+neighbor paths). Single pass
/// over C — no separate bias/activation sweep.
void MatmulBiasAct(const Tensor& a, const Tensor& b, const Tensor& bias,
                   Activation act, bool accumulate, Tensor* c);

/// C += A^T * B. Shapes: (k x m)^T * (k x n) -> (m x n). Used for dW.
void MatmulTransAAccum(const Tensor& a, const Tensor& b, Tensor* c);

/// C = A * B^T. Shapes: (m x k) * (n x k)^T -> (m x n). Used for dX.
void MatmulTransB(const Tensor& a, const Tensor& b, Tensor* c);

/// bias_grad (1 x n) += column sums of X (m x n). Used for db.
void ColumnSumAccum(const Tensor& x, Tensor* bias_grad);

/// sum_i a[i]*b[i] over flattened tensors, accumulated in double.
double Dot(const Tensor& a, const Tensor& b);

/// y = relu(x), elementwise; x and y may alias.
void Relu(const Tensor& x, Tensor* y);

/// dx = dy * 1[x_pre > 0]; `x_pre` is the pre-activation input.
void ReluBackward(const Tensor& x_pre, const Tensor& dy, Tensor* dx);

/// y += x (elementwise).
void AddInPlace(const Tensor& x, Tensor* y);

/// y = alpha * x + y.
void Axpy(float alpha, const Tensor& x, Tensor* y);

/// y *= alpha.
void Scale(float alpha, Tensor* y);

/// Leaky ReLU forward value for a scalar.
inline float LeakyRelu(float x, float slope) { return x > 0 ? x : slope * x; }
/// Leaky ReLU derivative for a scalar (w.r.t. pre-activation).
inline float LeakyReluGrad(float x, float slope) { return x > 0 ? 1.0f : slope; }

}  // namespace ops
}  // namespace hongtu
