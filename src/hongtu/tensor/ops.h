/// \file ops.h
/// \brief Dense kernels used by the simulated-GPU compute engine.
///
/// These are the CPU stand-ins for the cuBLAS/cuSparse kernels the paper's
/// implementation calls. They are parallelized over rows with OpenMP and are
/// deterministic (no atomics, fixed reduction order per row).

#pragma once

#include "hongtu/tensor/tensor.h"

namespace hongtu {
namespace ops {

/// C = A * B. Shapes: (m x k) * (k x n) -> (m x n). C is overwritten.
void Matmul(const Tensor& a, const Tensor& b, Tensor* c);

/// C += A^T * B. Shapes: (k x m)^T * (k x n) -> (m x n). Used for dW.
void MatmulTransAAccum(const Tensor& a, const Tensor& b, Tensor* c);

/// C = A * B^T. Shapes: (m x k) * (n x k)^T -> (m x n). Used for dX.
void MatmulTransB(const Tensor& a, const Tensor& b, Tensor* c);

/// y = relu(x), elementwise; x and y may alias.
void Relu(const Tensor& x, Tensor* y);

/// dx = dy * 1[x_pre > 0]; `x_pre` is the pre-activation input.
void ReluBackward(const Tensor& x_pre, const Tensor& dy, Tensor* dx);

/// y += x (elementwise).
void AddInPlace(const Tensor& x, Tensor* y);

/// y = alpha * x + y.
void Axpy(float alpha, const Tensor& x, Tensor* y);

/// y *= alpha.
void Scale(float alpha, Tensor* y);

/// Leaky ReLU forward value for a scalar.
inline float LeakyRelu(float x, float slope) { return x > 0 ? x : slope * x; }
/// Leaky ReLU derivative for a scalar (w.r.t. pre-activation).
inline float LeakyReluGrad(float x, float slope) { return x > 0 ? 1.0f : slope; }

}  // namespace ops
}  // namespace hongtu
