#include "hongtu/tensor/ops.h"

#include <cassert>
#include <cstring>

#include "hongtu/common/parallel.h"

namespace hongtu {
namespace ops {

void Matmul(const Tensor& a, const Tensor& b, Tensor* c) {
  assert(a.cols() == b.rows());
  assert(c->rows() == a.rows() && c->cols() == b.cols());
  const int64_t m = a.rows(), k = a.cols(), n = b.cols();
  const float* pb = b.data();
  ParallelForChunked(0, m, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      const float* pa = a.row(i);
      float* pc = c->row(i);
      std::memset(pc, 0, static_cast<size_t>(n) * sizeof(float));
      for (int64_t p = 0; p < k; ++p) {
        const float av = pa[p];
        if (av == 0.0f) continue;
        const float* pbrow = pb + p * n;
        for (int64_t j = 0; j < n; ++j) pc[j] += av * pbrow[j];
      }
    }
  });
}

void MatmulTransAAccum(const Tensor& a, const Tensor& b, Tensor* c) {
  // c (m x n) += a^T (k x m)^T * b (k x n)
  assert(a.rows() == b.rows());
  assert(c->rows() == a.cols() && c->cols() == b.cols());
  const int64_t k = a.rows(), m = a.cols(), n = b.cols();
  // Parallelize over output rows (columns of a); each thread scans all of a/b.
  ParallelForChunked(0, m, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      float* pc = c->row(i);
      for (int64_t p = 0; p < k; ++p) {
        const float av = a.at(p, i);
        if (av == 0.0f) continue;
        const float* pbrow = b.row(p);
        for (int64_t j = 0; j < n; ++j) pc[j] += av * pbrow[j];
      }
    }
  });
}

void MatmulTransB(const Tensor& a, const Tensor& b, Tensor* c) {
  // c (m x n) = a (m x k) * b^T (n x k)^T
  assert(a.cols() == b.cols());
  assert(c->rows() == a.rows() && c->cols() == b.rows());
  const int64_t m = a.rows(), k = a.cols(), n = b.rows();
  ParallelForChunked(0, m, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      const float* pa = a.row(i);
      float* pc = c->row(i);
      for (int64_t j = 0; j < n; ++j) {
        const float* pbrow = b.row(j);
        float s = 0.0f;
        for (int64_t p = 0; p < k; ++p) s += pa[p] * pbrow[p];
        pc[j] = s;
      }
    }
  });
}

void Relu(const Tensor& x, Tensor* y) {
  assert(x.size() == y->size());
  const float* px = x.data();
  float* py = y->data();
  ParallelForChunked(0, x.size(), [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) py[i] = px[i] > 0 ? px[i] : 0.0f;
  });
}

void ReluBackward(const Tensor& x_pre, const Tensor& dy, Tensor* dx) {
  assert(x_pre.size() == dy.size() && dy.size() == dx->size());
  const float* px = x_pre.data();
  const float* pdy = dy.data();
  float* pdx = dx->data();
  ParallelForChunked(0, dy.size(), [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) pdx[i] = px[i] > 0 ? pdy[i] : 0.0f;
  });
}

void AddInPlace(const Tensor& x, Tensor* y) {
  assert(x.size() == y->size());
  const float* px = x.data();
  float* py = y->data();
  ParallelForChunked(0, x.size(), [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) py[i] += px[i];
  });
}

void Axpy(float alpha, const Tensor& x, Tensor* y) {
  assert(x.size() == y->size());
  const float* px = x.data();
  float* py = y->data();
  ParallelForChunked(0, x.size(), [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) py[i] += alpha * px[i];
  });
}

void Scale(float alpha, Tensor* y) {
  float* py = y->data();
  ParallelForChunked(0, y->size(), [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) py[i] *= alpha;
  });
}

}  // namespace ops
}  // namespace hongtu
