#include "hongtu/tensor/ops.h"

#include <cassert>

#include "hongtu/common/parallel.h"
#include "hongtu/kernels/backend.h"
#include "hongtu/kernels/gemm.h"

namespace hongtu {
namespace ops {

namespace {

kernels::Epilogue EpilogueOf(Activation act) {
  switch (act) {
    case Activation::kNone:
      return kernels::Epilogue::kBias;
    case Activation::kRelu:
      return kernels::Epilogue::kBiasRelu;
    case Activation::kSigmoid:
      return kernels::Epilogue::kBiasSigmoid;
    case Activation::kTanh:
      return kernels::Epilogue::kBiasTanh;
  }
  return kernels::Epilogue::kBias;
}

}  // namespace

void Matmul(const Tensor& a, const Tensor& b, Tensor* c) {
  assert(a.cols() == b.rows());
  assert(c->rows() == a.rows() && c->cols() == b.cols());
  kernels::Gemm(kernels::ActiveBackend(), a.data(), b.data(), c->data(),
                a.rows(), a.cols(), b.cols());
}

void MatmulBiasAct(const Tensor& a, const Tensor& b, const Tensor& bias,
                   Activation act, bool accumulate, Tensor* c) {
  assert(a.cols() == b.rows());
  assert(c->rows() == a.rows() && c->cols() == b.cols());
  assert(bias.cols() == b.cols());
  kernels::Gemm(kernels::ActiveBackend(), a.data(), b.data(), c->data(),
                a.rows(), a.cols(), b.cols(), accumulate, bias.data(),
                EpilogueOf(act));
}

void MatmulTransAAccum(const Tensor& a, const Tensor& b, Tensor* c) {
  // c (m x n) += a^T (k x m)^T * b (k x n)
  assert(a.rows() == b.rows());
  assert(c->rows() == a.cols() && c->cols() == b.cols());
  kernels::GemmTransAAccum(kernels::ActiveBackend(), a.data(), b.data(),
                           c->data(), a.rows(), a.cols(), b.cols());
}

void MatmulTransB(const Tensor& a, const Tensor& b, Tensor* c) {
  // c (m x n) = a (m x k) * b^T (n x k)^T
  assert(a.cols() == b.cols());
  assert(c->rows() == a.rows() && c->cols() == b.rows());
  kernels::GemmTransB(kernels::ActiveBackend(), a.data(), b.data(), c->data(),
                      a.rows(), a.cols(), b.rows());
}

void ColumnSumAccum(const Tensor& x, Tensor* bias_grad) {
  assert(bias_grad->cols() == x.cols());
  kernels::ColumnSumAccum(kernels::ActiveBackend(), x.data(), x.rows(),
                          x.cols(), bias_grad->data());
}

double Dot(const Tensor& a, const Tensor& b) {
  assert(a.size() == b.size());
  return kernels::Dot(kernels::ActiveBackend(), a.data(), b.data(), a.size());
}

void Relu(const Tensor& x, Tensor* y) {
  assert(x.size() == y->size());
  const float* px = x.data();
  float* py = y->data();
  ParallelForChunked(0, x.size(), [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) py[i] = px[i] > 0 ? px[i] : 0.0f;
  });
}

void ReluBackward(const Tensor& x_pre, const Tensor& dy, Tensor* dx) {
  assert(x_pre.size() == dy.size() && dy.size() == dx->size());
  const float* px = x_pre.data();
  const float* pdy = dy.data();
  float* pdx = dx->data();
  ParallelForChunked(0, dy.size(), [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) pdx[i] = px[i] > 0 ? pdy[i] : 0.0f;
  });
}

void AddInPlace(const Tensor& x, Tensor* y) {
  assert(x.size() == y->size());
  const float* px = x.data();
  float* py = y->data();
  ParallelForChunked(0, x.size(), [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) py[i] += px[i];
  });
}

void Axpy(float alpha, const Tensor& x, Tensor* y) {
  assert(x.size() == y->size());
  const float* px = x.data();
  float* py = y->data();
  ParallelForChunked(0, x.size(), [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) py[i] += alpha * px[i];
  });
}

void Scale(float alpha, Tensor* y) {
  float* py = y->data();
  ParallelForChunked(0, y->size(), [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) py[i] *= alpha;
  });
}

}  // namespace ops
}  // namespace hongtu
