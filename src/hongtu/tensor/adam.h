/// \file adam.h
/// \brief Adam optimizer over a set of registered parameter tensors.
///
/// GNN model parameters are small (Table 2 discussion / §8), so like the
/// paper we replicate them on every simulated device and synchronize
/// gradients with an all-reduce; the optimizer itself runs once on the host.

#pragma once

#include <vector>

#include "hongtu/tensor/tensor.h"

namespace hongtu {

struct AdamOptions {
  float lr = 0.01f;
  float beta1 = 0.9f;
  float beta2 = 0.999f;
  float eps = 1e-8f;
  float weight_decay = 0.0f;
};

/// Adam with per-parameter first/second moment state.
class Adam {
 public:
  explicit Adam(AdamOptions opts = {}) : opts_(opts) {}

  /// Registers a parameter; returns its slot index. The pointer must stay
  /// valid for the optimizer's lifetime.
  int Register(Tensor* param);

  /// Applies one Adam step using `grads[i]` for the i-th registered param.
  Status Step(const std::vector<const Tensor*>& grads);

  int64_t num_params() const { return static_cast<int64_t>(params_.size()); }
  const AdamOptions& options() const { return opts_; }

  // ---- Optimizer-state access for checkpoint/restore (engine/checkpoint.h).
  // A snapshot of (params, m, v, t) is the complete inter-epoch training
  // state: restoring it resumes bitwise-identically.
  const Tensor& moment1(int i) const { return m_[static_cast<size_t>(i)]; }
  const Tensor& moment2(int i) const { return v_[static_cast<size_t>(i)]; }
  Tensor* mutable_moment1(int i) { return &m_[static_cast<size_t>(i)]; }
  Tensor* mutable_moment2(int i) { return &v_[static_cast<size_t>(i)]; }
  int64_t step_count() const { return t_; }
  void set_step_count(int64_t t) { t_ = t; }

 private:
  AdamOptions opts_;
  std::vector<Tensor*> params_;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
  int64_t t_ = 0;
};

}  // namespace hongtu
