#include "hongtu/tensor/adam.h"

#include <cmath>

namespace hongtu {

int Adam::Register(Tensor* param) {
  params_.push_back(param);
  m_.emplace_back(param->rows(), param->cols());
  v_.emplace_back(param->rows(), param->cols());
  return static_cast<int>(params_.size()) - 1;
}

Status Adam::Step(const std::vector<const Tensor*>& grads) {
  if (grads.size() != params_.size()) {
    return Status::Invalid("Adam::Step gradient count mismatch");
  }
  ++t_;
  const float bc1 = 1.0f - std::pow(opts_.beta1, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(opts_.beta2, static_cast<float>(t_));
  for (size_t p = 0; p < params_.size(); ++p) {
    Tensor* w = params_[p];
    const Tensor* g = grads[p];
    if (g->rows() != w->rows() || g->cols() != w->cols()) {
      return Status::Invalid("Adam::Step gradient shape mismatch");
    }
    float* pm = m_[p].data();
    float* pv = v_[p].data();
    float* pw = w->data();
    const float* pg = g->data();
    for (int64_t i = 0; i < w->size(); ++i) {
      float gi = pg[i] + opts_.weight_decay * pw[i];
      pm[i] = opts_.beta1 * pm[i] + (1.0f - opts_.beta1) * gi;
      pv[i] = opts_.beta2 * pv[i] + (1.0f - opts_.beta2) * gi * gi;
      const float mhat = pm[i] / bc1;
      const float vhat = pv[i] / bc2;
      pw[i] -= opts_.lr * mhat / (std::sqrt(vhat) + opts_.eps);
    }
  }
  return Status::OK();
}

}  // namespace hongtu
