#include "hongtu/tensor/tensor.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

namespace hongtu {

Tensor::Tensor(int64_t rows, int64_t cols) : rows_(rows), cols_(cols) {
  data_ = std::make_unique<float[]>(static_cast<size_t>(rows * cols));
  std::memset(data_.get(), 0, static_cast<size_t>(rows * cols) * sizeof(float));
}

Tensor Tensor::GlorotUniform(int64_t rows, int64_t cols, uint64_t seed) {
  Tensor t(rows, cols);
  Rng rng(seed);
  const float limit = std::sqrt(6.0f / static_cast<float>(rows + cols));
  for (int64_t i = 0; i < t.size(); ++i) {
    t.data()[i] = rng.NextFloat(-limit, limit);
  }
  return t;
}

Tensor Tensor::Gaussian(int64_t rows, int64_t cols, float stddev,
                        uint64_t seed) {
  Tensor t(rows, cols);
  Rng rng(seed);
  for (int64_t i = 0; i < t.size(); ++i) {
    t.data()[i] = stddev * rng.NextGaussian();
  }
  return t;
}

void Tensor::Fill(float v) { std::fill_n(data_.get(), size(), v); }

Tensor Tensor::Clone() const {
  Tensor t(rows_, cols_);
  std::memcpy(t.data(), data_.get(), static_cast<size_t>(bytes()));
  return t;
}

Status Tensor::CopyFrom(const Tensor& src) {
  if (src.rows() != rows_ || src.cols() != cols_) {
    return Status::Invalid("Tensor::CopyFrom shape mismatch");
  }
  std::memcpy(data_.get(), src.data(), static_cast<size_t>(bytes()));
  return Status::OK();
}

double Tensor::Norm() const {
  double s = 0.0;
  for (int64_t i = 0; i < size(); ++i) {
    s += static_cast<double>(data_[i]) * data_[i];
  }
  return std::sqrt(s);
}

double Tensor::MaxAbsDiff(const Tensor& a, const Tensor& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) {
    return std::numeric_limits<double>::infinity();
  }
  double m = 0.0;
  for (int64_t i = 0; i < a.size(); ++i) {
    m = std::max(m, static_cast<double>(std::fabs(a.data()[i] - b.data()[i])));
  }
  return m;
}

}  // namespace hongtu
