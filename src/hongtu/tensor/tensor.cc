#include "hongtu/tensor/tensor.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <utility>

#include "hongtu/tensor/pool.h"

namespace hongtu {

Tensor::Tensor(int64_t rows, int64_t cols) : rows_(rows), cols_(cols) {
  data_ = TensorPool::Global().Acquire(rows * cols, &cap_);
  if (data_ != nullptr) {
    std::memset(data_, 0, static_cast<size_t>(rows * cols) * sizeof(float));
  }
}

Tensor::~Tensor() { Reset(); }

void Tensor::Reset() {
  if (owned_ && data_ != nullptr) {
    TensorPool::Global().Release(data_, cap_);
  }
  data_ = nullptr;
  cap_ = 0;
  rows_ = 0;
  cols_ = 0;
  owned_ = true;
}

Tensor::Tensor(Tensor&& o) noexcept
    : rows_(o.rows_),
      cols_(o.cols_),
      data_(o.data_),
      cap_(o.cap_),
      owned_(o.owned_) {
  o.data_ = nullptr;
  o.cap_ = 0;
  o.rows_ = 0;
  o.cols_ = 0;
  o.owned_ = true;
}

Tensor& Tensor::operator=(Tensor&& o) noexcept {
  if (this != &o) {
    Reset();
    rows_ = o.rows_;
    cols_ = o.cols_;
    data_ = o.data_;
    cap_ = o.cap_;
    owned_ = o.owned_;
    o.data_ = nullptr;
    o.cap_ = 0;
    o.rows_ = 0;
    o.cols_ = 0;
    o.owned_ = true;
  }
  return *this;
}

Tensor Tensor::Uninitialized(int64_t rows, int64_t cols) {
  Tensor t;
  t.rows_ = rows;
  t.cols_ = cols;
  t.data_ = TensorPool::Global().Acquire(rows * cols, &t.cap_);
  if (!TensorPool::Global().enabled() && t.data_ != nullptr) {
    // A/B escape hatch (HONGTU_DISABLE_POOL): restore the pre-pool
    // behavior, where every allocation was zero-filled.
    std::memset(t.data_, 0,
                static_cast<size_t>(rows * cols) * sizeof(float));
  }
  return t;
}

Tensor Tensor::View(Tensor& t) { return t.RowSlice(0, t.rows_); }

Tensor Tensor::RowSlice(int64_t row_begin, int64_t count) {
  Tensor v;
  v.rows_ = count;
  v.cols_ = cols_;
  v.data_ = count > 0 ? data_ + row_begin * cols_ : nullptr;
  v.owned_ = false;
  return v;
}

void Tensor::EnsureShape(int64_t rows, int64_t cols) {
  const int64_t need = rows * cols;
  if (TensorPool::Global().enabled()) {
    // Owned storage with enough capacity is reshaped in place (an empty
    // shape keeps the buffer parked for the next non-empty reshape); only
    // views and undersized buffers swap in fresh pooled storage.
    if (owned_ && need <= cap_) {
      rows_ = rows;
      cols_ = cols;
      return;
    }
  } else if (owned_ && rows == rows_ && cols == cols_ &&
             (data_ != nullptr || need == 0)) {
    // A/B escape hatch: the pre-pool code reused a buffer only on an exact
    // shape match and reallocated (zero-filled) otherwise.
    return;
  }
  *this = Uninitialized(rows, cols);
}

void Tensor::EnsureShapeZeroed(int64_t rows, int64_t cols) {
  EnsureShape(rows, cols);
  Zero();
}

Tensor Tensor::GlorotUniform(int64_t rows, int64_t cols, uint64_t seed) {
  Tensor t = Uninitialized(rows, cols);
  Rng rng(seed);
  const float limit = std::sqrt(6.0f / static_cast<float>(rows + cols));
  for (int64_t i = 0; i < t.size(); ++i) {
    t.data()[i] = rng.NextFloat(-limit, limit);
  }
  return t;
}

Tensor Tensor::Gaussian(int64_t rows, int64_t cols, float stddev,
                        uint64_t seed) {
  Tensor t = Uninitialized(rows, cols);
  Rng rng(seed);
  for (int64_t i = 0; i < t.size(); ++i) {
    t.data()[i] = stddev * rng.NextGaussian();
  }
  return t;
}

void Tensor::Fill(float v) { std::fill_n(data_, size(), v); }

void Tensor::Zero() {
  if (data_ != nullptr) {
    std::memset(data_, 0, static_cast<size_t>(bytes()));
  }
}

Tensor Tensor::Clone() const {
  Tensor t = Uninitialized(rows_, cols_);
  if (data_ != nullptr) {
    std::memcpy(t.data(), data_, static_cast<size_t>(bytes()));
  }
  return t;
}

Status Tensor::CopyFrom(const Tensor& src) {
  if (src.rows() != rows_ || src.cols() != cols_) {
    return Status::Invalid("Tensor::CopyFrom shape mismatch");
  }
  if (data_ != nullptr) {
    std::memcpy(data_, src.data(), static_cast<size_t>(bytes()));
  }
  return Status::OK();
}

double Tensor::Norm() const {
  double s = 0.0;
  for (int64_t i = 0; i < size(); ++i) {
    s += static_cast<double>(data_[i]) * data_[i];
  }
  return std::sqrt(s);
}

double Tensor::MaxAbsDiff(const Tensor& a, const Tensor& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) {
    return std::numeric_limits<double>::infinity();
  }
  double m = 0.0;
  for (int64_t i = 0; i < a.size(); ++i) {
    m = std::max(m, static_cast<double>(std::fabs(a.data()[i] - b.data()[i])));
  }
  return m;
}

}  // namespace hongtu
