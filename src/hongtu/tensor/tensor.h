/// \file tensor.h
/// \brief Dense row-major float32 matrix used for vertex representations,
/// layer parameters and gradients.
///
/// HongTu's numeric payloads are all 2-D: (num_vertices x feature_dim) vertex
/// blocks, (in_dim x out_dim) weight matrices, and (1 x d) vectors. Storage
/// is drawn from the process-wide TensorPool (tensor/pool.h): buffers are
/// 64-byte-aligned and recycled through size-bucketed free lists, so the
/// chunk loops' scratch tensors stop hitting the heap after the first epoch.
///
/// Zero-fill is explicit: `Tensor(rows, cols)` / `Zeros` give accumulator
/// semantics (all-zero contents), while `Uninitialized` skips the fill for
/// buffers every element of which is overwritten before being read
/// (activations, GEMM outputs, gather destinations). `EnsureShape` reuses
/// the existing allocation whenever the bucket capacity suffices, which is
/// what keeps per-chunk workspaces allocation-free across chunks and epochs.

#pragma once

#include <cstdint>
#include <vector>

#include "hongtu/common/random.h"
#include "hongtu/common/status.h"

namespace hongtu {

/// Owning (or view; see View/RowSlice), row-major float32 matrix.
class Tensor {
 public:
  Tensor() = default;

  /// Allocates a rows x cols matrix, zero-initialized (accumulator
  /// semantics). Prefer Uninitialized for buffers that are fully overwritten.
  Tensor(int64_t rows, int64_t cols);

  ~Tensor();
  Tensor(Tensor&& o) noexcept;
  Tensor& operator=(Tensor&& o) noexcept;
  Tensor(const Tensor&) = delete;  // deep copies are explicit: Clone()
  Tensor& operator=(const Tensor&) = delete;

  static Tensor Zeros(int64_t rows, int64_t cols) { return Tensor(rows, cols); }

  /// Pooled allocation without the zero fill; contents are arbitrary until
  /// written. For buffers whose every element is overwritten before use.
  static Tensor Uninitialized(int64_t rows, int64_t cols);

  /// Glorot/Xavier-uniform initialization, deterministic under `seed`.
  static Tensor GlorotUniform(int64_t rows, int64_t cols, uint64_t seed);

  /// Gaussian N(0, stddev^2) initialization.
  static Tensor Gaussian(int64_t rows, int64_t cols, float stddev,
                         uint64_t seed);

  /// Non-owning alias of `t`'s full buffer. A view shares storage with (and
  /// is invalidated by the destruction or reallocation of) its source; moves
  /// transfer the alias without copying. Destroying a view releases nothing.
  static Tensor View(Tensor& t);

  /// Non-owning alias of the contiguous rows [row_begin, row_begin + count).
  /// Same aliasing rules as View. Lets epilogues hand out row slices they
  /// only read instead of copying them.
  Tensor RowSlice(int64_t row_begin, int64_t count);

  /// True when this tensor owns (and will release) its storage; false for
  /// default-constructed/empty tensors and views.
  bool owns_data() const { return owned_ && data_ != nullptr; }

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }
  int64_t size() const { return rows_ * cols_; }
  bool empty() const { return size() == 0; }
  /// Payload bytes (float32).
  int64_t bytes() const { return size() * static_cast<int64_t>(sizeof(float)); }
  /// Floats the underlying owned buffer can hold (>= size(); 0 for views).
  int64_t capacity() const { return cap_; }

  /// Reshapes to rows x cols, reusing the existing buffer when it is owned
  /// and large enough (no allocation, contents undefined); otherwise swaps
  /// in a fresh pooled buffer (views always reallocate — they must not
  /// write through the alias). Contents are uninitialized either way.
  void EnsureShape(int64_t rows, int64_t cols);
  /// EnsureShape + zero fill (accumulator reset).
  void EnsureShapeZeroed(int64_t rows, int64_t cols);

  float* data() { return data_; }
  const float* data() const { return data_; }

  float* row(int64_t r) { return data_ + r * cols_; }
  const float* row(int64_t r) const { return data_ + r * cols_; }

  float& at(int64_t r, int64_t c) { return data_[r * cols_ + c]; }
  float at(int64_t r, int64_t c) const { return data_[r * cols_ + c]; }

  /// Sets every element to `v`.
  void Fill(float v);
  /// Sets every element to zero.
  void Zero();

  /// Deep copy (owning, even when cloning a view).
  Tensor Clone() const;

  /// Copies `src` into this tensor; shapes must match.
  Status CopyFrom(const Tensor& src);

  /// Frobenius norm; used by tests.
  double Norm() const;

  /// max |a - b| over all elements; shapes must match or returns +inf.
  static double MaxAbsDiff(const Tensor& a, const Tensor& b);

 private:
  /// Releases owned storage back to the pool.
  void Reset();

  int64_t rows_ = 0;
  int64_t cols_ = 0;
  float* data_ = nullptr;
  int64_t cap_ = 0;    ///< pool bucket capacity in floats (0 for views)
  bool owned_ = true;  ///< false for View/RowSlice aliases
};

}  // namespace hongtu
