/// \file tensor.h
/// \brief Dense row-major float32 matrix used for vertex representations,
/// layer parameters and gradients.
///
/// HongTu's numeric payloads are all 2-D: (num_vertices x feature_dim) vertex
/// blocks, (in_dim x out_dim) weight matrices, and (1 x d) vectors. A minimal
/// owning matrix type keeps the simulated-GPU kernels simple and allocation
/// accounting explicit.

#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "hongtu/common/random.h"
#include "hongtu/common/status.h"

namespace hongtu {

/// Owning, row-major float32 matrix.
class Tensor {
 public:
  Tensor() = default;

  /// Allocates a rows x cols matrix, zero-initialized.
  Tensor(int64_t rows, int64_t cols);

  static Tensor Zeros(int64_t rows, int64_t cols) { return Tensor(rows, cols); }

  /// Glorot/Xavier-uniform initialization, deterministic under `seed`.
  static Tensor GlorotUniform(int64_t rows, int64_t cols, uint64_t seed);

  /// Gaussian N(0, stddev^2) initialization.
  static Tensor Gaussian(int64_t rows, int64_t cols, float stddev,
                         uint64_t seed);

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }
  int64_t size() const { return rows_ * cols_; }
  bool empty() const { return size() == 0; }
  /// Payload bytes (float32).
  int64_t bytes() const { return size() * static_cast<int64_t>(sizeof(float)); }

  float* data() { return data_.get(); }
  const float* data() const { return data_.get(); }

  float* row(int64_t r) { return data_.get() + r * cols_; }
  const float* row(int64_t r) const { return data_.get() + r * cols_; }

  float& at(int64_t r, int64_t c) { return data_.get()[r * cols_ + c]; }
  float at(int64_t r, int64_t c) const { return data_.get()[r * cols_ + c]; }

  /// Sets every element to `v`.
  void Fill(float v);
  /// Sets every element to zero.
  void Zero() { Fill(0.0f); }

  /// Deep copy.
  Tensor Clone() const;

  /// Copies `src` into this tensor; shapes must match.
  Status CopyFrom(const Tensor& src);

  /// Frobenius norm; used by tests.
  double Norm() const;

  /// max |a - b| over all elements; shapes must match or returns +inf.
  static double MaxAbsDiff(const Tensor& a, const Tensor& b);

 private:
  int64_t rows_ = 0;
  int64_t cols_ = 0;
  std::unique_ptr<float[]> data_;
};

}  // namespace hongtu
