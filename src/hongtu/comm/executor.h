/// \file executor.h
/// \brief Runtime data movement of the deduplicated communication framework
/// (Algorithms 2 and 3, plus the in-place buffer management of §6).
///
/// The executor owns, per simulated device, a transition data buffer (stable
/// slots, updated in place across batches) and mirrors all host<->device,
/// device<->device and in-place-reuse traffic into the SimPlatform's meters.
/// Data really moves: host rows are float32 rows of the CPU-resident layer
/// buffer h^l, and assembled neighbor buffers feed the real GNN kernels.
///
/// Mixed-precision mode (kernels/codec.h): when BeginLayer selects a 16-bit
/// wire precision, transition payloads are *stored compressed* — the load
/// step encodes host rows into 2-byte elements, the fetch step decodes them
/// into the fp32 neighbor buffers the kernels consume (convert-on-copy over
/// the plan's owner-grouped index arrays), and the backward push/flush paths
/// quantize each gradient row once on its wire crossing while every
/// accumulator (transition gradients, the host gradient buffer) stays fp32.
/// All byte meters and the device-capacity charge use the compressed width.
///
/// Layer contexts: every entry point exists in a ctx-addressed form
/// (`BeginLayerCtx(ctx, ...)` etc.) so the task-graph executor can keep
/// multiple layers in flight at once — each context owns a full private set
/// of transition buffers, slot buffers and integrity sidecars, and its
/// device-memory charge is registered independently. The classic no-ctx
/// methods delegate to context 0 (the serial and 3-lane pipeline paths).
///
/// Slot-token handshake: `num_slots` in BeginLayerCtx is the capacity of
/// the buffer-slot token pool the task graph hands out (TaskGraph::
/// AddTokenPool) — a load node that acquired token t fills slot t
/// (ForwardLoadSlotCtx), its consumer reads slot_buffers_ctx(ctx, t), and
/// the token returns to the pool only when the releasing store node retires.
/// The device-memory charge below therefore *is* the backpressure budget:
/// tokens exist exactly for the slots BeginLayerCtx reserved against device
/// capacity.

#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

#include "hongtu/comm/dedup_plan.h"
#include "hongtu/common/fault.h"
#include "hongtu/kernels/codec.h"
#include "hongtu/sim/interconnect.h"
#include "hongtu/tensor/tensor.h"

namespace hongtu {

/// Fault tolerance (common/fault.h): both data-movement entry points retry
/// transient failures (injected or real) with capped exponential backoff —
/// ForwardLoad is idempotent and retries wholesale; BackwardAccumulate's
/// fault site fires before any accumulator is touched, so its retry is
/// equally safe. When integrity checking is on (BeginLayer), every
/// transition payload row carries a CRC32C word computed at encode time and
/// verified on every fetch; a corrupted row is repaired by re-fetching it
/// from the host source of truth (metered as extra H2D traffic and counted
/// as a DegradeEvent::kIntegrityRefetch) instead of silently feeding bad
/// bits to the kernels.
class CommExecutor {
 public:
  /// `tl` and `plan` must outlive the executor. `platform` receives all
  /// traffic/time accounting (may be null in pure-correctness tests).
  /// `degrade` (may be null) counts retry/integrity recovery events.
  CommExecutor(const TwoLevelPartition* tl, const DedupPlan* plan,
               SimPlatform* platform,
               fault::DegradationPolicy* degrade = nullptr);

  /// Prepares transition buffers for a layer whose vertex rows have `dim`
  /// columns. Registers device memory; fails with OutOfMemory when a device
  /// cannot hold its transition + neighbor + gradient buffers.
  ///
  /// `num_slots` is the number of chunk batches the concurrent executors
  /// keep in flight (1 = serial) — see the slot-token handshake note above.
  /// The first in-flight chunk shares the merged transition buffer (§6), so
  /// it only costs its remote rows; each extra slot needs a full private
  /// neighbor-buffer copy, because the transition slots it would alias are
  /// already being rewritten for the next batch.
  ///
  /// `wire` selects the element width rows move (and transition payloads are
  /// stored) at: kFp32 keeps today's bit-exact memcpy path; kBf16/kFp16
  /// halve every wire byte.
  ///
  /// `integrity` turns the per-row CRC32C payload words on (default) or off.
  Status BeginLayer(int dim, int num_slots = 1,
                    kernels::CommPrecision wire = kernels::CommPrecision::kFp32,
                    bool integrity = true);

  /// Releases the layer's device buffers.
  void EndLayer();

  /// Algorithm 2: loads the neighbor representations of batch `j` on every
  /// device. `host` is the full (|V| x dim) layer buffer h^l in CPU memory;
  /// on return nbr_bufs->at(i) has shape (|N_ij| x dim).
  Status ForwardLoad(int j, const Tensor& host, std::vector<Tensor>* nbr_bufs);

  /// ForwardLoad into the executor-owned buffers of pipeline slot `slot`
  /// (0 <= slot < the num_slots passed to BeginLayer).
  Status ForwardLoadSlot(int j, int slot, const Tensor& host);

  /// The per-device neighbor buffers of pipeline slot `slot`, as filled by
  /// the most recent ForwardLoadSlot on that slot.
  std::vector<Tensor>& slot_buffers(int slot) {
    return slot_buffers_ctx(0, slot);
  }

  /// Algorithm 3: pushes per-chunk neighbor gradients into owner transition
  /// buffers (inter-GPU), then flushes slots whose vertices do not recur in
  /// batch j+1 to the host gradient buffer where the CPU accumulates them.
  Status BackwardAccumulate(int j, const std::vector<Tensor>& nbr_grads,
                            Tensor* host_grad);

  // ---- Ctx-addressed variants: one independent layer context per
  // concurrently in-flight layer (the task-graph executor cycles two by
  // layer parity). Contexts are created on first BeginLayerCtx and persist
  // (pool-backed host buffers) across layers/epochs.

  Status BeginLayerCtx(int ctx, int dim, int num_slots,
                       kernels::CommPrecision wire, bool integrity);
  void EndLayerCtx(int ctx);
  Status ForwardLoadSlotCtx(int ctx, int j, int slot, const Tensor& host);
  std::vector<Tensor>& slot_buffers_ctx(int ctx, int slot);
  Status BackwardAccumulateCtx(int ctx, int j,
                               const std::vector<Tensor>& nbr_grads,
                               Tensor* host_grad);

  int dim() const { return ctxs_.empty() ? 0 : ctxs_[0].dim; }
  kernels::CommPrecision wire() const {
    return ctxs_.empty() ? kernels::CommPrecision::kFp32 : ctxs_[0].wire;
  }

 private:
  /// Everything one in-flight layer owns. Host-side tensors are pool-backed
  /// and persist across BeginLayer/EndLayer: layers reshape them in place,
  /// so steady-state epochs perform no heap allocations here.
  struct LayerCtx {
    int dim = 0;
    kernels::CommPrecision wire = kernels::CommPrecision::kFp32;
    bool integrity = true;   ///< verify per-row CRC32C on every fetch
    int64_t elem_bytes = 4;  ///< wire bytes per element (CommElemBytes(wire))
    /// Float columns backing one (possibly compressed) transition row:
    /// dim at fp32, ceil(dim / 2) at a 16-bit wire precision.
    int64_t payload_cols = 0;
    std::vector<Tensor> trans;       ///< per-device transition data buffer
    std::vector<Tensor> trans_grad;  ///< per-device transition grad buffer
    /// Per buffer slot: per-device assembled neighbor buffers.
    std::vector<std::vector<Tensor>> slot_nbr;
    std::vector<DeviceAllocation> buf_alloc;
    /// Integrity sidecar, per device: CRC32C of each transition slot's
    /// payload (written by the load step, checked by every fetch) and the
    /// vertex each slot currently holds (the repair path re-encodes that
    /// vertex's host row when a CRC mismatch shows the device copy rotted).
    std::vector<std::vector<uint32_t>> trans_crc;
    std::vector<std::vector<VertexId>> slot_vertex;

    /// Bytes of one transition row's live payload (dim wire elements). CRCs
    /// cover exactly these bytes — at an odd dim with a 16-bit wire the last
    /// payload float is half padding, which step 1 never rewrites.
    int64_t PayloadBytes() const { return dim * elem_bytes; }
  };

  LayerCtx& Ctx(int ctx);

  /// One ForwardLoad attempt (idempotent; the public entry point retries it
  /// on a transient failure).
  Status ForwardLoadAttempt(LayerCtx& c, int j, const Tensor& host,
                            std::vector<Tensor>* nbr_bufs);
  /// One BackwardAccumulate attempt. Its fault site fires before any state
  /// mutation, so retrying a transient failure cannot double-accumulate.
  Status BackwardAccumulateAttempt(LayerCtx& c, int j,
                                   const std::vector<Tensor>& nbr_grads,
                                   Tensor* host_grad);

  const TwoLevelPartition* tl_;
  const DedupPlan* plan_;
  SimPlatform* platform_;
  fault::DegradationPolicy* degrade_ = nullptr;
  /// Process-wide policy (HONGTU_RETRY_SPEC-aware) captured at construction.
  fault::RetryPolicy retry_ = fault::DefaultRetryPolicy();

  /// Layer contexts, grown on demand; index 0 backs the classic no-ctx API.
  /// A deque (stable element addresses) guarded by ctx_mu_: task-graph begin
  /// nodes of different contexts run concurrently, and a LayerCtx& handed
  /// out by Ctx() must survive another context's creation.
  std::deque<LayerCtx> ctxs_;
  std::mutex ctx_mu_;
};

}  // namespace hongtu
