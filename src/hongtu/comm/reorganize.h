/// \file reorganize.h
/// \brief Cost-guided subgraph reorganization (§5.3, Algorithm 4).
///
/// A 2-phase greedy heuristic that permutes chunks to maximize the effect of
/// communication deduplication:
///   Phase 1 (inter-GPU): within every partition i >= 1, chunks are assigned
///     to batches so that each batch groups the chunks with the largest
///     duplicate-neighbor overlap with the running batch union.
///   Phase 2 (intra-GPU): whole batches are reordered so adjacent batches
///     share the most transition vertices.
/// The problem itself is NP-hard (reduction from TSP, §5.3); the greedy runs
/// in O(m n^2) set intersections and is measured by bench/table9.

#pragma once

#include "hongtu/common/status.h"
#include "hongtu/partition/two_level.h"

namespace hongtu {

struct ReorganizeStats {
  /// Pairwise duplicate-neighbor counts captured by each phase (diagnostic).
  int64_t inter_gpu_overlap = 0;
  int64_t intra_gpu_overlap = 0;
};

/// Reorders `tl->chunks` in place per Algorithm 4 and fixes up chunk_id
/// metadata. Chunks never move across partitions (phase 1 permutes within a
/// partition; phase 2 permutes whole batches).
Result<ReorganizeStats> ReorganizePartition(TwoLevelPartition* tl);

}  // namespace hongtu
