#include "hongtu/comm/reorganize.h"

#include <algorithm>
#include <numeric>

namespace hongtu {

namespace {

/// |a intersect b| for sorted vectors.
int64_t IntersectionSize(const std::vector<VertexId>& a,
                         const std::vector<VertexId>& b) {
  int64_t cnt = 0;
  size_t ia = 0, ib = 0;
  while (ia < a.size() && ib < b.size()) {
    if (a[ia] < b[ib]) {
      ++ia;
    } else if (b[ib] < a[ia]) {
      ++ib;
    } else {
      ++cnt;
      ++ia;
      ++ib;
    }
  }
  return cnt;
}

std::vector<VertexId> UnionOf(const std::vector<VertexId>& a,
                              const std::vector<VertexId>& b) {
  std::vector<VertexId> out;
  out.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

/// V_ru of the current chunk arrangement: |N^u_0| + sum |N^u_j \ N^u_{j-1}|.
int64_t HostLoadVolume(const TwoLevelPartition& tl) {
  const int n = tl.num_chunks;
  std::vector<VertexId> prev, cur;
  int64_t v_ru = 0;
  for (int j = 0; j < n; ++j) {
    cur.clear();
    for (int i = 0; i < tl.num_partitions; ++i) {
      cur = UnionOf(cur, tl.chunks[i][j].neighbors);
    }
    if (j == 0) {
      v_ru += static_cast<int64_t>(cur.size());
    } else {
      v_ru += static_cast<int64_t>(cur.size()) - IntersectionSize(cur, prev);
    }
    prev = std::move(cur);
  }
  return v_ru;
}

}  // namespace

Result<ReorganizeStats> ReorganizePartition(TwoLevelPartition* tl) {
  if (tl == nullptr || tl->num_partitions <= 0 || tl->num_chunks <= 0) {
    return Status::Invalid("ReorganizePartition: empty partition");
  }
  const int m = tl->num_partitions;
  const int n = tl->num_chunks;
  ReorganizeStats stats;

  // Cost-model guidance: Eq. 4 is dominated by the host-load volume V_ru.
  // The greedy below usually lowers it, but on inputs whose range order is
  // already near-optimal (e.g. citation graphs) it can regress — in that
  // case we keep the original arrangement.
  const int64_t v_ru_before = HostLoadVolume(*tl);
  std::vector<std::vector<Chunk>> original = tl->chunks;

  // ---- Phase 1: per-partition chunk->batch assignment maximizing overlap
  // with the running batch unions (initialized from partition 0).
  std::vector<std::vector<VertexId>> batch_union(n);
  for (int j = 0; j < n; ++j) {
    batch_union[j] = tl->chunks[0][j].neighbors;
  }
  for (int i = 1; i < m; ++i) {
    std::vector<Chunk>& row = tl->chunks[i];
    std::vector<bool> used(n, false);
    std::vector<Chunk> reordered(n);
    for (int j = 0; j < n; ++j) {
      int best_k = -1;
      int64_t best_overlap = -1;
      for (int k = 0; k < n; ++k) {
        if (used[k]) continue;
        const int64_t ov =
            IntersectionSize(row[k].neighbors, batch_union[j]);
        if (ov > best_overlap) {
          best_overlap = ov;
          best_k = k;
        }
      }
      used[best_k] = true;
      stats.inter_gpu_overlap += best_overlap;
      batch_union[j] = UnionOf(batch_union[j], row[best_k].neighbors);
      reordered[j] = std::move(row[best_k]);
    }
    row = std::move(reordered);
  }

  // ---- Phase 2: batch ordering maximizing adjacent-batch overlap.
  std::vector<int> order;
  order.reserve(n);
  std::vector<bool> placed(n, false);
  order.push_back(0);
  placed[0] = true;
  for (int j = 1; j < n; ++j) {
    const int prev = order.back();
    int best_k = -1;
    int64_t best_overlap = -1;
    for (int k = 0; k < n; ++k) {
      if (placed[k]) continue;
      const int64_t ov = IntersectionSize(batch_union[k], batch_union[prev]);
      if (ov > best_overlap) {
        best_overlap = ov;
        best_k = k;
      }
    }
    placed[best_k] = true;
    stats.intra_gpu_overlap += best_overlap;
    order.push_back(best_k);
  }
  for (int i = 0; i < m; ++i) {
    std::vector<Chunk> reordered(n);
    for (int j = 0; j < n; ++j) {
      reordered[j] = std::move(tl->chunks[i][order[j]]);
    }
    tl->chunks[i] = std::move(reordered);
  }

  // Keep the cheaper arrangement under the cost model.
  if (HostLoadVolume(*tl) > v_ru_before) {
    tl->chunks = std::move(original);
  }

  // Fix metadata.
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      tl->chunks[i][j].partition_id = i;
      tl->chunks[i][j].chunk_id = j;
    }
  }
  return stats;
}

}  // namespace hongtu
