#include "hongtu/comm/dedup_plan.h"

#include <algorithm>
#include <unordered_map>

namespace hongtu {

const char* DedupLevelName(DedupLevel level) {
  switch (level) {
    case DedupLevel::kNone: return "Baseline";
    case DedupLevel::kP2P: return "+P2P";
    case DedupLevel::kP2PReuse: return "+RU";
  }
  return "?";
}

double CommVolumes::CostSeconds(const InterconnectParams& p,
                                int64_t row_bytes) const {
  const double rb = static_cast<double>(row_bytes);
  return static_cast<double>(v_ru) * rb / p.t_hd +
         static_cast<double>(v_ori - v_p2p) * rb / p.t_dd +
         static_cast<double>(v_p2p - v_ru) * rb / p.t_ru;
}

int32_t TransitionStep::SlotOf(VertexId v) const {
  const auto it = std::lower_bound(vertices.begin(), vertices.end(), v);
  if (it == vertices.end() || *it != v) return -1;
  return slots[static_cast<size_t>(it - vertices.begin())];
}

namespace {

/// Sorted-vector union of the chunk neighbor sets of one batch, built by a
/// single k-way merge over the m sorted inputs (one reserve, no O(m·|U|)
/// re-copying of the running union per partition).
std::vector<VertexId> BatchUnion(const TwoLevelPartition& tl, int j) {
  const int m = tl.num_partitions;
  std::vector<VertexId> u;
  if (m == 1) {
    u = tl.chunks[0][j].neighbors;
    return u;
  }
  // Heads of the input lists, kept as a min-heap of (next value, list).
  struct Head {
    VertexId v;
    int list;
  };
  const auto greater = [](const Head& a, const Head& b) { return a.v > b.v; };
  std::vector<Head> heap;
  std::vector<size_t> pos(m, 0);
  int64_t total = 0;
  heap.reserve(m);
  for (int i = 0; i < m; ++i) {
    const auto& nb = tl.chunks[i][j].neighbors;
    total += static_cast<int64_t>(nb.size());
    if (!nb.empty()) heap.push_back({nb[0], i});
  }
  std::make_heap(heap.begin(), heap.end(), greater);
  u.reserve(static_cast<size_t>(total));
  while (!heap.empty()) {
    std::pop_heap(heap.begin(), heap.end(), greater);
    const Head h = heap.back();
    heap.pop_back();
    if (u.empty() || u.back() != h.v) u.push_back(h.v);
    const auto& nb = tl.chunks[h.list][j].neighbors;
    const size_t next = ++pos[h.list];
    if (next < nb.size()) {
      heap.push_back({nb[next], h.list});
      std::push_heap(heap.begin(), heap.end(), greater);
    }
  }
  return u;
}

/// |a \ b| for sorted vectors.
int64_t DifferenceSize(const std::vector<VertexId>& a,
                       const std::vector<VertexId>& b) {
  int64_t cnt = 0;
  size_t ia = 0, ib = 0;
  while (ia < a.size()) {
    while (ib < b.size() && b[ib] < a[ia]) ++ib;
    if (ib >= b.size() || b[ib] != a[ia]) ++cnt;
    ++ia;
  }
  return cnt;
}

/// Slot allocator with stable reuse across adjacent batches.
class SlotAllocator {
 public:
  /// Assigns slots for `step->vertices`; `reuse` enables keeping slots of
  /// vertices present in the previous batch.
  void Assign(bool reuse, TransitionStep* step) {
    const size_t n = step->vertices.size();
    step->slots.assign(n, -1);
    step->reused.assign(n, 0);

    if (!reuse) {
      // Fresh sequential slots every batch.
      for (size_t p = 0; p < n; ++p) {
        step->slots[p] = static_cast<int32_t>(p);
      }
      max_slots_ = std::max<int32_t>(max_slots_, static_cast<int32_t>(n));
      return;
    }

    // Keep slots of retained vertices; recycle dropped slots for new ones.
    std::unordered_map<VertexId, int32_t> next_live;
    next_live.reserve(n * 2);
    std::vector<int32_t> freed;
    // Find dropped vertices: in live_ but not in this batch.
    for (const auto& [v, s] : live_) {
      if (!std::binary_search(step->vertices.begin(), step->vertices.end(),
                              v)) {
        freed.push_back(s);
      }
    }
    std::sort(freed.begin(), freed.end());
    size_t free_pos = 0;
    for (size_t p = 0; p < n; ++p) {
      const VertexId v = step->vertices[p];
      const auto it = live_.find(v);
      if (it != live_.end()) {
        step->slots[p] = it->second;
        step->reused[p] = 1;
      } else if (free_pos < freed.size()) {
        step->slots[p] = freed[free_pos++];
      } else {
        step->slots[p] = max_slots_++;
      }
      next_live.emplace(v, step->slots[p]);
    }
    live_ = std::move(next_live);
  }

  int32_t max_slots() const { return max_slots_; }

 private:
  std::unordered_map<VertexId, int32_t> live_;
  int32_t max_slots_ = 0;
};

}  // namespace

Result<DedupPlan> BuildDedupPlan(const TwoLevelPartition& tl,
                                 DedupLevel level) {
  if (tl.num_partitions <= 0 || tl.num_chunks <= 0) {
    return Status::Invalid("BuildDedupPlan: empty partition");
  }
  const int m = tl.num_partitions;
  const int n = tl.num_chunks;

  DedupPlan plan;
  plan.level = level;
  plan.num_partitions = m;
  plan.num_chunks = n;
  plan.transition.assign(m, std::vector<TransitionStep>(n));
  plan.fetch.assign(m, std::vector<FetchPlan>(n));
  plan.buffer_slots.assign(m, 0);

  // ---- Volumes (properties of the partition, independent of `level`).
  std::vector<std::vector<VertexId>> unions(n);
  for (int j = 0; j < n; ++j) unions[j] = BatchUnion(tl, j);
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      plan.volumes.v_ori += tl.chunks[i][j].num_neighbors();
    }
  }
  for (int j = 0; j < n; ++j) {
    plan.volumes.v_p2p += static_cast<int64_t>(unions[j].size());
  }
  plan.volumes.v_ru = static_cast<int64_t>(unions[0].size());
  for (int j = 1; j < n; ++j) {
    plan.volumes.v_ru += DifferenceSize(unions[j], unions[j - 1]);
  }

  // ---- Transition steps.
  if (level == DedupLevel::kNone) {
    // Baseline: every device loads its own chunk's full neighbor set.
    // Vertices homed on another partition's socket cross QPI (Fig. 1);
    // with a two-socket host, partitions {0,1} and {2,3} share a socket.
    const auto socket_of = [m](int partition) {
      return m > 1 ? (partition * 2) / m : 0;
    };
    for (int i = 0; i < m; ++i) {
      SlotAllocator alloc;
      for (int j = 0; j < n; ++j) {
        TransitionStep& step = plan.transition[i][j];
        step.vertices = tl.chunks[i][j].neighbors;
        for (VertexId v : step.vertices) {
          if (socket_of(tl.partition_of[v]) != socket_of(i)) {
            ++step.numa_remote_rows;
          }
        }
        alloc.Assign(/*reuse=*/false, &step);
      }
      plan.buffer_slots[i] = alloc.max_slots();
    }
  } else {
    // Owner split of the batch union: vertex v is handled by the device
    // whose metis partition contains v (§5.1).
    for (int i = 0; i < m; ++i) {
      SlotAllocator alloc;
      for (int j = 0; j < n; ++j) {
        TransitionStep& step = plan.transition[i][j];
        for (VertexId v : unions[j]) {
          if (tl.partition_of[v] == i) step.vertices.push_back(v);
        }
        alloc.Assign(/*reuse=*/level == DedupLevel::kP2PReuse, &step);
      }
      plan.buffer_slots[i] = alloc.max_slots();
    }
  }

  // ---- Flush schedule for backward accumulation: a slot's gradient is
  // flushed at the vertex's *last* consecutive occurrence. The per-step
  // traffic counts (h2d/ru/flush rows) are invariant across epochs, so they
  // are folded here once instead of being recounted by every ForwardLoad.
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      TransitionStep& step = plan.transition[i][j];
      step.flush.assign(step.vertices.size(), 1);
      if (level == DedupLevel::kP2PReuse && j + 1 < n) {
        const TransitionStep& next = plan.transition[i][j + 1];
        for (size_t p = 0; p < step.vertices.size(); ++p) {
          const int32_t s = next.SlotOf(step.vertices[p]);
          // Retained only when the next batch reuses the same slot.
          if (s == step.slots[p]) step.flush[p] = 0;
        }
      }
      for (size_t p = 0; p < step.vertices.size(); ++p) {
        if (step.reused[p]) {
          ++step.ru_rows;
        } else {
          ++step.h2d_rows;
        }
        if (step.flush[p]) ++step.flush_rows;
      }
    }
  }

  // ---- Fetch plans.
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      const Chunk& c = tl.chunks[i][j];
      FetchPlan& f = plan.fetch[i][j];
      f.owner.resize(c.neighbors.size());
      f.slot.resize(c.neighbors.size());
      for (size_t p = 0; p < c.neighbors.size(); ++p) {
        const VertexId v = c.neighbors[p];
        const int owner =
            (level == DedupLevel::kNone) ? i : tl.partition_of[v];
        const int32_t slot = plan.transition[owner][j].SlotOf(v);
        if (slot < 0) {
          return Status::Internal("BuildDedupPlan: vertex missing from owner "
                                  "transition step");
        }
        f.owner[p] = owner;
        f.slot[p] = slot;
        if (owner != i) {
          ++plan.volumes.v_remote_fetch;
          ++f.remote_rows;
        }
      }

      // Owner-grouped gather arrays: a counting sort of the entries by
      // owner, so the executor's fetch/accumulate loops index one owner
      // buffer per contiguous range instead of resolving the owner per row.
      const size_t nn = c.neighbors.size();
      f.group_off.assign(static_cast<size_t>(m) + 1, 0);
      for (size_t p = 0; p < nn; ++p) {
        ++f.group_off[static_cast<size_t>(f.owner[p]) + 1];
      }
      for (int o = 0; o < m; ++o) f.group_off[o + 1] += f.group_off[o];
      f.group_pos.resize(nn);
      f.group_slot.resize(nn);
      std::vector<int64_t> pos(f.group_off.begin(), f.group_off.end() - 1);
      for (size_t p = 0; p < nn; ++p) {
        const int64_t k = pos[static_cast<size_t>(f.owner[p])]++;
        f.group_pos[k] = static_cast<int32_t>(p);
        f.group_slot[k] = f.slot[p];
      }
    }
  }
  return plan;
}

}  // namespace hongtu
