/// \file dedup_plan.h
/// \brief Deduplicated-communication planning (§5.1-§5.3).
///
/// For every batch j the plan computes the transition vertex set
/// N^u_j = U_i N_ij, splits it by owner partition (the metis partition each
/// vertex belongs to), and assigns stable buffer slots so that vertices
/// shared between adjacent batches (N^gpu) are reused in place while the
/// rest (N^cpu) are loaded from host memory (§6, in-place transition data
/// management). It also evaluates the communication volumes
///   V_ori  = sum_ij |N_ij|                      (vanilla per-chunk loading)
///   V_p2p  = sum_j |N^u_j|                      (after inter-GPU dedup)
///   V_ru   = |N^u_0| + sum_j |N^u_j \ N^u_{j-1}| (after intra-GPU reuse)
/// and the Eq. 4 cost C = V_ru/T_hd + (V_ori-V_p2p)/T_dd + (V_p2p-V_ru)/T_ru.

#pragma once

#include <cstdint>
#include <vector>

#include "hongtu/common/status.h"
#include "hongtu/partition/two_level.h"
#include "hongtu/sim/interconnect.h"

namespace hongtu {

/// Which dedup optimizations are active. Matches the Fig. 9 ablation:
/// kNone = "Baseline", kP2P = "+P2P", kP2PReuse = "+RU".
enum class DedupLevel : int { kNone = 0, kP2P = 1, kP2PReuse = 2 };

const char* DedupLevelName(DedupLevel level);

/// Communication volumes in vertex-rows (multiply by row bytes for traffic).
struct CommVolumes {
  int64_t v_ori = 0;
  int64_t v_p2p = 0;
  int64_t v_ru = 0;
  /// Exact count of remote (cross-device) fetches the executor performs.
  int64_t v_remote_fetch = 0;

  /// Eq. 4 with all terms scaled by `row_bytes`.
  double CostSeconds(const InterconnectParams& p, int64_t row_bytes) const;
};

/// Per (device, batch): the transition vertices this device loads/hosts.
struct TransitionStep {
  std::vector<VertexId> vertices;  ///< ascending global ids
  std::vector<int32_t> slots;      ///< stable slot per vertex
  std::vector<uint8_t> reused;     ///< 1 = N^gpu (reuse in place), 0 = N^cpu
  /// 1 = after this batch's backward accumulation the slot's gradient is
  /// flushed to host; 0 = retained for the next batch (intra-GPU reuse).
  std::vector<uint8_t> flush;
  /// Vertices homed on a different partition than this device (NUMA-remote
  /// host access; nonzero only for the Baseline level, where each device
  /// loads its chunk's whole neighbor set regardless of ownership).
  int64_t numa_remote_rows = 0;

  /// Invariant per-epoch traffic counts, precomputed at plan build so the
  /// executor never re-walks the vertex lists just to meter: entries loaded
  /// from host (reused[p] == 0), entries reused in place (reused[p] == 1),
  /// and slots flushed after backward (flush[p] == 1).
  int64_t h2d_rows = 0;
  int64_t ru_rows = 0;
  int64_t flush_rows = 0;

  /// Binary-search lookup of a vertex's slot; -1 if absent.
  int32_t SlotOf(VertexId v) const;
};

/// Per (device, batch): how to assemble the chunk's neighbor buffer from the
/// transition buffers (pull-based, Algorithm 2 lines 5-7).
struct FetchPlan {
  std::vector<int32_t> owner;  ///< device holding each neighbor entry
  std::vector<int32_t> slot;   ///< slot within the owner's transition buffer
  int64_t remote_rows = 0;     ///< entries whose owner is another device

  /// The same entries regrouped by owner device, flattened at plan build:
  /// entries k in [group_off[o], group_off[o+1]) pull owner o's transition
  /// slot group_slot[k] into neighbor-buffer row group_pos[k]. The executor
  /// fetch loops become pure indexed memcpy against a single owner buffer
  /// per group, and backward accumulation parallelizes within a group
  /// (slots are unique inside one plan, so rows never collide).
  std::vector<int64_t> group_off;   ///< [num_partitions + 1]
  std::vector<int32_t> group_pos;   ///< neighbor-buffer row per entry
  std::vector<int32_t> group_slot;  ///< owner transition slot per entry
};

/// The complete communication plan for a (reorganized) 2-level partition.
struct DedupPlan {
  DedupLevel level = DedupLevel::kP2PReuse;
  int num_partitions = 0;
  int num_chunks = 0;
  std::vector<std::vector<TransitionStep>> transition;  ///< [m][n]
  std::vector<std::vector<FetchPlan>> fetch;            ///< [m][n]
  std::vector<int32_t> buffer_slots;  ///< transition-buffer slots per device
  CommVolumes volumes;
};

/// Builds the plan. The volumes member reports V_ori/V_p2p/V_ru for the
/// partition regardless of `level`; the executor's actual traffic follows
/// `level`.
Result<DedupPlan> BuildDedupPlan(const TwoLevelPartition& tl, DedupLevel level);

}  // namespace hongtu
