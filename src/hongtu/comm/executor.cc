#include "hongtu/comm/executor.h"

#include <algorithm>
#include <atomic>
#include <cstring>

#include "hongtu/common/crc32c.h"
#include "hongtu/common/parallel.h"
#include "hongtu/kernels/backend.h"

namespace hongtu {

namespace {
constexpr int64_t kF32 = static_cast<int64_t>(sizeof(float));
}

CommExecutor::CommExecutor(const TwoLevelPartition* tl, const DedupPlan* plan,
                           SimPlatform* platform,
                           fault::DegradationPolicy* degrade)
    : tl_(tl), plan_(plan), platform_(platform), degrade_(degrade) {}

Status CommExecutor::BeginLayer(int dim, int num_slots,
                                kernels::CommPrecision wire, bool integrity) {
  EndLayer();
  dim_ = dim;
  wire_ = wire;
  integrity_ = integrity;
  elem_bytes_ = kernels::CommElemBytes(wire);
  // Compressed rows pack two 16-bit elements per float column; the payload
  // behind a transition row shrinks with the wire width.
  payload_cols_ = wire == kernels::CommPrecision::kFp32
                      ? dim
                      : (static_cast<int64_t>(dim) + 1) / 2;
  const int m = plan_->num_partitions;
  num_slots = std::max(1, num_slots);
  buf_alloc_.clear();
  // Host-side buffers persist across layers and epochs: EnsureShape reuses
  // the existing pooled storage whenever the new layer's working set fits,
  // so steady-state BeginLayer performs no allocations.
  trans_.resize(static_cast<size_t>(m));
  trans_grad_.resize(static_cast<size_t>(m));
  slot_nbr_.resize(static_cast<size_t>(num_slots));
  for (auto& slot : slot_nbr_) slot.resize(static_cast<size_t>(m));
  for (int i = 0; i < m; ++i) {
    const int64_t slots = plan_->buffer_slots[i];
    // Transition data: every slot the fetch plans read is written by the
    // same batch's load step (batch 0 reuses nothing), so no zero fill.
    // Transition gradients accumulate across batches and must start clean —
    // and stay fp32 regardless of the wire precision (the accumulation
    // contract of kernels/codec.h).
    trans_[i].EnsureShape(slots, payload_cols_);
    trans_grad_[i].EnsureShapeZeroed(slots, dim);
    if (integrity_) {
      // Integrity sidecar. No clearing needed: the plan guarantees every
      // slot a fetch reads was written by a load step of this layer first,
      // which (re)stamps both entries. Steady-state resizes are no-ops.
      if (trans_crc_.size() != static_cast<size_t>(m)) {
        trans_crc_.resize(static_cast<size_t>(m));
        slot_vertex_.resize(static_cast<size_t>(m));
      }
      trans_crc_[i].resize(static_cast<size_t>(slots));
      slot_vertex_[i].resize(static_cast<size_t>(slots));
    }
    if (platform_ != nullptr) {
      // Device memory accounting follows the paper's merged-buffer design
      // (§6 "Data buffer deduplication"): the transition set and the chunk's
      // neighbor set share one buffer, so beyond the transition slots only
      // the remotely-fetched rows need extra storage. The data side (and
      // every extra in-flight pipeline slot's private neighbor copy) is
      // charged at the wire width: the modeled device keeps payloads
      // compressed end to end and its aggregation kernels consume 16-bit
      // rows directly (as GPU SpMM does) — the decode into fp32 below is
      // the CPU simulation vehicle, not part of the modeled footprint. The
      // gradient side stays a full fp32 accumulator and is charged as such.
      int64_t max_remote = 0;
      int64_t max_nbr = 0;
      for (int j = 0; j < plan_->num_chunks; ++j) {
        max_remote = std::max(max_remote, plan_->fetch[i][j].remote_rows);
        max_nbr = std::max(
            max_nbr, static_cast<int64_t>(plan_->fetch[i][j].owner.size()));
      }
      const int64_t bytes =
          (slots + max_remote) * dim * (elem_bytes_ + kF32) +
          (num_slots - 1) * max_nbr * dim * elem_bytes_;
      HT_RETURN_IF_ERROR(
          fault::RetryTransient(retry_, degrade_, "pool.alloc", [&] {
            return platform_->device(i).Allocate(bytes, "comm buffers");
          }));
      buf_alloc_.emplace_back(&platform_->device(i), bytes);
    }
  }
  return Status::OK();
}

void CommExecutor::EndLayer() {
  // Only the device-memory registrations are released; the host-side pooled
  // buffers stay parked in the executor for the next layer.
  buf_alloc_.clear();
  dim_ = 0;
}

Status CommExecutor::ForwardLoad(int j, const Tensor& host,
                                 std::vector<Tensor>* nbr_bufs) {
  // The whole load is idempotent — every transition/neighbor row it writes
  // is recomputed from the host buffer — so a transient failure (injected
  // or an unrepaired integrity loss) retries it wholesale.
  return fault::RetryTransient(retry_, degrade_, "comm.fetch", [&] {
    return ForwardLoadAttempt(j, host, nbr_bufs);
  });
}

Status CommExecutor::ForwardLoadAttempt(int j, const Tensor& host,
                                        std::vector<Tensor>* nbr_bufs) {
  if (dim_ == 0 || host.cols() != dim_) {
    return Status::Invalid("CommExecutor::ForwardLoad: BeginLayer(dim) "
                           "mismatch with host buffer");
  }
  // Fault site `comm.fetch`. A corrupt fire does not fail the call here —
  // it flips payload bits after the load step below, exercising the CRC
  // verify-and-repair path the way real link corruption would.
  bool corrupt_payload = false;
  switch (fault::Check(fault::Site::kCommFetch)) {
    case fault::Kind::kNone:
    case fault::Kind::kKill:
      break;
    case fault::Kind::kTransient:
      return Status::Unavailable("injected transient fault at comm.fetch");
    case fault::Kind::kPermanent:
      return Status::Internal("injected permanent fault at comm.fetch");
    case fault::Kind::kCorrupt:
      corrupt_payload = true;
      break;
  }
  const int m = plan_->num_partitions;
  const kernels::Backend kb = kernels::ActiveBackend();
  const bool packed = wire_ != kernels::CommPrecision::kFp32;
  nbr_bufs->resize(m);

  // Step 1 (Alg. 2 lines 1-4): fill transition buffers. N^gpu entries are
  // reused in place; N^cpu entries are loaded from host (zero-copy model),
  // encoded to the wire width as they land. Traffic counts (h2d/ru rows)
  // are epoch-invariant and come precomputed from the plan.
  for (int i = 0; i < m; ++i) {
    const TransitionStep& step = plan_->transition[i][j];
    Tensor& tb = trans_[i];
    ParallelForChunked(
        0, static_cast<int64_t>(step.vertices.size()),
        [&](int64_t lo, int64_t hi) {
          for (int64_t p = lo; p < hi; ++p) {
            // A reused slot already holds this vertex's payload (and its
            // still-valid CRC/vertex sidecar from the batch that wrote it).
            if (step.reused[p]) continue;
            if (packed) {
              kernels::EncodeRows(
                  kb, wire_, host.row(step.vertices[p]), dim_,
                  reinterpret_cast<uint16_t*>(tb.row(step.slots[p])));
            } else {
              std::memcpy(tb.row(step.slots[p]),
                          host.row(step.vertices[p]),
                          static_cast<size_t>(dim_) * sizeof(float));
            }
            if (integrity_) {
              const int64_t slot = step.slots[p];
              trans_crc_[i][static_cast<size_t>(slot)] =
                  Crc32c(tb.row(slot), static_cast<size_t>(PayloadBytes()));
              slot_vertex_[i][static_cast<size_t>(slot)] = step.vertices[p];
            }
          }
        });
    if (platform_ != nullptr) {
      // NUMA-remote rows (Baseline only) cross the socket interconnect.
      const int64_t remote = std::min(step.numa_remote_rows, step.h2d_rows);
      platform_->AddH2D(i, (step.h2d_rows - remote) * dim_ * elem_bytes_);
      platform_->AddH2DRemote(i, remote * dim_ * elem_bytes_);
      platform_->AddReuse(i, step.ru_rows * dim_ * elem_bytes_);
    }
  }
  if (platform_ != nullptr) platform_->Synchronize();

  if (corrupt_payload) {
    // Injected corruption: flip every byte of the first transition row this
    // batch will fetch. With integrity on the CRC check below catches and
    // repairs it; with integrity off it flows into the kernels silently —
    // which is exactly the baseline the integrity feature exists to beat.
    for (int i = 0; i < m && corrupt_payload; ++i) {
      const FetchPlan& f = plan_->fetch[i][j];
      for (int o = 0; o < m && corrupt_payload; ++o) {
        if (f.group_off[o + 1] <= f.group_off[o]) continue;
        const int64_t slot = f.group_slot[static_cast<size_t>(f.group_off[o])];
        unsigned char* row = reinterpret_cast<unsigned char*>(trans_[o].row(slot));
        for (int64_t b = 0; b < PayloadBytes(); ++b) row[b] ^= 0xFF;
        corrupt_payload = false;
      }
    }
  }

  // Step 2 (Alg. 2 lines 5-8): assemble neighbor buffers by pulling from
  // local/remote transition buffers (GPUDirect P2P model). The interleaved
  // schedule of the paper avoids contention; here devices are processed
  // sequentially so results are deterministic. The owner-grouped plan
  // arrays make each group a pure indexed copy against one owner buffer —
  // a memcpy at fp32, a decode (convert-on-copy) at a 16-bit wire: the link
  // carries the compressed payload, the consumer-side fp32 working copy is
  // assembled in passing.
  std::atomic<bool> unrepairable{false};
  for (int i = 0; i < m; ++i) {
    const FetchPlan& f = plan_->fetch[i][j];
    const int64_t nn = static_cast<int64_t>(f.owner.size());
    Tensor& nb = (*nbr_bufs)[i];
    nb.EnsureShape(nn, dim_);  // every row is assembled below
    for (int o = 0; o < m; ++o) {
      Tensor& tb = trans_[o];
      ParallelForChunked(
          f.group_off[o], f.group_off[o + 1], [&](int64_t lo, int64_t hi) {
            for (int64_t k = lo; k < hi; ++k) {
              const int64_t slot = f.group_slot[k];
              if (integrity_) {
                // Verify the payload against its load-time CRC before the
                // row is consumed. On mismatch, repair in place from the
                // host source of truth (an extra metered H2D row) and
                // re-verify. Race-free: slots are unique within a group,
                // groups of one device run sequentially, and device loops
                // are sequential.
                const uint32_t want = trans_crc_[o][static_cast<size_t>(slot)];
                if (Crc32c(tb.row(slot),
                           static_cast<size_t>(PayloadBytes())) != want) {
                  if (packed) {
                    kernels::EncodeRows(
                        kb, wire_,
                        host.row(slot_vertex_[o][static_cast<size_t>(slot)]),
                        dim_, reinterpret_cast<uint16_t*>(tb.row(slot)));
                  } else {
                    std::memcpy(
                        tb.row(slot),
                        host.row(slot_vertex_[o][static_cast<size_t>(slot)]),
                        static_cast<size_t>(dim_) * sizeof(float));
                  }
                  if (platform_ != nullptr) {
                    platform_->AddH2D(o, dim_ * elem_bytes_);
                  }
                  if (Crc32c(tb.row(slot),
                             static_cast<size_t>(PayloadBytes())) != want) {
                    // Even the host row no longer reproduces the recorded
                    // CRC — the sidecar itself rotted. Fail the attempt;
                    // the retry wrapper reloads the layer wholesale.
                    unrepairable.store(true, std::memory_order_relaxed);
                    continue;
                  }
                  if (degrade_ != nullptr) {
                    degrade_->Record(
                        fault::DegradeEvent::kIntegrityRefetch,
                        "comm.fetch: CRC mismatch on device " +
                            std::to_string(o) + " slot " +
                            std::to_string(slot) + ", repaired from host");
                  }
                }
              }
              if (packed) {
                kernels::DecodeRows(
                    kb, wire_,
                    reinterpret_cast<const uint16_t*>(tb.row(slot)),
                    dim_, nb.row(f.group_pos[k]));
              } else {
                std::memcpy(nb.row(f.group_pos[k]), tb.row(slot),
                            static_cast<size_t>(dim_) * sizeof(float));
              }
            }
          });
    }
    if (platform_ != nullptr) {
      platform_->AddD2D(i, f.remote_rows * dim_ * elem_bytes_);
      platform_->AddReuse(i, (nn - f.remote_rows) * dim_ * elem_bytes_);
    }
  }
  if (platform_ != nullptr) platform_->Synchronize();
  if (unrepairable.load(std::memory_order_relaxed)) {
    return Status::DataLoss(
        "CommExecutor::ForwardLoad: transition payload failed CRC32C even "
        "after host refetch");
  }
  return Status::OK();
}

Status CommExecutor::ForwardLoadSlot(int j, int slot, const Tensor& host) {
  if (slot < 0 || static_cast<size_t>(slot) >= slot_nbr_.size()) {
    return Status::Invalid("CommExecutor::ForwardLoadSlot: slot out of "
                           "range; BeginLayer(dim, num_slots) first");
  }
  return ForwardLoad(j, host, &slot_nbr_[static_cast<size_t>(slot)]);
}

Status CommExecutor::BackwardAccumulate(int j,
                                        const std::vector<Tensor>& nbr_grads,
                                        Tensor* host_grad) {
  return fault::RetryTransient(retry_, degrade_, "comm.flush", [&] {
    return BackwardAccumulateAttempt(j, nbr_grads, host_grad);
  });
}

Status CommExecutor::BackwardAccumulateAttempt(
    int j, const std::vector<Tensor>& nbr_grads, Tensor* host_grad) {
  if (dim_ == 0 || host_grad->cols() != dim_) {
    return Status::Invalid("CommExecutor::BackwardAccumulate: BeginLayer(dim) "
                           "mismatch with host gradient buffer");
  }
  // Fault site `comm.flush`. Must fire before any accumulation happens:
  // the push/flush below mutates trans_grad_ and host_grad, so the only
  // safe retry point is the very entry of the attempt.
  HT_RETURN_IF_ERROR(fault::Poke(fault::Site::kCommFlush));
  const int m = plan_->num_partitions;
  const kernels::Backend kb = kernels::ActiveBackend();
  const bool packed = wire_ != kernels::CommPrecision::kFp32;

  // Step 1 (Alg. 3 lines 1-4): push neighbor gradients to owner transition
  // grad buffers. Devices are processed sequentially (the paper interleaves
  // P2P windows to avoid contention; sequential = deterministic here), but
  // within one device the owner-grouped plan arrays parallelize the
  // accumulation: slots are unique inside a plan, so no two entries of a
  // group write the same transition row. At a 16-bit wire each pushed row is
  // quantized once in flight (QuantizeAccumRows) — the transition-gradient
  // accumulator itself stays fp32.
  for (int i = 0; i < m; ++i) {
    const FetchPlan& f = plan_->fetch[i][j];
    const Tensor& ng = nbr_grads[i];
    for (int o = 0; o < m; ++o) {
      Tensor& tg = trans_grad_[o];
      ParallelForChunked(
          f.group_off[o], f.group_off[o + 1], [&](int64_t lo, int64_t hi) {
            for (int64_t k = lo; k < hi; ++k) {
              kernels::QuantizeAccumRows(kb, wire_, ng.row(f.group_pos[k]),
                                         dim_, tg.row(f.group_slot[k]));
            }
          });
    }
    if (platform_ != nullptr) {
      platform_->AddD2D(i, f.remote_rows * dim_ * elem_bytes_);
    }
  }
  if (platform_ != nullptr) platform_->Synchronize();

  // Step 2 (Alg. 3 lines 5-8): flush slots whose vertex does not recur in
  // the next batch; the host CPU accumulates them into grad buffer. Slots
  // retained (flush=0) keep accumulating across batches (in-place reuse).
  // A flushed row crosses the host link once — quantized at the wire width,
  // decoded into the fp32 host accumulator (fp32 flush accumulation).
  // Race-free parallel: vertices are unique within a step, slots unique per
  // device; the flushed-row count comes precomputed from the plan.
  for (int i = 0; i < m; ++i) {
    const TransitionStep& step = plan_->transition[i][j];
    Tensor& tg = trans_grad_[i];
    ParallelForChunked(
        0, static_cast<int64_t>(step.vertices.size()),
        [&](int64_t lo, int64_t hi) {
          for (int64_t p = lo; p < hi; ++p) {
            if (!step.flush[p]) continue;
            float* dst = host_grad->row(step.vertices[p]);
            float* src = tg.row(step.slots[p]);
            if (packed) {
              kernels::QuantizeAccumRows(kb, wire_, src, dim_, dst);
              std::memset(src, 0,
                          static_cast<size_t>(dim_) * sizeof(float));
            } else {
              for (int d = 0; d < dim_; ++d) {
                dst[d] += src[d];
                src[d] = 0.0f;  // slot is recycled clean
              }
            }
          }
        });
    if (platform_ != nullptr) {
      const int64_t remote = std::min(step.numa_remote_rows, step.flush_rows);
      platform_->AddH2D(i, (step.flush_rows - remote) * dim_ * elem_bytes_);
      platform_->AddH2DRemote(i, remote * dim_ * elem_bytes_);
      platform_->AddCpuAccum(step.flush_rows * dim_ * kF32);
    }
  }
  if (platform_ != nullptr) platform_->Synchronize();
  return Status::OK();
}

}  // namespace hongtu
