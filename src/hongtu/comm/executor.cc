#include "hongtu/comm/executor.h"

#include <algorithm>
#include <atomic>
#include <cstring>

#include "hongtu/common/crc32c.h"
#include "hongtu/common/parallel.h"
#include "hongtu/kernels/backend.h"

namespace hongtu {

namespace {
constexpr int64_t kF32 = static_cast<int64_t>(sizeof(float));
}

CommExecutor::CommExecutor(const TwoLevelPartition* tl, const DedupPlan* plan,
                           SimPlatform* platform,
                           fault::DegradationPolicy* degrade)
    : tl_(tl), plan_(plan), platform_(platform), degrade_(degrade) {}

CommExecutor::LayerCtx& CommExecutor::Ctx(int ctx) {
  std::lock_guard<std::mutex> lk(ctx_mu_);
  while (static_cast<size_t>(ctx) >= ctxs_.size()) ctxs_.emplace_back();
  return ctxs_[static_cast<size_t>(ctx)];
}

Status CommExecutor::BeginLayer(int dim, int num_slots,
                                kernels::CommPrecision wire, bool integrity) {
  return BeginLayerCtx(0, dim, num_slots, wire, integrity);
}

void CommExecutor::EndLayer() { EndLayerCtx(0); }

Status CommExecutor::BeginLayerCtx(int ctx, int dim, int num_slots,
                                   kernels::CommPrecision wire,
                                   bool integrity) {
  LayerCtx& c = Ctx(ctx);
  EndLayerCtx(ctx);
  c.dim = dim;
  c.wire = wire;
  c.integrity = integrity;
  c.elem_bytes = kernels::CommElemBytes(wire);
  // Compressed rows pack two 16-bit elements per float column; the payload
  // behind a transition row shrinks with the wire width.
  c.payload_cols = wire == kernels::CommPrecision::kFp32
                       ? dim
                       : (static_cast<int64_t>(dim) + 1) / 2;
  const int m = plan_->num_partitions;
  num_slots = std::max(1, num_slots);
  c.buf_alloc.clear();
  // Host-side buffers persist across layers and epochs: EnsureShape reuses
  // the existing pooled storage whenever the new layer's working set fits,
  // so steady-state BeginLayer performs no allocations.
  c.trans.resize(static_cast<size_t>(m));
  c.trans_grad.resize(static_cast<size_t>(m));
  c.slot_nbr.resize(static_cast<size_t>(num_slots));
  for (auto& slot : c.slot_nbr) slot.resize(static_cast<size_t>(m));
  for (int i = 0; i < m; ++i) {
    const int64_t slots = plan_->buffer_slots[i];
    // Transition data: every slot the fetch plans read is written by the
    // same batch's load step (batch 0 reuses nothing), so no zero fill.
    // Transition gradients accumulate across batches and must start clean —
    // and stay fp32 regardless of the wire precision (the accumulation
    // contract of kernels/codec.h).
    c.trans[i].EnsureShape(slots, c.payload_cols);
    c.trans_grad[i].EnsureShapeZeroed(slots, dim);
    if (c.integrity) {
      // Integrity sidecar. No clearing needed: the plan guarantees every
      // slot a fetch reads was written by a load step of this layer first,
      // which (re)stamps both entries. Steady-state resizes are no-ops.
      if (c.trans_crc.size() != static_cast<size_t>(m)) {
        c.trans_crc.resize(static_cast<size_t>(m));
        c.slot_vertex.resize(static_cast<size_t>(m));
      }
      c.trans_crc[i].resize(static_cast<size_t>(slots));
      c.slot_vertex[i].resize(static_cast<size_t>(slots));
    }
    if (platform_ != nullptr) {
      // Device memory accounting follows the paper's merged-buffer design
      // (§6 "Data buffer deduplication"): the transition set and the chunk's
      // neighbor set share one buffer, so beyond the transition slots only
      // the remotely-fetched rows need extra storage. The data side (and
      // every extra in-flight slot's private neighbor copy) is charged at
      // the wire width: the modeled device keeps payloads compressed end to
      // end and its aggregation kernels consume 16-bit rows directly (as GPU
      // SpMM does) — the decode into fp32 below is the CPU simulation
      // vehicle, not part of the modeled footprint. The gradient side stays
      // a full fp32 accumulator and is charged as such. This charge is the
      // budget the task graph's buffer-slot tokens draw from: `num_slots`
      // tokens <=> `num_slots` reserved in-flight slots.
      int64_t max_remote = 0;
      int64_t max_nbr = 0;
      for (int j = 0; j < plan_->num_chunks; ++j) {
        max_remote = std::max(max_remote, plan_->fetch[i][j].remote_rows);
        max_nbr = std::max(
            max_nbr, static_cast<int64_t>(plan_->fetch[i][j].owner.size()));
      }
      const int64_t bytes =
          (slots + max_remote) * dim * (c.elem_bytes + kF32) +
          (num_slots - 1) * max_nbr * dim * c.elem_bytes;
      HT_RETURN_IF_ERROR(
          fault::RetryTransient(retry_, degrade_, "pool.alloc", [&] {
            return platform_->device(i).Allocate(bytes, "comm buffers");
          }));
      c.buf_alloc.emplace_back(&platform_->device(i), bytes);
    }
  }
  return Status::OK();
}

void CommExecutor::EndLayerCtx(int ctx) {
  if (static_cast<size_t>(ctx) >= ctxs_.size()) return;
  // Only the device-memory registrations are released; the host-side pooled
  // buffers stay parked in the context for the next layer.
  ctxs_[static_cast<size_t>(ctx)].buf_alloc.clear();
  ctxs_[static_cast<size_t>(ctx)].dim = 0;
}

std::vector<Tensor>& CommExecutor::slot_buffers_ctx(int ctx, int slot) {
  return Ctx(ctx).slot_nbr[static_cast<size_t>(slot)];
}

Status CommExecutor::ForwardLoad(int j, const Tensor& host,
                                 std::vector<Tensor>* nbr_bufs) {
  // The whole load is idempotent — every transition/neighbor row it writes
  // is recomputed from the host buffer — so a transient failure (injected
  // or an unrepaired integrity loss) retries it wholesale.
  return fault::RetryTransient(retry_, degrade_, "comm.fetch", [&] {
    return ForwardLoadAttempt(Ctx(0), j, host, nbr_bufs);
  });
}

Status CommExecutor::ForwardLoadAttempt(LayerCtx& c, int j, const Tensor& host,
                                        std::vector<Tensor>* nbr_bufs) {
  if (c.dim == 0 || host.cols() != c.dim) {
    return Status::Invalid("CommExecutor::ForwardLoad: BeginLayer(dim) "
                           "mismatch with host buffer");
  }
  // Fault site `comm.fetch`. A corrupt fire does not fail the call here —
  // it flips payload bits after the load step below, exercising the CRC
  // verify-and-repair path the way real link corruption would.
  bool corrupt_payload = false;
  switch (fault::Check(fault::Site::kCommFetch)) {
    case fault::Kind::kNone:
    case fault::Kind::kKill:
      break;
    case fault::Kind::kTransient:
      return Status::Unavailable("injected transient fault at comm.fetch");
    case fault::Kind::kPermanent:
      return Status::Internal("injected permanent fault at comm.fetch");
    case fault::Kind::kCorrupt:
      corrupt_payload = true;
      break;
  }
  const int m = plan_->num_partitions;
  const kernels::Backend kb = kernels::ActiveBackend();
  const bool packed = c.wire != kernels::CommPrecision::kFp32;
  nbr_bufs->resize(m);

  // Step 1 (Alg. 2 lines 1-4): fill transition buffers. N^gpu entries are
  // reused in place; N^cpu entries are loaded from host (zero-copy model),
  // encoded to the wire width as they land. Traffic counts (h2d/ru rows)
  // are epoch-invariant and come precomputed from the plan.
  for (int i = 0; i < m; ++i) {
    const TransitionStep& step = plan_->transition[i][j];
    Tensor& tb = c.trans[i];
    ParallelForChunked(
        0, static_cast<int64_t>(step.vertices.size()),
        [&](int64_t lo, int64_t hi) {
          for (int64_t p = lo; p < hi; ++p) {
            // A reused slot already holds this vertex's payload (and its
            // still-valid CRC/vertex sidecar from the batch that wrote it).
            if (step.reused[p]) continue;
            if (packed) {
              kernels::EncodeRows(
                  kb, c.wire, host.row(step.vertices[p]), c.dim,
                  reinterpret_cast<uint16_t*>(tb.row(step.slots[p])));
            } else {
              std::memcpy(tb.row(step.slots[p]),
                          host.row(step.vertices[p]),
                          static_cast<size_t>(c.dim) * sizeof(float));
            }
            if (c.integrity) {
              const int64_t slot = step.slots[p];
              c.trans_crc[i][static_cast<size_t>(slot)] =
                  Crc32c(tb.row(slot), static_cast<size_t>(c.PayloadBytes()));
              c.slot_vertex[i][static_cast<size_t>(slot)] = step.vertices[p];
            }
          }
        });
    if (platform_ != nullptr) {
      // NUMA-remote rows (Baseline only) cross the socket interconnect.
      const int64_t remote = std::min(step.numa_remote_rows, step.h2d_rows);
      platform_->AddH2D(i, (step.h2d_rows - remote) * c.dim * c.elem_bytes);
      platform_->AddH2DRemote(i, remote * c.dim * c.elem_bytes);
      platform_->AddReuse(i, step.ru_rows * c.dim * c.elem_bytes);
    }
  }
  if (platform_ != nullptr) platform_->Synchronize();

  if (corrupt_payload) {
    // Injected corruption: flip every byte of the first transition row this
    // batch will fetch. With integrity on the CRC check below catches and
    // repairs it; with integrity off it flows into the kernels silently —
    // which is exactly the baseline the integrity feature exists to beat.
    for (int i = 0; i < m && corrupt_payload; ++i) {
      const FetchPlan& f = plan_->fetch[i][j];
      for (int o = 0; o < m && corrupt_payload; ++o) {
        if (f.group_off[o + 1] <= f.group_off[o]) continue;
        const int64_t slot = f.group_slot[static_cast<size_t>(f.group_off[o])];
        unsigned char* row =
            reinterpret_cast<unsigned char*>(c.trans[o].row(slot));
        for (int64_t b = 0; b < c.PayloadBytes(); ++b) row[b] ^= 0xFF;
        corrupt_payload = false;
      }
    }
  }

  // Step 2 (Alg. 2 lines 5-8): assemble neighbor buffers by pulling from
  // local/remote transition buffers (GPUDirect P2P model). The interleaved
  // schedule of the paper avoids contention; here devices are processed
  // sequentially so results are deterministic. The owner-grouped plan
  // arrays make each group a pure indexed copy against one owner buffer —
  // a memcpy at fp32, a decode (convert-on-copy) at a 16-bit wire: the link
  // carries the compressed payload, the consumer-side fp32 working copy is
  // assembled in passing.
  std::atomic<bool> unrepairable{false};
  for (int i = 0; i < m; ++i) {
    const FetchPlan& f = plan_->fetch[i][j];
    const int64_t nn = static_cast<int64_t>(f.owner.size());
    Tensor& nb = (*nbr_bufs)[i];
    nb.EnsureShape(nn, c.dim);  // every row is assembled below
    for (int o = 0; o < m; ++o) {
      Tensor& tb = c.trans[o];
      ParallelForChunked(
          f.group_off[o], f.group_off[o + 1], [&](int64_t lo, int64_t hi) {
            for (int64_t k = lo; k < hi; ++k) {
              const int64_t slot = f.group_slot[k];
              if (c.integrity) {
                // Verify the payload against its load-time CRC before the
                // row is consumed. On mismatch, repair in place from the
                // host source of truth (an extra metered H2D row) and
                // re-verify. Race-free: slots are unique within a group,
                // groups of one device run sequentially, and device loops
                // are sequential.
                const uint32_t want =
                    c.trans_crc[o][static_cast<size_t>(slot)];
                if (Crc32c(tb.row(slot),
                           static_cast<size_t>(c.PayloadBytes())) != want) {
                  if (packed) {
                    kernels::EncodeRows(
                        kb, c.wire,
                        host.row(c.slot_vertex[o][static_cast<size_t>(slot)]),
                        c.dim, reinterpret_cast<uint16_t*>(tb.row(slot)));
                  } else {
                    std::memcpy(
                        tb.row(slot),
                        host.row(c.slot_vertex[o][static_cast<size_t>(slot)]),
                        static_cast<size_t>(c.dim) * sizeof(float));
                  }
                  if (platform_ != nullptr) {
                    platform_->AddH2D(o, c.dim * c.elem_bytes);
                  }
                  if (Crc32c(tb.row(slot),
                             static_cast<size_t>(c.PayloadBytes())) != want) {
                    // Even the host row no longer reproduces the recorded
                    // CRC — the sidecar itself rotted. Fail the attempt;
                    // the retry wrapper reloads the layer wholesale.
                    unrepairable.store(true, std::memory_order_relaxed);
                    continue;
                  }
                  if (degrade_ != nullptr) {
                    degrade_->Record(
                        fault::DegradeEvent::kIntegrityRefetch,
                        "comm.fetch: CRC mismatch on device " +
                            std::to_string(o) + " slot " +
                            std::to_string(slot) + ", repaired from host");
                  }
                }
              }
              if (packed) {
                kernels::DecodeRows(
                    kb, c.wire,
                    reinterpret_cast<const uint16_t*>(tb.row(slot)),
                    c.dim, nb.row(f.group_pos[k]));
              } else {
                std::memcpy(nb.row(f.group_pos[k]), tb.row(slot),
                            static_cast<size_t>(c.dim) * sizeof(float));
              }
            }
          });
    }
    if (platform_ != nullptr) {
      platform_->AddD2D(i, f.remote_rows * c.dim * c.elem_bytes);
      platform_->AddReuse(i, (nn - f.remote_rows) * c.dim * c.elem_bytes);
    }
  }
  if (platform_ != nullptr) platform_->Synchronize();
  if (unrepairable.load(std::memory_order_relaxed)) {
    return Status::DataLoss(
        "CommExecutor::ForwardLoad: transition payload failed CRC32C even "
        "after host refetch");
  }
  return Status::OK();
}

Status CommExecutor::ForwardLoadSlot(int j, int slot, const Tensor& host) {
  return ForwardLoadSlotCtx(0, j, slot, host);
}

Status CommExecutor::ForwardLoadSlotCtx(int ctx, int j, int slot,
                                        const Tensor& host) {
  LayerCtx& c = Ctx(ctx);
  if (slot < 0 || static_cast<size_t>(slot) >= c.slot_nbr.size()) {
    return Status::Invalid("CommExecutor::ForwardLoadSlot: slot out of "
                           "range; BeginLayer(dim, num_slots) first");
  }
  return fault::RetryTransient(retry_, degrade_, "comm.fetch", [&] {
    return ForwardLoadAttempt(c, j, host,
                              &c.slot_nbr[static_cast<size_t>(slot)]);
  });
}

Status CommExecutor::BackwardAccumulate(int j,
                                        const std::vector<Tensor>& nbr_grads,
                                        Tensor* host_grad) {
  return BackwardAccumulateCtx(0, j, nbr_grads, host_grad);
}

Status CommExecutor::BackwardAccumulateCtx(
    int ctx, int j, const std::vector<Tensor>& nbr_grads, Tensor* host_grad) {
  LayerCtx& c = Ctx(ctx);
  return fault::RetryTransient(retry_, degrade_, "comm.flush", [&] {
    return BackwardAccumulateAttempt(c, j, nbr_grads, host_grad);
  });
}

Status CommExecutor::BackwardAccumulateAttempt(
    LayerCtx& c, int j, const std::vector<Tensor>& nbr_grads,
    Tensor* host_grad) {
  if (c.dim == 0 || host_grad->cols() != c.dim) {
    return Status::Invalid("CommExecutor::BackwardAccumulate: BeginLayer(dim) "
                           "mismatch with host gradient buffer");
  }
  // Fault site `comm.flush`. Must fire before any accumulation happens:
  // the push/flush below mutates trans_grad and host_grad, so the only
  // safe retry point is the very entry of the attempt.
  HT_RETURN_IF_ERROR(fault::Poke(fault::Site::kCommFlush));
  const int m = plan_->num_partitions;
  const kernels::Backend kb = kernels::ActiveBackend();
  const bool packed = c.wire != kernels::CommPrecision::kFp32;

  // Step 1 (Alg. 3 lines 1-4): push neighbor gradients to owner transition
  // grad buffers. Devices are processed sequentially (the paper interleaves
  // P2P windows to avoid contention; sequential = deterministic here), but
  // within one device the owner-grouped plan arrays parallelize the
  // accumulation: slots are unique inside a plan, so no two entries of a
  // group write the same transition row. At a 16-bit wire each pushed row is
  // quantized once in flight (QuantizeAccumRows) — the transition-gradient
  // accumulator itself stays fp32.
  for (int i = 0; i < m; ++i) {
    const FetchPlan& f = plan_->fetch[i][j];
    const Tensor& ng = nbr_grads[i];
    for (int o = 0; o < m; ++o) {
      Tensor& tg = c.trans_grad[o];
      ParallelForChunked(
          f.group_off[o], f.group_off[o + 1], [&](int64_t lo, int64_t hi) {
            for (int64_t k = lo; k < hi; ++k) {
              kernels::QuantizeAccumRows(kb, c.wire, ng.row(f.group_pos[k]),
                                         c.dim, tg.row(f.group_slot[k]));
            }
          });
    }
    if (platform_ != nullptr) {
      platform_->AddD2D(i, f.remote_rows * c.dim * c.elem_bytes);
    }
  }
  if (platform_ != nullptr) platform_->Synchronize();

  // Step 2 (Alg. 3 lines 5-8): flush slots whose vertex does not recur in
  // the next batch; the host CPU accumulates them into grad buffer. Slots
  // retained (flush=0) keep accumulating across batches (in-place reuse).
  // A flushed row crosses the host link once — quantized at the wire width,
  // decoded into the fp32 host accumulator (fp32 flush accumulation).
  // Race-free parallel: vertices are unique within a step, slots unique per
  // device; the flushed-row count comes precomputed from the plan.
  for (int i = 0; i < m; ++i) {
    const TransitionStep& step = plan_->transition[i][j];
    Tensor& tg = c.trans_grad[i];
    ParallelForChunked(
        0, static_cast<int64_t>(step.vertices.size()),
        [&](int64_t lo, int64_t hi) {
          for (int64_t p = lo; p < hi; ++p) {
            if (!step.flush[p]) continue;
            float* dst = host_grad->row(step.vertices[p]);
            float* src = tg.row(step.slots[p]);
            if (packed) {
              kernels::QuantizeAccumRows(kb, c.wire, src, c.dim, dst);
              std::memset(src, 0,
                          static_cast<size_t>(c.dim) * sizeof(float));
            } else {
              for (int d = 0; d < c.dim; ++d) {
                dst[d] += src[d];
                src[d] = 0.0f;  // slot is recycled clean
              }
            }
          }
        });
    if (platform_ != nullptr) {
      const int64_t remote = std::min(step.numa_remote_rows, step.flush_rows);
      platform_->AddH2D(i, (step.flush_rows - remote) * c.dim * c.elem_bytes);
      platform_->AddH2DRemote(i, remote * c.dim * c.elem_bytes);
      platform_->AddCpuAccum(step.flush_rows * c.dim * kF32);
    }
  }
  if (platform_ != nullptr) platform_->Synchronize();
  return Status::OK();
}

}  // namespace hongtu
