#include "hongtu/gnn/layer.h"

#include "hongtu/common/parallel.h"

namespace hongtu {

LocalGraph LocalGraph::FromChunk(const Chunk& c) {
  LocalGraph g;
  g.num_dst = c.num_dst();
  g.num_src = c.num_neighbors();
  g.num_edges = c.num_edges();
  g.in_offsets = c.in_offsets.data();
  g.nbr_idx = c.nbr_idx.data();
  g.in_weights = c.in_weights.data();
  g.src_offsets = c.src_offsets.data();
  g.dst_idx = c.dst_idx.data();
  g.src_weights = c.src_weights.data();
  g.src_edge_idx = c.src_edge_idx.data();
  g.self_idx = c.self_idx.data();
  return g;
}

void Layer::ZeroGrads() {
  for (Tensor* g : grads()) g->Zero();
}

Status Layer::BackwardCached(const LocalGraph& g, const Tensor& agg,
                             const Tensor& dst_h, const Tensor& d_dst,
                             Tensor* d_src) {
  (void)g;
  (void)agg;
  (void)dst_h;
  (void)d_dst;
  (void)d_src;
  return Status::NotImplemented(std::string(name()) +
                                ": aggregate caching unsupported (edge-NN "
                                "model falls back to recomputation)");
}

Status Layer::BackwardRecompute(const LocalGraph& g, const Tensor& src_h,
                                const Tensor& d_dst, Tensor* d_src) {
  Tensor dst_h;
  std::unique_ptr<LayerCtx> ctx;
  HT_RETURN_IF_ERROR(ForwardStore(g, src_h, &dst_h, &ctx));
  return BackwardStored(g, *ctx, src_h, d_dst, d_src);
}

void GatherWeighted(const LocalGraph& g, const Tensor& src, Tensor* dst) {
  const int64_t dim = src.cols();
  ParallelForChunked(0, g.num_dst, [&](int64_t lo, int64_t hi) {
    for (int64_t d = lo; d < hi; ++d) {
      float* out = dst->row(d);
      for (int64_t c = 0; c < dim; ++c) out[c] = 0.0f;
      for (int64_t e = g.in_offsets[d]; e < g.in_offsets[d + 1]; ++e) {
        const float w = g.in_weights[e];
        const float* in = src.row(g.nbr_idx[e]);
        for (int64_t c = 0; c < dim; ++c) out[c] += w * in[c];
      }
    }
  });
}

void GatherSum(const LocalGraph& g, const Tensor& src, Tensor* dst) {
  const int64_t dim = src.cols();
  ParallelForChunked(0, g.num_dst, [&](int64_t lo, int64_t hi) {
    for (int64_t d = lo; d < hi; ++d) {
      float* out = dst->row(d);
      for (int64_t c = 0; c < dim; ++c) out[c] = 0.0f;
      for (int64_t e = g.in_offsets[d]; e < g.in_offsets[d + 1]; ++e) {
        const float* in = src.row(g.nbr_idx[e]);
        for (int64_t c = 0; c < dim; ++c) out[c] += in[c];
      }
    }
  });
}

void GatherMean(const LocalGraph& g, const Tensor& src, Tensor* dst) {
  const int64_t dim = src.cols();
  ParallelForChunked(0, g.num_dst, [&](int64_t lo, int64_t hi) {
    for (int64_t d = lo; d < hi; ++d) {
      float* out = dst->row(d);
      for (int64_t c = 0; c < dim; ++c) out[c] = 0.0f;
      const int64_t deg = g.in_offsets[d + 1] - g.in_offsets[d];
      if (deg == 0) continue;
      for (int64_t e = g.in_offsets[d]; e < g.in_offsets[d + 1]; ++e) {
        const float* in = src.row(g.nbr_idx[e]);
        for (int64_t c = 0; c < dim; ++c) out[c] += in[c];
      }
      const float inv = 1.0f / static_cast<float>(deg);
      for (int64_t c = 0; c < dim; ++c) out[c] *= inv;
    }
  });
}

void ScatterWeightedAccum(const LocalGraph& g, const Tensor& d_dst,
                          Tensor* d_src) {
  const int64_t dim = d_dst.cols();
  ParallelForChunked(0, g.num_src, [&](int64_t lo, int64_t hi) {
    for (int64_t s = lo; s < hi; ++s) {
      float* out = d_src->row(s);
      for (int64_t e = g.src_offsets[s]; e < g.src_offsets[s + 1]; ++e) {
        const float w = g.src_weights[e];
        const float* in = d_dst.row(g.dst_idx[e]);
        for (int64_t c = 0; c < dim; ++c) out[c] += w * in[c];
      }
    }
  });
}

void ScatterSumAccum(const LocalGraph& g, const Tensor& d_dst, Tensor* d_src) {
  const int64_t dim = d_dst.cols();
  ParallelForChunked(0, g.num_src, [&](int64_t lo, int64_t hi) {
    for (int64_t s = lo; s < hi; ++s) {
      float* out = d_src->row(s);
      for (int64_t e = g.src_offsets[s]; e < g.src_offsets[s + 1]; ++e) {
        const float* in = d_dst.row(g.dst_idx[e]);
        for (int64_t c = 0; c < dim; ++c) out[c] += in[c];
      }
    }
  });
}

void ScatterMeanAccum(const LocalGraph& g, const Tensor& d_dst,
                      Tensor* d_src) {
  const int64_t dim = d_dst.cols();
  ParallelForChunked(0, g.num_src, [&](int64_t lo, int64_t hi) {
    for (int64_t s = lo; s < hi; ++s) {
      float* out = d_src->row(s);
      for (int64_t e = g.src_offsets[s]; e < g.src_offsets[s + 1]; ++e) {
        const int32_t d = g.dst_idx[e];
        const int64_t deg = g.in_offsets[d + 1] - g.in_offsets[d];
        if (deg == 0) continue;
        const float inv = 1.0f / static_cast<float>(deg);
        const float* in = d_dst.row(d);
        for (int64_t c = 0; c < dim; ++c) out[c] += inv * in[c];
      }
    }
  });
}

}  // namespace hongtu
