#include "hongtu/gnn/layer.h"

#include <vector>

#include "hongtu/kernels/backend.h"
#include "hongtu/kernels/spmm.h"

namespace hongtu {

LocalGraph LocalGraph::FromChunk(const Chunk& c) {
  LocalGraph g;
  g.num_dst = c.num_dst();
  g.num_src = c.num_neighbors();
  g.num_edges = c.num_edges();
  g.in_offsets = c.in_offsets.data();
  g.nbr_idx = c.nbr_idx.data();
  g.in_weights = c.in_weights.data();
  g.src_offsets = c.src_offsets.data();
  g.dst_idx = c.dst_idx.data();
  g.src_weights = c.src_weights.data();
  g.src_edge_idx = c.src_edge_idx.data();
  g.self_idx = c.self_idx.data();
  return g;
}

LocalGraph LocalGraph::FromChunk(const Chunk& c, const ChunkSchedules* s) {
  LocalGraph g = FromChunk(c);
  if (s != nullptr) {
    g.gather_sched = &s->gather;
    g.scatter_sched = &s->scatter;
  }
  return g;
}

ChunkSchedules ChunkSchedules::Build(const Chunk& c,
                                     const kernels::EdgeScheduleParams& p) {
  ChunkSchedules s;
  const int64_t nd = c.num_dst();
  const int64_t ns = c.num_neighbors();
  if (c.num_edges() > 0) {
    // One walk of the CSC edges fills *both* directions' (shard, band)
    // histograms: the gather direction's own counts, and — through the
    // scatter shard map over sources — the CSR mirror's counts. Bucket
    // counts are order-independent, so handing them to Build (which then
    // skips its counting pass) yields byte-identical schedules while the
    // CSR is walked once (placement) instead of twice.
    const int S = std::max(p.num_shards, 1);
    const int bg = kernels::EdgeSchedule::NumBands(ns, p);
    const int bs = kernels::EdgeSchedule::NumBands(nd, p);
    const int64_t band_rows = kernels::EdgeSchedule::ResolveBandRows(p);
    std::vector<int64_t> g_bounds(static_cast<size_t>(S) + 1);
    std::vector<int64_t> s_bounds(static_cast<size_t>(S) + 1);
    kernels::EdgeSchedule::ShardRowBounds(nd, c.in_offsets.data(), p,
                                          g_bounds.data());
    kernels::EdgeSchedule::ShardRowBounds(ns, c.src_offsets.data(), p,
                                          s_bounds.data());
    std::vector<int32_t> src_shard(static_cast<size_t>(ns));
    for (int t = 0; t < S; ++t) {
      for (int64_t v = s_bounds[t]; v < s_bounds[t + 1]; ++v) {
        src_shard[static_cast<size_t>(v)] = t;
      }
    }
    std::vector<int64_t> gather_counts(static_cast<size_t>(S) * bg, 0);
    std::vector<int64_t> scatter_counts(static_cast<size_t>(S) * bs, 0);
    for (int t = 0; t < S; ++t) {
      for (int64_t d = g_bounds[t]; d < g_bounds[t + 1]; ++d) {
        for (int64_t e = c.in_offsets[d]; e < c.in_offsets[d + 1]; ++e) {
          const int32_t src = c.nbr_idx[e];
          ++gather_counts[static_cast<size_t>(t) * bg + src / band_rows];
          ++scatter_counts[static_cast<size_t>(src_shard[src]) * bs +
                           d / band_rows];
        }
      }
    }
    s.gather = kernels::EdgeSchedule::Build(
        nd, c.in_offsets.data(), c.nbr_idx.data(), c.in_weights.data(), ns, p,
        gather_counts.data());
    s.scatter = kernels::EdgeSchedule::Build(
        ns, c.src_offsets.data(), c.dst_idx.data(), c.src_weights.data(), nd,
        p, scatter_counts.data());
    return s;
  }
  s.gather = kernels::EdgeSchedule::Build(nd, c.in_offsets.data(),
                                          c.nbr_idx.data(),
                                          c.in_weights.data(), ns, p);
  s.scatter = kernels::EdgeSchedule::Build(ns, c.src_offsets.data(),
                                           c.dst_idx.data(),
                                           c.src_weights.data(), nd, p);
  return s;
}

int64_t ChunkSchedules::EstimateBytes(const Chunk& c,
                                      const kernels::EdgeScheduleParams& p) {
  return kernels::EdgeSchedule::EstimateBytes(c.num_dst(), c.num_neighbors(),
                                              c.num_edges(),
                                              /*has_weights=*/true, p) +
         kernels::EdgeSchedule::EstimateBytes(c.num_neighbors(), c.num_dst(),
                                              c.num_edges(),
                                              /*has_weights=*/true, p);
}

void Layer::ZeroGrads() {
  for (Tensor* g : grads()) g->Zero();
}

Status Layer::BackwardCached(const LocalGraph& g, const Tensor& agg,
                             const Tensor& dst_h, const Tensor& d_dst,
                             Tensor* d_src) {
  (void)g;
  (void)agg;
  (void)dst_h;
  (void)d_dst;
  (void)d_src;
  return Status::NotImplemented(std::string(name()) +
                                ": aggregate caching unsupported (edge-NN "
                                "model falls back to recomputation)");
}

Status Layer::BackwardRecompute(const LocalGraph& g, const Tensor& src_h,
                                const Tensor& d_dst, Tensor* d_src) {
  Tensor dst_h;
  std::unique_ptr<LayerCtx> ctx;
  HT_RETURN_IF_ERROR(ForwardStore(g, src_h, &dst_h, &ctx));
  return BackwardStored(g, *ctx, src_h, d_dst, d_src);
}

// The six aggregation primitives are one backend-dispatched SpMM: gather
// walks the chunk CSC (output axis = destinations), scatter walks the CSR
// mirror (output axis = sources), and the EdgeWeight mode selects the
// coefficient. A LocalGraph carrying compiled edge schedules routes the
// blocked backend onto the propagation-blocked path. See kernels/spmm.h.

void GatherWeighted(const LocalGraph& g, const Tensor& src, Tensor* dst) {
  kernels::Spmm(kernels::ActiveBackend(), kernels::EdgeWeight::kExplicit,
                g.num_dst, g.in_offsets, g.nbr_idx, g.in_weights, nullptr,
                src.data(), src.cols(), /*accumulate=*/false, dst->data(),
                g.gather_sched);
}

void GatherSum(const LocalGraph& g, const Tensor& src, Tensor* dst) {
  kernels::Spmm(kernels::ActiveBackend(), kernels::EdgeWeight::kUnit,
                g.num_dst, g.in_offsets, g.nbr_idx, nullptr, nullptr,
                src.data(), src.cols(), /*accumulate=*/false, dst->data(),
                g.gather_sched);
}

void GatherMean(const LocalGraph& g, const Tensor& src, Tensor* dst) {
  kernels::Spmm(kernels::ActiveBackend(), kernels::EdgeWeight::kInvRowDegree,
                g.num_dst, g.in_offsets, g.nbr_idx, nullptr, nullptr,
                src.data(), src.cols(), /*accumulate=*/false, dst->data(),
                g.gather_sched);
}

void ScatterWeightedAccum(const LocalGraph& g, const Tensor& d_dst,
                          Tensor* d_src) {
  kernels::Spmm(kernels::ActiveBackend(), kernels::EdgeWeight::kExplicit,
                g.num_src, g.src_offsets, g.dst_idx, g.src_weights, nullptr,
                d_dst.data(), d_dst.cols(), /*accumulate=*/true,
                d_src->data(), g.scatter_sched);
}

void ScatterSumAccum(const LocalGraph& g, const Tensor& d_dst, Tensor* d_src) {
  kernels::Spmm(kernels::ActiveBackend(), kernels::EdgeWeight::kUnit,
                g.num_src, g.src_offsets, g.dst_idx, nullptr, nullptr,
                d_dst.data(), d_dst.cols(), /*accumulate=*/true,
                d_src->data(), g.scatter_sched);
}

void ScatterMeanAccum(const LocalGraph& g, const Tensor& d_dst,
                      Tensor* d_src) {
  kernels::Spmm(kernels::ActiveBackend(), kernels::EdgeWeight::kInvColDegree,
                g.num_src, g.src_offsets, g.dst_idx, nullptr, g.in_offsets,
                d_dst.data(), d_dst.cols(), /*accumulate=*/true,
                d_src->data(), g.scatter_sched);
}

}  // namespace hongtu
