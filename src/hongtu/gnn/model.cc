#include "hongtu/gnn/model.h"

#include "hongtu/gnn/gat_layer.h"
#include "hongtu/gnn/ggnn_layer.h"
#include "hongtu/gnn/gcn_layer.h"
#include "hongtu/gnn/gin_layer.h"
#include "hongtu/gnn/sage_layer.h"

namespace hongtu {

const char* GnnKindName(GnnKind kind) {
  switch (kind) {
    case GnnKind::kGcn: return "GCN";
    case GnnKind::kSage: return "SAGE";
    case GnnKind::kGin: return "GIN";
    case GnnKind::kGat: return "GAT";
    case GnnKind::kGgnn: return "GGNN";
  }
  return "?";
}

ModelConfig ModelConfig::Make(GnnKind kind, int feature_dim, int hidden_dim,
                              int num_classes, int layers, uint64_t seed) {
  ModelConfig c;
  c.kind = kind;
  c.seed = seed;
  c.dims.push_back(feature_dim);
  for (int l = 0; l < layers - 1; ++l) c.dims.push_back(hidden_dim);
  c.dims.push_back(num_classes);
  return c;
}

Result<GnnModel> GnnModel::Create(const ModelConfig& config) {
  if (config.dims.size() < 2) {
    return Status::Invalid("GnnModel: need at least 2 dims (in, out)");
  }
  for (int d : config.dims) {
    if (d <= 0) return Status::Invalid("GnnModel: dims must be positive");
  }
  GnnModel m;
  m.config_ = config;
  const int L = config.num_layers();
  for (int l = 0; l < L; ++l) {
    const int din = config.dims[l];
    const int dout = config.dims[l + 1];
    const bool relu = l + 1 < L;  // final layer emits raw logits
    const uint64_t seed = config.seed + 1000ull * static_cast<uint64_t>(l);
    switch (config.kind) {
      case GnnKind::kGcn:
        m.layers_.push_back(std::make_unique<GcnLayer>(din, dout, relu, seed));
        break;
      case GnnKind::kSage:
        m.layers_.push_back(std::make_unique<SageLayer>(din, dout, relu, seed));
        break;
      case GnnKind::kGin:
        m.layers_.push_back(std::make_unique<GinLayer>(din, dout, relu, seed));
        break;
      case GnnKind::kGat:
        m.layers_.push_back(std::make_unique<GatLayer>(din, dout, relu, seed));
        break;
      case GnnKind::kGgnn:
        m.layers_.push_back(
            std::make_unique<GgnnLayer>(din, dout, relu, seed));
        break;
    }
  }
  return m;
}

void GnnModel::ZeroGrads() {
  for (auto& l : layers_) l->ZeroGrads();
}

std::vector<Tensor*> GnnModel::AllParams() {
  std::vector<Tensor*> out;
  for (auto& l : layers_) {
    for (Tensor* p : l->params()) out.push_back(p);
  }
  return out;
}

std::vector<Tensor*> GnnModel::AllGrads() {
  std::vector<Tensor*> out;
  for (auto& l : layers_) {
    for (Tensor* g : l->grads()) out.push_back(g);
  }
  return out;
}

int64_t GnnModel::ParamBytes() const {
  int64_t bytes = 0;
  for (const auto& l : layers_) {
    for (Tensor* p : const_cast<Layer*>(l.get())->params()) {
      bytes += p->bytes();
    }
  }
  return bytes;
}

}  // namespace hongtu
