#include "hongtu/gnn/loss.h"

#include <cmath>

namespace hongtu {

LossResult SoftmaxCrossEntropy(const Tensor& logits,
                               const std::vector<int32_t>& labels,
                               const std::vector<VertexId>& vertices,
                               Tensor* d_logits) {
  LossResult out;
  if (vertices.empty()) return out;
  const int64_t c = logits.cols();
  if (d_logits != nullptr) d_logits->Zero();
  const float inv_n = 1.0f / static_cast<float>(vertices.size());
  double loss = 0.0;
  int64_t correct = 0;
  std::vector<float> prob(static_cast<size_t>(c));
  for (VertexId v : vertices) {
    const float* row = logits.row(v);
    float mx = row[0];
    int64_t argmax = 0;
    for (int64_t k = 1; k < c; ++k) {
      if (row[k] > mx) {
        mx = row[k];
        argmax = k;
      }
    }
    double denom = 0.0;
    for (int64_t k = 0; k < c; ++k) {
      prob[k] = std::exp(row[k] - mx);
      denom += prob[k];
    }
    const float inv_d = static_cast<float>(1.0 / denom);
    const int32_t y = labels[static_cast<size_t>(v)];
    for (int64_t k = 0; k < c; ++k) prob[k] *= inv_d;
    loss -= std::log(std::max(1e-12f, prob[y]));
    if (argmax == y) ++correct;
    if (d_logits != nullptr) {
      float* drow = d_logits->row(v);
      for (int64_t k = 0; k < c; ++k) drow[k] = prob[k] * inv_n;
      drow[y] -= inv_n;
    }
  }
  out.loss = loss / static_cast<double>(vertices.size());
  out.accuracy =
      static_cast<double>(correct) / static_cast<double>(vertices.size());
  return out;
}

double Accuracy(const Tensor& logits, const std::vector<int32_t>& labels,
                const std::vector<VertexId>& vertices) {
  if (vertices.empty()) return 0.0;
  int64_t correct = 0;
  const int64_t c = logits.cols();
  for (VertexId v : vertices) {
    const float* row = logits.row(v);
    int64_t argmax = 0;
    for (int64_t k = 1; k < c; ++k) {
      if (row[k] > row[argmax]) argmax = k;
    }
    if (argmax == labels[static_cast<size_t>(v)]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(vertices.size());
}

}  // namespace hongtu
