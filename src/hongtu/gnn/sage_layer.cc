#include "hongtu/gnn/sage_layer.h"

#include "hongtu/common/parallel.h"
#include "hongtu/tensor/ops.h"

namespace hongtu {

namespace {

/// Extracts the destinations' own rows from the source-space buffer.
void GatherSelf(const LocalGraph& g, const Tensor& src_h, Tensor* dst_rows) {
  const int64_t dim = src_h.cols();
  ParallelForChunked(0, g.num_dst, [&](int64_t lo, int64_t hi) {
    for (int64_t d = lo; d < hi; ++d) {
      const int32_t s = g.self_idx[d];
      float* out = dst_rows->row(d);
      if (s < 0) {
        for (int64_t c = 0; c < dim; ++c) out[c] = 0.0f;
      } else {
        const float* in = src_h.row(s);
        for (int64_t c = 0; c < dim; ++c) out[c] = in[c];
      }
    }
  });
}

struct SageCtx : public LayerCtx {
  Tensor agg;    // mean aggregate (num_dst x in)
  Tensor self_h; // destinations' own input rows (num_dst x in)
  Tensor z;      // pre-activation (num_dst x out)
  int64_t bytes() const override {
    return agg.bytes() + self_h.bytes() + z.bytes();
  }
};

void UpdateForward(const Tensor& self_h, const Tensor& agg, const Tensor& ws,
                   const Tensor& wn, const Tensor& b, bool relu, Tensor* z,
                   Tensor* dst_h) {
  ops::Matmul(self_h, ws, z);
  Tensor zn(agg.rows(), wn.cols());
  ops::Matmul(agg, wn, &zn);
  const int64_t n = z->rows(), dim = z->cols();
  const float* pb = b.data();
  ParallelForChunked(0, n, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      float* pz = z->row(i);
      const float* pzn = zn.row(i);
      float* ph = dst_h->row(i);
      for (int64_t c = 0; c < dim; ++c) {
        pz[c] += pzn[c] + pb[c];
        ph[c] = relu ? (pz[c] > 0 ? pz[c] : 0.0f) : pz[c];
      }
    }
  });
}

}  // namespace

SageLayer::SageLayer(int in_dim, int out_dim, bool relu, uint64_t seed)
    : in_dim_(in_dim),
      out_dim_(out_dim),
      relu_(relu),
      w_self_(Tensor::GlorotUniform(in_dim, out_dim, seed)),
      w_nbr_(Tensor::GlorotUniform(in_dim, out_dim, seed + 1)),
      b_(1, out_dim),
      dw_self_(in_dim, out_dim),
      dw_nbr_(in_dim, out_dim),
      db_(1, out_dim) {}

Status SageLayer::Forward(const LocalGraph& g, const Tensor& src_h,
                          Tensor* dst_h, Tensor* agg_cache) {
  Tensor agg(g.num_dst, in_dim_);
  GatherMean(g, src_h, &agg);
  Tensor self_h(g.num_dst, in_dim_);
  GatherSelf(g, src_h, &self_h);
  Tensor z(g.num_dst, out_dim_);
  if (dst_h->rows() != g.num_dst || dst_h->cols() != out_dim_) {
    *dst_h = Tensor(g.num_dst, out_dim_);
  }
  UpdateForward(self_h, agg, w_self_, w_nbr_, b_, relu_, &z, dst_h);
  if (agg_cache != nullptr) *agg_cache = std::move(agg);
  return Status::OK();
}

Status SageLayer::ForwardStore(const LocalGraph& g, const Tensor& src_h,
                               Tensor* dst_h, std::unique_ptr<LayerCtx>* ctx) {
  auto c = std::make_unique<SageCtx>();
  c->agg = Tensor(g.num_dst, in_dim_);
  GatherMean(g, src_h, &c->agg);
  c->self_h = Tensor(g.num_dst, in_dim_);
  GatherSelf(g, src_h, &c->self_h);
  c->z = Tensor(g.num_dst, out_dim_);
  if (dst_h->rows() != g.num_dst || dst_h->cols() != out_dim_) {
    *dst_h = Tensor(g.num_dst, out_dim_);
  }
  UpdateForward(c->self_h, c->agg, w_self_, w_nbr_, b_, relu_, &c->z, dst_h);
  *ctx = std::move(c);
  return Status::OK();
}

Status SageLayer::BackwardImpl(const LocalGraph& g, const Tensor& agg,
                               const Tensor& dst_h, const Tensor& d_dst,
                               Tensor* d_src) {
  if (dst_h.rows() != g.num_dst || dst_h.cols() != in_dim_) {
    return Status::Invalid("SageLayer backward requires destination rows");
  }
  // Recompute the pre-activation for the ReLU mask.
  Tensor z(g.num_dst, out_dim_);
  Tensor scratch(g.num_dst, out_dim_);
  UpdateForward(dst_h, agg, w_self_, w_nbr_, b_, /*relu=*/false, &z, &scratch);

  Tensor dz(g.num_dst, out_dim_);
  if (relu_) {
    ops::ReluBackward(z, d_dst, &dz);
  } else {
    HT_RETURN_IF_ERROR(dz.CopyFrom(d_dst));
  }
  ops::MatmulTransAAccum(dst_h, dz, &dw_self_);
  ops::MatmulTransAAccum(agg, dz, &dw_nbr_);
  for (int64_t i = 0; i < dz.rows(); ++i) {
    const float* p = dz.row(i);
    for (int64_t c = 0; c < out_dim_; ++c) db_.data()[c] += p[c];
  }
  // Neighbor path: d_agg scattered with mean weights.
  Tensor dagg(g.num_dst, in_dim_);
  ops::MatmulTransB(dz, w_nbr_, &dagg);
  ScatterMeanAccum(g, dagg, d_src);
  // Self path: accumulate at the destinations' own source slots.
  Tensor dself(g.num_dst, in_dim_);
  ops::MatmulTransB(dz, w_self_, &dself);
  for (int64_t d = 0; d < g.num_dst; ++d) {
    const int32_t s = g.self_idx[d];
    if (s < 0) continue;
    float* out = d_src->row(s);
    const float* in = dself.row(d);
    for (int64_t c = 0; c < in_dim_; ++c) out[c] += in[c];
  }
  return Status::OK();
}

Status SageLayer::BackwardStored(const LocalGraph& g, const LayerCtx& ctx,
                                 const Tensor& src_h, const Tensor& d_dst,
                                 Tensor* d_src) {
  (void)src_h;
  const auto& c = static_cast<const SageCtx&>(ctx);
  return BackwardImpl(g, c.agg, c.self_h, d_dst, d_src);
}

Status SageLayer::BackwardCached(const LocalGraph& g, const Tensor& agg,
                                 const Tensor& dst_h, const Tensor& d_dst,
                                 Tensor* d_src) {
  return BackwardImpl(g, agg, dst_h, d_dst, d_src);
}

void SageLayer::ForwardCost(const LocalGraph& g, double* flops,
                            double* bytes) const {
  const double e = static_cast<double>(g.num_edges);
  const double nd = static_cast<double>(g.num_dst);
  *flops = 2.0 * e * in_dim_ + 4.0 * nd * in_dim_ * out_dim_;
  *bytes = (e + 2.0 * nd) * in_dim_ * 4.0 + nd * out_dim_ * 8.0;
}

void SageLayer::BackwardCost(const LocalGraph& g, bool cached, double* flops,
                             double* bytes) const {
  const double e = static_cast<double>(g.num_edges);
  const double nd = static_cast<double>(g.num_dst);
  const double ns = static_cast<double>(g.num_src);
  *flops = 12.0 * nd * in_dim_ * out_dim_ + 2.0 * e * in_dim_;
  *bytes = (e + 2.0 * nd + ns) * in_dim_ * 4.0 + nd * out_dim_ * 12.0;
  if (!cached) {
    *flops += 2.0 * e * in_dim_;
    *bytes += e * in_dim_ * 4.0;
  }
}

}  // namespace hongtu
