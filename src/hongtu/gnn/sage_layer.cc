#include "hongtu/gnn/sage_layer.h"

#include "hongtu/kernels/backend.h"
#include "hongtu/kernels/spmm.h"
#include "hongtu/tensor/ops.h"

namespace hongtu {

namespace {

/// Extracts the destinations' own rows from the source-space buffer.
void GatherSelf(const LocalGraph& g, const Tensor& src_h, Tensor* dst_rows) {
  kernels::GatherRows(kernels::ActiveBackend(), g.self_idx, g.num_dst,
                      src_h.data(), src_h.cols(), dst_rows->data());
}

struct SageCtx : public LayerCtx {
  Tensor agg;    // mean aggregate (num_dst x in)
  Tensor self_h; // destinations' own input rows (num_dst x in)
  Tensor h;      // activated output; carries the ReLU mask (h > 0 iff z > 0)
  int64_t bytes() const override {
    return agg.bytes() + self_h.bytes() + h.bytes();
  }
};

/// dst_h = act(self_h*Ws + agg*Wn + b): the second GEMM accumulates onto the
/// first and fuses bias + activation into its epilogue.
void UpdateForward(const Tensor& self_h, const Tensor& agg, const Tensor& ws,
                   const Tensor& wn, const Tensor& b, bool relu,
                   Tensor* dst_h) {
  ops::Matmul(self_h, ws, dst_h);
  ops::MatmulBiasAct(agg, wn, b,
                     relu ? ops::Activation::kRelu : ops::Activation::kNone,
                     /*accumulate=*/true, dst_h);
}

}  // namespace

SageLayer::SageLayer(int in_dim, int out_dim, bool relu, uint64_t seed)
    : in_dim_(in_dim),
      out_dim_(out_dim),
      relu_(relu),
      w_self_(Tensor::GlorotUniform(in_dim, out_dim, seed)),
      w_nbr_(Tensor::GlorotUniform(in_dim, out_dim, seed + 1)),
      b_(1, out_dim),
      dw_self_(in_dim, out_dim),
      dw_nbr_(in_dim, out_dim),
      db_(1, out_dim) {}

Status SageLayer::Forward(const LocalGraph& g, const Tensor& src_h,
                          Tensor* dst_h, Tensor* agg_cache) {
  // All scratch is fully overwritten before use: pooled, uninitialized, and
  // the caller's agg workspace is filled in place.
  Tensor local_agg;
  Tensor* agg = agg_cache != nullptr ? agg_cache : &local_agg;
  agg->EnsureShape(g.num_dst, in_dim_);
  GatherMean(g, src_h, agg);
  Tensor self_h = Tensor::Uninitialized(g.num_dst, in_dim_);
  GatherSelf(g, src_h, &self_h);
  dst_h->EnsureShape(g.num_dst, out_dim_);
  UpdateForward(self_h, *agg, w_self_, w_nbr_, b_, relu_, dst_h);
  return Status::OK();
}

Status SageLayer::ForwardStore(const LocalGraph& g, const Tensor& src_h,
                               Tensor* dst_h, std::unique_ptr<LayerCtx>* ctx) {
  auto c = std::make_unique<SageCtx>();
  c->agg = Tensor::Uninitialized(g.num_dst, in_dim_);
  GatherMean(g, src_h, &c->agg);
  c->self_h = Tensor::Uninitialized(g.num_dst, in_dim_);
  GatherSelf(g, src_h, &c->self_h);
  c->h = Tensor::Uninitialized(g.num_dst, out_dim_);
  UpdateForward(c->self_h, c->agg, w_self_, w_nbr_, b_, relu_, &c->h);
  // The output IS the stored activation; hand out a view instead of a copy
  // (valid while *ctx lives — see Layer::ForwardStore).
  *dst_h = Tensor::View(c->h);
  *ctx = std::move(c);
  return Status::OK();
}

Status SageLayer::BackwardImpl(const LocalGraph& g, const Tensor& agg,
                               const Tensor& dst_h, const Tensor& d_dst,
                               Tensor* d_src, const Tensor* stored_h) {
  if (dst_h.rows() != g.num_dst || dst_h.cols() != in_dim_) {
    return Status::Invalid("SageLayer backward requires destination rows");
  }
  Tensor dz = Tensor::Uninitialized(g.num_dst, out_dim_);
  if (relu_) {
    if (stored_h != nullptr) {
      ops::ReluBackward(*stored_h, d_dst, &dz);
    } else {
      // Recompute the activated output for the ReLU mask (h > 0 iff z > 0).
      Tensor h = Tensor::Uninitialized(g.num_dst, out_dim_);
      UpdateForward(dst_h, agg, w_self_, w_nbr_, b_, /*relu=*/true, &h);
      ops::ReluBackward(h, d_dst, &dz);
    }
  } else {
    HT_RETURN_IF_ERROR(dz.CopyFrom(d_dst));
  }
  ops::MatmulTransAAccum(dst_h, dz, &dw_self_);
  ops::MatmulTransAAccum(agg, dz, &dw_nbr_);
  ops::ColumnSumAccum(dz, &db_);
  // Neighbor path: d_agg scattered with mean weights.
  Tensor dagg = Tensor::Uninitialized(g.num_dst, in_dim_);
  ops::MatmulTransB(dz, w_nbr_, &dagg);
  ScatterMeanAccum(g, dagg, d_src);
  // Self path: accumulate at the destinations' own source slots.
  Tensor dself = Tensor::Uninitialized(g.num_dst, in_dim_);
  ops::MatmulTransB(dz, w_self_, &dself);
  kernels::ScatterRowsAccum(kernels::ActiveBackend(), g.self_idx, g.num_dst,
                            dself.data(), 1.0f, in_dim_, d_src->data());
  return Status::OK();
}

Status SageLayer::BackwardStored(const LocalGraph& g, const LayerCtx& ctx,
                                 const Tensor& src_h, const Tensor& d_dst,
                                 Tensor* d_src) {
  (void)src_h;
  const auto& c = static_cast<const SageCtx&>(ctx);
  return BackwardImpl(g, c.agg, c.self_h, d_dst, d_src, &c.h);
}

Status SageLayer::BackwardCached(const LocalGraph& g, const Tensor& agg,
                                 const Tensor& dst_h, const Tensor& d_dst,
                                 Tensor* d_src) {
  return BackwardImpl(g, agg, dst_h, d_dst, d_src, /*stored_h=*/nullptr);
}

void SageLayer::ForwardCost(const LocalGraph& g, double* flops,
                            double* bytes) const {
  const double e = static_cast<double>(g.num_edges);
  const double nd = static_cast<double>(g.num_dst);
  *flops = 2.0 * e * in_dim_ + 4.0 * nd * in_dim_ * out_dim_;
  *bytes = (e + 2.0 * nd) * in_dim_ * 4.0 + nd * out_dim_ * 8.0;
}

void SageLayer::BackwardCost(const LocalGraph& g, bool cached, double* flops,
                             double* bytes) const {
  const double e = static_cast<double>(g.num_edges);
  const double nd = static_cast<double>(g.num_dst);
  const double ns = static_cast<double>(g.num_src);
  *flops = 12.0 * nd * in_dim_ * out_dim_ + 2.0 * e * in_dim_;
  *bytes = (e + 2.0 * nd + ns) * in_dim_ * 4.0 + nd * out_dim_ * 12.0;
  if (!cached) {
    *flops += 2.0 * e * in_dim_;
    *bytes += e * in_dim_ * 4.0;
  }
}

}  // namespace hongtu
