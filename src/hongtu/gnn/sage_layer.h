/// \file sage_layer.h
/// \brief GraphSAGE layer with mean aggregator (Hamilton et al.):
/// h_v = act(W_self h_v + W_nbr mean_{u in N(v)} h_u + b).
/// Mean aggregation is arithmetic-only, so the layer is cacheable; the
/// cached backward additionally needs the destinations' own representations
/// (needs_dst_h), which the engine reads from the host vertex data.

#pragma once

#include "hongtu/gnn/layer.h"

namespace hongtu {

class SageLayer : public Layer {
 public:
  SageLayer(int in_dim, int out_dim, bool relu, uint64_t seed);

  const char* name() const override { return "SAGE"; }
  int in_dim() const override { return in_dim_; }
  int out_dim() const override { return out_dim_; }
  bool cacheable() const override { return true; }
  bool needs_dst_h() const override { return true; }

  std::vector<Tensor*> params() override { return {&w_self_, &w_nbr_, &b_}; }
  std::vector<Tensor*> grads() override { return {&dw_self_, &dw_nbr_, &db_}; }

  Status Forward(const LocalGraph& g, const Tensor& src_h, Tensor* dst_h,
                 Tensor* agg_cache) override;
  Status ForwardStore(const LocalGraph& g, const Tensor& src_h, Tensor* dst_h,
                      std::unique_ptr<LayerCtx>* ctx) override;
  Status BackwardStored(const LocalGraph& g, const LayerCtx& ctx,
                        const Tensor& src_h, const Tensor& d_dst,
                        Tensor* d_src) override;
  Status BackwardCached(const LocalGraph& g, const Tensor& agg,
                        const Tensor& dst_h, const Tensor& d_dst,
                        Tensor* d_src) override;

  void ForwardCost(const LocalGraph& g, double* flops,
                   double* bytes) const override;
  void BackwardCost(const LocalGraph& g, bool cached, double* flops,
                    double* bytes) const override;

 private:
  /// `stored_h` is the activated forward output when available (stored
  /// path); null means recompute it for the ReLU mask (cached path).
  Status BackwardImpl(const LocalGraph& g, const Tensor& agg,
                      const Tensor& dst_h, const Tensor& d_dst, Tensor* d_src,
                      const Tensor* stored_h);

  int in_dim_, out_dim_;
  bool relu_;
  Tensor w_self_, w_nbr_, b_;
  Tensor dw_self_, dw_nbr_, db_;
};

}  // namespace hongtu
