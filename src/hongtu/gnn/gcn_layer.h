/// \file gcn_layer.h
/// \brief Graph convolutional layer (Kipf & Welling, Eq. 2 of the paper):
/// h_v = act(W * sum_{u in N(v)} d_uv h_u + b), with symmetric-normalized
/// edge weights d_uv. AGGREGATE is pure arithmetic, so the layer is
/// cacheable (the recomputation-caching hybrid applies, §4.2).

#pragma once

#include "hongtu/gnn/layer.h"

namespace hongtu {

class GcnLayer : public Layer {
 public:
  /// `relu` disables the activation for the final layer.
  GcnLayer(int in_dim, int out_dim, bool relu, uint64_t seed);

  const char* name() const override { return "GCN"; }
  int in_dim() const override { return in_dim_; }
  int out_dim() const override { return out_dim_; }
  bool cacheable() const override { return true; }

  std::vector<Tensor*> params() override { return {&w_, &b_}; }
  std::vector<Tensor*> grads() override { return {&dw_, &db_}; }

  Status Forward(const LocalGraph& g, const Tensor& src_h, Tensor* dst_h,
                 Tensor* agg_cache) override;
  Status ForwardStore(const LocalGraph& g, const Tensor& src_h, Tensor* dst_h,
                      std::unique_ptr<LayerCtx>* ctx) override;
  Status BackwardStored(const LocalGraph& g, const LayerCtx& ctx,
                        const Tensor& src_h, const Tensor& d_dst,
                        Tensor* d_src) override;
  Status BackwardCached(const LocalGraph& g, const Tensor& agg,
                        const Tensor& dst_h, const Tensor& d_dst,
                        Tensor* d_src) override;

  void ForwardCost(const LocalGraph& g, double* flops,
                   double* bytes) const override;
  void BackwardCost(const LocalGraph& g, bool cached, double* flops,
                    double* bytes) const override;

 private:
  /// Shared backward tail given the (cached or stored) aggregate output.
  Status BackwardFromAgg(const LocalGraph& g, const Tensor& agg,
                         const Tensor& d_dst, Tensor* d_src);

  int in_dim_, out_dim_;
  bool relu_;
  Tensor w_, b_, dw_, db_;
};

}  // namespace hongtu
