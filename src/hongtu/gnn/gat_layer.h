/// \file gat_layer.h
/// \brief Graph attention layer (Velickovic et al., Eq. 3 of the paper),
/// single head:
///   e_uv   = LeakyReLU(a_src . (W h_u) + a_dst . (W h_v))
///   alpha  = softmax over the full in-neighbor set of v
///   h_v    = act(sum_u alpha_uv W h_u)
/// The attention softmax runs over the complete neighbor set, which is why
/// HongTu's chunks keep all in-edges of each destination (§4.1). Attention
/// produces O(|E|) intermediate state, so the layer is NOT cacheable: the
/// engine falls back to full recomputation in the backward pass (§4.2).

#pragma once

#include "hongtu/gnn/layer.h"

namespace hongtu {

class GatLayer : public Layer {
 public:
  GatLayer(int in_dim, int out_dim, bool relu, uint64_t seed);

  const char* name() const override { return "GAT"; }
  int in_dim() const override { return in_dim_; }
  int out_dim() const override { return out_dim_; }
  bool cacheable() const override { return false; }

  std::vector<Tensor*> params() override { return {&w_, &a_src_, &a_dst_}; }
  std::vector<Tensor*> grads() override { return {&dw_, &da_src_, &da_dst_}; }

  Status Forward(const LocalGraph& g, const Tensor& src_h, Tensor* dst_h,
                 Tensor* agg_cache) override;
  Status ForwardStore(const LocalGraph& g, const Tensor& src_h, Tensor* dst_h,
                      std::unique_ptr<LayerCtx>* ctx) override;
  Status BackwardStored(const LocalGraph& g, const LayerCtx& ctx,
                        const Tensor& src_h, const Tensor& d_dst,
                        Tensor* d_src) override;

  void ForwardCost(const LocalGraph& g, double* flops,
                   double* bytes) const override;
  void BackwardCost(const LocalGraph& g, bool cached, double* flops,
                    double* bytes) const override;

  static constexpr float kLeakySlope = 0.2f;

 private:
  int in_dim_, out_dim_;
  bool relu_;
  Tensor w_, a_src_, a_dst_;
  Tensor dw_, da_src_, da_dst_;
};

}  // namespace hongtu
