#include "hongtu/gnn/gcn_layer.h"

#include "hongtu/tensor/ops.h"

namespace hongtu {

namespace {

/// dst_h = act(agg * W + b) in one fused GEMM pass (bias + activation are
/// the GEMM epilogue; no separate sweep over the output).
void UpdateForward(const Tensor& agg, const Tensor& w, const Tensor& b,
                   bool relu, Tensor* dst_h) {
  ops::MatmulBiasAct(agg, w, b,
                     relu ? ops::Activation::kRelu : ops::Activation::kNone,
                     /*accumulate=*/false, dst_h);
}

struct GcnCtx : public LayerCtx {
  Tensor agg;  // AGGREGATE output (num_dst x in_dim)
  Tensor h;    // activated output; h > 0 iff the pre-activation z > 0, so
               // it carries the ReLU mask the backward pass needs
  int64_t bytes() const override { return agg.bytes() + h.bytes(); }
};

}  // namespace

GcnLayer::GcnLayer(int in_dim, int out_dim, bool relu, uint64_t seed)
    : in_dim_(in_dim),
      out_dim_(out_dim),
      relu_(relu),
      w_(Tensor::GlorotUniform(in_dim, out_dim, seed)),
      b_(1, out_dim),
      dw_(in_dim, out_dim),
      db_(1, out_dim) {}

Status GcnLayer::Forward(const LocalGraph& g, const Tensor& src_h,
                         Tensor* dst_h, Tensor* agg_cache) {
  // Scratch is fully overwritten (GatherWeighted then the fused GEMM), so
  // pooled uninitialized buffers avoid the zero fill; the caller's
  // `agg_cache` workspace is written in place instead of being swapped out.
  Tensor local_agg;
  Tensor* agg = agg_cache != nullptr ? agg_cache : &local_agg;
  agg->EnsureShape(g.num_dst, in_dim_);
  GatherWeighted(g, src_h, agg);
  dst_h->EnsureShape(g.num_dst, out_dim_);
  UpdateForward(*agg, w_, b_, relu_, dst_h);
  return Status::OK();
}

Status GcnLayer::ForwardStore(const LocalGraph& g, const Tensor& src_h,
                              Tensor* dst_h, std::unique_ptr<LayerCtx>* ctx) {
  auto c = std::make_unique<GcnCtx>();
  c->agg = Tensor::Uninitialized(g.num_dst, in_dim_);
  GatherWeighted(g, src_h, &c->agg);
  c->h = Tensor::Uninitialized(g.num_dst, out_dim_);
  UpdateForward(c->agg, w_, b_, relu_, &c->h);
  // The output IS the stored activation; hand out a view instead of a copy
  // (valid while *ctx lives — see Layer::ForwardStore).
  *dst_h = Tensor::View(c->h);
  *ctx = std::move(c);
  return Status::OK();
}

Status GcnLayer::BackwardFromAgg(const LocalGraph& g, const Tensor& agg,
                                 const Tensor& d_dst, Tensor* d_src) {
  Tensor dz = Tensor::Uninitialized(g.num_dst, out_dim_);
  if (relu_) {
    // Recompute the activated output for the ReLU mask (identical to the
    // forward value, §4.2; h > 0 iff the pre-activation was > 0).
    Tensor h = Tensor::Uninitialized(g.num_dst, out_dim_);
    UpdateForward(agg, w_, b_, /*relu=*/true, &h);
    ops::ReluBackward(h, d_dst, &dz);
  } else {
    HT_RETURN_IF_ERROR(dz.CopyFrom(d_dst));
  }
  // Param grads.
  ops::MatmulTransAAccum(agg, dz, &dw_);
  ops::ColumnSumAccum(dz, &db_);
  // d_agg = dz * W^T, then scatter along edges to sources.
  Tensor dagg = Tensor::Uninitialized(g.num_dst, in_dim_);
  ops::MatmulTransB(dz, w_, &dagg);
  ScatterWeightedAccum(g, dagg, d_src);
  return Status::OK();
}

Status GcnLayer::BackwardStored(const LocalGraph& g, const LayerCtx& ctx,
                                const Tensor& src_h, const Tensor& d_dst,
                                Tensor* d_src) {
  (void)src_h;
  const auto& c = static_cast<const GcnCtx&>(ctx);
  Tensor dz = Tensor::Uninitialized(g.num_dst, out_dim_);
  if (relu_) {
    ops::ReluBackward(c.h, d_dst, &dz);
  } else {
    HT_RETURN_IF_ERROR(dz.CopyFrom(d_dst));
  }
  ops::MatmulTransAAccum(c.agg, dz, &dw_);
  ops::ColumnSumAccum(dz, &db_);
  Tensor dagg = Tensor::Uninitialized(g.num_dst, in_dim_);
  ops::MatmulTransB(dz, w_, &dagg);
  ScatterWeightedAccum(g, dagg, d_src);
  return Status::OK();
}

Status GcnLayer::BackwardCached(const LocalGraph& g, const Tensor& agg,
                                const Tensor& dst_h, const Tensor& d_dst,
                                Tensor* d_src) {
  (void)dst_h;
  return BackwardFromAgg(g, agg, d_dst, d_src);
}

void GcnLayer::ForwardCost(const LocalGraph& g, double* flops,
                           double* bytes) const {
  const double e = static_cast<double>(g.num_edges);
  const double nd = static_cast<double>(g.num_dst);
  *flops = 2.0 * e * in_dim_ + 2.0 * nd * in_dim_ * out_dim_;
  *bytes = (e + nd) * in_dim_ * 4.0 + nd * out_dim_ * 8.0;
}

void GcnLayer::BackwardCost(const LocalGraph& g, bool cached, double* flops,
                            double* bytes) const {
  const double e = static_cast<double>(g.num_edges);
  const double nd = static_cast<double>(g.num_dst);
  const double ns = static_cast<double>(g.num_src);
  // UPDATE re-forward + dW + dagg + scatter.
  *flops = 6.0 * nd * in_dim_ * out_dim_ + 2.0 * e * in_dim_;
  *bytes = (e + nd + ns) * in_dim_ * 4.0 + nd * out_dim_ * 12.0;
  if (!cached) {
    // Full recomputation repeats the AGGREGATE as well.
    *flops += 2.0 * e * in_dim_;
    *bytes += e * in_dim_ * 4.0;
  }
}

}  // namespace hongtu
