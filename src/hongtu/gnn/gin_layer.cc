#include "hongtu/gnn/gin_layer.h"

#include "hongtu/common/parallel.h"
#include "hongtu/kernels/backend.h"
#include "hongtu/kernels/spmm.h"
#include "hongtu/tensor/ops.h"

namespace hongtu {

namespace {

struct GinCtx : public LayerCtx {
  Tensor agg;     // sum aggregate (num_dst x in)
  Tensor self_h;  // destinations' own rows (num_dst x in)
  Tensor h;       // activated output; carries the ReLU mask (h > 0 iff z > 0)
  int64_t bytes() const override {
    return agg.bytes() + self_h.bytes() + h.bytes();
  }
};

void GatherSelfRows(const LocalGraph& g, const Tensor& src_h, Tensor* out) {
  kernels::GatherRows(kernels::ActiveBackend(), g.self_idx, g.num_dst,
                      src_h.data(), src_h.cols(), out->data());
}

/// comb = agg + (1+eps) self_h.
void CombineSelf(const Tensor& agg, const Tensor& self_h, float eps,
                 Tensor* comb) {
  const float k = 1.0f + eps;
  const float* pa = agg.data();
  const float* ps = self_h.data();
  float* pc = comb->data();
  ParallelForChunked(0, comb->size(), [&](int64_t lo, int64_t hi) {
#pragma omp simd
    for (int64_t i = lo; i < hi; ++i) pc[i] = pa[i] + k * ps[i];
  });
}

/// dst_h = act(comb*W + b) with the bias + activation fused into the GEMM.
void UpdateForward(const Tensor& comb, const Tensor& w, const Tensor& b,
                   bool relu, Tensor* dst_h) {
  ops::MatmulBiasAct(comb, w, b,
                     relu ? ops::Activation::kRelu : ops::Activation::kNone,
                     /*accumulate=*/false, dst_h);
}

}  // namespace

GinLayer::GinLayer(int in_dim, int out_dim, bool relu, uint64_t seed)
    : in_dim_(in_dim),
      out_dim_(out_dim),
      relu_(relu),
      w_(Tensor::GlorotUniform(in_dim, out_dim, seed)),
      b_(1, out_dim),
      eps_(1, 1),
      dw_(in_dim, out_dim),
      db_(1, out_dim),
      deps_(1, 1) {}

Status GinLayer::Forward(const LocalGraph& g, const Tensor& src_h,
                         Tensor* dst_h, Tensor* agg_cache) {
  // All scratch is fully overwritten before use: pooled, uninitialized, and
  // the caller's agg workspace is filled in place.
  Tensor local_agg;
  Tensor* agg = agg_cache != nullptr ? agg_cache : &local_agg;
  agg->EnsureShape(g.num_dst, in_dim_);
  GatherSum(g, src_h, agg);
  Tensor self_h = Tensor::Uninitialized(g.num_dst, in_dim_);
  GatherSelfRows(g, src_h, &self_h);
  Tensor comb = Tensor::Uninitialized(g.num_dst, in_dim_);
  CombineSelf(*agg, self_h, eps_.at(0, 0), &comb);
  dst_h->EnsureShape(g.num_dst, out_dim_);
  UpdateForward(comb, w_, b_, relu_, dst_h);
  return Status::OK();
}

Status GinLayer::ForwardStore(const LocalGraph& g, const Tensor& src_h,
                              Tensor* dst_h, std::unique_ptr<LayerCtx>* ctx) {
  auto c = std::make_unique<GinCtx>();
  c->agg = Tensor::Uninitialized(g.num_dst, in_dim_);
  GatherSum(g, src_h, &c->agg);
  c->self_h = Tensor::Uninitialized(g.num_dst, in_dim_);
  GatherSelfRows(g, src_h, &c->self_h);
  Tensor comb = Tensor::Uninitialized(g.num_dst, in_dim_);
  CombineSelf(c->agg, c->self_h, eps_.at(0, 0), &comb);
  c->h = Tensor::Uninitialized(g.num_dst, out_dim_);
  UpdateForward(comb, w_, b_, relu_, &c->h);
  // The output IS the stored activation; hand out a view instead of a copy
  // (valid while *ctx lives — see Layer::ForwardStore).
  *dst_h = Tensor::View(c->h);
  *ctx = std::move(c);
  return Status::OK();
}

Status GinLayer::BackwardImpl(const LocalGraph& g, const Tensor& agg,
                              const Tensor& dst_h, const Tensor& d_dst,
                              Tensor* d_src, const Tensor* stored_h) {
  if (dst_h.rows() != g.num_dst || dst_h.cols() != in_dim_) {
    return Status::Invalid("GinLayer backward requires destination rows");
  }
  const float eps = eps_.at(0, 0);
  // Recompute comb (needed for dW regardless of the mask source).
  Tensor comb = Tensor::Uninitialized(g.num_dst, in_dim_);
  CombineSelf(agg, dst_h, eps, &comb);

  Tensor dz = Tensor::Uninitialized(g.num_dst, out_dim_);
  if (relu_) {
    if (stored_h != nullptr) {
      ops::ReluBackward(*stored_h, d_dst, &dz);
    } else {
      // Recompute the activated output for the ReLU mask (h > 0 iff z > 0).
      Tensor h = Tensor::Uninitialized(g.num_dst, out_dim_);
      UpdateForward(comb, w_, b_, /*relu=*/true, &h);
      ops::ReluBackward(h, d_dst, &dz);
    }
  } else {
    HT_RETURN_IF_ERROR(dz.CopyFrom(d_dst));
  }
  ops::MatmulTransAAccum(comb, dz, &dw_);
  ops::ColumnSumAccum(dz, &db_);
  // dcomb = dz * W^T.
  Tensor dcomb = Tensor::Uninitialized(g.num_dst, in_dim_);
  ops::MatmulTransB(dz, w_, &dcomb);
  // eps gradient: sum(dcomb . dst_h).
  deps_.at(0, 0) += static_cast<float>(ops::Dot(dcomb, dst_h));
  // Neighbor path (unweighted sum) and self path.
  ScatterSumAccum(g, dcomb, d_src);
  kernels::ScatterRowsAccum(kernels::ActiveBackend(), g.self_idx, g.num_dst,
                            dcomb.data(), 1.0f + eps, in_dim_,
                            d_src->data());
  return Status::OK();
}

Status GinLayer::BackwardStored(const LocalGraph& g, const LayerCtx& ctx,
                                const Tensor& src_h, const Tensor& d_dst,
                                Tensor* d_src) {
  (void)src_h;
  const auto& c = static_cast<const GinCtx&>(ctx);
  return BackwardImpl(g, c.agg, c.self_h, d_dst, d_src, &c.h);
}

Status GinLayer::BackwardCached(const LocalGraph& g, const Tensor& agg,
                                const Tensor& dst_h, const Tensor& d_dst,
                                Tensor* d_src) {
  return BackwardImpl(g, agg, dst_h, d_dst, d_src, /*stored_h=*/nullptr);
}

void GinLayer::ForwardCost(const LocalGraph& g, double* flops,
                           double* bytes) const {
  const double e = static_cast<double>(g.num_edges);
  const double nd = static_cast<double>(g.num_dst);
  *flops = 2.0 * e * in_dim_ + 2.0 * nd * in_dim_ * out_dim_ +
           2.0 * nd * in_dim_;
  *bytes = (e + 2.0 * nd) * in_dim_ * 4.0 + nd * out_dim_ * 8.0;
}

void GinLayer::BackwardCost(const LocalGraph& g, bool cached, double* flops,
                            double* bytes) const {
  const double e = static_cast<double>(g.num_edges);
  const double nd = static_cast<double>(g.num_dst);
  const double ns = static_cast<double>(g.num_src);
  *flops = 6.0 * nd * in_dim_ * out_dim_ + 2.0 * e * in_dim_ +
           4.0 * nd * in_dim_;
  *bytes = (e + 2.0 * nd + ns) * in_dim_ * 4.0 + nd * out_dim_ * 12.0;
  if (!cached) {
    *flops += 2.0 * e * in_dim_;
    *bytes += e * in_dim_ * 4.0;
  }
}

}  // namespace hongtu
