#include "hongtu/gnn/gin_layer.h"

#include "hongtu/common/parallel.h"
#include "hongtu/tensor/ops.h"

namespace hongtu {

namespace {

struct GinCtx : public LayerCtx {
  Tensor agg;     // sum aggregate (num_dst x in)
  Tensor self_h;  // destinations' own rows (num_dst x in)
  Tensor z;       // pre-activation (num_dst x out)
  int64_t bytes() const override {
    return agg.bytes() + self_h.bytes() + z.bytes();
  }
};

void GatherSelfRows(const LocalGraph& g, const Tensor& src_h, Tensor* out) {
  const int64_t dim = src_h.cols();
  ParallelForChunked(0, g.num_dst, [&](int64_t lo, int64_t hi) {
    for (int64_t d = lo; d < hi; ++d) {
      const int32_t s = g.self_idx[d];
      float* o = out->row(d);
      if (s < 0) {
        for (int64_t c = 0; c < dim; ++c) o[c] = 0.0f;
      } else {
        const float* in = src_h.row(s);
        for (int64_t c = 0; c < dim; ++c) o[c] = in[c];
      }
    }
  });
}

/// comb = agg + (1+eps) self_h; z = comb*W + b; dst_h = act(z).
void UpdateForward(const Tensor& agg, const Tensor& self_h, float eps,
                   const Tensor& w, const Tensor& b, bool relu, Tensor* z,
                   Tensor* dst_h) {
  Tensor comb(agg.rows(), agg.cols());
  const float k = 1.0f + eps;
  const float* pa = agg.data();
  const float* ps = self_h.data();
  float* pc = comb.data();
  ParallelForChunked(0, comb.size(), [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) pc[i] = pa[i] + k * ps[i];
  });
  ops::Matmul(comb, w, z);
  const int64_t n = z->rows(), dim = z->cols();
  const float* pb = b.data();
  ParallelForChunked(0, n, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      float* pz = z->row(i);
      float* ph = dst_h->row(i);
      for (int64_t c = 0; c < dim; ++c) {
        pz[c] += pb[c];
        ph[c] = relu ? (pz[c] > 0 ? pz[c] : 0.0f) : pz[c];
      }
    }
  });
}

}  // namespace

GinLayer::GinLayer(int in_dim, int out_dim, bool relu, uint64_t seed)
    : in_dim_(in_dim),
      out_dim_(out_dim),
      relu_(relu),
      w_(Tensor::GlorotUniform(in_dim, out_dim, seed)),
      b_(1, out_dim),
      eps_(1, 1),
      dw_(in_dim, out_dim),
      db_(1, out_dim),
      deps_(1, 1) {}

Status GinLayer::Forward(const LocalGraph& g, const Tensor& src_h,
                         Tensor* dst_h, Tensor* agg_cache) {
  Tensor agg(g.num_dst, in_dim_);
  GatherSum(g, src_h, &agg);
  Tensor self_h(g.num_dst, in_dim_);
  GatherSelfRows(g, src_h, &self_h);
  Tensor z(g.num_dst, out_dim_);
  if (dst_h->rows() != g.num_dst || dst_h->cols() != out_dim_) {
    *dst_h = Tensor(g.num_dst, out_dim_);
  }
  UpdateForward(agg, self_h, eps_.at(0, 0), w_, b_, relu_, &z, dst_h);
  if (agg_cache != nullptr) *agg_cache = std::move(agg);
  return Status::OK();
}

Status GinLayer::ForwardStore(const LocalGraph& g, const Tensor& src_h,
                              Tensor* dst_h, std::unique_ptr<LayerCtx>* ctx) {
  auto c = std::make_unique<GinCtx>();
  c->agg = Tensor(g.num_dst, in_dim_);
  GatherSum(g, src_h, &c->agg);
  c->self_h = Tensor(g.num_dst, in_dim_);
  GatherSelfRows(g, src_h, &c->self_h);
  c->z = Tensor(g.num_dst, out_dim_);
  if (dst_h->rows() != g.num_dst || dst_h->cols() != out_dim_) {
    *dst_h = Tensor(g.num_dst, out_dim_);
  }
  UpdateForward(c->agg, c->self_h, eps_.at(0, 0), w_, b_, relu_, &c->z, dst_h);
  *ctx = std::move(c);
  return Status::OK();
}

Status GinLayer::BackwardImpl(const LocalGraph& g, const Tensor& agg,
                              const Tensor& dst_h, const Tensor& d_dst,
                              Tensor* d_src) {
  if (dst_h.rows() != g.num_dst || dst_h.cols() != in_dim_) {
    return Status::Invalid("GinLayer backward requires destination rows");
  }
  const float eps = eps_.at(0, 0);
  // Recompute comb and z.
  Tensor comb(g.num_dst, in_dim_);
  {
    const float k = 1.0f + eps;
    const float* pa = agg.data();
    const float* ps = dst_h.data();
    float* pc = comb.data();
    ParallelForChunked(0, comb.size(), [&](int64_t lo, int64_t hi) {
      for (int64_t i = lo; i < hi; ++i) pc[i] = pa[i] + k * ps[i];
    });
  }
  Tensor z(g.num_dst, out_dim_);
  ops::Matmul(comb, w_, &z);
  const float* pb = b_.data();
  for (int64_t i = 0; i < z.rows(); ++i) {
    float* pz = z.row(i);
    for (int64_t c = 0; c < out_dim_; ++c) pz[c] += pb[c];
  }

  Tensor dz(g.num_dst, out_dim_);
  if (relu_) {
    ops::ReluBackward(z, d_dst, &dz);
  } else {
    HT_RETURN_IF_ERROR(dz.CopyFrom(d_dst));
  }
  ops::MatmulTransAAccum(comb, dz, &dw_);
  for (int64_t i = 0; i < dz.rows(); ++i) {
    const float* p = dz.row(i);
    for (int64_t c = 0; c < out_dim_; ++c) db_.data()[c] += p[c];
  }
  // dcomb = dz * W^T.
  Tensor dcomb(g.num_dst, in_dim_);
  ops::MatmulTransB(dz, w_, &dcomb);
  // eps gradient: sum(dcomb . dst_h).
  double deps = 0.0;
  for (int64_t i = 0; i < dcomb.size(); ++i) {
    deps += static_cast<double>(dcomb.data()[i]) * dst_h.data()[i];
  }
  deps_.at(0, 0) += static_cast<float>(deps);
  // Neighbor path (unweighted sum) and self path.
  ScatterSumAccum(g, dcomb, d_src);
  const float k = 1.0f + eps;
  for (int64_t d = 0; d < g.num_dst; ++d) {
    const int32_t s = g.self_idx[d];
    if (s < 0) continue;
    float* out = d_src->row(s);
    const float* in = dcomb.row(d);
    for (int64_t c = 0; c < in_dim_; ++c) out[c] += k * in[c];
  }
  return Status::OK();
}

Status GinLayer::BackwardStored(const LocalGraph& g, const LayerCtx& ctx,
                                const Tensor& src_h, const Tensor& d_dst,
                                Tensor* d_src) {
  (void)src_h;
  const auto& c = static_cast<const GinCtx&>(ctx);
  return BackwardImpl(g, c.agg, c.self_h, d_dst, d_src);
}

Status GinLayer::BackwardCached(const LocalGraph& g, const Tensor& agg,
                                const Tensor& dst_h, const Tensor& d_dst,
                                Tensor* d_src) {
  return BackwardImpl(g, agg, dst_h, d_dst, d_src);
}

void GinLayer::ForwardCost(const LocalGraph& g, double* flops,
                           double* bytes) const {
  const double e = static_cast<double>(g.num_edges);
  const double nd = static_cast<double>(g.num_dst);
  *flops = 2.0 * e * in_dim_ + 2.0 * nd * in_dim_ * out_dim_ +
           2.0 * nd * in_dim_;
  *bytes = (e + 2.0 * nd) * in_dim_ * 4.0 + nd * out_dim_ * 8.0;
}

void GinLayer::BackwardCost(const LocalGraph& g, bool cached, double* flops,
                            double* bytes) const {
  const double e = static_cast<double>(g.num_edges);
  const double nd = static_cast<double>(g.num_dst);
  const double ns = static_cast<double>(g.num_src);
  *flops = 6.0 * nd * in_dim_ * out_dim_ + 2.0 * e * in_dim_ +
           4.0 * nd * in_dim_;
  *bytes = (e + 2.0 * nd + ns) * in_dim_ * 4.0 + nd * out_dim_ * 12.0;
  if (!cached) {
    *flops += 2.0 * e * in_dim_;
    *bytes += e * in_dim_ * 4.0;
  }
}

}  // namespace hongtu
