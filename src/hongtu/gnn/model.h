/// \file model.h
/// \brief GNN model: an L-layer stack of a single layer kind, mirroring the
/// paper's evaluation models (GCN and GAT, plus SAGE/GIN which share GCN's
/// cacheable-aggregate property, §4.2).

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "hongtu/gnn/layer.h"

namespace hongtu {

enum class GnnKind { kGcn = 0, kSage = 1, kGin = 2, kGat = 3, kGgnn = 4 };

const char* GnnKindName(GnnKind kind);

struct ModelConfig {
  GnnKind kind = GnnKind::kGcn;
  /// Layer dims, length L+1: {feature_dim, hidden..., num_classes}.
  std::vector<int> dims;
  uint64_t seed = 1234;

  int num_layers() const { return static_cast<int>(dims.size()) - 1; }

  /// Convenience: `layers` GNN layers with a constant hidden width.
  static ModelConfig Make(GnnKind kind, int feature_dim, int hidden_dim,
                          int num_classes, int layers, uint64_t seed = 1234);
};

/// Owns the layer stack and exposes flattened parameter/gradient views.
class GnnModel {
 public:
  static Result<GnnModel> Create(const ModelConfig& config);

  GnnModel() = default;
  GnnModel(GnnModel&&) = default;
  GnnModel& operator=(GnnModel&&) = default;

  const ModelConfig& config() const { return config_; }
  int num_layers() const { return static_cast<int>(layers_.size()); }
  Layer* layer(int l) { return layers_[l].get(); }
  const Layer* layer(int l) const { return layers_[l].get(); }

  void ZeroGrads();
  std::vector<Tensor*> AllParams();
  std::vector<Tensor*> AllGrads();
  /// Total parameter payload; drives the all-reduce traffic model.
  int64_t ParamBytes() const;

 private:
  ModelConfig config_;
  std::vector<std::unique_ptr<Layer>> layers_;
};

}  // namespace hongtu
