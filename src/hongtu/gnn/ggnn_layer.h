/// \file ggnn_layer.h
/// \brief Gated graph layer (after Li et al., GGNN): a GRU-style update over
/// the summed neighbor message,
///   s  = W_s h_v                    (state projection)
///   m  = W_m sum_{u in N(v)} h_u    (message)
///   z  = sigmoid(m U_z + s V_z + b_z)
///   r  = sigmoid(m U_r + s V_r + b_r)
///   c  = tanh(m U_h + (r . s) V_h + b_h)
///   h' = (1 - z) . s + z . c
///
/// The classical GGNN keeps a constant state width; the W_s / W_m input
/// projections generalize it to the varying layer widths used here. With
/// this (arithmetic-sum) aggregation the layer is cacheable under §4.2 —
/// the original per-edge-type GGNN variant the paper groups with GAT would
/// fall back to recomputation instead.

#pragma once

#include "hongtu/gnn/layer.h"

namespace hongtu {

class GgnnLayer : public Layer {
 public:
  GgnnLayer(int in_dim, int out_dim, bool relu_unused, uint64_t seed);

  const char* name() const override { return "GGNN"; }
  int in_dim() const override { return in_dim_; }
  int out_dim() const override { return out_dim_; }
  bool cacheable() const override { return true; }
  bool needs_dst_h() const override { return true; }

  std::vector<Tensor*> params() override {
    return {&ws_, &wm_, &uz_, &vz_, &ur_, &vr_, &uh_, &vh_, &bz_, &br_, &bh_};
  }
  std::vector<Tensor*> grads() override {
    return {&dws_, &dwm_, &duz_, &dvz_, &dur_, &dvr_, &duh_, &dvh_,
            &dbz_, &dbr_, &dbh_};
  }

  Status Forward(const LocalGraph& g, const Tensor& src_h, Tensor* dst_h,
                 Tensor* agg_cache) override;
  Status ForwardStore(const LocalGraph& g, const Tensor& src_h, Tensor* dst_h,
                      std::unique_ptr<LayerCtx>* ctx) override;
  Status BackwardStored(const LocalGraph& g, const LayerCtx& ctx,
                        const Tensor& src_h, const Tensor& d_dst,
                        Tensor* d_src) override;
  Status BackwardCached(const LocalGraph& g, const Tensor& agg,
                        const Tensor& dst_h, const Tensor& d_dst,
                        Tensor* d_src) override;

  void ForwardCost(const LocalGraph& g, double* flops,
                   double* bytes) const override;
  void BackwardCost(const LocalGraph& g, bool cached, double* flops,
                    double* bytes) const override;

 private:
  Status BackwardImpl(const LocalGraph& g, const Tensor& agg,
                      const Tensor& dst_h, const Tensor& d_dst, Tensor* d_src);

  int in_dim_, out_dim_;
  Tensor ws_, wm_, uz_, vz_, ur_, vr_, uh_, vh_, bz_, br_, bh_;
  Tensor dws_, dwm_, duz_, dvz_, dur_, dvr_, duh_, dvh_, dbz_, dbr_, dbh_;
};

}  // namespace hongtu
