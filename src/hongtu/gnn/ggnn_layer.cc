#include "hongtu/gnn/ggnn_layer.h"

#include <cmath>

#include "hongtu/common/parallel.h"
#include "hongtu/kernels/backend.h"
#include "hongtu/kernels/spmm.h"
#include "hongtu/tensor/ops.h"

namespace hongtu {

namespace {

void GatherSelfRows(const LocalGraph& g, const Tensor& src_h, Tensor* out) {
  kernels::GatherRows(kernels::ActiveBackend(), g.self_idx, g.num_dst,
                      src_h.data(), src_h.cols(), out->data());
}

/// gate = act(m*U + x*V + b): the second GEMM accumulates onto the first
/// with the bias + activation fused into its epilogue.
void GateForward(const Tensor& m, const Tensor& u, const Tensor& x,
                 const Tensor& v, const Tensor& b, bool tanh_act,
                 Tensor* gate) {
  ops::Matmul(m, u, gate);
  ops::MatmulBiasAct(
      x, v, b, tanh_act ? ops::Activation::kTanh : ops::Activation::kSigmoid,
      /*accumulate=*/true, gate);
}

struct GgnnCtx : public LayerCtx {
  Tensor agg;     // summed neighbor input (num_dst x in)
  Tensor self_h;  // destinations' own rows (num_dst x in)
  int64_t bytes() const override { return agg.bytes() + self_h.bytes(); }
};

}  // namespace

GgnnLayer::GgnnLayer(int in_dim, int out_dim, bool /*relu_unused*/,
                     uint64_t seed)
    : in_dim_(in_dim),
      out_dim_(out_dim),
      ws_(Tensor::GlorotUniform(in_dim, out_dim, seed)),
      wm_(Tensor::GlorotUniform(in_dim, out_dim, seed + 1)),
      uz_(Tensor::GlorotUniform(out_dim, out_dim, seed + 2)),
      vz_(Tensor::GlorotUniform(out_dim, out_dim, seed + 3)),
      ur_(Tensor::GlorotUniform(out_dim, out_dim, seed + 4)),
      vr_(Tensor::GlorotUniform(out_dim, out_dim, seed + 5)),
      uh_(Tensor::GlorotUniform(out_dim, out_dim, seed + 6)),
      vh_(Tensor::GlorotUniform(out_dim, out_dim, seed + 7)),
      bz_(1, out_dim),
      br_(1, out_dim),
      bh_(1, out_dim),
      dws_(in_dim, out_dim),
      dwm_(in_dim, out_dim),
      duz_(out_dim, out_dim),
      dvz_(out_dim, out_dim),
      dur_(out_dim, out_dim),
      dvr_(out_dim, out_dim),
      duh_(out_dim, out_dim),
      dvh_(out_dim, out_dim),
      dbz_(1, out_dim),
      dbr_(1, out_dim),
      dbh_(1, out_dim) {}

Status GgnnLayer::Forward(const LocalGraph& g, const Tensor& src_h,
                          Tensor* dst_h, Tensor* agg_cache) {
  // All scratch below is fully overwritten (GEMMs and elementwise stores),
  // so pooled uninitialized buffers skip the zero fill; the caller's agg
  // workspace is filled in place.
  Tensor local_agg;
  Tensor* agg = agg_cache != nullptr ? agg_cache : &local_agg;
  agg->EnsureShape(g.num_dst, in_dim_);
  GatherSum(g, src_h, agg);
  Tensor self_h = Tensor::Uninitialized(g.num_dst, in_dim_);
  GatherSelfRows(g, src_h, &self_h);

  Tensor s = Tensor::Uninitialized(g.num_dst, out_dim_);
  Tensor m = Tensor::Uninitialized(g.num_dst, out_dim_);
  ops::Matmul(self_h, ws_, &s);
  ops::Matmul(*agg, wm_, &m);
  Tensor z = Tensor::Uninitialized(g.num_dst, out_dim_);
  Tensor r = Tensor::Uninitialized(g.num_dst, out_dim_);
  GateForward(m, uz_, s, vz_, bz_, /*tanh_act=*/false, &z);
  GateForward(m, ur_, s, vr_, br_, /*tanh_act=*/false, &r);
  Tensor rs = Tensor::Uninitialized(g.num_dst, out_dim_);
  for (int64_t i = 0; i < rs.size(); ++i) {
    rs.data()[i] = r.data()[i] * s.data()[i];
  }
  Tensor c = Tensor::Uninitialized(g.num_dst, out_dim_);
  GateForward(m, uh_, rs, vh_, bh_, /*tanh_act=*/true, &c);

  dst_h->EnsureShape(g.num_dst, out_dim_);
  for (int64_t i = 0; i < dst_h->size(); ++i) {
    dst_h->data()[i] =
        (1.0f - z.data()[i]) * s.data()[i] + z.data()[i] * c.data()[i];
  }
  return Status::OK();
}

Status GgnnLayer::ForwardStore(const LocalGraph& g, const Tensor& src_h,
                               Tensor* dst_h, std::unique_ptr<LayerCtx>* ctx) {
  auto c = std::make_unique<GgnnCtx>();
  HT_RETURN_IF_ERROR(Forward(g, src_h, dst_h, &c->agg));
  c->self_h = Tensor::Uninitialized(g.num_dst, in_dim_);
  GatherSelfRows(g, src_h, &c->self_h);
  *ctx = std::move(c);
  return Status::OK();
}

Status GgnnLayer::BackwardImpl(const LocalGraph& g, const Tensor& agg,
                               const Tensor& dst_h, const Tensor& d_dst,
                               Tensor* d_src) {
  if (dst_h.rows() != g.num_dst || dst_h.cols() != in_dim_) {
    return Status::Invalid("GgnnLayer backward requires destination rows");
  }
  const int64_t nd = g.num_dst;
  // Recompute the forward intermediates (identical values, §4.2). Every
  // buffer is fully overwritten before it is read, so the whole backward
  // scratch set is pooled and uninitialized.
  Tensor s = Tensor::Uninitialized(nd, out_dim_);
  Tensor m = Tensor::Uninitialized(nd, out_dim_);
  ops::Matmul(dst_h, ws_, &s);
  ops::Matmul(agg, wm_, &m);
  Tensor z = Tensor::Uninitialized(nd, out_dim_);
  Tensor r = Tensor::Uninitialized(nd, out_dim_);
  GateForward(m, uz_, s, vz_, bz_, false, &z);
  GateForward(m, ur_, s, vr_, br_, false, &r);
  Tensor rs = Tensor::Uninitialized(nd, out_dim_);
  for (int64_t i = 0; i < rs.size(); ++i) {
    rs.data()[i] = r.data()[i] * s.data()[i];
  }
  Tensor c = Tensor::Uninitialized(nd, out_dim_);
  GateForward(m, uh_, rs, vh_, bh_, true, &c);

  // h' = (1-z).s + z.c
  Tensor dz = Tensor::Uninitialized(nd, out_dim_);
  Tensor dc = Tensor::Uninitialized(nd, out_dim_);
  Tensor ds = Tensor::Uninitialized(nd, out_dim_);
  for (int64_t i = 0; i < dz.size(); ++i) {
    const float dd = d_dst.data()[i];
    dz.data()[i] = dd * (c.data()[i] - s.data()[i]);
    dc.data()[i] = dd * z.data()[i];
    ds.data()[i] = dd * (1.0f - z.data()[i]);
  }
  // c = tanh(pre_c): dpre_c = dc * (1 - c^2).
  Tensor dpre_c = Tensor::Uninitialized(nd, out_dim_);
  for (int64_t i = 0; i < dc.size(); ++i) {
    dpre_c.data()[i] = dc.data()[i] * (1.0f - c.data()[i] * c.data()[i]);
  }
  ops::MatmulTransAAccum(m, dpre_c, &duh_);
  ops::MatmulTransAAccum(rs, dpre_c, &dvh_);
  ops::ColumnSumAccum(dpre_c, &dbh_);
  Tensor dm = Tensor::Uninitialized(nd, out_dim_);
  Tensor drs = Tensor::Uninitialized(nd, out_dim_);
  ops::MatmulTransB(dpre_c, uh_, &dm);
  ops::MatmulTransB(dpre_c, vh_, &drs);
  Tensor dr = Tensor::Uninitialized(nd, out_dim_);
  for (int64_t i = 0; i < drs.size(); ++i) {
    dr.data()[i] = drs.data()[i] * s.data()[i];
    ds.data()[i] += drs.data()[i] * r.data()[i];
  }
  // r = sigmoid(pre_r): dpre_r = dr * r * (1-r).
  Tensor dpre_r = Tensor::Uninitialized(nd, out_dim_);
  for (int64_t i = 0; i < dr.size(); ++i) {
    dpre_r.data()[i] = dr.data()[i] * r.data()[i] * (1.0f - r.data()[i]);
  }
  ops::MatmulTransAAccum(m, dpre_r, &dur_);
  ops::MatmulTransAAccum(s, dpre_r, &dvr_);
  ops::ColumnSumAccum(dpre_r, &dbr_);
  {
    Tensor t = Tensor::Uninitialized(nd, out_dim_);
    ops::MatmulTransB(dpre_r, ur_, &t);
    ops::AddInPlace(t, &dm);
    ops::MatmulTransB(dpre_r, vr_, &t);
    ops::AddInPlace(t, &ds);
  }
  // z = sigmoid(pre_z).
  Tensor dpre_z = Tensor::Uninitialized(nd, out_dim_);
  for (int64_t i = 0; i < dz.size(); ++i) {
    dpre_z.data()[i] = dz.data()[i] * z.data()[i] * (1.0f - z.data()[i]);
  }
  ops::MatmulTransAAccum(m, dpre_z, &duz_);
  ops::MatmulTransAAccum(s, dpre_z, &dvz_);
  ops::ColumnSumAccum(dpre_z, &dbz_);
  {
    Tensor t = Tensor::Uninitialized(nd, out_dim_);
    ops::MatmulTransB(dpre_z, uz_, &t);
    ops::AddInPlace(t, &dm);
    ops::MatmulTransB(dpre_z, vz_, &t);
    ops::AddInPlace(t, &ds);
  }

  // Input projections.
  ops::MatmulTransAAccum(agg, dm, &dwm_);
  ops::MatmulTransAAccum(dst_h, ds, &dws_);
  Tensor dagg = Tensor::Uninitialized(nd, in_dim_);
  ops::MatmulTransB(dm, wm_, &dagg);
  ScatterSumAccum(g, dagg, d_src);
  Tensor dself = Tensor::Uninitialized(nd, in_dim_);
  ops::MatmulTransB(ds, ws_, &dself);
  kernels::ScatterRowsAccum(kernels::ActiveBackend(), g.self_idx, nd,
                            dself.data(), 1.0f, in_dim_, d_src->data());
  return Status::OK();
}

Status GgnnLayer::BackwardStored(const LocalGraph& g, const LayerCtx& ctx,
                                 const Tensor& src_h, const Tensor& d_dst,
                                 Tensor* d_src) {
  (void)src_h;
  const auto& c = static_cast<const GgnnCtx&>(ctx);
  return BackwardImpl(g, c.agg, c.self_h, d_dst, d_src);
}

Status GgnnLayer::BackwardCached(const LocalGraph& g, const Tensor& agg,
                                 const Tensor& dst_h, const Tensor& d_dst,
                                 Tensor* d_src) {
  return BackwardImpl(g, agg, dst_h, d_dst, d_src);
}

void GgnnLayer::ForwardCost(const LocalGraph& g, double* flops,
                            double* bytes) const {
  const double e = static_cast<double>(g.num_edges);
  const double nd = static_cast<double>(g.num_dst);
  // Sum aggregation + 8 dense projections + elementwise gates.
  *flops = 2.0 * e * in_dim_ + 4.0 * nd * in_dim_ * out_dim_ +
           12.0 * nd * out_dim_ * out_dim_ + 12.0 * nd * out_dim_;
  *bytes = (e + 2.0 * nd) * in_dim_ * 4.0 + nd * out_dim_ * 40.0;
}

void GgnnLayer::BackwardCost(const LocalGraph& g, bool cached, double* flops,
                             double* bytes) const {
  double ff = 0, fb = 0;
  ForwardCost(g, &ff, &fb);
  *flops = 2.2 * ff;
  *bytes = 2.2 * fb;
  if (!cached) {
    *flops += 2.0 * static_cast<double>(g.num_edges) * in_dim_;
    *bytes += static_cast<double>(g.num_edges) * in_dim_ * 4.0;
  }
}

}  // namespace hongtu
