/// \file loss.h
/// \brief Downstream task: softmax cross-entropy over labeled vertices plus
/// accuracy metrics (Algorithm 1 lines 10-11).

#pragma once

#include <vector>

#include "hongtu/graph/datasets.h"
#include "hongtu/tensor/tensor.h"

namespace hongtu {

struct LossResult {
  double loss = 0.0;      ///< mean cross-entropy over `vertices`
  double accuracy = 0.0;  ///< top-1 accuracy over `vertices`
};

/// Computes mean softmax cross-entropy over `vertices` and, when `d_logits`
/// is non-null, writes the loss gradient (zero rows for unlabeled vertices;
/// each labeled row gets (softmax - onehot) / |vertices|).
LossResult SoftmaxCrossEntropy(const Tensor& logits,
                               const std::vector<int32_t>& labels,
                               const std::vector<VertexId>& vertices,
                               Tensor* d_logits);

/// Top-1 accuracy over `vertices`.
double Accuracy(const Tensor& logits, const std::vector<int32_t>& labels,
                const std::vector<VertexId>& vertices);

}  // namespace hongtu
