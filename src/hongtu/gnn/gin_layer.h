/// \file gin_layer.h
/// \brief Graph isomorphism network layer (Xu et al.):
/// h_v = act(W ((1 + eps) h_v + sum_{u in N(v)} h_u) + b), with learnable
/// eps. Sum aggregation is arithmetic-only, so the layer is cacheable; the
/// cached backward needs the destinations' own representations for the
/// (1 + eps) term and the eps gradient.

#pragma once

#include "hongtu/gnn/layer.h"

namespace hongtu {

class GinLayer : public Layer {
 public:
  GinLayer(int in_dim, int out_dim, bool relu, uint64_t seed);

  const char* name() const override { return "GIN"; }
  int in_dim() const override { return in_dim_; }
  int out_dim() const override { return out_dim_; }
  bool cacheable() const override { return true; }
  bool needs_dst_h() const override { return true; }

  std::vector<Tensor*> params() override { return {&w_, &b_, &eps_}; }
  std::vector<Tensor*> grads() override { return {&dw_, &db_, &deps_}; }

  Status Forward(const LocalGraph& g, const Tensor& src_h, Tensor* dst_h,
                 Tensor* agg_cache) override;
  Status ForwardStore(const LocalGraph& g, const Tensor& src_h, Tensor* dst_h,
                      std::unique_ptr<LayerCtx>* ctx) override;
  Status BackwardStored(const LocalGraph& g, const LayerCtx& ctx,
                        const Tensor& src_h, const Tensor& d_dst,
                        Tensor* d_src) override;
  Status BackwardCached(const LocalGraph& g, const Tensor& agg,
                        const Tensor& dst_h, const Tensor& d_dst,
                        Tensor* d_src) override;

  void ForwardCost(const LocalGraph& g, double* flops,
                   double* bytes) const override;
  void BackwardCost(const LocalGraph& g, bool cached, double* flops,
                    double* bytes) const override;

 private:
  /// `stored_h` is the activated forward output when available (stored
  /// path); null means recompute it for the ReLU mask (cached path).
  Status BackwardImpl(const LocalGraph& g, const Tensor& agg,
                      const Tensor& dst_h, const Tensor& d_dst, Tensor* d_src,
                      const Tensor* stored_h);

  int in_dim_, out_dim_;
  bool relu_;
  Tensor w_, b_, eps_;
  Tensor dw_, db_, deps_;
};

}  // namespace hongtu
