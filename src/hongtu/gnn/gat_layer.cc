#include "hongtu/gnn/gat_layer.h"

#include <cmath>

#include "hongtu/common/parallel.h"
#include "hongtu/kernels/backend.h"
#include "hongtu/kernels/spmm.h"
#include "hongtu/tensor/ops.h"

namespace hongtu {

namespace {

struct GatCtx : public LayerCtx {
  Tensor p;       // projected sources W h_u (num_src x out)
  Tensor s_src;   // a_src . P[u] (num_src x 1)
  Tensor t_dst;   // a_dst . P[self(v)] (num_dst x 1)
  Tensor pre;     // LeakyReLU(raw) per CSC edge (num_edges x 1)
  Tensor alpha;   // softmax weight per CSC edge (num_edges x 1)
  Tensor o;       // pre-activation output (num_dst x out)
  int64_t bytes() const override {
    return p.bytes() + s_src.bytes() + t_dst.bytes() + pre.bytes() +
           alpha.bytes() + o.bytes();
  }
};

}  // namespace

GatLayer::GatLayer(int in_dim, int out_dim, bool relu, uint64_t seed)
    : in_dim_(in_dim),
      out_dim_(out_dim),
      relu_(relu),
      w_(Tensor::GlorotUniform(in_dim, out_dim, seed)),
      a_src_(Tensor::GlorotUniform(1, out_dim, seed + 1)),
      a_dst_(Tensor::GlorotUniform(1, out_dim, seed + 2)),
      dw_(in_dim, out_dim),
      da_src_(1, out_dim),
      da_dst_(1, out_dim) {}

Status GatLayer::ForwardStore(const LocalGraph& g, const Tensor& src_h,
                              Tensor* dst_h, std::unique_ptr<LayerCtx>* ctx) {
  // All edge/vertex state below is fully written before being read, so the
  // whole attention pipeline draws pooled uninitialized buffers.
  auto c = std::make_unique<GatCtx>();
  c->p = Tensor::Uninitialized(g.num_src, out_dim_);
  ops::Matmul(src_h, w_, &c->p);

  c->s_src = Tensor::Uninitialized(g.num_src, 1);
  {
    const float* pa = a_src_.data();
    ParallelForChunked(0, g.num_src, [&](int64_t lo, int64_t hi) {
      for (int64_t s = lo; s < hi; ++s) {
        const float* pp = c->p.row(s);
        float acc = 0.0f;
        for (int64_t k = 0; k < out_dim_; ++k) acc += pa[k] * pp[k];
        c->s_src.at(s, 0) = acc;
      }
    });
  }
  c->t_dst = Tensor::Uninitialized(g.num_dst, 1);
  {
    const float* pa = a_dst_.data();
    ParallelForChunked(0, g.num_dst, [&](int64_t lo, int64_t hi) {
      for (int64_t d = lo; d < hi; ++d) {
        const int32_t s = g.self_idx[d];
        float acc = 0.0f;
        if (s >= 0) {
          const float* pp = c->p.row(s);
          for (int64_t k = 0; k < out_dim_; ++k) acc += pa[k] * pp[k];
        }
        c->t_dst.at(d, 0) = acc;
      }
    });
  }

  c->pre = Tensor::Uninitialized(g.num_edges, 1);
  c->alpha = Tensor::Uninitialized(g.num_edges, 1);
  c->o = Tensor::Uninitialized(g.num_dst, out_dim_);
  dst_h->EnsureShape(g.num_dst, out_dim_);

  // Edge-balanced split: the whole attention pipeline is O(edges), so a
  // vertex split would leave threads idle behind power-law hubs.
  ParallelForBalanced(g.num_dst, g.in_offsets, [&](int64_t lo, int64_t hi) {
    for (int64_t d = lo; d < hi; ++d) {
      const int64_t e0 = g.in_offsets[d], e1 = g.in_offsets[d + 1];
      // Attention logits with LeakyReLU; neighbor-softmax (stable).
      float mx = -1e30f;
      for (int64_t e = e0; e < e1; ++e) {
        const float raw = c->s_src.at(g.nbr_idx[e], 0) + c->t_dst.at(d, 0);
        const float v = ops::LeakyRelu(raw, kLeakySlope);
        c->pre.at(e, 0) = v;
        mx = std::max(mx, v);
      }
      float denom = 0.0f;
      for (int64_t e = e0; e < e1; ++e) {
        const float ex = std::exp(c->pre.at(e, 0) - mx);
        c->alpha.at(e, 0) = ex;
        denom += ex;
      }
      const float inv = denom > 0 ? 1.0f / denom : 0.0f;
      float* po = c->o.row(d);
      for (int64_t k = 0; k < out_dim_; ++k) po[k] = 0.0f;
      for (int64_t e = e0; e < e1; ++e) {
        const float a = c->alpha.at(e, 0) * inv;
        c->alpha.at(e, 0) = a;
        const float* pp = c->p.row(g.nbr_idx[e]);
        for (int64_t k = 0; k < out_dim_; ++k) po[k] += a * pp[k];
      }
      float* ph = dst_h->row(d);
      for (int64_t k = 0; k < out_dim_; ++k) {
        ph[k] = relu_ ? (po[k] > 0 ? po[k] : 0.0f) : po[k];
      }
    }
  });

  *ctx = std::move(c);
  return Status::OK();
}

Status GatLayer::Forward(const LocalGraph& g, const Tensor& src_h,
                         Tensor* dst_h, Tensor* agg_cache) {
  // GAT has no cacheable AGGREGATE output (§4.2): `agg_cache` stays empty and
  // the engine uses the recomputation path in backward.
  (void)agg_cache;
  std::unique_ptr<LayerCtx> ctx;
  return ForwardStore(g, src_h, dst_h, &ctx);
}

Status GatLayer::BackwardStored(const LocalGraph& g, const LayerCtx& ctx,
                                const Tensor& src_h, const Tensor& d_dst,
                                Tensor* d_src) {
  const auto& c = static_cast<const GatCtx&>(ctx);

  // do = d act(o).
  Tensor dout = Tensor::Uninitialized(g.num_dst, out_dim_);
  if (relu_) {
    ops::ReluBackward(c.o, d_dst, &dout);
  } else {
    HT_RETURN_IF_ERROR(dout.CopyFrom(d_dst));
  }

  // Destination-major phase: softmax + LeakyReLU backward per edge. Every
  // edge/destination entry is written in the loop, so both buffers skip the
  // zero fill.
  Tensor dlin = Tensor::Uninitialized(g.num_edges, 1);
  Tensor dt_dst = Tensor::Uninitialized(g.num_dst, 1);
  ParallelForBalanced(g.num_dst, g.in_offsets, [&](int64_t lo, int64_t hi) {
    for (int64_t d = lo; d < hi; ++d) {
      const int64_t e0 = g.in_offsets[d], e1 = g.in_offsets[d + 1];
      const float* pdo = dout.row(d);
      float sumterm = 0.0f;
      for (int64_t e = e0; e < e1; ++e) {
        const float* pp = c.p.row(g.nbr_idx[e]);
        float da = 0.0f;
        for (int64_t k = 0; k < out_dim_; ++k) da += pdo[k] * pp[k];
        dlin.at(e, 0) = da;  // stash d_alpha temporarily
        sumterm += c.alpha.at(e, 0) * da;
      }
      float dt = 0.0f;
      for (int64_t e = e0; e < e1; ++e) {
        const float dpre = c.alpha.at(e, 0) * (dlin.at(e, 0) - sumterm);
        const float mask = c.pre.at(e, 0) > 0 ? 1.0f : kLeakySlope;
        dlin.at(e, 0) = dpre * mask;
        dt += dlin.at(e, 0);
      }
      dt_dst.at(d, 0) = dt;
    }
  });

  // Source-major phase: dP and ds_src (race-free via the CSR mirror). This
  // walk has the same random-read shape the scatter schedule fixes for the
  // SpMM primitives (per-source loop, random dout rows), so when the chunk
  // carries a compiled schedule whose heuristic accepts the width, the
  // phase runs the propagation-blocked sweep: (band over destinations,
  // shard over sources) bucket order keeps the dout slice L2-resident,
  // shards own disjoint source rows (conflict-free parallel), and per-run
  // register accumulation touches each dp row once per (row, band). The
  // per-edge alpha/dlin lookups stay indexed through edge_perm — they are
  // 4-byte streams, not the latency-bound part.
  const kernels::EdgeSchedule* ss = g.scatter_sched;
  const bool banded = kernels::ActiveBackend() == kernels::Backend::kBlocked &&
                      ss != nullptr && ss->num_out() == g.num_src &&
                      ss->num_edges() == g.num_edges &&
                      ss->ShouldUse(out_dim_, /*accumulate=*/true);
  // On the banded path every dp row is stored by its first run (or zeroed
  // below for edgeless sources), so the up-front zero fill is skipped; the
  // single-pass loop keeps the zeroed accumulator semantics.
  Tensor dp = banded ? Tensor::Uninitialized(g.num_src, out_dim_)
                     : Tensor(g.num_src, out_dim_);
  Tensor ds_src = Tensor::Uninitialized(g.num_src, 1);
  const float* pasrc = a_src_.data();
  if (banded) {
    const int32_t* zr = ss->zero_rows();
    ParallelForChunked(0, ss->num_zero_rows(), [&](int64_t lo, int64_t hi) {
      for (int64_t z = lo; z < hi; ++z) {
        float* pdp = dp.row(zr[z]);
        for (int64_t k = 0; k < out_dim_; ++k) pdp[k] = 0.0f;
        ds_src.at(zr[z], 0) = 0.0f;
      }
    });
    const int B = ss->num_bands();
    const int64_t* bo = ss->bucket_offsets();
    const int32_t* rnd = ss->rnd_perm();
    const int32_t* op = ss->out_perm();
    const int32_t* ep = ss->edge_perm();
    ParallelForBalanced(
        ss->num_shards(), ss->shard_edge_prefix(), kParallelSerialThreshold,
        [&](int64_t t_lo, int64_t t_hi) {
          float acc[256];  // ShouldUse caps the width at 256
          for (int b = 0; b < B; ++b) {
            for (int64_t t = t_lo; t < t_hi; ++t) {
              const int64_t bid = t * B + b;
              const int64_t e1 = bo[bid + 1];
              int64_t k = bo[bid];
              while (k < e1) {
                const int32_t ov = op[k];
                const int32_t s = ov & kernels::EdgeSchedule::kRowMask;
                const bool first = ov < 0;
                float ds = 0.0f;
                for (int64_t j = 0; j < out_dim_; ++j) acc[j] = 0.0f;
                // Continuation edges of a run are never flagged, so the raw
                // packed value compares equal to the masked row id.
                do {
                  const int32_t d = rnd[k];
                  const int32_t ce = g.src_edge_idx[ep[k]];
                  ds += dlin.at(ce, 0);
                  const float a = c.alpha.at(ce, 0);
                  const float* pdo = dout.row(d);
                  for (int64_t j = 0; j < out_dim_; ++j) acc[j] += a * pdo[j];
                  ++k;
                } while (k < e1 && op[k] == s);
                float* pdp = dp.row(s);
                if (first) {
                  for (int64_t j = 0; j < out_dim_; ++j) pdp[j] = acc[j];
                  ds_src.at(s, 0) = ds;
                } else {
                  for (int64_t j = 0; j < out_dim_; ++j) pdp[j] += acc[j];
                  ds_src.at(s, 0) += ds;
                }
              }
            }
          }
        },
        /*max_threads=*/omp_get_num_procs());
    // The a_src term needs the fully accumulated ds_src, so it folds in
    // after the banded sweep (the single-pass loop fuses it per source).
    ParallelForChunked(0, g.num_src, [&](int64_t lo, int64_t hi) {
      for (int64_t s = lo; s < hi; ++s) {
        const float ds = ds_src.at(s, 0);
        float* pdp = dp.row(s);
        for (int64_t k = 0; k < out_dim_; ++k) pdp[k] += ds * pasrc[k];
      }
    });
  } else {
    ParallelForBalanced(g.num_src, g.src_offsets, [&](int64_t lo, int64_t hi) {
      for (int64_t s = lo; s < hi; ++s) {
        float* pdp = dp.row(s);
        float ds = 0.0f;
        for (int64_t e = g.src_offsets[s]; e < g.src_offsets[s + 1]; ++e) {
          const int32_t d = g.dst_idx[e];
          const int32_t ce = g.src_edge_idx[e];
          ds += dlin.at(ce, 0);
          const float a = c.alpha.at(ce, 0);
          const float* pdo = dout.row(d);
          for (int64_t k = 0; k < out_dim_; ++k) pdp[k] += a * pdo[k];
        }
        ds_src.at(s, 0) = ds;
        for (int64_t k = 0; k < out_dim_; ++k) pdp[k] += ds * pasrc[k];
      }
    });
  }
  // Destination self contribution (self_idx is injective over destinations).
  const float* padst = a_dst_.data();
  ParallelForChunked(0, g.num_dst, [&](int64_t lo, int64_t hi) {
    for (int64_t d = lo; d < hi; ++d) {
      const int32_t s = g.self_idx[d];
      if (s < 0) continue;
      const float dt = dt_dst.at(d, 0);
      float* pdp = dp.row(s);
      for (int64_t k = 0; k < out_dim_; ++k) pdp[k] += dt * padst[k];
    }
  });

  // Attention vector gradients.
  ops::MatmulTransAAccum(ds_src, c.p, &da_src_);
  {
    Tensor p_self = Tensor::Uninitialized(g.num_dst, out_dim_);
    kernels::GatherRows(kernels::ActiveBackend(), g.self_idx, g.num_dst,
                        c.p.data(), out_dim_, p_self.data());
    ops::MatmulTransAAccum(dt_dst, p_self, &da_dst_);
  }

  // Weight gradient and input gradient.
  ops::MatmulTransAAccum(src_h, dp, &dw_);
  Tensor dx = Tensor::Uninitialized(g.num_src, in_dim_);
  ops::MatmulTransB(dp, w_, &dx);
  ops::AddInPlace(dx, d_src);
  return Status::OK();
}

void GatLayer::ForwardCost(const LocalGraph& g, double* flops,
                           double* bytes) const {
  const double e = static_cast<double>(g.num_edges);
  const double ns = static_cast<double>(g.num_src);
  const double nd = static_cast<double>(g.num_dst);
  // The edge pipeline (attention logits, LeakyReLU, neighbor softmax,
  // weighted aggregation) makes several memory-bound passes over O(|E|)
  // state; the per-edge constants below are calibrated to the ~4.5x
  // GAT-vs-GCN kernel-time ratio the paper reports (§7.4).
  *flops = 2.0 * ns * in_dim_ * out_dim_ + 2.0 * ns * out_dim_ +
           e * (12.0 * out_dim_ + 30.0) + 2.0 * nd * out_dim_;
  *bytes = ns * (in_dim_ + out_dim_) * 4.0 + e * (out_dim_ * 36.0 + 32.0) +
           nd * out_dim_ * 8.0;
}

void GatLayer::BackwardCost(const LocalGraph& g, bool cached, double* flops,
                            double* bytes) const {
  (void)cached;  // GAT always recomputes.
  double ff, fb;
  ForwardCost(g, &ff, &fb);
  // Backward roughly mirrors forward twice (dP accumulation + scatter).
  *flops = 2.0 * ff;
  *bytes = 2.0 * fb;
}

}  // namespace hongtu
