/// \file layer.h
/// \brief GNN layer abstraction with three backward modes (Fig. 4).
///
/// A layer computes dst_h = UPDATE(AGGREGATE({src_h}), ...) over a
/// LocalGraph (a chunk's local CSC/CSR view). Backward is offered in the
/// three flavors the paper distinguishes:
///   - BackwardStored   : consume intermediates stored by ForwardStore
///                        (original training, Fig. 4a; in-memory engines);
///   - BackwardRecompute: regenerate intermediates from the neighbor
///                        representations (recomputation, Fig. 4b; the
///                        HongTu fallback for edge-NN models like GAT);
///   - BackwardCached   : regenerate only the UPDATE stage from the cached
///                        AGGREGATE output (the recomputation-caching hybrid,
///                        Fig. 4c; models with arithmetic-only aggregation).
/// `cacheable()` says whether BackwardCached is available (§4.2).

#pragma once

#include <memory>
#include <vector>

#include "hongtu/common/status.h"
#include "hongtu/kernels/schedule.h"
#include "hongtu/partition/two_level.h"
#include "hongtu/tensor/tensor.h"

namespace hongtu {

struct ChunkSchedules;

/// Non-owning chunk view consumed by layer kernels.
struct LocalGraph {
  int64_t num_dst = 0;
  int64_t num_src = 0;
  int64_t num_edges = 0;
  const int64_t* in_offsets = nullptr;   // per dst
  const int32_t* nbr_idx = nullptr;      // per CSC edge -> src index
  const float* in_weights = nullptr;     // per CSC edge
  const int64_t* src_offsets = nullptr;  // per src
  const int32_t* dst_idx = nullptr;      // per CSR edge -> dst index
  const float* src_weights = nullptr;    // per CSR edge
  const int32_t* src_edge_idx = nullptr; // per CSR edge -> CSC edge index
  const int32_t* self_idx = nullptr;     // per dst -> src index of itself

  /// Optional precompiled locality schedules (kernels/schedule.h); when set,
  /// the Gather*/Scatter* primitives below take the propagation-blocked path
  /// whenever its heuristic accepts the call shape. Null = single-pass.
  const kernels::EdgeSchedule* gather_sched = nullptr;   // CSC direction
  const kernels::EdgeSchedule* scatter_sched = nullptr;  // CSR direction

  static LocalGraph FromChunk(const Chunk& c);
  /// FromChunk with the chunk's compiled schedules attached (null ok).
  static LocalGraph FromChunk(const Chunk& c, const ChunkSchedules* s);
};

/// The two per-chunk edge schedules, one per traversal direction, compiled
/// once at engine setup and reused by every layer and epoch.
struct ChunkSchedules {
  kernels::EdgeSchedule gather;   ///< CSC walk (Gather* forward primitives)
  kernels::EdgeSchedule scatter;  ///< CSR mirror (Scatter*Accum backward)

  int64_t bytes() const { return gather.bytes() + scatter.bytes(); }

  /// Compiles both directions for `c`. `p.max_dim` should be the widest
  /// feature dimension any layer will push through the chunk.
  static ChunkSchedules Build(const Chunk& c,
                              const kernels::EdgeScheduleParams& p);

  /// Upper bound on Build(c, p).bytes() — lets engines check capacity
  /// before paying for the compile.
  static int64_t EstimateBytes(const Chunk& c,
                               const kernels::EdgeScheduleParams& p);
};

/// Opaque per-(layer, chunk) stored intermediates.
class LayerCtx {
 public:
  virtual ~LayerCtx() = default;
  /// Bytes held by this context; drives in-memory-engine OOM accounting.
  virtual int64_t bytes() const = 0;
};

class Layer {
 public:
  virtual ~Layer() = default;

  virtual const char* name() const = 0;
  virtual int in_dim() const = 0;
  virtual int out_dim() const = 0;

  /// True when the AGGREGATE output fully determines backward (§4.2): the
  /// engine may cache it in host memory instead of recomputing.
  virtual bool cacheable() const = 0;
  /// True when BackwardCached additionally needs the destinations' own input
  /// representations (SAGE self-term, GIN (1+eps) term).
  virtual bool needs_dst_h() const { return false; }
  /// Column count of the cached AGGREGATE output.
  virtual int agg_dim() const { return in_dim(); }

  virtual std::vector<Tensor*> params() = 0;
  virtual std::vector<Tensor*> grads() = 0;
  void ZeroGrads();

  /// Forward pass. dst_h is resized to (num_dst x out_dim). When `agg_cache`
  /// is non-null and cacheable(), it receives the AGGREGATE output
  /// (num_dst x agg_dim) for host-side caching; it is written in place
  /// (EnsureShape + overwrite), so callers can keep a pre-sized workspace.
  virtual Status Forward(const LocalGraph& g, const Tensor& src_h,
                         Tensor* dst_h, Tensor* agg_cache) = 0;

  /// Forward keeping the full intermediates for BackwardStored.
  ///
  /// Implementations whose stored intermediates include the activated
  /// output hand `*dst_h` out as a non-owning Tensor::View of that stored
  /// copy instead of duplicating it: the view is readable while *ctx lives
  /// and must not be written through.
  virtual Status ForwardStore(const LocalGraph& g, const Tensor& src_h,
                              Tensor* dst_h,
                              std::unique_ptr<LayerCtx>* ctx) = 0;

  /// Backward from stored intermediates. `src_h` are the same neighbor
  /// representations the forward consumed (resident in in-memory engines,
  /// reloaded in the recompute path). `d_src` must be pre-zeroed with shape
  /// (num_src x in_dim); param grads are accumulated.
  virtual Status BackwardStored(const LocalGraph& g, const LayerCtx& ctx,
                                const Tensor& src_h, const Tensor& d_dst,
                                Tensor* d_src) = 0;

  /// Backward from the cached AGGREGATE output (the hybrid path). `dst_h`
  /// is only read when needs_dst_h(); pass an empty tensor otherwise.
  virtual Status BackwardCached(const LocalGraph& g, const Tensor& agg,
                                const Tensor& dst_h, const Tensor& d_dst,
                                Tensor* d_src);

  /// Backward with full recomputation from neighbor representations.
  /// Default: ForwardStore (discarding dst_h) + BackwardStored.
  virtual Status BackwardRecompute(const LocalGraph& g, const Tensor& src_h,
                                   const Tensor& d_dst, Tensor* d_src);

  /// Roofline cost of Forward on `g` (simulated-GPU time accounting).
  virtual void ForwardCost(const LocalGraph& g, double* flops,
                           double* bytes) const = 0;
  /// Cost of the backward pass; `cached` selects the hybrid path.
  virtual void BackwardCost(const LocalGraph& g, bool cached, double* flops,
                            double* bytes) const = 0;
};

// ---- Shared sparse kernels (the cuSparse stand-ins). -----------------------

/// dst[d] = sum_e w_e * src[nbr_idx[e]] (weighted neighbor convolution).
void GatherWeighted(const LocalGraph& g, const Tensor& src, Tensor* dst);
/// dst[d] = sum_e src[nbr_idx[e]] (unweighted sum aggregation).
void GatherSum(const LocalGraph& g, const Tensor& src, Tensor* dst);
/// dst[d] = mean_e src[nbr_idx[e]].
void GatherMean(const LocalGraph& g, const Tensor& src, Tensor* dst);

/// d_src[s] += sum over out-edges w_e * d_dst[dst]; race-free (source-major).
void ScatterWeightedAccum(const LocalGraph& g, const Tensor& d_dst,
                          Tensor* d_src);
/// d_src[s] += sum over out-edges d_dst[dst].
void ScatterSumAccum(const LocalGraph& g, const Tensor& d_dst, Tensor* d_src);
/// d_src[s] += sum over out-edges d_dst[dst] / in_degree(dst).
void ScatterMeanAccum(const LocalGraph& g, const Tensor& d_dst,
                      Tensor* d_src);

}  // namespace hongtu
