/// \file hongtu.h
/// \brief Umbrella header: the full HongTu public API.
///
/// Typical consumers only need this header plus a link against the `hongtu`
/// interface library. See examples/quickstart.cpp for the canonical usage
/// path and README.md for the architecture map.

#pragma once

#include "hongtu/common/format.h"
#include "hongtu/common/logging.h"
#include "hongtu/common/status.h"
#include "hongtu/comm/dedup_plan.h"
#include "hongtu/comm/executor.h"
#include "hongtu/comm/reorganize.h"
#include "hongtu/engine/cpu_cluster_engine.h"
#include "hongtu/engine/engine.h"
#include "hongtu/engine/hongtu_engine.h"
#include "hongtu/engine/inmemory_engine.h"
#include "hongtu/engine/minibatch_engine.h"
#include "hongtu/engine/trainer.h"
#include "hongtu/gnn/loss.h"
#include "hongtu/gnn/model.h"
#include "hongtu/graph/builder.h"
#include "hongtu/graph/datasets.h"
#include "hongtu/graph/generators.h"
#include "hongtu/graph/io.h"
#include "hongtu/graph/stats.h"
#include "hongtu/partition/metis_lite.h"
#include "hongtu/partition/two_level.h"
#include "hongtu/sim/interconnect.h"
#include "hongtu/sim/memory_model.h"
#include "hongtu/tensor/pool.h"
