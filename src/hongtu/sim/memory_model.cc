#include "hongtu/sim/memory_model.h"

#include <cstddef>

namespace hongtu {

namespace {
constexpr int64_t kF32 = 4;
constexpr int64_t kIdBytes = 4;      // VertexId
constexpr int64_t kOffsetBytes = 8;  // EdgeId
}  // namespace

MemoryModelOutput EvaluateMemoryModel(const MemoryModelInput& in) {
  MemoryModelOutput out;
  const int64_t v = in.num_vertices;
  const int64_t e = in.num_edges;
  const int num_layers = static_cast<int>(in.dims.size()) - 1;

  // Topology: CSR + CSC neighbor ids, two offset arrays, CSC edge weights.
  out.topology_bytes = 2 * e * kIdBytes + 2 * (v + 1) * kOffsetBytes +
                       e * static_cast<int64_t>(sizeof(float));

  // Vertex data: representations h^l for l = 0..L and gradients for l = 1..L
  // (the input features need no gradient).
  int64_t rep = 0, grad = 0;
  for (size_t l = 0; l < in.dims.size(); ++l) rep += in.dims[l];
  for (size_t l = 1; l < in.dims.size(); ++l) grad += in.dims[l];
  out.vertex_data_bytes = (rep + grad) * v * kF32;

  // Intermediate data reserved between forward and backward:
  //  - vertex models (GCN/SAGE/GIN): aggregate output (dim_in) and
  //    pre-activation (dim_out) per layer;
  //  - edge models (GAT): additionally O(|E|) attention state per layer
  //    (projected source feature contribution, raw logit, softmax weight).
  int64_t per_vertex = 0;
  for (int l = 0; l < num_layers; ++l) {
    per_vertex += in.dims[l] + in.dims[l + 1];
  }
  out.intermediate_data_bytes = per_vertex * v * kF32;
  if (in.kind == ModelKind::kGat) {
    // Frameworks materialize the concatenated projected endpoint features
    // [W h_u || W h_v] per edge before the attention reduction, plus the
    // logit / softmax weight / gradient scratch — O(|E| * dim) state (the
    // paper's footnote 1: edge models' intermediates "can be much larger").
    int64_t per_edge = 0;
    for (int l = 0; l < num_layers; ++l) {
      per_edge += 2 * in.dims[l + 1] + 3;
    }
    // Plus the projected representation P = H*W kept per layer.
    int64_t proj = 0;
    for (int l = 0; l < num_layers; ++l) proj += in.dims[l + 1];
    out.intermediate_data_bytes += per_edge * e * kF32 + proj * v * kF32;
  }
  return out;
}

int64_t PerLayerVertexBytes(const MemoryModelInput& in, int layer) {
  const int64_t din = in.dims[layer];
  const int64_t dout = in.dims[layer + 1];
  // representation in + out, gradient out, aggregate + pre-activation.
  return (din + 2 * dout + din + dout) * kF32;
}

}  // namespace hongtu
