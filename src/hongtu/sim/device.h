/// \file device.h
/// \brief Simulated GPU devices with capacity-bounded memory accounting.
///
/// This substitutes for the paper's 4x NVIDIA A100 (80 GB) platform. Every
/// buffer the training engines place "on a GPU" is registered against a
/// SimDevice allocator; exceeding the device capacity produces
/// StatusCode::kOutOfMemory, which surfaces in the evaluation tables exactly
/// like the paper's OOM cells. Kernel arithmetic itself executes as real
/// float32 computation on the host CPU (see engine/), so numerics are
/// faithful while memory and communication behaviour follow this model.

#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "hongtu/common/status.h"

namespace hongtu {

/// A single simulated device's memory book-keeping. Lock-free thread-safe:
/// the task-graph executor's layer begin/end nodes allocate and free
/// concurrently from worker threads.
class SimDevice {
 public:
  SimDevice(int id, int64_t capacity_bytes)
      : id_(id), capacity_(capacity_bytes) {}
  SimDevice(const SimDevice& o)
      : id_(o.id_),
        capacity_(o.capacity_),
        used_(o.used_.load()),
        peak_(o.peak_.load()) {}

  int id() const { return id_; }
  int64_t capacity() const { return capacity_; }
  int64_t used() const { return used_.load(); }
  int64_t peak() const { return peak_.load(); }

  /// Reserves `bytes`; fails with OutOfMemory when capacity is exceeded.
  Status Allocate(int64_t bytes, const std::string& tag);

  /// Releases `bytes` previously allocated.
  void Free(int64_t bytes);

  /// Frees everything (end of epoch / engine teardown).
  void Reset() { used_ = 0; }
  /// Clears the peak watermark as well.
  void ResetPeak() { peak_ = used_.load(); }

 private:
  int id_;
  int64_t capacity_;
  std::atomic<int64_t> used_{0};
  std::atomic<int64_t> peak_{0};
};

/// RAII guard for a device allocation.
class DeviceAllocation {
 public:
  DeviceAllocation() = default;
  DeviceAllocation(SimDevice* dev, int64_t bytes) : dev_(dev), bytes_(bytes) {}
  DeviceAllocation(DeviceAllocation&& o) noexcept { *this = std::move(o); }
  DeviceAllocation& operator=(DeviceAllocation&& o) noexcept {
    Release();
    dev_ = o.dev_;
    bytes_ = o.bytes_;
    o.dev_ = nullptr;
    o.bytes_ = 0;
    return *this;
  }
  DeviceAllocation(const DeviceAllocation&) = delete;
  DeviceAllocation& operator=(const DeviceAllocation&) = delete;
  ~DeviceAllocation() { Release(); }

  void Release() {
    if (dev_ != nullptr) dev_->Free(bytes_);
    dev_ = nullptr;
    bytes_ = 0;
  }

  int64_t bytes() const { return bytes_; }

 private:
  SimDevice* dev_ = nullptr;
  int64_t bytes_ = 0;
};

}  // namespace hongtu
