/// \file memory_model.h
/// \brief Analytic memory model for full-graph GNN training (Table 1, §1/§2.3).
///
/// Given graph sizes and a layer-dimension configuration, computes the bytes
/// required for topology, vertex data (representations + gradients of every
/// layer) and intermediate data (aggregate outputs + pre-activations, and
/// edge-wise attention state for GAT-like models). Evaluated at the paper's
/// full-scale dataset parameters, this regenerates Table 1; evaluated at
/// reproduction scale, it drives the in-memory engines' OOM decisions.

#pragma once

#include <cstdint>
#include <vector>

namespace hongtu {

enum class ModelKind { kGcn, kSage, kGin, kGat };

struct MemoryModelInput {
  int64_t num_vertices = 0;
  int64_t num_edges = 0;
  /// Layer dims, length L+1: [feature, hidden..., output]. E.g. the paper's
  /// it-2004 config "256-128-128-64" is {256, 128, 128, 64}.
  std::vector<int64_t> dims;
  ModelKind kind = ModelKind::kGcn;
};

struct MemoryModelOutput {
  int64_t topology_bytes = 0;
  int64_t vertex_data_bytes = 0;        ///< reps + grads, all layers
  int64_t intermediate_data_bytes = 0;  ///< fwd results reserved for backward
  int64_t total() const {
    return topology_bytes + vertex_data_bytes + intermediate_data_bytes;
  }
};

/// Evaluates the model. Deterministic, pure arithmetic.
MemoryModelOutput EvaluateMemoryModel(const MemoryModelInput& in);

/// Per-vertex bytes of one layer's training state (representation + gradient
/// + intermediates) — what a HongTu chunk must fit for a single layer.
int64_t PerLayerVertexBytes(const MemoryModelInput& in, int layer);

}  // namespace hongtu
