#include "hongtu/sim/device.h"

#include <algorithm>

#include "hongtu/common/fault.h"
#include "hongtu/common/format.h"

namespace hongtu {

Status SimDevice::Allocate(int64_t bytes, const std::string& tag) {
  if (bytes < 0) return Status::Invalid("SimDevice::Allocate negative size");
  // Fault site `pool.alloc`: every device buffer-pool reservation (comm
  // buffers, pipeline scratch, per-chunk working sets) funnels through here.
  // A transient fire models momentary allocator pressure — callers retry or
  // degrade (pipelined -> serial) exactly like they do for a real OOM.
  HT_RETURN_IF_ERROR(fault::Poke(fault::Site::kPoolAlloc));
  int64_t cur = used_.load(std::memory_order_relaxed);
  do {
    if (cur + bytes > capacity_) {
      return Status::OutOfMemory(
          "device " + std::to_string(id_) + ": allocation '" + tag + "' of " +
          FormatBytes(static_cast<double>(bytes)) + " exceeds capacity " +
          FormatBytes(static_cast<double>(capacity_)) + " (used " +
          FormatBytes(static_cast<double>(cur)) + ")");
    }
  } while (!used_.compare_exchange_weak(cur, cur + bytes));
  const int64_t now = cur + bytes;
  int64_t p = peak_.load(std::memory_order_relaxed);
  while (p < now && !peak_.compare_exchange_weak(p, now)) {
  }
  return Status::OK();
}

void SimDevice::Free(int64_t bytes) {
  int64_t cur = used_.load(std::memory_order_relaxed);
  while (!used_.compare_exchange_weak(cur, std::max<int64_t>(0, cur - bytes))) {
  }
}

}  // namespace hongtu
