#include "hongtu/sim/device.h"

#include <algorithm>

#include "hongtu/common/fault.h"
#include "hongtu/common/format.h"

namespace hongtu {

Status SimDevice::Allocate(int64_t bytes, const std::string& tag) {
  if (bytes < 0) return Status::Invalid("SimDevice::Allocate negative size");
  // Fault site `pool.alloc`: every device buffer-pool reservation (comm
  // buffers, pipeline scratch, per-chunk working sets) funnels through here.
  // A transient fire models momentary allocator pressure — callers retry or
  // degrade (pipelined -> serial) exactly like they do for a real OOM.
  HT_RETURN_IF_ERROR(fault::Poke(fault::Site::kPoolAlloc));
  if (used_ + bytes > capacity_) {
    return Status::OutOfMemory(
        "device " + std::to_string(id_) + ": allocation '" + tag + "' of " +
        FormatBytes(static_cast<double>(bytes)) + " exceeds capacity " +
        FormatBytes(static_cast<double>(capacity_)) + " (used " +
        FormatBytes(static_cast<double>(used_)) + ")");
  }
  used_ += bytes;
  peak_ = std::max(peak_, used_);
  return Status::OK();
}

void SimDevice::Free(int64_t bytes) { used_ = std::max<int64_t>(0, used_ - bytes); }

}  // namespace hongtu
