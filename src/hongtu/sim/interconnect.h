/// \file interconnect.h
/// \brief Interconnect throughput model and per-component time accounting.
///
/// Implements the cost model of §5.3 (Eq. 4): transferred vertex data is
/// split across three link classes — host<->GPU (T_hd, PCIe 4.0), GPU<->GPU
/// (T_dd, NVLink 3.0) and in-place intra-GPU reuse (T_ru, HBM) — plus a GPU
/// compute roofline and host-side gradient accumulation, matching the
/// {GPU, H2D, D2D, CPU} breakdown of Figure 9.

#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "hongtu/sim/device.h"
#include "hongtu/tensor/pool.h"

namespace hongtu {

/// Environment-specific throughputs (defaults: the paper's 4xA100 server).
struct InterconnectParams {
  double t_hd = 32e9;    ///< host<->device B/s (PCIe 4.0 x16, local socket)
  /// Host access that crosses the CPU socket interconnect (QPI, Fig. 1):
  /// baseline per-chunk loading touches vertex data homed on the remote
  /// socket; deduplicated communication always loads via the owner GPU's
  /// local socket (§7.3).
  double t_hd_remote = 12e9;
  double t_dd = 200e9;   ///< device<->device B/s (4x NVLink 3.0)
  double t_ru = 1400e9;  ///< in-place reuse B/s (effective HBM2e)
  double gpu_flops = 19.5e12 * 0.35;  ///< A100 FP32 peak x efficiency
  double gpu_mem_bw = 1555e9 * 0.55;  ///< HBM stream bandwidth x efficiency
  double cpu_accum_bw = 50e9;         ///< host-side gradient accumulation B/s
  /// Fixed per-kernel launch overhead. The default is deliberately small:
  /// reproduction-scale data volumes are ~500x below paper scale, so real
  /// microsecond-class launch costs would be relatively inflated by the
  /// same factor and distort per-table shapes.
  double kernel_launch_s = 1e-6;
  /// Fixed latency per issued transfer (PCIe/NVLink round-trip setup).
  double xfer_latency_s = 1e-6;
};

/// Wall-clock attribution matching Figure 9's stacked bars.
///
/// The component fields are *busy* seconds: how long each resource class was
/// occupied. Under the serial chunk executor the resources run one after
/// another, so wall time is simply their sum. Under the pipelined executor
/// the communication lanes run concurrently with compute, and summing the
/// components would double-count the hidden seconds — `overlapped` records
/// exactly that hidden amount, so `total()` stays the critical-path wall
/// time in both modes while the stacked components remain comparable.
struct TimeBreakdown {
  double gpu = 0;  ///< simulated-GPU kernel time
  double h2d = 0;  ///< host<->device transfers (both directions, PCIe)
  double d2d = 0;  ///< inter-GPU transfers (NVLink)
  double cpu = 0;  ///< host-side gradient accumulation / loss
  double ru = 0;   ///< in-place reuse (usually negligible)
  /// Busy seconds hidden behind other lanes by pipelined overlap (0 when the
  /// serial executor ran).
  double overlapped = 0;

  /// Sum of busy seconds, ignoring overlap (the Fig. 9 stacked bars).
  double busy() const { return gpu + h2d + d2d + cpu + ru; }
  /// Critical-path wall time: busy seconds minus what overlap hid.
  double total() const { return busy() - overlapped; }
  TimeBreakdown& operator+=(const TimeBreakdown& o);
  /// Component-wise max; used to merge concurrent per-device timelines.
  static TimeBreakdown Max(const TimeBreakdown& a, const TimeBreakdown& b);
};

/// Byte counters per link class (for the communication-volume tables).
struct ByteCounters {
  int64_t h2d = 0;  ///< host->device + device->host bytes
  int64_t d2d = 0;
  int64_t ru = 0;   ///< bytes whose transfer was avoided by in-place reuse
  int64_t cpu_accum = 0;

  ByteCounters& operator+=(const ByteCounters& o);
};

/// The simulated multi-GPU platform: m devices + metered links.
///
/// Engines call the Add* methods around every simulated transfer/kernel;
/// per-device timelines are kept separately and merged with max() per
/// synchronization phase, modeling devices running concurrently.
///
/// All metering methods are thread-safe: the pipelined chunk executor calls
/// them from its stage worker threads. Inside an overlap region (see
/// BeginOverlap) each stage thread binds itself to a *lane*; phases
/// synchronized on that thread accumulate into the lane's running total,
/// and EndOverlap charges the region at the slowest lane (the pipeline
/// critical path), recording the rest as `overlapped` seconds.
class SimPlatform {
 public:
  SimPlatform(int num_devices, int64_t device_capacity_bytes,
              InterconnectParams params = {});

  int num_devices() const { return static_cast<int>(devices_.size()); }
  SimDevice& device(int i) { return devices_[i]; }
  const SimDevice& device(int i) const { return devices_[i]; }
  const InterconnectParams& params() const { return params_; }

  /// Host<->device transfer of `bytes` attributed to device `dev`.
  void AddH2D(int dev, int64_t bytes);
  /// Host<->device transfer crossing the CPU socket boundary (QPI rate).
  void AddH2DRemote(int dev, int64_t bytes);
  /// Device<->device transfer attributed to the *initiating* device.
  void AddD2D(int dev, int64_t bytes);
  /// In-place reuse of `bytes` on device `dev` (time at T_ru).
  void AddReuse(int dev, int64_t bytes);
  /// GPU kernel: roofline max(flops / F_peak, bytes / BW).
  void AddGpuCompute(int dev, double flops, double bytes);
  /// Host-side accumulation over `bytes` of gradients.
  void AddCpuAccum(int64_t bytes);
  /// Host-side compute expressed directly in seconds (loss, sampling, ...).
  void AddCpuSeconds(double secs);

  /// Ends a synchronization phase: folds max-over-devices of the per-device
  /// deltas into the epoch total and clears the deltas (Algorithm 2/3 end
  /// with synchronize(); this models that barrier). Inside an overlap
  /// region the phase is folded into the calling thread's lane instead.
  void Synchronize();

  /// Starts an overlap region with `num_lanes` concurrent pipeline lanes.
  /// Until EndOverlap, phases fold into per-lane totals keyed by the
  /// calling thread's lane (SetLane).
  void BeginOverlap(int num_lanes);
  /// Ends the overlap region: the region's wall time is the slowest lane's
  /// busy total; the sum over the other lanes is added to `overlapped`.
  void EndOverlap();
  /// Ends the overlap region at an explicitly modeled wall time (e.g. the
  /// in-order stage recurrence the pipelined executor replays over its
  /// per-item lane costs — see RunPipelinedLayer). The charge is clamped
  /// between the slowest lane (no model may hide a lane's own busy time)
  /// and the busy sum (no model may beat zero overlap).
  void EndOverlap(double modeled_wall_seconds);
  /// Binds the calling thread to a lane (thread-local; 0 by default).
  static void SetLane(int lane);
  /// Busy seconds accumulated by lane `lane` so far inside the current
  /// overlap region (drains the lane's pending phase first). The pipelined
  /// executor samples this around an item's stage call to meter that item.
  double LaneBusySeconds(int lane);

  // ---- Task-region metering: the 3 fixed lanes generalized to N concurrent
  // nodes for the task-graph executor. Each graph node binds its thread to
  // its node id (SetTask) and meters as usual; per-node busy seconds come
  // back through TaskBusySeconds, the executor's deterministic list-schedule
  // turns them into a modeled wall time, and EndTaskRegion charges the
  // region at that wall, moving the hidden seconds into `overlapped` exactly
  // like EndOverlap does for lanes.

  /// Starts a task region. Until EndTaskRegion, phases fold into per-task
  /// totals keyed by the calling thread's task id (SetTask; id -1 is the
  /// host serial context and is added to the region wall, not overlapped).
  void BeginTaskRegion();
  /// Ends the task region with the modeled wall seconds of the concurrent
  /// nodes (e.g. TaskGraph::ScheduleSeconds over the per-node busy times).
  void EndTaskRegion(double modeled_wall_seconds);
  /// Binds the calling thread to a task id (thread-local; -1 = host).
  static void SetTask(int task);
  /// Busy seconds accumulated by task `task` so far (drains its pending
  /// phase first). 0 for tasks that never metered anything.
  double TaskBusySeconds(int task);

  /// Epoch totals since the last ResetEpoch (call Synchronize() first).
  const TimeBreakdown& time() const { return total_time_; }
  const ByteCounters& bytes() const { return total_bytes_; }

  /// Max peak memory across devices since last ResetPeaks.
  int64_t MaxDevicePeak() const;
  /// Sum of peak memory across devices.
  int64_t SumDevicePeaks() const;

  // ---- Host tensor-pool metering (tensor/pool.h). ResetEpoch snapshots the
  // process-wide pool counters; the accessors report the deltas since, so an
  // engine can prove its epoch ran without heap allocations.

  /// Heap allocations (pool misses) for tensor storage since ResetEpoch.
  int64_t HostAllocCount() const;
  /// Pool free-list hits since ResetEpoch.
  int64_t HostPoolHits() const;
  /// Peak live host tensor bytes observed since ResetEpoch.
  int64_t HostPeakBytes() const;

  /// Registers bytes held by precompiled edge schedules (kernels/schedule.h)
  /// — a one-time preprocessing cost, charged when an engine compiles its
  /// schedules and never reset by ResetEpoch. The caller separately accounts
  /// the same bytes against the owning device's capacity.
  void AddScheduleBytes(int64_t bytes);
  /// Total bytes registered through AddScheduleBytes.
  int64_t ScheduleBytes() const;

  void ResetEpoch();
  void ResetPeaks();

 private:
  /// Per-lane accumulation context: per-device pending deltas for the
  /// current phase, host-side pending, and the lane's folded total.
  struct Lane {
    std::vector<TimeBreakdown> pending;  ///< per-device, current phase
    TimeBreakdown host_pending;
    TimeBreakdown total;
  };

  /// The lane the calling thread writes to (clamped to the region size);
  /// outside an overlap region always lane 0.
  Lane& CurrentLaneLocked();
  /// Max-over-devices + host pending of `lane`; clears the pendings.
  static TimeBreakdown DrainPhaseLocked(Lane* lane);

  std::vector<SimDevice> devices_;
  InterconnectParams params_;
  mutable std::mutex mu_;
  std::vector<Lane> lanes_;  ///< size 1 outside overlap regions
  bool overlap_active_ = false;
  /// Per-task contexts of the active task region (created on first meter).
  std::unordered_map<int, Lane> tasks_;
  bool task_region_active_ = false;
  TimeBreakdown total_time_;
  ByteCounters total_bytes_;
  PoolStats pool_epoch_base_;  ///< pool counters at the last ResetEpoch
  int64_t schedule_bytes_ = 0;  ///< one-time edge-schedule storage
};

}  // namespace hongtu
