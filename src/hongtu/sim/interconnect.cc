#include "hongtu/sim/interconnect.h"

#include <algorithm>

namespace hongtu {

namespace {
/// Lane binding for the calling thread; see SimPlatform::SetLane.
thread_local int t_lane = 0;
/// Task binding for the calling thread; see SimPlatform::SetTask.
thread_local int t_task = -1;
}  // namespace

TimeBreakdown& TimeBreakdown::operator+=(const TimeBreakdown& o) {
  gpu += o.gpu;
  h2d += o.h2d;
  d2d += o.d2d;
  cpu += o.cpu;
  ru += o.ru;
  overlapped += o.overlapped;
  return *this;
}

TimeBreakdown TimeBreakdown::Max(const TimeBreakdown& a,
                                 const TimeBreakdown& b) {
  TimeBreakdown r;
  r.gpu = std::max(a.gpu, b.gpu);
  r.h2d = std::max(a.h2d, b.h2d);
  r.d2d = std::max(a.d2d, b.d2d);
  r.cpu = std::max(a.cpu, b.cpu);
  r.ru = std::max(a.ru, b.ru);
  r.overlapped = std::max(a.overlapped, b.overlapped);
  return r;
}

ByteCounters& ByteCounters::operator+=(const ByteCounters& o) {
  h2d += o.h2d;
  d2d += o.d2d;
  ru += o.ru;
  cpu_accum += o.cpu_accum;
  return *this;
}

SimPlatform::SimPlatform(int num_devices, int64_t device_capacity_bytes,
                         InterconnectParams params)
    : params_(params) {
  devices_.reserve(static_cast<size_t>(num_devices));
  for (int i = 0; i < num_devices; ++i) {
    devices_.emplace_back(i, device_capacity_bytes);
  }
  lanes_.resize(1);
  lanes_[0].pending.resize(static_cast<size_t>(num_devices));
}

SimPlatform::Lane& SimPlatform::CurrentLaneLocked() {
  if (task_region_active_) {
    Lane& lane = tasks_[t_task];
    if (lane.pending.size() != devices_.size()) {
      lane.pending.resize(devices_.size());
    }
    return lane;
  }
  if (!overlap_active_) return lanes_[0];
  const int lane = std::min(std::max(t_lane, 0),
                            static_cast<int>(lanes_.size()) - 1);
  return lanes_[static_cast<size_t>(lane)];
}

TimeBreakdown SimPlatform::DrainPhaseLocked(Lane* lane) {
  TimeBreakdown phase;
  for (auto& p : lane->pending) {
    phase = TimeBreakdown::Max(phase, p);
    p = TimeBreakdown();
  }
  phase += lane->host_pending;
  lane->host_pending = TimeBreakdown();
  return phase;
}

void SimPlatform::AddH2D(int dev, int64_t bytes) {
  if (bytes <= 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  CurrentLaneLocked().pending[dev].h2d +=
      static_cast<double>(bytes) / params_.t_hd + params_.xfer_latency_s;
  total_bytes_.h2d += bytes;
}

void SimPlatform::AddH2DRemote(int dev, int64_t bytes) {
  if (bytes <= 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  CurrentLaneLocked().pending[dev].h2d +=
      static_cast<double>(bytes) / params_.t_hd_remote +
      params_.xfer_latency_s;
  total_bytes_.h2d += bytes;
}

void SimPlatform::AddD2D(int dev, int64_t bytes) {
  if (bytes <= 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  CurrentLaneLocked().pending[dev].d2d +=
      static_cast<double>(bytes) / params_.t_dd + params_.xfer_latency_s;
  total_bytes_.d2d += bytes;
}

void SimPlatform::AddReuse(int dev, int64_t bytes) {
  if (bytes <= 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  CurrentLaneLocked().pending[dev].ru +=
      static_cast<double>(bytes) / params_.t_ru;
  total_bytes_.ru += bytes;
}

void SimPlatform::AddGpuCompute(int dev, double flops, double bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  CurrentLaneLocked().pending[dev].gpu +=
      std::max(flops / params_.gpu_flops, bytes / params_.gpu_mem_bw) +
      params_.kernel_launch_s;
}

void SimPlatform::AddCpuAccum(int64_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  CurrentLaneLocked().host_pending.cpu +=
      static_cast<double>(bytes) / params_.cpu_accum_bw;
  total_bytes_.cpu_accum += bytes;
}

void SimPlatform::AddCpuSeconds(double secs) {
  std::lock_guard<std::mutex> lock(mu_);
  CurrentLaneLocked().host_pending.cpu += secs;
}

void SimPlatform::Synchronize() {
  std::lock_guard<std::mutex> lock(mu_);
  Lane& lane = CurrentLaneLocked();
  const TimeBreakdown phase = DrainPhaseLocked(&lane);
  if (overlap_active_ || task_region_active_) {
    lane.total += phase;
  } else {
    total_time_ += phase;
  }
}

void SimPlatform::BeginOverlap(int num_lanes) {
  std::lock_guard<std::mutex> lock(mu_);
  // Whatever is pending on the serial lane belongs to the serial timeline.
  total_time_ += DrainPhaseLocked(&lanes_[0]);
  lanes_.assign(static_cast<size_t>(std::max(1, num_lanes)), Lane());
  for (auto& lane : lanes_) lane.pending.resize(devices_.size());
  overlap_active_ = true;
}

void SimPlatform::EndOverlap() { EndOverlap(0.0); }

void SimPlatform::EndOverlap(double modeled_wall_seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  TimeBreakdown region;
  double critical_path = 0.0;
  double lane_sum = 0.0;
  for (auto& lane : lanes_) {
    lane.total += DrainPhaseLocked(&lane);
    region += lane.total;
    critical_path = std::max(critical_path, lane.total.total());
    lane_sum += lane.total.total();
  }
  // The modeled wall may extend the critical path (stage dependencies and
  // the depth window keep the bottleneck lane from running gap-free) but
  // never hide a lane's own busy time, nor exceed fully serial execution.
  critical_path =
      std::min(lane_sum, std::max(critical_path, modeled_wall_seconds));
  // Busy components add in full (the Fig. 9 stacks stay comparable across
  // executors); the seconds hidden behind the slowest lane move into
  // `overlapped` so total() stays the critical path.
  region.overlapped += region.total() - critical_path;
  total_time_ += region;
  lanes_.assign(1, Lane());
  lanes_[0].pending.resize(devices_.size());
  overlap_active_ = false;
}

void SimPlatform::SetLane(int lane) { t_lane = lane; }

double SimPlatform::LaneBusySeconds(int lane) {
  std::lock_guard<std::mutex> lock(mu_);
  if (lane < 0 || lane >= static_cast<int>(lanes_.size())) return 0.0;
  Lane& l = lanes_[static_cast<size_t>(lane)];
  l.total += DrainPhaseLocked(&l);
  return l.total.total();
}

void SimPlatform::BeginTaskRegion() {
  std::lock_guard<std::mutex> lock(mu_);
  // Pending serial work belongs to the serial timeline, as in BeginOverlap.
  total_time_ += DrainPhaseLocked(&lanes_[0]);
  tasks_.clear();
  task_region_active_ = true;
}

void SimPlatform::EndTaskRegion(double modeled_wall_seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  TimeBreakdown region;
  double host_serial = 0.0;
  for (auto& [id, lane] : tasks_) {
    lane.total += DrainPhaseLocked(&lane);
    region += lane.total;
    // The host context (-1) is not a graph node: nothing models its
    // concurrency, so it extends the wall serially.
    if (id < 0) host_serial += lane.total.total();
  }
  // Clamp: the modeled schedule can never beat perfect overlap of the busy
  // seconds actually metered.
  const double wall =
      std::min(region.total(), modeled_wall_seconds + host_serial);
  region.overlapped += region.total() - wall;
  total_time_ += region;
  tasks_.clear();
  task_region_active_ = false;
}

void SimPlatform::SetTask(int task) { t_task = task; }

double SimPlatform::TaskBusySeconds(int task) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tasks_.find(task);
  if (it == tasks_.end()) return 0.0;
  it->second.total += DrainPhaseLocked(&it->second);
  return it->second.total.busy();
}

int64_t SimPlatform::MaxDevicePeak() const {
  int64_t m = 0;
  for (const auto& d : devices_) m = std::max(m, d.peak());
  return m;
}

int64_t SimPlatform::SumDevicePeaks() const {
  int64_t s = 0;
  for (const auto& d : devices_) s += d.peak();
  return s;
}

void SimPlatform::ResetEpoch() {
  Synchronize();
  TensorPool& pool = TensorPool::Global();
  pool.ResetPeak();
  std::lock_guard<std::mutex> lock(mu_);
  total_time_ = TimeBreakdown();
  total_bytes_ = ByteCounters();
  pool_epoch_base_ = pool.stats();
}

int64_t SimPlatform::HostAllocCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return TensorPool::Global().stats().misses - pool_epoch_base_.misses;
}

int64_t SimPlatform::HostPoolHits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return TensorPool::Global().stats().hits - pool_epoch_base_.hits;
}

int64_t SimPlatform::HostPeakBytes() const {
  return TensorPool::Global().stats().peak_live_bytes;
}

void SimPlatform::AddScheduleBytes(int64_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  schedule_bytes_ += bytes;
}

int64_t SimPlatform::ScheduleBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return schedule_bytes_;
}

void SimPlatform::ResetPeaks() {
  for (auto& d : devices_) d.ResetPeak();
}

}  // namespace hongtu
