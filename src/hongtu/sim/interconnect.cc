#include "hongtu/sim/interconnect.h"

#include <algorithm>

namespace hongtu {

TimeBreakdown& TimeBreakdown::operator+=(const TimeBreakdown& o) {
  gpu += o.gpu;
  h2d += o.h2d;
  d2d += o.d2d;
  cpu += o.cpu;
  ru += o.ru;
  return *this;
}

TimeBreakdown TimeBreakdown::Max(const TimeBreakdown& a,
                                 const TimeBreakdown& b) {
  TimeBreakdown r;
  r.gpu = std::max(a.gpu, b.gpu);
  r.h2d = std::max(a.h2d, b.h2d);
  r.d2d = std::max(a.d2d, b.d2d);
  r.cpu = std::max(a.cpu, b.cpu);
  r.ru = std::max(a.ru, b.ru);
  return r;
}

ByteCounters& ByteCounters::operator+=(const ByteCounters& o) {
  h2d += o.h2d;
  d2d += o.d2d;
  ru += o.ru;
  cpu_accum += o.cpu_accum;
  return *this;
}

SimPlatform::SimPlatform(int num_devices, int64_t device_capacity_bytes,
                         InterconnectParams params)
    : params_(params) {
  devices_.reserve(static_cast<size_t>(num_devices));
  for (int i = 0; i < num_devices; ++i) {
    devices_.emplace_back(i, device_capacity_bytes);
  }
  pending_.resize(static_cast<size_t>(num_devices));
}

void SimPlatform::AddH2D(int dev, int64_t bytes) {
  if (bytes <= 0) return;
  pending_[dev].h2d +=
      static_cast<double>(bytes) / params_.t_hd + params_.xfer_latency_s;
  total_bytes_.h2d += bytes;
}

void SimPlatform::AddH2DRemote(int dev, int64_t bytes) {
  if (bytes <= 0) return;
  pending_[dev].h2d += static_cast<double>(bytes) / params_.t_hd_remote +
                       params_.xfer_latency_s;
  total_bytes_.h2d += bytes;
}

void SimPlatform::AddD2D(int dev, int64_t bytes) {
  if (bytes <= 0) return;
  pending_[dev].d2d +=
      static_cast<double>(bytes) / params_.t_dd + params_.xfer_latency_s;
  total_bytes_.d2d += bytes;
}

void SimPlatform::AddReuse(int dev, int64_t bytes) {
  if (bytes <= 0) return;
  pending_[dev].ru += static_cast<double>(bytes) / params_.t_ru;
  total_bytes_.ru += bytes;
}

void SimPlatform::AddGpuCompute(int dev, double flops, double bytes) {
  pending_[dev].gpu +=
      std::max(flops / params_.gpu_flops, bytes / params_.gpu_mem_bw) +
      params_.kernel_launch_s;
}

void SimPlatform::AddCpuAccum(int64_t bytes) {
  host_pending_.cpu += static_cast<double>(bytes) / params_.cpu_accum_bw;
  total_bytes_.cpu_accum += bytes;
}

void SimPlatform::AddCpuSeconds(double secs) { host_pending_.cpu += secs; }

void SimPlatform::Synchronize() {
  TimeBreakdown phase;
  for (auto& p : pending_) {
    phase = TimeBreakdown::Max(phase, p);
    p = TimeBreakdown();
  }
  phase += host_pending_;
  host_pending_ = TimeBreakdown();
  total_time_ += phase;
}

int64_t SimPlatform::MaxDevicePeak() const {
  int64_t m = 0;
  for (const auto& d : devices_) m = std::max(m, d.peak());
  return m;
}

int64_t SimPlatform::SumDevicePeaks() const {
  int64_t s = 0;
  for (const auto& d : devices_) s += d.peak();
  return s;
}

void SimPlatform::ResetEpoch() {
  Synchronize();
  total_time_ = TimeBreakdown();
  total_bytes_ = ByteCounters();
}

void SimPlatform::ResetPeaks() {
  for (auto& d : devices_) d.ResetPeak();
}

}  // namespace hongtu
