/// \file journal.h
/// \brief Crash-atomic write-ahead journal of cluster control-plane
/// decisions, replayed by a restarted coordinator.
///
/// The coordinator journals every decision that must survive its own death:
/// the coordinator term (fencing word), cluster membership (rank, listen
/// address, pid), run starts, per-rank epoch-done reports (the raw report
/// payload, gradients included — fsynced *before* the worker's report is
/// acknowledged, so an acknowledged epoch contribution is never lost), and
/// the applied-epoch / checkpoint pointer after each optimizer step. A
/// restarted coordinator replays the journal to rebuild the run — adopting
/// the in-flight epoch and the still-running workers — without rerunning
/// any completed work.
///
/// On-disk format:
///
///     [u32 magic "HTJL"] [u32 version]
///     repeated: [u32 type] [u64 len] [payload len bytes] [u32 crc]
///
/// where crc is CRC32C over (type || len || payload): a torn length word is
/// caught just like torn payload bytes. Appends are write + fsync (a WAL
/// cannot rename per record); replay stops at the first short or
/// CRC-damaged record, treating everything before it as the durable prefix
/// — exactly the semantics of a crash mid-append. Compaction (after each
/// applied epoch) rewrites the live records through the HTCK discipline:
/// write temp, fsync, rename, fsync directory.
///
/// Fault site `journal.write` pokes once per appended record, before any of
/// its bytes reach the file.

#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "hongtu/common/status.h"

namespace hongtu {
namespace net {

/// Journal record vocabulary. Payloads are wire.h-encoded.
enum class JournalRecordType : uint32_t {
  kTerm = 1,      ///< {u64 term} — this coordinator incarnation's term
  kMember = 2,    ///< {u32 rank, str addr, u64 pid} — (re-)registration
  kMemberDead = 3,///< {u32 rank} — declared dead (respawn/adopt follows)
  kRunStart = 4,  ///< {u64 run, u64 epoch, u32 eval} — before broadcast
  kDoneReport = 5,///< {u64 run, u32 rank, bytes raw kEpochDone payload}
  kApplied = 6,   ///< {u64 epochs_completed, str ckpt_path} — after step+save
};

struct JournalRecord {
  JournalRecordType type = JournalRecordType::kTerm;
  std::string payload;
};

/// Append handle over the journal file. Not thread-safe; the coordinator
/// serializes appends under its run lock.
class ClusterJournal {
 public:
  /// Opens `path` for appending, creating it (with a fresh header) when
  /// missing. An existing file is validated only for its header; damaged
  /// tails are tolerated (the next append writes after the last byte — the
  /// replayer ignores the torn region because every record is CRC-framed
  /// and read strictly in order until the first damage).
  static Result<std::unique_ptr<ClusterJournal>> Open(const std::string& path);

  /// Reads every intact record in order. Stops silently at the first torn
  /// or corrupt record (crash tail). A missing file yields an empty vector;
  /// a damaged header is kDataLoss (the caller falls back to the last
  /// checkpoint).
  static Result<std::vector<JournalRecord>> Replay(const std::string& path);

  ~ClusterJournal();

  /// Appends one CRC32C-framed record and fsyncs. Pokes `journal.write`.
  Status Append(JournalRecordType type, const std::string& payload);

  /// Atomically replaces the journal with exactly `records` (temp + fsync +
  /// rename + directory fsync) and keeps appending to the new file.
  Status Compact(const std::vector<JournalRecord>& records);

  const std::string& path() const { return path_; }

 private:
  ClusterJournal(std::string path, int fd) : path_(std::move(path)), fd_(fd) {}

  std::string path_;
  int fd_ = -1;
};

/// The control-plane state a journal replay reconstructs.
struct JournalState {
  uint64_t term = 0;  ///< highest journaled term
  struct Member {
    std::string addr;
    uint64_t pid = 0;
    bool dead = false;
  };
  std::map<int, Member> members;  ///< last registration per rank wins
  /// Last journaled run start (0 = none). `reports` holds the raw
  /// kEpochDone payloads received for it, keyed by rank.
  uint64_t run = 0;
  int64_t run_epoch = -1;
  bool run_eval = false;
  std::map<int, std::string> reports;
  /// Applied-epoch floor and the checkpoint holding it.
  int64_t epochs_applied = 0;
  std::string ckpt_path;
  /// Highest run id ever journaled — the restarted coordinator's run ids
  /// must start strictly above it (stale-run fencing at the workers).
  uint64_t max_run = 0;
};

/// Folds replayed records into a JournalState. Duplicate registrations and
/// reports are idempotent (last/first writer wins respectively); malformed
/// record payloads are kDataLoss.
Result<JournalState> BuildJournalState(const std::vector<JournalRecord>& recs);

}  // namespace net
}  // namespace hongtu
