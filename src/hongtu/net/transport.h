/// \file transport.h
/// \brief Resilient peer-to-peer RPC transport for the cluster backend.
///
/// Each cluster process owns one `Transport`: a listening socket plus a
/// cache of outbound connections keyed by peer rank. The model is
/// symmetric request/response over persistent stream connections:
///
///  - `Call(rank, type, payload, deadline)` sends a request frame and
///    blocks for the matching response (`seq` echo, kFlagResponse). If the
///    connection dies or the frame is lost, Call reconnects with capped
///    backoff and *resends the whole request* under a fresh seq until the
///    deadline expires — so every handler must be idempotent (the cluster
///    protocol makes them so: fetches are pure reads, pushes are keyed by
///    (run, step, sender) and duplicates overwrite/ack). Deadline expiry
///    surfaces `kUnavailable`, the code `RetryTransient` retries.
///  - Incoming request frames are dispatched to the registered handler on
///    the connection's reader thread; the handler replies through a
///    `ReplyFn` bound to that same connection. Handlers may block (a fetch
///    waits until the requested step is published) — each connection has
///    its own reader thread, so one blocked handler never stalls another
///    peer's traffic.
///  - Liveness: `StartHeartbeatTo(rank)` emits one-way kHeartbeat frames;
///    `WatchPeer(rank)` arms a monitor that invokes the death callback
///    when nothing (heartbeat or any other frame) has arrived from that
///    rank within `peer_timeout_s`, or when an identified connection from
///    it hits EOF (the fast path for a SIGKILLed process). The callback
///    decides what death means — the transport only reports it.
///
/// Integrity failures from the frame layer are answered in-band: a request
/// whose payload fails its CRC gets a kError(kDataLoss) response so the
/// caller's retry loop resends; a broken *header* means stream desync and
/// severs the connection (the reconnect path rebuilds it).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "hongtu/common/status.h"
#include "hongtu/net/frame.h"

namespace hongtu {
namespace net {

class Transport {
 public:
  struct Options {
    int rank = -1;                     ///< this process's rank (kIdent)
    double heartbeat_interval_s = 0.05;
    double peer_timeout_s = 2.0;       ///< heartbeat age declaring death
    double connect_deadline_s = 2.0;   ///< per connect() attempt
    double io_deadline_s = 10.0;       ///< per frame write / response read
  };

  /// Sends a response to the request being handled. `Status` non-OK turns
  /// into a kError frame carrying the code + message.
  using ReplyFn = std::function<void(MsgType type, std::string payload)>;
  using ErrorReplyFn = std::function<void(const Status&)>;

  struct Request {
    Frame frame;
    ReplyFn reply;
    ErrorReplyFn reply_error;
  };

  /// Called on a connection reader thread for every inbound request.
  using Handler = std::function<void(Request&&)>;
  /// Called (once per WatchPeer arm) from the monitor or a reader thread
  /// when a watched peer goes quiet or its connection closes.
  using DeathCallback = std::function<void(int rank, const std::string& why)>;

  explicit Transport(Options opts);
  ~Transport();

  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;

  /// Binds + listens and starts the accept loop. `addr` may use port 0;
  /// `bound_addr()` reports the resolved address.
  Status Listen(const std::string& addr);
  const std::string& bound_addr() const { return bound_addr_; }

  void set_handler(Handler h) { handler_ = std::move(h); }
  void set_death_callback(DeathCallback cb) { on_death_ = std::move(cb); }

  /// Registers/overwrites the dial address for `rank`.
  void SetPeer(int rank, const std::string& addr);
  bool HasPeer(int rank) const;

  /// Request/response with reconnect-and-resend. Returns the response
  /// payload, the decoded Status of a kError response, or kUnavailable on
  /// deadline expiry. `deadline_s` < 0 uses Options::io_deadline_s.
  Result<std::string> Call(int rank, MsgType type, std::string payload,
                           double deadline_s = -1.0);

  /// One-way best-effort send (heartbeats, aborts). Never blocks past the
  /// io deadline; a failure only drops the cached connection.
  Status Notify(int rank, MsgType type, std::string payload);

  /// Starts a background thread heartbeating `rank` every
  /// heartbeat_interval_s until Shutdown.
  void StartHeartbeatTo(int rank);

  /// Arms death detection for `rank` (resets its last-contact clock).
  void WatchPeer(int rank);
  /// Disarms death detection (before an intentional kill or shutdown).
  void UnwatchPeer(int rank);
  /// Seconds since any frame arrived from `rank` (+inf if never).
  double SecondsSinceContact(int rank) const;

  /// Drops any cached connection to `rank` (forces a fresh dial next Call;
  /// used after a respawn replaces the peer's address).
  void DropConnection(int rank);

  /// Coordinator-term fencing: every outbound frame (requests, responses,
  /// heartbeats, kIdent) is stamped with the current term at the single
  /// send choke point, so a receiver can reject commands from a stale
  /// coordinator incarnation. Workers adopt the coordinator's advertised
  /// term; the coordinator bumps it once per restart.
  void set_term(uint64_t term) {
    term_.store(term, std::memory_order_relaxed);
  }
  uint64_t term() const { return term_.load(std::memory_order_relaxed); }

  /// Stops all threads and closes all sockets. Idempotent.
  void Shutdown();

  int rank() const { return opts_.rank; }

 private:
  struct Conn;
  struct PendingCall;

  std::shared_ptr<Conn> EnsureConn(int rank, double deadline_abs);
  void StartReader(const std::shared_ptr<Conn>& conn);
  void ReaderLoop(std::shared_ptr<Conn> conn);
  void RetireConn(const std::shared_ptr<Conn>& conn, const Status& why);
  void MonitorLoop();
  void HeartbeatLoop(int rank);
  void TouchContact(int rank);
  void ReportDeath(int rank, const std::string& why);
  Status SendOnConn(const std::shared_ptr<Conn>& conn, Frame& f);

  Options opts_;
  Handler handler_;
  DeathCallback on_death_;

  int listen_fd_ = -1;
  std::string bound_addr_;
  std::string uds_unlink_path_;  ///< cleaned up on Shutdown
  std::thread accept_thread_;
  std::thread monitor_thread_;
  std::vector<std::thread> heartbeat_threads_;
  std::atomic<bool> stop_{false};
  std::atomic<uint32_t> next_seq_{1};
  std::atomic<uint64_t> term_{0};

  mutable std::mutex mu_;
  std::condition_variable stop_cv_;  ///< wakes sleeper threads on Shutdown
  std::unordered_map<int, std::string> peer_addrs_;
  std::unordered_map<int, std::shared_ptr<Conn>> out_conns_;
  std::vector<std::shared_ptr<Conn>> conns_;  ///< every live conn (join list)
  std::unordered_map<uint32_t, PendingCall*> pending_;
  struct WatchState {
    double last_contact;
    bool armed;
  };
  std::unordered_map<int, WatchState> watched_;
};

}  // namespace net
}  // namespace hongtu
