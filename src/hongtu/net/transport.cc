#include "hongtu/net/transport.h"

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <limits>

#include "hongtu/net/socket.h"
#include "hongtu/net/wire.h"

namespace hongtu {
namespace net {

namespace {
/// Accept poll granularity: bounds Shutdown latency without a racy
/// cross-thread close of the listening fd.
constexpr double kAcceptTickSeconds = 0.25;
constexpr double kMonitorTickSeconds = 0.1;
constexpr double kResendPauseSeconds = 0.01;
constexpr double kDialBackoffBaseSeconds = 0.05;
constexpr double kDialBackoffCapSeconds = 0.5;
}  // namespace

struct Transport::Conn {
  int fd = -1;
  std::atomic<int> peer_rank{-1};  ///< learned from kIdent / frame headers
  bool outbound = false;
  int dial_rank = -1;  ///< outbound only: the rank this conn was dialed for
  std::mutex write_mu;
  std::thread reader;
  std::atomic<bool> dead{false};
  std::atomic<bool> reader_done{false};

  ~Conn() {
    if (fd >= 0) ::close(fd);
  }
};

struct Transport::PendingCall {
  std::condition_variable cv;
  bool done = false;
  Status st = Status::OK();
  Frame resp;
  const Conn* conn = nullptr;
};

Transport::Transport(Options opts) : opts_(std::move(opts)) {}

Transport::~Transport() { Shutdown(); }

Status Transport::Listen(const std::string& addr) {
  std::string bound;
  HT_ASSIGN_OR_RETURN(listen_fd_, ListenOn(addr, &bound));
  bound_addr_ = bound;
  if (bound.rfind("uds:", 0) == 0) uds_unlink_path_ = bound.substr(4);
  accept_thread_ = std::thread([this] {
    while (!stop_.load(std::memory_order_relaxed)) {
      auto r = AcceptOn(listen_fd_, kAcceptTickSeconds);
      if (!r.ok()) continue;  // deadline tick / injected refusal / EINTR
      auto conn = std::make_shared<Conn>();
      conn->fd = r.ValueOrDie();
      conn->outbound = false;
      {
        std::lock_guard<std::mutex> lk(mu_);
        if (stop_.load(std::memory_order_relaxed)) {
          ::close(conn->fd);
          conn->fd = -1;
          return;
        }
        conns_.push_back(conn);
      }
      StartReader(conn);
    }
  });
  monitor_thread_ = std::thread([this] { MonitorLoop(); });
  return Status::OK();
}

void Transport::SetPeer(int rank, const std::string& addr) {
  std::lock_guard<std::mutex> lk(mu_);
  peer_addrs_[rank] = addr;
}

bool Transport::HasPeer(int rank) const {
  std::lock_guard<std::mutex> lk(mu_);
  return peer_addrs_.count(rank) != 0;
}

void Transport::StartReader(const std::shared_ptr<Conn>& conn) {
  conn->reader = std::thread([this, conn] { ReaderLoop(conn); });
}

std::shared_ptr<Transport::Conn> Transport::EnsureConn(int rank,
                                                       double deadline_abs) {
  double backoff = kDialBackoffBaseSeconds;
  for (;;) {
    std::string addr;
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (stop_.load(std::memory_order_relaxed)) return nullptr;
      auto it = out_conns_.find(rank);
      if (it != out_conns_.end() && !it->second->dead.load()) {
        return it->second;
      }
      auto ait = peer_addrs_.find(rank);
      if (ait == peer_addrs_.end()) return nullptr;  // no address: permanent
      addr = ait->second;
    }
    const double left = deadline_abs - MonotonicSeconds();
    if (left <= 0) return nullptr;
    auto fdr = ConnectTo(
        addr, std::min(left, opts_.connect_deadline_s));
    if (fdr.ok()) {
      auto conn = std::make_shared<Conn>();
      conn->fd = fdr.ValueOrDie();
      conn->outbound = true;
      conn->dial_rank = rank;
      conn->peer_rank.store(rank);
      // Identify ourselves so the peer's death detector can attribute this
      // connection (and its eventual EOF) to our rank.
      Frame ident;
      ident.type = MsgType::kIdent;
      ident.src_rank = opts_.rank;
      ident.term = term_.load(std::memory_order_relaxed);
      const Status ws = WriteFrame(conn->fd, ident, opts_.io_deadline_s);
      if (ws.ok()) {
        bool raced = false;
        {
          std::lock_guard<std::mutex> lk(mu_);
          if (stop_.load(std::memory_order_relaxed)) {
            ::close(conn->fd);
            conn->fd = -1;
            return nullptr;
          }
          auto it = out_conns_.find(rank);
          if (it != out_conns_.end() && !it->second->dead.load()) {
            raced = true;  // another caller dialed first; use theirs
          } else {
            out_conns_[rank] = conn;
            conns_.push_back(conn);
          }
        }
        if (raced) {
          ::close(conn->fd);
          conn->fd = -1;
          continue;
        }
        StartReader(conn);
        return conn;
      }
      ::close(conn->fd);
      conn->fd = -1;
    }
    // Peer not up (yet): capped exponential backoff, interruptible.
    {
      std::unique_lock<std::mutex> lk(mu_);
      stop_cv_.wait_for(lk, std::chrono::duration<double>(backoff),
                        [this] { return stop_.load(); });
      if (stop_.load()) return nullptr;
    }
    backoff = std::min(backoff * 2, kDialBackoffCapSeconds);
  }
}

Status Transport::SendOnConn(const std::shared_ptr<Conn>& conn, Frame& f) {
  f.term = term_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lk(conn->write_mu);
  if (conn->dead.load()) return Status::Unavailable("connection retired");
  return WriteFrame(conn->fd, f, opts_.io_deadline_s);
}

void Transport::RetireConn(const std::shared_ptr<Conn>& conn,
                           const Status& why) {
  std::vector<PendingCall*> to_fail;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (conn->dead.exchange(true)) return;
    ::shutdown(conn->fd, SHUT_RDWR);  // wakes the reader's blocking poll
    const int rank = conn->dial_rank;
    if (conn->outbound) {
      auto it = out_conns_.find(rank);
      if (it != out_conns_.end() && it->second == conn) out_conns_.erase(it);
    }
    for (auto& [seq, pc] : pending_) {
      if (pc->conn == conn.get() && !pc->done) to_fail.push_back(pc);
    }
    for (PendingCall* pc : to_fail) {
      pc->done = true;
      pc->st = Status::Unavailable("connection lost: " + why.message());
    }
  }
  for (PendingCall* pc : to_fail) pc->cv.notify_all();
}

void Transport::ReaderLoop(std::shared_ptr<Conn> conn) {
  Status exit_st = Status::OK();
  for (;;) {
    Frame f;
    bool dropped = false;
    Status st = ReadFrame(conn->fd, &f, /*deadline_s=*/-1.0, &dropped);
    if (stop_.load(std::memory_order_relaxed) || conn->dead.load()) break;
    if (st.IsDataLoss()) {
      // Intact header, corrupt payload: answer in-band and stay framed.
      if (f.is_response()) {
        std::vector<PendingCall*> notify;
        {
          std::lock_guard<std::mutex> lk(mu_);
          auto it = pending_.find(f.seq);
          if (it != pending_.end() && !it->second->done) {
            it->second->done = true;
            it->second->st = st;
            notify.push_back(it->second);
          }
        }
        for (PendingCall* pc : notify) pc->cv.notify_all();
      } else {
        Frame err;
        err.type = MsgType::kError;
        err.flags = kFlagResponse;
        err.src_rank = opts_.rank;
        err.seq = f.seq;
        err.payload = EncodeStatusPayload(st);
        (void)SendOnConn(conn, err);
      }
      continue;
    }
    if (!st.ok()) {  // EOF, disconnect, or header desync: sever
      exit_st = st;
      break;
    }
    if (dropped) continue;
    if (f.src_rank >= 0) {
      conn->peer_rank.store(f.src_rank, std::memory_order_relaxed);
      TouchContact(f.src_rank);
    }
    if (f.type == MsgType::kIdent || f.type == MsgType::kHeartbeat) continue;
    if (f.is_response()) {
      std::vector<PendingCall*> notify;
      {
        std::lock_guard<std::mutex> lk(mu_);
        auto it = pending_.find(f.seq);
        if (it != pending_.end() && !it->second->done) {
          it->second->done = true;
          it->second->resp = std::move(f);
          notify.push_back(it->second);
        }
      }
      for (PendingCall* pc : notify) pc->cv.notify_all();
      continue;
    }
    if (!handler_) continue;
    const uint32_t seq = f.seq;
    Request req;
    req.frame = std::move(f);
    req.reply = [this, conn, seq](MsgType type, std::string payload) {
      Frame resp;
      resp.type = type;
      resp.flags = kFlagResponse;
      resp.src_rank = opts_.rank;
      resp.seq = seq;
      resp.payload = std::move(payload);
      const Status ws = SendOnConn(conn, resp);
      if (!ws.ok() && !ws.IsTransient()) RetireConn(conn, ws);
    };
    req.reply_error = [this, conn, seq](const Status& est) {
      Frame resp;
      resp.type = MsgType::kError;
      resp.flags = kFlagResponse;
      resp.src_rank = opts_.rank;
      resp.seq = seq;
      resp.payload = EncodeStatusPayload(est);
      (void)SendOnConn(conn, resp);
    };
    handler_(std::move(req));
  }
  RetireConn(conn, exit_st);
  // Fast-path death: an identified connection from a watched peer hit EOF.
  const int rank = conn->peer_rank.load();
  if (!stop_.load(std::memory_order_relaxed) && rank >= 0) {
    ReportDeath(rank, "connection closed (" +
                          (exit_st.ok() ? std::string("eof")
                                        : exit_st.message()) +
                          ")");
  }
  conn->reader_done.store(true);
}

Result<std::string> Transport::Call(int rank, MsgType type,
                                    std::string payload, double deadline_s) {
  if (deadline_s < 0) deadline_s = opts_.io_deadline_s;
  const double deadline_abs = MonotonicSeconds() + deadline_s;
  const auto deadline_tp =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(deadline_s));
  Status last = Status::Unavailable("peer unreachable");
  for (;;) {
    if (stop_.load()) return Status::Unavailable("transport shutdown");
    if (MonotonicSeconds() >= deadline_abs) {
      return Status::Unavailable(
          "rpc deadline expired calling rank " + std::to_string(rank) +
          " (" + MsgTypeName(type) + "): " + last.message());
    }
    std::shared_ptr<Conn> conn = EnsureConn(rank, deadline_abs);
    if (conn == nullptr) {
      bool known;
      {
        std::lock_guard<std::mutex> lk(mu_);
        known = peer_addrs_.count(rank) != 0;
      }
      if (!known) {
        return Status::Invalid("no address registered for rank " +
                               std::to_string(rank));
      }
      continue;  // deadline check at loop head reports expiry
    }
    const uint32_t seq = next_seq_.fetch_add(1);
    Frame req;
    req.type = type;
    req.src_rank = opts_.rank;
    req.seq = seq;
    req.payload = payload;  // copied: the request may be resent
    PendingCall pc;
    pc.conn = conn.get();
    {
      std::lock_guard<std::mutex> lk(mu_);
      pending_[seq] = &pc;
    }
    auto unregister = [&] {
      std::lock_guard<std::mutex> lk(mu_);
      pending_.erase(seq);
    };
    const Status ws = SendOnConn(conn, req);
    if (!ws.ok()) {
      unregister();
      RetireConn(conn, ws);
      if (!ws.IsTransient()) return ws;
      last = ws;
      std::unique_lock<std::mutex> lk(mu_);
      stop_cv_.wait_for(lk,
                        std::chrono::duration<double>(kResendPauseSeconds));
      continue;
    }
    bool done;
    {
      std::unique_lock<std::mutex> lk(mu_);
      pc.cv.wait_until(lk, deadline_tp, [&] { return pc.done || stop_.load(); });
      done = pc.done;
      pending_.erase(seq);
    }
    if (stop_.load() && !done) {
      return Status::Unavailable("transport shutdown");
    }
    if (!done) {
      // The peer never answered inside the budget: declare the connection
      // suspect so the next caller redials rather than queueing behind it.
      RetireConn(conn, Status::Unavailable("response timed out"));
      return Status::Unavailable(
          "rpc deadline expired calling rank " + std::to_string(rank) +
          " (" + MsgTypeName(type) + "): no response");
    }
    if (!pc.st.ok()) {  // connection died or response payload corrupt
      if (!pc.st.IsTransient()) return pc.st;
      last = pc.st;
      continue;
    }
    if (pc.resp.type == MsgType::kError) {
      Status rs = DecodeStatusPayload(pc.resp.payload);
      if (rs.IsTransient()) {  // e.g. request arrived corrupt: resend
        last = rs;
        std::unique_lock<std::mutex> lk(mu_);
        stop_cv_.wait_for(lk,
                          std::chrono::duration<double>(kResendPauseSeconds));
        continue;
      }
      return rs;
    }
    return std::move(pc.resp.payload);
  }
}

Status Transport::Notify(int rank, MsgType type, std::string payload) {
  const double deadline_abs = MonotonicSeconds() + opts_.connect_deadline_s;
  std::shared_ptr<Conn> conn = EnsureConn(rank, deadline_abs);
  if (conn == nullptr) {
    return Status::Unavailable("notify: rank " + std::to_string(rank) +
                               " unreachable");
  }
  Frame f;
  f.type = type;
  f.src_rank = opts_.rank;
  f.seq = next_seq_.fetch_add(1);
  f.payload = std::move(payload);
  const Status ws = SendOnConn(conn, f);
  if (!ws.ok()) RetireConn(conn, ws);
  return ws;
}

void Transport::StartHeartbeatTo(int rank) {
  std::lock_guard<std::mutex> lk(mu_);
  heartbeat_threads_.emplace_back([this, rank] { HeartbeatLoop(rank); });
}

void Transport::HeartbeatLoop(int rank) {
  while (!stop_.load()) {
    (void)Notify(rank, MsgType::kHeartbeat, "");
    std::unique_lock<std::mutex> lk(mu_);
    stop_cv_.wait_for(
        lk, std::chrono::duration<double>(opts_.heartbeat_interval_s),
        [this] { return stop_.load(); });
  }
}

void Transport::WatchPeer(int rank) {
  std::lock_guard<std::mutex> lk(mu_);
  watched_[rank] = WatchState{MonotonicSeconds(), true};
}

void Transport::UnwatchPeer(int rank) {
  std::lock_guard<std::mutex> lk(mu_);
  watched_.erase(rank);
}

double Transport::SecondsSinceContact(int rank) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = watched_.find(rank);
  if (it == watched_.end()) return std::numeric_limits<double>::infinity();
  return MonotonicSeconds() - it->second.last_contact;
}

void Transport::TouchContact(int rank) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = watched_.find(rank);
  if (it != watched_.end()) it->second.last_contact = MonotonicSeconds();
}

void Transport::ReportDeath(int rank, const std::string& why) {
  DeathCallback cb;
  {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = watched_.find(rank);
    if (it == watched_.end() || !it->second.armed) return;
    it->second.armed = false;  // one report per WatchPeer arm
    cb = on_death_;
  }
  if (cb) cb(rank, why);
}

void Transport::DropConnection(int rank) {
  std::shared_ptr<Conn> conn;
  {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = out_conns_.find(rank);
    if (it != out_conns_.end()) conn = it->second;
  }
  if (conn) RetireConn(conn, Status::Unavailable("connection dropped"));
}

void Transport::MonitorLoop() {
  while (!stop_.load()) {
    std::vector<int> dead_ranks;
    {
      std::unique_lock<std::mutex> lk(mu_);
      stop_cv_.wait_for(lk,
                        std::chrono::duration<double>(kMonitorTickSeconds),
                        [this] { return stop_.load(); });
      if (stop_.load()) return;
      const double now = MonotonicSeconds();
      for (auto& [rank, w] : watched_) {
        if (w.armed && now - w.last_contact > opts_.peer_timeout_s) {
          dead_ranks.push_back(rank);
        }
      }
      // Reap retired connections whose readers have finished.
      for (auto it = conns_.begin(); it != conns_.end();) {
        if ((*it)->reader_done.load() && (*it)->reader.joinable()) {
          (*it)->reader.join();
          it = conns_.erase(it);
        } else {
          ++it;
        }
      }
    }
    for (int rank : dead_ranks) {
      ReportDeath(rank, "heartbeat timeout (> " +
                            std::to_string(opts_.peer_timeout_s) + "s)");
    }
  }
}

void Transport::Shutdown() {
  if (stop_.exchange(true)) {
    // A second caller still waits for thread teardown done by the first.
    if (accept_thread_.joinable()) return;
  }
  std::vector<std::shared_ptr<Conn>> conns;
  std::vector<PendingCall*> to_fail;
  {
    std::lock_guard<std::mutex> lk(mu_);
    conns = conns_;
    for (auto& [seq, pc] : pending_) {
      if (!pc->done) {
        pc->done = true;
        pc->st = Status::Unavailable("transport shutdown");
        to_fail.push_back(pc);
      }
    }
  }
  for (PendingCall* pc : to_fail) pc->cv.notify_all();
  stop_cv_.notify_all();
  for (auto& c : conns) {
    c->dead.store(true);
    ::shutdown(c->fd, SHUT_RDWR);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  if (monitor_thread_.joinable()) monitor_thread_.join();
  for (auto& t : heartbeat_threads_) {
    if (t.joinable()) t.join();
  }
  heartbeat_threads_.clear();
  {
    std::lock_guard<std::mutex> lk(mu_);
    conns = std::move(conns_);
    conns_.clear();
    out_conns_.clear();
  }
  for (auto& c : conns) {
    if (c->reader.joinable()) c->reader.join();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (!uds_unlink_path_.empty()) ::unlink(uds_unlink_path_.c_str());
}

}  // namespace net
}  // namespace hongtu
