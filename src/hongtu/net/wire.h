/// \file wire.h
/// \brief Little-endian payload serialization for cluster RPC messages.
///
/// Frame payloads (net/frame.h) are flat byte strings; this header gives
/// the two sides a matched pair of append-writer and checked-reader so the
/// protocol code in net/cluster.cc never hand-rolls offsets. The reader
/// returns `kDataLoss` on truncation — a short payload that passed its
/// CRC means the *sender* built it wrong, but routing it into the
/// transient family lets the RPC layer retry instead of wedging.

#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "hongtu/common/status.h"

namespace hongtu {
namespace net {

/// Appends fixed-width little-endian fields to a payload string.
class WireWriter {
 public:
  void U32(uint32_t v) {
    char b[4];
    for (int i = 0; i < 4; ++i) b[i] = static_cast<char>(v >> (8 * i));
    buf_.append(b, 4);
  }
  void U64(uint64_t v) {
    char b[8];
    for (int i = 0; i < 8; ++i) b[i] = static_cast<char>(v >> (8 * i));
    buf_.append(b, 8);
  }
  void I64(int64_t v) { U64(static_cast<uint64_t>(v)); }
  void F64(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    U64(bits);
  }
  void Str(const std::string& s) {
    U64(s.size());
    buf_.append(s);
  }
  void Bytes(const void* p, size_t n) {
    buf_.append(static_cast<const char*>(p), n);
  }

  std::string Take() { return std::move(buf_); }
  const std::string& buf() const { return buf_; }

 private:
  std::string buf_;
};

/// Reads the fields back in order; every read checks remaining length.
class WireReader {
 public:
  explicit WireReader(const std::string& payload)
      : p_(reinterpret_cast<const unsigned char*>(payload.data())),
        n_(payload.size()) {}

  Result<uint32_t> U32() {
    HT_RETURN_IF_ERROR(Need(4));
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(p_[off_ + i]) << (8 * i);
    off_ += 4;
    return v;
  }
  Result<uint64_t> U64() {
    HT_RETURN_IF_ERROR(Need(8));
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(p_[off_ + i]) << (8 * i);
    off_ += 8;
    return v;
  }
  Result<int64_t> I64() {
    HT_ASSIGN_OR_RETURN(uint64_t v, U64());
    return static_cast<int64_t>(v);
  }
  Result<double> F64() {
    HT_ASSIGN_OR_RETURN(uint64_t bits, U64());
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  Result<std::string> Str() {
    HT_ASSIGN_OR_RETURN(uint64_t len, U64());
    HT_RETURN_IF_ERROR(Need(len));
    std::string s(reinterpret_cast<const char*>(p_ + off_),
                  static_cast<size_t>(len));
    off_ += static_cast<size_t>(len);
    return s;
  }
  /// Copies `n` raw bytes into `dst`.
  Status Raw(void* dst, size_t n) {
    HT_RETURN_IF_ERROR(Need(n));
    std::memcpy(dst, p_ + off_, n);
    off_ += n;
    return Status::OK();
  }
  /// Borrow a pointer to `n` raw bytes without copying (valid while the
  /// backing payload string lives).
  Result<const unsigned char*> View(size_t n) {
    HT_RETURN_IF_ERROR(Need(n));
    const unsigned char* p = p_ + off_;
    off_ += n;
    return p;
  }

  size_t remaining() const { return n_ - off_; }

 private:
  Status Need(uint64_t n) const {
    if (off_ + n > n_) {
      return Status::DataLoss("truncated wire payload (need " +
                              std::to_string(n) + " bytes, have " +
                              std::to_string(n_ - off_) + ")");
    }
    return Status::OK();
  }

  const unsigned char* p_;
  size_t n_;
  size_t off_ = 0;
};

/// kError response payloads carry a Status: {code u32, message str}.
inline std::string EncodeStatusPayload(const Status& st) {
  WireWriter w;
  w.U32(static_cast<uint32_t>(static_cast<int8_t>(st.code())));
  w.Str(st.message());
  return w.Take();
}

inline Status DecodeStatusPayload(const std::string& payload) {
  WireReader r(payload);
  auto code = r.U32();
  auto msg = r.Str();
  if (!code.ok() || !msg.ok()) {
    return Status::DataLoss("malformed kError payload");
  }
  return Status(static_cast<StatusCode>(code.ValueOrDie()),
                "remote: " + msg.ValueOrDie());
}

}  // namespace net
}  // namespace hongtu
