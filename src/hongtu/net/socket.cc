#include "hongtu/net/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "hongtu/common/fault.h"
#include "hongtu/net/frame.h"

namespace hongtu {
namespace net {

namespace {

Status SetBlocking(int fd, bool blocking) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) {
    return Status::IoError(std::string("fcntl(F_GETFL): ") +
                           std::strerror(errno));
  }
  const int want = blocking ? (flags & ~O_NONBLOCK) : (flags | O_NONBLOCK);
  if (::fcntl(fd, F_SETFL, want) < 0) {
    return Status::IoError(std::string("fcntl(F_SETFL): ") +
                           std::strerror(errno));
  }
  return Status::OK();
}

void TuneStream(int fd, bool uds) {
  if (!uds) {
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }
#ifdef SO_NOSIGPIPE
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_NOSIGPIPE, &one, sizeof(one));
#endif
}

Result<struct sockaddr_in> TcpSockaddr(const Addr& a) {
  struct sockaddr_in sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sin_family = AF_INET;
  sa.sin_port = htons(static_cast<uint16_t>(a.port));
  if (::inet_pton(AF_INET, a.host.c_str(), &sa.sin_addr) != 1) {
    return Status::Invalid("tcp address host must be a dotted IPv4 literal: " +
                           a.host);
  }
  return sa;
}

Result<struct sockaddr_un> UdsSockaddr(const Addr& a) {
  struct sockaddr_un sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sun_family = AF_UNIX;
  if (a.path.size() + 1 > sizeof(sa.sun_path)) {
    return Status::Invalid("uds path too long (" +
                           std::to_string(a.path.size()) + " > " +
                           std::to_string(sizeof(sa.sun_path) - 1) +
                           "): " + a.path);
  }
  std::memcpy(sa.sun_path, a.path.c_str(), a.path.size() + 1);
  return sa;
}

}  // namespace

Result<Addr> ParseAddr(const std::string& addr) {
  Addr a;
  if (addr.rfind("uds:", 0) == 0) {
    a.uds = true;
    a.path = addr.substr(4);
    if (a.path.empty()) return Status::Invalid("empty uds path: " + addr);
    return a;
  }
  if (addr.rfind("tcp:", 0) == 0) {
    const std::string rest = addr.substr(4);
    const size_t colon = rest.rfind(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 >= rest.size()) {
      return Status::Invalid("tcp address needs tcp:host:port: " + addr);
    }
    a.host = rest.substr(0, colon);
    char* end = nullptr;
    const long port = std::strtol(rest.c_str() + colon + 1, &end, 10);
    if (end == nullptr || *end != '\0' || port < 0 || port > 65535) {
      return Status::Invalid("bad tcp port in: " + addr);
    }
    a.port = static_cast<int>(port);
    return a;
  }
  return Status::Invalid("address must start with tcp: or uds: — " + addr);
}

Result<int> ListenOn(const std::string& addr, std::string* bound_addr) {
  HT_ASSIGN_OR_RETURN(Addr a, ParseAddr(addr));
  const int fd = ::socket(a.uds ? AF_UNIX : AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError(std::string("socket(): ") + std::strerror(errno));
  }
  Status st = Status::OK();
  if (a.uds) {
    ::unlink(a.path.c_str());
    auto sar = UdsSockaddr(a);
    if (!sar.ok()) {
      ::close(fd);
      return sar.status();
    }
    const struct sockaddr_un sa = sar.ValueOrDie();
    if (::bind(fd, reinterpret_cast<const struct sockaddr*>(&sa),
               sizeof(sa)) < 0) {
      st = Status::IoError("bind(" + a.path + "): " + std::strerror(errno));
    }
  } else {
    int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    auto sar = TcpSockaddr(a);
    if (!sar.ok()) {
      ::close(fd);
      return sar.status();
    }
    struct sockaddr_in sa = sar.ValueOrDie();
    if (::bind(fd, reinterpret_cast<const struct sockaddr*>(&sa),
               sizeof(sa)) < 0) {
      st = Status::IoError("bind(" + a.host + ":" + std::to_string(a.port) +
                           "): " + std::strerror(errno));
    }
  }
  if (st.ok() && ::listen(fd, 64) < 0) {
    st = Status::IoError(std::string("listen(): ") + std::strerror(errno));
  }
  if (!st.ok()) {
    ::close(fd);
    return st;
  }
  if (bound_addr != nullptr) {
    if (a.uds) {
      *bound_addr = "uds:" + a.path;
    } else {
      struct sockaddr_in sa;
      socklen_t len = sizeof(sa);
      if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&sa), &len) <
          0) {
        ::close(fd);
        return Status::IoError(std::string("getsockname(): ") +
                               std::strerror(errno));
      }
      *bound_addr = "tcp:" + a.host + ":" + std::to_string(ntohs(sa.sin_port));
    }
  }
  return fd;
}

Result<int> ConnectTo(const std::string& addr, double deadline_s) {
  HT_ASSIGN_OR_RETURN(Addr a, ParseAddr(addr));
  const int fd = ::socket(a.uds ? AF_UNIX : AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError(std::string("socket(): ") + std::strerror(errno));
  }
  auto fail = [&](Status st) -> Result<int> {
    ::close(fd);
    return st;
  };
  {
    const Status st = SetBlocking(fd, false);
    if (!st.ok()) return fail(st);
  }
  int rc;
  if (a.uds) {
    auto sar = UdsSockaddr(a);
    if (!sar.ok()) return fail(sar.status());
    const struct sockaddr_un sa = sar.ValueOrDie();
    rc = ::connect(fd, reinterpret_cast<const struct sockaddr*>(&sa),
                   sizeof(sa));
  } else {
    auto sar = TcpSockaddr(a);
    if (!sar.ok()) return fail(sar.status());
    struct sockaddr_in sa = sar.ValueOrDie();
    rc = ::connect(fd, reinterpret_cast<const struct sockaddr*>(&sa),
                   sizeof(sa));
  }
  if (rc < 0 && errno != EINPROGRESS && errno != EAGAIN) {
    // ECONNREFUSED / ENOENT (uds not yet bound) are the "peer not up yet"
    // family — retryable by construction.
    return fail(Status::Unavailable("connect(" + addr +
                                    "): " + std::strerror(errno)));
  }
  if (rc < 0) {
    const double deadline_abs =
        deadline_s < 0 ? -1.0 : MonotonicSeconds() + deadline_s;
    for (;;) {
      struct pollfd pfd;
      pfd.fd = fd;
      pfd.events = POLLOUT;
      pfd.revents = 0;
      int timeout_ms = -1;
      if (deadline_abs >= 0) {
        const double left = deadline_abs - MonotonicSeconds();
        if (left <= 0) {
          return fail(
              Status::Unavailable("connect(" + addr + "): deadline expired"));
        }
        timeout_ms = static_cast<int>(left * 1e3) + 1;
      }
      const int pr = ::poll(&pfd, 1, timeout_ms);
      if (pr < 0) {
        if (errno == EINTR) continue;
        return fail(Status::IoError(std::string("poll(connect): ") +
                                    std::strerror(errno)));
      }
      if (pr == 0) {
        return fail(
            Status::Unavailable("connect(" + addr + "): deadline expired"));
      }
      break;
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) < 0 || err != 0) {
      return fail(Status::Unavailable(
          "connect(" + addr +
          "): " + std::strerror(err != 0 ? err : errno)));
    }
  }
  {
    const Status st = SetBlocking(fd, true);
    if (!st.ok()) return fail(st);
  }
  TuneStream(fd, a.uds);
  return fd;
}

Result<int> AcceptOn(int listen_fd, double deadline_s) {
  const double deadline_abs =
      deadline_s < 0 ? -1.0 : MonotonicSeconds() + deadline_s;
  for (;;) {
    struct pollfd pfd;
    pfd.fd = listen_fd;
    pfd.events = POLLIN;
    pfd.revents = 0;
    int timeout_ms = -1;
    if (deadline_abs >= 0) {
      const double left = deadline_abs - MonotonicSeconds();
      if (left <= 0) return Status::Unavailable("accept deadline expired");
      timeout_ms = static_cast<int>(left * 1e3) + 1;
    }
    const int pr = ::poll(&pfd, 1, timeout_ms);
    if (pr < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("poll(accept): ") +
                             std::strerror(errno));
    }
    if (pr == 0) return Status::Unavailable("accept deadline expired");
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK ||
          errno == ECONNABORTED) {
        continue;
      }
      return Status::IoError(std::string("accept(): ") +
                             std::strerror(errno));
    }
    switch (fault::Check(fault::Site::kNetAccept)) {
      case fault::Kind::kNone:
      case fault::Kind::kKill:
      case fault::Kind::kCorrupt:  // no payload to corrupt here
        break;
      case fault::Kind::kDelay:
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        break;
      case fault::Kind::kTransient:
      case fault::Kind::kDrop:
      case fault::Kind::kDisconnect:
        // Refuse this connection: the peer sees EOF and its reconnect
        // loop takes over.
        ::close(fd);
        continue;
      case fault::Kind::kPermanent:
        ::close(fd);
        return Status::Internal("injected permanent fault at net.accept");
    }
    TuneStream(fd, /*uds=*/false);  // TCP_NODELAY no-ops on uds sockets
    return fd;
  }
}

}  // namespace net
}  // namespace hongtu
