#include "hongtu/net/frame.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "hongtu/common/crc32c.h"
#include "hongtu/common/fault.h"

namespace hongtu {
namespace net {

namespace {

constexpr double kInjectedDelaySeconds = 2e-3;

void PutU16(unsigned char* p, uint16_t v) {
  p[0] = static_cast<unsigned char>(v);
  p[1] = static_cast<unsigned char>(v >> 8);
}
void PutU32(unsigned char* p, uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<unsigned char>(v >> (8 * i));
}
void PutU64(unsigned char* p, uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<unsigned char>(v >> (8 * i));
}
uint16_t GetU16(const unsigned char* p) {
  return static_cast<uint16_t>(p[0] | (p[1] << 8));
}
uint32_t GetU32(const unsigned char* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(p[i]) << (8 * i);
  return v;
}
uint64_t GetU64(const unsigned char* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(p[i]) << (8 * i);
  return v;
}

void EncodeHeader(const FrameHeader& h, unsigned char out[kFrameHeaderBytes]) {
  PutU32(out + 0, h.magic);
  PutU16(out + 4, h.type);
  PutU16(out + 6, h.flags);
  PutU32(out + 8, h.src_rank);
  PutU32(out + 12, h.seq);
  PutU64(out + 16, h.term);
  PutU64(out + 24, h.payload_len);
  PutU32(out + 32, h.payload_crc);
  PutU32(out + 36, Crc32c(out, 36));
}

Status DecodeHeader(const unsigned char in[kFrameHeaderBytes],
                    FrameHeader* h) {
  if (GetU32(in + 36) != Crc32c(in, 36)) {
    return Status::DataLoss("frame header CRC mismatch (stream desync)");
  }
  h->magic = GetU32(in + 0);
  if (h->magic != kFrameMagic) {
    return Status::Invalid("bad frame magic (stream desync)");
  }
  h->type = GetU16(in + 4);
  h->flags = GetU16(in + 6);
  h->src_rank = GetU32(in + 8);
  h->seq = GetU32(in + 12);
  h->term = GetU64(in + 16);
  h->payload_len = GetU64(in + 24);
  h->payload_crc = GetU32(in + 32);
  if (h->payload_len > kMaxPayloadBytes) {
    return Status::Invalid("frame payload length " +
                           std::to_string(h->payload_len) +
                           " exceeds the frame size cap (stream desync)");
  }
  return Status::OK();
}

/// Remaining poll budget in whole milliseconds; -1 = infinite. Returns 0
/// when the deadline already passed (poll returns immediately).
int PollTimeoutMs(double deadline_abs) {
  if (deadline_abs < 0) return -1;
  const double left = deadline_abs - MonotonicSeconds();
  if (left <= 0) return 0;
  const double ms = left * 1e3;
  return ms > 2147483000.0 ? 2147483000 : static_cast<int>(ms) + 1;
}

}  // namespace

const char* MsgTypeName(MsgType t) {
  switch (t) {
    case MsgType::kIdent: return "ident";
    case MsgType::kHeartbeat: return "heartbeat";
    case MsgType::kHello: return "hello";
    case MsgType::kEpoch: return "epoch";
    case MsgType::kEpochDone: return "epoch_done";
    case MsgType::kEval: return "eval";
    case MsgType::kEvalDone: return "eval_done";
    case MsgType::kAbort: return "abort";
    case MsgType::kShutdown: return "shutdown";
    case MsgType::kFetchRows: return "fetch_rows";
    case MsgType::kGradPush: return "grad_push";
    case MsgType::kAck: return "ack";
    case MsgType::kError: return "error";
    case MsgType::kPeerUpdate: return "peer_update";
    case MsgType::kSyncState: return "sync_state";
    case MsgType::kFetchPush: return "fetch_push";
    case MsgType::kAdoptPartition: return "adopt_partition";
    case MsgType::kCoordUpdate: return "coord_update";
  }
  return "?";
}

double MonotonicSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Status WriteFull(int fd, const void* buf, size_t n, double deadline_s) {
  const double deadline_abs =
      deadline_s < 0 ? -1.0 : MonotonicSeconds() + deadline_s;
  const unsigned char* p = static_cast<const unsigned char*>(buf);
  size_t off = 0;
  while (off < n) {
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = POLLOUT;
    pfd.revents = 0;
    const int pr = ::poll(&pfd, 1, PollTimeoutMs(deadline_abs));
    if (pr < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("poll(POLLOUT): ") +
                             std::strerror(errno));
    }
    if (pr == 0) return Status::Unavailable("net send deadline expired");
    if (pfd.revents & (POLLERR | POLLHUP | POLLNVAL)) {
      return Status::Unavailable("net send: connection broken");
    }
    // MSG_NOSIGNAL: a dead peer must surface as EPIPE -> kUnavailable, not
    // a process-wide SIGPIPE.
    const ssize_t w = ::send(fd, p + off, n - off, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      if (errno == EPIPE || errno == ECONNRESET) {
        return Status::Unavailable(std::string("net send: ") +
                                   std::strerror(errno));
      }
      return Status::IoError(std::string("net send: ") + std::strerror(errno));
    }
    off += static_cast<size_t>(w);
  }
  return Status::OK();
}

Status ReadFull(int fd, void* buf, size_t n, double deadline_s) {
  const double deadline_abs =
      deadline_s < 0 ? -1.0 : MonotonicSeconds() + deadline_s;
  unsigned char* p = static_cast<unsigned char*>(buf);
  size_t off = 0;
  while (off < n) {
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = POLLIN;
    pfd.revents = 0;
    const int pr = ::poll(&pfd, 1, PollTimeoutMs(deadline_abs));
    if (pr < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("poll(POLLIN): ") +
                             std::strerror(errno));
    }
    if (pr == 0) return Status::Unavailable("net recv deadline expired");
    const ssize_t r = ::recv(fd, p + off, n - off, 0);
    if (r < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      if (errno == ECONNRESET) {
        return Status::Unavailable("net recv: connection reset");
      }
      return Status::IoError(std::string("net recv: ") + std::strerror(errno));
    }
    if (r == 0) return Status::Unavailable("net recv: peer closed");
    off += static_cast<size_t>(r);
  }
  return Status::OK();
}

Status WriteFrame(int fd, const Frame& f, double deadline_s) {
  std::string payload = f.payload;  // mutable copy for injected corruption
  FrameHeader h;
  h.type = static_cast<uint16_t>(f.type);
  h.flags = f.flags;
  h.src_rank = static_cast<uint32_t>(f.src_rank);
  h.seq = f.seq;
  h.term = f.term;
  h.payload_len = payload.size();
  h.payload_crc = Crc32c(payload.data(), payload.size());

  switch (fault::Check(fault::Site::kNetSend)) {
    case fault::Kind::kNone:
    case fault::Kind::kKill:
      break;
    case fault::Kind::kTransient:
      return Status::Unavailable("injected transient fault at net.send");
    case fault::Kind::kPermanent:
      return Status::Internal("injected permanent fault at net.send");
    case fault::Kind::kDrop:
      // The frame vanishes in flight: report success, write nothing. The
      // peer's deadline (and the caller's retry) is what a real loss
      // exercises.
      return Status::OK();
    case fault::Kind::kDelay:
      std::this_thread::sleep_for(
          std::chrono::duration<double>(kInjectedDelaySeconds));
      break;
    case fault::Kind::kDisconnect:
      ::shutdown(fd, SHUT_RDWR);
      return Status::Unavailable("injected disconnect at net.send");
    case fault::Kind::kCorrupt:
      // Flip a payload bit *after* the CRC was computed: the receiver's
      // integrity word must catch it (empty payloads corrupt the CRC word
      // itself via the header path — flip a header-adjacent payload is
      // impossible, so corrupt the CRC instead).
      if (!payload.empty()) {
        payload[payload.size() / 2] =
            static_cast<char>(payload[payload.size() / 2] ^ 0x40);
      } else {
        h.payload_crc ^= 0xdeadbeefu;
      }
      break;
  }

  unsigned char hdr[kFrameHeaderBytes];
  EncodeHeader(h, hdr);
  HT_RETURN_IF_ERROR(WriteFull(fd, hdr, sizeof(hdr), deadline_s));
  if (!payload.empty()) {
    HT_RETURN_IF_ERROR(
        WriteFull(fd, payload.data(), payload.size(), deadline_s));
  }
  return Status::OK();
}

Status ReadFrame(int fd, Frame* f, double deadline_s, bool* dropped) {
  if (dropped != nullptr) *dropped = false;
  unsigned char hdr[kFrameHeaderBytes];
  HT_RETURN_IF_ERROR(ReadFull(fd, hdr, sizeof(hdr), deadline_s));
  FrameHeader h;
  HT_RETURN_IF_ERROR(DecodeHeader(hdr, &h));
  std::string payload(h.payload_len, '\0');
  if (h.payload_len > 0) {
    HT_RETURN_IF_ERROR(ReadFull(fd, payload.data(), payload.size(),
                                deadline_s));
  }

  bool injected_loss = false;
  switch (fault::Check(fault::Site::kNetRecv)) {
    case fault::Kind::kNone:
    case fault::Kind::kKill:
      break;
    case fault::Kind::kTransient:
    case fault::Kind::kDrop:
      // The frame was consumed off the stream but never happened from the
      // receiver's point of view; the stream stays framed.
      injected_loss = true;
      break;
    case fault::Kind::kDelay:
      std::this_thread::sleep_for(
          std::chrono::duration<double>(kInjectedDelaySeconds));
      break;
    case fault::Kind::kDisconnect:
      ::shutdown(fd, SHUT_RDWR);
      return Status::Unavailable("injected disconnect at net.recv");
    case fault::Kind::kPermanent:
      return Status::Internal("injected permanent fault at net.recv");
    case fault::Kind::kCorrupt:
      if (!payload.empty()) {
        payload[payload.size() / 3] =
            static_cast<char>(payload[payload.size() / 3] ^ 0x08);
      } else {
        h.payload_crc ^= 1u;
      }
      break;
  }

  f->type = static_cast<MsgType>(h.type);
  f->flags = h.flags;
  f->src_rank = static_cast<int>(h.src_rank);
  f->seq = h.seq;
  f->term = h.term;
  if (injected_loss) {
    if (dropped != nullptr) *dropped = true;
    f->payload.clear();
    return Status::OK();
  }
  if (Crc32c(payload.data(), payload.size()) != h.payload_crc) {
    // Header identity is intact (it passed its own CRC), so the caller can
    // answer with a typed error and keep the connection.
    f->payload.clear();
    return Status::DataLoss("frame payload CRC mismatch (type " +
                            std::string(MsgTypeName(f->type)) + ")");
  }
  f->payload = std::move(payload);
  return Status::OK();
}

}  // namespace net
}  // namespace hongtu
