/// \file socket.h
/// \brief Stream-socket plumbing for the cluster transport: address
/// parsing, listen/connect/accept over loopback TCP and Unix-domain
/// sockets.
///
/// Addresses are strings so they travel through environment variables and
/// wire payloads unchanged:
///
///     tcp:127.0.0.1:4817     loopback TCP (port 0 = kernel-assigned;
///                            ListenOn resolves it via getsockname)
///     uds:/tmp/ht.d/w0.sock  Unix-domain stream socket
///
/// Connect is non-blocking + poll so it honors a deadline (a peer that is
/// down fails fast as kUnavailable instead of hanging in the kernel's SYN
/// retries); accepted/connected sockets are handed back in blocking mode
/// with TCP_NODELAY set (RPC traffic is latency-bound small frames
/// interleaved with row blocks — Nagle only hurts).

#pragma once

#include <string>

#include "hongtu/common/status.h"

namespace hongtu {
namespace net {

/// Parsed "tcp:host:port" / "uds:path" address.
struct Addr {
  bool uds = false;
  std::string host;  ///< tcp only
  int port = 0;      ///< tcp only
  std::string path;  ///< uds only
};

Result<Addr> ParseAddr(const std::string& addr);

/// Binds + listens on `addr`. For "tcp:host:0" the kernel picks the port;
/// `*bound_addr` receives the fully-resolved address either way. A uds
/// path is unlinked first (stale socket files from a killed process).
Result<int> ListenOn(const std::string& addr, std::string* bound_addr);

/// Connects to `addr` within `deadline_s` relative seconds (< 0 = default
/// kernel timeout). Refused/unreachable/timeout all surface kUnavailable —
/// the retryable family, so reconnect loops can wrap this directly.
Result<int> ConnectTo(const std::string& addr, double deadline_s);

/// Accepts one connection within `deadline_s` (< 0 = block forever);
/// kUnavailable on deadline. Pokes fault site `net.accept`: transient/drop
/// close the freshly-accepted connection (the peer sees an immediate EOF
/// and retries), delay stalls before returning it.
Result<int> AcceptOn(int listen_fd, double deadline_s);

}  // namespace net
}  // namespace hongtu
