/// \file frame.h
/// \brief Length-prefixed wire frames for the cluster RPC transport.
///
/// Every message between cluster processes is one frame:
///
///     [FrameHeader (40 bytes, CRC32C-protected)] [payload bytes]
///
/// The header carries the message type, the sender's rank, a sequence
/// number matching responses to requests, the sender's coordinator *term*
/// (the fencing word: each coordinator incarnation runs under a strictly
/// larger term, and workers reject commands stamped with a stale one, so a
/// zombie coordinator can never split-brain the run), the payload length,
/// and two CRC32C words: one over the payload (the PR 6 integrity word — payloads
/// are the PR 5 codec-encoded row blocks, so corruption must be *detected*
/// and routed into retry/refetch, never silently consumed) and one over the
/// header itself (a damaged header means the byte stream is unframeable:
/// the connection is severed and rebuilt rather than resynchronized).
///
/// All socket I/O here is poll-based with relative deadlines: a frame that
/// cannot be fully read or written inside its deadline surfaces
/// `kUnavailable`, which is exactly what the `RetryTransient` path treats
/// as retryable. Partial reads/writes and EINTR are looped over — a frame
/// either arrives whole or the connection is declared broken.
///
/// Fault sites `net.send` and `net.recv` (common/fault.h) hook the two
/// entry points with wire-shaped kinds: drop (frame silently lost), delay
/// (stall), corrupt (payload bits flipped *after* the CRC is computed, so
/// the receiver's integrity word catches it), disconnect (socket severed).

#pragma once

#include <cstdint>
#include <string>

#include "hongtu/common/status.h"

namespace hongtu {
namespace net {

/// Cluster message vocabulary (see net/cluster.h for the protocol).
enum class MsgType : uint16_t {
  kIdent = 1,     ///< first frame on every connection: header.src_rank
  kHeartbeat,     ///< one-way liveness beacon (worker -> coordinator)
  kHello,         ///< worker ready: {rank, listen addr, pid}
  kEpoch,         ///< coordinator -> worker: run one training epoch
  kEpochDone,     ///< worker -> coordinator: loss + gradients (or failure)
  kEval,          ///< coordinator -> worker: run one forward-only pass
  kEvalDone,      ///< worker -> coordinator: split correct/total counts
  kAbort,         ///< coordinator -> workers: cancel the named run
  kShutdown,      ///< coordinator -> worker: exit cleanly
  kFetchRows,     ///< worker -> worker: batched FetchPlan group pull
  kGradPush,      ///< worker -> worker: batched gradient group push
  kAck,           ///< generic success response (payload is reply data)
  kError,         ///< response carrying a serialized Status
  // Appended after kError: intra-epoch (step-granular) recovery vocabulary.
  kPeerUpdate,      ///< coordinator -> workers: a rank has a new address
  kSyncState,       ///< recovering worker -> peer: consumed/pushed watermarks
  kFetchPush,       ///< recovering worker -> peer: re-pull a delivered push
  kAdoptPartition,  ///< coordinator -> survivor: host a dead rank's partition
  // Appended after kAdoptPartition: coordinator fault-tolerance vocabulary.
  kCoordUpdate,  ///< restarted coordinator -> worker: {term, new address}
};

const char* MsgTypeName(MsgType t);

constexpr uint32_t kFrameMagic = 0x48544e46u;  // "HTNF"
constexpr uint16_t kFlagResponse = 0x1;        ///< frame answers `seq`

/// Fixed-size wire header. Serialized little-endian, field by field; the
/// final word is CRC32C over the preceding 36 bytes.
struct FrameHeader {
  uint32_t magic = kFrameMagic;
  uint16_t type = 0;
  uint16_t flags = 0;
  uint32_t src_rank = 0;
  uint32_t seq = 0;
  uint64_t term = 0;
  uint64_t payload_len = 0;
  uint32_t payload_crc = 0;
  uint32_t header_crc = 0;
};
constexpr size_t kFrameHeaderBytes = 40;

/// Frames larger than this are rejected as stream desync (no legitimate
/// message approaches it: the largest payloads are per-batch row blocks).
constexpr uint64_t kMaxPayloadBytes = 1ull << 31;

/// One decoded message.
struct Frame {
  MsgType type = MsgType::kAck;
  uint16_t flags = 0;
  int src_rank = -1;
  uint32_t seq = 0;
  /// Coordinator term the sender believes in (0 until one is learned).
  /// Stamped by the transport on send; carried to handlers on receive.
  uint64_t term = 0;
  std::string payload;

  bool is_response() const { return (flags & kFlagResponse) != 0; }
};

/// Monotonic clock in seconds (deadline arithmetic).
double MonotonicSeconds();

/// Writes/reads exactly `n` bytes, looping over partial transfers and
/// EINTR, polling with `deadline_s` relative seconds (< 0 = block forever).
/// Deadline expiry and peer close both return kUnavailable.
Status WriteFull(int fd, const void* buf, size_t n, double deadline_s);
Status ReadFull(int fd, void* buf, size_t n, double deadline_s);

/// Serializes and writes one frame (header CRCs computed here). Pokes fault
/// site `net.send`: drop returns OK without writing (the peer's deadline
/// machinery sees the loss), corrupt flips a payload bit after the CRC so
/// the receiver detects it, disconnect shuts the socket down and returns
/// kUnavailable.
Status WriteFrame(int fd, const Frame& f, double deadline_s);

/// Reads one frame. Pokes fault site `net.recv` once per frame.
///
/// Outcomes:
///  - OK, *dropped = false: `*f` holds an intact frame.
///  - OK, *dropped = true : a frame was consumed but injected as lost
///    (drop/transient kinds); the caller skips it and reads again.
///  - kDataLoss: the header was intact but the payload failed its CRC
///    (real or injected corruption). `f->type/seq/src_rank` are valid, so a
///    server can answer kError(kDataLoss) and the stream stays framed.
///  - kUnavailable: deadline, EOF, or injected disconnect — connection is
///    unusable.
///  - other codes: malformed header (desync); sever the connection.
Status ReadFrame(int fd, Frame* f, double deadline_s, bool* dropped);

}  // namespace net
}  // namespace hongtu
