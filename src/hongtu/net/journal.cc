#include "hongtu/net/journal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "hongtu/common/crc32c.h"
#include "hongtu/common/fault.h"
#include "hongtu/net/wire.h"

namespace hongtu {
namespace net {

namespace {

constexpr uint32_t kJournalMagic = 0x4c4a5448u;  // "HTJL" little-endian
constexpr uint32_t kJournalVersion = 1;

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>(v >> (8 * i)));
  }
}
void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>(v >> (8 * i)));
  }
}
uint32_t GetU32(const unsigned char* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(p[i]) << (8 * i);
  return v;
}
uint64_t GetU64(const unsigned char* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(p[i]) << (8 * i);
  return v;
}

Status WriteAll(int fd, const void* data, size_t n) {
  const char* p = static_cast<const char*>(data);
  while (n > 0) {
    const ssize_t w = ::write(fd, p, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("journal write: ") +
                             std::strerror(errno));
    }
    p += w;
    n -= static_cast<size_t>(w);
  }
  return Status::OK();
}

Status FsyncFd(int fd) {
  if (::fsync(fd) != 0) {
    return Status::IoError(std::string("journal fsync: ") +
                           std::strerror(errno));
  }
  return Status::OK();
}

Status FsyncPath(const std::string& path, bool directory) {
  const int fd = ::open(path.c_str(), directory ? O_RDONLY | O_DIRECTORY
                                                : O_RDONLY);
  if (fd < 0) {
    return Status::IoError("journal fsync open '" + path +
                           "': " + std::strerror(errno));
  }
  const Status st = FsyncFd(fd);
  ::close(fd);
  return st;
}

std::string DirOf(const std::string& path) {
  const size_t slash = path.rfind('/');
  return slash == std::string::npos ? std::string(".") : path.substr(0, slash);
}

/// One framed record: [type][len][payload][crc(type||len||payload)].
std::string FrameRecord(JournalRecordType type, const std::string& payload) {
  std::string rec;
  rec.reserve(16 + payload.size() + 4);
  PutU32(&rec, static_cast<uint32_t>(type));
  PutU64(&rec, payload.size());
  rec.append(payload);
  PutU32(&rec, Crc32c(rec.data(), rec.size()));
  return rec;
}

}  // namespace

Result<std::unique_ptr<ClusterJournal>> ClusterJournal::Open(
    const std::string& path) {
  int fd = ::open(path.c_str(), O_WRONLY | O_APPEND);
  if (fd < 0 && errno == ENOENT) {
    fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_EXCL, 0644);
    if (fd >= 0) {
      std::string hdr;
      PutU32(&hdr, kJournalMagic);
      PutU32(&hdr, kJournalVersion);
      Status st = WriteAll(fd, hdr.data(), hdr.size());
      if (st.ok()) st = FsyncFd(fd);
      if (st.ok()) st = FsyncPath(DirOf(path), /*directory=*/true);
      if (!st.ok()) {
        ::close(fd);
        ::unlink(path.c_str());
        return st;
      }
    }
  }
  if (fd < 0) {
    return Status::IoError("journal open '" + path +
                           "': " + std::strerror(errno));
  }
  return std::unique_ptr<ClusterJournal>(new ClusterJournal(path, fd));
}

ClusterJournal::~ClusterJournal() {
  if (fd_ >= 0) ::close(fd_);
}

Status ClusterJournal::Append(JournalRecordType type,
                              const std::string& payload) {
  HT_RETURN_IF_ERROR(fault::Poke(fault::Site::kJournalWrite));
  if (fd_ < 0) return Status::Internal("journal closed");
  const std::string rec = FrameRecord(type, payload);
  HT_RETURN_IF_ERROR(WriteAll(fd_, rec.data(), rec.size()));
  return FsyncFd(fd_);
}

Status ClusterJournal::Compact(const std::vector<JournalRecord>& records) {
  const std::string tmp = path_ + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IoError("journal compact open '" + tmp +
                           "': " + std::strerror(errno));
  }
  Status st = [&]() -> Status {
    std::string hdr;
    PutU32(&hdr, kJournalMagic);
    PutU32(&hdr, kJournalVersion);
    HT_RETURN_IF_ERROR(WriteAll(fd, hdr.data(), hdr.size()));
    for (const JournalRecord& r : records) {
      const std::string rec = FrameRecord(r.type, r.payload);
      HT_RETURN_IF_ERROR(WriteAll(fd, rec.data(), rec.size()));
    }
    return FsyncFd(fd);
  }();
  ::close(fd);
  if (!st.ok()) {
    ::unlink(tmp.c_str());
    return st;
  }
  if (::rename(tmp.c_str(), path_.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return Status::IoError("journal rename to '" + path_ +
                           "': " + std::strerror(errno));
  }
  HT_RETURN_IF_ERROR(FsyncPath(DirOf(path_), /*directory=*/true));
  // The old fd points at the unlinked inode; reopen the installed file.
  const int nfd = ::open(path_.c_str(), O_WRONLY | O_APPEND);
  if (nfd < 0) {
    return Status::IoError("journal reopen '" + path_ +
                           "': " + std::strerror(errno));
  }
  if (fd_ >= 0) ::close(fd_);
  fd_ = nfd;
  return Status::OK();
}

Result<std::vector<JournalRecord>> ClusterJournal::Replay(
    const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return std::vector<JournalRecord>{};
  std::fseek(f, 0, SEEK_END);
  const long fsize = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  std::vector<unsigned char> image(fsize > 0 ? static_cast<size_t>(fsize) : 0);
  const size_t got =
      image.empty() ? 0 : std::fread(image.data(), 1, image.size(), f);
  std::fclose(f);
  if (got != image.size()) {
    return Status::IoError("journal '" + path + "': short read");
  }
  if (image.size() < 8 || GetU32(image.data()) != kJournalMagic) {
    return Status::DataLoss("journal '" + path + "': bad header");
  }
  if (GetU32(image.data() + 4) != kJournalVersion) {
    return Status::DataLoss("journal '" + path + "': unsupported version");
  }

  std::vector<JournalRecord> out;
  size_t off = 8;
  while (off < image.size()) {
    // Any structural damage from here on is a torn tail: the durable prefix
    // is what a crashed append left behind, so stop without error.
    const size_t avail = image.size() - off;
    if (avail < 16) break;
    const uint32_t type = GetU32(image.data() + off);
    const uint64_t len = GetU64(image.data() + off + 4);
    if (len > avail - 16) break;
    const uint32_t want = GetU32(image.data() + off + 12 + len);
    if (Crc32c(image.data() + off, 12 + len) != want) break;
    JournalRecord rec;
    rec.type = static_cast<JournalRecordType>(type);
    rec.payload.assign(reinterpret_cast<const char*>(image.data() + off + 12),
                       static_cast<size_t>(len));
    out.push_back(std::move(rec));
    off += 16 + len;
  }
  return out;
}

Result<JournalState> BuildJournalState(
    const std::vector<JournalRecord>& recs) {
  JournalState js;
  for (const JournalRecord& r : recs) {
    WireReader rd(r.payload);
    switch (r.type) {
      case JournalRecordType::kTerm: {
        HT_ASSIGN_OR_RETURN(const uint64_t t, rd.U64());
        js.term = std::max(js.term, t);
        break;
      }
      case JournalRecordType::kMember: {
        HT_ASSIGN_OR_RETURN(const uint32_t rank, rd.U32());
        JournalState::Member m;
        HT_ASSIGN_OR_RETURN(m.addr, rd.Str());
        HT_ASSIGN_OR_RETURN(m.pid, rd.U64());
        js.members[static_cast<int>(rank)] = m;  // re-registration: last wins
        break;
      }
      case JournalRecordType::kMemberDead: {
        HT_ASSIGN_OR_RETURN(const uint32_t rank, rd.U32());
        auto it = js.members.find(static_cast<int>(rank));
        if (it != js.members.end()) it->second.dead = true;
        break;
      }
      case JournalRecordType::kRunStart: {
        HT_ASSIGN_OR_RETURN(const uint64_t run, rd.U64());
        HT_ASSIGN_OR_RETURN(const uint64_t epoch, rd.U64());
        HT_ASSIGN_OR_RETURN(const uint32_t eval, rd.U32());
        js.run = run;
        js.run_epoch = static_cast<int64_t>(epoch);
        js.run_eval = eval != 0;
        js.reports.clear();
        js.max_run = std::max(js.max_run, run);
        break;
      }
      case JournalRecordType::kDoneReport: {
        HT_ASSIGN_OR_RETURN(const uint64_t run, rd.U64());
        HT_ASSIGN_OR_RETURN(const uint32_t rank, rd.U32());
        HT_ASSIGN_OR_RETURN(std::string raw, rd.Str());
        js.max_run = std::max(js.max_run, run);
        if (run == js.run) {
          // Duplicate report (coordinator died between fsync and ack, then
          // the worker resent): first writer wins, matching the in-memory
          // `received` dedup guard.
          js.reports.emplace(static_cast<int>(rank), std::move(raw));
        }
        break;
      }
      case JournalRecordType::kApplied: {
        HT_ASSIGN_OR_RETURN(const uint64_t applied, rd.U64());
        HT_ASSIGN_OR_RETURN(js.ckpt_path, rd.Str());
        js.epochs_applied = static_cast<int64_t>(applied);
        // The in-flight run (if it was this epoch's) is settled.
        if (js.run != 0 && js.run_epoch >= 0 &&
            js.run_epoch < js.epochs_applied) {
          js.run = 0;
          js.run_epoch = -1;
          js.reports.clear();
        }
        break;
      }
      default:
        return Status::DataLoss("journal: unknown record type " +
                                std::to_string(static_cast<uint32_t>(r.type)));
    }
  }
  return js;
}

}  // namespace net
}  // namespace hongtu
