/// \file cluster.h
/// \brief Real multi-process CPU-cluster training: coordinator, workers,
/// and the crash-recovery ladder.
///
/// `HONGTU_CLUSTER=tcp|uds` turns the CpuClusterEngine from an analytic
/// model into a real distributed run: the coordinator process forks one
/// worker per partition (re-exec'ing `/proc/self/exe` with
/// `HONGTU_DIST_ROLE=worker`), and the workers train the model over the
/// resilient RPC transport (net/transport.h).
///
/// ## Topology and protocol
///
/// Ranks 0..W-1 are workers; rank W is the coordinator. Every process
/// rebuilds the dataset, the 2-level partition and the dedup plan
/// deterministically from the serialized `ClusterConfig`, so the only
/// things that ever cross the wire are vertex-row payloads, gradients and
/// model parameters:
///
///   - Per epoch the coordinator broadcasts `kEpoch{run, weights}`;
///     workers run the full forward+backward over their own partition's
///     chunks, exchanging transition rows (`kFetchRows`) and gradient
///     pushes (`kGradPush`) peer-to-peer exactly along the owner-grouped
///     FetchPlan arrays the single-process executor uses, and reply
///     `kEpochDone{loss, param grads}`. The coordinator reduces gradients
///     in rank order (deterministic fp32 sum), applies Adam, and saves an
///     HTCK checkpoint.
///   - Step synchronization is data-driven: an owner publishes its
///     transition buffer for step s, serves fetchers, and only overwrites
///     it for step s+1 once every expected fetcher of s was served. Served
///     responses are cached per peer (reconnect-and-replay: a retried
///     request after a lost response replays the identical bytes).
///     Gradient pushes are buffered by (step, sender) and applied in rank
///     order, so accumulation order — and therefore the final weights —
///     is identical across runs.
///
/// ## Failure model and recovery ladder
///
/// Workers heartbeat the coordinator; the coordinator watches them
/// (net/transport.h liveness) and verifies a reported death with waitpid.
/// When a worker dies mid-epoch (SIGKILL, crash, or hang past the peer
/// timeout): the epoch aborts (`kAbort` to survivors, DegradeEvent::
/// kPeerDeath), the coordinator restores model+Adam from the latest
/// checkpoint (DegradeEvent::kEpochRestart), respawns the dead rank
/// (without any fault/kill injection env), and reruns the epoch. Because
/// every epoch is deterministic given its starting weights, the final
/// weights after a kill+recover run are bitwise identical to an unkilled
/// run.

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "hongtu/common/fault.h"
#include "hongtu/common/status.h"
#include "hongtu/engine/checkpoint.h"
#include "hongtu/gnn/model.h"
#include "hongtu/graph/datasets.h"
#include "hongtu/kernels/codec.h"
#include "hongtu/net/transport.h"
#include "hongtu/tensor/adam.h"

namespace hongtu {
namespace net {

// Environment variables of the worker re-exec contract.
inline constexpr const char* kEnvDistRole = "HONGTU_DIST_ROLE";
inline constexpr const char* kEnvDistRank = "HONGTU_DIST_RANK";
inline constexpr const char* kEnvDistCoord = "HONGTU_DIST_COORD";
inline constexpr const char* kEnvDistConfig = "HONGTU_DIST_CONFIG";
/// Failure drill: the worker raises SIGKILL between forward and backward
/// of this (0-based) epoch — a deterministic "kill -9 mid-epoch".
inline constexpr const char* kEnvDistKillEpoch = "HONGTU_DIST_KILL_EPOCH";

/// Everything a worker needs to rebuild the exact training problem. All
/// fields (except the coordinator-side drill knobs) serialize into the
/// HONGTU_DIST_CONFIG environment variable; floating-point values travel
/// as bit patterns so the rebuild is bit-exact.
struct ClusterConfig {
  std::string transport = "uds";  ///< "tcp" (loopback) or "uds"
  int num_workers = 4;            ///< = partitions m; one process each

  std::string dataset;        ///< canonical dataset name
  double dataset_scale = 1.0;
  uint64_t dataset_seed = 42;

  GnnKind model_kind = GnnKind::kGcn;
  std::vector<int> model_dims;  ///< length L+1
  uint64_t model_seed = 1234;

  int chunks_per_partition = 4;
  int dedup_level = 2;  ///< DedupLevel as int; kNone (0) is rejected
  bool reorganize = true;
  uint64_t partition_seed = 7;
  kernels::CommPrecision wire = kernels::CommPrecision::kFp32;

  AdamOptions adam;

  /// Scratch directory for sockets (and checkpoints unless overridden).
  /// Empty: the coordinator mkdtemp()s one under TMPDIR and owns it.
  std::string runtime_dir;
  std::string checkpoint_dir;  ///< empty = runtime_dir

  double heartbeat_interval_s = 0.05;
  double peer_timeout_s = 2.0;
  /// Per-RPC total budget (transport reconnect-and-resend window, and the
  /// RetryTransient total deadline on the worker fetch/push paths).
  double rpc_deadline_s = 10.0;
  double epoch_deadline_s = 300.0;  ///< coordinator watchdog per attempt
  int max_epoch_attempts = 5;

  // ---- Coordinator-side failure drills (not serialized to workers). ------
  int kill_rank = -1;       ///< worker that gets kEnvDistKillEpoch
  int64_t kill_epoch = -1;  ///< epoch it self-SIGKILLs in
  int fault_rank = -1;      ///< worker that gets `worker_fault_spec`
  std::string worker_fault_spec;  ///< HONGTU_FAULT_SPEC for that worker
};

/// Serializes the worker-visible fields for the env contract.
std::string EncodeClusterConfig(const ClusterConfig& cfg);
Result<ClusterConfig> DecodeClusterConfig(const std::string& s);

/// What one distributed epoch returns to the engine layer.
struct ClusterEpochResult {
  double loss = 0.0;
  double train_accuracy = 0.0;
  double wall_seconds = 0.0;
  /// Coordinator degrade events merged with every worker's epoch counters.
  fault::RecoveryCounters recovery;
};

/// The coordinator: owns the authoritative model + Adam state, the worker
/// processes, the checkpoint rotation, and the recovery ladder.
class ClusterCoordinator {
 public:
  /// Validates the config, spawns the workers, waits for every kHello, and
  /// saves the epoch-0 checkpoint (the floor of the restore ladder).
  static Result<std::unique_ptr<ClusterCoordinator>> Start(ClusterConfig cfg);

  ~ClusterCoordinator();

  /// One distributed epoch with recovery: aborts/restores/respawns on a
  /// worker death and retries up to max_epoch_attempts.
  Result<ClusterEpochResult> RunEpoch();

  /// Distributed forward-only accuracy over a split.
  Result<double> Evaluate(SplitRole role);

  GnnModel* model() { return &model_; }
  Adam* adam() { return &adam_; }
  fault::DegradationPolicy* degradation() { return &degrade_; }
  int64_t epochs_completed() const { return epochs_completed_; }
  /// Workers respawned after a detected death (recovery evidence).
  int respawn_count() const { return respawns_; }
  const ClusterConfig& config() const { return cfg_; }

  /// Clean shutdown: kShutdown to every worker, reap, close transport.
  /// Idempotent; also run by the destructor.
  void Shutdown();

 private:
  struct WorkerProc;
  struct RunState;

  ClusterCoordinator() = default;

  Status SpawnWorker(int rank, bool first_spawn);
  Status WaitForHello(int rank, double deadline_s);
  Status EnsureWorkersAlive();
  std::string BuildWeightsPayloadTail();
  Status BroadcastRun(bool eval, uint64_t run, int64_t epoch, SplitRole role);
  Status WaitRunDone(uint64_t run);
  Status AbortAndRestore(uint64_t run, const std::string& why);
  void OnRequest(Transport::Request&& req);
  void OnPeerDeath(int rank, const std::string& why);

  ClusterConfig cfg_;
  GnnModel model_;
  Adam adam_{AdamOptions{}};
  fault::DegradationPolicy degrade_;
  bool owns_runtime_dir_ = false;

  std::unique_ptr<Transport> transport_;
  std::unique_ptr<CheckpointManager> ckpt_;

  std::vector<WorkerProc> workers_;
  std::unique_ptr<RunState> run_;
  uint64_t next_run_ = 1;
  int64_t epochs_completed_ = 0;
  int respawns_ = 0;
  bool shut_down_ = false;
};

/// Worker-role entry point. Call this FIRST in main() of any binary that
/// can host a cluster run (tests, benchmarks, examples): when
/// HONGTU_DIST_ROLE=worker it runs the worker loop and never returns
/// (exits the process); otherwise it returns immediately.
void MaybeRunClusterWorker();

}  // namespace net
}  // namespace hongtu
