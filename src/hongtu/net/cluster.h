/// \file cluster.h
/// \brief Real multi-process CPU-cluster training: coordinator, workers,
/// and the crash-recovery ladder.
///
/// `HONGTU_CLUSTER=tcp|uds` turns the CpuClusterEngine from an analytic
/// model into a real distributed run: the coordinator process forks one
/// worker per partition (re-exec'ing `/proc/self/exe` with
/// `HONGTU_DIST_ROLE=worker`), and the workers train the model over the
/// resilient RPC transport (net/transport.h).
///
/// ## Topology and protocol
///
/// Ranks 0..W-1 are workers; rank W is the coordinator. Every process
/// rebuilds the dataset, the 2-level partition and the dedup plan
/// deterministically from the serialized `ClusterConfig`, so the only
/// things that ever cross the wire are vertex-row payloads, gradients and
/// model parameters:
///
///   - Per epoch the coordinator broadcasts `kEpoch{run, weights}`;
///     workers run the full forward+backward over their own partition's
///     chunks, exchanging transition rows (`kFetchRows`) and gradient
///     pushes (`kGradPush`) peer-to-peer exactly along the owner-grouped
///     FetchPlan arrays the single-process executor uses, and reply
///     `kEpochDone{loss, param grads}`. The coordinator reduces gradients
///     in rank order (deterministic fp32 sum), applies Adam, and saves an
///     HTCK checkpoint.
///   - Step synchronization is data-driven: when an owner publishes its
///     transition buffer for step s it immediately logs the serialized
///     fetch response for every expected fetcher of s, keyed by
///     (step, fetcher), and serves all fetches from that log — never from
///     the live slots. Slot reuse therefore needs no gate, a retried
///     request after a lost response replays the identical bytes, and a
///     replaying peer can be served any step of the epoch. Gradient pushes
///     are buffered by (step, sender) and applied in rank order, so
///     accumulation order — and therefore the final weights — is identical
///     across runs.
///
/// ## Failure model and recovery ladder
///
/// Workers heartbeat the coordinator; the coordinator watches them
/// (net/transport.h liveness) and verifies a reported death with waitpid.
/// When a worker dies mid-epoch (SIGKILL, crash, or hang past the peer
/// timeout), recovery proceeds at the finest rung that applies
/// (`ClusterConfig::recover_mode`):
///
///   1. **Step-granular replay** (`recover_mode = "step"`, the default).
///      The epoch does NOT abort. Survivors keep every fetch response and
///      outbound gradient push they produced this run in per-(step, peer)
///      logs, so the dead rank's entire observable history is replayable.
///      The coordinator respawns the rank, announces it to survivors
///      (`kPeerUpdate`, which also extends their wait deadlines by
///      `recovery_grace_s`), and re-sends `kEpoch` with a recover flag and
///      the *same* run id and epoch-head weights. The respawned worker
///      asks each peer for its push watermark (`kSyncState`: the highest
///      step the peer had already pushed to the dead process), then simply
///      re-executes the epoch from step 0: fetches are re-served
///      bit-identically from the peers' logs, the replayed rank's own
///      re-pushes are dropped by the receivers' applied-step guard, and
///      pushes at or below a peer's watermark are re-pulled from its
///      outbound log via `kFetchPush` (the rest arrive live). Replay cost
///      is bounded by the dead rank's own work — the survivors never
///      rewind. (DegradeEvent::kPeerDeath + kStepRecovery; no
///      kEpochRestart.)
///   2. **Survivor takeover** (`recover_mode = "adopt"`). Same replay
///      contract, but instead of respawning a process the coordinator
///      sends `kAdoptPartition` to a survivor, which instantiates a second
///      rank state in-process (the dataset/partition/plan are shared; all
///      peer requests carry an owner rank so one process can serve many
///      ranks) and replays the dead partition on a separate thread. The
///      dead rank gets a fresh process again at the next epoch.
///   3. **Epoch restart** (`recover_mode = "epoch"` — the PR 8 ladder, and
///      the fallback when a step recovery itself fails or
///      `max_step_recoveries` is exceeded): the epoch aborts (`kAbort`),
///      the coordinator restores model+Adam from the latest checkpoint
///      (DegradeEvent::kEpochRestart), respawns the dead rank, and reruns
///      the epoch.
///
/// Because every epoch is deterministic given its starting weights — and a
/// replayed rank consumes byte-identical fetch responses and re-applies
/// pushes in the same rank order — the final weights after a kill+recover
/// run are bitwise identical to an unkilled run on every rung.
///
/// ## Coordinator fault tolerance (term fencing + write-ahead journal)
///
/// The coordinator is no longer a single point of failure. Every cluster
/// decision that must survive its death — the fencing term, membership
/// (rank, address, pid), run starts, each worker's raw kEpochDone report
/// (fsynced *before* the ack), and the applied-epoch/checkpoint pointer —
/// is appended to a CRC32C-framed write-ahead journal
/// (`<checkpoint_dir>/cluster.journal`, net/journal.h). A successor started
/// with `ClusterConfig::resume` replays it and walks its own rung ladder:
///
///   1. **Park**: workers detect coordinator silence (coordinator→worker
///      heartbeats plus connection EOF), keep serving peer RPCs and keep
///      retrying their pending report, bounded by `coord_lease_s`
///      (`HONGTU_COORD_LEASE_MS`); at lease expiry they exit, so orphans
///      are time-bounded.
///   2. **Re-attach**: the successor bumps the term (strictly above every
///      journaled term), contacts each journaled member (`kCoordUpdate`
///      with the new term + endpoint), and adopts survivors in place;
///      verified-dead members are respawned and replayed into the resumed
///      run exactly like a worker step recovery.
///   3. **Journal replay**: the in-flight run is adopted under its original
///      run id — journaled reports prefill the done slots, live workers
///      finish and deliver to the successor — so completed work is never
///      redone and the result is bitwise identical to an unkilled run.
///   4. **Checkpoint fallback**: a damaged journal degrades to the PR 8
///      floor — restore the latest HTCK checkpoint, fresh workers, rerun
///      the epoch (still bitwise identical, just costlier).
///
/// Fencing: every outbound frame carries the sender's coordinator term
/// (net/frame.h). Workers reject coordinator *commands* whose term is below
/// the highest they have seen with a non-transient error, so a zombie
/// coordinator fences itself out on its first retry. Peer data RPCs are
/// run-gated, not term-gated.

#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "hongtu/common/fault.h"
#include "hongtu/common/status.h"
#include "hongtu/engine/checkpoint.h"
#include "hongtu/gnn/model.h"
#include "hongtu/graph/datasets.h"
#include "hongtu/kernels/codec.h"
#include "hongtu/net/journal.h"
#include "hongtu/net/transport.h"
#include "hongtu/tensor/adam.h"

namespace hongtu {
namespace net {

// Environment variables of the worker re-exec contract.
inline constexpr const char* kEnvDistRole = "HONGTU_DIST_ROLE";
inline constexpr const char* kEnvDistRank = "HONGTU_DIST_RANK";
inline constexpr const char* kEnvDistCoord = "HONGTU_DIST_COORD";
inline constexpr const char* kEnvDistConfig = "HONGTU_DIST_CONFIG";
/// Failure drill: the worker raises SIGKILL between forward and backward
/// of this (0-based) epoch — a deterministic "kill -9 mid-epoch".
inline constexpr const char* kEnvDistKillEpoch = "HONGTU_DIST_KILL_EPOCH";
/// Failure drill: the worker raises SIGKILL the first time it receives a
/// kPeerUpdate naming *another* rank — i.e. deterministically in the middle
/// of someone else's recovery (the double-fault drill).
inline constexpr const char* kEnvDistKillOnRecover = "HONGTU_DIST_KILL_ON_RECOVER";

/// Everything a worker needs to rebuild the exact training problem. All
/// fields (except the coordinator-side drill knobs) serialize into the
/// HONGTU_DIST_CONFIG environment variable; floating-point values travel
/// as bit patterns so the rebuild is bit-exact.
struct ClusterConfig {
  std::string transport = "uds";  ///< "tcp" (loopback) or "uds"
  int num_workers = 4;            ///< = partitions m; one process each

  std::string dataset;        ///< canonical dataset name
  double dataset_scale = 1.0;
  uint64_t dataset_seed = 42;

  GnnKind model_kind = GnnKind::kGcn;
  std::vector<int> model_dims;  ///< length L+1
  uint64_t model_seed = 1234;

  int chunks_per_partition = 4;
  int dedup_level = 2;  ///< DedupLevel as int; kNone (0) is rejected
  bool reorganize = true;
  uint64_t partition_seed = 7;
  kernels::CommPrecision wire = kernels::CommPrecision::kFp32;

  AdamOptions adam;

  /// Scratch directory for sockets (and checkpoints unless overridden).
  /// Empty: the coordinator mkdtemp()s one under TMPDIR and owns it.
  std::string runtime_dir;
  std::string checkpoint_dir;  ///< empty = runtime_dir

  double heartbeat_interval_s = 0.05;
  double peer_timeout_s = 2.0;
  /// Per-RPC total budget (transport reconnect-and-resend window, and the
  /// RetryTransient total deadline on the worker fetch/push paths).
  double rpc_deadline_s = 10.0;
  double epoch_deadline_s = 300.0;  ///< coordinator watchdog per attempt
  int max_epoch_attempts = 5;

  /// Recovery rung for a mid-epoch worker death: "step" (default, replay
  /// just the dead rank), "adopt" (a survivor hosts the dead partition), or
  /// "epoch" (the PR 8 abort-restore-rerun ladder). "step"/"adopt" fall
  /// back to the epoch ladder when replay itself fails.
  std::string recover_mode = "step";
  /// Extra slack added to every survivor-side wait deadline while a peer is
  /// being recovered (kPeerUpdate extends deadlines to now + this).
  double recovery_grace_s = 30.0;
  /// In-epoch recoveries allowed per epoch attempt before falling back to
  /// the epoch-restart ladder (not serialized; coordinator-side only).
  int max_step_recoveries = 8;

  /// Worker-side lease on a silent coordinator: a worker that detects the
  /// coordinator's death parks — keeps serving peer RPCs and retrying its
  /// pending report — and waits this long for a successor before exiting,
  /// so orphaned workers are time-bounded. `HONGTU_COORD_LEASE_MS` in the
  /// coordinator's environment overrides it cluster-wide.
  double coord_lease_s = 30.0;

  // ---- Coordinator restart (not serialized to workers). ------------------
  /// Resume a previous coordinator incarnation from `checkpoint_dir`:
  /// replay the cluster journal, bump the fencing term, re-attach live
  /// workers, respawn dead ones, and adopt the in-flight run (if any).
  /// Requires a stable checkpoint_dir across both incarnations.
  bool resume = false;
  /// Drill: the coordinator raises SIGKILL right after journaling the LAST
  /// kEpochDone report of this (0-based) epoch, *before* acking it — the
  /// process-level coordinator-kill smoke (ci/coordinator_kill_smoke.sh).
  int64_t coord_kill_epoch = -1;
  /// Drill (in-process): once `coord_crash_done` reports of this epoch have
  /// been journaled, the coordinator "crashes" (Crash(): transport torn
  /// down, journal fd closed, workers and on-disk state left intact) and
  /// RunEpoch returns kUnavailable. A second coordinator started with
  /// `resume` over the same directories adopts the cluster.
  int64_t coord_crash_epoch = -1;
  int coord_crash_done = 0;
  /// Drill (in-process): crash the coordinator the moment a worker death is
  /// detected — composes coordinator restart with worker recovery.
  bool coord_crash_on_death = false;

  // ---- Coordinator-side failure drills (not serialized to workers). ------
  int kill_rank = -1;       ///< worker that gets kEnvDistKillEpoch
  int64_t kill_epoch = -1;  ///< epoch it self-SIGKILLs in
  int fault_rank = -1;      ///< worker that gets `worker_fault_spec`
  std::string worker_fault_spec;  ///< HONGTU_FAULT_SPEC for that worker
  int kill2_rank = -1;       ///< second drill rank (repeated-kill scenarios)
  int64_t kill2_epoch = -1;  ///< epoch the second rank self-SIGKILLs in
  /// This rank SIGKILLs itself when it sees another rank's kPeerUpdate —
  /// a deterministic kill-during-recovery double fault.
  int kill_on_recover_rank = -1;
};

/// Serializes the worker-visible fields for the env contract.
std::string EncodeClusterConfig(const ClusterConfig& cfg);
Result<ClusterConfig> DecodeClusterConfig(const std::string& s);

/// True for coordinator→worker control messages — the frame types that
/// term-fencing guards. Peer data RPCs (fetch/push/sync) are run-gated by
/// the worker protocol, not term-gated.
bool IsCoordinatorCommand(MsgType type);

/// The fencing check a worker applies to a coordinator command: a frame
/// term below the highest term seen so far is rejected with a
/// NON-transient error (so a zombie coordinator's retry loop fails fast
/// instead of resending until its deadline); an equal or newer term is
/// adopted into `*known_term`.
Status CheckCoordinatorTerm(uint64_t frame_term, uint64_t* known_term);

/// What one distributed epoch returns to the engine layer.
struct ClusterEpochResult {
  double loss = 0.0;
  double train_accuracy = 0.0;
  double wall_seconds = 0.0;
  /// In-epoch recoveries performed during this epoch (step replays plus
  /// partition adoptions) and the wall-clock they cost, death to resume.
  int step_recoveries = 0;
  int adoptions = 0;
  double recovery_seconds = 0.0;
  /// Coordinator degrade events merged with every worker's epoch counters.
  fault::RecoveryCounters recovery;
};

/// The coordinator: owns the authoritative model + Adam state, the worker
/// processes, the checkpoint rotation, and the recovery ladder.
class ClusterCoordinator {
 public:
  /// Validates the config, spawns the workers, waits for every kHello, and
  /// saves the epoch-0 checkpoint (the floor of the restore ladder).
  static Result<std::unique_ptr<ClusterCoordinator>> Start(ClusterConfig cfg);

  ~ClusterCoordinator();

  /// One distributed epoch with recovery. A worker death is first handled
  /// in-epoch (step replay or adoption per cfg.recover_mode); the
  /// abort/restore/rerun ladder remains the fallback, up to
  /// max_epoch_attempts.
  Result<ClusterEpochResult> RunEpoch();

  /// Distributed forward-only accuracy over a split.
  Result<double> Evaluate(SplitRole role);

  GnnModel* model() { return &model_; }
  Adam* adam() { return &adam_; }
  fault::DegradationPolicy* degradation() { return &degrade_; }
  int64_t epochs_completed() const { return epochs_completed_; }
  /// Workers respawned after a detected death (recovery evidence).
  int respawn_count() const { return respawns_; }
  /// In-epoch recoveries across the coordinator's lifetime: step replays,
  /// survivor adoptions, and the total wall-clock spent recovering.
  int step_recovery_count() const { return step_recoveries_; }
  int adoption_count() const { return adoptions_; }
  double recovery_seconds() const { return recovery_seconds_; }
  const ClusterConfig& config() const { return cfg_; }

  /// This incarnation's fencing term (journaled max + 1; 1 on a fresh run).
  uint64_t term() const { return term_; }
  /// Workers adopted alive from a previous incarnation at Start.
  int reattach_count() const { return reattaches_; }
  /// True when Start(resume) rebuilt cluster state from the journal (false
  /// on the checkpoint-fallback path after journal damage).
  bool resumed_from_journal() const { return resumed_from_journal_; }

  /// Test hook: simulate a coordinator crash — transport torn down, journal
  /// fd closed, worker processes and on-disk state left intact for a
  /// successor Start(resume=true). Only Shutdown() is valid afterwards (it
  /// becomes a no-op: the successor owns the workers and scratch dirs).
  void Crash();

  /// Clean shutdown: kShutdown to every worker, reap, close transport.
  /// Idempotent; also run by the destructor.
  void Shutdown();

 private:
  struct WorkerProc;
  struct RunState;
  struct DoneReport;

  ClusterCoordinator() = default;

  enum class RunWait { kAllDone, kDeath, kTimeout, kSigterm };

  Status SpawnWorker(int rank, bool first_spawn);
  Status WaitForHello(int rank, double deadline_s);
  Status EnsureWorkersAlive();
  std::string BuildWeightsPayloadTail();
  Status BroadcastRun(bool eval, uint64_t run, int64_t epoch, SplitRole role);
  Status SendEpochTo(int rank, uint64_t run, int64_t epoch, bool recover);
  /// Waits until all done / a death is pending / the deadline passes.
  RunWait WaitRun(uint64_t run, double deadline_s, int* dead_rank,
                  std::string* death_why);
  /// In-epoch recovery rung 1: respawn the dead rank and replay it.
  Status RecoverRespawn(uint64_t run, int64_t epoch, int rank);
  /// In-epoch recovery rung 2: a survivor adopts the dead partition.
  Status RecoverAdopt(uint64_t run, int64_t epoch, int rank);
  /// Tells every alive worker (except `rank` itself) rank's new address.
  Status BroadcastPeerUpdate(uint64_t run, int rank, const std::string& addr);
  /// Watchdog action on a run timeout: SIGKILLs every worker that neither
  /// reported done nor died; returns " r1 r3"-style list for the error.
  std::string KillWedged();
  Status AbortAndRestore(uint64_t run, const std::string& why);
  /// Epoch-end checkpoint with retry; degrades (kCheckpointFallback) instead
  /// of failing the epoch when the save cannot be completed.
  void SaveCheckpointResilient(int64_t epoch);
  void OnRequest(Transport::Request&& req);
  void OnPeerDeath(int rank, const std::string& why);

  /// Decodes a kEpochDone payload into its run id, rank, and report.
  static Status ParseEpochDone(const std::string& payload, uint64_t* run,
                               int* rank, DoneReport* d);
  /// Appends to the cluster journal (fsynced). A failed append degrades the
  /// coordinator to checkpoint-only recovery instead of failing the run.
  Status JournalAppend(JournalRecordType type, std::string payload);
  /// Journals rank's current membership record (addr + pid).
  void JournalMember(int rank);
  /// Rewrites the journal to its minimal live prefix after an applied epoch.
  void JournalCompact();
  /// Resume-path membership: re-attach journaled survivors via kCoordUpdate,
  /// respawn verified-dead ranks, and mark ranks that must rejoin the
  /// resumed run.
  Status ReattachOrRespawn(const JournalState& js);
  /// In-process crash drill: waits until cfg_.coord_crash_done reports of
  /// `run` are in, then Crash()es.
  Status CrashDrillWait(uint64_t run);

  ClusterConfig cfg_;
  GnnModel model_;
  Adam adam_{AdamOptions{}};
  fault::DegradationPolicy degrade_;
  bool owns_runtime_dir_ = false;

  std::unique_ptr<Transport> transport_;
  std::unique_ptr<CheckpointManager> ckpt_;

  std::vector<WorkerProc> workers_;
  std::unique_ptr<RunState> run_;
  uint64_t next_run_ = 1;
  int64_t epochs_completed_ = 0;
  int respawns_ = 0;
  int step_recoveries_ = 0;
  int adoptions_ = 0;
  double recovery_seconds_ = 0.0;
  bool shut_down_ = false;

  // Coordinator fault tolerance (journal + fencing + restart adoption).
  uint64_t term_ = 0;
  std::mutex journal_mu_;  ///< never held together with run_->mu
  std::unique_ptr<ClusterJournal> journal_;
  bool journal_ok_ = true;  ///< guarded by journal_mu_ after Start
  bool crashed_ = false;
  bool resumed_from_journal_ = false;
  int reattaches_ = 0;
  /// In-flight run adopted from the journal; consumed by the first RunEpoch.
  uint64_t resume_run_ = 0;
  int64_t resume_epoch_ = -1;
  std::map<int, std::string> resume_reports_;  ///< rank → raw kEpochDone
  std::set<int> rejoin_ranks_;  ///< need replay into the resumed run
};

/// Worker-role entry point. Call this FIRST in main() of any binary that
/// can host a cluster run (tests, benchmarks, examples): when
/// HONGTU_DIST_ROLE=worker it runs the worker loop and never returns
/// (exits the process); otherwise it returns immediately.
void MaybeRunClusterWorker();

}  // namespace net
}  // namespace hongtu
