#include "hongtu/net/cluster.h"

#include <dirent.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>
#ifdef __linux__
#include <sys/prctl.h>
#endif

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <map>
#include <mutex>
#include <set>
#include <thread>
#include <unordered_map>
#include <utility>

#include "hongtu/comm/dedup_plan.h"
#include "hongtu/comm/reorganize.h"
#include "hongtu/common/logging.h"
#include "hongtu/gnn/layer.h"
#include "hongtu/gnn/loss.h"
#include "hongtu/kernels/backend.h"
#include "hongtu/net/wire.h"
#include "hongtu/partition/two_level.h"

extern char** environ;

namespace hongtu {
namespace net {

namespace {

// ---- Bit-exact text encoding for the HONGTU_DIST_CONFIG env contract. ------

std::string U64Hex(uint64_t v) {
  char b[20];
  std::snprintf(b, sizeof(b), "%016llx", static_cast<unsigned long long>(v));
  return b;
}

uint64_t HexU64(const std::string& s) {
  return std::strtoull(s.c_str(), nullptr, 16);
}

std::string F64Hex(double d) {
  uint64_t bits;
  std::memcpy(&bits, &d, sizeof(bits));
  return U64Hex(bits);
}

double HexF64(const std::string& s) {
  const uint64_t bits = HexU64(s);
  double d;
  std::memcpy(&d, &bits, sizeof(d));
  return d;
}

std::string F32Hex(float f) {
  uint32_t bits;
  std::memcpy(&bits, &f, sizeof(bits));
  char b[12];
  std::snprintf(b, sizeof(b), "%08x", bits);
  return b;
}

float HexF32(const std::string& s) {
  const uint32_t bits = static_cast<uint32_t>(HexU64(s));
  float f;
  std::memcpy(&f, &bits, sizeof(f));
  return f;
}

std::vector<std::string> Split(const std::string& s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (;;) {
    const size_t p = s.find(sep, start);
    if (p == std::string::npos) {
      out.push_back(s.substr(start));
      return out;
    }
    out.push_back(s.substr(start, p - start));
    start = p + 1;
  }
}

constexpr int64_t kNoKillEpoch = -1;

double NowS() { return MonotonicSeconds(); }

std::chrono::steady_clock::time_point DeadlineTp(double budget_s) {
  return std::chrono::steady_clock::now() +
         std::chrono::duration_cast<std::chrono::steady_clock::duration>(
             std::chrono::duration<double>(budget_s));
}

/// Best-effort removal of a flat scratch directory (sockets, checkpoints).
void RemoveDirShallow(const std::string& dir) {
  DIR* d = ::opendir(dir.c_str());
  if (d != nullptr) {
    while (struct dirent* e = ::readdir(d)) {
      const std::string name = e->d_name;
      if (name == "." || name == "..") continue;
      ::unlink((dir + "/" + name).c_str());
    }
    ::closedir(d);
  }
  ::rmdir(dir.c_str());
}

}  // namespace

std::string EncodeClusterConfig(const ClusterConfig& c) {
  std::string dims;
  for (size_t i = 0; i < c.model_dims.size(); ++i) {
    if (i > 0) dims += '|';
    dims += std::to_string(c.model_dims[i]);
  }
  const std::pair<const char*, std::string> kv[] = {
      {"transport", c.transport},
      {"workers", std::to_string(c.num_workers)},
      {"ds", c.dataset},
      {"scale", F64Hex(c.dataset_scale)},
      {"dseed", U64Hex(c.dataset_seed)},
      {"kind", std::to_string(static_cast<int>(c.model_kind))},
      {"dims", dims},
      {"mseed", U64Hex(c.model_seed)},
      {"chunks", std::to_string(c.chunks_per_partition)},
      {"dedup", std::to_string(c.dedup_level)},
      {"reorg", c.reorganize ? "1" : "0"},
      {"pseed", U64Hex(c.partition_seed)},
      {"wire", std::to_string(static_cast<int>(c.wire))},
      {"lr", F32Hex(c.adam.lr)},
      {"b1", F32Hex(c.adam.beta1)},
      {"b2", F32Hex(c.adam.beta2)},
      {"eps", F32Hex(c.adam.eps)},
      {"wd", F32Hex(c.adam.weight_decay)},
      {"dir", c.runtime_dir},
      {"ckdir", c.checkpoint_dir},
      {"hb", F64Hex(c.heartbeat_interval_s)},
      {"pto", F64Hex(c.peer_timeout_s)},
      {"rpc", F64Hex(c.rpc_deadline_s)},
      {"edl", F64Hex(c.epoch_deadline_s)},
  };
  std::string out;
  for (const auto& p : kv) {
    if (!out.empty()) out += ';';
    out += p.first;
    out += '=';
    out += p.second;
  }
  return out;
}

Result<ClusterConfig> DecodeClusterConfig(const std::string& s) {
  ClusterConfig c;
  c.model_dims.clear();
  for (const std::string& clause : Split(s, ';')) {
    if (clause.empty()) continue;
    const size_t eq = clause.find('=');
    if (eq == std::string::npos) {
      return Status::Invalid("cluster config clause without '=': " + clause);
    }
    const std::string k = clause.substr(0, eq);
    const std::string v = clause.substr(eq + 1);
    if (k == "transport") c.transport = v;
    else if (k == "workers") c.num_workers = std::atoi(v.c_str());
    else if (k == "ds") c.dataset = v;
    else if (k == "scale") c.dataset_scale = HexF64(v);
    else if (k == "dseed") c.dataset_seed = HexU64(v);
    else if (k == "kind") c.model_kind = static_cast<GnnKind>(std::atoi(v.c_str()));
    else if (k == "dims") {
      for (const std::string& d : Split(v, '|')) {
        if (!d.empty()) c.model_dims.push_back(std::atoi(d.c_str()));
      }
    } else if (k == "mseed") c.model_seed = HexU64(v);
    else if (k == "chunks") c.chunks_per_partition = std::atoi(v.c_str());
    else if (k == "dedup") c.dedup_level = std::atoi(v.c_str());
    else if (k == "reorg") c.reorganize = (v == "1");
    else if (k == "pseed") c.partition_seed = HexU64(v);
    else if (k == "wire")
      c.wire = static_cast<kernels::CommPrecision>(std::atoi(v.c_str()));
    else if (k == "lr") c.adam.lr = HexF32(v);
    else if (k == "b1") c.adam.beta1 = HexF32(v);
    else if (k == "b2") c.adam.beta2 = HexF32(v);
    else if (k == "eps") c.adam.eps = HexF32(v);
    else if (k == "wd") c.adam.weight_decay = HexF32(v);
    else if (k == "dir") c.runtime_dir = v;
    else if (k == "ckdir") c.checkpoint_dir = v;
    else if (k == "hb") c.heartbeat_interval_s = HexF64(v);
    else if (k == "pto") c.peer_timeout_s = HexF64(v);
    else if (k == "rpc") c.rpc_deadline_s = HexF64(v);
    else if (k == "edl") c.epoch_deadline_s = HexF64(v);
    // Unknown keys ignored: older workers tolerate newer coordinators.
  }
  if (c.dataset.empty()) return Status::Invalid("cluster config missing ds=");
  if (c.model_dims.size() < 2) {
    return Status::Invalid("cluster config needs dims= with >= 2 entries");
  }
  if (c.num_workers < 1) return Status::Invalid("cluster config workers < 1");
  return c;
}

// ============================================================================
// Worker
// ============================================================================

namespace {

/// One worker process: rebuilds the training problem from the env contract,
/// then executes coordinator commands until kShutdown. All peer-visible
/// state (the transition buffer, the served/push bookkeeping) lives behind
/// one mutex shared between the main step loop and the connection reader
/// threads that serve kFetchRows/kGradPush.
class ClusterWorker {
 public:
  int Run();

 private:
  Status Init();
  void MainLoop();
  void OnRequest(Transport::Request&& req);
  void HandleFetch(Transport::Request& req);
  void HandlePush(Transport::Request& req);

  void RunEpochCmd(const std::string& payload);
  void RunEvalCmd(const std::string& payload);
  Status SetupRun(uint64_t run, WireReader* r);
  Status TrainEpoch(uint64_t run, int64_t epoch);
  Status ForwardPhase(uint64_t run);
  Status DoStep(uint64_t run, int64_t s, int l, int j, bool backward);
  Status PublishStep(uint64_t run, int64_t s, int l, int j);
  Status FetchNeighbors(uint64_t run, int64_t s, int l, int j);
  Status PushApplyFlush(uint64_t run, int64_t s, int l, int j);
  Status ComputeLossAndSeed();

  // Step index mapping: forward steps are l*n+j, backward steps continue at
  // L*n with layers descending; all workers iterate the identical sequence.
  int LayerOf(int64_t s) const {
    const int64_t fwd = static_cast<int64_t>(L_) * n_;
    return s < fwd ? static_cast<int>(s / n_)
                   : static_cast<int>(L_ - 1 - (s - fwd) / n_);
  }
  int BatchOf(int64_t s) const { return static_cast<int>(s % n_); }
  int64_t PayloadCols(int dim) const {
    return packed_ ? (dim + 1) / 2 : dim;
  }
  size_t RowBytes(int dim) const {
    return static_cast<size_t>(dim) * static_cast<size_t>(elem_bytes_);
  }
  const Tensor& HIn(int l) const { return l == 0 ? ds_.features : h_[l]; }

  /// Serializes the requester's owner-group rows out of the transition
  /// buffer. Caller holds mu_ and has checked published_step_.
  std::string BuildFetchPayload(int requester, int64_t step) const;

  int rank_ = -1;
  int W_ = 0;
  int coord_ = 0;  ///< coordinator rank = W_
  int L_ = 0;
  int n_ = 0;
  int64_t V_ = 0;
  int64_t kill_epoch_ = kNoKillEpoch;
  ClusterConfig cfg_;
  Dataset ds_;
  TwoLevelPartition tl_;
  DedupPlan plan_;
  GnnModel model_;
  fault::DegradationPolicy degrade_;
  std::unique_ptr<Transport> transport_;
  kernels::Backend kb_ = kernels::Backend::kReference;
  bool packed_ = false;
  int64_t elem_bytes_ = 4;
  std::vector<int> dims_;
  /// Per batch j: peers that fetch from (and push gradients to) this rank.
  std::vector<std::vector<int>> fetchers_;
  std::vector<std::string> peer_addrs_;
  std::vector<VertexId> own_train_;
  int64_t global_train_ = 0;

  std::vector<Tensor> h_;     ///< h_[l] for l >= 1 (l == 0 is ds_.features)
  std::vector<Tensor> grad_;  ///< gradient wrt h^l, |V| x dims[l]
  Tensor trans_;              ///< transition buffer (wire-encoded payload)
  Tensor tgrad_;              ///< transition gradients, fp32 accumulators
  Tensor nb_, dst_h_, d_dst_, d_src_;

  double loss_sum_ = 0.0, acc_sum_ = 0.0;
  int64_t n_own_ = 0;

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Frame> cmds_;
  uint64_t cur_run_ = 0;
  uint64_t max_aborted_run_ = 0;
  bool abort_cur_ = false;
  int64_t published_step_ = -1;
  int64_t applied_step_ = -1;
  std::set<int> served_;  ///< peers served the published step
  /// Last serve per peer: a retried fetch whose response was lost replays
  /// the identical bytes even after the buffer advanced one step.
  std::unordered_map<int, std::pair<int64_t, std::string>> replay_;
  std::map<std::pair<int64_t, int>, std::string> pushes_;  ///< (step, from)
};

int ClusterWorker::Run() {
#ifdef __linux__
  // Die with the coordinator: no orphaned workers if it crashes or is
  // killed before the kShutdown broadcast.
  ::prctl(PR_SET_PDEATHSIG, SIGKILL);
#endif
  const Status st = Init();
  if (!st.ok()) {
    HT_LOG(ERROR) << "cluster worker failed to start: " << st.ToString();
    return 1;
  }
  HT_LOG(INFO) << "cluster worker r" << rank_ << " up at "
               << transport_->bound_addr() << " (pid " << ::getpid() << ")";
  MainLoop();
  transport_->Shutdown();
  return 0;
}

Status ClusterWorker::Init() {
  const char* rank_s = std::getenv(kEnvDistRank);
  const char* coord_s = std::getenv(kEnvDistCoord);
  const char* cfg_s = std::getenv(kEnvDistConfig);
  if (rank_s == nullptr || coord_s == nullptr || cfg_s == nullptr) {
    return Status::Invalid(
        "worker role needs HONGTU_DIST_RANK/COORD/CONFIG set");
  }
  rank_ = std::atoi(rank_s);
  HT_ASSIGN_OR_RETURN(cfg_, DecodeClusterConfig(cfg_s));
  W_ = cfg_.num_workers;
  coord_ = W_;
  if (rank_ < 0 || rank_ >= W_) {
    return Status::Invalid("worker rank out of range: " + std::string(rank_s));
  }
  if (const char* ke = std::getenv(kEnvDistKillEpoch)) {
    kill_epoch_ = std::atoll(ke);
  }

  // Rebuild the exact training problem from provenance — the graph itself
  // never crosses the wire.
  HT_ASSIGN_OR_RETURN(
      ds_, LoadDatasetScaled(cfg_.dataset, cfg_.dataset_scale,
                             cfg_.dataset_seed));
  V_ = ds_.graph.num_vertices();
  ModelConfig mc;
  mc.kind = cfg_.model_kind;
  mc.dims = cfg_.model_dims;
  mc.seed = cfg_.model_seed;
  HT_ASSIGN_OR_RETURN(model_, GnnModel::Create(mc));
  L_ = model_.num_layers();
  dims_ = cfg_.model_dims;

  TwoLevelOptions topts;
  topts.metis.seed = cfg_.partition_seed;
  HT_ASSIGN_OR_RETURN(
      tl_, BuildTwoLevelPartition(ds_.graph, W_, cfg_.chunks_per_partition,
                                  topts));
  const DedupLevel level = static_cast<DedupLevel>(cfg_.dedup_level);
  if (level == DedupLevel::kNone) {
    return Status::Invalid(
        "cluster backend requires owner-grouped transition buffers "
        "(dedup kP2P or kP2PReuse)");
  }
  if (cfg_.reorganize) {
    HT_RETURN_IF_ERROR(ReorganizePartition(&tl_).status());
  }
  HT_ASSIGN_OR_RETURN(plan_, BuildDedupPlan(tl_, level));
  n_ = plan_.num_chunks;

  kb_ = kernels::ActiveBackend();
  packed_ = cfg_.wire != kernels::CommPrecision::kFp32;
  elem_bytes_ = kernels::CommElemBytes(cfg_.wire);

  // Expected fetchers (== gradient pushers) per batch: peers whose fetch
  // plan has a nonempty group for this rank as owner.
  fetchers_.assign(n_, {});
  for (int j = 0; j < n_; ++j) {
    for (int w = 0; w < W_; ++w) {
      if (w == rank_) continue;
      const FetchPlan& fp = plan_.fetch[w][j];
      if (fp.group_off[rank_ + 1] > fp.group_off[rank_]) {
        fetchers_[j].push_back(w);
      }
    }
  }

  for (int64_t v = 0; v < V_; ++v) {
    if (ds_.split[v] == SplitRole::kTrain) {
      ++global_train_;
      if (tl_.partition_of[v] == rank_) own_train_.push_back(v);
    }
  }

  h_.resize(L_ + 1);
  grad_.resize(L_ + 1);
  peer_addrs_.assign(W_, "");

  Transport::Options topt;
  topt.rank = rank_;
  topt.heartbeat_interval_s = cfg_.heartbeat_interval_s;
  topt.peer_timeout_s = cfg_.peer_timeout_s;
  topt.io_deadline_s = cfg_.rpc_deadline_s;
  transport_.reset(new Transport(topt));
  transport_->set_handler(
      [this](Transport::Request&& req) { OnRequest(std::move(req)); });
  std::string listen_addr;
  if (cfg_.transport == "uds") {
    listen_addr = "uds:" + cfg_.runtime_dir + "/w" + std::to_string(rank_) +
                  "." + std::to_string(::getpid()) + ".sock";
  } else {
    listen_addr = "tcp:127.0.0.1:0";
  }
  HT_RETURN_IF_ERROR(transport_->Listen(listen_addr));
  transport_->SetPeer(coord_, coord_s);

  WireWriter hello;
  hello.U32(static_cast<uint32_t>(rank_));
  hello.Str(transport_->bound_addr());
  hello.U64(static_cast<uint64_t>(::getpid()));
  HT_RETURN_IF_ERROR(
      transport_->Call(coord_, MsgType::kHello, hello.Take(), 30.0).status());
  transport_->StartHeartbeatTo(coord_);
  return Status::OK();
}

void ClusterWorker::MainLoop() {
  for (;;) {
    Frame cmd;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_.wait(lk, [&] { return !cmds_.empty(); });
      cmd = std::move(cmds_.front());
      cmds_.pop_front();
    }
    switch (cmd.type) {
      case MsgType::kShutdown:
        HT_LOG(INFO) << "cluster worker r" << rank_ << " shutting down";
        return;
      case MsgType::kEpoch:
        RunEpochCmd(cmd.payload);
        break;
      case MsgType::kEval:
        RunEvalCmd(cmd.payload);
        break;
      default:
        HT_LOG(WARNING) << "worker r" << rank_ << ": unexpected command "
                        << MsgTypeName(cmd.type);
        break;
    }
  }
}

void ClusterWorker::OnRequest(Transport::Request&& req) {
  switch (req.frame.type) {
    case MsgType::kEpoch:
    case MsgType::kEval:
    case MsgType::kShutdown: {
      // Long commands: ack now, execute on the main thread.
      {
        std::lock_guard<std::mutex> lk(mu_);
        cmds_.push_back(std::move(req.frame));
      }
      cv_.notify_all();
      req.reply(MsgType::kAck, "");
      return;
    }
    case MsgType::kAbort: {
      WireReader r(req.frame.payload);
      auto run = r.U64();
      if (!run.ok()) {
        req.reply_error(run.status());
        return;
      }
      {
        std::lock_guard<std::mutex> lk(mu_);
        max_aborted_run_ = std::max(max_aborted_run_, run.ValueOrDie());
        if (cur_run_ != 0 && cur_run_ <= run.ValueOrDie()) abort_cur_ = true;
      }
      cv_.notify_all();
      req.reply(MsgType::kAck, "");
      return;
    }
    case MsgType::kFetchRows:
      HandleFetch(req);
      return;
    case MsgType::kGradPush:
      HandlePush(req);
      return;
    default:
      req.reply_error(Status::Invalid(std::string("worker: unexpected ") +
                                      MsgTypeName(req.frame.type)));
      return;
  }
}

std::string ClusterWorker::BuildFetchPayload(int requester,
                                             int64_t step) const {
  const int l = LayerOf(step);
  const int j = BatchOf(step);
  const size_t row_b = RowBytes(dims_[l]);
  const FetchPlan& fp = plan_.fetch[requester][j];
  const int64_t b = fp.group_off[rank_];
  const int64_t e = fp.group_off[rank_ + 1];
  std::string out;
  out.resize(static_cast<size_t>(e - b) * row_b);
  for (int64_t k = b; k < e; ++k) {
    std::memcpy(&out[static_cast<size_t>(k - b) * row_b],
                trans_.row(fp.group_slot[k]), row_b);
  }
  return out;
}

void ClusterWorker::HandleFetch(Transport::Request& req) {
  WireReader r(req.frame.payload);
  auto run_r = r.U64();
  auto step_r = r.U32();
  if (!run_r.ok() || !step_r.ok()) {
    req.reply_error(Status::DataLoss("malformed kFetchRows payload"));
    return;
  }
  const uint64_t run = run_r.ValueOrDie();
  const int64_t step = step_r.ValueOrDie();
  const int requester = req.frame.src_rank;
  if (requester < 0 || requester >= W_) {
    req.reply_error(Status::Invalid("fetch from unknown rank"));
    return;
  }

  std::string payload;
  {
    std::unique_lock<std::mutex> lk(mu_);
    const auto tp = DeadlineTp(cfg_.rpc_deadline_s);
    for (;;) {
      if (cur_run_ > run || run <= max_aborted_run_) {
        lk.unlock();
        req.reply_error(Status::Unavailable("fetch for stale run"));
        return;
      }
      if (cur_run_ == run) {
        if (abort_cur_) {
          lk.unlock();
          req.reply_error(Status::Unavailable("run aborted"));
          return;
        }
        if (published_step_ >= step) break;
      }
      if (cv_.wait_until(lk, tp) == std::cv_status::timeout &&
          !(cur_run_ == run && published_step_ >= step)) {
        lk.unlock();
        req.reply_error(Status::Unavailable(
            "fetch wait timed out (run " + std::to_string(run) + " step " +
            std::to_string(step) + ", published " +
            std::to_string(published_step_) + ")"));
        return;
      }
    }
    if (published_step_ > step) {
      // Duplicate of an already-served step (the response was lost and the
      // peer resent): replay the cached bytes — the live slots may already
      // hold the next step's rows.
      auto it = replay_.find(requester);
      if (it != replay_.end() && it->second.first == step) {
        payload = it->second.second;
      } else {
        lk.unlock();
        req.reply_error(Status::Internal(
            "fetch for overwritten step " + std::to_string(step) +
            " (published " + std::to_string(published_step_) + ")"));
        return;
      }
    } else {
      payload = BuildFetchPayload(requester, step);
      replay_[requester] = {step, payload};
      served_.insert(requester);
    }
  }
  cv_.notify_all();
  req.reply(MsgType::kAck, std::move(payload));
}

void ClusterWorker::HandlePush(Transport::Request& req) {
  WireReader r(req.frame.payload);
  auto run_r = r.U64();
  auto step_r = r.U32();
  if (!run_r.ok() || !step_r.ok()) {
    req.reply_error(Status::DataLoss("malformed kGradPush payload"));
    return;
  }
  const uint64_t run = run_r.ValueOrDie();
  const int64_t step = step_r.ValueOrDie();
  const int sender = req.frame.src_rank;
  if (sender < 0 || sender >= W_) {
    req.reply_error(Status::Invalid("push from unknown rank"));
    return;
  }
  // The remainder of the payload after {run u64, step u32} is the raw
  // gradient row block.
  std::string body = req.frame.payload.substr(12);

  {
    std::unique_lock<std::mutex> lk(mu_);
    const auto tp = DeadlineTp(cfg_.rpc_deadline_s);
    while (cur_run_ < run && run > max_aborted_run_) {
      if (cv_.wait_until(lk, tp) == std::cv_status::timeout) break;
    }
    if (cur_run_ != run || run <= max_aborted_run_) {
      lk.unlock();
      req.reply_error(Status::Unavailable("push for stale run"));
      return;
    }
    if (abort_cur_) {
      lk.unlock();
      req.reply_error(Status::Unavailable("run aborted"));
      return;
    }
    if (applied_step_ < step) {
      // Duplicates overwrite with identical bytes — idempotent.
      pushes_[{step, sender}] = std::move(body);
    }
  }
  cv_.notify_all();
  req.reply(MsgType::kAck, "");
}

Status ClusterWorker::SetupRun(uint64_t run, WireReader* r) {
  (void)run;
  HT_ASSIGN_OR_RETURN(uint32_t w_count, r->U32());
  if (static_cast<int>(w_count) != W_) {
    return Status::Invalid("run announces " + std::to_string(w_count) +
                           " workers, expected " + std::to_string(W_));
  }
  for (int w = 0; w < W_; ++w) {
    HT_ASSIGN_OR_RETURN(std::string addr, r->Str());
    if (w == rank_) continue;
    if (addr != peer_addrs_[w]) {
      // A respawned peer has a fresh address: drop any cached connection so
      // the next Call dials the new process.
      transport_->DropConnection(w);
      transport_->SetPeer(w, addr);
      peer_addrs_[w] = addr;
    }
  }
  HT_ASSIGN_OR_RETURN(uint32_t p_count, r->U32());
  auto params = model_.AllParams();
  if (p_count != params.size()) {
    return Status::Invalid("run broadcast has " + std::to_string(p_count) +
                           " params, model has " +
                           std::to_string(params.size()));
  }
  for (Tensor* p : params) {
    HT_ASSIGN_OR_RETURN(uint64_t rows, r->U64());
    HT_ASSIGN_OR_RETURN(uint64_t cols, r->U64());
    if (static_cast<int64_t>(rows) != p->rows() ||
        static_cast<int64_t>(cols) != p->cols()) {
      return Status::Invalid("parameter shape mismatch in run broadcast");
    }
    HT_RETURN_IF_ERROR(
        r->Raw(p->data(), static_cast<size_t>(p->size()) * sizeof(float)));
  }
  return Status::OK();
}

void ClusterWorker::RunEpochCmd(const std::string& payload) {
  WireReader r(payload);
  auto run_r = r.U64();
  auto epoch_r = r.U64();
  if (!run_r.ok() || !epoch_r.ok()) {
    HT_LOG(WARNING) << "worker r" << rank_ << ": malformed kEpoch payload";
    return;
  }
  const uint64_t run = run_r.ValueOrDie();
  const int64_t epoch = static_cast<int64_t>(epoch_r.ValueOrDie());
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (run <= max_aborted_run_) return;  // aborted while queued
    cur_run_ = run;
    abort_cur_ = false;
    published_step_ = -1;
    applied_step_ = -1;
    served_.clear();
    replay_.clear();
    pushes_.clear();
  }
  Status st = SetupRun(run, &r);
  if (st.ok()) {
    degrade_.ResetEpoch();
    model_.ZeroGrads();
    loss_sum_ = acc_sum_ = 0.0;
    n_own_ = 0;
    st = TrainEpoch(run, epoch);
  }
  WireWriter w;
  w.U64(run);
  w.U32(static_cast<uint32_t>(rank_));
  w.U32(st.ok() ? 1 : 0);
  w.Str(st.ok() ? "" : st.ToString());
  w.F64(loss_sum_);
  w.F64(acc_sum_);
  w.U64(static_cast<uint64_t>(n_own_));
  const fault::RecoveryCounters rec = degrade_.SnapshotEpoch();
  w.U32(fault::kNumDegradeEvents);
  for (int e = 0; e < fault::kNumDegradeEvents; ++e) w.I64(rec.counts[e]);
  if (st.ok()) {
    auto grads = model_.AllGrads();
    w.U32(static_cast<uint32_t>(grads.size()));
    for (Tensor* g : grads) {
      w.U64(static_cast<uint64_t>(g->rows()));
      w.U64(static_cast<uint64_t>(g->cols()));
      w.Bytes(g->data(), static_cast<size_t>(g->size()) * sizeof(float));
    }
  } else {
    w.U32(0);
    HT_LOG(WARNING) << "worker r" << rank_ << ": epoch run " << run
                    << " failed: " << st.ToString();
  }
  auto cr =
      transport_->Call(coord_, MsgType::kEpochDone, w.Take(),
                       cfg_.rpc_deadline_s);
  if (!cr.ok()) {
    HT_LOG(WARNING) << "worker r" << rank_
                    << ": kEpochDone delivery failed: "
                    << cr.status().ToString();
  }
}

void ClusterWorker::RunEvalCmd(const std::string& payload) {
  WireReader r(payload);
  auto run_r = r.U64();
  auto role_r = r.U32();
  if (!run_r.ok() || !role_r.ok()) {
    HT_LOG(WARNING) << "worker r" << rank_ << ": malformed kEval payload";
    return;
  }
  const uint64_t run = run_r.ValueOrDie();
  const SplitRole role = static_cast<SplitRole>(role_r.ValueOrDie());
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (run <= max_aborted_run_) return;
    cur_run_ = run;
    abort_cur_ = false;
    published_step_ = -1;
    applied_step_ = -1;
    served_.clear();
    replay_.clear();
    pushes_.clear();
  }
  Status st = SetupRun(run, &r);
  if (st.ok()) st = ForwardPhase(run);
  uint64_t correct = 0, total = 0;
  if (st.ok()) {
    const Tensor& logits = L_ == 0 ? ds_.features : h_[L_];
    const int C = dims_[L_];
    for (int64_t v = 0; v < V_; ++v) {
      if (tl_.partition_of[v] != rank_ || ds_.split[v] != role) continue;
      const float* row = logits.row(v);
      int best = 0;
      for (int c = 1; c < C; ++c) {
        if (row[c] > row[best]) best = c;
      }
      total++;
      if (best == ds_.labels[v]) correct++;
    }
  }
  WireWriter w;
  w.U64(run);
  w.U32(static_cast<uint32_t>(rank_));
  w.U32(st.ok() ? 1 : 0);
  w.Str(st.ok() ? "" : st.ToString());
  w.U64(correct);
  w.U64(total);
  auto cr = transport_->Call(coord_, MsgType::kEvalDone, w.Take(),
                             cfg_.rpc_deadline_s);
  if (!cr.ok()) {
    HT_LOG(WARNING) << "worker r" << rank_
                    << ": kEvalDone delivery failed: "
                    << cr.status().ToString();
  }
}

Status ClusterWorker::TrainEpoch(uint64_t run, int64_t epoch) {
  HT_RETURN_IF_ERROR(ForwardPhase(run));
  if (epoch == kill_epoch_) {
    // Deterministic failure drill: die between forward and backward, with
    // the epoch's communication in full flight on the peers.
    HT_LOG(WARNING) << "worker r" << rank_ << ": kill drill at epoch "
                    << epoch << " — raising SIGKILL";
    ::raise(SIGKILL);
  }
  HT_RETURN_IF_ERROR(ComputeLossAndSeed());
  for (int l = L_ - 1; l >= 0; --l) {
    grad_[l].EnsureShapeZeroed(V_, dims_[l]);
    tgrad_.EnsureShapeZeroed(plan_.buffer_slots[rank_], dims_[l]);
    for (int j = 0; j < n_; ++j) {
      const int64_t s =
          static_cast<int64_t>(L_) * n_ + static_cast<int64_t>(L_ - 1 - l) * n_ + j;
      HT_RETURN_IF_ERROR(DoStep(run, s, l, j, /*backward=*/true));
    }
  }
  return Status::OK();
}

Status ClusterWorker::ForwardPhase(uint64_t run) {
  for (int l = 0; l < L_; ++l) {
    h_[l + 1].EnsureShape(V_, dims_[l + 1]);
    for (int j = 0; j < n_; ++j) {
      const int64_t s = static_cast<int64_t>(l) * n_ + j;
      HT_RETURN_IF_ERROR(DoStep(run, s, l, j, /*backward=*/false));
    }
  }
  return Status::OK();
}

Status ClusterWorker::DoStep(uint64_t run, int64_t s, int l, int j,
                             bool backward) {
  const Chunk& chunk = tl_.chunks[rank_][j];
  HT_RETURN_IF_ERROR(PublishStep(run, s, l, j));
  HT_RETURN_IF_ERROR(FetchNeighbors(run, s, l, j));
  const LocalGraph lg = LocalGraph::FromChunk(chunk);
  Layer* layer = model_.layer(l);
  if (!backward) {
    HT_RETURN_IF_ERROR(layer->Forward(lg, nb_, &dst_h_, nullptr));
    Tensor& hout = h_[l + 1];
    const size_t out_b = static_cast<size_t>(dims_[l + 1]) * sizeof(float);
    for (int64_t d = 0; d < chunk.num_dst(); ++d) {
      std::memcpy(hout.row(chunk.dst_vertices[d]), dst_h_.row(d), out_b);
    }
    return Status::OK();
  }
  d_dst_.EnsureShape(chunk.num_dst(), dims_[l + 1]);
  const size_t out_b = static_cast<size_t>(dims_[l + 1]) * sizeof(float);
  for (int64_t d = 0; d < chunk.num_dst(); ++d) {
    std::memcpy(d_dst_.row(d), grad_[l + 1].row(chunk.dst_vertices[d]), out_b);
  }
  d_src_.EnsureShapeZeroed(chunk.num_neighbors(), dims_[l]);
  HT_RETURN_IF_ERROR(layer->BackwardRecompute(lg, nb_, d_dst_, &d_src_));
  return PushApplyFlush(run, s, l, j);
}

Status ClusterWorker::PublishStep(uint64_t run, int64_t s, int l, int j) {
  std::unique_lock<std::mutex> lk(mu_);
  if (s > 0) {
    // In-place slot reuse: the previous step's rows must have been pulled by
    // every expected fetcher before this load may overwrite them.
    const std::vector<int>& need = fetchers_[BatchOf(s - 1)];
    auto all_served = [&] {
      for (int w : need) {
        if (served_.count(w) == 0) return false;
      }
      return true;
    };
    const auto tp = DeadlineTp(cfg_.rpc_deadline_s);
    while (!all_served()) {
      if (abort_cur_) return Status::Internal("run aborted");
      if (cv_.wait_until(lk, tp) == std::cv_status::timeout) {
        if (all_served()) break;
        return Status::Unavailable(
            "timed out waiting for peers to fetch step " +
            std::to_string(s - 1));
      }
    }
  }
  if (abort_cur_) return Status::Internal("run aborted");
  const int dim = dims_[l];
  trans_.EnsureShape(plan_.buffer_slots[rank_], PayloadCols(dim));
  const TransitionStep& ts = plan_.transition[rank_][j];
  const Tensor& hin = HIn(l);
  const size_t row_b = RowBytes(dim);
  for (size_t p = 0; p < ts.vertices.size(); ++p) {
    if (ts.reused[p]) continue;  // N^gpu: the slot already holds this vertex
    const float* src = hin.row(ts.vertices[p]);
    float* slot_row = trans_.row(ts.slots[p]);
    if (packed_) {
      kernels::EncodeRows(kb_, cfg_.wire, src, dim,
                          reinterpret_cast<uint16_t*>(slot_row));
    } else {
      std::memcpy(slot_row, src, row_b);
    }
  }
  published_step_ = s;
  served_.clear();
  lk.unlock();
  cv_.notify_all();
  (void)run;
  return Status::OK();
}

Status ClusterWorker::FetchNeighbors(uint64_t run, int64_t s, int l, int j) {
  const Chunk& chunk = tl_.chunks[rank_][j];
  const int dim = dims_[l];
  const FetchPlan& fp = plan_.fetch[rank_][j];
  const size_t row_b = RowBytes(dim);
  nb_.EnsureShape(chunk.num_neighbors(), dim);
  for (int o = 0; o < W_; ++o) {
    const int64_t b = fp.group_off[o];
    const int64_t e = fp.group_off[o + 1];
    if (b == e) continue;
    if (o == rank_) {
      std::lock_guard<std::mutex> lk(mu_);
      for (int64_t k = b; k < e; ++k) {
        float* dst = nb_.row(fp.group_pos[k]);
        if (packed_) {
          kernels::DecodeRows(
              kb_, cfg_.wire,
              reinterpret_cast<const uint16_t*>(trans_.row(fp.group_slot[k])),
              dim, dst);
        } else {
          std::memcpy(dst, trans_.row(fp.group_slot[k]), row_b);
        }
      }
      continue;
    }
    WireWriter req;
    req.U64(run);
    req.U32(static_cast<uint32_t>(s));
    const std::string req_payload = req.Take();
    std::string resp;
    // Short per-attempt deadline (the peer timeout), long total budget: a
    // Call blocked on a dead peer returns quickly enough for the retry loop
    // to observe an abort between attempts, instead of sitting out the full
    // RPC deadline while the coordinator already moved on.
    fault::RetryPolicy pol;
    pol.max_attempts = 16;
    pol.total_deadline_s = cfg_.rpc_deadline_s * 2.0;
    const double attempt_deadline_s =
        std::min(cfg_.rpc_deadline_s, std::max(cfg_.peer_timeout_s, 0.5));
    const Status st = fault::RetryTransient(
        pol, &degrade_, "net.fetch_rows", [&]() -> Status {
          {
            std::lock_guard<std::mutex> lk(mu_);
            if (abort_cur_) return Status::Internal("run aborted");
          }
          auto r = transport_->Call(o, MsgType::kFetchRows, req_payload,
                                    attempt_deadline_s);
          if (!r.ok()) return r.status();
          resp = r.MoveValueUnsafe();
          if (resp.size() != static_cast<size_t>(e - b) * row_b) {
            return Status::DataLoss(
                "fetch response size mismatch from rank " + std::to_string(o));
          }
          return Status::OK();
        });
    HT_RETURN_IF_ERROR(st);
    const char* p = resp.data();
    for (int64_t k = b; k < e; ++k) {
      const char* src = p + static_cast<size_t>(k - b) * row_b;
      float* dst = nb_.row(fp.group_pos[k]);
      if (packed_) {
        kernels::DecodeRows(kb_, cfg_.wire,
                            reinterpret_cast<const uint16_t*>(src), dim, dst);
      } else {
        std::memcpy(dst, src, row_b);
      }
    }
  }
  return Status::OK();
}

Status ClusterWorker::PushApplyFlush(uint64_t run, int64_t s, int l, int j) {
  const int dim = dims_[l];
  const size_t row_b = RowBytes(dim);
  const FetchPlan& fp = plan_.fetch[rank_][j];

  // 1. Send this chunk's gradient contributions to every remote owner
  //    before waiting for inbound pushes (deadlock freedom: everyone sends
  //    first, then waits).
  for (int o = 0; o < W_; ++o) {
    if (o == rank_) continue;
    const int64_t b = fp.group_off[o];
    const int64_t e = fp.group_off[o + 1];
    if (b == e) continue;
    WireWriter w;
    w.U64(run);
    w.U32(static_cast<uint32_t>(s));
    std::string rows;
    rows.resize(static_cast<size_t>(e - b) * row_b);
    for (int64_t k = b; k < e; ++k) {
      char* dst = &rows[static_cast<size_t>(k - b) * row_b];
      if (packed_) {
        kernels::EncodeRows(kb_, cfg_.wire, d_src_.row(fp.group_pos[k]), dim,
                            reinterpret_cast<uint16_t*>(dst));
      } else {
        std::memcpy(dst, d_src_.row(fp.group_pos[k]), row_b);
      }
    }
    w.Bytes(rows.data(), rows.size());
    fault::RetryPolicy pol;
    pol.max_attempts = 16;
    pol.total_deadline_s = cfg_.rpc_deadline_s * 2.0;
    const double attempt_deadline_s =
        std::min(cfg_.rpc_deadline_s, std::max(cfg_.peer_timeout_s, 0.5));
    const Status st = fault::RetryTransient(
        pol, &degrade_, "net.grad_push", [&]() -> Status {
          {
            std::lock_guard<std::mutex> lk(mu_);
            if (abort_cur_) return Status::Internal("run aborted");
          }
          return transport_
              ->Call(o, MsgType::kGradPush, w.buf(), attempt_deadline_s)
              .status();
        });
    HT_RETURN_IF_ERROR(st);
  }

  // 2. Collect the expected inbound pushes for this step.
  const std::vector<int>& senders = fetchers_[j];
  std::vector<std::pair<int, std::string>> inbound;
  {
    std::unique_lock<std::mutex> lk(mu_);
    auto have_all = [&] {
      for (int w : senders) {
        if (pushes_.count({s, w}) == 0) return false;
      }
      return true;
    };
    const auto tp = DeadlineTp(cfg_.rpc_deadline_s);
    while (!have_all()) {
      if (abort_cur_) return Status::Internal("run aborted");
      if (cv_.wait_until(lk, tp) == std::cv_status::timeout) {
        if (have_all()) break;
        std::string missing;
        for (int w : senders) {
          if (pushes_.count({s, w}) == 0) missing += " r" + std::to_string(w);
        }
        return Status::Unavailable("timed out waiting for gradient pushes (" +
                                   std::to_string(s) + "):" + missing);
      }
    }
    for (int w : senders) {
      auto it = pushes_.find({s, w});
      inbound.emplace_back(w, std::move(it->second));
      pushes_.erase(it);
    }
  }

  // 3. Apply contributions in sender-rank order — the fixed accumulation
  //    order is what makes the distributed epoch bit-deterministic.
  size_t next_inbound = 0;
  for (int w = 0; w < W_; ++w) {
    if (w == rank_) {
      const int64_t b = fp.group_off[rank_];
      const int64_t e = fp.group_off[rank_ + 1];
      for (int64_t k = b; k < e; ++k) {
        kernels::QuantizeAccumRows(kb_, cfg_.wire, d_src_.row(fp.group_pos[k]),
                                   dim, tgrad_.row(fp.group_slot[k]));
      }
      continue;
    }
    if (next_inbound >= inbound.size() || inbound[next_inbound].first != w) {
      continue;  // this peer has no group for us in batch j
    }
    const std::string& rows = inbound[next_inbound].second;
    ++next_inbound;
    const FetchPlan& fpw = plan_.fetch[w][j];
    const int64_t b = fpw.group_off[rank_];
    const int64_t e = fpw.group_off[rank_ + 1];
    if (rows.size() != static_cast<size_t>(e - b) * row_b) {
      return Status::Internal("gradient push size mismatch from rank " +
                              std::to_string(w));
    }
    for (int64_t k = b; k < e; ++k) {
      const char* src = rows.data() + static_cast<size_t>(k - b) * row_b;
      float* acc = tgrad_.row(fpw.group_slot[k]);
      if (packed_) {
        kernels::DecodeAccumRows(kb_, cfg_.wire,
                                 reinterpret_cast<const uint16_t*>(src), dim,
                                 acc);
      } else {
        const float* g = reinterpret_cast<const float*>(src);
        for (int c = 0; c < dim; ++c) acc[c] += g[c];
      }
    }
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    applied_step_ = s;
  }
  cv_.notify_all();

  // 4. Flush completed slots into the host gradient buffer (one more wire
  //    crossing under a packed precision, exactly like the executor's D2H).
  const TransitionStep& ts = plan_.transition[rank_][j];
  Tensor& hg = grad_[l];
  for (size_t p = 0; p < ts.vertices.size(); ++p) {
    if (!ts.flush[p]) continue;  // retained: keeps accumulating next batch
    float* tg = tgrad_.row(ts.slots[p]);
    float* dst = hg.row(ts.vertices[p]);
    if (packed_) {
      kernels::QuantizeAccumRows(kb_, cfg_.wire, tg, dim, dst);
    } else {
      for (int c = 0; c < dim; ++c) dst[c] += tg[c];
    }
    std::memset(tg, 0, static_cast<size_t>(dim) * sizeof(float));
  }
  return Status::OK();
}

Status ClusterWorker::ComputeLossAndSeed() {
  const int C = dims_[L_];
  grad_[L_].EnsureShapeZeroed(V_, C);
  n_own_ = static_cast<int64_t>(own_train_.size());
  if (n_own_ == 0 || global_train_ == 0) {
    loss_sum_ = acc_sum_ = 0.0;
    return Status::OK();
  }
  const LossResult lr =
      SoftmaxCrossEntropy(h_[L_], ds_.labels, own_train_, &grad_[L_]);
  // SoftmaxCrossEntropy divides by the local vertex count; rescale so every
  // worker's rows carry the global 1/|train| factor of the serial engines.
  const float scale = static_cast<float>(
      static_cast<double>(n_own_) / static_cast<double>(global_train_));
  for (const VertexId v : own_train_) {
    float* g = grad_[L_].row(v);
    for (int c = 0; c < C; ++c) g[c] *= scale;
  }
  loss_sum_ = lr.loss * static_cast<double>(n_own_);
  acc_sum_ = lr.accuracy * static_cast<double>(n_own_);
  return Status::OK();
}

}  // namespace

void MaybeRunClusterWorker() {
  const char* role = std::getenv(kEnvDistRole);
  if (role == nullptr || std::string(role) != "worker") return;
  ClusterWorker worker;
  std::exit(worker.Run());
}

// ============================================================================
// Coordinator
// ============================================================================

struct ClusterCoordinator::WorkerProc {
  pid_t pid = -1;
  std::string addr;
  bool hello = false;
  bool dead = false;
};

struct ClusterCoordinator::RunState {
  std::mutex mu;
  std::condition_variable cv;
  uint64_t run = 0;  ///< active run id (0 = idle)
  bool eval = false;
  struct Done {
    bool received = false;
    bool ok = false;
    std::string error;
    double loss_sum = 0.0, acc_sum = 0.0;
    uint64_t n = 0;
    uint64_t correct = 0, total = 0;
    fault::RecoveryCounters rec;
    std::vector<std::vector<float>> grads;
  };
  std::vector<Done> done;
  int done_count = 0;
  int dead_rank = -1;
  std::string death_why;
};

Result<std::unique_ptr<ClusterCoordinator>> ClusterCoordinator::Start(
    ClusterConfig cfg) {
  if (cfg.num_workers < 1 || cfg.num_workers > 64) {
    return Status::Invalid("cluster num_workers out of range: " +
                           std::to_string(cfg.num_workers));
  }
  if (cfg.transport != "tcp" && cfg.transport != "uds") {
    return Status::Invalid("cluster transport must be tcp or uds: " +
                           cfg.transport);
  }
  if (static_cast<DedupLevel>(cfg.dedup_level) == DedupLevel::kNone) {
    return Status::Invalid(
        "cluster backend requires dedup kP2P or kP2PReuse (owner-grouped "
        "transition buffers are the wire format)");
  }
  if (cfg.model_dims.size() < 2) {
    return Status::Invalid("cluster config needs model_dims (L+1 entries)");
  }
  if (cfg.dataset.empty()) {
    return Status::Invalid("cluster config needs a dataset name");
  }

  std::unique_ptr<ClusterCoordinator> co(new ClusterCoordinator());
  co->cfg_ = std::move(cfg);
  ClusterConfig& c = co->cfg_;
  if (c.runtime_dir.empty()) {
    // Keep the path short: uds socket paths live inside it and must fit
    // sockaddr_un (108 bytes).
    char tmpl[] = "/tmp/hongtu-dist.XXXXXX";
    if (::mkdtemp(tmpl) == nullptr) {
      return Status::IoError(std::string("mkdtemp: ") + std::strerror(errno));
    }
    c.runtime_dir = tmpl;
    co->owns_runtime_dir_ = true;
  }
  if (c.checkpoint_dir.empty()) c.checkpoint_dir = c.runtime_dir;

  ModelConfig mc;
  mc.kind = c.model_kind;
  mc.dims = c.model_dims;
  mc.seed = c.model_seed;
  HT_ASSIGN_OR_RETURN(co->model_, GnnModel::Create(mc));
  co->adam_ = Adam(c.adam);
  for (Tensor* p : co->model_.AllParams()) co->adam_.Register(p);

  co->ckpt_.reset(new CheckpointManager(c.checkpoint_dir, &co->degrade_));
  // Epoch-0 snapshot: the floor of the recovery ladder — a worker death in
  // the very first epoch restores to here.
  HT_RETURN_IF_ERROR(co->ckpt_->Save(&co->model_, co->adam_, 0));

  const int W = c.num_workers;
  co->run_.reset(new RunState());
  co->run_->done.resize(W);
  co->workers_.resize(W);

  Transport::Options topt;
  topt.rank = W;  // coordinator rank
  topt.heartbeat_interval_s = c.heartbeat_interval_s;
  topt.peer_timeout_s = c.peer_timeout_s;
  topt.io_deadline_s = c.rpc_deadline_s;
  co->transport_.reset(new Transport(topt));
  ClusterCoordinator* self = co.get();
  co->transport_->set_handler(
      [self](Transport::Request&& req) { self->OnRequest(std::move(req)); });
  co->transport_->set_death_callback(
      [self](int rank, const std::string& why) {
        self->OnPeerDeath(rank, why);
      });
  const std::string listen_addr =
      c.transport == "uds" ? "uds:" + c.runtime_dir + "/coord.sock"
                           : "tcp:127.0.0.1:0";
  HT_RETURN_IF_ERROR(co->transport_->Listen(listen_addr));

  for (int r = 0; r < W; ++r) {
    HT_RETURN_IF_ERROR(co->SpawnWorker(r, /*first_spawn=*/true));
  }
  for (int r = 0; r < W; ++r) {
    HT_RETURN_IF_ERROR(co->WaitForHello(r, 120.0));
  }
  {
    std::lock_guard<std::mutex> lk(co->run_->mu);
    for (int r = 0; r < W; ++r) {
      co->transport_->SetPeer(r, co->workers_[r].addr);
      co->transport_->WatchPeer(r);
    }
  }
  HT_LOG(INFO) << "cluster coordinator up: " << W << " workers over "
               << c.transport << ", runtime dir " << c.runtime_dir;
  return co;
}

ClusterCoordinator::~ClusterCoordinator() { Shutdown(); }

Status ClusterCoordinator::SpawnWorker(int rank, bool first_spawn) {
  WorkerProc& wp = workers_[rank];
  std::vector<std::string> env;
  for (char** e = environ; e != nullptr && *e != nullptr; ++e) {
    const std::string s(*e);
    if (s.rfind("HONGTU_DIST_", 0) == 0) continue;
    if (s.rfind("HONGTU_FAULT_SPEC=", 0) == 0) continue;
    if (s.rfind("HONGTU_CLUSTER=", 0) == 0) continue;
    if (s.rfind("OMP_NUM_THREADS=", 0) == 0) continue;
    env.push_back(s);
  }
  env.push_back(std::string(kEnvDistRole) + "=worker");
  env.push_back(std::string(kEnvDistRank) + "=" + std::to_string(rank));
  env.push_back(std::string(kEnvDistCoord) + "=" + transport_->bound_addr());
  env.push_back(std::string(kEnvDistConfig) + "=" + EncodeClusterConfig(cfg_));
  // Failure drills ride only on the FIRST spawn: a respawned worker must
  // not re-kill itself or re-inject faults, or recovery could never finish.
  if (first_spawn && rank == cfg_.fault_rank && !cfg_.worker_fault_spec.empty()) {
    env.push_back("HONGTU_FAULT_SPEC=" + cfg_.worker_fault_spec);
  }
  if (first_spawn && rank == cfg_.kill_rank && cfg_.kill_epoch >= 0) {
    env.push_back(std::string(kEnvDistKillEpoch) + "=" +
                  std::to_string(cfg_.kill_epoch));
  }
  long ncpu = ::sysconf(_SC_NPROCESSORS_ONLN);
  if (ncpu < 1) ncpu = 1;
  const long per = std::max(1L, ncpu / std::max(1, cfg_.num_workers));
  env.push_back("OMP_NUM_THREADS=" + std::to_string(per));

  std::vector<char*> envp;
  envp.reserve(env.size() + 1);
  for (std::string& s : env) envp.push_back(const_cast<char*>(s.c_str()));
  envp.push_back(nullptr);
  const std::string argv0 =
      "hongtu-cluster-worker-r" + std::to_string(rank);
  char* argv[] = {const_cast<char*>(argv0.c_str()), nullptr};

  const pid_t pid = ::fork();
  if (pid < 0) {
    return Status::IoError(std::string("fork: ") + std::strerror(errno));
  }
  if (pid == 0) {
    ::execve("/proc/self/exe", argv, envp.data());
    _exit(127);
  }
  {
    std::lock_guard<std::mutex> lk(run_->mu);
    wp.pid = pid;
    wp.dead = false;
    wp.hello = false;
    wp.addr.clear();
  }
  return Status::OK();
}

Status ClusterCoordinator::WaitForHello(int rank, double deadline_s) {
  const double t_end = NowS() + deadline_s;
  std::unique_lock<std::mutex> lk(run_->mu);
  while (!workers_[rank].hello) {
    if (NowS() >= t_end) {
      return Status::Internal("worker r" + std::to_string(rank) +
                              " sent no hello within " +
                              std::to_string(deadline_s) + "s");
    }
    // Catch a worker that died during startup early (bad exec, Init error).
    if (workers_[rank].pid > 0) {
      int wstatus = 0;
      if (::waitpid(workers_[rank].pid, &wstatus, WNOHANG) ==
          workers_[rank].pid) {
        workers_[rank].pid = -1;
        workers_[rank].dead = true;
        return Status::Internal("worker r" + std::to_string(rank) +
                                " exited during startup (status " +
                                std::to_string(wstatus) + ")");
      }
    }
    run_->cv.wait_for(lk, std::chrono::milliseconds(100));
  }
  return Status::OK();
}

void ClusterCoordinator::OnRequest(Transport::Request&& req) {
  switch (req.frame.type) {
    case MsgType::kHello: {
      WireReader r(req.frame.payload);
      auto rank_r = r.U32();
      auto addr_r = r.Str();
      auto pid_r = r.U64();
      if (!rank_r.ok() || !addr_r.ok() || !pid_r.ok()) {
        req.reply_error(Status::DataLoss("malformed kHello"));
        return;
      }
      const int rank = static_cast<int>(rank_r.ValueOrDie());
      if (rank < 0 || rank >= static_cast<int>(workers_.size())) {
        req.reply_error(Status::Invalid("hello from unknown rank"));
        return;
      }
      {
        std::lock_guard<std::mutex> lk(run_->mu);
        workers_[rank].addr = addr_r.ValueOrDie();
        workers_[rank].hello = true;
      }
      run_->cv.notify_all();
      req.reply(MsgType::kAck, "");
      return;
    }
    case MsgType::kEpochDone: {
      WireReader r(req.frame.payload);
      auto run_r = r.U64();
      auto rank_r = r.U32();
      auto ok_r = r.U32();
      auto err_r = r.Str();
      auto loss_r = r.F64();
      auto acc_r = r.F64();
      auto n_r = r.U64();
      auto ncnt_r = r.U32();
      if (!run_r.ok() || !rank_r.ok() || !ok_r.ok() || !err_r.ok() ||
          !loss_r.ok() || !acc_r.ok() || !n_r.ok() || !ncnt_r.ok()) {
        req.reply_error(Status::DataLoss("malformed kEpochDone"));
        return;
      }
      RunState::Done d;
      d.received = true;
      d.ok = ok_r.ValueOrDie() != 0;
      d.error = err_r.ValueOrDie();
      d.loss_sum = loss_r.ValueOrDie();
      d.acc_sum = acc_r.ValueOrDie();
      d.n = n_r.ValueOrDie();
      const uint32_t ncnt = ncnt_r.ValueOrDie();
      for (uint32_t e = 0; e < ncnt; ++e) {
        auto cr = r.I64();
        if (!cr.ok()) {
          req.reply_error(cr.status());
          return;
        }
        if (e < fault::kNumDegradeEvents) {
          d.rec.counts[e] = cr.ValueOrDie();
        }
      }
      auto g_r = r.U32();
      if (!g_r.ok()) {
        req.reply_error(g_r.status());
        return;
      }
      const uint32_t gcnt = g_r.ValueOrDie();
      for (uint32_t g = 0; g < gcnt; ++g) {
        auto rows_r = r.U64();
        auto cols_r = r.U64();
        if (!rows_r.ok() || !cols_r.ok()) {
          req.reply_error(Status::DataLoss("malformed kEpochDone grads"));
          return;
        }
        const size_t count = static_cast<size_t>(rows_r.ValueOrDie()) *
                             static_cast<size_t>(cols_r.ValueOrDie());
        std::vector<float> buf(count);
        const Status st = r.Raw(buf.data(), count * sizeof(float));
        if (!st.ok()) {
          req.reply_error(st);
          return;
        }
        d.grads.push_back(std::move(buf));
      }
      const int rank = static_cast<int>(rank_r.ValueOrDie());
      {
        std::lock_guard<std::mutex> lk(run_->mu);
        if (run_r.ValueOrDie() == run_->run && !run_->eval &&
            rank >= 0 && rank < static_cast<int>(run_->done.size()) &&
            !run_->done[rank].received) {
          run_->done[rank] = std::move(d);
          ++run_->done_count;
        }
      }
      run_->cv.notify_all();
      req.reply(MsgType::kAck, "");
      return;
    }
    case MsgType::kEvalDone: {
      WireReader r(req.frame.payload);
      auto run_r = r.U64();
      auto rank_r = r.U32();
      auto ok_r = r.U32();
      auto err_r = r.Str();
      auto correct_r = r.U64();
      auto total_r = r.U64();
      if (!run_r.ok() || !rank_r.ok() || !ok_r.ok() || !err_r.ok() ||
          !correct_r.ok() || !total_r.ok()) {
        req.reply_error(Status::DataLoss("malformed kEvalDone"));
        return;
      }
      const int rank = static_cast<int>(rank_r.ValueOrDie());
      {
        std::lock_guard<std::mutex> lk(run_->mu);
        if (run_r.ValueOrDie() == run_->run && run_->eval && rank >= 0 &&
            rank < static_cast<int>(run_->done.size()) &&
            !run_->done[rank].received) {
          RunState::Done& d = run_->done[rank];
          d.received = true;
          d.ok = ok_r.ValueOrDie() != 0;
          d.error = err_r.ValueOrDie();
          d.correct = correct_r.ValueOrDie();
          d.total = total_r.ValueOrDie();
          ++run_->done_count;
        }
      }
      run_->cv.notify_all();
      req.reply(MsgType::kAck, "");
      return;
    }
    default:
      req.reply_error(Status::Invalid(std::string("coordinator: unexpected ") +
                                      MsgTypeName(req.frame.type)));
      return;
  }
}

void ClusterCoordinator::OnPeerDeath(int rank, const std::string& why) {
  if (rank < 0 || rank >= static_cast<int>(workers_.size())) return;
  std::lock_guard<std::mutex> lk(run_->mu);
  WorkerProc& wp = workers_[rank];
  if (wp.dead || shut_down_) return;
  // The transport reports EOF/heartbeat silence; verify against the OS
  // before declaring death — an injected disconnect severs a connection
  // while the process is perfectly alive.
  if (wp.pid > 0) {
    int wstatus = 0;
    const pid_t r = ::waitpid(wp.pid, &wstatus, WNOHANG);
    if (r == wp.pid) {
      wp.pid = -1;  // reaped
    } else {
      const double age = transport_->SecondsSinceContact(rank);
      if (age < cfg_.peer_timeout_s) {
        // Alive and recently heard from: spurious report (severed conn).
        transport_->WatchPeer(rank);  // re-arm
        return;
      }
      // Alive but silent past the timeout: treat as hung, make it true.
      ::kill(wp.pid, SIGKILL);
      ::waitpid(wp.pid, &wstatus, 0);
      wp.pid = -1;
    }
  }
  wp.dead = true;
  wp.hello = false;
  degrade_.Record(fault::DegradeEvent::kPeerDeath,
                  "worker r" + std::to_string(rank) + ": " + why);
  if (run_->run != 0 && run_->dead_rank < 0) {
    run_->dead_rank = rank;
    run_->death_why = why;
  }
  run_->cv.notify_all();
}

Status ClusterCoordinator::EnsureWorkersAlive() {
  for (int r = 0; r < cfg_.num_workers; ++r) {
    bool dead;
    {
      std::lock_guard<std::mutex> lk(run_->mu);
      dead = workers_[r].dead;
    }
    if (!dead) continue;
    transport_->DropConnection(r);
    HT_RETURN_IF_ERROR(SpawnWorker(r, /*first_spawn=*/false));
    HT_RETURN_IF_ERROR(WaitForHello(r, 120.0));
    {
      std::lock_guard<std::mutex> lk(run_->mu);
      transport_->SetPeer(r, workers_[r].addr);
      transport_->WatchPeer(r);
    }
    ++respawns_;
    HT_LOG(INFO) << "cluster coordinator: respawned worker r" << r
                 << " (respawn #" << respawns_ << ")";
  }
  return Status::OK();
}

std::string ClusterCoordinator::BuildWeightsPayloadTail() {
  WireWriter w;
  w.U32(static_cast<uint32_t>(cfg_.num_workers));
  {
    std::lock_guard<std::mutex> lk(run_->mu);
    for (int r = 0; r < cfg_.num_workers; ++r) w.Str(workers_[r].addr);
  }
  auto params = model_.AllParams();
  w.U32(static_cast<uint32_t>(params.size()));
  for (Tensor* p : params) {
    w.U64(static_cast<uint64_t>(p->rows()));
    w.U64(static_cast<uint64_t>(p->cols()));
    w.Bytes(p->data(), static_cast<size_t>(p->size()) * sizeof(float));
  }
  return w.Take();
}

Status ClusterCoordinator::BroadcastRun(bool eval, uint64_t run, int64_t epoch,
                                        SplitRole role) {
  const std::string tail = BuildWeightsPayloadTail();
  for (int r = 0; r < cfg_.num_workers; ++r) {
    WireWriter w;
    w.U64(run);
    if (eval) {
      w.U32(static_cast<uint32_t>(role));
    } else {
      w.U64(static_cast<uint64_t>(epoch));
    }
    w.Bytes(tail.data(), tail.size());
    auto cr = transport_->Call(r, eval ? MsgType::kEval : MsgType::kEpoch,
                               w.Take(), cfg_.rpc_deadline_s);
    if (!cr.ok()) {
      return Status::Unavailable("broadcast to worker r" + std::to_string(r) +
                                 " failed: " + cr.status().ToString());
    }
  }
  return Status::OK();
}

Status ClusterCoordinator::WaitRunDone(uint64_t run) {
  std::unique_lock<std::mutex> lk(run_->mu);
  const auto tp = DeadlineTp(cfg_.epoch_deadline_s);
  for (;;) {
    if (run_->dead_rank >= 0) {
      const int r = run_->dead_rank;
      return Status::Unavailable("worker r" + std::to_string(r) +
                                 " died mid-run: " + run_->death_why);
    }
    if (run_->done_count == cfg_.num_workers) return Status::OK();
    if (run_->cv.wait_until(lk, tp) == std::cv_status::timeout) {
      if (run_->done_count == cfg_.num_workers) return Status::OK();
      if (run_->dead_rank >= 0) continue;
      // Watchdog: some worker is wedged past the epoch deadline. Make its
      // death real so the recovery ladder can respawn it.
      std::string wedged;
      for (int r = 0; r < cfg_.num_workers; ++r) {
        if (run_->done[r].received || workers_[r].dead) continue;
        wedged += " r" + std::to_string(r);
        if (workers_[r].pid > 0) {
          ::kill(workers_[r].pid, SIGKILL);
          int wstatus = 0;
          ::waitpid(workers_[r].pid, &wstatus, 0);
          workers_[r].pid = -1;
        }
        workers_[r].dead = true;
        workers_[r].hello = false;
        transport_->UnwatchPeer(r);
        degrade_.Record(fault::DegradeEvent::kPeerDeath,
                        "epoch watchdog killed wedged worker r" +
                            std::to_string(r));
      }
      return Status::Unavailable("epoch watchdog expired (run " +
                                 std::to_string(run) + "), killed:" + wedged);
    }
  }
}

Status ClusterCoordinator::AbortAndRestore(uint64_t run,
                                           const std::string& why) {
  degrade_.Record(fault::DegradeEvent::kEpochRestart, why);
  WireWriter w;
  w.U64(run);
  for (int r = 0; r < cfg_.num_workers; ++r) {
    bool dead;
    {
      std::lock_guard<std::mutex> lk(run_->mu);
      dead = workers_[r].dead;
    }
    if (dead) continue;
    (void)transport_->Notify(r, MsgType::kAbort, w.buf());
  }
  HT_ASSIGN_OR_RETURN(const int64_t ck_epoch, ckpt_->Restore(&model_, &adam_));
  HT_LOG(INFO) << "cluster coordinator: restored checkpoint (epoch "
               << ck_epoch << ") after: " << why;
  return Status::OK();
}

Result<ClusterEpochResult> ClusterCoordinator::RunEpoch() {
  if (shut_down_) return Status::Internal("coordinator is shut down");
  degrade_.ResetEpoch();
  const double t0 = NowS();
  Status last = Status::OK();
  for (int attempt = 0; attempt < cfg_.max_epoch_attempts; ++attempt) {
    HT_RETURN_IF_ERROR(EnsureWorkersAlive());
    const uint64_t run = next_run_++;
    {
      std::lock_guard<std::mutex> lk(run_->mu);
      run_->run = run;
      run_->eval = false;
      run_->done_count = 0;
      run_->dead_rank = -1;
      run_->death_why.clear();
      for (auto& d : run_->done) d = RunState::Done{};
    }
    Status st = BroadcastRun(/*eval=*/false, run, epochs_completed_,
                             SplitRole::kTrain);
    if (st.ok()) st = WaitRunDone(run);
    std::vector<RunState::Done> done;
    if (st.ok()) {
      std::lock_guard<std::mutex> lk(run_->mu);
      done = run_->done;
      for (int r = 0; r < cfg_.num_workers; ++r) {
        if (!done[r].ok) {
          st = Status::Unavailable("worker r" + std::to_string(r) +
                                   " reported epoch failure: " +
                                   done[r].error);
          break;
        }
      }
    }
    if (!st.ok()) {
      last = st;
      HT_LOG(WARNING) << "cluster epoch attempt " << (attempt + 1)
                      << " failed: " << st.ToString();
      HT_RETURN_IF_ERROR(AbortAndRestore(run, st.ToString()));
      continue;
    }
    {
      std::lock_guard<std::mutex> lk(run_->mu);
      run_->run = 0;
    }

    // Deterministic gradient reduction: sum worker contributions in rank
    // order, then one Adam step on the authoritative replica.
    auto grads = model_.AllGrads();
    model_.ZeroGrads();
    for (int r = 0; r < cfg_.num_workers; ++r) {
      if (done[r].grads.size() != grads.size()) {
        return Status::Internal("worker r" + std::to_string(r) +
                                " returned " +
                                std::to_string(done[r].grads.size()) +
                                " gradient tensors, expected " +
                                std::to_string(grads.size()));
      }
      for (size_t gi = 0; gi < grads.size(); ++gi) {
        const std::vector<float>& src = done[r].grads[gi];
        if (static_cast<int64_t>(src.size()) != grads[gi]->size()) {
          return Status::Internal("gradient shape mismatch from worker r" +
                                  std::to_string(r));
        }
        float* dst = grads[gi]->data();
        for (size_t i = 0; i < src.size(); ++i) dst[i] += src[i];
      }
    }
    std::vector<const Tensor*> cgrads(grads.begin(), grads.end());
    HT_RETURN_IF_ERROR(adam_.Step(cgrads));
    ++epochs_completed_;
    HT_RETURN_IF_ERROR(ckpt_->Save(&model_, adam_, epochs_completed_));

    ClusterEpochResult res;
    double n_total = 0;
    for (const auto& d : done) n_total += static_cast<double>(d.n);
    if (n_total > 0) {
      for (const auto& d : done) {
        res.loss += d.loss_sum;
        res.train_accuracy += d.acc_sum;
      }
      res.loss /= n_total;
      res.train_accuracy /= n_total;
    }
    res.wall_seconds = NowS() - t0;
    res.recovery = degrade_.SnapshotEpoch();
    for (const auto& d : done) {
      for (int e = 0; e < fault::kNumDegradeEvents; ++e) {
        res.recovery.counts[e] += d.rec.counts[e];
      }
    }
    return res;
  }
  return Status::Internal("cluster epoch failed after " +
                          std::to_string(cfg_.max_epoch_attempts) +
                          " attempts; last error: " + last.ToString());
}

Result<double> ClusterCoordinator::Evaluate(SplitRole role) {
  if (shut_down_) return Status::Internal("coordinator is shut down");
  Status last = Status::OK();
  for (int attempt = 0; attempt < cfg_.max_epoch_attempts; ++attempt) {
    HT_RETURN_IF_ERROR(EnsureWorkersAlive());
    const uint64_t run = next_run_++;
    {
      std::lock_guard<std::mutex> lk(run_->mu);
      run_->run = run;
      run_->eval = true;
      run_->done_count = 0;
      run_->dead_rank = -1;
      run_->death_why.clear();
      for (auto& d : run_->done) d = RunState::Done{};
    }
    Status st = BroadcastRun(/*eval=*/true, run, 0, role);
    if (st.ok()) st = WaitRunDone(run);
    uint64_t correct = 0, total = 0;
    if (st.ok()) {
      std::lock_guard<std::mutex> lk(run_->mu);
      for (int r = 0; r < cfg_.num_workers; ++r) {
        const RunState::Done& d = run_->done[r];
        if (!d.ok) {
          st = Status::Unavailable("worker r" + std::to_string(r) +
                                   " reported eval failure: " + d.error);
          break;
        }
        correct += d.correct;
        total += d.total;
      }
    }
    {
      std::lock_guard<std::mutex> lk(run_->mu);
      run_->run = 0;
    }
    if (!st.ok()) {
      last = st;
      WireWriter w;
      w.U64(run);
      for (int r = 0; r < cfg_.num_workers; ++r) {
        (void)transport_->Notify(r, MsgType::kAbort, w.buf());
      }
      continue;
    }
    return total == 0 ? 0.0
                      : static_cast<double>(correct) /
                            static_cast<double>(total);
  }
  return Status::Internal("cluster eval failed after " +
                          std::to_string(cfg_.max_epoch_attempts) +
                          " attempts; last error: " + last.ToString());
}

void ClusterCoordinator::Shutdown() {
  if (run_ == nullptr) {
    // Start failed before any worker was spawned; only the scratch dir
    // needs cleaning.
    if (owns_runtime_dir_ && !shut_down_) RemoveDirShallow(cfg_.runtime_dir);
    shut_down_ = true;
    return;
  }
  {
    std::lock_guard<std::mutex> lk(run_->mu);
    if (shut_down_) return;
    shut_down_ = true;  // under run_->mu: OnPeerDeath reads it there
  }
  if (transport_ != nullptr) {
    for (int r = 0; r < static_cast<int>(workers_.size()); ++r) {
      transport_->UnwatchPeer(r);
    }
    for (int r = 0; r < static_cast<int>(workers_.size()); ++r) {
      bool alive;
      {
        std::lock_guard<std::mutex> lk(run_->mu);
        alive = !workers_[r].dead && workers_[r].pid > 0;
      }
      if (alive) (void)transport_->Notify(r, MsgType::kShutdown, "");
    }
  }
  // Grace period, then force: never leak worker processes.
  const double t_end = NowS() + 3.0;
  for (;;) {
    bool any = false;
    for (auto& wp : workers_) {
      if (wp.pid <= 0) continue;
      int wstatus = 0;
      if (::waitpid(wp.pid, &wstatus, WNOHANG) == wp.pid) {
        wp.pid = -1;
      } else {
        any = true;
      }
    }
    if (!any || NowS() >= t_end) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  for (auto& wp : workers_) {
    if (wp.pid <= 0) continue;
    ::kill(wp.pid, SIGKILL);
    int wstatus = 0;
    ::waitpid(wp.pid, &wstatus, 0);
    wp.pid = -1;
  }
  if (transport_ != nullptr) transport_->Shutdown();
  if (owns_runtime_dir_) RemoveDirShallow(cfg_.runtime_dir);
}

}  // namespace net
}  // namespace hongtu
