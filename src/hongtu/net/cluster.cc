#include "hongtu/net/cluster.h"

#include <dirent.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <utility>

#include "hongtu/comm/dedup_plan.h"
#include "hongtu/comm/reorganize.h"
#include "hongtu/common/logging.h"
#include "hongtu/gnn/layer.h"
#include "hongtu/gnn/loss.h"
#include "hongtu/kernels/backend.h"
#include "hongtu/net/wire.h"
#include "hongtu/partition/two_level.h"

extern char** environ;

namespace hongtu {
namespace net {

namespace {

// ---- Bit-exact text encoding for the HONGTU_DIST_CONFIG env contract. ------

std::string U64Hex(uint64_t v) {
  char b[20];
  std::snprintf(b, sizeof(b), "%016llx", static_cast<unsigned long long>(v));
  return b;
}

uint64_t HexU64(const std::string& s) {
  return std::strtoull(s.c_str(), nullptr, 16);
}

std::string F64Hex(double d) {
  uint64_t bits;
  std::memcpy(&bits, &d, sizeof(bits));
  return U64Hex(bits);
}

double HexF64(const std::string& s) {
  const uint64_t bits = HexU64(s);
  double d;
  std::memcpy(&d, &bits, sizeof(d));
  return d;
}

std::string F32Hex(float f) {
  uint32_t bits;
  std::memcpy(&bits, &f, sizeof(bits));
  char b[12];
  std::snprintf(b, sizeof(b), "%08x", bits);
  return b;
}

float HexF32(const std::string& s) {
  const uint32_t bits = static_cast<uint32_t>(HexU64(s));
  float f;
  std::memcpy(&f, &bits, sizeof(f));
  return f;
}

std::vector<std::string> Split(const std::string& s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (;;) {
    const size_t p = s.find(sep, start);
    if (p == std::string::npos) {
      out.push_back(s.substr(start));
      return out;
    }
    out.push_back(s.substr(start, p - start));
    start = p + 1;
  }
}

constexpr int64_t kNoKillEpoch = -1;

double NowS() { return MonotonicSeconds(); }

std::chrono::steady_clock::time_point DeadlineTp(double budget_s) {
  return std::chrono::steady_clock::now() +
         std::chrono::duration_cast<std::chrono::steady_clock::duration>(
             std::chrono::duration<double>(budget_s));
}

/// Best-effort removal of a flat scratch directory (sockets, checkpoints).
void RemoveDirShallow(const std::string& dir) {
  DIR* d = ::opendir(dir.c_str());
  if (d != nullptr) {
    while (struct dirent* e = ::readdir(d)) {
      const std::string name = e->d_name;
      if (name == "." || name == "..") continue;
      ::unlink((dir + "/" + name).c_str());
    }
    ::closedir(d);
  }
  ::rmdir(dir.c_str());
}

// ---- Graceful SIGTERM ------------------------------------------------------
//
// Workers and coordinator install the same async-signal-safe flag setter;
// their command/wait loops tick every few hundred ms and drain out cleanly
// (pending RPC replies flush, children are reaped) instead of dying mid-write.

std::atomic<bool> g_sigterm{false};

void SigtermHandler(int) { g_sigterm.store(true, std::memory_order_relaxed); }

void InstallSigtermHandler() {
  struct sigaction sa = {};
  sa.sa_handler = SigtermHandler;
  ::sigemptyset(&sa.sa_mask);
  ::sigaction(SIGTERM, &sa, nullptr);
}

bool SigtermRequested() {
  return g_sigterm.load(std::memory_order_relaxed);
}

/// True when `pid` is certainly gone. Reaps it when it is our zombie child
/// (an in-process coordinator restart keeps the workers as children of this
/// process, where kill(pid, 0) alone would call a zombie alive forever); a
/// re-attached worker inherited from a previous coordinator process is not
/// our child, so ECHILD falls back to the signal-0 probe.
bool ProbePidDead(pid_t pid) {
  int ws = 0;
  const pid_t r = ::waitpid(pid, &ws, WNOHANG);
  if (r == pid) return true;
  if (r < 0 && errno == ECHILD) {
    return ::kill(pid, 0) != 0 && errno == ESRCH;
  }
  return false;  // still running (our child), or transient waitpid error
}

/// SIGKILL + wait until the process is gone, whether or not it is a child.
void KillPidAndWait(pid_t pid) {
  ::kill(pid, SIGKILL);
  int ws = 0;
  const pid_t r = ::waitpid(pid, &ws, 0);
  if (r < 0 && errno == ECHILD) {
    const double t_end = NowS() + 2.0;
    while (NowS() < t_end && ::kill(pid, 0) == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
}

}  // namespace

bool IsCoordinatorCommand(MsgType type) {
  switch (type) {
    case MsgType::kEpoch:
    case MsgType::kEval:
    case MsgType::kShutdown:
    case MsgType::kAbort:
    case MsgType::kPeerUpdate:
    case MsgType::kAdoptPartition:
    case MsgType::kCoordUpdate:
      return true;
    default:
      return false;
  }
}

Status CheckCoordinatorTerm(uint64_t frame_term, uint64_t* known_term) {
  if (frame_term < *known_term) {
    return Status::Invalid("stale coordinator term " +
                           std::to_string(frame_term) + " (current " +
                           std::to_string(*known_term) + "): command fenced");
  }
  *known_term = frame_term;
  return Status::OK();
}

std::string EncodeClusterConfig(const ClusterConfig& c) {
  std::string dims;
  for (size_t i = 0; i < c.model_dims.size(); ++i) {
    if (i > 0) dims += '|';
    dims += std::to_string(c.model_dims[i]);
  }
  const std::pair<const char*, std::string> kv[] = {
      {"transport", c.transport},
      {"workers", std::to_string(c.num_workers)},
      {"ds", c.dataset},
      {"scale", F64Hex(c.dataset_scale)},
      {"dseed", U64Hex(c.dataset_seed)},
      {"kind", std::to_string(static_cast<int>(c.model_kind))},
      {"dims", dims},
      {"mseed", U64Hex(c.model_seed)},
      {"chunks", std::to_string(c.chunks_per_partition)},
      {"dedup", std::to_string(c.dedup_level)},
      {"reorg", c.reorganize ? "1" : "0"},
      {"pseed", U64Hex(c.partition_seed)},
      {"wire", std::to_string(static_cast<int>(c.wire))},
      {"lr", F32Hex(c.adam.lr)},
      {"b1", F32Hex(c.adam.beta1)},
      {"b2", F32Hex(c.adam.beta2)},
      {"eps", F32Hex(c.adam.eps)},
      {"wd", F32Hex(c.adam.weight_decay)},
      {"dir", c.runtime_dir},
      {"ckdir", c.checkpoint_dir},
      {"hb", F64Hex(c.heartbeat_interval_s)},
      {"pto", F64Hex(c.peer_timeout_s)},
      {"rpc", F64Hex(c.rpc_deadline_s)},
      {"edl", F64Hex(c.epoch_deadline_s)},
      {"rmode", c.recover_mode},
      {"grace", F64Hex(c.recovery_grace_s)},
      {"lease", F64Hex(c.coord_lease_s)},
  };
  std::string out;
  for (const auto& p : kv) {
    if (!out.empty()) out += ';';
    out += p.first;
    out += '=';
    out += p.second;
  }
  return out;
}

Result<ClusterConfig> DecodeClusterConfig(const std::string& s) {
  ClusterConfig c;
  c.model_dims.clear();
  for (const std::string& clause : Split(s, ';')) {
    if (clause.empty()) continue;
    const size_t eq = clause.find('=');
    if (eq == std::string::npos) {
      return Status::Invalid("cluster config clause without '=': " + clause);
    }
    const std::string k = clause.substr(0, eq);
    const std::string v = clause.substr(eq + 1);
    if (k == "transport") c.transport = v;
    else if (k == "workers") c.num_workers = std::atoi(v.c_str());
    else if (k == "ds") c.dataset = v;
    else if (k == "scale") c.dataset_scale = HexF64(v);
    else if (k == "dseed") c.dataset_seed = HexU64(v);
    else if (k == "kind") c.model_kind = static_cast<GnnKind>(std::atoi(v.c_str()));
    else if (k == "dims") {
      for (const std::string& d : Split(v, '|')) {
        if (!d.empty()) c.model_dims.push_back(std::atoi(d.c_str()));
      }
    } else if (k == "mseed") c.model_seed = HexU64(v);
    else if (k == "chunks") c.chunks_per_partition = std::atoi(v.c_str());
    else if (k == "dedup") c.dedup_level = std::atoi(v.c_str());
    else if (k == "reorg") c.reorganize = (v == "1");
    else if (k == "pseed") c.partition_seed = HexU64(v);
    else if (k == "wire")
      c.wire = static_cast<kernels::CommPrecision>(std::atoi(v.c_str()));
    else if (k == "lr") c.adam.lr = HexF32(v);
    else if (k == "b1") c.adam.beta1 = HexF32(v);
    else if (k == "b2") c.adam.beta2 = HexF32(v);
    else if (k == "eps") c.adam.eps = HexF32(v);
    else if (k == "wd") c.adam.weight_decay = HexF32(v);
    else if (k == "dir") c.runtime_dir = v;
    else if (k == "ckdir") c.checkpoint_dir = v;
    else if (k == "hb") c.heartbeat_interval_s = HexF64(v);
    else if (k == "pto") c.peer_timeout_s = HexF64(v);
    else if (k == "rpc") c.rpc_deadline_s = HexF64(v);
    else if (k == "edl") c.epoch_deadline_s = HexF64(v);
    else if (k == "rmode") c.recover_mode = v;
    else if (k == "grace") c.recovery_grace_s = HexF64(v);
    else if (k == "lease") c.coord_lease_s = HexF64(v);
    // Unknown keys ignored: older workers tolerate newer coordinators.
  }
  if (c.dataset.empty()) return Status::Invalid("cluster config missing ds=");
  if (c.model_dims.size() < 2) {
    return Status::Invalid("cluster config needs dims= with >= 2 entries");
  }
  if (c.num_workers < 1) return Status::Invalid("cluster config workers < 1");
  return c;
}

// ============================================================================
// Worker
// ============================================================================

namespace {

class RankState;

/// One worker process: the process shell. Rebuilds the shared training
/// problem (dataset, partition, dedup plan) from the env contract, owns the
/// transport and the process-wide peer-address cache, and hosts one or more
/// `RankState`s: its own rank always (`primary_`), plus any dead partitions
/// it adopted for the current run (`adopted_`). Every peer-visible payload
/// carries an explicit owner rank, so requests are routed to the right
/// hosted state regardless of which process serves them.
class ClusterWorker {
 public:
  int Run();

 private:
  friend class RankState;

  Status Init();
  void MainLoop();
  void OnRequest(Transport::Request&& req);
  void RunEpochCmd(const std::string& payload);
  void RunEvalCmd(const std::string& payload);
  void HandlePeerUpdate(Transport::Request& req);
  void HandleAdopt(Transport::Request& req);
  void HandleCoordUpdate(Transport::Request& req);
  /// True while a parked worker's coordinator lease is still open: the
  /// coordinator is known dead but a successor may still appear. Report
  /// retry loops keep trying through this window.
  bool InCoordLease() const {
    const double dead = coord_dead_since_.load(std::memory_order_relaxed);
    return dead > 0.0 && NowS() < dead + cfg_.coord_lease_s;
  }
  /// The hosted state for `owner`: the primary rank or an adopted one.
  /// nullptr when this process does not (yet) host that rank.
  std::shared_ptr<RankState> FindState(int owner);
  /// Redirects a peer rank to a new address (no-op when unchanged).
  void UpdatePeer(int peer, const std::string& addr);
  /// Extends the process-wide recovery grace window to now + grace.
  void ExtendGrace();
  double grace_until() const {
    return grace_until_.load(std::memory_order_relaxed);
  }
  /// Aborts, joins and discards every adopted rank (they belong to a
  /// finished or aborted run; the real process takes over next epoch).
  void ClearAdopted(uint64_t abort_upto);

  int rank_ = -1;
  int W_ = 0;
  int coord_ = 0;  ///< coordinator rank = W_
  int L_ = 0;
  int n_ = 0;
  int64_t V_ = 0;
  int64_t kill_epoch_ = kNoKillEpoch;
  bool kill_on_recover_ = false;
  std::atomic<bool> kill_fired_{false};
  ClusterConfig cfg_;
  Dataset ds_;
  TwoLevelPartition tl_;
  DedupPlan plan_;
  std::unique_ptr<Transport> transport_;
  kernels::Backend kb_ = kernels::Backend::kReference;
  bool packed_ = false;
  int64_t elem_bytes_ = 4;
  std::vector<int> dims_;
  int64_t global_train_ = 0;

  std::mutex pmu_;
  std::condition_variable pcv_;
  std::deque<Frame> cmds_;
  std::vector<std::string> peer_addrs_;  ///< under pmu_
  struct Adopted {
    std::shared_ptr<RankState> state;
    std::thread thread;
  };
  std::map<int, Adopted> adopted_;  ///< under pmu_
  std::shared_ptr<RankState> primary_;
  /// Wall-clock (NowS) until which waits may overstay their budget because
  /// a peer is being recovered. 0 when no recovery is in flight.
  std::atomic<double> grace_until_{0.0};
  /// Highest coordinator term seen (fencing word); mirrored into the
  /// transport so this worker's own frames carry it.
  std::atomic<uint64_t> coord_term_{0};
  /// NowS() when the coordinator was declared dead; 0 while it is alive.
  /// Set by the transport death callback (park), cleared by the first
  /// term-valid coordinator command (re-attach).
  std::atomic<double> coord_dead_since_{0.0};
};

/// Per-hosted-rank training state and replay logs. A process usually hosts
/// exactly one (its own rank); after `kAdoptPartition` it hosts a survivor
/// copy of a dead rank too. All peer-visible state lives behind `mu_`,
/// shared between the step loop and the connection reader threads.
///
/// Replay contract: `fetch_log_` keeps, for every published step, the exact
/// serialized response each expected fetcher would receive — written at
/// PUBLISH time, so serving never reads the live transition slots and a
/// recovering peer can re-fetch any step of the epoch bit-identically.
/// `push_out_log_` keeps every outbound gradient push so a recovering
/// destination can re-pull what was already delivered (`kFetchPush`).
/// Both logs retain the full epoch (memory ~ one epoch of communication
/// volume) and reset at the next run.
class RankState {
 public:
  RankState(ClusterWorker* host, int rank);

  /// Builds the per-rank problem: model replica, fetcher lists, own train
  /// vertices, activation/gradient buffers.
  Status Prepare();

  void ExecuteEpoch(uint64_t run, int64_t epoch, bool recover,
                    const std::string& tail);
  void ExecuteEval(uint64_t run, SplitRole role, const std::string& tail);
  void Abort(uint64_t run);

  void HandleFetch(Transport::Request& req, uint64_t run, int64_t step,
                   int requester);
  void HandlePush(Transport::Request& req, uint64_t run, int64_t step,
                  int sender, std::string body);
  void HandleSyncState(Transport::Request& req, uint64_t run, int asker);
  void HandleFetchPush(Transport::Request& req, uint64_t run, int64_t step,
                       int asker);

  /// The run currently executing (0 when idle). A re-attaching coordinator
  /// asks for it to decide whether this rank must rejoin a resumed run.
  uint64_t current_run() {
    std::lock_guard<std::mutex> lk(mu_);
    return cur_run_;
  }
  /// Records a degrade event into this rank's epoch counters (they travel
  /// to the coordinator inside the kEpochDone report).
  void RecordDegrade(fault::DegradeEvent e, const std::string& detail) {
    degrade_.Record(e, detail);
  }

 private:
  Status SetupRun(WireReader* r);
  Status SyncRecoveryFloors(uint64_t run);
  Status TrainEpoch(uint64_t run, int64_t epoch);
  Status ForwardPhase(uint64_t run);
  Status DoStep(uint64_t run, int64_t s, int l, int j, bool backward);
  Status PublishStep(uint64_t run, int64_t s, int l, int j);
  Status FetchNeighbors(uint64_t run, int64_t s, int l, int j);
  Status PushApplyFlush(uint64_t run, int64_t s, int l, int j);
  Status ComputeLossAndSeed();

  /// Retries `fn` while its failure is transient: one RetryTransient burst
  /// per pass (policy derived from fault::DefaultRetryPolicy), then keeps
  /// going only while the recovery grace window is open.
  Status RetryRpc(const char* site, const std::function<Status()>& fn);
  /// Caller holds lk(mu_). Waits for pred with a budget that stretches to
  /// the recovery grace window; Internal on abort, Unavailable on timeout.
  Status WaitCond(std::unique_lock<std::mutex>& lk, double budget_s,
                  const std::function<bool()>& pred, const std::string& what);
  double AttemptDeadlineS() const {
    return std::min(cfg_.rpc_deadline_s, std::max(cfg_.peer_timeout_s, 0.5));
  }

  // Step index mapping: forward steps are l*n+j, backward steps continue at
  // L*n with layers descending; all workers iterate the identical sequence.
  int LayerOf(int64_t s) const {
    const int64_t fwd = static_cast<int64_t>(L_) * n_;
    return s < fwd ? static_cast<int>(s / n_)
                   : static_cast<int>(L_ - 1 - (s - fwd) / n_);
  }
  int BatchOf(int64_t s) const { return static_cast<int>(s % n_); }
  int64_t PayloadCols(int dim) const { return packed_ ? (dim + 1) / 2 : dim; }
  size_t RowBytes(int dim) const {
    return static_cast<size_t>(dim) * static_cast<size_t>(elem_bytes_);
  }
  const Tensor& HIn(int l) const { return l == 0 ? ds_.features : h_[l]; }

  /// Serializes the requester's owner-group rows out of the transition
  /// buffer. Caller holds mu_; the buffer holds the step being published.
  std::string BuildFetchPayload(int requester, int64_t step) const;

  ClusterWorker* host_;
  const int rank_;
  const int W_;
  const int coord_;
  const int L_;
  const int n_;
  const int64_t V_;
  const int64_t kill_epoch_;
  const ClusterConfig& cfg_;
  const Dataset& ds_;
  const TwoLevelPartition& tl_;
  const DedupPlan& plan_;
  Transport* transport_;
  const kernels::Backend kb_;
  const bool packed_;
  const int64_t elem_bytes_;
  const std::vector<int> dims_;
  const int64_t global_train_;

  GnnModel model_;
  fault::DegradationPolicy degrade_;
  /// Per batch j: peers that fetch from (and push gradients to) this rank.
  std::vector<std::vector<int>> fetchers_;
  std::vector<VertexId> own_train_;
  std::vector<Tensor> h_;     ///< h_[l] for l >= 1 (l == 0 is ds_.features)
  std::vector<Tensor> grad_;  ///< gradient wrt h^l, |V| x dims[l]
  Tensor trans_;              ///< transition buffer (wire-encoded payload)
  Tensor tgrad_;              ///< transition gradients, fp32 accumulators
  Tensor nb_, dst_h_, d_dst_, d_src_;
  double loss_sum_ = 0.0, acc_sum_ = 0.0;
  int64_t n_own_ = 0;

  std::mutex mu_;
  std::condition_variable cv_;
  uint64_t cur_run_ = 0;
  uint64_t max_aborted_run_ = 0;
  bool abort_cur_ = false;
  int64_t published_step_ = -1;
  int64_t applied_step_ = -1;
  std::map<std::pair<int64_t, int>, std::string> pushes_;  ///< (step, sender)
  /// (step, fetcher) -> the exact serialized fetch response, logged when the
  /// step is published. Serving reads only this, never the live slots.
  std::map<std::pair<int64_t, int>, std::string> fetch_log_;
  /// (step, destination) -> raw outbound gradient rows, logged before send.
  std::map<std::pair<int64_t, int>, std::string> push_out_log_;
  /// Highest step successfully pushed to each destination this run.
  std::vector<int64_t> push_hi_;
  /// Recovery floors (replay only): highest step each peer had already
  /// pushed to this rank's dead incarnation — those will not arrive live
  /// and are re-pulled via kFetchPush instead.
  std::vector<int64_t> push_floor_;
};

// ---- ClusterWorker: process shell -----------------------------------------

int ClusterWorker::Run() {
  // Coordinator death no longer kills the worker outright (the old
  // PDEATHSIG contract): the worker parks under the coordinator lease and
  // re-attaches to a restarted coordinator; orphans self-expire instead.
  InstallSigtermHandler();
  const Status st = Init();
  if (!st.ok()) {
    HT_LOG(ERROR) << "cluster worker failed to start: " << st.ToString();
    return 1;
  }
  HT_LOG(INFO) << "cluster worker r" << rank_ << " up at "
               << transport_->bound_addr() << " (pid " << ::getpid() << ")";
  MainLoop();
  ClearAdopted(~0ULL);
  transport_->Shutdown();
  return 0;
}

Status ClusterWorker::Init() {
  const char* rank_s = std::getenv(kEnvDistRank);
  const char* coord_s = std::getenv(kEnvDistCoord);
  const char* cfg_s = std::getenv(kEnvDistConfig);
  if (rank_s == nullptr || coord_s == nullptr || cfg_s == nullptr) {
    return Status::Invalid(
        "worker role needs HONGTU_DIST_RANK/COORD/CONFIG set");
  }
  rank_ = std::atoi(rank_s);
  HT_ASSIGN_OR_RETURN(cfg_, DecodeClusterConfig(cfg_s));
  W_ = cfg_.num_workers;
  coord_ = W_;
  if (rank_ < 0 || rank_ >= W_) {
    return Status::Invalid("worker rank out of range: " + std::string(rank_s));
  }
  if (const char* ke = std::getenv(kEnvDistKillEpoch)) {
    kill_epoch_ = std::atoll(ke);
  }
  if (const char* kr = std::getenv(kEnvDistKillOnRecover)) {
    kill_on_recover_ = kr[0] != '\0' && kr[0] != '0';
  }

  // Rebuild the exact training problem from provenance — the graph itself
  // never crosses the wire.
  HT_ASSIGN_OR_RETURN(
      ds_, LoadDatasetScaled(cfg_.dataset, cfg_.dataset_scale,
                             cfg_.dataset_seed));
  V_ = ds_.graph.num_vertices();
  L_ = static_cast<int>(cfg_.model_dims.size()) - 1;
  dims_ = cfg_.model_dims;

  TwoLevelOptions topts;
  topts.metis.seed = cfg_.partition_seed;
  HT_ASSIGN_OR_RETURN(
      tl_, BuildTwoLevelPartition(ds_.graph, W_, cfg_.chunks_per_partition,
                                  topts));
  const DedupLevel level = static_cast<DedupLevel>(cfg_.dedup_level);
  if (level == DedupLevel::kNone) {
    return Status::Invalid(
        "cluster backend requires owner-grouped transition buffers "
        "(dedup kP2P or kP2PReuse)");
  }
  if (cfg_.reorganize) {
    HT_RETURN_IF_ERROR(ReorganizePartition(&tl_).status());
  }
  HT_ASSIGN_OR_RETURN(plan_, BuildDedupPlan(tl_, level));
  n_ = plan_.num_chunks;

  kb_ = kernels::ActiveBackend();
  packed_ = cfg_.wire != kernels::CommPrecision::kFp32;
  elem_bytes_ = kernels::CommElemBytes(cfg_.wire);

  for (int64_t v = 0; v < V_; ++v) {
    if (ds_.split[v] == SplitRole::kTrain) ++global_train_;
  }

  peer_addrs_.assign(W_, "");

  Transport::Options topt;
  topt.rank = rank_;
  topt.heartbeat_interval_s = cfg_.heartbeat_interval_s;
  topt.peer_timeout_s = cfg_.peer_timeout_s;
  topt.io_deadline_s = cfg_.rpc_deadline_s;
  transport_.reset(new Transport(topt));
  transport_->set_handler(
      [this](Transport::Request&& req) { OnRequest(std::move(req)); });
  transport_->set_death_callback([this](int rank, const std::string& why) {
    if (rank != coord_) return;
    HT_LOG(WARNING) << "worker r" << rank_ << ": coordinator lost (" << why
                    << ") — parking for up to " << cfg_.coord_lease_s << "s";
    LogRecoveryEvent("coord_park", coord_term_.load(std::memory_order_relaxed),
                     rank_, 0.0, why);
    coord_dead_since_.store(NowS(), std::memory_order_relaxed);
    pcv_.notify_all();
  });
  std::string listen_addr;
  if (cfg_.transport == "uds") {
    listen_addr = "uds:" + cfg_.runtime_dir + "/w" + std::to_string(rank_) +
                  "." + std::to_string(::getpid()) + ".sock";
  } else {
    listen_addr = "tcp:127.0.0.1:0";
  }
  HT_RETURN_IF_ERROR(transport_->Listen(listen_addr));
  transport_->SetPeer(coord_, coord_s);
  // Self-dial: an adopted rank hosted here fetches from the primary rank
  // (and vice versa) over the same transport path as any remote peer.
  transport_->SetPeer(rank_, transport_->bound_addr());
  peer_addrs_[rank_] = transport_->bound_addr();

  primary_.reset(new RankState(this, rank_));
  HT_RETURN_IF_ERROR(primary_->Prepare());

  WireWriter hello;
  hello.U32(static_cast<uint32_t>(rank_));
  hello.Str(transport_->bound_addr());
  hello.U64(static_cast<uint64_t>(::getpid()));
  HT_ASSIGN_OR_RETURN(
      const std::string hr,
      transport_->Call(coord_, MsgType::kHello, hello.Take(), 30.0));
  // The hello ack advertises the coordinator's fencing term.
  if (!hr.empty()) {
    WireReader rr(hr);
    auto term_r = rr.U64();
    if (term_r.ok()) {
      coord_term_.store(term_r.ValueOrDie(), std::memory_order_relaxed);
      transport_->set_term(term_r.ValueOrDie());
    }
  }
  transport_->StartHeartbeatTo(coord_);
  // Watch the coordinator back (it heartbeats us): silence or connection
  // EOF parks this worker instead of leaving it wedged on a dead peer.
  transport_->WatchPeer(coord_);
  return Status::OK();
}

void ClusterWorker::MainLoop() {
  for (;;) {
    Frame cmd;
    {
      std::unique_lock<std::mutex> lk(pmu_);
      while (cmds_.empty()) {
        pcv_.wait_for(lk, std::chrono::milliseconds(200));
        if (SigtermRequested()) {
          HT_LOG(INFO) << "cluster worker r" << rank_
                       << ": SIGTERM — draining and exiting";
          return;
        }
        const double dead = coord_dead_since_.load(std::memory_order_relaxed);
        if (dead > 0.0 && NowS() >= dead + cfg_.coord_lease_s) {
          HT_LOG(WARNING) << "cluster worker r" << rank_
                          << ": coordinator lease expired ("
                          << cfg_.coord_lease_s << "s with no successor) — "
                          << "exiting";
          return;
        }
      }
      cmd = std::move(cmds_.front());
      cmds_.pop_front();
    }
    if (SigtermRequested()) {
      HT_LOG(INFO) << "cluster worker r" << rank_
                   << ": SIGTERM — draining and exiting";
      return;
    }
    switch (cmd.type) {
      case MsgType::kShutdown:
        HT_LOG(INFO) << "cluster worker r" << rank_ << " shutting down";
        return;
      case MsgType::kEpoch:
        RunEpochCmd(cmd.payload);
        break;
      case MsgType::kEval:
        RunEvalCmd(cmd.payload);
        break;
      default:
        HT_LOG(WARNING) << "worker r" << rank_ << ": unexpected command "
                        << MsgTypeName(cmd.type);
        break;
    }
  }
}

void ClusterWorker::OnRequest(Transport::Request&& req) {
  if (IsCoordinatorCommand(req.frame.type)) {
    // Term fencing: reject commands from a superseded coordinator
    // incarnation (non-transient, so its retry loop gives up immediately)
    // and adopt a successor's newer term.
    uint64_t known = coord_term_.load(std::memory_order_relaxed);
    const Status fence = CheckCoordinatorTerm(req.frame.term, &known);
    if (!fence.ok()) {
      HT_LOG(WARNING) << "worker r" << rank_ << ": fenced "
                      << MsgTypeName(req.frame.type) << ": "
                      << fence.ToString();
      req.reply_error(fence);
      return;
    }
    uint64_t cur = coord_term_.load(std::memory_order_relaxed);
    while (cur < known &&
           !coord_term_.compare_exchange_weak(cur, known,
                                              std::memory_order_relaxed)) {
    }
    if (transport_->term() < known) transport_->set_term(known);
    // Any term-valid coordinator command proves the coordinator (or its
    // successor) is alive: leave the parked state and re-arm the watch.
    const double parked =
        coord_dead_since_.exchange(0.0, std::memory_order_relaxed);
    if (parked > 0.0) {
      transport_->WatchPeer(coord_);
      LogRecoveryEvent("coord_reattach", known, rank_, NowS() - parked,
                       std::string("via ") + MsgTypeName(req.frame.type));
    }
  }
  switch (req.frame.type) {
    case MsgType::kCoordUpdate:
      HandleCoordUpdate(req);
      return;
    case MsgType::kEpoch:
    case MsgType::kEval:
    case MsgType::kShutdown: {
      // Long commands: ack now, execute on the main thread.
      {
        std::lock_guard<std::mutex> lk(pmu_);
        cmds_.push_back(std::move(req.frame));
      }
      pcv_.notify_all();
      req.reply(MsgType::kAck, "");
      return;
    }
    case MsgType::kAbort: {
      WireReader r(req.frame.payload);
      auto run = r.U64();
      if (!run.ok()) {
        req.reply_error(run.status());
        return;
      }
      primary_->Abort(run.ValueOrDie());
      std::vector<std::shared_ptr<RankState>> extra;
      {
        std::lock_guard<std::mutex> lk(pmu_);
        for (auto& kv : adopted_) extra.push_back(kv.second.state);
      }
      for (auto& s : extra) s->Abort(run.ValueOrDie());
      req.reply(MsgType::kAck, "");
      return;
    }
    case MsgType::kFetchRows: {
      WireReader r(req.frame.payload);
      auto run_r = r.U64();
      auto step_r = r.U32();
      auto owner_r = r.U32();
      auto req_r = r.U32();
      if (!run_r.ok() || !step_r.ok() || !owner_r.ok() || !req_r.ok()) {
        req.reply_error(Status::DataLoss("malformed kFetchRows payload"));
        return;
      }
      const int owner = static_cast<int>(owner_r.ValueOrDie());
      const int requester = static_cast<int>(req_r.ValueOrDie());
      if (owner < 0 || owner >= W_ || requester < 0 || requester >= W_) {
        req.reply_error(Status::Invalid("fetch names an unknown rank"));
        return;
      }
      auto st = FindState(owner);
      if (st == nullptr) {
        // Transient by design: during an adoption handoff the requester
        // retries until the new host registers the rank.
        req.reply_error(Status::Unavailable(
            "rank r" + std::to_string(owner) + " is not hosted here"));
        return;
      }
      st->HandleFetch(req, run_r.ValueOrDie(),
                      static_cast<int64_t>(step_r.ValueOrDie()), requester);
      return;
    }
    case MsgType::kGradPush: {
      WireReader r(req.frame.payload);
      auto run_r = r.U64();
      auto step_r = r.U32();
      auto owner_r = r.U32();
      auto snd_r = r.U32();
      if (!run_r.ok() || !step_r.ok() || !owner_r.ok() || !snd_r.ok()) {
        req.reply_error(Status::DataLoss("malformed kGradPush payload"));
        return;
      }
      const int owner = static_cast<int>(owner_r.ValueOrDie());
      const int sender = static_cast<int>(snd_r.ValueOrDie());
      if (owner < 0 || owner >= W_ || sender < 0 || sender >= W_) {
        req.reply_error(Status::Invalid("push names an unknown rank"));
        return;
      }
      auto st = FindState(owner);
      if (st == nullptr) {
        req.reply_error(Status::Unavailable(
            "rank r" + std::to_string(owner) + " is not hosted here"));
        return;
      }
      // The remainder after {run u64, step u32, owner u32, sender u32} is
      // the raw gradient row block.
      st->HandlePush(req, run_r.ValueOrDie(),
                     static_cast<int64_t>(step_r.ValueOrDie()), sender,
                     req.frame.payload.substr(20));
      return;
    }
    case MsgType::kSyncState: {
      WireReader r(req.frame.payload);
      auto run_r = r.U64();
      auto owner_r = r.U32();
      auto asker_r = r.U32();
      if (!run_r.ok() || !owner_r.ok() || !asker_r.ok()) {
        req.reply_error(Status::DataLoss("malformed kSyncState payload"));
        return;
      }
      const int owner = static_cast<int>(owner_r.ValueOrDie());
      const int asker = static_cast<int>(asker_r.ValueOrDie());
      if (owner < 0 || owner >= W_ || asker < 0 || asker >= W_) {
        req.reply_error(Status::Invalid("sync_state names an unknown rank"));
        return;
      }
      auto st = FindState(owner);
      if (st == nullptr) {
        req.reply_error(Status::Unavailable(
            "rank r" + std::to_string(owner) + " is not hosted here"));
        return;
      }
      st->HandleSyncState(req, run_r.ValueOrDie(), asker);
      return;
    }
    case MsgType::kFetchPush: {
      WireReader r(req.frame.payload);
      auto run_r = r.U64();
      auto step_r = r.U32();
      auto owner_r = r.U32();
      auto asker_r = r.U32();
      if (!run_r.ok() || !step_r.ok() || !owner_r.ok() || !asker_r.ok()) {
        req.reply_error(Status::DataLoss("malformed kFetchPush payload"));
        return;
      }
      const int owner = static_cast<int>(owner_r.ValueOrDie());
      const int asker = static_cast<int>(asker_r.ValueOrDie());
      if (owner < 0 || owner >= W_ || asker < 0 || asker >= W_) {
        req.reply_error(Status::Invalid("fetch_push names an unknown rank"));
        return;
      }
      auto st = FindState(owner);
      if (st == nullptr) {
        req.reply_error(Status::Unavailable(
            "rank r" + std::to_string(owner) + " is not hosted here"));
        return;
      }
      st->HandleFetchPush(req, run_r.ValueOrDie(),
                          static_cast<int64_t>(step_r.ValueOrDie()), asker);
      return;
    }
    case MsgType::kPeerUpdate:
      HandlePeerUpdate(req);
      return;
    case MsgType::kAdoptPartition:
      HandleAdopt(req);
      return;
    default:
      req.reply_error(Status::Invalid(std::string("worker: unexpected ") +
                                      MsgTypeName(req.frame.type)));
      return;
  }
}

std::shared_ptr<RankState> ClusterWorker::FindState(int owner) {
  if (owner == rank_) return primary_;
  std::lock_guard<std::mutex> lk(pmu_);
  auto it = adopted_.find(owner);
  return it == adopted_.end() ? nullptr : it->second.state;
}

void ClusterWorker::UpdatePeer(int peer, const std::string& addr) {
  std::lock_guard<std::mutex> lk(pmu_);
  if (peer < 0 || peer >= W_ || peer_addrs_[peer] == addr) return;
  // A recovered peer has a fresh address: drop any cached connection so the
  // next Call dials the new process.
  transport_->DropConnection(peer);
  transport_->SetPeer(peer, addr);
  peer_addrs_[peer] = addr;
}

void ClusterWorker::ExtendGrace() {
  const double until = NowS() + cfg_.recovery_grace_s;
  double cur = grace_until_.load(std::memory_order_relaxed);
  while (cur < until && !grace_until_.compare_exchange_weak(cur, until)) {
  }
}

void ClusterWorker::HandlePeerUpdate(Transport::Request& req) {
  WireReader r(req.frame.payload);
  auto run_r = r.U64();
  auto rank_r = r.U32();
  auto addr_r = r.Str();
  if (!run_r.ok() || !rank_r.ok() || !addr_r.ok()) {
    req.reply_error(Status::DataLoss("malformed kPeerUpdate payload"));
    return;
  }
  const int peer = static_cast<int>(rank_r.ValueOrDie());
  if (peer < 0 || peer >= W_) {
    req.reply_error(Status::Invalid("peer update for unknown rank"));
    return;
  }
  if (kill_on_recover_ && peer != rank_ && !kill_fired_.exchange(true)) {
    // Double-fault drill: die deterministically in the middle of another
    // rank's recovery, before acking the update.
    HT_LOG(WARNING) << "worker r" << rank_
                    << ": kill-during-recovery drill — raising SIGKILL";
    ::raise(SIGKILL);
  }
  UpdatePeer(peer, addr_r.ValueOrDie());
  ExtendGrace();
  req.reply(MsgType::kAck, "");
}

void ClusterWorker::HandleCoordUpdate(Transport::Request& req) {
  // A restarted coordinator announcing itself: {term, new endpoint}. The
  // fencing preamble already validated/adopted the term and un-parked us.
  WireReader r(req.frame.payload);
  auto term_r = r.U64();
  auto addr_r = r.Str();
  if (!term_r.ok() || !addr_r.ok()) {
    req.reply_error(Status::DataLoss("malformed kCoordUpdate payload"));
    return;
  }
  transport_->DropConnection(coord_);
  transport_->SetPeer(coord_, addr_r.ValueOrDie());
  transport_->WatchPeer(coord_);
  const uint64_t cur_run = primary_->current_run();
  HT_LOG(INFO) << "worker r" << rank_ << ": re-attached to coordinator at "
               << addr_r.ValueOrDie() << " (term " << term_r.ValueOrDie()
               << ", current run " << cur_run << ")";
  primary_->RecordDegrade(fault::DegradeEvent::kWorkerReattach,
                          "re-attached to coordinator term " +
                              std::to_string(term_r.ValueOrDie()));
  // Reply with who we are and which run we are inside, so the successor can
  // decide whether we must rejoin its resumed run.
  WireWriter w;
  w.U32(static_cast<uint32_t>(rank_));
  w.U64(cur_run);
  req.reply(MsgType::kAck, w.Take());
  pcv_.notify_all();
}

void ClusterWorker::HandleAdopt(Transport::Request& req) {
  WireReader r(req.frame.payload);
  auto run_r = r.U64();
  auto epoch_r = r.U64();
  auto rank_r = r.U32();
  if (!run_r.ok() || !epoch_r.ok() || !rank_r.ok()) {
    req.reply_error(Status::DataLoss("malformed kAdoptPartition payload"));
    return;
  }
  const uint64_t run = run_r.ValueOrDie();
  const int64_t epoch = static_cast<int64_t>(epoch_r.ValueOrDie());
  const int adopt = static_cast<int>(rank_r.ValueOrDie());
  if (adopt < 0 || adopt >= W_ || adopt == rank_) {
    req.reply_error(
        Status::Invalid("cannot adopt rank " + std::to_string(adopt)));
    return;
  }
  {
    std::lock_guard<std::mutex> lk(pmu_);
    if (adopted_.count(adopt) != 0) {
      // Duplicate of a retried kAdoptPartition whose ack was lost.
      req.reply(MsgType::kAck, "");
      return;
    }
  }
  const std::string tail =
      req.frame.payload.substr(req.frame.payload.size() - r.remaining());
  std::shared_ptr<RankState> st(new RankState(this, adopt));
  const Status ps = st->Prepare();
  if (!ps.ok()) {
    req.reply_error(ps);
    return;
  }
  ExtendGrace();
  {
    std::lock_guard<std::mutex> lk(pmu_);
    Adopted& a = adopted_[adopt];
    a.state = st;
    a.thread = std::thread([st, run, epoch, tail] {
      st->ExecuteEpoch(run, epoch, /*recover=*/true, tail);
    });
  }
  HT_LOG(INFO) << "worker r" << rank_ << ": adopted partition r" << adopt
               << " for run " << run;
  req.reply(MsgType::kAck, "");
}

void ClusterWorker::ClearAdopted(uint64_t abort_upto) {
  std::map<int, Adopted> old;
  {
    std::lock_guard<std::mutex> lk(pmu_);
    old.swap(adopted_);
  }
  for (auto& kv : old) {
    kv.second.state->Abort(abort_upto);
    if (kv.second.thread.joinable()) kv.second.thread.join();
  }
}

void ClusterWorker::RunEpochCmd(const std::string& payload) {
  WireReader r(payload);
  auto run_r = r.U64();
  auto epoch_r = r.U64();
  auto rec_r = r.U32();
  if (!run_r.ok() || !epoch_r.ok() || !rec_r.ok()) {
    HT_LOG(WARNING) << "worker r" << rank_ << ": malformed kEpoch payload";
    return;
  }
  const uint64_t run = run_r.ValueOrDie();
  // Adopted ranks belong to an earlier run; their real process takes over.
  ClearAdopted(run > 0 ? run - 1 : 0);
  const std::string tail = payload.substr(payload.size() - r.remaining());
  primary_->ExecuteEpoch(run, static_cast<int64_t>(epoch_r.ValueOrDie()),
                         rec_r.ValueOrDie() != 0, tail);
}

void ClusterWorker::RunEvalCmd(const std::string& payload) {
  WireReader r(payload);
  auto run_r = r.U64();
  auto role_r = r.U32();
  if (!run_r.ok() || !role_r.ok()) {
    HT_LOG(WARNING) << "worker r" << rank_ << ": malformed kEval payload";
    return;
  }
  const uint64_t run = run_r.ValueOrDie();
  ClearAdopted(run > 0 ? run - 1 : 0);
  const std::string tail = payload.substr(payload.size() - r.remaining());
  primary_->ExecuteEval(run, static_cast<SplitRole>(role_r.ValueOrDie()),
                        tail);
}

// ---- RankState: per-hosted-rank training state -----------------------------

RankState::RankState(ClusterWorker* host, int rank)
    : host_(host),
      rank_(rank),
      W_(host->W_),
      coord_(host->coord_),
      L_(host->L_),
      n_(host->n_),
      V_(host->V_),
      kill_epoch_(rank == host->rank_ ? host->kill_epoch_ : kNoKillEpoch),
      cfg_(host->cfg_),
      ds_(host->ds_),
      tl_(host->tl_),
      plan_(host->plan_),
      transport_(host->transport_.get()),
      kb_(host->kb_),
      packed_(host->packed_),
      elem_bytes_(host->elem_bytes_),
      dims_(host->dims_),
      global_train_(host->global_train_) {}

Status RankState::Prepare() {
  ModelConfig mc;
  mc.kind = cfg_.model_kind;
  mc.dims = cfg_.model_dims;
  mc.seed = cfg_.model_seed;
  HT_ASSIGN_OR_RETURN(model_, GnnModel::Create(mc));

  // Expected fetchers (== gradient pushers) per batch: peers whose fetch
  // plan has a nonempty group for this rank as owner.
  fetchers_.assign(n_, {});
  for (int j = 0; j < n_; ++j) {
    for (int w = 0; w < W_; ++w) {
      if (w == rank_) continue;
      const FetchPlan& fp = plan_.fetch[w][j];
      if (fp.group_off[rank_ + 1] > fp.group_off[rank_]) {
        fetchers_[j].push_back(w);
      }
    }
  }

  own_train_.clear();
  for (int64_t v = 0; v < V_; ++v) {
    if (ds_.split[v] == SplitRole::kTrain && tl_.partition_of[v] == rank_) {
      own_train_.push_back(v);
    }
  }

  h_.resize(L_ + 1);
  grad_.resize(L_ + 1);
  push_hi_.assign(W_, -1);
  push_floor_.assign(W_, -1);
  return Status::OK();
}

void RankState::Abort(uint64_t run) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    max_aborted_run_ = std::max(max_aborted_run_, run);
    if (cur_run_ != 0 && cur_run_ <= run) abort_cur_ = true;
  }
  cv_.notify_all();
}

Status RankState::RetryRpc(const char* site,
                           const std::function<Status()>& fn) {
  // Short per-attempt deadline (the peer timeout), bounded total budget per
  // burst; the outer loop keeps retrying past the budget only while a
  // recovery grace window is open (a peer is being respawned or adopted).
  fault::RetryPolicy pol = fault::DefaultRetryPolicy();
  pol.max_attempts = std::max(pol.max_attempts, 16);
  pol.total_deadline_s = cfg_.rpc_deadline_s * 2.0;
  for (;;) {
    const Status st = fault::RetryTransient(pol, &degrade_, site, fn);
    if (st.ok() || !st.IsTransient()) return st;
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (abort_cur_) return Status::Internal("run aborted");
    }
    // Keep retrying while a peer recovery grace window is open, or while a
    // dead coordinator's lease still allows a successor to appear (so a
    // finished epoch's report survives a coordinator restart).
    if (NowS() >= host_->grace_until() && !host_->InCoordLease()) return st;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
}

Status RankState::WaitCond(std::unique_lock<std::mutex>& lk, double budget_s,
                           const std::function<bool()>& pred,
                           const std::string& what) {
  const double start = NowS();
  for (;;) {
    if (pred()) return Status::OK();
    if (abort_cur_) return Status::Internal("run aborted");
    const double now = NowS();
    if (now >= start + budget_s && now >= host_->grace_until()) {
      return Status::Unavailable("timed out waiting for " + what);
    }
    cv_.wait_for(lk, std::chrono::milliseconds(50));
  }
}

std::string RankState::BuildFetchPayload(int requester, int64_t step) const {
  const int l = LayerOf(step);
  const int j = BatchOf(step);
  const size_t row_b = RowBytes(dims_[l]);
  const FetchPlan& fp = plan_.fetch[requester][j];
  const int64_t b = fp.group_off[rank_];
  const int64_t e = fp.group_off[rank_ + 1];
  std::string out;
  out.resize(static_cast<size_t>(e - b) * row_b);
  for (int64_t k = b; k < e; ++k) {
    std::memcpy(&out[static_cast<size_t>(k - b) * row_b],
                trans_.row(fp.group_slot[k]), row_b);
  }
  return out;
}

void RankState::HandleFetch(Transport::Request& req, uint64_t run,
                            int64_t step, int requester) {
  std::string payload;
  Status err = Status::OK();
  {
    std::unique_lock<std::mutex> lk(mu_);
    const double start = NowS();
    for (;;) {
      if (cur_run_ > run || run <= max_aborted_run_) {
        err = Status::Unavailable("fetch for stale run");
        break;
      }
      if (cur_run_ == run) {
        if (abort_cur_) {
          err = Status::Unavailable("run aborted");
          break;
        }
        auto it = fetch_log_.find({step, requester});
        if (it != fetch_log_.end()) {
          payload = it->second;
          break;
        }
      }
      const double now = NowS();
      if (now >= start + cfg_.rpc_deadline_s && now >= host_->grace_until()) {
        err = Status::Unavailable(
            "fetch wait timed out (run " + std::to_string(run) + " step " +
            std::to_string(step) + ", published " +
            std::to_string(published_step_) + ")");
        break;
      }
      cv_.wait_for(lk, std::chrono::milliseconds(50));
    }
  }
  if (!err.ok()) {
    req.reply_error(err);
    return;
  }
  req.reply(MsgType::kAck, std::move(payload));
}

void RankState::HandlePush(Transport::Request& req, uint64_t run,
                           int64_t step, int sender, std::string body) {
  Status err = Status::OK();
  {
    std::unique_lock<std::mutex> lk(mu_);
    const double start = NowS();
    while (cur_run_ < run && run > max_aborted_run_) {
      const double now = NowS();
      if (now >= start + cfg_.rpc_deadline_s && now >= host_->grace_until()) {
        break;
      }
      cv_.wait_for(lk, std::chrono::milliseconds(50));
    }
    if (cur_run_ != run || run <= max_aborted_run_) {
      err = Status::Unavailable("push for stale run");
    } else if (abort_cur_) {
      err = Status::Unavailable("run aborted");
    } else if (applied_step_ < step) {
      // Duplicates (a replaying sender re-pushing an applied step, or a
      // resend after a lost ack) either overwrite with identical bytes or
      // are dropped by the applied_step_ guard — idempotent both ways.
      pushes_[{step, sender}] = std::move(body);
    }
  }
  if (!err.ok()) {
    req.reply_error(err);
    return;
  }
  cv_.notify_all();
  req.reply(MsgType::kAck, "");
}

void RankState::HandleSyncState(Transport::Request& req, uint64_t run,
                                int asker) {
  int64_t hi = -1;
  Status err = Status::OK();
  {
    std::unique_lock<std::mutex> lk(mu_);
    const double start = NowS();
    while (cur_run_ < run && run > max_aborted_run_) {
      const double now = NowS();
      if (now >= start + cfg_.rpc_deadline_s && now >= host_->grace_until()) {
        break;
      }
      cv_.wait_for(lk, std::chrono::milliseconds(50));
    }
    if (cur_run_ != run || run <= max_aborted_run_) {
      err = Status::Unavailable("sync_state for stale run");
    } else {
      hi = push_hi_[asker];
    }
  }
  if (!err.ok()) {
    req.reply_error(err);
    return;
  }
  WireWriter w;
  w.I64(hi);
  req.reply(MsgType::kAck, w.Take());
}

void RankState::HandleFetchPush(Transport::Request& req, uint64_t run,
                                int64_t step, int asker) {
  std::string rows;
  Status err = Status::OK();
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (cur_run_ != run || run <= max_aborted_run_) {
      err = Status::Unavailable("fetch_push for stale run");
    } else {
      auto it = push_out_log_.find({step, asker});
      if (it == push_out_log_.end()) {
        // Not logged yet — this rank may itself be replaying toward the
        // step. Transient: the asker retries under the grace window.
        err = Status::Unavailable("push (step " + std::to_string(step) +
                                  " -> r" + std::to_string(asker) +
                                  ") not logged yet");
      } else {
        rows = it->second;
      }
    }
  }
  if (!err.ok()) {
    req.reply_error(err);
    return;
  }
  req.reply(MsgType::kAck, std::move(rows));
}

Status RankState::SetupRun(WireReader* r) {
  HT_ASSIGN_OR_RETURN(uint32_t w_count, r->U32());
  if (static_cast<int>(w_count) != W_) {
    return Status::Invalid("run announces " + std::to_string(w_count) +
                           " workers, expected " + std::to_string(W_));
  }
  for (int w = 0; w < W_; ++w) {
    HT_ASSIGN_OR_RETURN(std::string addr, r->Str());
    host_->UpdatePeer(w, addr);
  }
  HT_ASSIGN_OR_RETURN(uint32_t p_count, r->U32());
  auto params = model_.AllParams();
  if (p_count != params.size()) {
    return Status::Invalid("run broadcast has " + std::to_string(p_count) +
                           " params, model has " +
                           std::to_string(params.size()));
  }
  for (Tensor* p : params) {
    HT_ASSIGN_OR_RETURN(uint64_t rows, r->U64());
    HT_ASSIGN_OR_RETURN(uint64_t cols, r->U64());
    if (static_cast<int64_t>(rows) != p->rows() ||
        static_cast<int64_t>(cols) != p->cols()) {
      return Status::Invalid("parameter shape mismatch in run broadcast");
    }
    HT_RETURN_IF_ERROR(
        r->Raw(p->data(), static_cast<size_t>(p->size()) * sizeof(float)));
  }
  return Status::OK();
}

Status RankState::SyncRecoveryFloors(uint64_t run) {
  std::set<int> senders;
  for (int j = 0; j < n_; ++j) {
    for (int w : fetchers_[j]) senders.insert(w);
  }
  for (int w : senders) {
    WireWriter q;
    q.U64(run);
    q.U32(static_cast<uint32_t>(w));      // owner: whose watermark
    q.U32(static_cast<uint32_t>(rank_));  // asker: the recovering rank
    const std::string q_payload = q.Take();
    int64_t hi = -1;
    const Status st = RetryRpc("net.sync_state", [&]() -> Status {
      {
        std::lock_guard<std::mutex> lk(mu_);
        if (abort_cur_) return Status::Internal("run aborted");
      }
      auto res = transport_->Call(w, MsgType::kSyncState, q_payload,
                                  AttemptDeadlineS());
      if (!res.ok()) return res.status();
      WireReader rr(res.ValueOrDie());
      HT_ASSIGN_OR_RETURN(hi, rr.I64());
      return Status::OK();
    });
    HT_RETURN_IF_ERROR(st);
    std::lock_guard<std::mutex> lk(mu_);
    push_floor_[w] = hi;
  }
  HT_LOG(INFO) << "worker replay r" << rank_ << ": recovery floors synced ("
               << senders.size() << " peers)";
  return Status::OK();
}

void RankState::ExecuteEpoch(uint64_t run, int64_t epoch, bool recover,
                             const std::string& tail) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (run <= max_aborted_run_) return;  // aborted while queued
    // cur_run_ first: a peer recovering at the same time may already be
    // asking this state for its watermarks.
    cur_run_ = run;
    abort_cur_ = false;
    published_step_ = -1;
    applied_step_ = -1;
    pushes_.clear();
    fetch_log_.clear();
    push_out_log_.clear();
    push_hi_.assign(W_, -1);
    push_floor_.assign(W_, -1);
  }
  cv_.notify_all();
  if (recover) host_->ExtendGrace();
  WireReader r(tail);
  Status st = SetupRun(&r);
  if (st.ok() && recover) st = SyncRecoveryFloors(run);
  if (st.ok()) {
    degrade_.ResetEpoch();
    model_.ZeroGrads();
    loss_sum_ = acc_sum_ = 0.0;
    n_own_ = 0;
    st = TrainEpoch(run, epoch);
  }
  WireWriter w;
  w.U64(run);
  w.U32(static_cast<uint32_t>(rank_));
  w.U32(st.ok() ? 1 : 0);
  w.Str(st.ok() ? "" : st.ToString());
  w.F64(loss_sum_);
  w.F64(acc_sum_);
  w.U64(static_cast<uint64_t>(n_own_));
  const fault::RecoveryCounters rec = degrade_.SnapshotEpoch();
  w.U32(fault::kNumDegradeEvents);
  for (int e = 0; e < fault::kNumDegradeEvents; ++e) w.I64(rec.counts[e]);
  if (st.ok()) {
    auto grads = model_.AllGrads();
    w.U32(static_cast<uint32_t>(grads.size()));
    for (Tensor* g : grads) {
      w.U64(static_cast<uint64_t>(g->rows()));
      w.U64(static_cast<uint64_t>(g->cols()));
      w.Bytes(g->data(), static_cast<size_t>(g->size()) * sizeof(float));
    }
  } else {
    w.U32(0);
    HT_LOG(WARNING) << "worker r" << rank_ << ": epoch run " << run
                    << " failed: " << st.ToString();
  }
  // The report must arrive or the coordinator's watchdog eventually fires;
  // retry delivery — a resend after a dropped frame or lost ack is deduped
  // by the coordinator's !received guard.
  const std::string report = w.Take();
  const Status dr = RetryRpc("net.epoch_done", [&]() -> Status {
    return transport_
        ->Call(coord_, MsgType::kEpochDone, report, AttemptDeadlineS())
        .status();
  });
  if (!dr.ok()) {
    HT_LOG(WARNING) << "worker r" << rank_ << ": kEpochDone delivery failed: "
                    << dr.ToString();
  }
}

void RankState::ExecuteEval(uint64_t run, SplitRole role,
                            const std::string& tail) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (run <= max_aborted_run_) return;
    cur_run_ = run;
    abort_cur_ = false;
    published_step_ = -1;
    applied_step_ = -1;
    pushes_.clear();
    fetch_log_.clear();
    push_out_log_.clear();
    push_hi_.assign(W_, -1);
    push_floor_.assign(W_, -1);
  }
  cv_.notify_all();
  WireReader r(tail);
  Status st = SetupRun(&r);
  if (st.ok()) st = ForwardPhase(run);
  uint64_t correct = 0, total = 0;
  if (st.ok()) {
    const Tensor& logits = L_ == 0 ? ds_.features : h_[L_];
    const int C = dims_[L_];
    for (int64_t v = 0; v < V_; ++v) {
      if (tl_.partition_of[v] != rank_ || ds_.split[v] != role) continue;
      const float* row = logits.row(v);
      int best = 0;
      for (int c = 1; c < C; ++c) {
        if (row[c] > row[best]) best = c;
      }
      total++;
      if (best == ds_.labels[v]) correct++;
    }
  }
  WireWriter w;
  w.U64(run);
  w.U32(static_cast<uint32_t>(rank_));
  w.U32(st.ok() ? 1 : 0);
  w.Str(st.ok() ? "" : st.ToString());
  w.U64(correct);
  w.U64(total);
  const std::string report = w.Take();
  const Status dr = RetryRpc("net.eval_done", [&]() -> Status {
    return transport_
        ->Call(coord_, MsgType::kEvalDone, report, AttemptDeadlineS())
        .status();
  });
  if (!dr.ok()) {
    HT_LOG(WARNING) << "worker r" << rank_ << ": kEvalDone delivery failed: "
                    << dr.ToString();
  }
}

Status RankState::TrainEpoch(uint64_t run, int64_t epoch) {
  HT_RETURN_IF_ERROR(ForwardPhase(run));
  if (epoch == kill_epoch_) {
    // Deterministic failure drill: die between forward and backward, with
    // the epoch's communication in full flight on the peers.
    HT_LOG(WARNING) << "worker r" << rank_ << ": kill drill at epoch "
                    << epoch << " — raising SIGKILL";
    ::raise(SIGKILL);
  }
  HT_RETURN_IF_ERROR(ComputeLossAndSeed());
  for (int l = L_ - 1; l >= 0; --l) {
    grad_[l].EnsureShapeZeroed(V_, dims_[l]);
    tgrad_.EnsureShapeZeroed(plan_.buffer_slots[rank_], dims_[l]);
    for (int j = 0; j < n_; ++j) {
      const int64_t s = static_cast<int64_t>(L_) * n_ +
                        static_cast<int64_t>(L_ - 1 - l) * n_ + j;
      HT_RETURN_IF_ERROR(DoStep(run, s, l, j, /*backward=*/true));
    }
  }
  return Status::OK();
}

Status RankState::ForwardPhase(uint64_t run) {
  for (int l = 0; l < L_; ++l) {
    h_[l + 1].EnsureShape(V_, dims_[l + 1]);
    for (int j = 0; j < n_; ++j) {
      const int64_t s = static_cast<int64_t>(l) * n_ + j;
      HT_RETURN_IF_ERROR(DoStep(run, s, l, j, /*backward=*/false));
    }
  }
  return Status::OK();
}

Status RankState::DoStep(uint64_t run, int64_t s, int l, int j,
                         bool backward) {
  const Chunk& chunk = tl_.chunks[rank_][j];
  HT_RETURN_IF_ERROR(PublishStep(run, s, l, j));
  HT_RETURN_IF_ERROR(FetchNeighbors(run, s, l, j));
  const LocalGraph lg = LocalGraph::FromChunk(chunk);
  Layer* layer = model_.layer(l);
  if (!backward) {
    HT_RETURN_IF_ERROR(layer->Forward(lg, nb_, &dst_h_, nullptr));
    Tensor& hout = h_[l + 1];
    const size_t out_b = static_cast<size_t>(dims_[l + 1]) * sizeof(float);
    for (int64_t d = 0; d < chunk.num_dst(); ++d) {
      std::memcpy(hout.row(chunk.dst_vertices[d]), dst_h_.row(d), out_b);
    }
    return Status::OK();
  }
  d_dst_.EnsureShape(chunk.num_dst(), dims_[l + 1]);
  const size_t out_b = static_cast<size_t>(dims_[l + 1]) * sizeof(float);
  for (int64_t d = 0; d < chunk.num_dst(); ++d) {
    std::memcpy(d_dst_.row(d), grad_[l + 1].row(chunk.dst_vertices[d]), out_b);
  }
  d_src_.EnsureShapeZeroed(chunk.num_neighbors(), dims_[l]);
  HT_RETURN_IF_ERROR(layer->BackwardRecompute(lg, nb_, d_dst_, &d_src_));
  return PushApplyFlush(run, s, l, j);
}

Status RankState::PublishStep(uint64_t run, int64_t s, int l, int j) {
  (void)run;
  std::unique_lock<std::mutex> lk(mu_);
  if (abort_cur_) return Status::Internal("run aborted");
  const int dim = dims_[l];
  trans_.EnsureShape(plan_.buffer_slots[rank_], PayloadCols(dim));
  const TransitionStep& ts = plan_.transition[rank_][j];
  const Tensor& hin = HIn(l);
  const size_t row_b = RowBytes(dim);
  for (size_t p = 0; p < ts.vertices.size(); ++p) {
    if (ts.reused[p]) continue;  // N^gpu: the slot already holds this vertex
    const float* src = hin.row(ts.vertices[p]);
    float* slot_row = trans_.row(ts.slots[p]);
    if (packed_) {
      kernels::EncodeRows(kb_, cfg_.wire, src, dim,
                          reinterpret_cast<uint16_t*>(slot_row));
    } else {
      std::memcpy(slot_row, src, row_b);
    }
  }
  // Log the serialized response for every expected fetcher NOW, at publish
  // time: serving reads the log, never the live slots, so slot reuse needs
  // no gate and a replaying peer is served bit-identical bytes for any step
  // of the epoch.
  for (int w : fetchers_[j]) {
    fetch_log_[{s, w}] = BuildFetchPayload(w, s);
  }
  published_step_ = s;
  lk.unlock();
  cv_.notify_all();
  return Status::OK();
}

Status RankState::FetchNeighbors(uint64_t run, int64_t s, int l, int j) {
  const Chunk& chunk = tl_.chunks[rank_][j];
  const int dim = dims_[l];
  const FetchPlan& fp = plan_.fetch[rank_][j];
  const size_t row_b = RowBytes(dim);
  nb_.EnsureShape(chunk.num_neighbors(), dim);
  for (int o = 0; o < W_; ++o) {
    const int64_t b = fp.group_off[o];
    const int64_t e = fp.group_off[o + 1];
    if (b == e) continue;
    if (o == rank_) {
      std::lock_guard<std::mutex> lk(mu_);
      for (int64_t k = b; k < e; ++k) {
        float* dst = nb_.row(fp.group_pos[k]);
        if (packed_) {
          kernels::DecodeRows(
              kb_, cfg_.wire,
              reinterpret_cast<const uint16_t*>(trans_.row(fp.group_slot[k])),
              dim, dst);
        } else {
          std::memcpy(dst, trans_.row(fp.group_slot[k]), row_b);
        }
      }
      continue;
    }
    WireWriter req;
    req.U64(run);
    req.U32(static_cast<uint32_t>(s));
    req.U32(static_cast<uint32_t>(o));      // owner
    req.U32(static_cast<uint32_t>(rank_));  // requester
    const std::string req_payload = req.Take();
    std::string resp;
    const Status st = RetryRpc("net.fetch_rows", [&]() -> Status {
      {
        std::lock_guard<std::mutex> lk(mu_);
        if (abort_cur_) return Status::Internal("run aborted");
      }
      auto r = transport_->Call(o, MsgType::kFetchRows, req_payload,
                                AttemptDeadlineS());
      if (!r.ok()) return r.status();
      resp = r.MoveValueUnsafe();
      if (resp.size() != static_cast<size_t>(e - b) * row_b) {
        return Status::DataLoss("fetch response size mismatch from rank " +
                                std::to_string(o));
      }
      return Status::OK();
    });
    HT_RETURN_IF_ERROR(st);
    const char* p = resp.data();
    for (int64_t k = b; k < e; ++k) {
      const char* src = p + static_cast<size_t>(k - b) * row_b;
      float* dst = nb_.row(fp.group_pos[k]);
      if (packed_) {
        kernels::DecodeRows(kb_, cfg_.wire,
                            reinterpret_cast<const uint16_t*>(src), dim, dst);
      } else {
        std::memcpy(dst, src, row_b);
      }
    }
  }
  return Status::OK();
}

Status RankState::PushApplyFlush(uint64_t run, int64_t s, int l, int j) {
  const int dim = dims_[l];
  const size_t row_b = RowBytes(dim);
  const FetchPlan& fp = plan_.fetch[rank_][j];

  // 1. Send this chunk's gradient contributions to every remote owner
  //    before waiting for inbound pushes (deadlock freedom: everyone sends
  //    first, then waits). The raw row block is logged before the send so a
  //    recovering destination can re-pull it (kFetchPush) after this rank
  //    has moved on.
  for (int o = 0; o < W_; ++o) {
    if (o == rank_) continue;
    const int64_t b = fp.group_off[o];
    const int64_t e = fp.group_off[o + 1];
    if (b == e) continue;
    std::string rows;
    rows.resize(static_cast<size_t>(e - b) * row_b);
    for (int64_t k = b; k < e; ++k) {
      char* dst = &rows[static_cast<size_t>(k - b) * row_b];
      if (packed_) {
        kernels::EncodeRows(kb_, cfg_.wire, d_src_.row(fp.group_pos[k]), dim,
                            reinterpret_cast<uint16_t*>(dst));
      } else {
        std::memcpy(dst, d_src_.row(fp.group_pos[k]), row_b);
      }
    }
    {
      std::lock_guard<std::mutex> lk(mu_);
      push_out_log_[{s, o}] = rows;
    }
    WireWriter w;
    w.U64(run);
    w.U32(static_cast<uint32_t>(s));
    w.U32(static_cast<uint32_t>(o));      // owner (destination)
    w.U32(static_cast<uint32_t>(rank_));  // sender
    w.Bytes(rows.data(), rows.size());
    const Status st = RetryRpc("net.grad_push", [&]() -> Status {
      {
        std::lock_guard<std::mutex> lk(mu_);
        if (abort_cur_) return Status::Internal("run aborted");
      }
      return transport_
          ->Call(o, MsgType::kGradPush, w.buf(), AttemptDeadlineS())
          .status();
    });
    HT_RETURN_IF_ERROR(st);
    {
      std::lock_guard<std::mutex> lk(mu_);
      push_hi_[o] = std::max(push_hi_[o], s);
    }
  }

  // 2. Collect the expected inbound pushes for this step. A peer that had
  //    already delivered step s to this rank's dead incarnation
  //    (s <= push_floor_) will not resend — re-pull those from its outbound
  //    log; the rest arrive live.
  const std::vector<int>& senders = fetchers_[j];
  std::map<int, std::string> inbound;
  std::vector<int> live;
  for (int w : senders) {
    bool pull;
    {
      std::lock_guard<std::mutex> lk(mu_);
      pull = s <= push_floor_[w];
    }
    if (!pull) {
      live.push_back(w);
      continue;
    }
    WireWriter q;
    q.U64(run);
    q.U32(static_cast<uint32_t>(s));
    q.U32(static_cast<uint32_t>(w));      // owner: whose outbound log
    q.U32(static_cast<uint32_t>(rank_));  // asker: original destination
    const std::string q_payload = q.Take();
    std::string resp;
    const Status st = RetryRpc("net.fetch_push", [&]() -> Status {
      {
        std::lock_guard<std::mutex> lk(mu_);
        if (abort_cur_) return Status::Internal("run aborted");
      }
      auto r = transport_->Call(w, MsgType::kFetchPush, q_payload,
                                AttemptDeadlineS());
      if (!r.ok()) return r.status();
      resp = r.MoveValueUnsafe();
      return Status::OK();
    });
    HT_RETURN_IF_ERROR(st);
    inbound[w] = std::move(resp);
  }
  {
    std::unique_lock<std::mutex> lk(mu_);
    const std::vector<int>& lv = live;
    HT_RETURN_IF_ERROR(WaitCond(
        lk, cfg_.rpc_deadline_s,
        [&] {
          for (int w : lv) {
            if (pushes_.count({s, w}) == 0) return false;
          }
          return true;
        },
        "gradient pushes for step " + std::to_string(s)));
    for (int w : live) {
      auto it = pushes_.find({s, w});
      inbound[w] = std::move(it->second);
      pushes_.erase(it);
    }
  }

  // 3. Apply contributions in sender-rank order — the fixed accumulation
  //    order is what makes the distributed epoch bit-deterministic.
  for (int w = 0; w < W_; ++w) {
    if (w == rank_) {
      const int64_t b = fp.group_off[rank_];
      const int64_t e = fp.group_off[rank_ + 1];
      for (int64_t k = b; k < e; ++k) {
        kernels::QuantizeAccumRows(kb_, cfg_.wire, d_src_.row(fp.group_pos[k]),
                                   dim, tgrad_.row(fp.group_slot[k]));
      }
      continue;
    }
    auto it = inbound.find(w);
    if (it == inbound.end()) continue;  // no group for us in batch j
    const std::string& rows = it->second;
    const FetchPlan& fpw = plan_.fetch[w][j];
    const int64_t b = fpw.group_off[rank_];
    const int64_t e = fpw.group_off[rank_ + 1];
    if (rows.size() != static_cast<size_t>(e - b) * row_b) {
      return Status::Internal("gradient push size mismatch from rank " +
                              std::to_string(w));
    }
    for (int64_t k = b; k < e; ++k) {
      const char* src = rows.data() + static_cast<size_t>(k - b) * row_b;
      float* acc = tgrad_.row(fpw.group_slot[k]);
      if (packed_) {
        kernels::DecodeAccumRows(kb_, cfg_.wire,
                                 reinterpret_cast<const uint16_t*>(src), dim,
                                 acc);
      } else {
        const float* g = reinterpret_cast<const float*>(src);
        for (int c = 0; c < dim; ++c) acc[c] += g[c];
      }
    }
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    applied_step_ = s;
  }
  cv_.notify_all();

  // 4. Flush completed slots into the host gradient buffer (one more wire
  //    crossing under a packed precision, exactly like the executor's D2H).
  const TransitionStep& ts = plan_.transition[rank_][j];
  Tensor& hg = grad_[l];
  for (size_t p = 0; p < ts.vertices.size(); ++p) {
    if (!ts.flush[p]) continue;  // retained: keeps accumulating next batch
    float* tg = tgrad_.row(ts.slots[p]);
    float* dst = hg.row(ts.vertices[p]);
    if (packed_) {
      kernels::QuantizeAccumRows(kb_, cfg_.wire, tg, dim, dst);
    } else {
      for (int c = 0; c < dim; ++c) dst[c] += tg[c];
    }
    std::memset(tg, 0, static_cast<size_t>(dim) * sizeof(float));
  }
  return Status::OK();
}

Status RankState::ComputeLossAndSeed() {
  const int C = dims_[L_];
  grad_[L_].EnsureShapeZeroed(V_, C);
  n_own_ = static_cast<int64_t>(own_train_.size());
  if (n_own_ == 0 || global_train_ == 0) {
    loss_sum_ = acc_sum_ = 0.0;
    return Status::OK();
  }
  const LossResult lr =
      SoftmaxCrossEntropy(h_[L_], ds_.labels, own_train_, &grad_[L_]);
  // SoftmaxCrossEntropy divides by the local vertex count; rescale so every
  // worker's rows carry the global 1/|train| factor of the serial engines.
  const float scale = static_cast<float>(
      static_cast<double>(n_own_) / static_cast<double>(global_train_));
  for (const VertexId v : own_train_) {
    float* g = grad_[L_].row(v);
    for (int c = 0; c < C; ++c) g[c] *= scale;
  }
  loss_sum_ = lr.loss * static_cast<double>(n_own_);
  acc_sum_ = lr.accuracy * static_cast<double>(n_own_);
  return Status::OK();
}

}  // namespace

void MaybeRunClusterWorker() {
  const char* role = std::getenv(kEnvDistRole);
  if (role == nullptr || std::string(role) != "worker") return;
  ClusterWorker worker;
  std::exit(worker.Run());
}

// ============================================================================
// Coordinator
// ============================================================================

struct ClusterCoordinator::WorkerProc {
  pid_t pid = -1;
  std::string addr;
  bool hello = false;
  bool dead = false;
};

/// One worker's parsed kEpochDone/kEvalDone report.
struct ClusterCoordinator::DoneReport {
  bool received = false;
  bool ok = false;
  std::string error;
  double loss_sum = 0.0, acc_sum = 0.0;
  uint64_t n = 0;
  uint64_t correct = 0, total = 0;
  fault::RecoveryCounters rec;
  std::vector<std::vector<float>> grads;
};

struct ClusterCoordinator::RunState {
  std::mutex mu;
  std::condition_variable cv;
  uint64_t run = 0;  ///< active run id (0 = idle)
  bool eval = false;
  int64_t epoch = 0;  ///< training epoch the active run belongs to
  std::vector<DoneReport> done;
  int done_count = 0;
  /// Deaths observed during the active run, in detection order. A queue,
  /// not a single slot: a second rank can die while the first is still
  /// being recovered (the double-fault drill), and each death gets its own
  /// recovery pass.
  std::deque<std::pair<int, std::string>> deaths;
};

Result<std::unique_ptr<ClusterCoordinator>> ClusterCoordinator::Start(
    ClusterConfig cfg) {
  if (cfg.num_workers < 1 || cfg.num_workers > 64) {
    return Status::Invalid("cluster num_workers out of range: " +
                           std::to_string(cfg.num_workers));
  }
  if (cfg.transport != "tcp" && cfg.transport != "uds") {
    return Status::Invalid("cluster transport must be tcp or uds: " +
                           cfg.transport);
  }
  if (cfg.recover_mode != "step" && cfg.recover_mode != "adopt" &&
      cfg.recover_mode != "epoch") {
    return Status::Invalid("cluster recover_mode must be step, adopt or "
                           "epoch: " + cfg.recover_mode);
  }
  if (static_cast<DedupLevel>(cfg.dedup_level) == DedupLevel::kNone) {
    return Status::Invalid(
        "cluster backend requires dedup kP2P or kP2PReuse (owner-grouped "
        "transition buffers are the wire format)");
  }
  if (cfg.model_dims.size() < 2) {
    return Status::Invalid("cluster config needs model_dims (L+1 entries)");
  }
  if (cfg.dataset.empty()) {
    return Status::Invalid("cluster config needs a dataset name");
  }

  if (cfg.resume && cfg.runtime_dir.empty() && cfg.checkpoint_dir.empty()) {
    return Status::Invalid(
        "cluster resume needs a stable runtime_dir/checkpoint_dir (the "
        "journal and checkpoints of the previous incarnation live there)");
  }
  if (const char* lease_ms = std::getenv("HONGTU_COORD_LEASE_MS")) {
    const double ms = std::atof(lease_ms);
    if (ms > 0.0) cfg.coord_lease_s = ms / 1000.0;
  }

  std::unique_ptr<ClusterCoordinator> co(new ClusterCoordinator());
  co->cfg_ = std::move(cfg);
  ClusterConfig& c = co->cfg_;
  if (c.runtime_dir.empty()) {
    // Keep the path short: uds socket paths live inside it and must fit
    // sockaddr_un (108 bytes).
    char tmpl[] = "/tmp/hongtu-dist.XXXXXX";
    if (::mkdtemp(tmpl) == nullptr) {
      return Status::IoError(std::string("mkdtemp: ") + std::strerror(errno));
    }
    c.runtime_dir = tmpl;
    co->owns_runtime_dir_ = true;
  }
  if (c.checkpoint_dir.empty()) c.checkpoint_dir = c.runtime_dir;

  ModelConfig mc;
  mc.kind = c.model_kind;
  mc.dims = c.model_dims;
  mc.seed = c.model_seed;
  HT_ASSIGN_OR_RETURN(co->model_, GnnModel::Create(mc));
  co->adam_ = Adam(c.adam);
  for (Tensor* p : co->model_.AllParams()) co->adam_.Register(p);

  co->ckpt_.reset(new CheckpointManager(c.checkpoint_dir, &co->degrade_));

  // ---- Write-ahead journal: replay (resume) or truncate (fresh). ----------
  const double t_start = NowS();
  const std::string jpath = c.checkpoint_dir + "/cluster.journal";
  JournalState js;
  bool replayed = false;
  if (c.resume) {
    auto rec_r = ClusterJournal::Replay(jpath);
    Result<JournalState> js_r = rec_r.ok()
                                    ? BuildJournalState(rec_r.ValueOrDie())
                                    : Result<JournalState>(rec_r.status());
    if (js_r.ok()) {
      js = js_r.MoveValueUnsafe();
      replayed = true;
    } else {
      // Rung 4: the journal is damaged — fall back to the checkpoint floor
      // (fresh workers, epoch rerun) instead of refusing to recover.
      co->journal_ok_ = false;
      co->degrade_.Record(fault::DegradeEvent::kCheckpointFallback,
                          "cluster journal unreadable on restart — "
                          "checkpoint-only recovery: " +
                              js_r.status().ToString());
      HT_LOG(WARNING) << "cluster coordinator: journal '" << jpath
                      << "' unreadable (" << js_r.status().ToString()
                      << ") — falling back to checkpoint recovery";
      ::unlink(jpath.c_str());
    }
  } else {
    ::unlink(jpath.c_str());
  }

  if (c.resume) {
    // Restore the authoritative model+Adam exactly where the previous
    // incarnation durably left them.
    HT_ASSIGN_OR_RETURN(co->epochs_completed_,
                        co->ckpt_->Restore(&co->model_, &co->adam_));
  } else {
    // Epoch-0 snapshot: the floor of the recovery ladder — a worker death
    // in the very first epoch restores to here.
    HT_RETURN_IF_ERROR(co->ckpt_->Save(&co->model_, co->adam_, 0));
  }

  co->term_ = js.term + 1;
  co->next_run_ = std::max<uint64_t>(js.max_run + 1, 1);
  if (replayed && js.run != 0 && !js.run_eval &&
      js.run_epoch == co->epochs_completed_) {
    // An in-flight training run whose epoch was not applied: adopt it under
    // its original id so already-journaled reports are never recomputed.
    co->resume_run_ = js.run;
    co->resume_epoch_ = js.run_epoch;
    co->resume_reports_ = js.reports;
  }

  const int W = c.num_workers;
  co->run_.reset(new RunState());
  co->run_->done.resize(W);
  co->workers_.resize(W);

  Transport::Options topt;
  topt.rank = W;  // coordinator rank
  topt.heartbeat_interval_s = c.heartbeat_interval_s;
  topt.peer_timeout_s = c.peer_timeout_s;
  topt.io_deadline_s = c.rpc_deadline_s;
  co->transport_.reset(new Transport(topt));
  ClusterCoordinator* self = co.get();
  co->transport_->set_handler(
      [self](Transport::Request&& req) { self->OnRequest(std::move(req)); });
  co->transport_->set_death_callback(
      [self](int rank, const std::string& why) {
        self->OnPeerDeath(rank, why);
      });
  const std::string listen_addr =
      c.transport == "uds" ? "uds:" + c.runtime_dir + "/coord.sock"
                           : "tcp:127.0.0.1:0";
  HT_RETURN_IF_ERROR(co->transport_->Listen(listen_addr));
  // Every frame this coordinator sends carries its (bumped) fencing term.
  co->transport_->set_term(co->term_);

  if (co->journal_ok_) {
    auto j_r = ClusterJournal::Open(jpath);
    if (j_r.ok()) {
      co->journal_ = j_r.MoveValueUnsafe();
    } else {
      co->journal_ok_ = false;
      HT_LOG(WARNING) << "cluster journal open failed ("
                      << j_r.status().ToString()
                      << ") — degrading to checkpoint-only recovery";
    }
  }
  {
    WireWriter w;
    w.U64(co->term_);
    (void)co->JournalAppend(JournalRecordType::kTerm, w.Take());
  }

  if (replayed && !js.members.empty()) {
    // Successor path: adopt journaled survivors, respawn the dead.
    HT_RETURN_IF_ERROR(co->ReattachOrRespawn(js));
    co->resumed_from_journal_ = true;
    co->degrade_.Record(fault::DegradeEvent::kCoordJournalReplay,
                        "coordinator restarted from journal: term " +
                            std::to_string(co->term_) + ", " +
                            std::to_string(co->reattaches_) +
                            " re-attached, " + std::to_string(co->respawns_) +
                            " respawned");
    LogRecoveryEvent("journal_replay", co->term_, -1, NowS() - t_start,
                     "reattached=" + std::to_string(co->reattaches_) +
                         " respawned=" + std::to_string(co->respawns_) +
                         " resumed_run=" + std::to_string(co->resume_run_));
  } else {
    for (int r = 0; r < W; ++r) {
      HT_RETURN_IF_ERROR(co->SpawnWorker(r, /*first_spawn=*/!c.resume));
    }
    for (int r = 0; r < W; ++r) {
      HT_RETURN_IF_ERROR(co->WaitForHello(r, 120.0));
    }
    {
      std::lock_guard<std::mutex> lk(co->run_->mu);
      for (int r = 0; r < W; ++r) {
        co->transport_->SetPeer(r, co->workers_[r].addr);
        co->transport_->WatchPeer(r);
      }
    }
    if (c.resume) {
      LogRecoveryEvent("checkpoint_fallback", co->term_, -1, NowS() - t_start,
                       "epoch=" + std::to_string(co->epochs_completed_));
    }
  }
  // Coordinator→worker heartbeats: workers watch these to detect a dead
  // coordinator and park instead of wedging (the PDEATHSIG replacement).
  for (int r = 0; r < W; ++r) co->transport_->StartHeartbeatTo(r);
  InstallSigtermHandler();
  HT_LOG(INFO) << "cluster coordinator up: " << W << " workers over "
               << c.transport << ", runtime dir " << c.runtime_dir
               << ", recover_mode " << c.recover_mode << ", term "
               << co->term_;
  return co;
}

ClusterCoordinator::~ClusterCoordinator() { Shutdown(); }

Status ClusterCoordinator::SpawnWorker(int rank, bool first_spawn) {
  WorkerProc& wp = workers_[rank];
  std::vector<std::string> env;
  for (char** e = environ; e != nullptr && *e != nullptr; ++e) {
    const std::string s(*e);
    if (s.rfind("HONGTU_DIST_", 0) == 0) continue;
    if (s.rfind("HONGTU_FAULT_SPEC=", 0) == 0) continue;
    if (s.rfind("HONGTU_CLUSTER=", 0) == 0) continue;
    if (s.rfind("OMP_NUM_THREADS=", 0) == 0) continue;
    env.push_back(s);
  }
  env.push_back(std::string(kEnvDistRole) + "=worker");
  env.push_back(std::string(kEnvDistRank) + "=" + std::to_string(rank));
  env.push_back(std::string(kEnvDistCoord) + "=" + transport_->bound_addr());
  env.push_back(std::string(kEnvDistConfig) + "=" + EncodeClusterConfig(cfg_));
  // Failure drills ride only on the FIRST spawn: a respawned worker must
  // not re-kill itself or re-inject faults, or recovery could never finish.
  if (first_spawn && rank == cfg_.fault_rank && !cfg_.worker_fault_spec.empty()) {
    env.push_back("HONGTU_FAULT_SPEC=" + cfg_.worker_fault_spec);
  }
  if (first_spawn && rank == cfg_.kill_rank && cfg_.kill_epoch >= 0) {
    env.push_back(std::string(kEnvDistKillEpoch) + "=" +
                  std::to_string(cfg_.kill_epoch));
  }
  if (first_spawn && rank == cfg_.kill2_rank && cfg_.kill2_epoch >= 0) {
    env.push_back(std::string(kEnvDistKillEpoch) + "=" +
                  std::to_string(cfg_.kill2_epoch));
  }
  if (first_spawn && rank == cfg_.kill_on_recover_rank) {
    env.push_back(std::string(kEnvDistKillOnRecover) + "=1");
  }
  long ncpu = ::sysconf(_SC_NPROCESSORS_ONLN);
  if (ncpu < 1) ncpu = 1;
  const long per = std::max(1L, ncpu / std::max(1, cfg_.num_workers));
  env.push_back("OMP_NUM_THREADS=" + std::to_string(per));

  std::vector<char*> envp;
  envp.reserve(env.size() + 1);
  for (std::string& s : env) envp.push_back(const_cast<char*>(s.c_str()));
  envp.push_back(nullptr);
  const std::string argv0 =
      "hongtu-cluster-worker-r" + std::to_string(rank);
  char* argv[] = {const_cast<char*>(argv0.c_str()), nullptr};

  const pid_t pid = ::fork();
  if (pid < 0) {
    return Status::IoError(std::string("fork: ") + std::strerror(errno));
  }
  if (pid == 0) {
    ::execve("/proc/self/exe", argv, envp.data());
    _exit(127);
  }
  {
    std::lock_guard<std::mutex> lk(run_->mu);
    wp.pid = pid;
    wp.dead = false;
    wp.hello = false;
    wp.addr.clear();
  }
  return Status::OK();
}

Status ClusterCoordinator::WaitForHello(int rank, double deadline_s) {
  const double t_end = NowS() + deadline_s;
  std::unique_lock<std::mutex> lk(run_->mu);
  while (!workers_[rank].hello) {
    if (NowS() >= t_end) {
      return Status::Internal("worker r" + std::to_string(rank) +
                              " sent no hello within " +
                              std::to_string(deadline_s) + "s");
    }
    // Catch a worker that died during startup early (bad exec, Init error).
    if (workers_[rank].pid > 0) {
      int wstatus = 0;
      if (::waitpid(workers_[rank].pid, &wstatus, WNOHANG) ==
          workers_[rank].pid) {
        workers_[rank].pid = -1;
        workers_[rank].dead = true;
        return Status::Internal("worker r" + std::to_string(rank) +
                                " exited during startup (status " +
                                std::to_string(wstatus) + ")");
      }
    }
    run_->cv.wait_for(lk, std::chrono::milliseconds(100));
  }
  return Status::OK();
}

Status ClusterCoordinator::JournalAppend(JournalRecordType type,
                                         std::string payload) {
  std::lock_guard<std::mutex> lk(journal_mu_);
  if (journal_ == nullptr || !journal_ok_) {
    return Status::OK();  // degraded: checkpoint rung still covers recovery
  }
  const Status st = journal_->Append(type, payload);
  if (!st.ok()) {
    journal_ok_ = false;
    degrade_.Record(fault::DegradeEvent::kCheckpointFallback,
                    "cluster journal append failed — degrading to "
                    "checkpoint-only recovery: " + st.ToString());
    HT_LOG(WARNING) << "cluster journal append failed (" << st.ToString()
                    << ") — coordinator restart will use the checkpoint "
                    << "fallback rung";
  }
  return st;
}

void ClusterCoordinator::JournalMember(int rank) {
  std::string addr;
  uint64_t pid = 0;
  {
    std::lock_guard<std::mutex> lk(run_->mu);
    addr = workers_[rank].addr;
    pid = static_cast<uint64_t>(workers_[rank].pid);
  }
  WireWriter w;
  w.U32(static_cast<uint32_t>(rank));
  w.Str(addr);
  w.U64(pid);
  (void)JournalAppend(JournalRecordType::kMember, w.Take());
}

void ClusterCoordinator::JournalCompact() {
  // After an applied epoch the live state is just: this term, the current
  // membership, and the applied pointer. Everything older is garbage.
  std::vector<JournalRecord> live;
  {
    WireWriter w;
    w.U64(term_);
    live.push_back(JournalRecord{JournalRecordType::kTerm, w.Take()});
  }
  {
    std::lock_guard<std::mutex> lk(run_->mu);
    for (size_t r = 0; r < workers_.size(); ++r) {
      if (workers_[r].dead || workers_[r].addr.empty()) continue;
      WireWriter w;
      w.U32(static_cast<uint32_t>(r));
      w.Str(workers_[r].addr);
      w.U64(static_cast<uint64_t>(workers_[r].pid));
      live.push_back(JournalRecord{JournalRecordType::kMember, w.Take()});
    }
  }
  {
    WireWriter w;
    w.U64(static_cast<uint64_t>(epochs_completed_));
    w.Str(ckpt_->PrimaryPath());
    live.push_back(JournalRecord{JournalRecordType::kApplied, w.Take()});
  }
  std::lock_guard<std::mutex> lk(journal_mu_);
  if (journal_ == nullptr || !journal_ok_) return;
  const Status st = journal_->Compact(live);
  if (!st.ok()) {
    HT_LOG(WARNING) << "cluster journal compact failed: " << st.ToString();
  }
}

Status ClusterCoordinator::ReattachOrRespawn(const JournalState& js) {
  const int W = cfg_.num_workers;
  for (int r = 0; r < W; ++r) {
    const auto it = js.members.find(r);
    const bool known = it != js.members.end() && !it->second.dead;
    const pid_t old_pid =
        known ? static_cast<pid_t>(it->second.pid) : static_cast<pid_t>(-1);
    bool attached = false;
    if (known && !ProbePidDead(old_pid)) {
      // Survivor of the previous incarnation: advertise the new term and
      // endpoint; the reply tells us which run (if any) it is inside.
      {
        std::lock_guard<std::mutex> lk(run_->mu);
        workers_[r].pid = old_pid;
        workers_[r].addr = it->second.addr;
        workers_[r].dead = false;
        workers_[r].hello = false;
        transport_->SetPeer(r, it->second.addr);
      }
      WireWriter w;
      w.U64(term_);
      w.Str(transport_->bound_addr());
      const double t0 = NowS();
      auto cr = transport_->Call(r, MsgType::kCoordUpdate, w.Take(),
                                 cfg_.rpc_deadline_s);
      if (cr.ok()) {
        WireReader rr(cr.ValueOrDie());
        auto rank_r = rr.U32();
        auto run_r = rr.U64();
        if (rank_r.ok() && run_r.ok() &&
            static_cast<int>(rank_r.ValueOrDie()) == r) {
          const uint64_t cur_run = run_r.ValueOrDie();
          {
            std::lock_guard<std::mutex> lk(run_->mu);
            workers_[r].hello = true;
            transport_->WatchPeer(r);
          }
          attached = true;
          ++reattaches_;
          JournalMember(r);
          degrade_.Record(fault::DegradeEvent::kWorkerReattach,
                          "worker r" + std::to_string(r) +
                              " re-attached to coordinator term " +
                              std::to_string(term_));
          LogRecoveryEvent("coord_reattach", term_, r, NowS() - t0,
                           "cur_run=" + std::to_string(cur_run));
          // Lock: a survivor can resend its pending report the instant the
          // kCoordUpdate ack lands, and the kEpochDone handler stashes it
          // into resume_reports_ under run_->mu.
          std::lock_guard<std::mutex> lk(run_->mu);
          if (resume_run_ != 0 && cur_run != resume_run_ &&
              resume_reports_.count(r) == 0) {
            // Alive but never saw (or already dropped) the resumed run's
            // broadcast: replay it in like a step recovery.
            rejoin_ranks_.insert(r);
          }
        }
      }
    }
    if (!attached) {
      // Verified dead, or alive-but-unresponsive (wedged): make it true,
      // journal the death, and respawn the rank fresh.
      WireWriter w;
      w.U32(static_cast<uint32_t>(r));
      (void)JournalAppend(JournalRecordType::kMemberDead, w.Take());
      if (known && !ProbePidDead(old_pid)) KillPidAndWait(old_pid);
      transport_->DropConnection(r);
      HT_RETURN_IF_ERROR(SpawnWorker(r, /*first_spawn=*/false));
      HT_RETURN_IF_ERROR(WaitForHello(r, 120.0));
      {
        std::lock_guard<std::mutex> lk(run_->mu);
        transport_->SetPeer(r, workers_[r].addr);
        transport_->WatchPeer(r);
      }
      ++respawns_;
      LogRecoveryEvent("coord_respawn", term_, r, 0.0,
                       "respawned during coordinator restart");
      std::lock_guard<std::mutex> lk(run_->mu);
      if (resume_run_ != 0 && resume_reports_.count(r) == 0) {
        rejoin_ranks_.insert(r);
      }
    }
  }
  return Status::OK();
}

Status ClusterCoordinator::CrashDrillWait(uint64_t run) {
  {
    std::unique_lock<std::mutex> lk(run_->mu);
    const double t_end = NowS() + cfg_.epoch_deadline_s;
    const int want = std::min(cfg_.coord_crash_done, cfg_.num_workers);
    while (run_->run == run && run_->done_count < want && NowS() < t_end) {
      run_->cv.wait_for(lk, std::chrono::milliseconds(50));
    }
  }
  HT_LOG(WARNING) << "coordinator crash drill: simulating crash in run "
                  << run << " (epoch " << epochs_completed_ << ")";
  Crash();
  return Status::Unavailable("coordinator crash drill");
}

void ClusterCoordinator::Crash() {
  {
    std::lock_guard<std::mutex> lk(run_->mu);
    if (crashed_ || shut_down_) return;
    crashed_ = true;
  }
  // Tear down exactly what SIGKILL would take: sockets and the journal fd.
  // Workers and on-disk state stay intact for a successor Start(resume).
  for (size_t r = 0; r < workers_.size(); ++r) {
    transport_->UnwatchPeer(static_cast<int>(r));
  }
  transport_->Shutdown();
  // Drop the transport now: a second Shutdown from the destructor would
  // re-run the uds teardown and unlink the successor's live coord.sock.
  transport_.reset();
  {
    std::lock_guard<std::mutex> lk(journal_mu_);
    journal_.reset();
  }
  HT_LOG(WARNING) << "cluster coordinator: simulated crash (term " << term_
                  << ") — workers left running";
}

Status ClusterCoordinator::ParseEpochDone(const std::string& payload,
                                          uint64_t* run, int* rank,
                                          DoneReport* d) {
  WireReader r(payload);
  HT_ASSIGN_OR_RETURN(*run, r.U64());
  HT_ASSIGN_OR_RETURN(const uint32_t rank_u, r.U32());
  HT_ASSIGN_OR_RETURN(const uint32_t ok_u, r.U32());
  HT_ASSIGN_OR_RETURN(d->error, r.Str());
  HT_ASSIGN_OR_RETURN(d->loss_sum, r.F64());
  HT_ASSIGN_OR_RETURN(d->acc_sum, r.F64());
  HT_ASSIGN_OR_RETURN(d->n, r.U64());
  HT_ASSIGN_OR_RETURN(const uint32_t ncnt, r.U32());
  *rank = static_cast<int>(rank_u);
  d->received = true;
  d->ok = ok_u != 0;
  for (uint32_t e = 0; e < ncnt; ++e) {
    HT_ASSIGN_OR_RETURN(const int64_t c, r.I64());
    if (e < fault::kNumDegradeEvents) d->rec.counts[e] = c;
  }
  HT_ASSIGN_OR_RETURN(const uint32_t gcnt, r.U32());
  for (uint32_t g = 0; g < gcnt; ++g) {
    HT_ASSIGN_OR_RETURN(const uint64_t rows, r.U64());
    HT_ASSIGN_OR_RETURN(const uint64_t cols, r.U64());
    const size_t count =
        static_cast<size_t>(rows) * static_cast<size_t>(cols);
    std::vector<float> buf(count);
    HT_RETURN_IF_ERROR(r.Raw(buf.data(), count * sizeof(float)));
    d->grads.push_back(std::move(buf));
  }
  return Status::OK();
}

void ClusterCoordinator::OnRequest(Transport::Request&& req) {
  switch (req.frame.type) {
    case MsgType::kHello: {
      WireReader r(req.frame.payload);
      auto rank_r = r.U32();
      auto addr_r = r.Str();
      auto pid_r = r.U64();
      if (!rank_r.ok() || !addr_r.ok() || !pid_r.ok()) {
        req.reply_error(Status::DataLoss("malformed kHello"));
        return;
      }
      const int rank = static_cast<int>(rank_r.ValueOrDie());
      if (rank < 0 || rank >= static_cast<int>(workers_.size())) {
        req.reply_error(Status::Invalid("hello from unknown rank"));
        return;
      }
      {
        std::lock_guard<std::mutex> lk(run_->mu);
        workers_[rank].addr = addr_r.ValueOrDie();
        workers_[rank].hello = true;
      }
      // Membership is a cluster decision: journal it so a successor can
      // find (or verify dead) this worker. Duplicate re-registrations are
      // idempotent — the journal replay keeps the last record per rank.
      JournalMember(rank);
      run_->cv.notify_all();
      // The ack advertises this coordinator's fencing term.
      WireWriter w;
      w.U64(term_);
      req.reply(MsgType::kAck, w.Take());
      return;
    }
    case MsgType::kEpochDone: {
      uint64_t run = 0;
      int rank = -1;
      DoneReport d;
      const Status ps = ParseEpochDone(req.frame.payload, &run, &rank, &d);
      if (!ps.ok()) {
        req.reply_error(ps);
        return;
      }
      bool accept = false;
      bool stash = false;
      int64_t run_epoch = 0;
      {
        std::lock_guard<std::mutex> lk(run_->mu);
        accept = run == run_->run && !run_->eval && rank >= 0 &&
                 rank < static_cast<int>(run_->done.size()) &&
                 !run_->done[rank].received;
        // A survivor's resent report can reach a successor BEFORE the
        // adopting RunEpoch opens the resumed run; dropping it here would
        // lose the contribution forever (the ack stops the resend loop).
        stash = !accept && resume_run_ != 0 && run == resume_run_ &&
                rank >= 0 && rank < static_cast<int>(run_->done.size()) &&
                resume_reports_.count(rank) == 0;
        run_epoch = run_->epoch;
      }
      bool all_done = false;
      if (accept || stash) {
        // WAL ordering: the raw report must be durable BEFORE the ack — an
        // acknowledged contribution has to survive a coordinator crash, or
        // the worker would consider it delivered and never resend.
        WireWriter jw;
        jw.U64(run);
        jw.U32(static_cast<uint32_t>(rank));
        jw.Str(req.frame.payload);
        (void)JournalAppend(JournalRecordType::kDoneReport, jw.Take());
        std::lock_guard<std::mutex> lk(run_->mu);
        // Re-check under the lock; the !received guard also dedups: after
        // an adoption both the adopter's thread and a late original could
        // report the same rank — first result wins.
        if (run == run_->run && !run_->eval && !run_->done[rank].received) {
          run_->done[rank] = std::move(d);
          ++run_->done_count;
          all_done = run_->done_count == cfg_.num_workers;
        } else if (resume_run_ != 0 && run == resume_run_) {
          resume_reports_.emplace(rank, req.frame.payload);
        }
      }
      if (all_done && cfg_.coord_kill_epoch >= 0 &&
          run_epoch == cfg_.coord_kill_epoch) {
        // Process-level drill: die with the whole epoch journaled but NOT
        // acked, applied, or checkpointed — the worst spot for a successor.
        HT_LOG(WARNING) << "coordinator kill drill: last kEpochDone of epoch "
                        << run_epoch << " journaled — raising SIGKILL";
        ::raise(SIGKILL);
      }
      run_->cv.notify_all();
      req.reply(MsgType::kAck, "");
      return;
    }
    case MsgType::kEvalDone: {
      WireReader r(req.frame.payload);
      auto run_r = r.U64();
      auto rank_r = r.U32();
      auto ok_r = r.U32();
      auto err_r = r.Str();
      auto correct_r = r.U64();
      auto total_r = r.U64();
      if (!run_r.ok() || !rank_r.ok() || !ok_r.ok() || !err_r.ok() ||
          !correct_r.ok() || !total_r.ok()) {
        req.reply_error(Status::DataLoss("malformed kEvalDone"));
        return;
      }
      const int rank = static_cast<int>(rank_r.ValueOrDie());
      {
        std::lock_guard<std::mutex> lk(run_->mu);
        if (run_r.ValueOrDie() == run_->run && run_->eval && rank >= 0 &&
            rank < static_cast<int>(run_->done.size()) &&
            !run_->done[rank].received) {
          DoneReport& d = run_->done[rank];
          d.received = true;
          d.ok = ok_r.ValueOrDie() != 0;
          d.error = err_r.ValueOrDie();
          d.correct = correct_r.ValueOrDie();
          d.total = total_r.ValueOrDie();
          ++run_->done_count;
        }
      }
      run_->cv.notify_all();
      req.reply(MsgType::kAck, "");
      return;
    }
    default:
      req.reply_error(Status::Invalid(std::string("coordinator: unexpected ") +
                                      MsgTypeName(req.frame.type)));
      return;
  }
}

void ClusterCoordinator::OnPeerDeath(int rank, const std::string& why) {
  if (rank < 0 || rank >= static_cast<int>(workers_.size())) return;
  {
    std::lock_guard<std::mutex> lk(run_->mu);
    WorkerProc& wp = workers_[rank];
    if (wp.dead || shut_down_ || crashed_) return;
    // The transport reports EOF/heartbeat silence; verify against the OS
    // before declaring death — an injected disconnect severs a connection
    // while the process is perfectly alive. ProbePidDead handles both our
    // children and re-attached workers inherited from a predecessor.
    if (wp.pid > 0) {
      if (ProbePidDead(wp.pid)) {
        wp.pid = -1;
      } else {
        const double age = transport_->SecondsSinceContact(rank);
        if (age < cfg_.peer_timeout_s) {
          // Alive and recently heard from: spurious report (severed conn).
          transport_->WatchPeer(rank);  // re-arm
          return;
        }
        // Alive but silent past the timeout: treat as hung, make it true.
        KillPidAndWait(wp.pid);
        wp.pid = -1;
      }
    }
    wp.dead = true;
    wp.hello = false;
    degrade_.Record(fault::DegradeEvent::kPeerDeath,
                    "worker r" + std::to_string(rank) + ": " + why);
    if (run_->run != 0) run_->deaths.emplace_back(rank, why);
  }
  LogRecoveryEvent("peer_death", term_, rank, 0.0, why);
  // Journal outside run_->mu (journal_mu_ is never nested inside it).
  WireWriter w;
  w.U32(static_cast<uint32_t>(rank));
  (void)JournalAppend(JournalRecordType::kMemberDead, w.Take());
  run_->cv.notify_all();
}

Status ClusterCoordinator::EnsureWorkersAlive() {
  for (int r = 0; r < cfg_.num_workers; ++r) {
    bool dead;
    {
      std::lock_guard<std::mutex> lk(run_->mu);
      dead = workers_[r].dead;
    }
    if (!dead) continue;
    transport_->DropConnection(r);
    HT_RETURN_IF_ERROR(SpawnWorker(r, /*first_spawn=*/false));
    HT_RETURN_IF_ERROR(WaitForHello(r, 120.0));
    {
      std::lock_guard<std::mutex> lk(run_->mu);
      transport_->SetPeer(r, workers_[r].addr);
      transport_->WatchPeer(r);
    }
    ++respawns_;
    HT_LOG(INFO) << "cluster coordinator: respawned worker r" << r
                 << " (respawn #" << respawns_ << ")";
  }
  return Status::OK();
}

std::string ClusterCoordinator::BuildWeightsPayloadTail() {
  WireWriter w;
  w.U32(static_cast<uint32_t>(cfg_.num_workers));
  {
    std::lock_guard<std::mutex> lk(run_->mu);
    for (int r = 0; r < cfg_.num_workers; ++r) w.Str(workers_[r].addr);
  }
  auto params = model_.AllParams();
  w.U32(static_cast<uint32_t>(params.size()));
  for (Tensor* p : params) {
    w.U64(static_cast<uint64_t>(p->rows()));
    w.U64(static_cast<uint64_t>(p->cols()));
    w.Bytes(p->data(), static_cast<size_t>(p->size()) * sizeof(float));
  }
  return w.Take();
}

Status ClusterCoordinator::BroadcastRun(bool eval, uint64_t run, int64_t epoch,
                                        SplitRole role) {
  const std::string tail = BuildWeightsPayloadTail();
  for (int r = 0; r < cfg_.num_workers; ++r) {
    WireWriter w;
    w.U64(run);
    if (eval) {
      w.U32(static_cast<uint32_t>(role));
    } else {
      w.U64(static_cast<uint64_t>(epoch));
      w.U32(0);  // recover flag: fresh run
    }
    w.Bytes(tail.data(), tail.size());
    auto cr = transport_->Call(r, eval ? MsgType::kEval : MsgType::kEpoch,
                               w.Take(), cfg_.rpc_deadline_s);
    if (!cr.ok()) {
      return Status::Unavailable("broadcast to worker r" + std::to_string(r) +
                                 " failed: " + cr.status().ToString());
    }
  }
  return Status::OK();
}

Status ClusterCoordinator::SendEpochTo(int rank, uint64_t run, int64_t epoch,
                                       bool recover) {
  // Fresh tail: addresses may have changed since the broadcast (this is the
  // recovery path), and the weights are still the epoch head — Adam only
  // steps after the epoch completes, so the coordinator's replica IS the
  // state every worker started this run from.
  const std::string tail = BuildWeightsPayloadTail();
  WireWriter w;
  w.U64(run);
  w.U64(static_cast<uint64_t>(epoch));
  w.U32(recover ? 1 : 0);
  w.Bytes(tail.data(), tail.size());
  auto cr = transport_->Call(rank, MsgType::kEpoch, w.Take(),
                             cfg_.rpc_deadline_s);
  if (!cr.ok()) {
    return Status::Unavailable("kEpoch to worker r" + std::to_string(rank) +
                               " failed: " + cr.status().ToString());
  }
  return Status::OK();
}

ClusterCoordinator::RunWait ClusterCoordinator::WaitRun(
    uint64_t run, double deadline_s, int* dead_rank, std::string* death_why) {
  (void)run;
  std::unique_lock<std::mutex> lk(run_->mu);
  const double t_end = NowS() + deadline_s;
  const auto decided = [&]() -> int {
    if (!run_->deaths.empty()) return 2;
    if (run_->done_count == cfg_.num_workers) return 1;
    // A worker reporting failure decides the attempt early — its peers may
    // be blocked on it and would only fall to the watchdog.
    for (const auto& d : run_->done) {
      if (d.received && !d.ok) return 1;
    }
    return 0;
  };
  for (;;) {
    const int dec = decided();
    if (dec == 2) {
      *dead_rank = run_->deaths.front().first;
      *death_why = run_->deaths.front().second;
      run_->deaths.pop_front();
      return RunWait::kDeath;
    }
    if (dec == 1) return RunWait::kAllDone;
    if (SigtermRequested()) return RunWait::kSigterm;
    if (NowS() >= t_end) return RunWait::kTimeout;
    // Tick (rather than sleep to the deadline) so SIGTERM drains promptly.
    run_->cv.wait_for(lk, std::chrono::milliseconds(250));
  }
}

std::string ClusterCoordinator::KillWedged() {
  std::lock_guard<std::mutex> lk(run_->mu);
  std::string wedged;
  for (int r = 0; r < cfg_.num_workers; ++r) {
    if (run_->done[r].received || workers_[r].dead) continue;
    wedged += " r" + std::to_string(r);
    if (workers_[r].pid > 0) {
      KillPidAndWait(workers_[r].pid);
      workers_[r].pid = -1;
    }
    workers_[r].dead = true;
    workers_[r].hello = false;
    transport_->UnwatchPeer(r);
    degrade_.Record(fault::DegradeEvent::kPeerDeath,
                    "epoch watchdog killed wedged worker r" +
                        std::to_string(r));
  }
  return wedged;
}

Status ClusterCoordinator::BroadcastPeerUpdate(uint64_t run, int rank,
                                               const std::string& addr) {
  for (int r = 0; r < cfg_.num_workers; ++r) {
    if (r == rank) continue;
    bool alive;
    {
      std::lock_guard<std::mutex> lk(run_->mu);
      alive = !workers_[r].dead && workers_[r].hello;
    }
    if (!alive) continue;
    WireWriter w;
    w.U64(run);
    w.U32(static_cast<uint32_t>(rank));
    w.Str(addr);
    auto cr = transport_->Call(r, MsgType::kPeerUpdate, w.Take(),
                               cfg_.rpc_deadline_s);
    if (!cr.ok()) {
      // Tolerated: the target may itself be dying (the kill-during-recovery
      // drill dies exactly here); its death surfaces via OnPeerDeath.
      HT_LOG(WARNING) << "cluster coordinator: kPeerUpdate(r" << rank
                      << ") to r" << r << " failed: "
                      << cr.status().ToString();
    }
  }
  return Status::OK();
}

Status ClusterCoordinator::RecoverRespawn(uint64_t run, int64_t epoch,
                                          int rank) {
  std::string old_addr;
  {
    std::lock_guard<std::mutex> lk(run_->mu);
    old_addr = workers_[rank].addr;
  }
  // First broadcast carries the OLD address: its purpose is the grace
  // extension — survivors' wait budgets must not expire during the seconds
  // the respawn takes. The real address follows after the hello.
  HT_RETURN_IF_ERROR(BroadcastPeerUpdate(run, rank, old_addr));
  transport_->DropConnection(rank);
  HT_RETURN_IF_ERROR(SpawnWorker(rank, /*first_spawn=*/false));
  HT_RETURN_IF_ERROR(WaitForHello(rank, 120.0));
  std::string new_addr;
  {
    std::lock_guard<std::mutex> lk(run_->mu);
    new_addr = workers_[rank].addr;
    transport_->SetPeer(rank, new_addr);
    transport_->WatchPeer(rank);
  }
  ++respawns_;
  ++step_recoveries_;
  degrade_.Record(fault::DegradeEvent::kStepRecovery,
                  "respawned worker r" + std::to_string(rank) +
                      " for in-epoch replay (run " + std::to_string(run) +
                      ")");
  HT_RETURN_IF_ERROR(BroadcastPeerUpdate(run, rank, new_addr));
  HT_LOG(INFO) << "cluster coordinator: step recovery — replaying r" << rank
               << " in run " << run;
  return SendEpochTo(rank, run, epoch, /*recover=*/true);
}

Status ClusterCoordinator::RecoverAdopt(uint64_t run, int64_t epoch,
                                        int rank) {
  std::string old_addr;
  int host = -1;
  {
    std::lock_guard<std::mutex> lk(run_->mu);
    old_addr = workers_[rank].addr;
    for (int r = 0; r < cfg_.num_workers; ++r) {
      if (r == rank || workers_[r].dead || !workers_[r].hello) continue;
      host = r;
      break;
    }
  }
  if (host < 0) {
    return Status::Unavailable("no survivor available to adopt partition r" +
                               std::to_string(rank));
  }
  // Grace extension first, same as the respawn path.
  HT_RETURN_IF_ERROR(BroadcastPeerUpdate(run, rank, old_addr));
  transport_->DropConnection(rank);
  std::string host_addr;
  {
    std::lock_guard<std::mutex> lk(run_->mu);
    host_addr = workers_[host].addr;
    // The dead rank's traffic now routes to the host process. The slot
    // stays marked dead so EnsureWorkersAlive gives it a fresh process at
    // the next epoch.
    workers_[rank].addr = host_addr;
  }
  const std::string tail = BuildWeightsPayloadTail();
  WireWriter w;
  w.U64(run);
  w.U64(static_cast<uint64_t>(epoch));
  w.U32(static_cast<uint32_t>(rank));
  w.Bytes(tail.data(), tail.size());
  auto cr = transport_->Call(host, MsgType::kAdoptPartition, w.Take(),
                             cfg_.rpc_deadline_s);
  if (!cr.ok()) {
    return Status::Unavailable("kAdoptPartition(r" + std::to_string(rank) +
                               ") to r" + std::to_string(host) +
                               " failed: " + cr.status().ToString());
  }
  transport_->SetPeer(rank, host_addr);  // no WatchPeer: it's host's process
  ++adoptions_;
  ++step_recoveries_;
  degrade_.Record(fault::DegradeEvent::kPartitionAdopted,
                  "partition r" + std::to_string(rank) + " adopted by r" +
                      std::to_string(host) + " (run " + std::to_string(run) +
                      ")");
  HT_LOG(INFO) << "cluster coordinator: partition r" << rank
               << " adopted by survivor r" << host << " in run " << run;
  return BroadcastPeerUpdate(run, rank, host_addr);
}

Status ClusterCoordinator::AbortAndRestore(uint64_t run,
                                           const std::string& why) {
  degrade_.Record(fault::DegradeEvent::kEpochRestart, why);
  LogRecoveryEvent("epoch_restart", term_, -1, 0.0, why);
  WireWriter w;
  w.U64(run);
  for (int r = 0; r < cfg_.num_workers; ++r) {
    bool dead;
    {
      std::lock_guard<std::mutex> lk(run_->mu);
      dead = workers_[r].dead;
    }
    if (dead) continue;
    (void)transport_->Notify(r, MsgType::kAbort, w.buf());
  }
  HT_ASSIGN_OR_RETURN(const int64_t ck_epoch, ckpt_->Restore(&model_, &adam_));
  HT_LOG(INFO) << "cluster coordinator: restored checkpoint (epoch "
               << ck_epoch << ") after: " << why;
  return Status::OK();
}

void ClusterCoordinator::SaveCheckpointResilient(int64_t epoch) {
  const fault::RetryPolicy pol = fault::DefaultRetryPolicy();
  const Status st =
      fault::RetryTransient(pol, &degrade_, "ckpt.save", [&]() -> Status {
        return ckpt_->Save(&model_, adam_, epoch);
      });
  if (!st.ok()) {
    // The epoch's weights are applied and live on the workers; losing the
    // snapshot only widens the restore distance of a FUTURE failure. Degrade
    // instead of failing a finished epoch.
    degrade_.Record(fault::DegradeEvent::kCheckpointFallback,
                    "epoch-end save failed; continuing on previous "
                    "checkpoint: " + st.ToString());
    HT_LOG(WARNING) << "cluster coordinator: checkpoint save for epoch "
                    << epoch << " failed (continuing): " << st.ToString();
  }
}

Result<ClusterEpochResult> ClusterCoordinator::RunEpoch() {
  if (shut_down_) return Status::Internal("coordinator is shut down");
  if (crashed_) return Status::Unavailable("coordinator crashed (drill)");
  degrade_.ResetEpoch();
  const double t0 = NowS();
  const int sr0 = step_recoveries_;
  const int ad0 = adoptions_;
  const double rs0 = recovery_seconds_;
  Status last = Status::OK();
  for (int attempt = 0; attempt < cfg_.max_epoch_attempts; ++attempt) {
    if (SigtermRequested()) {
      HT_LOG(INFO) << "cluster coordinator: SIGTERM — draining and "
                   << "shutting down";
      Shutdown();
      return Status::Internal("coordinator terminated by SIGTERM");
    }
    // Adoption: the first epoch after a journal resume continues the
    // in-flight run under its ORIGINAL id — journaled reports are adopted
    // verbatim, live workers finish and deliver to this incarnation.
    const bool adopting =
        attempt == 0 && resume_run_ != 0 && resume_epoch_ == epochs_completed_;
    if (!adopting) HT_RETURN_IF_ERROR(EnsureWorkersAlive());
    const uint64_t run = adopting ? resume_run_ : next_run_++;
    {
      std::lock_guard<std::mutex> lk(run_->mu);
      run_->run = run;
      run_->eval = false;
      run_->epoch = epochs_completed_;
      run_->done_count = 0;
      run_->deaths.clear();
      for (auto& d : run_->done) d = DoneReport{};
    }
    Status st = Status::OK();
    if (adopting) {
      int prefilled = 0;
      {
        std::lock_guard<std::mutex> lk(run_->mu);
        for (const auto& kv : resume_reports_) {
          uint64_t prun = 0;
          int prank = -1;
          DoneReport d;
          if (!ParseEpochDone(kv.second, &prun, &prank, &d).ok()) continue;
          if (prun != run || prank != kv.first || prank < 0 ||
              prank >= static_cast<int>(run_->done.size()) ||
              run_->done[prank].received) {
            continue;
          }
          run_->done[prank] = std::move(d);
          ++run_->done_count;
          ++prefilled;
        }
      }
      HT_LOG(INFO) << "cluster coordinator: adopted run " << run << " (epoch "
                   << epochs_completed_ << ") from journal — " << prefilled
                   << " reports prefilled, " << rejoin_ranks_.size()
                   << " ranks to rejoin";
      // Ranks that never entered (or already left) the adopted run replay
      // into it exactly like a step recovery; survivors' logs serve them.
      for (const int r : rejoin_ranks_) {
        std::string addr;
        {
          std::lock_guard<std::mutex> lk(run_->mu);
          // The rank's report may have raced in between re-attach and now
          // (its run id matched all along) — nothing to replay then.
          if (run_->done[r].received) continue;
          addr = workers_[r].addr;
        }
        const double r0 = NowS();
        st = BroadcastPeerUpdate(run, r, addr);
        if (st.ok()) {
          st = SendEpochTo(r, run, epochs_completed_, /*recover=*/true);
        }
        if (!st.ok()) break;
        recovery_seconds_ += NowS() - r0;
        ++step_recoveries_;
        degrade_.Record(fault::DegradeEvent::kStepRecovery,
                        "rejoined r" + std::to_string(r) +
                            " into resumed run " + std::to_string(run));
        LogRecoveryEvent("coord_rejoin", term_, r, NowS() - r0,
                         "replaying into resumed run " + std::to_string(run));
      }
      {
        std::lock_guard<std::mutex> lk(run_->mu);
        resume_run_ = 0;
        resume_epoch_ = -1;
        resume_reports_.clear();
        rejoin_ranks_.clear();
      }
    } else {
      // WAL: the run start (id + epoch) goes down before any worker can
      // observe the run, so a successor knows which run may be in flight.
      WireWriter jw;
      jw.U64(run);
      jw.U64(static_cast<uint64_t>(epochs_completed_));
      jw.U32(0);
      (void)JournalAppend(JournalRecordType::kRunStart, jw.Take());
      st = BroadcastRun(/*eval=*/false, run, epochs_completed_,
                        SplitRole::kTrain);
    }
    if (st.ok() && !crashed_ && cfg_.coord_crash_epoch == epochs_completed_) {
      // Always returns non-OK: the coordinator is gone after the drill.
      return CrashDrillWait(run);
    }
    int recoveries = 0;
    while (st.ok()) {
      int dead = -1;
      std::string why;
      const RunWait rw = WaitRun(run, cfg_.epoch_deadline_s, &dead, &why);
      if (rw == RunWait::kAllDone) break;
      if (rw == RunWait::kSigterm) {
        HT_LOG(INFO) << "cluster coordinator: SIGTERM mid-run — draining "
                     << "and shutting down";
        Shutdown();
        return Status::Internal("coordinator terminated by SIGTERM");
      }
      if (rw == RunWait::kTimeout) {
        st = Status::Unavailable("epoch watchdog expired (run " +
                                 std::to_string(run) +
                                 "), killed:" + KillWedged());
        break;
      }
      if (cfg_.coord_crash_on_death && !crashed_) {
        // Drill: the coordinator dies the instant it learns of the worker
        // death — composing coordinator restart with worker recovery.
        HT_LOG(WARNING) << "coordinator crash-on-death drill: r" << dead
                        << " died (" << why << ") — simulating crash";
        Crash();
        return Status::Unavailable("coordinator crash drill on death of r" +
                                   std::to_string(dead));
      }
      // A death. Try to recover in-epoch; fall back to the epoch ladder
      // when the mode forbids it, the per-epoch budget is spent, or the
      // recovery itself fails.
      if (cfg_.recover_mode == "epoch" ||
          recoveries >= cfg_.max_step_recoveries) {
        st = Status::Unavailable("worker r" + std::to_string(dead) +
                                 " died mid-run: " + why);
        break;
      }
      const double r0 = NowS();
      const Status rst = cfg_.recover_mode == "adopt"
                             ? RecoverAdopt(run, epochs_completed_, dead)
                             : RecoverRespawn(run, epochs_completed_, dead);
      recovery_seconds_ += NowS() - r0;
      if (!rst.ok()) {
        st = Status::Unavailable("in-epoch recovery of r" +
                                 std::to_string(dead) +
                                 " failed: " + rst.ToString());
        break;
      }
      LogRecoveryEvent(
          cfg_.recover_mode == "adopt" ? "adoption" : "step_recovery", term_,
          dead, NowS() - r0, why);
      ++recoveries;
    }
    std::vector<DoneReport> done;
    if (st.ok()) {
      std::lock_guard<std::mutex> lk(run_->mu);
      done = run_->done;
      for (int r = 0; r < cfg_.num_workers; ++r) {
        if (done[r].received && !done[r].ok) {
          st = Status::Unavailable("worker r" + std::to_string(r) +
                                   " reported epoch failure: " +
                                   done[r].error);
          break;
        }
        if (!done[r].received) {
          st = Status::Internal("worker r" + std::to_string(r) +
                                " never reported (run " +
                                std::to_string(run) + ")");
          break;
        }
      }
    }
    if (!st.ok()) {
      last = st;
      HT_LOG(WARNING) << "cluster epoch attempt " << (attempt + 1)
                      << " failed: " << st.ToString();
      HT_RETURN_IF_ERROR(AbortAndRestore(run, st.ToString()));
      continue;
    }
    {
      std::lock_guard<std::mutex> lk(run_->mu);
      run_->run = 0;
    }

    // Deterministic gradient reduction: sum worker contributions in rank
    // order, then one Adam step on the authoritative replica.
    auto grads = model_.AllGrads();
    model_.ZeroGrads();
    for (int r = 0; r < cfg_.num_workers; ++r) {
      if (done[r].grads.size() != grads.size()) {
        return Status::Internal("worker r" + std::to_string(r) +
                                " returned " +
                                std::to_string(done[r].grads.size()) +
                                " gradient tensors, expected " +
                                std::to_string(grads.size()));
      }
      for (size_t gi = 0; gi < grads.size(); ++gi) {
        const std::vector<float>& src = done[r].grads[gi];
        if (static_cast<int64_t>(src.size()) != grads[gi]->size()) {
          return Status::Internal("gradient shape mismatch from worker r" +
                                  std::to_string(r));
        }
        float* dst = grads[gi]->data();
        for (size_t i = 0; i < src.size(); ++i) dst[i] += src[i];
      }
    }
    std::vector<const Tensor*> cgrads(grads.begin(), grads.end());
    HT_RETURN_IF_ERROR(adam_.Step(cgrads));
    ++epochs_completed_;
    SaveCheckpointResilient(epochs_completed_);
    // WAL: the applied pointer settles the run (a successor will NOT replay
    // it), then compaction drops the now-dead prefix.
    {
      WireWriter jw;
      jw.U64(static_cast<uint64_t>(epochs_completed_));
      jw.Str(ckpt_->PrimaryPath());
      (void)JournalAppend(JournalRecordType::kApplied, jw.Take());
    }
    JournalCompact();

    ClusterEpochResult res;
    double n_total = 0;
    for (const auto& d : done) n_total += static_cast<double>(d.n);
    if (n_total > 0) {
      for (const auto& d : done) {
        res.loss += d.loss_sum;
        res.train_accuracy += d.acc_sum;
      }
      res.loss /= n_total;
      res.train_accuracy /= n_total;
    }
    res.wall_seconds = NowS() - t0;
    res.step_recoveries = step_recoveries_ - sr0;
    res.adoptions = adoptions_ - ad0;
    res.recovery_seconds = recovery_seconds_ - rs0;
    res.recovery = degrade_.SnapshotEpoch();
    for (const auto& d : done) {
      for (int e = 0; e < fault::kNumDegradeEvents; ++e) {
        res.recovery.counts[e] += d.rec.counts[e];
      }
    }
    return res;
  }
  return Status::Internal("cluster epoch failed after " +
                          std::to_string(cfg_.max_epoch_attempts) +
                          " attempts; last error: " + last.ToString());
}

Result<double> ClusterCoordinator::Evaluate(SplitRole role) {
  if (shut_down_) return Status::Internal("coordinator is shut down");
  if (crashed_) return Status::Unavailable("coordinator crashed (drill)");
  Status last = Status::OK();
  for (int attempt = 0; attempt < cfg_.max_epoch_attempts; ++attempt) {
    if (SigtermRequested()) {
      Shutdown();
      return Status::Internal("coordinator terminated by SIGTERM");
    }
    HT_RETURN_IF_ERROR(EnsureWorkersAlive());
    const uint64_t run = next_run_++;
    {
      std::lock_guard<std::mutex> lk(run_->mu);
      run_->run = run;
      run_->eval = true;
      run_->done_count = 0;
      run_->deaths.clear();
      for (auto& d : run_->done) d = DoneReport{};
    }
    // Journaled for run-id monotonicity: a successor must never reuse an
    // id a worker has already seen, even one from an eval run.
    {
      WireWriter jw;
      jw.U64(run);
      jw.U64(0);
      jw.U32(1);
      (void)JournalAppend(JournalRecordType::kRunStart, jw.Take());
    }
    Status st = BroadcastRun(/*eval=*/true, run, 0, role);
    if (st.ok()) {
      // Eval is forward-only and cheap: a death mid-eval just reruns it
      // (no in-epoch replay, no checkpoint restore — weights are intact).
      int dead = -1;
      std::string why;
      const RunWait rw = WaitRun(run, cfg_.epoch_deadline_s, &dead, &why);
      if (rw == RunWait::kDeath) {
        st = Status::Unavailable("worker r" + std::to_string(dead) +
                                 " died mid-eval: " + why);
      } else if (rw == RunWait::kSigterm) {
        Shutdown();
        return Status::Internal("coordinator terminated by SIGTERM");
      } else if (rw == RunWait::kTimeout) {
        st = Status::Unavailable("eval watchdog expired (run " +
                                 std::to_string(run) +
                                 "), killed:" + KillWedged());
      }
    }
    uint64_t correct = 0, total = 0;
    if (st.ok()) {
      std::lock_guard<std::mutex> lk(run_->mu);
      for (int r = 0; r < cfg_.num_workers; ++r) {
        const DoneReport& d = run_->done[r];
        if (!d.received) {
          st = Status::Internal("worker r" + std::to_string(r) +
                                " never reported eval (run " +
                                std::to_string(run) + ")");
          break;
        }
        if (!d.ok) {
          st = Status::Unavailable("worker r" + std::to_string(r) +
                                   " reported eval failure: " + d.error);
          break;
        }
        correct += d.correct;
        total += d.total;
      }
    }
    {
      std::lock_guard<std::mutex> lk(run_->mu);
      run_->run = 0;
    }
    if (!st.ok()) {
      last = st;
      HT_LOG(WARNING) << "cluster eval attempt " << (attempt + 1)
                      << " failed: " << st.ToString();
      WireWriter w;
      w.U64(run);
      for (int r = 0; r < cfg_.num_workers; ++r) {
        (void)transport_->Notify(r, MsgType::kAbort, w.buf());
      }
      continue;
    }
    return total == 0 ? 0.0
                      : static_cast<double>(correct) /
                            static_cast<double>(total);
  }
  return Status::Internal("cluster eval failed after " +
                          std::to_string(cfg_.max_epoch_attempts) +
                          " attempts; last error: " + last.ToString());
}

void ClusterCoordinator::Shutdown() {
  if (run_ == nullptr) {
    // Start failed before any worker was spawned; only the scratch dir
    // needs cleaning.
    if (owns_runtime_dir_ && !shut_down_) RemoveDirShallow(cfg_.runtime_dir);
    shut_down_ = true;
    return;
  }
  {
    std::lock_guard<std::mutex> lk(run_->mu);
    if (shut_down_) return;
    shut_down_ = true;  // under run_->mu: OnPeerDeath reads it there
    if (crashed_) {
      // Crash() already tore the transport down; a successor coordinator
      // owns the workers and the on-disk state now — touch nothing.
      return;
    }
  }
  if (transport_ != nullptr) {
    for (int r = 0; r < static_cast<int>(workers_.size()); ++r) {
      transport_->UnwatchPeer(r);
    }
    for (int r = 0; r < static_cast<int>(workers_.size()); ++r) {
      bool alive;
      {
        std::lock_guard<std::mutex> lk(run_->mu);
        alive = !workers_[r].dead && workers_[r].pid > 0;
      }
      if (alive) (void)transport_->Notify(r, MsgType::kShutdown, "");
    }
  }
  // Grace period, then force: never leak worker processes. ProbePidDead
  // covers re-attached workers that are not this process's children.
  const double t_end = NowS() + 3.0;
  for (;;) {
    bool any = false;
    for (auto& wp : workers_) {
      if (wp.pid <= 0) continue;
      if (ProbePidDead(wp.pid)) {
        wp.pid = -1;
      } else {
        any = true;
      }
    }
    if (!any || NowS() >= t_end) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  for (auto& wp : workers_) {
    if (wp.pid <= 0) continue;
    KillPidAndWait(wp.pid);
    wp.pid = -1;
  }
  if (transport_ != nullptr) transport_->Shutdown();
  if (owns_runtime_dir_) RemoveDirShallow(cfg_.runtime_dir);
}

}  // namespace net
}  // namespace hongtu
