/// \file metis_lite.h
/// \brief From-scratch multilevel edge-cut graph partitioner.
///
/// HongTu's first partitioning level is METIS (§4.1): balanced partitions
/// that keep closely-linked vertices together. METIS itself is not available
/// offline, so this module implements the classical multilevel scheme it is
/// built on:
///   1. coarsening by heavy-edge matching,
///   2. initial partitioning by greedy region growing on the coarsest graph,
///   3. uncoarsening with boundary Kernighan-Lin/FM refinement.
/// Directed input edges are treated as undirected for partitioning purposes.

#pragma once

#include <cstdint>
#include <vector>

#include "hongtu/common/status.h"
#include "hongtu/graph/graph.h"

namespace hongtu {

struct MetisLiteOptions {
  /// Allowed imbalance: max part weight <= (1 + imbalance) * avg.
  double imbalance = 0.05;
  /// Stop coarsening below this many vertices (scaled by num_parts).
  int64_t coarsen_until = 256;
  /// Refinement passes per level.
  int refine_passes = 8;
  uint64_t seed = 7;
};

struct PartitionResult {
  /// part_of[v] in [0, num_parts).
  std::vector<int32_t> part_of;
  int num_parts = 0;
  /// Number of cut edges (undirected, each counted once).
  int64_t edge_cut = 0;
};

/// Partitions `g` into `num_parts` balanced parts minimizing edge cut.
Result<PartitionResult> MetisLitePartition(const Graph& g, int num_parts,
                                           const MetisLiteOptions& opts = {});

/// Computes the undirected edge cut of an assignment (for tests/benches).
int64_t ComputeEdgeCut(const Graph& g, const std::vector<int32_t>& part_of);

}  // namespace hongtu
