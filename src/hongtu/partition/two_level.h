/// \file two_level.h
/// \brief Edge-cut 2-level graph partitioning (§4.1) and chunk extraction.
///
/// Level 1: metis_lite splits the graph into `m` partitions (one per device).
/// Level 2: each partition is split into `n` computation-balanced chunks by
/// range-based partitioning over in-edge counts. A chunk owns a disjoint set
/// of destination vertices together with *all* their in-edges, so
/// full-neighbor aggregation (including GAT's neighbor softmax) runs on each
/// chunk independently. The chunk stores a local CSC over its destinations
/// (edges reference positions in the chunk's neighbor set N_ij) and a local
/// CSR mirror used by parallel backward scatter.

#pragma once

#include <cstdint>
#include <vector>

#include "hongtu/common/status.h"
#include "hongtu/graph/graph.h"
#include "hongtu/partition/metis_lite.h"

namespace hongtu {

/// One execution unit G_ij: partition i (device), chunk j (batch position).
struct Chunk {
  int partition_id = 0;
  int chunk_id = 0;

  /// Destination (master) vertices, ascending global ids.
  std::vector<VertexId> dst_vertices;

  /// Neighbor set N_ij: unique global ids of all in-neighbors of
  /// dst_vertices (self-loops guarantee every destination is included).
  std::vector<VertexId> neighbors;

  /// Local CSC: in-edges of local destination d are
  /// nbr_idx[in_offsets[d] .. in_offsets[d+1]), values index `neighbors`.
  std::vector<int64_t> in_offsets;
  std::vector<int32_t> nbr_idx;
  std::vector<float> in_weights;

  /// Local CSR mirror (source-major) for race-free parallel scatter:
  /// out-edges of local source s are dst_idx[src_offsets[s] ..
  /// src_offsets[s+1]) with matching weights.
  std::vector<int64_t> src_offsets;
  std::vector<int32_t> dst_idx;
  std::vector<float> src_weights;
  /// For each CSR entry, the index of the same edge in the CSC arrays
  /// (nbr_idx/in_weights); lets edge-state (e.g. GAT attention) computed in
  /// destination order be consumed in race-free source-major scatters.
  std::vector<int32_t> src_edge_idx;

  /// For each local destination d, the index of its own vertex inside
  /// `neighbors` (valid because of self-loops); -1 if absent.
  std::vector<int32_t> self_idx;

  int64_t num_dst() const { return static_cast<int64_t>(dst_vertices.size()); }
  int64_t num_neighbors() const {
    return static_cast<int64_t>(neighbors.size());
  }
  int64_t num_edges() const { return static_cast<int64_t>(nbr_idx.size()); }
};

/// The complete 2-level partition: chunks[i][j] is scheduled on device i in
/// batch j (chunks in the same batch j run concurrently, §4.1/Fig. 5).
struct TwoLevelPartition {
  int num_partitions = 0;  ///< m
  int num_chunks = 0;      ///< n (per partition)
  std::vector<int32_t> partition_of;  ///< metis assignment per vertex
  std::vector<std::vector<Chunk>> chunks;  ///< [m][n]

  /// Neighbor replication factor alpha = sum |N_ij| / |V| (§2.4, Table 3).
  double ReplicationFactor(int64_t num_vertices) const;
};

struct TwoLevelOptions {
  MetisLiteOptions metis;
};

/// Builds the 2-level partition of `g` into m partitions x n chunks.
Result<TwoLevelPartition> BuildTwoLevelPartition(const Graph& g, int m, int n,
                                                 const TwoLevelOptions& opts = {});

/// Extracts a chunk for an explicit destination set (used by the mini-batch
/// sampler as well). `partition_id`/`chunk_id` are metadata only.
Chunk ExtractChunk(const Graph& g, std::vector<VertexId> dst_vertices,
                   int partition_id, int chunk_id);

}  // namespace hongtu
