#include "hongtu/partition/two_level.h"

#include <algorithm>
#include <unordered_map>

namespace hongtu {

double TwoLevelPartition::ReplicationFactor(int64_t num_vertices) const {
  if (num_vertices == 0) return 0.0;
  int64_t total = 0;
  for (const auto& row : chunks) {
    for (const auto& c : row) total += c.num_neighbors();
  }
  return static_cast<double>(total) / static_cast<double>(num_vertices);
}

Chunk ExtractChunk(const Graph& g, std::vector<VertexId> dst_vertices,
                   int partition_id, int chunk_id) {
  Chunk c;
  c.partition_id = partition_id;
  c.chunk_id = chunk_id;
  std::sort(dst_vertices.begin(), dst_vertices.end());
  c.dst_vertices = std::move(dst_vertices);

  // Collect the unique neighbor set N_ij.
  c.neighbors.reserve(c.dst_vertices.size() * 4);
  for (VertexId v : c.dst_vertices) {
    for (EdgeId e = g.in_offsets()[v]; e < g.in_offsets()[v + 1]; ++e) {
      c.neighbors.push_back(g.in_neighbors()[e]);
    }
  }
  std::sort(c.neighbors.begin(), c.neighbors.end());
  c.neighbors.erase(std::unique(c.neighbors.begin(), c.neighbors.end()),
                    c.neighbors.end());

  // Local CSC with edges referencing neighbor-set positions.
  auto local_of = [&](VertexId u) -> int32_t {
    const auto it =
        std::lower_bound(c.neighbors.begin(), c.neighbors.end(), u);
    return static_cast<int32_t>(it - c.neighbors.begin());
  };
  c.in_offsets.assign(c.dst_vertices.size() + 1, 0);
  for (size_t d = 0; d < c.dst_vertices.size(); ++d) {
    const VertexId v = c.dst_vertices[d];
    c.in_offsets[d + 1] =
        c.in_offsets[d] + (g.in_offsets()[v + 1] - g.in_offsets()[v]);
  }
  c.nbr_idx.resize(static_cast<size_t>(c.in_offsets.back()));
  c.in_weights.resize(static_cast<size_t>(c.in_offsets.back()));
  for (size_t d = 0; d < c.dst_vertices.size(); ++d) {
    const VertexId v = c.dst_vertices[d];
    int64_t o = c.in_offsets[d];
    for (EdgeId e = g.in_offsets()[v]; e < g.in_offsets()[v + 1]; ++e, ++o) {
      c.nbr_idx[o] = local_of(g.in_neighbors()[e]);
      c.in_weights[o] = g.in_weights()[e];
    }
  }

  // self_idx: destination's own position in the neighbor space.
  c.self_idx.resize(c.dst_vertices.size());
  for (size_t d = 0; d < c.dst_vertices.size(); ++d) {
    const VertexId v = c.dst_vertices[d];
    const auto it =
        std::lower_bound(c.neighbors.begin(), c.neighbors.end(), v);
    c.self_idx[d] = (it != c.neighbors.end() && *it == v)
                        ? static_cast<int32_t>(it - c.neighbors.begin())
                        : -1;
  }

  // Local CSR mirror (source-major) for parallel scatter.
  c.src_offsets.assign(c.neighbors.size() + 1, 0);
  for (int64_t e = 0; e < c.num_edges(); ++e) c.src_offsets[c.nbr_idx[e] + 1]++;
  for (size_t s = 0; s < c.neighbors.size(); ++s) {
    c.src_offsets[s + 1] += c.src_offsets[s];
  }
  c.dst_idx.resize(static_cast<size_t>(c.num_edges()));
  c.src_weights.resize(static_cast<size_t>(c.num_edges()));
  c.src_edge_idx.resize(static_cast<size_t>(c.num_edges()));
  {
    std::vector<int64_t> cur(c.src_offsets.begin(), c.src_offsets.end() - 1);
    for (size_t d = 0; d < c.dst_vertices.size(); ++d) {
      for (int64_t e = c.in_offsets[d]; e < c.in_offsets[d + 1]; ++e) {
        const int32_t s = c.nbr_idx[e];
        c.dst_idx[cur[s]] = static_cast<int32_t>(d);
        c.src_weights[cur[s]] = c.in_weights[e];
        c.src_edge_idx[cur[s]] = static_cast<int32_t>(e);
        ++cur[s];
      }
    }
  }
  return c;
}

Result<TwoLevelPartition> BuildTwoLevelPartition(const Graph& g, int m, int n,
                                                 const TwoLevelOptions& opts) {
  if (m <= 0 || n <= 0) {
    return Status::Invalid("BuildTwoLevelPartition: m and n must be positive");
  }
  TwoLevelPartition tl;
  tl.num_partitions = m;
  tl.num_chunks = n;

  HT_ASSIGN_OR_RETURN(PartitionResult metis,
                      MetisLitePartition(g, m, opts.metis));
  tl.partition_of = std::move(metis.part_of);

  tl.chunks.resize(static_cast<size_t>(m));
  for (int i = 0; i < m; ++i) {
    // Vertices of partition i, ascending (range-based order, Fig. 2/5).
    std::vector<VertexId> verts;
    for (int64_t v = 0; v < g.num_vertices(); ++v) {
      if (tl.partition_of[v] == i) verts.push_back(static_cast<VertexId>(v));
    }
    // Split into n chunks balanced by in-edge count (computation balance).
    int64_t total_edges = 0;
    for (VertexId v : verts) total_edges += g.in_degree(v);
    const double target = static_cast<double>(total_edges) / n;

    tl.chunks[i].reserve(static_cast<size_t>(n));
    size_t pos = 0;
    for (int j = 0; j < n; ++j) {
      std::vector<VertexId> dst;
      int64_t acc = 0;
      const bool last_chunk = (j == n - 1);
      while (pos < verts.size()) {
        const size_t remaining_v = verts.size() - pos;
        const size_t later_chunks = static_cast<size_t>(n - 1 - j);
        // Leave at least one vertex for every later chunk when possible.
        if (!dst.empty() && remaining_v <= later_chunks) break;
        if (!dst.empty() && !last_chunk && acc >= target) break;
        dst.push_back(verts[pos++]);
        acc += g.in_degree(dst.back());
      }
      tl.chunks[i].push_back(ExtractChunk(g, std::move(dst), i, j));
    }
  }
  return tl;
}

}  // namespace hongtu
