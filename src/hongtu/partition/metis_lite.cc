#include "hongtu/partition/metis_lite.h"

#include <algorithm>
#include <numeric>
#include <unordered_map>

#include "hongtu/common/random.h"

namespace hongtu {

namespace {

/// Undirected weighted graph used on every level of the multilevel scheme.
struct WorkGraph {
  int64_t n = 0;
  std::vector<int64_t> offsets;
  std::vector<int32_t> nbrs;
  std::vector<int64_t> ewgt;
  std::vector<int64_t> vwgt;
  int64_t total_vwgt = 0;
};

/// Builds the undirected working graph from the directed input, merging
/// parallel edges (weight = multiplicity) and dropping self-loops.
WorkGraph BuildWorkGraph(const Graph& g) {
  WorkGraph w;
  w.n = g.num_vertices();
  w.vwgt.assign(static_cast<size_t>(w.n), 1);
  w.total_vwgt = w.n;

  // Degree count over both directions (excluding self-loops), then merge
  // duplicates per-vertex with sort+unique.
  std::vector<int64_t> deg(static_cast<size_t>(w.n), 0);
  for (int64_t v = 0; v < w.n; ++v) {
    for (EdgeId e = g.out_offsets()[v]; e < g.out_offsets()[v + 1]; ++e) {
      if (g.out_neighbors()[e] != v) ++deg[v];
    }
    for (EdgeId e = g.in_offsets()[v]; e < g.in_offsets()[v + 1]; ++e) {
      if (g.in_neighbors()[e] != v) ++deg[v];
    }
  }
  w.offsets.assign(static_cast<size_t>(w.n) + 1, 0);
  for (int64_t v = 0; v < w.n; ++v) w.offsets[v + 1] = w.offsets[v] + deg[v];
  std::vector<int32_t> tmp(static_cast<size_t>(w.offsets[w.n]));
  {
    std::vector<int64_t> cur(w.offsets.begin(), w.offsets.end() - 1);
    for (int64_t v = 0; v < w.n; ++v) {
      for (EdgeId e = g.out_offsets()[v]; e < g.out_offsets()[v + 1]; ++e) {
        const VertexId u = g.out_neighbors()[e];
        if (u != v) tmp[cur[v]++] = u;
      }
      for (EdgeId e = g.in_offsets()[v]; e < g.in_offsets()[v + 1]; ++e) {
        const VertexId u = g.in_neighbors()[e];
        if (u != v) tmp[cur[v]++] = u;
      }
    }
  }
  // Merge duplicates.
  std::vector<int64_t> new_offsets(static_cast<size_t>(w.n) + 1, 0);
  for (int64_t v = 0; v < w.n; ++v) {
    auto b = tmp.begin() + w.offsets[v];
    auto e = tmp.begin() + w.offsets[v + 1];
    std::sort(b, e);
    int64_t uniq = 0;
    for (auto it = b; it != e;) {
      auto jt = it;
      while (jt != e && *jt == *it) ++jt;
      ++uniq;
      it = jt;
    }
    new_offsets[v + 1] = uniq;
  }
  for (int64_t v = 0; v < w.n; ++v) new_offsets[v + 1] += new_offsets[v];
  w.nbrs.resize(static_cast<size_t>(new_offsets[w.n]));
  w.ewgt.resize(static_cast<size_t>(new_offsets[w.n]));
  for (int64_t v = 0; v < w.n; ++v) {
    auto b = tmp.begin() + w.offsets[v];
    auto e = tmp.begin() + w.offsets[v + 1];
    int64_t out = new_offsets[v];
    for (auto it = b; it != e;) {
      auto jt = it;
      int64_t mult = 0;
      while (jt != e && *jt == *it) {
        ++mult;
        ++jt;
      }
      w.nbrs[out] = *it;
      w.ewgt[out] = mult;
      ++out;
      it = jt;
    }
  }
  w.offsets = std::move(new_offsets);
  return w;
}

/// Heavy-edge matching; returns coarse vertex count and fine->coarse map.
int64_t HeavyEdgeMatching(const WorkGraph& g, Rng* rng,
                          std::vector<int32_t>* coarse_of) {
  const int64_t n = g.n;
  std::vector<int32_t> match(static_cast<size_t>(n), -1);
  std::vector<int32_t> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  // Random visit order avoids pathological matchings.
  for (int64_t i = n - 1; i > 0; --i) {
    std::swap(order[i], order[rng->NextInt(static_cast<uint64_t>(i) + 1)]);
  }
  for (int32_t v : order) {
    if (match[v] != -1) continue;
    int32_t best = -1;
    int64_t best_w = -1;
    for (int64_t e = g.offsets[v]; e < g.offsets[v + 1]; ++e) {
      const int32_t u = g.nbrs[e];
      if (u == v || match[u] != -1) continue;
      if (g.ewgt[e] > best_w) {
        best_w = g.ewgt[e];
        best = u;
      }
    }
    if (best != -1) {
      match[v] = best;
      match[best] = v;
    } else {
      match[v] = v;
    }
  }
  coarse_of->assign(static_cast<size_t>(n), -1);
  int64_t nc = 0;
  for (int64_t v = 0; v < n; ++v) {
    if ((*coarse_of)[v] != -1) continue;
    const int32_t m = match[v];
    (*coarse_of)[v] = static_cast<int32_t>(nc);
    if (m != static_cast<int32_t>(v)) (*coarse_of)[m] = static_cast<int32_t>(nc);
    ++nc;
  }
  return nc;
}

/// Contracts g under the fine->coarse map.
WorkGraph Contract(const WorkGraph& g, const std::vector<int32_t>& coarse_of,
                   int64_t nc) {
  WorkGraph c;
  c.n = nc;
  c.vwgt.assign(static_cast<size_t>(nc), 0);
  for (int64_t v = 0; v < g.n; ++v) c.vwgt[coarse_of[v]] += g.vwgt[v];
  c.total_vwgt = g.total_vwgt;

  // Aggregate coarse adjacency with a per-coarse-vertex hash map.
  std::vector<std::vector<std::pair<int32_t, int64_t>>> adj(
      static_cast<size_t>(nc));
  {
    std::unordered_map<int32_t, int64_t> acc;
    // Group fine vertices by coarse id.
    std::vector<int32_t> head(static_cast<size_t>(nc), -1);
    std::vector<int32_t> next(static_cast<size_t>(g.n), -1);
    for (int64_t v = g.n - 1; v >= 0; --v) {
      const int32_t cv = coarse_of[v];
      next[v] = head[cv];
      head[cv] = static_cast<int32_t>(v);
    }
    for (int64_t cv = 0; cv < nc; ++cv) {
      acc.clear();
      for (int32_t v = head[cv]; v != -1; v = next[v]) {
        for (int64_t e = g.offsets[v]; e < g.offsets[v + 1]; ++e) {
          const int32_t cu = coarse_of[g.nbrs[e]];
          if (cu == cv) continue;
          acc[cu] += g.ewgt[e];
        }
      }
      auto& out = adj[cv];
      out.assign(acc.begin(), acc.end());
      std::sort(out.begin(), out.end());
    }
  }
  c.offsets.assign(static_cast<size_t>(nc) + 1, 0);
  for (int64_t v = 0; v < nc; ++v) {
    c.offsets[v + 1] = c.offsets[v] + static_cast<int64_t>(adj[v].size());
  }
  c.nbrs.resize(static_cast<size_t>(c.offsets[nc]));
  c.ewgt.resize(static_cast<size_t>(c.offsets[nc]));
  for (int64_t v = 0; v < nc; ++v) {
    int64_t o = c.offsets[v];
    for (const auto& [u, w] : adj[v]) {
      c.nbrs[o] = u;
      c.ewgt[o] = w;
      ++o;
    }
  }
  return c;
}

/// Greedy graph growing (GGGP-style) on the coarsest graph: each part grows
/// by repeatedly absorbing the unassigned vertex with the highest
/// connectivity into the part. O(k * n^2) but the coarsest graph is small.
std::vector<int32_t> InitialPartition(const WorkGraph& g, int k, Rng* rng) {
  std::vector<int32_t> part(static_cast<size_t>(g.n), -1);
  const int64_t target = (g.total_vwgt + k - 1) / k;
  std::vector<int64_t> weight(static_cast<size_t>(k), 0);
  // gain[v] = edge weight from v into the part currently growing.
  std::vector<int64_t> gain(static_cast<size_t>(g.n), 0);
  int64_t assigned = 0;

  for (int p = 0; p < k && assigned < g.n; ++p) {
    std::fill(gain.begin(), gain.end(), 0);
    // Seed: random unassigned vertex.
    int32_t seed = -1;
    for (int tries = 0; tries < 64 && seed == -1; ++tries) {
      const int32_t cand = static_cast<int32_t>(rng->NextInt(g.n));
      if (part[cand] == -1) seed = cand;
    }
    for (int64_t v = 0; v < g.n && seed == -1; ++v) {
      if (part[v] == -1) seed = static_cast<int32_t>(v);
    }
    if (seed == -1) break;

    int32_t next = seed;
    while (next != -1 && weight[p] < target) {
      const int32_t v = next;
      part[v] = p;
      weight[p] += g.vwgt[v];
      ++assigned;
      for (int64_t e = g.offsets[v]; e < g.offsets[v + 1]; ++e) {
        const int32_t u = g.nbrs[e];
        if (part[u] == -1) gain[u] += g.ewgt[e];
      }
      // Pick the unassigned vertex with the highest gain; fall back to any
      // unassigned vertex when the frontier is exhausted (disconnected).
      next = -1;
      int64_t best_gain = 0;
      for (int64_t u = 0; u < g.n; ++u) {
        if (part[u] == -1 && gain[u] > best_gain) {
          best_gain = gain[u];
          next = static_cast<int32_t>(u);
        }
      }
      if (next == -1 && p == k - 1) {
        for (int64_t u = 0; u < g.n && next == -1; ++u) {
          if (part[u] == -1) next = static_cast<int32_t>(u);
        }
      }
    }
  }
  // Any stragglers go to the lightest part.
  for (int64_t v = 0; v < g.n; ++v) {
    if (part[v] == -1) {
      const int p = static_cast<int>(
          std::min_element(weight.begin(), weight.end()) - weight.begin());
      part[v] = p;
      weight[p] += g.vwgt[v];
    }
  }
  return part;
}

/// One boundary-refinement sweep (greedy FM without rollback). Returns the
/// number of vertices moved.
int64_t RefinePass(const WorkGraph& g, int k, int64_t max_part_weight,
                   std::vector<int32_t>* part,
                   std::vector<int64_t>* part_weight) {
  int64_t moved = 0;
  std::vector<int64_t> gain_to(static_cast<size_t>(k), 0);
  std::vector<int32_t> touched;
  for (int64_t v = 0; v < g.n; ++v) {
    const int32_t pv = (*part)[v];
    touched.clear();
    bool boundary = false;
    for (int64_t e = g.offsets[v]; e < g.offsets[v + 1]; ++e) {
      const int32_t pu = (*part)[g.nbrs[e]];
      if (gain_to[pu] == 0) touched.push_back(pu);
      gain_to[pu] += g.ewgt[e];
      if (pu != pv) boundary = true;
    }
    if (boundary) {
      const int64_t internal = gain_to[pv];
      int32_t best = pv;
      int64_t best_gain = 0;
      for (int32_t p : touched) {
        if (p == pv) continue;
        const int64_t gain = gain_to[p] - internal;
        if (gain > best_gain &&
            (*part_weight)[p] + g.vwgt[v] <= max_part_weight) {
          best_gain = gain;
          best = p;
        }
      }
      if (best != pv) {
        (*part_weight)[pv] -= g.vwgt[v];
        (*part_weight)[best] += g.vwgt[v];
        (*part)[v] = best;
        ++moved;
      }
    }
    for (int32_t p : touched) gain_to[p] = 0;
  }
  return moved;
}

}  // namespace

int64_t ComputeEdgeCut(const Graph& g, const std::vector<int32_t>& part_of) {
  int64_t cut = 0;
  for (int64_t v = 0; v < g.num_vertices(); ++v) {
    for (EdgeId e = g.out_offsets()[v]; e < g.out_offsets()[v + 1]; ++e) {
      const VertexId u = g.out_neighbors()[e];
      if (u != v && part_of[u] != part_of[v]) ++cut;
    }
  }
  return cut;
}

Result<PartitionResult> MetisLitePartition(const Graph& g, int num_parts,
                                           const MetisLiteOptions& opts) {
  if (num_parts <= 0) {
    return Status::Invalid("MetisLitePartition: num_parts must be positive");
  }
  if (g.num_vertices() == 0) {
    return Status::Invalid("MetisLitePartition: empty graph");
  }
  PartitionResult result;
  result.num_parts = num_parts;
  if (num_parts == 1) {
    result.part_of.assign(static_cast<size_t>(g.num_vertices()), 0);
    result.edge_cut = 0;
    return result;
  }

  Rng rng(opts.seed);
  std::vector<WorkGraph> levels;
  std::vector<std::vector<int32_t>> maps;  // fine->coarse per level
  levels.push_back(BuildWorkGraph(g));

  const int64_t stop_n =
      std::max<int64_t>(opts.coarsen_until,
                        static_cast<int64_t>(num_parts) * 8);
  while (levels.back().n > stop_n) {
    std::vector<int32_t> coarse_of;
    const int64_t nc = HeavyEdgeMatching(levels.back(), &rng, &coarse_of);
    if (nc >= levels.back().n * 9 / 10) break;  // diminishing returns
    WorkGraph c = Contract(levels.back(), coarse_of, nc);
    maps.push_back(std::move(coarse_of));
    levels.push_back(std::move(c));
  }

  // Initial partition on the coarsest level: multi-start greedy growing,
  // keep the lowest-cut candidate (the coarsest graph is small, so extra
  // starts are nearly free).
  const auto coarse_cut = [&](const WorkGraph& wg,
                              const std::vector<int32_t>& p) {
    int64_t cut = 0;
    for (int64_t v = 0; v < wg.n; ++v) {
      for (int64_t e = wg.offsets[v]; e < wg.offsets[v + 1]; ++e) {
        if (p[wg.nbrs[e]] != p[v]) cut += wg.ewgt[e];
      }
    }
    return cut / 2;
  };
  std::vector<int32_t> part;
  int64_t best_cut = -1;
  for (int start = 0; start < 4; ++start) {
    std::vector<int32_t> cand =
        InitialPartition(levels.back(), num_parts, &rng);
    const int64_t cut = coarse_cut(levels.back(), cand);
    if (best_cut < 0 || cut < best_cut) {
      best_cut = cut;
      part = std::move(cand);
    }
  }

  // Uncoarsen with refinement at every level.
  for (int level = static_cast<int>(levels.size()) - 1; level >= 0; --level) {
    WorkGraph& wg = levels[level];
    std::vector<int64_t> weight(static_cast<size_t>(num_parts), 0);
    for (int64_t v = 0; v < wg.n; ++v) weight[part[v]] += wg.vwgt[v];
    const int64_t max_w = static_cast<int64_t>(
        (1.0 + opts.imbalance) * static_cast<double>(wg.total_vwgt) /
        num_parts) + 1;
    for (int pass = 0; pass < opts.refine_passes; ++pass) {
      if (RefinePass(wg, num_parts, max_w, &part, &weight) == 0) break;
    }
    if (level > 0) {
      // Project to the finer level.
      const std::vector<int32_t>& coarse_of = maps[level - 1];
      std::vector<int32_t> fine_part(coarse_of.size());
      for (size_t v = 0; v < coarse_of.size(); ++v) {
        fine_part[v] = part[coarse_of[v]];
      }
      part = std::move(fine_part);
    }
  }

  result.part_of = std::move(part);
  result.edge_cut = ComputeEdgeCut(g, result.part_of);
  return result;
}

}  // namespace hongtu
