#include "hongtu/kernels/gemm.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "hongtu/common/parallel.h"
#include "hongtu/tensor/pool.h"

namespace hongtu {
namespace kernels {
namespace {

// Micro-tile shape: the innermost kernel keeps a (kMr x kNr) float
// accumulator block in registers across the whole depth loop. kNr is one
// AVX-512 register of floats (two AVX2 registers); kMr x kNr = 8..16 vector
// registers of accumulators, leaving room for the B row and A broadcasts.
constexpr int kMr = 8;
constexpr int kNr = 16;

// Cache blocking: the packed B block (kKc x kNc floats = 256 KB) and the A
// row panel a micro-tile streams (kMr x kKc = 8 KB) stay L2-resident.
constexpr int64_t kKc = 256;
constexpr int64_t kNc = 256;

// Below this flop count the packing + tiling overhead dominates; fall back
// to the reference loops.
constexpr int64_t kSmallGemmFlops = 16 * 1024;

inline float Activate(float v, Epilogue ep) {
  switch (ep) {
    case Epilogue::kNone:
    case Epilogue::kBias:
      return v;
    case Epilogue::kBiasRelu:
      return v > 0.0f ? v : 0.0f;
    case Epilogue::kBiasSigmoid:
      return 1.0f / (1.0f + std::exp(-v));
    case Epilogue::kBiasTanh:
      return std::tanh(v);
  }
  return v;
}

// ---- Reference backend: the seed's scalar loops, extended with the fused
// epilogue so both backends expose identical semantics. -----------------------

void ReferenceGemm(const float* a, const float* b, float* c, int64_t m,
                   int64_t k, int64_t n, bool accumulate, const float* bias,
                   Epilogue ep) {
  ParallelForChunked(0, m, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      const float* pa = a + i * k;
      float* pc = c + i * n;
      if (!accumulate) {
        std::memset(pc, 0, static_cast<size_t>(n) * sizeof(float));
      }
      for (int64_t p = 0; p < k; ++p) {
        const float av = pa[p];
        if (av == 0.0f) continue;
        const float* pbrow = b + p * n;
        for (int64_t j = 0; j < n; ++j) pc[j] += av * pbrow[j];
      }
      if (ep != Epilogue::kNone) {
        for (int64_t j = 0; j < n; ++j) pc[j] = Activate(pc[j] + bias[j], ep);
      }
    }
  });
}

void ReferenceGemmTransAAccum(const float* a, const float* b, float* c,
                              int64_t k, int64_t m, int64_t n) {
  ParallelForChunked(0, m, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      float* pc = c + i * n;
      for (int64_t p = 0; p < k; ++p) {
        const float av = a[p * m + i];
        if (av == 0.0f) continue;
        const float* pbrow = b + p * n;
        for (int64_t j = 0; j < n; ++j) pc[j] += av * pbrow[j];
      }
    }
  });
}

void ReferenceGemmTransB(const float* a, const float* b, float* c, int64_t m,
                         int64_t k, int64_t n) {
  ParallelForChunked(0, m, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      const float* pa = a + i * k;
      float* pc = c + i * n;
      for (int64_t j = 0; j < n; ++j) {
        const float* pbrow = b + j * k;
        float s = 0.0f;
        for (int64_t p = 0; p < k; ++p) s += pa[p] * pbrow[p];
        pc[j] = s;
      }
    }
  });
}

// ---- Blocked backend. -------------------------------------------------------

/// Packs the (kc x nc) block of b starting at its top-left corner into
/// column panels of kNr: panel p holds kc rows of kNr contiguous floats,
/// zero-padded on the right so the micro-kernel always runs full width.
void PackB(const float* b, int64_t ldb, int64_t kc, int64_t nc, float* bp) {
  const int64_t npanels = (nc + kNr - 1) / kNr;
  for (int64_t panel = 0; panel < npanels; ++panel) {
    const int64_t j0 = panel * kNr;
    const int64_t w = std::min<int64_t>(kNr, nc - j0);
    float* dst = bp + panel * kc * kNr;
    for (int64_t p = 0; p < kc; ++p) {
      const float* srow = b + p * ldb + j0;
      float* drow = dst + p * kNr;
      for (int64_t j = 0; j < w; ++j) drow[j] = srow[j];
      for (int64_t j = w; j < kNr; ++j) drow[j] = 0.0f;
    }
  }
}

/// acc = A-tile (mr x kc, row stride lda) * packed-B panel (kc x kNr).
/// The full-height case is a separate constant-bound loop so the compiler
/// fully unrolls it and keeps `acc` in vector registers.
void MicroKernel(const float* a, int64_t lda, const float* bp, int64_t kc,
                 int mr, float acc[kMr][kNr]) {
  for (int r = 0; r < kMr; ++r) {
    for (int j = 0; j < kNr; ++j) acc[r][j] = 0.0f;
  }
  if (mr == kMr) {
    for (int64_t p = 0; p < kc; ++p) {
      const float* brow = bp + p * kNr;
      for (int r = 0; r < kMr; ++r) {
        const float av = a[r * lda + p];
#pragma omp simd
        for (int j = 0; j < kNr; ++j) acc[r][j] += av * brow[j];
      }
    }
  } else {
    for (int64_t p = 0; p < kc; ++p) {
      const float* brow = bp + p * kNr;
      for (int r = 0; r < mr; ++r) {
        const float av = a[r * lda + p];
#pragma omp simd
        for (int j = 0; j < kNr; ++j) acc[r][j] += av * brow[j];
      }
    }
  }
}

/// Adds the accumulator tile into c; on the final depth block also applies
/// the fused bias + activation epilogue. `overwrite` discards the previous
/// contents (first depth block of a non-accumulating GEMM).
void StoreTile(const float acc[kMr][kNr], float* c, int64_t ldc, int mr,
               int nr, bool overwrite, bool final_block, const float* bias,
               Epilogue ep) {
  for (int r = 0; r < mr; ++r) {
    float* crow = c + r * ldc;
    if (!final_block || ep == Epilogue::kNone) {
      if (overwrite) {
        for (int j = 0; j < nr; ++j) crow[j] = acc[r][j];
      } else {
        for (int j = 0; j < nr; ++j) crow[j] += acc[r][j];
      }
    } else {
      for (int j = 0; j < nr; ++j) {
        const float v = (overwrite ? 0.0f : crow[j]) + acc[r][j] + bias[j];
        crow[j] = Activate(v, ep);
      }
    }
  }
}

void BlockedGemm(const float* a, const float* b, float* c, int64_t m,
                 int64_t k, int64_t n, bool accumulate, const float* bias,
                 Epilogue ep) {
  // Pool-backed packing panel: GEMM runs once per chunk per layer, so a heap
  // allocation here would defeat the zero-allocation steady state.
  PoolBuffer bpack(static_cast<int64_t>(kKc) *
                   (((kNc + kNr - 1) / kNr) * kNr));
  const int64_t mtiles = (m + kMr - 1) / kMr;
  for (int64_t jc = 0; jc < n; jc += kNc) {
    const int64_t nc = std::min(kNc, n - jc);
    const int64_t npanels = (nc + kNr - 1) / kNr;
    for (int64_t pc = 0; pc < k; pc += kKc) {
      const int64_t kc = std::min(kKc, k - pc);
      PackB(b + pc * n + jc, n, kc, nc, bpack.data());
      const bool first = (pc == 0);
      const bool last = (pc + kc >= k);
      // Threads split the M dimension in contiguous micro-tile runs (the
      // effective Mc block); the packed B block is shared read-only. The
      // serial cutoff is in micro-tiles so it matches the default row
      // threshold (one tile = kMr rows).
      ParallelForChunked(0, mtiles, /*serial_below=*/256 / kMr,
                         [&](int64_t tlo, int64_t thi) {
        float acc[kMr][kNr];
        for (int64_t t = tlo; t < thi; ++t) {
          const int64_t i0 = t * kMr;
          const int mr = static_cast<int>(std::min<int64_t>(kMr, m - i0));
          const float* atile = a + i0 * k + pc;
          for (int64_t panel = 0; panel < npanels; ++panel) {
            const int64_t j0 = jc + panel * kNr;
            const int nr =
                static_cast<int>(std::min<int64_t>(kNr, jc + nc - j0));
            MicroKernel(atile, k, bpack.data() + panel * kc * kNr, kc, mr,
                        acc);
            StoreTile(acc, c + i0 * n + j0, n, mr, nr, first && !accumulate,
                      last, bias != nullptr ? bias + j0 : nullptr, ep);
          }
        }
      });
    }
  }
}

void BlockedGemmTransAAccum(const float* a, const float* b, float* c,
                            int64_t k, int64_t m, int64_t n) {
  // c[i][j] += sum_p a[p*m + i] * b[p*n + j]. Both operands are read
  // row-contiguously per depth step, so no packing is needed; the depth loop
  // is chunked so the streamed a/b blocks stay cache-resident while every
  // (kMr x kNr) output tile consumes them.
  constexpr int64_t kDepthBlock = 1024;
  const int64_t mtiles = (m + kMr - 1) / kMr;
  for (int64_t pc = 0; pc < k; pc += kDepthBlock) {
    const int64_t kc = std::min(kDepthBlock, k - pc);
    const float* ablk = a + pc * m;
    const float* bblk = b + pc * n;
    ParallelForChunked(0, mtiles, /*serial_below=*/256 / kMr,
                       [&](int64_t tlo, int64_t thi) {
      float acc[kMr][kNr];
      for (int64_t t = tlo; t < thi; ++t) {
        const int64_t i0 = t * kMr;
        const int mr = static_cast<int>(std::min<int64_t>(kMr, m - i0));
        for (int64_t j0 = 0; j0 < n; j0 += kNr) {
          const int nr = static_cast<int>(std::min<int64_t>(kNr, n - j0));
          for (int r = 0; r < kMr; ++r) {
            for (int j = 0; j < kNr; ++j) acc[r][j] = 0.0f;
          }
          if (mr == kMr && nr == kNr) {
            for (int64_t p = 0; p < kc; ++p) {
              const float* arow = ablk + p * m + i0;
              const float* brow = bblk + p * n + j0;
              for (int r = 0; r < kMr; ++r) {
                const float av = arow[r];
#pragma omp simd
                for (int j = 0; j < kNr; ++j) acc[r][j] += av * brow[j];
              }
            }
          } else {
            for (int64_t p = 0; p < kc; ++p) {
              const float* arow = ablk + p * m + i0;
              const float* brow = bblk + p * n + j0;
              for (int r = 0; r < mr; ++r) {
                const float av = arow[r];
                for (int j = 0; j < nr; ++j) acc[r][j] += av * brow[j];
              }
            }
          }
          for (int r = 0; r < mr; ++r) {
            float* crow = c + (i0 + r) * n + j0;
            for (int j = 0; j < nr; ++j) crow[j] += acc[r][j];
          }
        }
      }
    });
  }
}

void BlockedGemmTransB(const float* a, const float* b, float* c, int64_t m,
                       int64_t k, int64_t n) {
  // b is an (n x k) weight matrix — small. Transposing it once into (k x n)
  // turns the whole call into a plain blocked GEMM with packed B.
  PoolBuffer bt(k * n);
  for (int64_t j = 0; j < n; ++j) {
    const float* brow = b + j * k;
    for (int64_t p = 0; p < k; ++p) bt.data()[p * n + j] = brow[p];
  }
  BlockedGemm(a, bt.data(), c, m, k, n, /*accumulate=*/false, nullptr,
              Epilogue::kNone);
}

}  // namespace

void Gemm(Backend backend, const float* a, const float* b, float* c,
          int64_t m, int64_t k, int64_t n, bool accumulate, const float* bias,
          Epilogue epilogue) {
  if (m <= 0 || n <= 0) return;
  if (backend == Backend::kReference || m * n * k < kSmallGemmFlops) {
    ReferenceGemm(a, b, c, m, k, n, accumulate, bias, epilogue);
    return;
  }
  BlockedGemm(a, b, c, m, k, n, accumulate, bias, epilogue);
}

void GemmTransAAccum(Backend backend, const float* a, const float* b,
                     float* c, int64_t k, int64_t m, int64_t n) {
  if (m <= 0 || n <= 0 || k <= 0) return;
  if (backend == Backend::kReference || m * n * k < kSmallGemmFlops) {
    ReferenceGemmTransAAccum(a, b, c, k, m, n);
    return;
  }
  BlockedGemmTransAAccum(a, b, c, k, m, n);
}

void GemmTransB(Backend backend, const float* a, const float* b, float* c,
                int64_t m, int64_t k, int64_t n) {
  if (m <= 0 || n <= 0) return;
  if (backend == Backend::kReference || m * n * k < kSmallGemmFlops) {
    ReferenceGemmTransB(a, b, c, m, k, n);
    return;
  }
  BlockedGemmTransB(a, b, c, m, k, n);
}

void ColumnSumAccum(Backend backend, const float* x, int64_t rows,
                    int64_t cols, float* out) {
  if (rows <= 0 || cols <= 0) return;
  if (backend == Backend::kReference) {
    for (int64_t r = 0; r < rows; ++r) {
      const float* px = x + r * cols;
      for (int64_t c = 0; c < cols; ++c) out[c] += px[c];
    }
    return;
  }
  // Threads own disjoint column blocks; each block is reduced in row order,
  // so the result is independent of the thread count.
  const int64_t nblocks = (cols + kNr - 1) / kNr;
  ParallelForChunked(0, nblocks, [&](int64_t blo, int64_t bhi) {
    for (int64_t blk = blo; blk < bhi; ++blk) {
      const int64_t c0 = blk * kNr;
      const int w = static_cast<int>(std::min<int64_t>(kNr, cols - c0));
      float acc[kNr] = {0.0f};
      if (w == kNr) {
        for (int64_t r = 0; r < rows; ++r) {
          const float* px = x + r * cols + c0;
#pragma omp simd
          for (int j = 0; j < kNr; ++j) acc[j] += px[j];
        }
      } else {
        for (int64_t r = 0; r < rows; ++r) {
          const float* px = x + r * cols + c0;
          for (int j = 0; j < w; ++j) acc[j] += px[j];
        }
      }
      for (int j = 0; j < w; ++j) out[c0 + j] += acc[j];
    }
  });
}

double Dot(Backend backend, const float* a, const float* b, int64_t n) {
  double s = 0.0;
  if (backend == Backend::kReference) {
    for (int64_t i = 0; i < n; ++i) {
      s += static_cast<double>(a[i]) * b[i];
    }
    return s;
  }
#pragma omp simd reduction(+ : s)
  for (int64_t i = 0; i < n; ++i) {
    s += static_cast<double>(a[i]) * b[i];
  }
  return s;
}

}  // namespace kernels
}  // namespace hongtu
