/// \file backend.h
/// \brief Kernel backend selection for the compute layer.
///
/// Every dense (GEMM) and sparse (SpMM) primitive in src/hongtu/kernels/ has
/// two implementations:
///   - kReference: the original straight-line scalar loops from the seed.
///     Kept as the numerical ground truth for equivalence tests and A/B
///     benchmarking.
///   - kBlocked:   cache-blocked, register-tiled, `omp simd`-vectorized
///     kernels with edge-balanced parallel partitioning. The default.
///
/// The process-wide default comes from the HONGTU_KERNEL_BACKEND environment
/// variable ("blocked" | "reference", read once at first use); tests and
/// benches may override it at runtime with SetBackend().

#pragma once

namespace hongtu {
namespace kernels {

enum class Backend {
  kReference,
  kBlocked,
};

/// The backend all ops:: / gnn aggregation entry points dispatch to.
Backend ActiveBackend();

/// Overrides the active backend (process-wide; not thread-safe against
/// concurrent kernel launches — call between kernel invocations).
void SetBackend(Backend b);

/// "reference" / "blocked".
const char* BackendName(Backend b);

}  // namespace kernels
}  // namespace hongtu
