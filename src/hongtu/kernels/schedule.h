/// \file schedule.h
/// \brief Epoch-cached edge schedules: the banded/bucketed edge permutation
/// behind the propagation-blocked aggregation kernels.
///
/// The single-pass SpMM kernels (spmm.h) walk a chunk's compressed axis in
/// row order and fetch the *other* axis at random. Once the random side's
/// row table outgrows L2, every edge is a cache miss and the kernel is
/// bound by L3/DRAM latency — the measured d64 gather/scatter plateau.
///
/// An EdgeSchedule fixes the access pattern instead of the arithmetic. It
/// compiles, once per (chunk, direction), a permutation of the edge list
/// into S x B buckets:
///
///   - B source *bands*: ranges of random-side rows sized so one band's
///     slice of the dense input fits in L2 (classic propagation/cache
///     blocking, applied to row-major SpMM). Sweeping bands in the outer
///     loop makes every random fetch inside a bucket L2-resident.
///   - S destination *shards*: contiguous, edge-balanced ranges of output
///     rows. A shard's rows are written by exactly one thread, so the
///     scatter direction parallelizes with no atomics and no false sharing.
///
/// Within a bucket, edges keep output-row-major order, so consecutive edges
/// of one output row form a *run* that accumulates in registers and touches
/// the output row once per (row, band) instead of once per edge. The first
/// run of each output row is flagged (sign bit of the packed output index)
/// so non-accumulating kernels store instead of read-modify-write — no
/// up-front zero fill of the output, no wasted first read.
///
/// Schedules are immutable after Build and shared read-only by every layer
/// and epoch — the same amortization the dedup plan gets for communication.
/// Storage is one slab from the process-wide TensorPool, so engines that
/// build schedules at setup stay allocation-free in steady-state epochs.

#pragma once

#include <cstdint>

#include "hongtu/tensor/pool.h"

namespace hongtu {
namespace kernels {

/// Geometry knobs for EdgeSchedule::Build.
struct EdgeScheduleParams {
  /// Band sizing target: one band's input slice is at most `l2_bytes` at
  /// `max_dim` columns. 0 = detect the host L2 size (fallback 1 MiB).
  int64_t l2_bytes = 0;
  /// The widest feature dimension the schedule will serve. Bands are sized
  /// for this width, so narrower layers are strictly more cache-resident.
  int max_dim = 64;
  /// Destination-range buckets; the parallel-scatter width. Threads beyond
  /// this count idle in banded kernels, threads below it take several
  /// shards each (band-outer order keeps the band slice hot across them).
  int num_shards = 16;
};

/// The compiled banded/bucketed permutation of one CSR/CSC edge structure.
/// Move-only; storage is pooled and released on destruction.
class EdgeSchedule {
 public:
  EdgeSchedule() = default;

  /// Compiles the schedule for an edge structure with `num_out` output rows
  /// (compressed axis: `offsets` has num_out+1 entries), edge targets `idx`
  /// (values in [0, num_in) — the random-access axis), and optional static
  /// per-edge `weights`. When `weights` is non-null a permuted copy is
  /// stored and streamed sequentially whenever a kernel call passes the
  /// *same pointer*; other weight arrays fall back to indexed lookups
  /// through edge_perm(). The offsets/idx arrays are borrowed only during
  /// Build. `weights`, however, anchors a pointer-identity check for the
  /// schedule's lifetime: the caller must keep that array alive and
  /// unmodified as long as the schedule is used (engines satisfy this by
  /// owning chunk and schedule together) — freeing it and passing a
  /// different array that reuses the address would silently select the
  /// stale permuted copy.
  ///
  /// Build parallelizes its counting and placement passes over shards
  /// (shards own disjoint bucket and output-row ranges, so the passes are
  /// race-free and the result is identical to the serial order). When
  /// `bucket_counts` is non-null it must hold the per-bucket edge counts
  /// (num_shards * num_bands entries, bucket id = shard * num_bands + band,
  /// against ShardRowBounds/band geometry of exactly this structure) and the
  /// counting pass is skipped entirely — ChunkSchedules::Build uses this to
  /// derive the scatter mirror's histogram from the gather direction's edge
  /// walk instead of re-walking the CSR.
  static EdgeSchedule Build(int64_t num_out, const int64_t* offsets,
                            const int32_t* idx, const float* weights,
                            int64_t num_in, const EdgeScheduleParams& p = {},
                            const int64_t* bucket_counts = nullptr);

  /// Rows per band Build resolves for `p` (band slice of max_dim columns
  /// fills the L2 budget; 256-row floor).
  static int64_t ResolveBandRows(const EdgeScheduleParams& p);
  /// Bands covering a random-side table of `num_in` rows under `p`.
  static int NumBands(int64_t num_in, const EdgeScheduleParams& p);
  /// The shard boundaries Build uses: max(p.num_shards, 1) + 1 ascending
  /// output-row bounds with equal edge shares, written to `out`. Exposed so
  /// histogram producers (ChunkSchedules::Build) bucket edges exactly the
  /// way Build will.
  static void ShardRowBounds(int64_t num_out, const int64_t* offsets,
                             const EdgeScheduleParams& p, int64_t* out);

  bool empty() const { return num_edges_ == 0; }
  int num_bands() const { return num_bands_; }
  int num_shards() const { return num_shards_; }
  int64_t num_out() const { return num_out_; }
  int64_t num_in() const { return num_in_; }
  int64_t num_edges() const { return num_edges_; }
  int64_t band_rows() const { return band_rows_; }
  /// Pooled bytes held by this schedule (the one-time build cost engines
  /// meter against the simulated platform).
  int64_t bytes() const { return slab_floats_ * 4; }

  /// True when the banded kernel is expected to beat the single-pass walk
  /// for a call of this shape: multiple bands, a supported width, and a
  /// random-side table that exceeds the L2 the bands were sized for.
  /// Non-accumulating gathers below 32 columns stay single-pass (a 64-byte
  /// row already hides its own latency; the permuted index stream would
  /// cost more than it saves).
  bool ShouldUse(int64_t dim, bool accumulate) const;

  // ---- Kernel-facing raw arrays (all sized/packed by Build). ---------------

  /// Edge ranges per bucket, bucket id = shard * num_bands() + band;
  /// num_shards()*num_bands()+1 entries.
  const int64_t* bucket_offsets() const { return bucket_off_; }
  /// Edge-count prefix per shard (num_shards()+1 entries); feeds
  /// ParallelForBalanced so threads get equal edge shares.
  const int64_t* shard_edge_prefix() const { return shard_edges_; }
  /// Output-row boundaries per shard (num_shards()+1 entries).
  const int64_t* shard_row_bounds() const { return shard_rows_; }
  /// Random-side row per permuted edge.
  const int32_t* rnd_perm() const { return rnd_perm_; }
  /// Output row per permuted edge, with bit 31 set on the first edge of the
  /// row's first run (the kernel's store-vs-accumulate cue).
  const int32_t* out_perm() const { return out_perm_; }
  /// Original edge index per permuted edge (a bijection on [0, num_edges)).
  const int32_t* edge_perm() const { return edge_perm_; }
  /// Permuted copy of the weights captured at Build; null when Build got
  /// none.
  const float* w_perm() const { return w_perm_; }
  /// The weight array w_perm() was built from (identity check only — never
  /// dereferenced).
  const float* built_weights() const { return built_weights_; }
  /// Output rows with no edges (must be zeroed by non-accumulating kernels);
  /// num_zero_rows() entries.
  const int32_t* zero_rows() const { return zero_rows_; }
  int64_t num_zero_rows() const { return num_zero_rows_; }

  /// Mask for out_perm() entries: row = v & kRowMask, first-run = v < 0.
  static constexpr int32_t kRowMask = 0x7fffffff;

  /// Upper bound on bytes() for a structure of this shape (assumes every
  /// output row could be zero-degree). Lets engines check device capacity
  /// *before* paying for the build; Build's actual footprint never exceeds
  /// it.
  static int64_t EstimateBytes(int64_t num_out, int64_t num_in,
                               int64_t num_edges, bool has_weights,
                               const EdgeScheduleParams& p = {});

  /// The L2 budget `Build` resolves when params.l2_bytes == 0.
  static int64_t DetectL2Bytes();

 private:
  PoolBuffer slab_;        ///< one pooled allocation holding every array
  int64_t slab_floats_ = 0;

  int64_t num_out_ = 0;
  int64_t num_in_ = 0;
  int64_t num_edges_ = 0;
  int64_t band_rows_ = 0;
  int64_t l2_bytes_ = 0;
  int num_bands_ = 0;
  int num_shards_ = 0;
  int64_t num_zero_rows_ = 0;

  const int64_t* bucket_off_ = nullptr;
  const int64_t* shard_edges_ = nullptr;
  const int64_t* shard_rows_ = nullptr;
  const int32_t* rnd_perm_ = nullptr;
  const int32_t* out_perm_ = nullptr;
  const int32_t* edge_perm_ = nullptr;
  const float* w_perm_ = nullptr;
  const float* built_weights_ = nullptr;
  const int32_t* zero_rows_ = nullptr;
};

}  // namespace kernels
}  // namespace hongtu
