/// \file gemm.h
/// \brief Dense kernels: cache-blocked, register-tiled GEMM with fused
/// epilogues, plus the small dense reductions the layers need.
///
/// All functions operate on raw row-major float32 buffers so the kernel layer
/// depends only on common/. The `Backend` argument picks between the
/// reference scalar loops and the blocked SIMD implementation; callers
/// normally pass kernels::ActiveBackend().
///
/// The blocked GEMM uses Mc/Kc/Nc cache blocking with B packed into
/// (Kc x kNr) panels and an unrolled `#pragma omp simd` micro-kernel holding
/// a (kMr x kNr) accumulator tile in registers. The epilogue (bias add +
/// activation) is fused into the final-k-block store, so UPDATE stages write
/// their output in a single pass over C.

#pragma once

#include <cstdint>

#include "hongtu/kernels/backend.h"

namespace hongtu {
namespace kernels {

/// Fused elementwise tail applied while storing the final GEMM result.
/// All kinds except kNone add the (1 x n) bias row first.
enum class Epilogue {
  kNone,
  kBias,         ///< c = c + bias
  kBiasRelu,     ///< c = relu(c + bias)
  kBiasSigmoid,  ///< c = sigmoid(c + bias)
  kBiasTanh,     ///< c = tanh(c + bias)
};

/// c (m x n) = [c +] a (m x k) * b (k x n), then the epilogue.
/// `accumulate` adds into the existing contents of c instead of overwriting.
/// `bias` is a (1 x n) row; required iff `epilogue != kNone`.
void Gemm(Backend backend, const float* a, const float* b, float* c,
          int64_t m, int64_t k, int64_t n, bool accumulate = false,
          const float* bias = nullptr, Epilogue epilogue = Epilogue::kNone);

/// c (m x n) += a^T * b, with a (k x m) and b (k x n). The dW kernel.
void GemmTransAAccum(Backend backend, const float* a, const float* b,
                     float* c, int64_t k, int64_t m, int64_t n);

/// c (m x n) = a (m x k) * b^T, with b (n x k). The dX kernel.
void GemmTransB(Backend backend, const float* a, const float* b, float* c,
                int64_t m, int64_t k, int64_t n);

/// out (1 x cols) += column sums of x (rows x cols). The db kernel; threads
/// split the column blocks, so the per-column add order stays row-major and
/// results are deterministic for any thread count.
void ColumnSumAccum(Backend backend, const float* x, int64_t rows,
                    int64_t cols, float* out);

/// Returns sum_i a[i] * b[i] accumulated in double (the d_eps kernel).
double Dot(Backend backend, const float* a, const float* b, int64_t n);

}  // namespace kernels
}  // namespace hongtu
