#include "hongtu/kernels/spmm.h"

#include <cstring>
#include <vector>

#include "hongtu/common/parallel.h"

namespace hongtu {
namespace kernels {
namespace {

constexpr int kBlk = 16;  // feature column block held in registers

template <EdgeWeight W>
inline float EdgeCoeff(const float* weights, const int64_t* col_offsets,
                       const int32_t col, const int64_t e) {
  if (W == EdgeWeight::kExplicit) return weights[e];
  if (W == EdgeWeight::kInvColDegree) {
    const int64_t deg = col_offsets[col + 1] - col_offsets[col];
    return deg > 0 ? 1.0f / static_cast<float>(deg) : 0.0f;
  }
  return 1.0f;  // kUnit and kInvRowDegree (row scale applied at the store)
}

/// Reference rows: the seed's scalar loops — zero/accumulate the output row,
/// then one pass over the edges with a scalar feature loop. kInvRowDegree
/// sums into a scratch row so the 1/deg scale applies only to this call's
/// contribution (matching the blocked backend) even under `accumulate`.
/// Narrow rows (dim <= kBlk — the only shape the blocked backend routes
/// here) keep that scratch on the stack; wider reference-backend calls fall
/// back to a heap buffer.
template <EdgeWeight W>
void ReferenceRows(int64_t lo, int64_t hi, const int64_t* offsets,
                   const int32_t* idx, const float* weights,
                   const int64_t* col_offsets, const float* x, int64_t dim,
                   bool accumulate, float* out) {
  float stack_scratch[kBlk];
  std::vector<float> heap_scratch;
  float* scratch = stack_scratch;
  if (W == EdgeWeight::kInvRowDegree && dim > kBlk) {
    heap_scratch.resize(static_cast<size_t>(dim));
    scratch = heap_scratch.data();
  }
  for (int64_t r = lo; r < hi; ++r) {
    float* orow = out + r * dim;
    float* sum = orow;
    if (W == EdgeWeight::kInvRowDegree) {
      sum = scratch;
      for (int64_t c = 0; c < dim; ++c) sum[c] = 0.0f;
    } else if (!accumulate) {
      for (int64_t c = 0; c < dim; ++c) orow[c] = 0.0f;
    }
    const int64_t e0 = offsets[r], e1 = offsets[r + 1];
    for (int64_t e = e0; e < e1; ++e) {
      const int32_t s = idx[e];
      const float w = EdgeCoeff<W>(weights, col_offsets, s, e);
      const float* xrow = x + static_cast<int64_t>(s) * dim;
      for (int64_t c = 0; c < dim; ++c) sum[c] += w * xrow[c];
    }
    if (W == EdgeWeight::kInvRowDegree) {
      const int64_t deg = e1 - e0;
      const float inv = deg > 0 ? 1.0f / static_cast<float>(deg) : 0.0f;
      if (accumulate) {
        for (int64_t c = 0; c < dim; ++c) orow[c] += inv * sum[c];
      } else {
        for (int64_t c = 0; c < dim; ++c) orow[c] = inv * sum[c];
      }
    }
  }
}

// How many edges ahead to software-prefetch neighbor rows. The register
// accumulator chain keeps the out-of-order window from running ahead on its
// own (FMAs pile up un-retired behind the pending random loads), so without
// explicit prefetch the blocked kernel loses the memory-level parallelism
// the reference's load/store loop gets for free.
constexpr int64_t kPrefetchDist = 8;

/// One column-block pass over a row's edge list: acc[BW] (kept in vector
/// registers) accumulates columns [c0, c0+BW) of every neighbor row, then
/// the output row segment is touched exactly once. `e_max` bounds the
/// prefetch index (edges past e1 belong to the next rows of the same CSC
/// walk, so warming them is still useful).
template <int BW, EdgeWeight W>
inline void AccumulateBlock(int64_t e0, int64_t e1, int64_t e_max,
                            const int32_t* idx, const float* weights,
                            const int64_t* col_offsets, const float* x,
                            int64_t dim, int64_t c0, float row_scale,
                            bool accumulate, float* orow) {
  // Single-line rows (dim == 16) get enough memory-level parallelism from
  // the out-of-order window alone; prefetch only pays off on wider rows.
  const bool do_prefetch = BW > 16 || dim > 16;
  float acc[BW] = {0.0f};
  for (int64_t e = e0; e < e1; ++e) {
    if (do_prefetch && e + kPrefetchDist < e_max) {
      const float* p =
          x + static_cast<int64_t>(idx[e + kPrefetchDist]) * dim + c0;
      for (int j = 0; j < BW; j += 16) __builtin_prefetch(p + j, 0, 1);
    }
    const int32_t s = idx[e];
    const float w = EdgeCoeff<W>(weights, col_offsets, s, e);
    const float* xrow = x + static_cast<int64_t>(s) * dim + c0;
#pragma omp simd
    for (int j = 0; j < BW; ++j) acc[j] += w * xrow[j];
  }
  if (accumulate) {
    for (int j = 0; j < BW; ++j) orow[c0 + j] += row_scale * acc[j];
  } else {
    for (int j = 0; j < BW; ++j) orow[c0 + j] = row_scale * acc[j];
  }
}

/// Blocked rows: the feature axis is covered by the widest register-resident
/// column blocks first (64, then 32, 16, scalar tail), so a typical GNN
/// feature row (16..64 floats) is aggregated in a *single* pass over the
/// edge list — neighbor rows are fetched once, not once per 16 columns. Per
/// element the addition order is still edge order, so results match the
/// reference bit-for-bit.
template <EdgeWeight W>
void BlockedRows(int64_t lo, int64_t hi, int64_t e_max,
                 const int64_t* offsets, const int32_t* idx,
                 const float* weights, const int64_t* col_offsets,
                 const float* x, int64_t dim, bool accumulate, float* out) {
  for (int64_t r = lo; r < hi; ++r) {
    const int64_t e0 = offsets[r], e1 = offsets[r + 1];
    float* orow = out + r * dim;
    float row_scale = 1.0f;
    if (W == EdgeWeight::kInvRowDegree) {
      const int64_t deg = e1 - e0;
      row_scale = deg > 0 ? 1.0f / static_cast<float>(deg) : 0.0f;
    }
    int64_t c0 = 0;
    while (dim - c0 >= 64) {
      AccumulateBlock<64, W>(e0, e1, e_max, idx, weights, col_offsets, x,
                             dim, c0, row_scale, accumulate, orow);
      c0 += 64;
    }
    if (dim - c0 >= 32) {
      AccumulateBlock<32, W>(e0, e1, e_max, idx, weights, col_offsets, x,
                             dim, c0, row_scale, accumulate, orow);
      c0 += 32;
    }
    if (dim - c0 >= 16) {
      AccumulateBlock<16, W>(e0, e1, e_max, idx, weights, col_offsets, x,
                             dim, c0, row_scale, accumulate, orow);
      c0 += 16;
    }
    if (c0 < dim) {
      const int tail = static_cast<int>(dim - c0);
      float acc[kBlk] = {0.0f};
      for (int64_t e = e0; e < e1; ++e) {
        const int32_t s = idx[e];
        const float w = EdgeCoeff<W>(weights, col_offsets, s, e);
        const float* xrow = x + static_cast<int64_t>(s) * dim + c0;
        for (int j = 0; j < tail; ++j) acc[j] += w * xrow[j];
      }
      if (accumulate) {
        for (int j = 0; j < tail; ++j) orow[c0 + j] += row_scale * acc[j];
      } else {
        for (int j = 0; j < tail; ++j) orow[c0 + j] = row_scale * acc[j];
      }
    }
  }
}

// ---- Propagation-blocked (banded) path -------------------------------------
//
// Edges are walked in the schedule's (band, shard) bucket order: band-outer,
// shard-inner, so one thread's sweep keeps a single L2-resident band slice
// of `x` hot across all of its shards before moving on. Within a bucket,
// consecutive edges of one output row form a run accumulated in registers;
// the run's output row is touched once, and the row's *first* run (flag bit
// in out_perm) stores instead of read-modify-write in non-accumulating
// calls, which also removes the up-front zero fill of the output.

/// Largest feature width the banded kernels serve (the generic path's
/// stack accumulator); wider calls fall back to the single-pass walk.
constexpr int kBandedMaxDim = 256;

/// Edges ahead to prefetch the next runs' input rows. Longer than the
/// single-pass kernel's distance: banded fetches are L2-resident more often,
/// so the misses that remain need a deeper pipeline to hide.
constexpr int64_t kBandedPrefetchDist = 16;

template <EdgeWeight W>
inline float BandedCoeff(const float* w_perm, const float* weights,
                         const int32_t* edge_perm, const int64_t* col_offsets,
                         const int32_t rnd_row, const int64_t k) {
  if (W == EdgeWeight::kExplicit) {
    // The permuted copy streams sequentially; foreign weight arrays (not the
    // ones captured at Build) fall back to indexed loads.
    return w_perm != nullptr ? w_perm[k] : weights[edge_perm[k]];
  }
  if (W == EdgeWeight::kInvColDegree) {
    const int64_t deg = col_offsets[rnd_row + 1] - col_offsets[rnd_row];
    return deg > 0 ? 1.0f / static_cast<float>(deg) : 0.0f;
  }
  return 1.0f;  // kUnit; kInvRowDegree applies its scale per run
}

/// One thread's sweep over shards [t_lo, t_hi). DIM > 0 is a compile-time
/// width; DIM == 0 reads the runtime `dim` (any width <= kBandedMaxDim).
template <int DIM, EdgeWeight W, bool ACC>
void BandedShards(const EdgeSchedule& s, int64_t t_lo, int64_t t_hi,
                  const float* weights, const int64_t* col_offsets,
                  const int64_t* offsets, const float* x, int64_t rt_dim,
                  float* out) {
  const int64_t dim = DIM > 0 ? DIM : rt_dim;
  const int B = s.num_bands();
  const int64_t* bo = s.bucket_offsets();
  const int32_t* rnd = s.rnd_perm();
  const int32_t* op = s.out_perm();
  const int32_t* ep = s.edge_perm();
  const float* wp =
      (W == EdgeWeight::kExplicit && weights == s.built_weights())
          ? s.w_perm()
          : nullptr;
  for (int b = 0; b < B; ++b) {
    for (int64_t t = t_lo; t < t_hi; ++t) {
      const int64_t bid = t * B + b;
      const int64_t e1 = bo[bid + 1];
      int64_t k = bo[bid];
      while (k < e1) {
        const int32_t ov = op[k];
        const int32_t d = ov & EdgeSchedule::kRowMask;
        const bool first = ov < 0;
        if (k + kBandedPrefetchDist < e1) {
          // Input rows pull all the way into L1 (they are usually already in
          // the L2-resident band slice, and the FMA loop reads them next);
          // the upcoming run's output row warms L2 for its read-modify-write.
          const float* p =
              x + static_cast<int64_t>(rnd[k + kBandedPrefetchDist]) * dim;
          for (int64_t j = 0; j < dim; j += 16) __builtin_prefetch(p + j, 0, 3);
          const float* q =
              out + static_cast<int64_t>(op[k + kBandedPrefetchDist] &
                                         EdgeSchedule::kRowMask) *
                        dim;
          for (int64_t j = 0; j < dim; j += 16) __builtin_prefetch(q + j, 1, 1);
        }
        float acc[DIM > 0 ? DIM : kBandedMaxDim];
        {
          const int32_t sr = rnd[k];
          const float w = BandedCoeff<W>(wp, weights, ep, col_offsets, sr, k);
          const float* xr = x + static_cast<int64_t>(sr) * dim;
#pragma omp simd
          for (int64_t j = 0; j < dim; ++j) acc[j] = w * xr[j];
          ++k;
        }
        // Continuation edges of a run are never flagged, so the raw packed
        // value compares equal to the masked row id.
        while (k < e1 && op[k] == d) {
          const int32_t sr = rnd[k];
          const float w = BandedCoeff<W>(wp, weights, ep, col_offsets, sr, k);
          const float* xr = x + static_cast<int64_t>(sr) * dim;
#pragma omp simd
          for (int64_t j = 0; j < dim; ++j) acc[j] += w * xr[j];
          ++k;
        }
        float scale = 1.0f;
        if (W == EdgeWeight::kInvRowDegree) {
          const int64_t deg = offsets[d + 1] - offsets[d];
          scale = deg > 0 ? 1.0f / static_cast<float>(deg) : 0.0f;
        }
        float* orow = out + static_cast<int64_t>(d) * dim;
        if (!ACC && first) {
#pragma omp simd
          for (int64_t j = 0; j < dim; ++j) orow[j] = scale * acc[j];
        } else {
#pragma omp simd
          for (int64_t j = 0; j < dim; ++j) orow[j] += scale * acc[j];
        }
      }
    }
  }
}

template <EdgeWeight W, bool ACC>
void BandedShardsAnyDim(const EdgeSchedule& s, int64_t t_lo, int64_t t_hi,
                        const float* weights, const int64_t* col_offsets,
                        const int64_t* offsets, const float* x, int64_t dim,
                        float* out) {
  switch (dim) {
    case 16:
      BandedShards<16, W, ACC>(s, t_lo, t_hi, weights, col_offsets, offsets,
                               x, dim, out);
      return;
    case 32:
      BandedShards<32, W, ACC>(s, t_lo, t_hi, weights, col_offsets, offsets,
                               x, dim, out);
      return;
    case 64:
      BandedShards<64, W, ACC>(s, t_lo, t_hi, weights, col_offsets, offsets,
                               x, dim, out);
      return;
    case 128:
      BandedShards<128, W, ACC>(s, t_lo, t_hi, weights, col_offsets, offsets,
                                x, dim, out);
      return;
    case 256:
      BandedShards<256, W, ACC>(s, t_lo, t_hi, weights, col_offsets, offsets,
                                x, dim, out);
      return;
    default:
      BandedShards<0, W, ACC>(s, t_lo, t_hi, weights, col_offsets, offsets,
                              x, dim, out);
      return;
  }
}

template <EdgeWeight W>
void BandedSpmm(const EdgeSchedule& s, const int64_t* offsets,
                const float* weights, const int64_t* col_offsets,
                const float* x, int64_t dim, bool accumulate, float* out) {
  // Rows without edges never see a run; non-accumulating calls must still
  // define them (self-loops make this list empty in practice).
  if (!accumulate && s.num_zero_rows() > 0) {
    const int32_t* zr = s.zero_rows();
    ParallelForChunked(0, s.num_zero_rows(), [&](int64_t lo, int64_t hi) {
      for (int64_t i = lo; i < hi; ++i) {
        std::memset(out + static_cast<int64_t>(zr[i]) * dim, 0,
                    static_cast<size_t>(dim) * sizeof(float));
      }
    });
  }
  // Threads own disjoint shards (disjoint output-row ranges): conflict-free
  // scatter, no atomics, no false sharing. The low serial cutoff is on
  // *edges* — the shard count itself is always tiny. The worker count is
  // capped at the available processor count: the whole point of a band is
  // to own an L2, and oversubscribed threads time-slicing one processor
  // would evict each other's slice (the single-pass kernels honor the
  // caller's request unchanged — they carry no per-thread cache working
  // set). SMT siblings sharing an L2 can still contend; the cap only
  // removes time-slicing thrash.
  ParallelForBalanced(
      s.num_shards(), s.shard_edge_prefix(), kParallelSerialThreshold,
      [&](int64_t lo, int64_t hi) {
        if (accumulate) {
          BandedShardsAnyDim<W, true>(s, lo, hi, weights, col_offsets,
                                      offsets, x, dim, out);
        } else {
          BandedShardsAnyDim<W, false>(s, lo, hi, weights, col_offsets,
                                       offsets, x, dim, out);
        }
      },
      /*max_threads=*/omp_get_num_procs());
}

template <EdgeWeight W>
void SpmmImpl(Backend backend, int64_t num_rows, const int64_t* offsets,
              const int32_t* idx, const float* weights,
              const int64_t* col_offsets, const float* x, int64_t dim,
              bool accumulate, float* out, const EdgeSchedule* sched) {
  if (backend == Backend::kBlocked && sched != nullptr &&
      sched->num_out() == num_rows &&
      sched->num_edges() == offsets[num_rows] &&
      sched->ShouldUse(dim, accumulate)) {
    BandedSpmm<W>(*sched, offsets, weights, col_offsets, x, dim, accumulate,
                  out);
    return;
  }
  if (backend == Backend::kReference || dim < kBlk) {
    // Vertex-balanced split, scalar inner loops: the seed behavior.
    if (backend == Backend::kReference) {
      ParallelForChunked(0, num_rows, [&](int64_t lo, int64_t hi) {
        ReferenceRows<W>(lo, hi, offsets, idx, weights, col_offsets, x, dim,
                         accumulate, out);
      });
    } else {
      // Narrow features still get the edge-balanced thread split.
      ParallelForBalanced(num_rows, offsets, [&](int64_t lo, int64_t hi) {
        ReferenceRows<W>(lo, hi, offsets, idx, weights, col_offsets, x, dim,
                         accumulate, out);
      });
    }
    return;
  }
  const int64_t e_max = offsets[num_rows];
  ParallelForBalanced(num_rows, offsets, [&](int64_t lo, int64_t hi) {
    BlockedRows<W>(lo, hi, e_max, offsets, idx, weights, col_offsets, x, dim,
                   accumulate, out);
  });
}

}  // namespace

void Spmm(Backend backend, EdgeWeight wmode, int64_t num_rows,
          const int64_t* offsets, const int32_t* idx, const float* weights,
          const int64_t* col_offsets, const float* x, int64_t dim,
          bool accumulate, float* out, const EdgeSchedule* sched) {
  if (num_rows <= 0 || dim <= 0) return;
  switch (wmode) {
    case EdgeWeight::kExplicit:
      SpmmImpl<EdgeWeight::kExplicit>(backend, num_rows, offsets, idx,
                                      weights, col_offsets, x, dim,
                                      accumulate, out, sched);
      return;
    case EdgeWeight::kUnit:
      SpmmImpl<EdgeWeight::kUnit>(backend, num_rows, offsets, idx, weights,
                                  col_offsets, x, dim, accumulate, out,
                                  sched);
      return;
    case EdgeWeight::kInvRowDegree:
      SpmmImpl<EdgeWeight::kInvRowDegree>(backend, num_rows, offsets, idx,
                                          weights, col_offsets, x, dim,
                                          accumulate, out, sched);
      return;
    case EdgeWeight::kInvColDegree:
      SpmmImpl<EdgeWeight::kInvColDegree>(backend, num_rows, offsets, idx,
                                          weights, col_offsets, x, dim,
                                          accumulate, out, sched);
      return;
  }
}

void GatherRows(Backend backend, const int32_t* row_idx, int64_t num_rows,
                const float* x, int64_t dim, float* out) {
  (void)backend;  // both backends use the same copy loop
  ParallelForChunked(0, num_rows, [&](int64_t lo, int64_t hi) {
    for (int64_t r = lo; r < hi; ++r) {
      float* orow = out + r * dim;
      const int32_t s = row_idx[r];
      if (s < 0) {
        std::memset(orow, 0, static_cast<size_t>(dim) * sizeof(float));
      } else {
        std::memcpy(orow, x + static_cast<int64_t>(s) * dim,
                    static_cast<size_t>(dim) * sizeof(float));
      }
    }
  });
}

void ScatterRowsAccum(Backend backend, const int32_t* row_idx,
                      int64_t num_rows, const float* x, float scale,
                      int64_t dim, float* out) {
  const auto body = [&](int64_t lo, int64_t hi) {
    for (int64_t r = lo; r < hi; ++r) {
      const int32_t s = row_idx[r];
      if (s < 0) continue;
      float* orow = out + static_cast<int64_t>(s) * dim;
      const float* xrow = x + r * dim;
#pragma omp simd
      for (int64_t c = 0; c < dim; ++c) orow[c] += scale * xrow[c];
    }
  };
  if (backend == Backend::kReference) {
    body(0, num_rows);  // the seed's serial loop
    return;
  }
  ParallelForChunked(0, num_rows, body);  // race-free: row_idx is injective
}

}  // namespace kernels
}  // namespace hongtu
