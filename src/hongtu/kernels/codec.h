/// \file codec.h
/// \brief Mixed-precision communication codec: fp32 <-> bf16/fp16 row-block
/// convert and convert-accumulate kernels.
///
/// HongTu's deduplicated communication already minimizes how many *rows*
/// cross the host<->device and device<->device links (Algorithms 2/3); this
/// layer halves the *bytes per row*: transition payloads move as 16-bit
/// floats while every accumulator (transition gradients, host gradient
/// buffers) stays fp32. The contract is:
///
///   - Each value is quantized exactly once per wire crossing: encode on
///     send, decode on receive. Decode(Encode(x)) is idempotent, so a row
///     that round-trips repeatedly (e.g. a reused transition slot) carries
///     no compounding error.
///   - Accumulation is always fp32: gradients are decoded *into* an fp32
///     accumulator (DecodeAccumRows / QuantizeAccumRows); no read-modify-
///     write ever happens in 16-bit.
///
/// Formats:
///   - bf16: the high 16 bits of fp32 with round-to-nearest-even. Same
///     dynamic range as fp32; ~3 significant decimal digits (rel. error
///     <= 2^-8 for normal values).
///   - fp16: IEEE 754 binary16 with round-to-nearest-even, gradual
///     underflow (subnormals down to 2^-24) and overflow to +-inf above
///     65504. Higher precision (2^-11) but narrow range — fine for
///     normalized activations, risky for raw gradients.
///
/// Like the SpMM/GEMM layer, every kernel has a kReference scalar loop and a
/// kBlocked `omp simd` path producing bit-identical outputs (the pragmas
/// only change codegen, not the math), so the backends can be A/B'd freely.
/// All kernels are serial per call: callers parallelize over row blocks
/// (the executor's fetch loops already run inside parallel regions).

#pragma once

#include <cstdint>

#include "hongtu/kernels/backend.h"

namespace hongtu {
namespace kernels {

/// Wire precision of the communication layer. kFp32 = uncompressed
/// (bit-exact, the default); kBf16/kFp16 move 2-byte payloads.
enum class CommPrecision : int { kFp32 = 0, kBf16 = 1, kFp16 = 2 };

/// "fp32" / "bf16" / "fp16".
const char* CommPrecisionName(CommPrecision p);

/// Bytes per element on the wire: 4 for kFp32, 2 otherwise.
int64_t CommElemBytes(CommPrecision p);

/// The process-default precision: kFp32 unless the HONGTU_COMM_PRECISION
/// environment variable ("fp32" | "bf16" | "fp16", read once at first use)
/// says otherwise. Mirrors HONGTU_KERNEL_BACKEND: a CI hook that moves the
/// *default* — explicit option assignments always win.
CommPrecision DefaultCommPrecision();

// ---- Scalar conversions (exposed for tests; the kernels inline these). -----

uint16_t Fp32ToBf16(float v);
float Bf16ToFp32(uint16_t v);
uint16_t Fp32ToFp16(float v);
float Fp16ToFp32(uint16_t v);

// ---- Row-block kernels. ----------------------------------------------------
//
// `p` must be kBf16 or kFp16 for the encode/decode forms (there is no
// 16-bit buffer to speak of at kFp32; callers keep their fp32 memcpy path).
// QuantizeCopyRows/QuantizeAccumRows accept kFp32 and degrade to plain
// copy/accumulate, so call sites can stay branch-free.

/// dst[i] = Encode(src[i]) for i in [0, n).
void EncodeRows(Backend b, CommPrecision p, const float* src, int64_t n,
                uint16_t* dst);

/// dst[i] = Decode(src[i]).
void DecodeRows(Backend b, CommPrecision p, const uint16_t* src, int64_t n,
                float* dst);

/// dst[i] += Decode(src[i]) — the fp32-accumulator receive side.
void DecodeAccumRows(Backend b, CommPrecision p, const uint16_t* src,
                     int64_t n, float* dst);

/// dst[i] = Decode(Encode(src[i])): one wire crossing applied in passing,
/// for streams whose 16-bit payload is never stored. kFp32 = memcpy.
void QuantizeCopyRows(Backend b, CommPrecision p, const float* src, int64_t n,
                      float* dst);

/// dst[i] += Decode(Encode(src[i])): a gradient push through the wire into
/// an fp32 accumulator. kFp32 = plain accumulate.
void QuantizeAccumRows(Backend b, CommPrecision p, const float* src,
                       int64_t n, float* dst);

}  // namespace kernels
}  // namespace hongtu
