#include "hongtu/kernels/schedule.h"

#include <unistd.h>

#include <algorithm>

namespace hongtu {
namespace kernels {

int64_t EdgeSchedule::DetectL2Bytes() {
  static const int64_t bytes = [] {
#ifdef _SC_LEVEL2_CACHE_SIZE
    const long v = sysconf(_SC_LEVEL2_CACHE_SIZE);
    if (v > 0) return static_cast<int64_t>(v);
#endif
    return static_cast<int64_t>(1) << 20;
  }();
  return bytes;
}

namespace {

int64_t ResolveBandRows(int64_t l2_bytes, int max_dim) {
  const int64_t row_bytes =
      static_cast<int64_t>(std::max(max_dim, 1)) * sizeof(float);
  return std::max<int64_t>(256, l2_bytes / row_bytes);
}

}  // namespace

int64_t EdgeSchedule::EstimateBytes(int64_t num_out, int64_t num_in,
                                    int64_t num_edges, bool has_weights,
                                    const EdgeScheduleParams& p) {
  if (num_edges <= 0) return 0;
  const int64_t l2 = p.l2_bytes > 0 ? p.l2_bytes : DetectL2Bytes();
  const int64_t band_rows = ResolveBandRows(l2, p.max_dim);
  const int64_t B = std::max<int64_t>((num_in + band_rows - 1) / band_rows, 1);
  const int64_t S = std::max(p.num_shards, 1);
  const int64_t floats = 2 * ((S * B + 1) + 2 * (S + 1)) + 3 * num_edges +
                         (has_weights ? num_edges : 0) + num_out;
  return floats * static_cast<int64_t>(sizeof(float));
}

bool EdgeSchedule::ShouldUse(int64_t dim, bool accumulate) const {
  if (empty() || num_bands_ < 2) return false;
  if (dim < 16 || dim > 256) return false;
  if (!accumulate && dim < 32) return false;
  return num_in_ * dim * static_cast<int64_t>(sizeof(float)) > l2_bytes_;
}

EdgeSchedule EdgeSchedule::Build(int64_t num_out, const int64_t* offsets,
                                 const int32_t* idx, const float* weights,
                                 int64_t num_in, const EdgeScheduleParams& p) {
  EdgeSchedule s;
  s.num_out_ = std::max<int64_t>(num_out, 0);
  s.num_in_ = std::max<int64_t>(num_in, 0);
  s.num_edges_ = num_out > 0 ? offsets[num_out] : 0;
  s.l2_bytes_ = p.l2_bytes > 0 ? p.l2_bytes : DetectL2Bytes();
  if (s.num_edges_ <= 0) return s;

  // One band's input slice holds band_rows rows of max_dim floats filling
  // the L2 budget — the measured optimum across dims and thread tiers
  // (smaller bands shorten the per-(row, band) runs and re-walk the output
  // more; larger ones spill the slice). The 256-row floor keeps degenerate
  // configurations (huge dims, tiny budgets in tests) from exploding the
  // band count.
  s.band_rows_ = ResolveBandRows(s.l2_bytes_, p.max_dim);
  const int64_t nb64 = (s.num_in_ + s.band_rows_ - 1) / s.band_rows_;
  s.num_bands_ = static_cast<int>(std::max<int64_t>(nb64, 1));
  s.num_shards_ = std::max(p.num_shards, 1);

  const int S = s.num_shards_;
  const int B = s.num_bands_;
  const int64_t E = s.num_edges_;

  // ---- Slab layout: int64 tables first (alignment), then int32/f32 arrays.
  const int64_t n_bucket = static_cast<int64_t>(S) * B + 1;
  const int64_t n_shard = S + 1;
  // Zero-degree rows are counted up front so the slab is sized exactly.
  int64_t zero_rows = 0;
  for (int64_t d = 0; d < num_out; ++d) {
    if (offsets[d + 1] == offsets[d]) ++zero_rows;
  }
  s.num_zero_rows_ = zero_rows;
  const bool has_w = weights != nullptr;
  const int64_t floats = 2 * (n_bucket + 2 * n_shard) +  // int64 tables
                         3 * E +                         // rnd/out/edge perm
                         (has_w ? E : 0) + zero_rows;
  s.slab_ = PoolBuffer(floats);
  s.slab_floats_ = floats;

  float* base = s.slab_.data();
  int64_t* bucket_off = reinterpret_cast<int64_t*>(base);
  int64_t* shard_edges = bucket_off + n_bucket;
  int64_t* shard_rows = shard_edges + n_shard;
  int32_t* rnd_perm = reinterpret_cast<int32_t*>(shard_rows + n_shard);
  int32_t* out_perm = rnd_perm + E;
  int32_t* edge_perm = out_perm + E;
  float* w_perm = has_w ? reinterpret_cast<float*>(edge_perm + E) : nullptr;
  int32_t* zrows =
      reinterpret_cast<int32_t*>(edge_perm + E + (has_w ? E : 0));

  // ---- Shard boundaries: contiguous output-row ranges with equal edge
  // shares (same split rule as ParallelForBalanced).
  for (int t = 0; t <= S; ++t) {
    if (t == 0) {
      shard_rows[t] = 0;
    } else if (t == S) {
      shard_rows[t] = num_out;
    } else {
      const int64_t w0 = offsets[0] + E * t / S;
      shard_rows[t] =
          std::lower_bound(offsets, offsets + num_out, w0) - offsets;
    }
  }

  // ---- Counting sort by (shard, band), stable in output-row-major order.
  const int64_t band_rows = s.band_rows_;
  std::fill(bucket_off, bucket_off + n_bucket, 0);
  for (int t = 0; t < S; ++t) {
    int64_t* cnt = bucket_off + static_cast<int64_t>(t) * B;
    for (int64_t e = offsets[shard_rows[t]]; e < offsets[shard_rows[t + 1]];
         ++e) {
      ++cnt[idx[e] / band_rows + 1];
    }
  }
  for (int64_t i = 1; i < n_bucket; ++i) bucket_off[i] += bucket_off[i - 1];

  for (int t = 0; t <= S; ++t) {
    shard_edges[t] = bucket_off[static_cast<int64_t>(t) * B];
  }

  // ---- Placement pass. Within one output row, the run that executes first
  // is the one in the row's lowest populated band; its first edge carries
  // the first-run flag so non-accumulating kernels store instead of RMW.
  {
    // pos[] borrows the prefix array shifted by one: pos for bucket k starts
    // at bucket_off[k]. A scratch copy keeps bucket_off intact.
    PoolBuffer pos_buf(2 * (n_bucket - 1));
    int64_t* pos = reinterpret_cast<int64_t*>(pos_buf.data());
    std::copy(bucket_off, bucket_off + n_bucket - 1, pos);
    int64_t zi = 0;
    for (int t = 0; t < S; ++t) {
      for (int64_t d = shard_rows[t]; d < shard_rows[t + 1]; ++d) {
        const int64_t e0 = offsets[d], e1 = offsets[d + 1];
        if (e0 == e1) {
          zrows[zi++] = static_cast<int32_t>(d);
          continue;
        }
        int64_t min_band = B;
        for (int64_t e = e0; e < e1; ++e) {
          min_band = std::min<int64_t>(min_band, idx[e] / band_rows);
        }
        bool flagged = false;
        for (int64_t e = e0; e < e1; ++e) {
          const int64_t b = idx[e] / band_rows;
          const int64_t k = pos[static_cast<int64_t>(t) * B + b]++;
          rnd_perm[k] = idx[e];
          int32_t ov = static_cast<int32_t>(d);
          if (b == min_band && !flagged) {
            ov |= ~kRowMask;  // sign bit: first run of this row
            flagged = true;
          }
          out_perm[k] = ov;
          edge_perm[k] = static_cast<int32_t>(e);
          if (has_w) w_perm[k] = weights[e];
        }
      }
    }
  }

  s.bucket_off_ = bucket_off;
  s.shard_edges_ = shard_edges;
  s.shard_rows_ = shard_rows;
  s.rnd_perm_ = rnd_perm;
  s.out_perm_ = out_perm;
  s.edge_perm_ = edge_perm;
  s.w_perm_ = w_perm;
  s.built_weights_ = weights;
  s.zero_rows_ = zrows;
  return s;
}

}  // namespace kernels
}  // namespace hongtu
