#include "hongtu/kernels/schedule.h"

#include <unistd.h>

#include <algorithm>

#include "hongtu/common/parallel.h"

namespace hongtu {
namespace kernels {

int64_t EdgeSchedule::DetectL2Bytes() {
  static const int64_t bytes = [] {
#ifdef _SC_LEVEL2_CACHE_SIZE
    const long v = sysconf(_SC_LEVEL2_CACHE_SIZE);
    if (v > 0) return static_cast<int64_t>(v);
#endif
    return static_cast<int64_t>(1) << 20;
  }();
  return bytes;
}

namespace {

int64_t BandRowsFor(int64_t l2_bytes, int max_dim) {
  const int64_t row_bytes =
      static_cast<int64_t>(std::max(max_dim, 1)) * sizeof(float);
  return std::max<int64_t>(256, l2_bytes / row_bytes);
}

}  // namespace

int64_t EdgeSchedule::ResolveBandRows(const EdgeScheduleParams& p) {
  const int64_t l2 = p.l2_bytes > 0 ? p.l2_bytes : DetectL2Bytes();
  return BandRowsFor(l2, p.max_dim);
}

int EdgeSchedule::NumBands(int64_t num_in, const EdgeScheduleParams& p) {
  const int64_t band_rows = ResolveBandRows(p);
  return static_cast<int>(
      std::max<int64_t>((std::max<int64_t>(num_in, 0) + band_rows - 1) /
                            band_rows,
                        1));
}

void EdgeSchedule::ShardRowBounds(int64_t num_out, const int64_t* offsets,
                                  const EdgeScheduleParams& p, int64_t* out) {
  const int S = std::max(p.num_shards, 1);
  const int64_t E = num_out > 0 ? offsets[num_out] : 0;
  for (int t = 0; t <= S; ++t) {
    if (t == 0) {
      out[t] = 0;
    } else if (t == S) {
      out[t] = num_out;
    } else {
      const int64_t w0 = offsets[0] + E * t / S;
      out[t] = std::lower_bound(offsets, offsets + num_out, w0) - offsets;
    }
  }
}

int64_t EdgeSchedule::EstimateBytes(int64_t num_out, int64_t num_in,
                                    int64_t num_edges, bool has_weights,
                                    const EdgeScheduleParams& p) {
  if (num_edges <= 0) return 0;
  const int64_t band_rows = ResolveBandRows(p);
  const int64_t B = std::max<int64_t>((num_in + band_rows - 1) / band_rows, 1);
  const int64_t S = std::max(p.num_shards, 1);
  const int64_t floats = 2 * ((S * B + 1) + 2 * (S + 1)) + 3 * num_edges +
                         (has_weights ? num_edges : 0) + num_out;
  return floats * static_cast<int64_t>(sizeof(float));
}

bool EdgeSchedule::ShouldUse(int64_t dim, bool accumulate) const {
  if (empty() || num_bands_ < 2) return false;
  if (dim < 16 || dim > 256) return false;
  if (!accumulate && dim < 32) return false;
  return num_in_ * dim * static_cast<int64_t>(sizeof(float)) > l2_bytes_;
}

EdgeSchedule EdgeSchedule::Build(int64_t num_out, const int64_t* offsets,
                                 const int32_t* idx, const float* weights,
                                 int64_t num_in, const EdgeScheduleParams& p,
                                 const int64_t* bucket_counts) {
  EdgeSchedule s;
  s.num_out_ = std::max<int64_t>(num_out, 0);
  s.num_in_ = std::max<int64_t>(num_in, 0);
  s.num_edges_ = num_out > 0 ? offsets[num_out] : 0;
  s.l2_bytes_ = p.l2_bytes > 0 ? p.l2_bytes : DetectL2Bytes();
  if (s.num_edges_ <= 0) return s;

  // One band's input slice holds band_rows rows of max_dim floats filling
  // the L2 budget — the measured optimum across dims and thread tiers
  // (smaller bands shorten the per-(row, band) runs and re-walk the output
  // more; larger ones spill the slice). The 256-row floor keeps degenerate
  // configurations (huge dims, tiny budgets in tests) from exploding the
  // band count.
  s.band_rows_ = BandRowsFor(s.l2_bytes_, p.max_dim);
  const int64_t nb64 = (s.num_in_ + s.band_rows_ - 1) / s.band_rows_;
  s.num_bands_ = static_cast<int>(std::max<int64_t>(nb64, 1));
  s.num_shards_ = std::max(p.num_shards, 1);

  const int S = s.num_shards_;
  const int B = s.num_bands_;
  const int64_t E = s.num_edges_;

  // Every pass below is parallel *over shards*: a shard owns a contiguous
  // output-row range and the bucket ids (t * B + b), so counting, zero-row
  // collection and placement touch disjoint array ranges per shard and the
  // result is identical to the serial sweep. The cutoff of 2 items keeps
  // single-shard (and test-sized) builds serial.
  constexpr int64_t kShardParallelCutoff = 2;

  // ---- Slab layout: int64 tables first (alignment), then int32/f32 arrays.
  const int64_t n_bucket = static_cast<int64_t>(S) * B + 1;
  const int64_t n_shard = S + 1;

  // Shard boundaries first (cheap binary searches): contiguous output-row
  // ranges with equal edge shares (same split rule as ParallelForBalanced).
  // The zero-degree rows are then counted per shard, giving both the exact
  // slab size and the per-shard write offsets the parallel placement needs.
  PoolBuffer pre_buf(2 * (n_shard + n_shard));
  int64_t* shard_bounds = reinterpret_cast<int64_t*>(pre_buf.data());
  int64_t* zero_prefix = shard_bounds + n_shard;
  ShardRowBounds(num_out, offsets, p, shard_bounds);
  ParallelForChunked(0, S, kShardParallelCutoff, [&](int64_t lo, int64_t hi) {
    for (int64_t t = lo; t < hi; ++t) {
      int64_t zc = 0;
      for (int64_t d = shard_bounds[t]; d < shard_bounds[t + 1]; ++d) {
        if (offsets[d + 1] == offsets[d]) ++zc;
      }
      zero_prefix[t + 1] = zc;
    }
  });
  zero_prefix[0] = 0;
  for (int t = 0; t < S; ++t) zero_prefix[t + 1] += zero_prefix[t];
  const int64_t zero_rows = zero_prefix[S];
  s.num_zero_rows_ = zero_rows;

  const bool has_w = weights != nullptr;
  const int64_t floats = 2 * (n_bucket + 2 * n_shard) +  // int64 tables
                         3 * E +                         // rnd/out/edge perm
                         (has_w ? E : 0) + zero_rows;
  s.slab_ = PoolBuffer(floats);
  s.slab_floats_ = floats;

  float* base = s.slab_.data();
  int64_t* bucket_off = reinterpret_cast<int64_t*>(base);
  int64_t* shard_edges = bucket_off + n_bucket;
  int64_t* shard_rows = shard_edges + n_shard;
  int32_t* rnd_perm = reinterpret_cast<int32_t*>(shard_rows + n_shard);
  int32_t* out_perm = rnd_perm + E;
  int32_t* edge_perm = out_perm + E;
  float* w_perm = has_w ? reinterpret_cast<float*>(edge_perm + E) : nullptr;
  int32_t* zrows =
      reinterpret_cast<int32_t*>(edge_perm + E + (has_w ? E : 0));

  std::copy(shard_bounds, shard_bounds + n_shard, shard_rows);

  // ---- Counting by (shard, band), stable in output-row-major order — or a
  // straight copy when the caller walked the edges already (the gather pass
  // that produced `bucket_counts`).
  const int64_t band_rows = s.band_rows_;
  if (bucket_counts != nullptr) {
    bucket_off[0] = 0;
    std::copy(bucket_counts, bucket_counts + (n_bucket - 1), bucket_off + 1);
  } else {
    std::fill(bucket_off, bucket_off + n_bucket, 0);
    ParallelForChunked(
        0, S, kShardParallelCutoff, [&](int64_t lo, int64_t hi) {
          for (int64_t t = lo; t < hi; ++t) {
            int64_t* cnt = bucket_off + t * B;
            for (int64_t e = offsets[shard_rows[t]];
                 e < offsets[shard_rows[t + 1]]; ++e) {
              ++cnt[idx[e] / band_rows + 1];
            }
          }
        });
  }
  for (int64_t i = 1; i < n_bucket; ++i) bucket_off[i] += bucket_off[i - 1];

  for (int t = 0; t <= S; ++t) {
    shard_edges[t] = bucket_off[static_cast<int64_t>(t) * B];
  }

  // ---- Placement pass. Within one output row, the run that executes first
  // is the one in the row's lowest populated band; its first edge carries
  // the first-run flag so non-accumulating kernels store instead of RMW.
  {
    // pos[] borrows the prefix array shifted by one: pos for bucket k starts
    // at bucket_off[k]. A scratch copy keeps bucket_off intact. Shard t only
    // advances pos[t*B .. t*B+B) and writes zrows[zero_prefix[t] ..), so the
    // shard-parallel sweep is race-free.
    PoolBuffer pos_buf(2 * (n_bucket - 1));
    int64_t* pos = reinterpret_cast<int64_t*>(pos_buf.data());
    std::copy(bucket_off, bucket_off + n_bucket - 1, pos);
    ParallelForChunked(
        0, S, kShardParallelCutoff, [&](int64_t lo, int64_t hi) {
          for (int64_t t = lo; t < hi; ++t) {
            int64_t zi = zero_prefix[t];
            for (int64_t d = shard_rows[t]; d < shard_rows[t + 1]; ++d) {
              const int64_t e0 = offsets[d], e1 = offsets[d + 1];
              if (e0 == e1) {
                zrows[zi++] = static_cast<int32_t>(d);
                continue;
              }
              int64_t min_band = B;
              for (int64_t e = e0; e < e1; ++e) {
                min_band = std::min<int64_t>(min_band, idx[e] / band_rows);
              }
              bool flagged = false;
              for (int64_t e = e0; e < e1; ++e) {
                const int64_t b = idx[e] / band_rows;
                const int64_t k = pos[t * B + b]++;
                rnd_perm[k] = idx[e];
                int32_t ov = static_cast<int32_t>(d);
                if (b == min_band && !flagged) {
                  ov |= ~kRowMask;  // sign bit: first run of this row
                  flagged = true;
                }
                out_perm[k] = ov;
                edge_perm[k] = static_cast<int32_t>(e);
                if (has_w) w_perm[k] = weights[e];
              }
            }
          }
        });
  }

  s.bucket_off_ = bucket_off;
  s.shard_edges_ = shard_edges;
  s.shard_rows_ = shard_rows;
  s.rnd_perm_ = rnd_perm;
  s.out_perm_ = out_perm;
  s.edge_perm_ = edge_perm;
  s.w_perm_ = w_perm;
  s.built_weights_ = weights;
  s.zero_rows_ = zrows;
  return s;
}

}  // namespace kernels
}  // namespace hongtu
