/// \file spmm.h
/// \brief Sparse-dense kernels: CSR/CSC SpMM for GNN aggregation, plus
/// indexed row gather/scatter for the layers' self-terms.
///
/// One kernel serves all six Gather*/Scatter* aggregation primitives: the
/// compressed axis is the *output* axis (destinations for gather over the
/// chunk CSC, sources for backward scatter over the CSR mirror), so rows are
/// written by exactly one thread and no atomics are needed. The blocked
/// backend walks rows with ParallelForBalanced over the offsets array —
/// threads receive equal *edge* shares, not equal vertex shares — and
/// processes features in 16-wide register-accumulated column blocks when
/// dim >= 16 (generic scalar loop otherwise).
///
/// Per-element floating-point addition order is edge order in both backends,
/// so reference and blocked results agree bit-for-bit; only thread
/// *partitioning* differs.
///
/// When a precompiled EdgeSchedule (kernels/schedule.h) is supplied and its
/// ShouldUse heuristic accepts the call shape, the blocked backend instead
/// runs the *propagation-blocked* path: edges are visited in the schedule's
/// (band, shard) bucket order so every random fetch comes from an
/// L2-resident band slice, and each thread owns a disjoint shard of output
/// rows (conflict-free parallel scatter). Banding regroups each output
/// row's additions by source band, so banded results match the reference to
/// float rounding (<= 1e-4 in practice) rather than bit-for-bit.

#pragma once

#include <cstdint>

#include "hongtu/kernels/backend.h"
#include "hongtu/kernels/schedule.h"

namespace hongtu {
namespace kernels {

/// How each edge's coefficient is obtained.
enum class EdgeWeight {
  kExplicit,      ///< weights[e] (GatherWeighted / ScatterWeightedAccum)
  kUnit,          ///< 1 (GatherSum / ScatterSumAccum)
  kInvRowDegree,  ///< 1 / (offsets[r+1]-offsets[r]), 0 for isolated rows
                  ///< (GatherMean; applied as a row scale)
  kInvColDegree,  ///< 1 / (col_offsets[idx[e]+1]-col_offsets[idx[e]])
                  ///< (ScatterMeanAccum; the destination's in-degree)
};

/// out[r,:] (+)= sum over e in [offsets[r], offsets[r+1]) of
///               coeff(e) * x[idx[e], :].
/// `offsets` has num_rows+1 entries; `weights` is required for kExplicit and
/// `col_offsets` for kInvColDegree (others may pass nullptr). `accumulate`
/// adds into `out` instead of overwriting it.
///
/// `sched`, when non-null, must have been built from exactly this
/// (offsets, idx) structure; the blocked backend takes the banded path when
/// sched->ShouldUse(dim, accumulate) holds and the single-pass walk
/// otherwise. The reference backend ignores it.
void Spmm(Backend backend, EdgeWeight wmode, int64_t num_rows,
          const int64_t* offsets, const int32_t* idx, const float* weights,
          const int64_t* col_offsets, const float* x, int64_t dim,
          bool accumulate, float* out, const EdgeSchedule* sched = nullptr);

/// out[r,:] = x[row_idx[r],:], or zeros when row_idx[r] < 0. The layers'
/// self-term gather (SAGE/GIN/GGNN destination rows).
void GatherRows(Backend backend, const int32_t* row_idx, int64_t num_rows,
                const float* x, int64_t dim, float* out);

/// out[row_idx[r],:] += scale * x[r,:] for row_idx[r] >= 0. `row_idx` must be
/// injective over valid entries (each destination maps to a distinct source
/// slot), which makes the parallel form race-free.
void ScatterRowsAccum(Backend backend, const int32_t* row_idx,
                      int64_t num_rows, const float* x, float scale,
                      int64_t dim, float* out);

}  // namespace kernels
}  // namespace hongtu
