#include "hongtu/kernels/backend.h"

#include "hongtu/common/config.h"

namespace hongtu {
namespace kernels {

namespace {

Backend& Active() {
  // Dispatch must not change under a running kernel, so the backend comes
  // from the cached process-wide snapshot (HONGTU_KERNEL_BACKEND); SetBackend
  // below is the explicit override that wins over it.
  static Backend backend = RuntimeConfig::Process().kernel_backend;
  return backend;
}

}  // namespace

Backend ActiveBackend() { return Active(); }

void SetBackend(Backend b) { Active() = b; }

const char* BackendName(Backend b) {
  return b == Backend::kReference ? "reference" : "blocked";
}

}  // namespace kernels
}  // namespace hongtu
