#include "hongtu/kernels/backend.h"

#include <cstdlib>
#include <cstring>

namespace hongtu {
namespace kernels {

namespace {

Backend FromEnv() {
  const char* s = std::getenv("HONGTU_KERNEL_BACKEND");
  if (s != nullptr && std::strcmp(s, "reference") == 0) {
    return Backend::kReference;
  }
  return Backend::kBlocked;
}

Backend& Active() {
  static Backend backend = FromEnv();
  return backend;
}

}  // namespace

Backend ActiveBackend() { return Active(); }

void SetBackend(Backend b) { Active() = b; }

const char* BackendName(Backend b) {
  return b == Backend::kReference ? "reference" : "blocked";
}

}  // namespace kernels
}  // namespace hongtu
