#include "hongtu/kernels/codec.h"

#include <cstdlib>
#include <cstring>

#include "hongtu/common/config.h"

namespace hongtu {
namespace kernels {

namespace {

inline uint32_t AsBits(float v) {
  uint32_t b;
  std::memcpy(&b, &v, sizeof(b));
  return b;
}

inline float AsFloat(uint32_t b) {
  float v;
  std::memcpy(&v, &b, sizeof(v));
  return v;
}

// bf16: truncate fp32 to its high 16 bits with round-to-nearest-even. NaNs
// are squashed to a quiet NaN instead of letting the rounding carry flip
// them into infinity.
inline uint16_t Bf16FromBits(uint32_t b) {
  if ((b & 0x7fffffffu) > 0x7f800000u) {
    return static_cast<uint16_t>((b >> 16) | 0x0040u);
  }
  const uint32_t rounded = b + 0x7fffu + ((b >> 16) & 1u);
  return static_cast<uint16_t>(rounded >> 16);
}

// fp16: full IEEE binary16 with round-to-nearest-even, gradual underflow
// and overflow to infinity. Branches compile to selects under `omp simd`.
inline uint16_t Fp16FromBits(uint32_t b) {
  const uint32_t sign = (b >> 16) & 0x8000u;
  const uint32_t abs = b & 0x7fffffffu;
  if (abs >= 0x7f800000u) {  // inf / NaN (NaN keeps a nonzero mantissa)
    return static_cast<uint16_t>(
        sign | (abs > 0x7f800000u ? 0x7e00u : 0x7c00u));
  }
  if (abs >= 0x477ff000u) {  // >= 65520 rounds to infinity
    return static_cast<uint16_t>(sign | 0x7c00u);
  }
  if (abs <= 0x33000000u) {  // <= 2^-25 rounds (to even) to zero
    return static_cast<uint16_t>(sign);
  }
  const int32_t e = static_cast<int32_t>(abs >> 23) - 127;
  if (e < -14) {
    // Subnormal half: mantissa = RNE(m * 2^(e+1)) in units of 2^-24. The
    // rounding carry may overflow into the exponent; that is exactly the
    // promotion to the smallest normal and needs no special case.
    const uint32_t m = (abs & 0x7fffffu) | 0x800000u;
    const uint32_t shift = static_cast<uint32_t>(-e - 1);
    const uint32_t halfway = 1u << (shift - 1);
    const uint32_t frac = m & ((1u << shift) - 1u);
    uint32_t mh = m >> shift;
    mh += (frac > halfway || (frac == halfway && (mh & 1u))) ? 1u : 0u;
    return static_cast<uint16_t>(sign | mh);
  }
  const uint32_t frac = abs & 0x1fffu;  // the 13 bits rounded away
  uint32_t r = sign | (static_cast<uint32_t>(e + 15) << 10) |
               ((abs >> 13) & 0x3ffu);
  r += (frac > 0x1000u || (frac == 0x1000u && (r & 1u))) ? 1u : 0u;
  return static_cast<uint16_t>(r);
}

inline float Fp16ToFloatImpl(uint16_t h) {
  const uint32_t sign = (static_cast<uint32_t>(h) & 0x8000u) << 16;
  const uint32_t e = (h >> 10) & 0x1fu;
  const uint32_t m = h & 0x3ffu;
  if (e == 0x1fu) return AsFloat(sign | 0x7f800000u | (m << 13));
  if (e != 0) return AsFloat(sign | ((e + 112u) << 23) | (m << 13));
  if (m == 0) return AsFloat(sign);
  // Subnormal: exact in fp32 as m * 2^-24 (int->float conversion is exact
  // for 10-bit integers, and the scale is a power of two).
  const float f = static_cast<float>(m) * 0x1p-24f;
  return sign != 0 ? -f : f;
}

// The per-element loops. PREC is a compile-time format so the hot loops
// carry no per-element dispatch; SIMD toggles the vector pragma (both paths
// run identical arithmetic — the backends differ only in codegen).

template <CommPrecision PREC>
inline uint16_t EncodeOne(float v) {
  return PREC == CommPrecision::kBf16 ? Bf16FromBits(AsBits(v))
                                      : Fp16FromBits(AsBits(v));
}

template <CommPrecision PREC>
inline float DecodeOne(uint16_t v) {
  return PREC == CommPrecision::kBf16
             ? AsFloat(static_cast<uint32_t>(v) << 16)
             : Fp16ToFloatImpl(v);
}

template <CommPrecision PREC, bool SIMD>
void EncodeLoop(const float* src, int64_t n, uint16_t* dst) {
  if (SIMD) {
#pragma omp simd
    for (int64_t i = 0; i < n; ++i) dst[i] = EncodeOne<PREC>(src[i]);
  } else {
    for (int64_t i = 0; i < n; ++i) dst[i] = EncodeOne<PREC>(src[i]);
  }
}

template <CommPrecision PREC, bool SIMD>
void DecodeLoop(const uint16_t* src, int64_t n, float* dst) {
  if (SIMD) {
#pragma omp simd
    for (int64_t i = 0; i < n; ++i) dst[i] = DecodeOne<PREC>(src[i]);
  } else {
    for (int64_t i = 0; i < n; ++i) dst[i] = DecodeOne<PREC>(src[i]);
  }
}

template <CommPrecision PREC, bool SIMD>
void DecodeAccumLoop(const uint16_t* src, int64_t n, float* dst) {
  if (SIMD) {
#pragma omp simd
    for (int64_t i = 0; i < n; ++i) dst[i] += DecodeOne<PREC>(src[i]);
  } else {
    for (int64_t i = 0; i < n; ++i) dst[i] += DecodeOne<PREC>(src[i]);
  }
}

template <CommPrecision PREC, bool SIMD>
void QuantizeCopyLoop(const float* src, int64_t n, float* dst) {
  if (SIMD) {
#pragma omp simd
    for (int64_t i = 0; i < n; ++i) {
      dst[i] = DecodeOne<PREC>(EncodeOne<PREC>(src[i]));
    }
  } else {
    for (int64_t i = 0; i < n; ++i) {
      dst[i] = DecodeOne<PREC>(EncodeOne<PREC>(src[i]));
    }
  }
}

template <CommPrecision PREC, bool SIMD>
void QuantizeAccumLoop(const float* src, int64_t n, float* dst) {
  if (SIMD) {
#pragma omp simd
    for (int64_t i = 0; i < n; ++i) {
      dst[i] += DecodeOne<PREC>(EncodeOne<PREC>(src[i]));
    }
  } else {
    for (int64_t i = 0; i < n; ++i) {
      dst[i] += DecodeOne<PREC>(EncodeOne<PREC>(src[i]));
    }
  }
}

}  // namespace

const char* CommPrecisionName(CommPrecision p) {
  switch (p) {
    case CommPrecision::kFp32: return "fp32";
    case CommPrecision::kBf16: return "bf16";
    case CommPrecision::kFp16: return "fp16";
  }
  return "?";
}

int64_t CommElemBytes(CommPrecision p) {
  return p == CommPrecision::kFp32 ? 4 : 2;
}

CommPrecision DefaultCommPrecision() {
  // Single parse point lives in common/config.cc; re-read (uncached) so the
  // default tracks the environment at options-construction time.
  return RuntimeConfig::FromEnv().comm_precision;
}

uint16_t Fp32ToBf16(float v) { return Bf16FromBits(AsBits(v)); }
float Bf16ToFp32(uint16_t v) {
  return AsFloat(static_cast<uint32_t>(v) << 16);
}
uint16_t Fp32ToFp16(float v) { return Fp16FromBits(AsBits(v)); }
float Fp16ToFp32(uint16_t v) { return Fp16ToFloatImpl(v); }

void EncodeRows(Backend b, CommPrecision p, const float* src, int64_t n,
                uint16_t* dst) {
  const bool simd = b == Backend::kBlocked;
  if (p == CommPrecision::kBf16) {
    simd ? EncodeLoop<CommPrecision::kBf16, true>(src, n, dst)
         : EncodeLoop<CommPrecision::kBf16, false>(src, n, dst);
  } else {
    simd ? EncodeLoop<CommPrecision::kFp16, true>(src, n, dst)
         : EncodeLoop<CommPrecision::kFp16, false>(src, n, dst);
  }
}

void DecodeRows(Backend b, CommPrecision p, const uint16_t* src, int64_t n,
                float* dst) {
  const bool simd = b == Backend::kBlocked;
  if (p == CommPrecision::kBf16) {
    simd ? DecodeLoop<CommPrecision::kBf16, true>(src, n, dst)
         : DecodeLoop<CommPrecision::kBf16, false>(src, n, dst);
  } else {
    simd ? DecodeLoop<CommPrecision::kFp16, true>(src, n, dst)
         : DecodeLoop<CommPrecision::kFp16, false>(src, n, dst);
  }
}

void DecodeAccumRows(Backend b, CommPrecision p, const uint16_t* src,
                     int64_t n, float* dst) {
  const bool simd = b == Backend::kBlocked;
  if (p == CommPrecision::kBf16) {
    simd ? DecodeAccumLoop<CommPrecision::kBf16, true>(src, n, dst)
         : DecodeAccumLoop<CommPrecision::kBf16, false>(src, n, dst);
  } else {
    simd ? DecodeAccumLoop<CommPrecision::kFp16, true>(src, n, dst)
         : DecodeAccumLoop<CommPrecision::kFp16, false>(src, n, dst);
  }
}

void QuantizeCopyRows(Backend b, CommPrecision p, const float* src, int64_t n,
                      float* dst) {
  if (p == CommPrecision::kFp32) {
    std::memcpy(dst, src, static_cast<size_t>(n) * sizeof(float));
    return;
  }
  const bool simd = b == Backend::kBlocked;
  if (p == CommPrecision::kBf16) {
    simd ? QuantizeCopyLoop<CommPrecision::kBf16, true>(src, n, dst)
         : QuantizeCopyLoop<CommPrecision::kBf16, false>(src, n, dst);
  } else {
    simd ? QuantizeCopyLoop<CommPrecision::kFp16, true>(src, n, dst)
         : QuantizeCopyLoop<CommPrecision::kFp16, false>(src, n, dst);
  }
}

void QuantizeAccumRows(Backend b, CommPrecision p, const float* src,
                       int64_t n, float* dst) {
  if (p == CommPrecision::kFp32) {
    for (int64_t i = 0; i < n; ++i) dst[i] += src[i];
    return;
  }
  const bool simd = b == Backend::kBlocked;
  if (p == CommPrecision::kBf16) {
    simd ? QuantizeAccumLoop<CommPrecision::kBf16, true>(src, n, dst)
         : QuantizeAccumLoop<CommPrecision::kBf16, false>(src, n, dst);
  } else {
    simd ? QuantizeAccumLoop<CommPrecision::kFp16, true>(src, n, dst)
         : QuantizeAccumLoop<CommPrecision::kFp16, false>(src, n, dst);
  }
}

}  // namespace kernels
}  // namespace hongtu
