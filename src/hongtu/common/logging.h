/// \file logging.h
/// \brief Minimal leveled logger used across HongTu.
///
/// Usage: `HT_LOG(INFO) << "epoch " << e << " loss " << loss;`
/// The default level is WARNING so that library code is quiet inside tests
/// and benchmarks; binaries that want progress output call
/// `SetLogLevel(LogLevel::kInfo)`.

#pragma once

#include <sstream>
#include <string>

namespace hongtu {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the global minimum level that is actually emitted.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace hongtu

#define HT_LOG_LEVEL_DEBUG ::hongtu::LogLevel::kDebug
#define HT_LOG_LEVEL_INFO ::hongtu::LogLevel::kInfo
#define HT_LOG_LEVEL_WARNING ::hongtu::LogLevel::kWarning
#define HT_LOG_LEVEL_ERROR ::hongtu::LogLevel::kError

#define HT_LOG(level) \
  ::hongtu::internal::LogMessage(HT_LOG_LEVEL_##level, __FILE__, __LINE__)
