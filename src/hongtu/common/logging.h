/// \file logging.h
/// \brief Minimal leveled logger used across HongTu.
///
/// Usage: `HT_LOG(INFO) << "epoch " << e << " loss " << loss;`
/// The default level is WARNING so that library code is quiet inside tests
/// and benchmarks; binaries that want progress output call
/// `SetLogLevel(LogLevel::kInfo)`.

#pragma once

#include <cstdint>
#include <sstream>
#include <string>

namespace hongtu {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the global minimum level that is actually emitted.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// One structured recovery-event line on stderr, emitted unconditionally
/// (recovery is rare and always diagnostic-worthy; chaos-soak failures in
/// CI are debugged from these). Stable, grep-friendly shape:
///
///   [RECOVERY] t=<unix_seconds> term=<term> rank=<rank> rung=<rung>
///   latency_s=<latency> <detail>
///
/// `rung` names the ladder rung that fired (e.g. "peer_death",
/// "step_recovery", "adoption", "epoch_restart", "coord_park",
/// "coord_reattach", "journal_replay", "checkpoint_fallback"); `rank` is
/// the affected rank (-1 = the coordinator itself); `latency_s` is the
/// rung's detection-to-resolution latency (0 when not meaningful).
void LogRecoveryEvent(const char* rung, uint64_t term, int rank,
                      double latency_s, const std::string& detail);

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace hongtu

#define HT_LOG_LEVEL_DEBUG ::hongtu::LogLevel::kDebug
#define HT_LOG_LEVEL_INFO ::hongtu::LogLevel::kInfo
#define HT_LOG_LEVEL_WARNING ::hongtu::LogLevel::kWarning
#define HT_LOG_LEVEL_ERROR ::hongtu::LogLevel::kError

#define HT_LOG(level) \
  ::hongtu::internal::LogMessage(HT_LOG_LEVEL_##level, __FILE__, __LINE__)
