/// \file parallel.h
/// \brief Shared-memory parallel helpers backed by OpenMP.
///
/// Simulated-GPU kernels in HongTu execute as real float32 computation on the
/// host CPU. Inner loops (SpMM rows, GEMM rows) are parallelized with these
/// helpers; outer device loops stay sequential so results are deterministic.
///
/// The chunked/balanced helpers are templates over the callable, so the hot
/// kernels (SpMM aggregation, GEMM tiles) invoke the body directly — no
/// std::function construction or indirect dispatch per call.

#pragma once

#include <omp.h>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <type_traits>

namespace hongtu {

/// Below this many items, parallel regions run serially.
inline constexpr int64_t kParallelSerialThreshold = 256;

/// Number of worker threads used by ParallelFor (OpenMP max threads).
int NumThreads();

/// Limits the number of threads used by subsequent parallel regions.
void SetNumThreads(int n);

/// Runs `fn(i)` for i in [begin, end) across threads. Iterations must be
/// independent. Falls back to a serial loop for tiny ranges.
void ParallelFor(int64_t begin, int64_t end,
                 const std::function<void(int64_t)>& fn);

/// ParallelForChunked with a caller-chosen serial cutoff: stays serial when
/// `end - begin < serial_below`. Use when one item represents many units of
/// work (e.g. a GEMM micro-tile row covering 8 matrix rows), where the
/// default item-count threshold would serialize real work.
template <typename Fn,
          typename = std::enable_if_t<std::is_invocable_v<Fn&, int64_t, int64_t>>>
void ParallelForChunked(int64_t begin, int64_t end, int64_t serial_below,
                        Fn&& fn) {
  const int64_t n = end - begin;
  if (n <= 0) return;
  if (n < serial_below) {
    fn(begin, end);
    return;
  }
  const int nthreads = NumThreads();
  const int64_t chunk = (n + nthreads - 1) / nthreads;
#pragma omp parallel num_threads(nthreads)
  {
    const int t = omp_get_thread_num();
    const int64_t lo = begin + t * chunk;
    const int64_t hi = std::min(end, lo + chunk);
    if (lo < hi) fn(lo, hi);
  }
}

/// Runs `fn(chunk_begin, chunk_end)` over contiguous blocks of [begin, end).
/// Fewer closure invocations than ParallelFor; preferred for hot loops.
template <typename Fn,
          typename = std::enable_if_t<std::is_invocable_v<Fn&, int64_t, int64_t>>>
void ParallelForChunked(int64_t begin, int64_t end, Fn&& fn) {
  ParallelForChunked(begin, end, kParallelSerialThreshold,
                     std::forward<Fn>(fn));
}

/// Runs `fn(chunk_begin, chunk_end)` over contiguous blocks of [0, n) chosen
/// so every thread receives roughly the same total *weight*, where item i
/// weighs `prefix[i+1] - prefix[i]`. `prefix` is a non-decreasing prefix-sum
/// array of length n+1 — for graph aggregation pass the chunk's `in_offsets`
/// (or `src_offsets`) directly, and each thread gets an equal share of
/// *edges* instead of vertices. This is what keeps power-law degree skew from
/// serializing the whole aggregation behind one hot chunk.
///
/// This overload takes an explicit weight cutoff: the loop stays serial only
/// while `prefix[n] - prefix[0] < serial_below_weight`. Use it when a few
/// items carry the whole workload (e.g. the banded kernels' shards: a
/// handful of items, millions of edges) and the default item-count threshold
/// would serialize real work.
///
/// `max_threads` (0 = no cap) additionally bounds the worker count below
/// NumThreads(). Cache-blocked kernels pass the available processor count
/// (omp_get_num_procs(); note that counts SMT siblings, which still share
/// an L2): threads time-slicing one processor evict each other's working
/// slice, so workers beyond the hardware only thrash.
template <typename Fn,
          typename = std::enable_if_t<std::is_invocable_v<Fn&, int64_t, int64_t>>>
void ParallelForBalanced(int64_t n, const int64_t* prefix,
                         int64_t serial_below_weight, Fn&& fn,
                         int max_threads = 0) {
  if (n <= 0) return;
  const int64_t total = prefix[n] - prefix[0];
  int nthreads = NumThreads();
  if (max_threads > 0) nthreads = std::min(nthreads, max_threads);
  if (nthreads <= 1 || total < serial_below_weight) {
    fn(int64_t{0}, n);
    return;
  }
  // Item i spans the weight interval [prefix[i], prefix[i+1]); thread t owns
  // the items whose interval *starts* inside its weight slice. Boundaries are
  // found by binary search on item start weights, so the slices tile [0, n)
  // exactly (ties included) and a degree-skewed tail of zero-weight vertices
  // costs whichever thread owns that weight point nothing extra.
#pragma omp parallel num_threads(nthreads)
  {
    const int t = omp_get_thread_num();
    const int64_t w0 = prefix[0] + total * t / nthreads;
    const int64_t w1 = prefix[0] + total * (t + 1) / nthreads;
    const int64_t lo = std::lower_bound(prefix, prefix + n, w0) - prefix;
    const int64_t hi = (t + 1 == nthreads)
                           ? n
                           : std::lower_bound(prefix, prefix + n, w1) - prefix;
    if (lo < hi) fn(lo, hi);
  }
}

/// ParallelForBalanced with the default thresholds: serial below
/// kParallelSerialThreshold items or total weight.
template <typename Fn,
          typename = std::enable_if_t<std::is_invocable_v<Fn&, int64_t, int64_t>>>
void ParallelForBalanced(int64_t n, const int64_t* prefix, Fn&& fn) {
  if (n <= 0) return;
  if (n < kParallelSerialThreshold) {
    fn(int64_t{0}, n);
    return;
  }
  ParallelForBalanced(n, prefix, kParallelSerialThreshold,
                      std::forward<Fn>(fn));
}

}  // namespace hongtu
