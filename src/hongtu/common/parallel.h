/// \file parallel.h
/// \brief Shared-memory parallel helpers backed by OpenMP.
///
/// Simulated-GPU kernels in HongTu execute as real float32 computation on the
/// host CPU. Inner loops (SpMM rows, GEMM rows) are parallelized with these
/// helpers; outer device loops stay sequential so results are deterministic.

#pragma once

#include <cstdint>
#include <functional>

namespace hongtu {

/// Number of worker threads used by ParallelFor (OpenMP max threads).
int NumThreads();

/// Limits the number of threads used by subsequent parallel regions.
void SetNumThreads(int n);

/// Runs `fn(i)` for i in [begin, end) across threads. Iterations must be
/// independent. Falls back to a serial loop for tiny ranges.
void ParallelFor(int64_t begin, int64_t end,
                 const std::function<void(int64_t)>& fn);

/// Runs `fn(chunk_begin, chunk_end)` over contiguous blocks of [begin, end).
/// Fewer closure invocations than ParallelFor; preferred for hot loops.
void ParallelForChunked(int64_t begin, int64_t end,
                        const std::function<void(int64_t, int64_t)>& fn);

}  // namespace hongtu
