/// \file parallel.h
/// \brief Shared-memory parallel helpers backed by OpenMP.
///
/// Simulated-GPU kernels in HongTu execute as real float32 computation on the
/// host CPU. Inner loops (SpMM rows, GEMM rows) are parallelized with these
/// helpers; outer device loops stay sequential so results are deterministic.

#pragma once

#include <cstdint>
#include <functional>

namespace hongtu {

/// Number of worker threads used by ParallelFor (OpenMP max threads).
int NumThreads();

/// Limits the number of threads used by subsequent parallel regions.
void SetNumThreads(int n);

/// Runs `fn(i)` for i in [begin, end) across threads. Iterations must be
/// independent. Falls back to a serial loop for tiny ranges.
void ParallelFor(int64_t begin, int64_t end,
                 const std::function<void(int64_t)>& fn);

/// Runs `fn(chunk_begin, chunk_end)` over contiguous blocks of [begin, end).
/// Fewer closure invocations than ParallelFor; preferred for hot loops.
void ParallelForChunked(int64_t begin, int64_t end,
                        const std::function<void(int64_t, int64_t)>& fn);

/// ParallelForChunked with a caller-chosen serial cutoff: stays serial when
/// `end - begin < serial_below`. Use when one item represents many units of
/// work (e.g. a GEMM micro-tile row covering 8 matrix rows), where the
/// default item-count threshold would serialize real work.
void ParallelForChunked(int64_t begin, int64_t end, int64_t serial_below,
                        const std::function<void(int64_t, int64_t)>& fn);

/// Runs `fn(chunk_begin, chunk_end)` over contiguous blocks of [0, n) chosen
/// so every thread receives roughly the same total *weight*, where item i
/// weighs `prefix[i+1] - prefix[i]`. `prefix` is a non-decreasing prefix-sum
/// array of length n+1 — for graph aggregation pass the chunk's `in_offsets`
/// (or `src_offsets`) directly, and each thread gets an equal share of
/// *edges* instead of vertices. This is what keeps power-law degree skew from
/// serializing the whole aggregation behind one hot chunk.
void ParallelForBalanced(int64_t n, const int64_t* prefix,
                         const std::function<void(int64_t, int64_t)>& fn);

}  // namespace hongtu
