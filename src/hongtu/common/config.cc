#include "hongtu/common/config.h"

#include <cstdlib>
#include <cstring>
#include <sstream>

#include "hongtu/common/logging.h"

namespace hongtu {

namespace {

const char* Env(const char* name) { return std::getenv(name); }

}  // namespace

const char* ExecutorKindName(ExecutorKind k) {
  switch (k) {
    case ExecutorKind::kSerial:
      return "serial";
    case ExecutorKind::kPipeline:
      return "pipeline";
    case ExecutorKind::kTaskGraph:
      return "taskgraph";
  }
  return "?";
}

bool ParseExecutorKind(const std::string& s, ExecutorKind* out) {
  if (s == "serial") {
    *out = ExecutorKind::kSerial;
  } else if (s == "pipeline") {
    *out = ExecutorKind::kPipeline;
  } else if (s == "taskgraph") {
    *out = ExecutorKind::kTaskGraph;
  } else {
    return false;
  }
  return true;
}

RuntimeConfig RuntimeConfig::Defaults() { return RuntimeConfig(); }

RuntimeConfig RuntimeConfig::FromEnv() {
  RuntimeConfig c;
  if (const char* s = Env("HONGTU_KERNEL_BACKEND")) {
    if (std::strcmp(s, "reference") == 0) {
      c.kernel_backend = kernels::Backend::kReference;
    } else if (std::strcmp(s, "blocked") != 0) {
      HT_LOG(WARNING) << "HONGTU_KERNEL_BACKEND=" << s
                      << " not recognized (want blocked|reference); keeping "
                      << kernels::BackendName(c.kernel_backend);
    }
  }
  if (const char* s = Env("HONGTU_COMM_PRECISION")) {
    if (std::strcmp(s, "bf16") == 0) {
      c.comm_precision = kernels::CommPrecision::kBf16;
    } else if (std::strcmp(s, "fp16") == 0) {
      c.comm_precision = kernels::CommPrecision::kFp16;
    } else if (std::strcmp(s, "fp32") != 0) {
      HT_LOG(WARNING) << "HONGTU_COMM_PRECISION=" << s
                      << " not recognized (want fp32|bf16|fp16); keeping "
                      << kernels::CommPrecisionName(c.comm_precision);
    }
  }
  if (const char* s = Env("HONGTU_WIRE_INTEGRITY")) {
    c.wire_integrity = std::string(s) != "0";
  }
  if (const char* s = Env("HONGTU_DISABLE_POOL")) {
    c.pool_enabled = !(s[0] != '\0' && s[0] != '0');
  }
  if (const char* s = Env("HONGTU_FAULT_SPEC")) c.fault_spec = s;
  if (const char* s = Env("HONGTU_RETRY_SPEC")) c.retry_spec = s;
  if (const char* s = Env("HONGTU_EXECUTOR")) {
    if (!ParseExecutorKind(s, &c.executor)) {
      HT_LOG(WARNING) << "HONGTU_EXECUTOR=" << s
                      << " not recognized (want serial|pipeline|taskgraph); "
                      << "keeping " << ExecutorKindName(c.executor);
    }
  }
  if (const char* s = Env("HONGTU_MAX_INFLIGHT")) {
    const int v = std::atoi(s);
    if (v >= 1) {
      c.max_inflight = v;
    } else {
      HT_LOG(WARNING) << "HONGTU_MAX_INFLIGHT=" << s
                      << " not a positive integer; keeping " << c.max_inflight;
    }
  }
  if (const char* s = Env("HONGTU_CLUSTER")) {
    if (std::strcmp(s, "tcp") == 0 || std::strcmp(s, "uds") == 0) {
      c.cluster_transport = s;
    } else if (s[0] != '\0') {
      HT_LOG(WARNING) << "HONGTU_CLUSTER=" << s
                      << " not recognized (want tcp|uds|empty); keeping the "
                         "analytic cluster model";
    }
  }
  return c;
}

const RuntimeConfig& RuntimeConfig::Process() {
  static const RuntimeConfig snapshot = FromEnv();
  return snapshot;
}

std::string RuntimeConfig::Describe() const {
  std::ostringstream os;
  os << "RuntimeConfig (explicit > env > default):\n"
     << "  kernel_backend = " << kernels::BackendName(kernel_backend)
     << "  [HONGTU_KERNEL_BACKEND]\n"
     << "  comm_precision = " << kernels::CommPrecisionName(comm_precision)
     << "  [HONGTU_COMM_PRECISION]\n"
     << "  wire_integrity = " << (wire_integrity ? "on" : "off")
     << "  [HONGTU_WIRE_INTEGRITY]\n"
     << "  tensor_pool    = " << (pool_enabled ? "on" : "off")
     << "  [HONGTU_DISABLE_POOL]\n"
     << "  executor       = " << ExecutorKindName(executor)
     << "  [HONGTU_EXECUTOR]\n"
     << "  max_inflight   = " << max_inflight << "  [HONGTU_MAX_INFLIGHT]\n"
     << "  cluster        = "
     << (cluster_transport.empty() ? "(analytic)" : cluster_transport)
     << "  [HONGTU_CLUSTER]\n"
     << "  fault_spec     = " << (fault_spec.empty() ? "(disarmed)" : fault_spec)
     << "  [HONGTU_FAULT_SPEC]\n"
     << "  retry_spec     = " << (retry_spec.empty() ? "(defaults)" : retry_spec)
     << "  [HONGTU_RETRY_SPEC]";
  return os.str();
}

}  // namespace hongtu
