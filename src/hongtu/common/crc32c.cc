#include "hongtu/common/crc32c.h"

#if defined(__SSE4_2__)
#include <nmmintrin.h>
#endif

namespace hongtu {

namespace {

/// Slice-by-8 tables for the Castagnoli polynomial (reflected 0x82F63B42),
/// generated once at first use. Table generation is the textbook bitwise
/// loop; the hot path processes 8 bytes per iteration.
struct Crc32cTables {
  uint32_t t[8][256];

  Crc32cTables() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? (0x82F63B42u ^ (c >> 1)) : (c >> 1);
      }
      t[0][i] = c;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      for (int s = 1; s < 8; ++s) {
        t[s][i] = (t[s - 1][i] >> 8) ^ t[0][t[s - 1][i] & 0xff];
      }
    }
  }
};

uint32_t Crc32cSoftware(const uint8_t* p, size_t n, uint32_t crc) {
  static const Crc32cTables tables;
  const auto& t = tables.t;
  while (n >= 8) {
    const uint32_t lo = crc ^ (static_cast<uint32_t>(p[0]) |
                               static_cast<uint32_t>(p[1]) << 8 |
                               static_cast<uint32_t>(p[2]) << 16 |
                               static_cast<uint32_t>(p[3]) << 24);
    crc = t[7][lo & 0xff] ^ t[6][(lo >> 8) & 0xff] ^ t[5][(lo >> 16) & 0xff] ^
          t[4][lo >> 24] ^ t[3][p[4]] ^ t[2][p[5]] ^ t[1][p[6]] ^ t[0][p[7]];
    p += 8;
    n -= 8;
  }
  while (n-- > 0) crc = (crc >> 8) ^ t[0][(crc ^ *p++) & 0xff];
  return crc;
}

}  // namespace

uint32_t Crc32c(const void* data, size_t n, uint32_t seed) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint32_t crc = ~seed;
#if defined(__SSE4_2__)
  while (n >= 8) {
    uint64_t v;
    __builtin_memcpy(&v, p, 8);
    crc = static_cast<uint32_t>(_mm_crc32_u64(crc, v));
    p += 8;
    n -= 8;
  }
  while (n-- > 0) crc = _mm_crc32_u8(crc, *p++);
#else
  crc = Crc32cSoftware(p, n, crc);
#endif
  return ~crc;
}

}  // namespace hongtu
