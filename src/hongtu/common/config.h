/// \file config.h
/// \brief Process-wide runtime configuration: the single parse point for
/// every `HONGTU_*` environment knob and the home of the executor policy.
///
/// Before this header existed the knobs were parsed ad hoc in five places
/// (kernels/backend.cc, kernels/codec.cc, tensor/pool.cc, common/fault.cc,
/// engine/engine.h), each with its own caching rules. They now all route
/// through `RuntimeConfig`, with one documented precedence:
///
///   explicit field assignment  >  environment variable  >  built-in default
///
/// "Explicit assignment" means writing the field on an options struct (e.g.
/// `EngineOptions::comm_precision`) after construction, or calling a setter
/// such as `kernels::SetBackend`. Defaults are captured from the environment
/// at the point the options object is constructed (`RuntimeConfig::FromEnv`),
/// so a test that `setenv`s and then builds options sees the new value, while
/// an already-built options struct is never mutated behind the caller's back.
///
/// | field           | env var                | default    |
/// |-----------------|------------------------|------------|
/// | kernel_backend  | HONGTU_KERNEL_BACKEND  | blocked    |
/// | comm_precision  | HONGTU_COMM_PRECISION  | fp32       |
/// | wire_integrity  | HONGTU_WIRE_INTEGRITY  | on (1)     |
/// | pool_enabled    | HONGTU_DISABLE_POOL    | on         |
/// | fault_spec      | HONGTU_FAULT_SPEC      | (disarmed) |
/// | retry_spec      | HONGTU_RETRY_SPEC      | (defaults) |
/// | executor        | HONGTU_EXECUTOR        | pipeline   |
/// | max_inflight    | HONGTU_MAX_INFLIGHT    | 2          |
/// | cluster         | HONGTU_CLUSTER         | (off)      |

#pragma once

#include <string>

#include "hongtu/kernels/backend.h"
#include "hongtu/kernels/codec.h"

namespace hongtu {

/// Which chunk executor drives HongTuEngine's epoch loop. All three produce
/// identical numerics (taskgraph/pipeline are bitwise-equal to serial at
/// fp32); they differ only in how much load/compute/store time overlaps.
enum class ExecutorKind {
  kSerial = 0,    ///< one batch at a time, no overlap (the A/B baseline)
  kPipeline = 1,  ///< PR 2's 3-lane fixed-depth stage pipeline, per layer
  kTaskGraph = 2  ///< dataflow task graph over (chunk, layer, stage) nodes
};

const char* ExecutorKindName(ExecutorKind k);

/// Parses "serial" / "pipeline" / "taskgraph". Returns false (and leaves
/// *out untouched) on anything else.
bool ParseExecutorKind(const std::string& s, ExecutorKind* out);

/// One snapshot of every runtime knob. Options structs embed these fields as
/// thin views (their defaults are `RuntimeConfig::FromEnv()` values), so the
/// precedence above holds everywhere without each subsystem re-reading the
/// environment.
struct RuntimeConfig {
  kernels::Backend kernel_backend = kernels::Backend::kBlocked;
  kernels::CommPrecision comm_precision = kernels::CommPrecision::kFp32;
  bool wire_integrity = true;
  bool pool_enabled = true;
  /// Raw HONGTU_FAULT_SPEC string; common/fault.cc owns the grammar and the
  /// arming (it validates and aborts loudly on a malformed spec).
  std::string fault_spec;
  /// Raw HONGTU_RETRY_SPEC string (attempts:base:max:deadline:jitter_seed);
  /// common/fault.cc owns the grammar (fault::ParseRetrySpec) and the
  /// process-wide capture (fault::DefaultRetryPolicy).
  std::string retry_spec;
  ExecutorKind executor = ExecutorKind::kPipeline;
  /// Token-pool capacity of the taskgraph executor / window depth of the
  /// stage pipeline: how many chunk batches may be in flight at once. Each
  /// in-flight batch holds one buffer slot per device (comm transition
  /// buffers + compute workspace), so this is also the memory knob.
  int max_inflight = 2;
  /// Real multi-process cluster transport for CpuClusterEngine: "" (off,
  /// the analytic model), "tcp" (loopback TCP) or "uds" (Unix-domain
  /// sockets). When set, `Engine::Create(kCpuCluster, ...)` spawns one
  /// worker process per simulated device and RunEpoch measures real
  /// wall-clock over the net/ transport (see net/cluster.h).
  std::string cluster_transport;

  /// Built-in defaults, environment ignored.
  static RuntimeConfig Defaults();
  /// Defaults overridden by whatever HONGTU_* variables are set right now
  /// (re-reads the environment on every call — no caching).
  static RuntimeConfig FromEnv();
  /// The process-wide snapshot, captured once on first use. Subsystems whose
  /// configuration must not change mid-run (kernel backend dispatch) read
  /// this one.
  static const RuntimeConfig& Process();

  /// Human-readable multi-line dump, printed by benches and hongtu_cli so
  /// every report records the knob state it ran under.
  std::string Describe() const;
};

}  // namespace hongtu
