#include "hongtu/common/taskgraph.h"

#include <algorithm>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <utility>

#include "hongtu/common/fault.h"
#include "hongtu/common/logging.h"

// Graph-construction invariants are programming errors, not recoverable
// statuses: abort loudly.
#define TG_CHECK(cond, what)                                     \
  do {                                                           \
    if (!(cond)) {                                               \
      HT_LOG(ERROR) << "TaskGraph: " << (what) << " [" #cond "]"; \
      std::abort();                                              \
    }                                                            \
  } while (0)

namespace hongtu {

struct TaskGraph::Node {
  NodeFn fn;
  NodeOptions opts;
  std::vector<NodeId> succ;
  int pending = 0;  ///< unretired incoming edges
  int token = -1;
  bool done = false;
};

struct TaskGraph::Pool {
  int capacity = 0;
  std::vector<int> free_tokens;  // LIFO: hot slot reuse
  std::deque<NodeId> waiters;    // FIFO: elastic-handshake fairness
};

struct TaskGraph::RunState {
  std::mutex mu;
  std::condition_variable cv;
  /// Per-worker deques: a worker pushes/pops its own back (LIFO keeps a
  /// chunk's load->compute->store chain hot on one worker) and steals from
  /// other workers' fronts.
  std::vector<std::deque<NodeId>> queues;
  int completed = 0;
  bool poisoned = false;
};

namespace {
thread_local int t_worker = 0;
}  // namespace

TaskGraph::TaskGraph(Options opts) : opts_(opts) {
  if (opts_.num_workers <= 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    opts_.num_workers = std::clamp<int>(static_cast<int>(hw), 2, 8);
  }
}

TaskGraph::~TaskGraph() { delete rs_; }

int TaskGraph::num_nodes() const { return static_cast<int>(nodes_.size()); }

TaskGraph::PoolId TaskGraph::AddTokenPool(int capacity) {
  Pool p;
  p.capacity = std::max(1, capacity);
  p.free_tokens.reserve(p.capacity);
  // Reverse push so token 0 is on top of the LIFO stack: the first acquirer
  // gets slot 0, matching the serial path's slot usage.
  for (int t = p.capacity - 1; t >= 0; --t) p.free_tokens.push_back(t);
  pools_.push_back(std::move(p));
  return static_cast<PoolId>(pools_.size() - 1);
}

TaskGraph::NodeId TaskGraph::AddNode(NodeFn fn, NodeOptions opts) {
  TG_CHECK(rs_ == nullptr, "AddNode after Run()");
  TG_CHECK(opts.acquires < static_cast<PoolId>(pools_.size()),
           "acquires references an unknown pool");
  TG_CHECK(opts.releases_token_of < static_cast<NodeId>(nodes_.size()),
           "releases_token_of must reference an earlier node");
  Node n;
  n.fn = std::move(fn);
  n.opts = std::move(opts);
  nodes_.push_back(std::move(n));
  return static_cast<NodeId>(nodes_.size() - 1);
}

void TaskGraph::AddEdge(NodeId from, NodeId to) {
  TG_CHECK(from >= 0 && to > from && to < static_cast<NodeId>(nodes_.size()),
           "edges must go from a lower to a higher node id");
  nodes_[from].succ.push_back(to);
  nodes_[to].pending++;
}

int TaskGraph::TokenOf(NodeId n) const {
  if (rs_ != nullptr) {
    std::lock_guard<std::mutex> lk(rs_->mu);
    return nodes_[n].token;
  }
  return nodes_[n].token;
}

bool TaskGraph::TryAcquireTokenLocked(NodeId n) {
  Pool& p = pools_[nodes_[n].opts.acquires];
  if (p.free_tokens.empty()) {
    p.waiters.push_back(n);
    return false;
  }
  nodes_[n].token = p.free_tokens.back();
  p.free_tokens.pop_back();
  return true;
}

void TaskGraph::EnqueueReadyLocked(NodeId n, int worker_hint) {
  // Poisoned graphs drain: skip token acquisition entirely (the body will
  // be skipped too), otherwise a parked waiter could deadlock the drain.
  if (!rs_->poisoned && nodes_[n].opts.acquires >= 0) {
    if (!TryAcquireTokenLocked(n)) return;  // parked; released tokens unpark
  }
  rs_->queues[worker_hint % rs_->queues.size()].push_back(n);
  rs_->cv.notify_all();
}

void TaskGraph::PoisonLocked(NodeId n, Status st) {
  if (rs_->poisoned) return;  // sticky: first error wins
  rs_->poisoned = true;
  failure_.status = std::move(st);
  failure_.node = n;
  failure_.label = nodes_[n].opts.label;
  // Flush parked waiters so the drain reaches them; they run as skipped
  // no-ops without tokens.
  for (Pool& p : pools_) {
    int hint = t_worker;
    while (!p.waiters.empty()) {
      const NodeId w = p.waiters.front();
      p.waiters.pop_front();
      rs_->queues[hint++ % rs_->queues.size()].push_back(w);
    }
  }
  rs_->cv.notify_all();
}

void TaskGraph::RetireLocked(NodeId n) {
  Node& node = nodes_[n];
  if (node.opts.releases_token_of >= 0) {
    Node& holder = nodes_[node.opts.releases_token_of];
    const int t = holder.token;
    if (t >= 0) {
      Pool& p = pools_[holder.opts.acquires];
      if (!rs_->poisoned && !p.waiters.empty()) {
        // Hand the slot straight to the oldest waiter (elastic handshake:
        // the freed buffer re-arms the stalled producer).
        const NodeId w = p.waiters.front();
        p.waiters.pop_front();
        nodes_[w].token = t;
        rs_->queues[t_worker % rs_->queues.size()].push_back(w);
        rs_->cv.notify_all();
      } else {
        p.free_tokens.push_back(t);
      }
    }
  }
  node.done = true;
  rs_->completed++;
  for (const NodeId s : node.succ) {
    if (--nodes_[s].pending == 0) EnqueueReadyLocked(s, t_worker);
  }
  if (rs_->completed == num_nodes()) rs_->cv.notify_all();
}

void TaskGraph::WorkerLoop(int worker_index) {
  t_worker = worker_index;
  const int w = static_cast<int>(rs_->queues.size());
  std::unique_lock<std::mutex> lk(rs_->mu);
  while (rs_->completed < num_nodes()) {
    NodeId n = -1;
    if (!rs_->queues[worker_index].empty()) {
      n = rs_->queues[worker_index].back();  // own queue: LIFO
      rs_->queues[worker_index].pop_back();
    } else {
      for (int i = 1; i < w && n < 0; ++i) {  // steal: oldest work first
        auto& q = rs_->queues[(worker_index + i) % w];
        if (!q.empty()) {
          n = q.front();
          q.pop_front();
        }
      }
    }
    if (n < 0) {
      rs_->cv.wait(lk);
      continue;
    }
    const bool skip = rs_->poisoned;
    NodeContext ctx;
    ctx.node = n;
    ctx.token = nodes_[n].token;
    lk.unlock();
    Status st = Status::OK();
    if (!skip) {
      st = fault::Poke(fault::Site::kPipelineStage);
      if (st.ok()) st = nodes_[n].fn(ctx);
    }
    lk.lock();
    if (!st.ok()) PoisonLocked(n, std::move(st));
    RetireLocked(n);
  }
}

Status TaskGraph::Run() {
  TG_CHECK(rs_ == nullptr, "TaskGraph::Run is one-shot");
  rs_ = new RunState();
  rs_->queues.resize(opts_.num_workers);
  {
    std::lock_guard<std::mutex> lk(rs_->mu);
    int hint = 0;
    for (NodeId n = 0; n < num_nodes(); ++n) {
      if (nodes_[n].pending == 0) EnqueueReadyLocked(n, hint++);
    }
  }
  std::vector<std::thread> workers;
  workers.reserve(opts_.num_workers);
  for (int i = 0; i < opts_.num_workers; ++i) {
    workers.emplace_back([this, i] { WorkerLoop(i); });
  }
  for (std::thread& t : workers) t.join();
  // Post-run: tokens/failure_ are stable, TokenOf reads lock-free.
  delete rs_;
  rs_ = nullptr;
  return failure_.node >= 0 ? failure_.status : Status::OK();
}

double TaskGraph::ScheduleSeconds(
    const std::vector<double>& busy_seconds) const {
  const int n = num_nodes();
  std::vector<double> ready(n, 0.0);
  std::vector<double> res_free;
  using MinHeap =
      std::priority_queue<double, std::vector<double>, std::greater<double>>;
  std::vector<MinHeap> pool_free(pools_.size());
  for (size_t p = 0; p < pools_.size(); ++p) {
    for (int t = 0; t < pools_[p].capacity; ++t) pool_free[p].push(0.0);
  }
  double wall = 0.0;
  // Id order is a topological order (AddEdge enforces from < to), and in the
  // engine's graphs every releasing node precedes the next acquirer of its
  // token, so processing in id order sees each release before the acquire
  // that needs it. Everything below is a pure function of (graph, busy).
  for (NodeId id = 0; id < n; ++id) {
    const Node& node = nodes_[id];
    double start = ready[id];
    if (node.opts.sim_resource >= 0) {
      if (node.opts.sim_resource >= static_cast<int>(res_free.size())) {
        res_free.resize(node.opts.sim_resource + 1, 0.0);
      }
      start = std::max(start, res_free[node.opts.sim_resource]);
    }
    if (node.opts.acquires >= 0) {
      MinHeap& h = pool_free[node.opts.acquires];
      if (!h.empty()) {
        start = std::max(start, h.top());
        h.pop();
      }
    }
    const double busy =
        id < static_cast<NodeId>(busy_seconds.size()) ? busy_seconds[id] : 0.0;
    const double finish = start + busy;
    if (std::getenv("HONGTU_TG_TRACE") != nullptr) {
      std::fprintf(stderr,
                   "tg-trace %4d %-28s start=%.3gus busy=%.3gus idle=%.3gus "
                   "res=%d tok=%d\n",
                   id, node.opts.label.c_str(), start * 1e6, busy * 1e6,
                   (start - ready[id]) * 1e6, node.opts.sim_resource,
                   node.token);
    }
    if (node.opts.sim_resource >= 0) res_free[node.opts.sim_resource] = finish;
    for (const NodeId s : node.succ) ready[s] = std::max(ready[s], finish);
    if (node.opts.releases_token_of >= 0) {
      const Node& holder = nodes_[node.opts.releases_token_of];
      if (holder.opts.acquires >= 0) pool_free[holder.opts.acquires].push(finish);
    }
    wall = std::max(wall, finish);
  }
  return wall;
}

}  // namespace hongtu
