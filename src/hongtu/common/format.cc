#include "hongtu/common/format.h"

#include <cmath>
#include <cstdio>

namespace hongtu {

std::string FormatDouble(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

std::string FormatBytes(double bytes) {
  static const char* kUnits[] = {"B", "KB", "MB", "GB", "TB", "PB"};
  int u = 0;
  double v = bytes;
  while (std::fabs(v) >= 1024.0 && u < 5) {
    v /= 1024.0;
    ++u;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1f%s", v, kUnits[u]);
  return buf;
}

std::string FormatCount(double n) {
  char buf[64];
  if (std::fabs(n) >= 1e9) {
    std::snprintf(buf, sizeof(buf), "%.2fB", n / 1e9);
  } else if (std::fabs(n) >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2fM", n / 1e6);
  } else if (std::fabs(n) >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.1fK", n / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f", n);
  }
  return buf;
}

std::string FormatSeconds(double secs) {
  char buf[64];
  if (secs < 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.0fus", secs * 1e6);
  } else if (secs < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.1fms", secs * 1e3);
  } else if (secs < 120.0) {
    std::snprintf(buf, sizeof(buf), "%.2fs", secs);
  } else {
    int m = static_cast<int>(secs / 60.0);
    std::snprintf(buf, sizeof(buf), "%dm%02.0fs", m, secs - m * 60.0);
  }
  return buf;
}

}  // namespace hongtu
