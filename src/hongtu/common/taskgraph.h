/// \file taskgraph.h
/// \brief Dataflow task-graph executor: work-stealing workers over
/// (chunk, layer, stage) nodes with per-edge readiness, buffer-slot token
/// backpressure and sticky error poisoning.
///
/// This replaces the stage pipeline's batch-order barriers (pipeline.h) with
/// the elastic fire-when-operands-arrive discipline of dataflow circuits: a
/// node runs as soon as (a) every incoming edge has retired and (b) it has
/// acquired a buffer-slot token from its pool. Tokens model the bounded
/// buffering the engine charged against device memory in
/// `CommExecutor::BeginLayer(dim, num_slots, ...)` — a pool of capacity S is
/// backed by exactly S comm transition slots + S compute workspaces, so a
/// node that holds token t may use slot/workspace t exclusively until the
/// (statically known) releasing node retires. Backpressure falls out: when
/// all S tokens are in flight, further acquirers park in FIFO order and the
/// graph keeps running on whatever else is ready — a straggler stalls only
/// its own dependents, never a whole lane.
///
/// Error handling matches the stage pipeline's sticky poisoning so the
/// PR 6 degradation path (transient replay, OOM fallback to serial) works
/// unchanged: the first failing node records a FailureInfo; every node that
/// becomes ready afterwards skips its body (and its token acquisition) but
/// still retires, so the graph drains without deadlock and Run() returns the
/// first error. `fault::Site::kPipelineStage` is poked before each node body
/// — the same site the stage pipeline pokes per item, so one fault spec
/// exercises both executors.
///
/// Determinism: the graph never reorders writes that alternate — the engine
/// chains gradient-retirement nodes in batch order with explicit edges, so
/// accumulation order is pinned by graph structure, not thread schedule
/// (retire-order independence). `ScheduleSeconds` is the post-hoc analytic
/// model of the same graph used for sim metering: a deterministic
/// list-schedule in node-id order, independent of how the real threads
/// interleaved.

#pragma once

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "hongtu/common/status.h"

namespace hongtu {

class TaskGraph {
 public:
  using NodeId = int;
  using PoolId = int;

  /// Passed to each node body: its own id (also the sim-task lane key) and
  /// the token it acquired (-1 if the node acquires nothing).
  struct NodeContext {
    NodeId node = -1;
    int token = -1;
  };
  using NodeFn = std::function<Status(const NodeContext&)>;

  struct Options {
    /// 0 = hardware_concurrency clamped to [2, 8].
    int num_workers = 0;
  };
  TaskGraph() : TaskGraph(Options{}) {}
  explicit TaskGraph(Options opts);
  ~TaskGraph();

  TaskGraph(const TaskGraph&) = delete;
  TaskGraph& operator=(const TaskGraph&) = delete;

  /// Creates a token pool of `capacity` slots (tokens are 0..capacity-1 and
  /// double as buffer-slot indices).
  PoolId AddTokenPool(int capacity);

  struct NodeOptions {
    /// Shown in FailureInfo ("fwd load l1 b3").
    std::string label;
    /// Acquire one token from this pool before running (-1 = none).
    PoolId acquires = -1;
    /// On retirement, release the token held by this (earlier) node back to
    /// its pool. Static pairing keeps the handshake analyzable — and lets
    /// ScheduleSeconds model token turnaround exactly.
    NodeId releases_token_of = -1;
    /// Resource class for the analytic schedule (e.g. 0=load wire, 1=GPU,
    /// 2=store wire): nodes of one class serialize in the model, mirroring
    /// the lane semantics of the 3-lane pipeline. -1 = unconstrained.
    int sim_resource = -1;
  };

  /// Adds a node. Ids are assigned in call order and every edge must go from
  /// a lower to a higher id, so id order is a topological order by
  /// construction.
  NodeId AddNode(NodeFn fn, NodeOptions opts);
  NodeId AddNode(NodeFn fn) { return AddNode(std::move(fn), NodeOptions{}); }

  /// Readiness edge: `to` cannot start until `from` retired. Requires
  /// from < to (see AddNode); duplicate edges are allowed and cheap.
  void AddEdge(NodeId from, NodeId to);

  /// Token held (or last held) by node n; valid once n has started, stable
  /// until its releaser retires. -1 if n acquired nothing (or was skipped).
  int TokenOf(NodeId n) const;

  struct FailureInfo {
    Status status;
    NodeId node = -1;
    std::string label;
  };

  /// Runs the graph to completion (one-shot; a TaskGraph instance is built,
  /// run once, then only queried). Returns the first node failure, or OK.
  Status Run();
  const FailureInfo& first_error() const { return failure_; }

  int num_nodes() const;

  /// Deterministic list-schedule of this graph given per-node busy seconds:
  /// nodes start at the max of (all predecessors' finish, their resource
  /// class free time, earliest token availability in their pool). Processed
  /// in id order (a topological order), so the result is a pure function of
  /// the graph and the durations — the sim layer uses it as the modeled
  /// wall-clock of the N-way-concurrent region. Returns max finish time.
  double ScheduleSeconds(const std::vector<double>& busy_seconds) const;

 private:
  struct Node;
  struct Pool;
  struct Worker;

  // All require lock_ held.
  void EnqueueReadyLocked(NodeId n, int worker_hint);
  void RetireLocked(NodeId n);
  void PoisonLocked(NodeId n, Status st);
  bool TryAcquireTokenLocked(NodeId n);

  void WorkerLoop(int worker_index);

  Options opts_;
  std::vector<Node> nodes_;
  std::vector<Pool> pools_;
  FailureInfo failure_;  // sticky; .node < 0 means no failure

  // Run-time state lives behind one mutex: node bodies are coarse (whole
  // chunk-batch stages), so contention is negligible and the executor stays
  // trivially TSan-clean.
  struct RunState;
  RunState* rs_ = nullptr;
};

}  // namespace hongtu
