#include "hongtu/common/parallel.h"

namespace hongtu {

int NumThreads() { return omp_get_max_threads(); }

void SetNumThreads(int n) { omp_set_num_threads(std::max(1, n)); }

void ParallelFor(int64_t begin, int64_t end,
                 const std::function<void(int64_t)>& fn) {
  if (end - begin < kParallelSerialThreshold) {
    for (int64_t i = begin; i < end; ++i) fn(i);
    return;
  }
#pragma omp parallel for schedule(dynamic, 64)
  for (int64_t i = begin; i < end; ++i) fn(i);
}

}  // namespace hongtu
