#include "hongtu/common/parallel.h"

#include <omp.h>

#include <algorithm>

namespace hongtu {

namespace {
constexpr int64_t kSerialThreshold = 256;
}

int NumThreads() { return omp_get_max_threads(); }

void SetNumThreads(int n) { omp_set_num_threads(std::max(1, n)); }

void ParallelFor(int64_t begin, int64_t end,
                 const std::function<void(int64_t)>& fn) {
  if (end - begin < kSerialThreshold) {
    for (int64_t i = begin; i < end; ++i) fn(i);
    return;
  }
#pragma omp parallel for schedule(dynamic, 64)
  for (int64_t i = begin; i < end; ++i) fn(i);
}

void ParallelForChunked(int64_t begin, int64_t end,
                        const std::function<void(int64_t, int64_t)>& fn) {
  const int64_t n = end - begin;
  if (n <= 0) return;
  if (n < kSerialThreshold) {
    fn(begin, end);
    return;
  }
  const int nthreads = NumThreads();
  const int64_t chunk = (n + nthreads - 1) / nthreads;
#pragma omp parallel num_threads(nthreads)
  {
    const int t = omp_get_thread_num();
    const int64_t lo = begin + t * chunk;
    const int64_t hi = std::min(end, lo + chunk);
    if (lo < hi) fn(lo, hi);
  }
}

}  // namespace hongtu
