#include "hongtu/common/parallel.h"

#include <omp.h>

#include <algorithm>

namespace hongtu {

namespace {
constexpr int64_t kSerialThreshold = 256;
}

int NumThreads() { return omp_get_max_threads(); }

void SetNumThreads(int n) { omp_set_num_threads(std::max(1, n)); }

void ParallelFor(int64_t begin, int64_t end,
                 const std::function<void(int64_t)>& fn) {
  if (end - begin < kSerialThreshold) {
    for (int64_t i = begin; i < end; ++i) fn(i);
    return;
  }
#pragma omp parallel for schedule(dynamic, 64)
  for (int64_t i = begin; i < end; ++i) fn(i);
}

void ParallelForChunked(int64_t begin, int64_t end,
                        const std::function<void(int64_t, int64_t)>& fn) {
  ParallelForChunked(begin, end, kSerialThreshold, fn);
}

void ParallelForChunked(int64_t begin, int64_t end, int64_t serial_below,
                        const std::function<void(int64_t, int64_t)>& fn) {
  const int64_t n = end - begin;
  if (n <= 0) return;
  if (n < serial_below) {
    fn(begin, end);
    return;
  }
  const int nthreads = NumThreads();
  const int64_t chunk = (n + nthreads - 1) / nthreads;
#pragma omp parallel num_threads(nthreads)
  {
    const int t = omp_get_thread_num();
    const int64_t lo = begin + t * chunk;
    const int64_t hi = std::min(end, lo + chunk);
    if (lo < hi) fn(lo, hi);
  }
}

void ParallelForBalanced(int64_t n, const int64_t* prefix,
                         const std::function<void(int64_t, int64_t)>& fn) {
  if (n <= 0) return;
  const int64_t total = prefix[n] - prefix[0];
  const int nthreads = NumThreads();
  if (nthreads <= 1 || n < kSerialThreshold || total < kSerialThreshold) {
    fn(0, n);
    return;
  }
  // Item i spans the weight interval [prefix[i], prefix[i+1]); thread t owns
  // the items whose interval *starts* inside its weight slice. Boundaries are
  // found by binary search on item start weights, so the slices tile [0, n)
  // exactly (ties included) and a degree-skewed tail of zero-weight vertices
  // costs whichever thread owns that weight point nothing extra.
#pragma omp parallel num_threads(nthreads)
  {
    const int t = omp_get_thread_num();
    const int64_t w0 = prefix[0] + total * t / nthreads;
    const int64_t w1 = prefix[0] + total * (t + 1) / nthreads;
    const int64_t lo = std::lower_bound(prefix, prefix + n, w0) - prefix;
    const int64_t hi = (t + 1 == nthreads)
                           ? n
                           : std::lower_bound(prefix, prefix + n, w1) - prefix;
    if (lo < hi) fn(lo, hi);
  }
}

}  // namespace hongtu
