#include "hongtu/common/logging.h"

#include <atomic>
#include <cstdio>
#include <ctime>
#include <mutex>

namespace hongtu {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarning)};
std::mutex g_log_mutex;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarning: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(static_cast<int>(level)); }
LogLevel GetLogLevel() { return static_cast<LogLevel>(g_level.load()); }

void LogRecoveryEvent(const char* rung, uint64_t term, int rank,
                      double latency_s, const std::string& detail) {
  struct timespec ts = {};
  clock_gettime(CLOCK_REALTIME, &ts);
  const double now =
      static_cast<double>(ts.tv_sec) + static_cast<double>(ts.tv_nsec) * 1e-9;
  std::lock_guard<std::mutex> lock(g_log_mutex);
  std::fprintf(stderr,
               "[RECOVERY] t=%.3f term=%llu rank=%d rung=%s latency_s=%.3f"
               " %s\n",
               now, static_cast<unsigned long long>(term), rank, rung,
               latency_s, detail.c_str());
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(static_cast<int>(level) >= g_level.load()), level_(level) {
  if (enabled_) {
    const char* base = file;
    for (const char* p = file; *p; ++p) {
      if (*p == '/') base = p + 1;
    }
    stream_ << "[" << LevelName(level_) << " " << base << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    std::lock_guard<std::mutex> lock(g_log_mutex);
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
  }
}

}  // namespace internal
}  // namespace hongtu
