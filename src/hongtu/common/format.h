/// \file format.h
/// \brief Human-readable formatting helpers for sizes, counts and durations,
/// used by the benchmark harnesses to print paper-style tables.

#pragma once

#include <cstdint>
#include <string>

namespace hongtu {

/// 1536 -> "1.5KB", 12884901888 -> "12.0GB".
std::string FormatBytes(double bytes);

/// 1234567 -> "1.23M"; 950 -> "950".
std::string FormatCount(double n);

/// Seconds -> "123ms" / "4.56s" / "2m03s".
std::string FormatSeconds(double secs);

/// Fixed-point with `digits` decimals.
std::string FormatDouble(double v, int digits);

}  // namespace hongtu
