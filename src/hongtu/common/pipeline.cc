#include "hongtu/common/pipeline.h"

#include <algorithm>
#include <string>

#include "hongtu/common/fault.h"

namespace hongtu {

StagePipeline::StagePipeline(std::vector<StageFn> stages, int depth)
    : stages_(std::move(stages)), depth_(std::max(1, depth)) {
  done_.assign(stages_.size(), 0);
  workers_.reserve(stages_.size());
  for (int s = 0; s < static_cast<int>(stages_.size()); ++s) {
    workers_.emplace_back([this, s] { WorkerLoop(s); });
  }
}

StagePipeline::~StagePipeline() {
  Flush();
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

Status StagePipeline::Submit(int64_t item) {
  std::unique_lock<std::mutex> lock(mu_);
  // The in-flight window counts items not yet retired from the last stage;
  // blocking here is what makes `item % depth` slot reuse safe.
  cv_.wait(lock, [this] { return submitted_ - done_.back() < depth_; });
  items_.push_back(item);
  ++submitted_;
  cv_.notify_all();
  return error_;
}

Status StagePipeline::Flush() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return done_.back() == submitted_; });
  return error_;
}

StagePipeline::FailureInfo StagePipeline::FirstError() const {
  std::lock_guard<std::mutex> lock(mu_);
  return failure_;
}

void StagePipeline::WorkerLoop(int stage) {
  for (int64_t seq = 0;; ++seq) {
    int64_t item = 0;
    bool poisoned = false;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] {
        return stopping_ ||
               (seq < submitted_ && (stage == 0 || done_[stage - 1] > seq));
      });
      const bool ready =
          seq < submitted_ && (stage == 0 || done_[stage - 1] > seq);
      if (!ready) return;  // stopping_ with no more work for this stage
      item = items_[static_cast<size_t>(seq)];
      poisoned = !error_.ok();
    }
    Status st = poisoned ? Status::OK() : fault::Poke(fault::Site::kPipelineStage);
    if (st.ok() && !poisoned) st = stages_[stage](item);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!st.ok() && error_.ok()) {
        // The sticky error keeps the failing stage/item/cause: a poisoned
        // batch is diagnosable, and the engine's replay path can read the
        // unwrapped cause through FirstError().
        failure_ = FailureInfo{st, stage, item};
        error_ = Status(st.code(), "pipeline stage " + std::to_string(stage) +
                                       ", item " + std::to_string(item) +
                                       ": " + st.message());
      }
      done_[stage] = seq + 1;
    }
    cv_.notify_all();
  }
}

}  // namespace hongtu
