/// \file random.h
/// \brief Deterministic pseudo-random utilities (splitmix64 / xoshiro-like).
///
/// Every stochastic component in HongTu (graph generators, feature synthesis,
/// parameter init, samplers) takes an explicit seed so that tests and paper
/// reproductions are bit-deterministic across runs.

#pragma once

#include <cstdint>

namespace hongtu {

/// Small, fast, seedable RNG. Not cryptographic.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) { Seed(seed); }

  void Seed(uint64_t seed) {
    // splitmix64 expansion of the seed into state.
    state_ = seed;
    s0_ = Next64Splitmix();
    s1_ = Next64Splitmix();
  }

  /// Uniform in [0, 2^64).
  uint64_t Next64() {
    // xorshift128+
    uint64_t x = s0_;
    const uint64_t y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
  }

  /// Uniform integer in [0, n). Precondition: n > 0.
  uint64_t NextInt(uint64_t n) { return Next64() % n; }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next64() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Uniform float in [lo, hi).
  float NextFloat(float lo, float hi) {
    return lo + static_cast<float>(NextDouble()) * (hi - lo);
  }

  /// Standard normal via Box-Muller (one value per call; simple, adequate).
  float NextGaussian();

 private:
  uint64_t Next64Splitmix() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  uint64_t state_ = 0;
  uint64_t s0_ = 0, s1_ = 0;
};

}  // namespace hongtu
