/// \file crc32c.h
/// \brief CRC32C (Castagnoli) integrity words for wire payloads and
/// checkpoint sections.
///
/// The fault-tolerance layer attaches a CRC32C word to every
/// codec-compressed transition payload row and to every checkpoint section,
/// so corruption (bit rot, torn writes, injected faults) is *detected* and
/// routed through the recovery paths instead of silently perturbing
/// training. CRC32C is the standard storage/networking checksum (iSCSI,
/// ext4, RocksDB): strong burst-error detection at a few bytes/cycle.
///
/// The implementation uses the SSE4.2 crc32 instruction when the build
/// targets it (HONGTU_NATIVE_ARCH on any modern x86) and a slice-by-8 table
/// fallback otherwise; both produce identical words, so checkpoints and
/// fault-matrix fixtures are portable across the two.

#pragma once

#include <cstddef>
#include <cstdint>

namespace hongtu {

/// CRC32C of `n` bytes, continuing from `seed` (pass 0 to start a new
/// stream; chain calls by passing the previous return value).
uint32_t Crc32c(const void* data, size_t n, uint32_t seed = 0);

/// Mixes `crc` so that Crc32c(payload) stored *inside* a larger checksummed
/// region cannot collide with the region's own CRC stream (RocksDB-style
/// masking).
inline uint32_t MaskCrc32c(uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + 0xa282ead8u;
}
inline uint32_t UnmaskCrc32c(uint32_t masked) {
  const uint32_t rot = masked - 0xa282ead8u;
  return (rot << 15) | (rot >> 17);
}

}  // namespace hongtu
