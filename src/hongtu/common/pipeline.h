/// \file pipeline.h
/// \brief Bounded-depth multi-stage task pipeline.
///
/// A StagePipeline runs S stages on S dedicated worker threads. Items are
/// submitted in order and flow through the stages strictly FIFO: stage s
/// starts item k only after stage s-1 has finished item k, and every stage
/// processes items in submission order. With S=3 this is the classic
/// software pipeline — while stage 1 computes item k, stage 0 is already
/// loading item k+1 and stage 2 is draining item k-1.
///
/// At most `depth` items are in flight at once (Submit blocks when the
/// window is full), so `depth` buffer slots indexed by `item % depth` are
/// safe: slot k%depth is only reused after item k has fully retired.
///
/// The engine layer uses this to overlap deduplicated communication with
/// GNN kernel compute (ISSUE 2 / §6 of the paper); the class itself is
/// generic and engine-agnostic.

#pragma once

#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "hongtu/common/status.h"

namespace hongtu {

class StagePipeline {
 public:
  /// A stage body: receives the submitted item id. A non-OK return poisons
  /// the pipeline: remaining work is skipped (items still retire, so Flush
  /// never deadlocks) and the first error is reported by Submit/Flush.
  using StageFn = std::function<Status(int64_t item)>;

  /// Spawns one worker per stage. `depth` >= 1 bounds in-flight items.
  StagePipeline(std::vector<StageFn> stages, int depth);

  /// Drains remaining work and joins the workers.
  ~StagePipeline();

  StagePipeline(const StagePipeline&) = delete;
  StagePipeline& operator=(const StagePipeline&) = delete;

  /// Enqueues `item` for stage 0. Blocks while `depth` items are in flight.
  /// Returns the sticky pipeline error so callers can stop submitting early;
  /// the item is accepted (as a no-op) even after an error.
  Status Submit(int64_t item);

  /// Waits until every submitted item has retired from the last stage.
  /// Returns the first stage error, or OK.
  Status Flush();

  /// Context of the first stage failure: which stage, which item, and the
  /// stage's own (unwrapped) Status. The engine's replay path uses this to
  /// decide whether a poisoned batch had a *transient* cause (replay the
  /// layer serially) or a permanent one (propagate). `stage`/`item` are -1
  /// and `status` OK while the pipeline is healthy.
  struct FailureInfo {
    Status status;
    int stage = -1;
    int64_t item = -1;
  };
  /// Safe to call any time; meaningful after Submit/Flush reported an error.
  FailureInfo FirstError() const;

  int num_stages() const { return static_cast<int>(stages_.size()); }
  int depth() const { return depth_; }

 private:
  void WorkerLoop(int stage);

  std::vector<StageFn> stages_;
  int depth_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<int64_t> items_;  ///< submitted item ids, indexed by sequence
  std::vector<int64_t> done_;   ///< per stage: count of retired sequences
  int64_t submitted_ = 0;
  bool stopping_ = false;
  Status error_;         ///< first stage error with context (sticky)
  FailureInfo failure_;  ///< stage/item/cause of the first error

  std::vector<std::thread> workers_;
};

}  // namespace hongtu
