/// \file status.h
/// \brief Status / Result error-handling primitives (Arrow/RocksDB style).
///
/// All fallible public APIs in HongTu return either `Status` or `Result<T>`.
/// Exceptions are not thrown across module boundaries; an error propagates as
/// a `Status` carrying a code and a human-readable message.

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <variant>

namespace hongtu {

/// Error categories used throughout the system.
enum class StatusCode : int8_t {
  kOk = 0,
  kInvalidArgument = 1,
  kOutOfMemory = 2,     ///< A simulated device allocation exceeded capacity.
  kNotFound = 3,
  kAlreadyExists = 4,
  kInternal = 5,
  kNotImplemented = 6,
  kIoError = 7,
  /// A *transient* failure: the operation may succeed if simply retried
  /// (flaky transfer, contended allocator, injected transient fault). The
  /// retry layer (common/fault.h) re-attempts these with capped exponential
  /// backoff; every other code is permanent and propagates immediately.
  kUnavailable = 8,
  /// Payload integrity failure: a CRC32C word did not match (corrupted wire
  /// payload, torn checkpoint section). Transient in the sense that the
  /// data can usually be refetched/re-read from its source of truth.
  kDataLoss = 9,
};

/// Returns a stable human-readable name for a StatusCode.
const char* StatusCodeName(StatusCode code);

/// \brief A lightweight success-or-error value.
///
/// `Status::OK()` is represented with a null state pointer, so the success
/// path costs one pointer compare and no allocation.
class Status {
 public:
  Status() = default;

  Status(StatusCode code, std::string msg);

  static Status OK() { return Status(); }
  static Status Invalid(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfMemory(std::string msg) {
    return Status(StatusCode::kOutOfMemory, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }

  bool ok() const { return state_ == nullptr; }
  bool IsOutOfMemory() const { return code() == StatusCode::kOutOfMemory; }
  bool IsInvalid() const { return code() == StatusCode::kInvalidArgument; }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsNotImplemented() const {
    return code() == StatusCode::kNotImplemented;
  }
  bool IsDataLoss() const { return code() == StatusCode::kDataLoss; }
  /// True for failures worth retrying (kUnavailable, kDataLoss); permanent
  /// errors — bad arguments, real OOM, unreadable files — return false and
  /// must propagate to the caller.
  bool IsTransient() const {
    return code() == StatusCode::kUnavailable ||
           code() == StatusCode::kDataLoss;
  }

  StatusCode code() const { return state_ ? state_->code : StatusCode::kOk; }
  const std::string& message() const;

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code() == other.code();
  }

 private:
  struct State {
    StatusCode code;
    std::string msg;
  };
  std::shared_ptr<State> state_;
};

/// \brief Holds either a value of type `T` or an error `Status`.
template <typename T>
class Result {
 public:
  /// Implicit from value (success).
  Result(T value) : var_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  /// Implicit from error status. Must not be OK.
  Result(Status st) : var_(std::move(st)) {}  // NOLINT(google-explicit-constructor)

  bool ok() const { return std::holds_alternative<T>(var_); }

  const Status& status() const {
    static const Status ok_status = Status::OK();
    if (ok()) return ok_status;
    return std::get<Status>(var_);
  }

  /// Precondition: ok().
  T& ValueOrDie() & { return std::get<T>(var_); }
  const T& ValueOrDie() const& { return std::get<T>(var_); }
  T&& ValueOrDie() && { return std::move(std::get<T>(var_)); }

  /// Moves the value out; precondition: ok().
  T MoveValueUnsafe() { return std::move(std::get<T>(var_)); }

 private:
  std::variant<T, Status> var_;
};

namespace internal {
/// Aborts the process with `st` printed; used by HT_CHECK_OK.
[[noreturn]] void DieWithStatus(const Status& st, const char* expr,
                                const char* file, int line);
}  // namespace internal

}  // namespace hongtu

/// Propagates a non-OK Status to the caller.
#define HT_RETURN_IF_ERROR(expr)                      \
  do {                                                \
    ::hongtu::Status _ht_st = (expr);                 \
    if (!_ht_st.ok()) return _ht_st;                  \
  } while (0)

#define HT_CONCAT_IMPL(x, y) x##y
#define HT_CONCAT(x, y) HT_CONCAT_IMPL(x, y)

/// Evaluates an expression returning Result<T>; on success assigns the value
/// to `lhs`, on failure propagates the Status.
#define HT_ASSIGN_OR_RETURN(lhs, rexpr)                            \
  auto HT_CONCAT(_ht_result_, __LINE__) = (rexpr);                 \
  if (!HT_CONCAT(_ht_result_, __LINE__).ok())                      \
    return HT_CONCAT(_ht_result_, __LINE__).status();              \
  lhs = HT_CONCAT(_ht_result_, __LINE__).MoveValueUnsafe()

/// Aborts if `expr` (a Status) is not OK. For use in tests/examples/main().
#define HT_CHECK_OK(expr)                                                   \
  do {                                                                      \
    ::hongtu::Status _ht_st = (expr);                                       \
    if (!_ht_st.ok())                                                       \
      ::hongtu::internal::DieWithStatus(_ht_st, #expr, __FILE__, __LINE__); \
  } while (0)
