#include "hongtu/common/random.h"

#include <cmath>

namespace hongtu {

float Rng::NextGaussian() {
  // Box-Muller; discard the second value for simplicity.
  double u1 = NextDouble();
  double u2 = NextDouble();
  if (u1 < 1e-12) u1 = 1e-12;
  return static_cast<float>(std::sqrt(-2.0 * std::log(u1)) *
                            std::cos(2.0 * M_PI * u2));
}

}  // namespace hongtu
