#include "hongtu/common/status.h"

#include <cstdio>
#include <cstdlib>

namespace hongtu {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "InvalidArgument";
    case StatusCode::kOutOfMemory: return "OutOfMemory";
    case StatusCode::kNotFound: return "NotFound";
    case StatusCode::kAlreadyExists: return "AlreadyExists";
    case StatusCode::kInternal: return "Internal";
    case StatusCode::kNotImplemented: return "NotImplemented";
    case StatusCode::kIoError: return "IoError";
    case StatusCode::kUnavailable: return "Unavailable";
    case StatusCode::kDataLoss: return "DataLoss";
  }
  return "Unknown";
}

Status::Status(StatusCode code, std::string msg) {
  if (code != StatusCode::kOk) {
    state_ = std::make_shared<State>(State{code, std::move(msg)});
  }
}

const std::string& Status::message() const {
  static const std::string empty;
  return state_ ? state_->msg : empty;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  return std::string(StatusCodeName(code())) + ": " + message();
}

namespace internal {

void DieWithStatus(const Status& st, const char* expr, const char* file,
                   int line) {
  std::fprintf(stderr, "HT_CHECK_OK failed at %s:%d\n  expression: %s\n  status: %s\n",
               file, line, expr, st.ToString().c_str());
  std::abort();
}

}  // namespace internal
}  // namespace hongtu
