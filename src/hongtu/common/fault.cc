#include "hongtu/common/fault.h"

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <vector>

#include "hongtu/common/config.h"
#include "hongtu/common/logging.h"

namespace hongtu {
namespace fault {

namespace {

const char* const kSiteNames[kNumSites] = {
    "pool.alloc", "comm.fetch",  "comm.flush", "device.h2d",
    "pipeline.stage", "ckpt.write", "graph.io", "net.send",
    "net.recv", "net.accept", "ckpt.read", "journal.write",
};

/// Stall injected by Kind::kDelay at sites that route through Poke(). Long
/// enough to trip tight RPC deadlines in tests, short enough that a
/// low-probability delay spec does not dominate a run.
constexpr double kDelayStallSeconds = 2e-3;

/// splitmix64: the decision for check k is a pure function of (seed, k), so
/// the fire pattern is independent of thread interleaving and identical
/// across runs.
uint64_t Mix64(uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

double DecisionDraw(uint64_t seed, int64_t k) {
  const uint64_t h = Mix64(seed ^ (static_cast<uint64_t>(k) *
                                   0x9e3779b97f4a7c15ULL));
  return static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
}

struct SiteState {
  SiteSpec spec;
  int64_t checks = 0;
  int64_t fired = 0;
};

struct Registry {
  std::mutex mu;
  SiteState sites[kNumSites];
  std::atomic<int> armed_count{0};
};

Registry& Reg() {
  static Registry* r = new Registry();  // never destroyed (pokes may outlive
  return *r;                            // static destructors)
}

/// Arms from HONGTU_FAULT_SPEC once, before main() touches any site. A bad
/// spec aborts loudly — silently training without the requested faults would
/// invalidate whatever experiment asked for them.
const bool g_env_armed = [] {
  const std::string spec = RuntimeConfig::FromEnv().fault_spec;
  if (!spec.empty()) {
    const Status st = ArmSpecString(spec);
    if (!st.ok()) {
      std::fprintf(stderr, "HONGTU_FAULT_SPEC rejected: %s\n",
                   st.ToString().c_str());
      std::abort();
    }
  }
  return true;
}();

}  // namespace

const char* SiteName(Site s) { return kSiteNames[static_cast<int>(s)]; }

const char* KindName(Kind k) {
  switch (k) {
    case Kind::kNone: return "none";
    case Kind::kTransient: return "transient";
    case Kind::kPermanent: return "permanent";
    case Kind::kCorrupt: return "corrupt";
    case Kind::kKill: return "kill";
    case Kind::kDrop: return "drop";
    case Kind::kDelay: return "delay";
    case Kind::kDisconnect: return "disconnect";
  }
  return "?";
}

bool Armed() {
  return Reg().armed_count.load(std::memory_order_relaxed) > 0;
}

Kind Check(Site s) {
  if (!Armed()) return Kind::kNone;
  Registry& reg = Reg();
  Kind fired = Kind::kNone;
  {
    std::lock_guard<std::mutex> lock(reg.mu);
    SiteState& st = reg.sites[static_cast<int>(s)];
    if (st.spec.kind == Kind::kNone) return Kind::kNone;
    const int64_t k = st.checks++;
    if (k < st.spec.skip) return Kind::kNone;
    if (st.spec.max_count >= 0 && st.fired >= st.spec.max_count) {
      return Kind::kNone;
    }
    if (DecisionDraw(st.spec.seed, k) >= st.spec.prob) return Kind::kNone;
    ++st.fired;
    fired = st.spec.kind;
  }
  if (fired == Kind::kKill) {
    // The crash/resume smoke: die exactly like a power cut would, with no
    // destructors, flushes or atexit handlers.
    std::raise(SIGKILL);
  }
  return fired;
}

Status Poke(Site s) {
  const Kind k = Check(s);
  switch (k) {
    case Kind::kNone:
    case Kind::kKill:  // unreachable; Check() does not return from a kill
      return Status::OK();
    case Kind::kTransient:
      return Status::Unavailable(std::string("injected transient fault at ") +
                                 SiteName(s));
    case Kind::kPermanent:
      return Status::Internal(std::string("injected permanent fault at ") +
                              SiteName(s));
    case Kind::kCorrupt:
      return Status::DataLoss(std::string("injected corruption at ") +
                              SiteName(s));
    case Kind::kDrop:
      // At a payload-less site the closest analogue of a silently-lost
      // frame is a retryable failure (the caller's deadline machinery is
      // what a real drop would exercise). The net.* sites use Check()
      // directly and implement true drop semantics.
      return Status::Unavailable(std::string("injected drop at ") +
                                 SiteName(s));
    case Kind::kDelay:
      std::this_thread::sleep_for(
          std::chrono::duration<double>(kDelayStallSeconds));
      return Status::OK();
    case Kind::kDisconnect:
      return Status::Unavailable(std::string("injected disconnect at ") +
                                 SiteName(s));
  }
  return Status::OK();
}

Status Arm(Site site, const SiteSpec& spec) {
  if (spec.prob < 0.0 || spec.prob > 1.0) {
    return Status::Invalid("fault::Arm: prob must be in [0, 1]");
  }
  Registry& reg = Reg();
  std::lock_guard<std::mutex> lock(reg.mu);
  SiteState& st = reg.sites[static_cast<int>(site)];
  if (st.spec.kind == Kind::kNone && spec.kind != Kind::kNone) {
    reg.armed_count.fetch_add(1, std::memory_order_relaxed);
  } else if (st.spec.kind != Kind::kNone && spec.kind == Kind::kNone) {
    reg.armed_count.fetch_sub(1, std::memory_order_relaxed);
  }
  st.spec = spec;
  st.checks = 0;
  st.fired = 0;
  return Status::OK();
}

Status ArmSpecString(const std::string& spec) {
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t end = spec.find(';', pos);
    if (end == std::string::npos) end = spec.size();
    const std::string clause = spec.substr(pos, end - pos);
    pos = end + 1;
    if (clause.empty()) continue;

    std::vector<std::string> fields;
    size_t fpos = 0;
    while (fpos <= clause.size()) {
      size_t fend = clause.find(':', fpos);
      if (fend == std::string::npos) fend = clause.size();
      fields.push_back(clause.substr(fpos, fend - fpos));
      fpos = fend + 1;
    }
    if (fields.size() < 4 || fields.size() > 6) {
      return Status::Invalid(
          "fault spec clause needs site:kind:prob:seed[:max_count[:skip]]: " +
          clause);
    }

    int site = -1;
    for (int i = 0; i < kNumSites; ++i) {
      if (fields[0] == kSiteNames[i]) site = i;
    }
    if (site < 0) return Status::Invalid("unknown fault site: " + fields[0]);

    Kind kind = Kind::kNone;
    if (fields[1] == "transient") kind = Kind::kTransient;
    else if (fields[1] == "permanent") kind = Kind::kPermanent;
    else if (fields[1] == "corrupt") kind = Kind::kCorrupt;
    else if (fields[1] == "kill") kind = Kind::kKill;
    else if (fields[1] == "drop") kind = Kind::kDrop;
    else if (fields[1] == "delay") kind = Kind::kDelay;
    else if (fields[1] == "disconnect") kind = Kind::kDisconnect;
    else return Status::Invalid("unknown fault kind: " + fields[1]);

    SiteSpec s;
    s.kind = kind;
    char* rest = nullptr;
    s.prob = std::strtod(fields[2].c_str(), &rest);
    if (rest == fields[2].c_str() || *rest != '\0') {
      return Status::Invalid("bad fault prob: " + fields[2]);
    }
    s.seed = std::strtoull(fields[3].c_str(), nullptr, 0);
    if (fields.size() >= 5) s.max_count = std::strtoll(fields[4].c_str(), nullptr, 0);
    if (fields.size() >= 6) s.skip = std::strtoll(fields[5].c_str(), nullptr, 0);
    HT_RETURN_IF_ERROR(Arm(static_cast<Site>(site), s));
  }
  return Status::OK();
}

void DisarmAll() {
  Registry& reg = Reg();
  std::lock_guard<std::mutex> lock(reg.mu);
  for (SiteState& st : reg.sites) {
    st.spec = SiteSpec{};
    st.checks = 0;
    st.fired = 0;
  }
  reg.armed_count.store(0, std::memory_order_relaxed);
}

SiteStats StatsFor(Site s) {
  Registry& reg = Reg();
  std::lock_guard<std::mutex> lock(reg.mu);
  const SiteState& st = reg.sites[static_cast<int>(s)];
  return SiteStats{st.checks, st.fired};
}

Result<RetryPolicy> ParseRetrySpec(const std::string& spec) {
  RetryPolicy p;
  std::vector<std::string> fields;
  size_t fpos = 0;
  while (fpos <= spec.size()) {
    size_t fend = spec.find(':', fpos);
    if (fend == std::string::npos) fend = spec.size();
    fields.push_back(spec.substr(fpos, fend - fpos));
    fpos = fend + 1;
  }
  if (fields.size() > 5) {
    return Status::Invalid(
        "retry spec has more than "
        "attempts:base_backoff_s:max_backoff_s:total_deadline_s:jitter_seed "
        "fields: " +
        spec);
  }
  const auto parse_f64 = [](const std::string& f, double* out) -> Status {
    char* rest = nullptr;
    const double v = std::strtod(f.c_str(), &rest);
    if (rest == f.c_str() || *rest != '\0') {
      return Status::Invalid("bad retry spec field: " + f);
    }
    *out = v;
    return Status::OK();
  };
  if (!fields.empty() && !fields[0].empty()) {
    char* rest = nullptr;
    const long v = std::strtol(fields[0].c_str(), &rest, 10);
    if (rest == fields[0].c_str() || *rest != '\0' || v < 1) {
      return Status::Invalid("retry spec attempts must be a positive int: " +
                             fields[0]);
    }
    p.max_attempts = static_cast<int>(v);
  }
  if (fields.size() >= 2 && !fields[1].empty()) {
    HT_RETURN_IF_ERROR(parse_f64(fields[1], &p.base_backoff_s));
  }
  if (fields.size() >= 3 && !fields[2].empty()) {
    HT_RETURN_IF_ERROR(parse_f64(fields[2], &p.max_backoff_s));
  }
  if (fields.size() >= 4 && !fields[3].empty()) {
    HT_RETURN_IF_ERROR(parse_f64(fields[3], &p.total_deadline_s));
  }
  if (fields.size() >= 5 && !fields[4].empty()) {
    p.jitter_seed = std::strtoull(fields[4].c_str(), nullptr, 0);
  }
  if (p.base_backoff_s < 0 || p.max_backoff_s < p.base_backoff_s) {
    return Status::Invalid("retry spec backoffs must satisfy 0 <= base <= max");
  }
  return p;
}

const RetryPolicy& DefaultRetryPolicy() {
  static const RetryPolicy* p = [] {
    auto* pol = new RetryPolicy();
    const std::string spec = RuntimeConfig::FromEnv().retry_spec;
    if (!spec.empty()) {
      auto r = ParseRetrySpec(spec);
      if (!r.ok()) {
        // Same contract as HONGTU_FAULT_SPEC: running with silently-default
        // retry caps would invalidate whatever experiment asked for them.
        std::fprintf(stderr, "HONGTU_RETRY_SPEC rejected: %s\n",
                     r.status().ToString().c_str());
        std::abort();
      }
      *pol = r.ValueOrDie();
    }
    return pol;
  }();
  return *p;
}

namespace internal {

double BackoffSleep(const RetryPolicy& p, int attempt) {
  double delay = p.base_backoff_s;
  for (int i = 1; i < attempt && delay < p.max_backoff_s; ++i) delay *= 2.0;
  if (delay > p.max_backoff_s) delay = p.max_backoff_s;
  // Deterministic jitter in [0.5, 1.0): decorrelates concurrent retriers
  // without making runs irreproducible.
  const double u = static_cast<double>(
                       Mix64(p.jitter_seed ^ static_cast<uint64_t>(attempt)) >>
                       11) *
                   (1.0 / 9007199254740992.0);
  delay *= 0.5 + 0.5 * u;
  std::this_thread::sleep_for(std::chrono::duration<double>(delay));
  return delay;
}

}  // namespace internal

const char* DegradeEventName(DegradeEvent e) {
  switch (e) {
    case DegradeEvent::kTransientRetry: return "retry";
    case DegradeEvent::kRetryExhausted: return "retry_exhausted";
    case DegradeEvent::kIntegrityRefetch: return "integrity_refetch";
    case DegradeEvent::kPipelineReplay: return "pipeline_replay";
    case DegradeEvent::kPipelineOomFallback: return "pipeline_oom_fallback";
    case DegradeEvent::kScheduleFallback: return "schedule_fallback";
    case DegradeEvent::kCheckpointFallback: return "checkpoint_fallback";
    case DegradeEvent::kPeerDeath: return "peer_death";
    case DegradeEvent::kEpochRestart: return "epoch_restart";
    case DegradeEvent::kStepRecovery: return "step_recovery";
    case DegradeEvent::kPartitionAdopted: return "partition_adopted";
    case DegradeEvent::kCoordJournalReplay: return "coord_journal_replay";
    case DegradeEvent::kWorkerReattach: return "worker_reattach";
  }
  return "?";
}

std::string RecoveryCounters::ToString() const {
  std::string out;
  for (int e = 0; e < kNumDegradeEvents; ++e) {
    if (counts[e] == 0) continue;
    if (!out.empty()) out += ' ';
    out += DegradeEventName(static_cast<DegradeEvent>(e));
    out += '=';
    out += std::to_string(counts[e]);
  }
  return out;
}

void DegradationPolicy::Record(DegradeEvent e, const std::string& detail) {
  epoch_[static_cast<int>(e)].fetch_add(1, std::memory_order_relaxed);
  HT_LOG(WARNING) << "degradation [" << DegradeEventName(e) << "] " << detail;
}

void DegradationPolicy::RecordSetup(DegradeEvent e,
                                    const std::string& detail) {
  setup_[static_cast<int>(e)].fetch_add(1, std::memory_order_relaxed);
  HT_LOG(WARNING) << "degradation (setup) [" << DegradeEventName(e) << "] "
                  << detail;
}

void DegradationPolicy::ResetEpoch() {
  for (auto& c : epoch_) c.store(0, std::memory_order_relaxed);
}

RecoveryCounters DegradationPolicy::SnapshotEpoch() const {
  RecoveryCounters rc;
  for (int e = 0; e < kNumDegradeEvents; ++e) {
    rc.counts[e] = epoch_[e].load(std::memory_order_relaxed) +
                   setup_[e].load(std::memory_order_relaxed);
  }
  return rc;
}

}  // namespace fault
}  // namespace hongtu
