/// \file fault.h
/// \brief Deterministic fault injection, transient-failure retry, and the
/// unified degradation policy.
///
/// An out-of-core epoch is a long loop of host<->device row transfers,
/// recomputation batches and gradient flushes — exactly the workload shape
/// where a production system must survive transient transfer failures,
/// corrupted payloads and allocation pressure rather than abort a
/// multi-hour full-batch run. This header defines the three pieces every
/// subsystem shares:
///
///  1. **Fault injection registry.** Named sites (`comm.fetch`,
///     `device.h2d`, ...) are sprinkled through the hot paths as
///     `fault::Poke(Site)` calls. Disarmed (the default) a poke is a single
///     relaxed atomic load — zero overhead. Armed, a site fires
///     deterministically: the decision for the k-th check is a pure
///     function of (seed, k), so a run with a given spec always fails at
///     the same points, making recovery paths unit-testable bit-for-bit.
///     Configure via the programmatic API or the environment:
///
///         HONGTU_FAULT_SPEC=site:kind:prob:seed[:max_count[:skip]][;...]
///
///     e.g. `comm.fetch:transient:1:42:1` = the first comm fetch fails once
///     with a retryable error; `ckpt.write:kill:1:0:1:12` = the 13th
///     checkpoint-write poke SIGKILLs the process (the kill-and-resume CI
///     smoke). Kinds: `transient` (retryable Unavailable), `permanent`
///     (non-retryable Internal), `corrupt` (payload bit-flip where the site
///     has a payload, otherwise DataLoss), `kill` (raise SIGKILL).
///
///  2. **Retry layer.** `RetryTransient` re-attempts an idempotent
///     operation while it fails with a *transient* Status (kUnavailable /
///     kDataLoss), with capped exponential backoff and deterministic
///     jitter. Permanent errors propagate immediately.
///
///  3. **DegradationPolicy.** The single, counted record of every graceful
///     degradation: retries, integrity refetches, pipeline->serial
///     replays, OOM fallbacks, checkpoint fallbacks. Engines snapshot it
///     into EpochStats so a "recovered" epoch is visibly different from a
///     clean one (and tests can prove a recovery path actually fired).

#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

#include "hongtu/common/status.h"

namespace hongtu {
namespace fault {

/// Registered injection sites. Keep SiteName() in sync.
enum class Site : int {
  kPoolAlloc = 0,   ///< device buffer-pool allocations (SimDevice::Allocate)
  kCommFetch,       ///< CommExecutor::ForwardLoad (Alg. 2 fetch path)
  kCommFlush,       ///< CommExecutor::BackwardAccumulate (Alg. 3 flush path)
  kDeviceH2D,       ///< engine host<->device row streams (gather/scatter)
  kPipelineStage,   ///< StagePipeline stage execution
  kCkptWrite,       ///< checkpoint section writes
  kGraphIo,         ///< graph/dataset file loaders
  kNetSend,         ///< net/frame.h WriteFrame (cluster RPC egress)
  kNetRecv,         ///< net/frame.h ReadFrame (cluster RPC ingress)
  kNetAccept,       ///< net/transport.h accept loop (new peer connections)
  kCkptRead,        ///< checkpoint restore-time reads (snapshot parsing)
  kJournalWrite,    ///< cluster write-ahead journal record appends
};
constexpr int kNumSites = 12;

/// "pool.alloc", "comm.fetch", ... (stable; the spec grammar uses these).
const char* SiteName(Site s);

/// What an armed site injects when it fires. The wire-shaped kinds (drop,
/// delay, disconnect) model the failure modes only a real network has; at
/// the net.* sites the transport implements their exact semantics (a
/// dropped frame simply never arrives, a disconnect severs the socket), and
/// at every other site they degrade to a retryable Unavailable (drop /
/// disconnect) or a short stall (delay).
enum class Kind : int {
  kNone = 0,
  kTransient,   ///< Status::Unavailable — the retry layer recovers
  kPermanent,   ///< Status::Internal — must propagate as a clean error
  kCorrupt,     ///< flip payload bits where the site has one, else DataLoss
  kKill,        ///< raise(SIGKILL) — crash/resume testing
  kDrop,        ///< silently discard the frame (deadline-expiry testing)
  kDelay,       ///< stall the operation a few milliseconds (straggler model)
  kDisconnect,  ///< sever the connection (reconnect-path testing)
};
const char* KindName(Kind k);

/// One armed site's configuration.
struct SiteSpec {
  Kind kind = Kind::kNone;
  double prob = 0.0;       ///< per-check fire probability in [0, 1]
  uint64_t seed = 0;       ///< decision stream seed (determinism)
  int64_t max_count = -1;  ///< stop firing after this many fires (<0 = inf)
  int64_t skip = 0;        ///< never fire on the first `skip` checks
};

/// True when any site is armed. A single relaxed atomic load; every
/// injection site guards its (locked) bookkeeping behind this, so the
/// disarmed hot path costs nothing measurable.
bool Armed();

/// The k-th check of an armed site: returns the kind fired, or kNone.
/// Deterministic: whether check k fires depends only on (spec.seed, k).
/// kKill raises SIGKILL and does not return.
Kind Check(Site s);

/// Check + materialize the injected Status: kTransient -> Unavailable,
/// kPermanent -> Internal, kCorrupt (at payload-less sites) -> DataLoss.
/// Returns OK when the site does not fire. Call this at sites that fail by
/// returning a Status; use Check() directly at sites that corrupt payloads.
Status Poke(Site s);

/// Arms `site` with `spec` (replacing any previous arming of that site).
Status Arm(Site site, const SiteSpec& spec);

/// Parses and arms a full HONGTU_FAULT_SPEC string (';'-separated clauses
/// of `site:kind:prob:seed[:max_count[:skip]]`).
Status ArmSpecString(const std::string& spec);

/// Disarms every site and clears per-site statistics.
void DisarmAll();

/// Per-site counters (since arming / the last DisarmAll).
struct SiteStats {
  int64_t checks = 0;  ///< pokes that consulted the decision stream
  int64_t fired = 0;   ///< pokes that injected a fault
};
SiteStats StatsFor(Site s);

// ---- Retry layer. ----------------------------------------------------------

/// Capped-exponential-backoff policy for transient failures. The backoff
/// seconds are real sleeps (small: recovery paths must not dominate test
/// time) with deterministic jitter drawn from (jitter_seed, attempt).
struct RetryPolicy {
  int max_attempts = 4;         ///< total tries (1 initial + 3 retries)
  double base_backoff_s = 5e-5;
  double max_backoff_s = 5e-3;
  uint64_t jitter_seed = 0x9e3779b97f4a7c15ULL;
  /// Total wall-clock budget across all attempts, in seconds; <= 0 means
  /// unbounded (attempt count is the only cap — the pre-PR-8 behavior).
  /// RPC paths set this so a dead peer fails over into the recovery ladder
  /// (abort -> checkpoint restore -> respawn) instead of retrying into a
  /// black hole: once the budget is spent no further attempt starts and
  /// the last transient status propagates as kRetryExhausted.
  double total_deadline_s = 0.0;
};

/// Parses a `HONGTU_RETRY_SPEC` string into a policy. Grammar (every field
/// optional from the right, ':'-separated):
///
///     attempts:base_backoff_s:max_backoff_s:total_deadline_s:jitter_seed
///
/// e.g. `6:1e-4:1e-2` = 6 attempts, 100us base backoff, 10ms cap. Fields
/// left empty (`::5e-3`) keep their defaults.
Result<RetryPolicy> ParseRetrySpec(const std::string& spec);

/// The process-wide retry policy: `HONGTU_RETRY_SPEC` parsed once on first
/// use (aborts loudly on a malformed spec, like HONGTU_FAULT_SPEC), the
/// struct defaults otherwise. Call sites that need different caps (e.g. the
/// cluster RPC paths, which override max_attempts and total_deadline_s to
/// track their own peer/abort deadlines) copy this and adjust fields.
const RetryPolicy& DefaultRetryPolicy();

namespace internal {
/// Sleeps the backoff for retry number `attempt` (1-based) under `p`,
/// returning the slept seconds: min(max, base * 2^(attempt-1)) scaled by a
/// deterministic jitter factor in [0.5, 1.0).
double BackoffSleep(const RetryPolicy& p, int attempt);
}  // namespace internal

// ---- Degradation policy. ---------------------------------------------------

/// Every structured degradation event the system can survive. Keep
/// DegradeEventName() in sync.
enum class DegradeEvent : int {
  kTransientRetry = 0,    ///< a transient failure recovered by retrying
  kRetryExhausted,        ///< retries ran out; the error propagated
  kIntegrityRefetch,      ///< a CRC32C mismatch repaired by refetching
  kPipelineReplay,        ///< poisoned pipelined layer replayed serially
  kPipelineOomFallback,   ///< pipelined working set OOM -> serial layer
  kScheduleFallback,      ///< edge schedules did not fit -> single-pass
  kCheckpointFallback,    ///< corrupt snapshot skipped for the previous one
  kPeerDeath,             ///< a cluster worker died (EOF / heartbeat timeout)
  kEpochRestart,          ///< epoch aborted, state restored from checkpoint
  kStepRecovery,          ///< dead rank replayed in-epoch (no epoch restart)
  kPartitionAdopted,      ///< dead rank's partition taken over by a survivor
  kCoordJournalReplay,    ///< restarted coordinator rebuilt state from the WAL
  kWorkerReattach,        ///< worker re-registered with a restarted coordinator
};
constexpr int kNumDegradeEvents = 13;

const char* DegradeEventName(DegradeEvent e);

/// Value snapshot of the policy's counters; embedded in EpochStats.
struct RecoveryCounters {
  int64_t counts[kNumDegradeEvents] = {0};

  int64_t operator[](DegradeEvent e) const {
    return counts[static_cast<int>(e)];
  }
  int64_t total() const {
    int64_t t = 0;
    for (int64_t c : counts) t += c;
    return t;
  }
  /// "retry=2 integrity_refetch=1" — only nonzero events; "" when clean.
  std::string ToString() const;
};

/// Thread-safe counted record of degradation events. One per engine;
/// threaded into the comm executor and the epoch loops. `Record` is cheap
/// (events are rare by construction); `SnapshotEpoch` returns the counts
/// since the last `ResetEpoch`, merged with the setup-time events (schedule
/// fallbacks happen once at engine creation but stay visible every epoch).
class DegradationPolicy {
 public:
  /// Counts (and logs at WARNING) one recoverable event.
  void Record(DegradeEvent e, const std::string& detail);
  /// Counts a setup-time event that outlives epochs (never reset).
  void RecordSetup(DegradeEvent e, const std::string& detail);

  void ResetEpoch();
  RecoveryCounters SnapshotEpoch() const;

 private:
  std::atomic<int64_t> epoch_[kNumDegradeEvents] = {};
  std::atomic<int64_t> setup_[kNumDegradeEvents] = {};
};

/// Runs `fn` (returning Status), retrying while the result is transient.
/// `fn` must be idempotent. Successful recovery records kTransientRetry on
/// `policy` (may be null); exhausting max_attempts — or the policy's
/// total_deadline_s wall-clock budget, when set — records kRetryExhausted
/// and returns the last transient status. Non-transient results return
/// immediately.
template <typename Fn>
Status RetryTransient(const RetryPolicy& p, DegradationPolicy* policy,
                      const char* what, Fn&& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  const auto deadline_spent = [&] {
    if (p.total_deadline_s <= 0.0) return false;
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
               .count() >= p.total_deadline_s;
  };
  Status st = fn();
  if (st.ok() || !st.IsTransient()) return st;
  bool out_of_time = false;
  for (int attempt = 1; attempt < p.max_attempts; ++attempt) {
    if (deadline_spent()) {
      out_of_time = true;
      break;
    }
    internal::BackoffSleep(p, attempt);
    st = fn();
    if (!st.IsTransient()) {
      if (st.ok() && policy != nullptr) {
        policy->Record(DegradeEvent::kTransientRetry,
                       std::string(what) + ": recovered after " +
                           std::to_string(attempt) + " retr" +
                           (attempt == 1 ? "y" : "ies"));
      }
      return st;
    }
  }
  if (policy != nullptr) {
    policy->Record(DegradeEvent::kRetryExhausted,
                   std::string(what) +
                       (out_of_time ? " (total deadline spent): " : ": ") +
                       st.ToString());
  }
  return st;
}

}  // namespace fault
}  // namespace hongtu
