#include "hongtu/graph/builder.h"

#include <algorithm>
#include <cmath>

namespace hongtu {

Result<Graph> GraphBuilder::Build(
    int64_t num_vertices,
    std::vector<std::pair<VertexId, VertexId>> edges) const {
  if (num_vertices <= 0) {
    return Status::Invalid("GraphBuilder: num_vertices must be positive");
  }
  for (const auto& [s, d] : edges) {
    if (s < 0 || s >= num_vertices || d < 0 || d >= num_vertices) {
      return Status::Invalid("GraphBuilder: edge endpoint out of range");
    }
  }
  if (opts_.symmetrize) {
    const size_t n = edges.size();
    edges.reserve(2 * n);
    for (size_t i = 0; i < n; ++i) {
      edges.emplace_back(edges[i].second, edges[i].first);
    }
  }
  if (opts_.add_self_loops) {
    edges.reserve(edges.size() + static_cast<size_t>(num_vertices));
    for (VertexId v = 0; v < num_vertices; ++v) edges.emplace_back(v, v);
  }
  std::sort(edges.begin(), edges.end());
  if (opts_.deduplicate) {
    edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  }

  Graph g;
  g.num_vertices_ = num_vertices;
  g.num_edges_ = static_cast<int64_t>(edges.size());

  // CSR (sorted by src already).
  g.out_offsets_.assign(num_vertices + 1, 0);
  g.out_neighbors_.resize(edges.size());
  for (const auto& [s, d] : edges) g.out_offsets_[s + 1]++;
  for (int64_t v = 0; v < num_vertices; ++v) {
    g.out_offsets_[v + 1] += g.out_offsets_[v];
  }
  {
    std::vector<EdgeId> cursor(g.out_offsets_.begin(),
                               g.out_offsets_.end() - 1);
    for (const auto& [s, d] : edges) g.out_neighbors_[cursor[s]++] = d;
  }

  // CSC.
  g.in_offsets_.assign(num_vertices + 1, 0);
  g.in_neighbors_.resize(edges.size());
  for (const auto& [s, d] : edges) g.in_offsets_[d + 1]++;
  for (int64_t v = 0; v < num_vertices; ++v) {
    g.in_offsets_[v + 1] += g.in_offsets_[v];
  }
  {
    std::vector<EdgeId> cursor(g.in_offsets_.begin(), g.in_offsets_.end() - 1);
    for (const auto& [s, d] : edges) g.in_neighbors_[cursor[d]++] = s;
  }

  // Symmetric GCN normalization over in-degrees (self-loops included above).
  std::vector<float> inv_sqrt_deg(num_vertices);
  for (int64_t v = 0; v < num_vertices; ++v) {
    const int64_t deg = g.in_offsets_[v + 1] - g.in_offsets_[v];
    inv_sqrt_deg[v] = deg > 0 ? 1.0f / std::sqrt(static_cast<float>(deg)) : 0.f;
  }
  g.in_weights_.resize(edges.size());
  for (int64_t v = 0; v < num_vertices; ++v) {
    for (EdgeId e = g.in_offsets_[v]; e < g.in_offsets_[v + 1]; ++e) {
      g.in_weights_[e] = inv_sqrt_deg[g.in_neighbors_[e]] * inv_sqrt_deg[v];
    }
  }
  g.out_weights_.resize(edges.size());
  for (int64_t u = 0; u < num_vertices; ++u) {
    for (EdgeId e = g.out_offsets_[u]; e < g.out_offsets_[u + 1]; ++e) {
      g.out_weights_[e] = inv_sqrt_deg[u] * inv_sqrt_deg[g.out_neighbors_[e]];
    }
  }
  return g;
}

}  // namespace hongtu
