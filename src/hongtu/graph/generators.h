/// \file generators.h
/// \brief Synthetic graph generators substituting for the paper's datasets.
///
/// The paper evaluates on reddit, ogbn-products, it-2004, ogbn-paper and
/// friendster. Those inputs (and the hardware to hold them) are not available
/// here, so we generate scaled graphs with matched *structural character*:
///
///  - SBM / planted partition     -> reddit, ogbn-products (community
///    structure + learnable labels for the accuracy experiments, Fig. 8)
///  - copying-model web graph     -> it-2004 (strong link locality, so the
///    neighbor replication factor alpha stays small; cf. Table 3 row 1)
///  - temporal citation graph     -> ogbn-paper (edges point to recent
///    vertices; adjacent-chunk overlap is high, so intra-GPU reuse dominates
///    the dedup gains; cf. Table 8 row 2)
///  - RMAT                        -> friendster (heavy-tailed, well-mixed, so
///    alpha grows quickly with partition count; cf. Table 3 row 3)

#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "hongtu/common/status.h"
#include "hongtu/graph/graph.h"

namespace hongtu {

using EdgeList = std::vector<std::pair<VertexId, VertexId>>;

/// R-MAT recursive-matrix generator (Chakrabarti et al.).
/// Defaults (0.57, 0.19, 0.19) give a friendster-like heavy tail.
struct RmatOptions {
  double a = 0.57;
  double b = 0.19;
  double c = 0.19;
  uint64_t seed = 1;
};
Result<EdgeList> GenerateRmat(int64_t num_vertices, int64_t num_edges,
                              const RmatOptions& opts);

/// Planted-partition / stochastic block model. Vertices are assigned to
/// `num_blocks` communities; each edge endpoint pair is intra-community with
/// probability `intra_prob`, otherwise the far endpoint is uniform.
struct SbmOptions {
  int num_blocks = 16;
  double intra_prob = 0.8;
  uint64_t seed = 2;
};
struct SbmGraph {
  EdgeList edges;
  std::vector<int32_t> block_of;  ///< community id per vertex (the label).
};
Result<SbmGraph> GenerateSbm(int64_t num_vertices, int64_t num_edges,
                             const SbmOptions& opts);

/// Copying-model web graph: each new page links to a window of nearby pages
/// plus copies links from a prototype page. Produces it-2004-like locality.
struct WebGraphOptions {
  int out_degree = 20;
  double copy_prob = 0.5;
  int locality_window = 2048;  ///< most links land within this id distance.
  uint64_t seed = 3;
};
Result<EdgeList> GenerateWebGraph(int64_t num_vertices,
                                  const WebGraphOptions& opts);

/// Temporal citation graph: vertex ids are publication order; each paper
/// cites mostly recent papers (geometric age distribution) plus a few
/// uniform older ones. Produces ogbn-paper-like sequential locality.
struct CitationOptions {
  int avg_refs = 15;
  double recent_prob = 0.85;
  double age_decay = 1.0 / 4096.0;  ///< geometric parameter for "recent".
  uint64_t seed = 4;
};
Result<EdgeList> GenerateCitation(int64_t num_vertices,
                                  const CitationOptions& opts);

}  // namespace hongtu
