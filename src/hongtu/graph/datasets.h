/// \file datasets.h
/// \brief Registry of the five evaluation datasets at reproduction scale.
///
/// Table 4 of the paper lists reddit (RDT), ogbn-products (OPT), it-2004
/// (IT), ogbn-paper (OPR) and friendster (FDS). We regenerate each with the
/// structurally-matched generator from generators.h, scaled down ~300-700x so
/// the full evaluation suite runs on one CPU node, and we keep the paper's
/// full-scale parameters alongside so the analytic memory model (Table 1) can
/// be evaluated at original scale.

#pragma once

#include <string>
#include <vector>

#include "hongtu/common/status.h"
#include "hongtu/graph/graph.h"
#include "hongtu/tensor/tensor.h"

namespace hongtu {

/// Vertex split roles, mirroring the 25/25/50 split used for graphs without
/// ground-truth properties (§7.1).
enum class SplitRole : uint8_t { kTrain = 0, kVal = 1, kTest = 2 };

/// A loaded dataset: graph + features + labels + split.
struct Dataset {
  std::string name;
  /// Load provenance: (name, loaded_scale, load_seed) regenerate this exact
  /// dataset bit-for-bit. The multi-process cluster backend (net/cluster.h)
  /// ships these three values to worker processes instead of the data, so
  /// every worker rebuilds identical graph/feature/label state on its own.
  double loaded_scale = 1.0;
  uint64_t load_seed = 42;

  Graph graph;
  Tensor features;              ///< |V| x feature_dim
  std::vector<int32_t> labels;  ///< class id per vertex
  int num_classes = 0;
  std::vector<SplitRole> split;

  /// Default hidden dimension used by the paper for this dataset (scaled).
  int default_hidden_dim = 32;
  /// Default chunks-per-partition for GCN (resp. GAT) at 4 partitions,
  /// proportional to the paper's 8/32/32 (GCN) and 16/64/64 (GAT) settings.
  int default_chunks_gcn = 1;
  int default_chunks_gat = 1;

  /// Full-scale parameters from Table 4 (for analytic memory experiments).
  int64_t paper_num_vertices = 0;
  int64_t paper_num_edges = 0;
  int paper_feature_dim = 0;
  int paper_num_classes = 0;

  int feature_dim() const { return static_cast<int>(features.cols()); }
  /// Indices of vertices with the given role.
  std::vector<VertexId> VerticesWithRole(SplitRole role) const;
};

/// Names accepted by LoadDataset: "reddit", "ogbn-products", "it-2004",
/// "ogbn-paper", "friendster" (aliases: RDT/OPT/IT/OPR/FDS).
Result<Dataset> LoadDataset(const std::string& name, uint64_t seed = 42);

/// Same as LoadDataset but scales |V| and |E| by `scale` in (0, 1]; used by
/// quick-running tests.
Result<Dataset> LoadDatasetScaled(const std::string& name, double scale,
                                  uint64_t seed = 42);

/// All five canonical dataset names in paper order.
const std::vector<std::string>& AllDatasetNames();

}  // namespace hongtu
