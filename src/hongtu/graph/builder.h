/// \file builder.h
/// \brief Edge-list -> Graph construction: dedup, optional self-loops and
/// symmetric GCN normalization.

#pragma once

#include <utility>
#include <vector>

#include "hongtu/common/status.h"
#include "hongtu/graph/graph.h"

namespace hongtu {

struct GraphBuilderOptions {
  /// Add a self-loop on every vertex (standard for GCN; also guarantees each
  /// destination appears in its own neighbor set, which the HongTu chunk
  /// layout relies on).
  bool add_self_loops = true;
  /// Drop duplicate (src,dst) pairs.
  bool deduplicate = true;
  /// Also insert the reverse of every edge (treat input as undirected).
  bool symmetrize = false;
};

/// Builds immutable Graphs from (src, dst) edge lists.
class GraphBuilder {
 public:
  explicit GraphBuilder(GraphBuilderOptions opts = {}) : opts_(opts) {}

  /// Consumes `edges` and produces a Graph over vertices [0, num_vertices).
  /// Fails on out-of-range endpoints or num_vertices <= 0.
  Result<Graph> Build(int64_t num_vertices,
                      std::vector<std::pair<VertexId, VertexId>> edges) const;

 private:
  GraphBuilderOptions opts_;
};

}  // namespace hongtu
