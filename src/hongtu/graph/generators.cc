#include "hongtu/graph/generators.h"

#include <algorithm>
#include <cmath>

#include "hongtu/common/random.h"

namespace hongtu {

Result<EdgeList> GenerateRmat(int64_t num_vertices, int64_t num_edges,
                              const RmatOptions& opts) {
  if (num_vertices <= 0 || num_edges < 0) {
    return Status::Invalid("GenerateRmat: bad sizes");
  }
  const double d = 1.0 - opts.a - opts.b - opts.c;
  if (opts.a < 0 || opts.b < 0 || opts.c < 0 || d < 0) {
    return Status::Invalid("GenerateRmat: probabilities must sum to <= 1");
  }
  int levels = 0;
  while ((int64_t{1} << levels) < num_vertices) ++levels;
  Rng rng(opts.seed);
  EdgeList edges;
  edges.reserve(static_cast<size_t>(num_edges));
  while (static_cast<int64_t>(edges.size()) < num_edges) {
    int64_t src = 0, dst = 0;
    for (int l = 0; l < levels; ++l) {
      const double r = rng.NextDouble();
      if (r < opts.a) {
        // top-left quadrant
      } else if (r < opts.a + opts.b) {
        dst |= int64_t{1} << l;
      } else if (r < opts.a + opts.b + opts.c) {
        src |= int64_t{1} << l;
      } else {
        src |= int64_t{1} << l;
        dst |= int64_t{1} << l;
      }
    }
    if (src >= num_vertices || dst >= num_vertices || src == dst) continue;
    edges.emplace_back(static_cast<VertexId>(src), static_cast<VertexId>(dst));
  }
  return edges;
}

Result<SbmGraph> GenerateSbm(int64_t num_vertices, int64_t num_edges,
                             const SbmOptions& opts) {
  if (num_vertices <= 0 || num_edges < 0 || opts.num_blocks <= 0) {
    return Status::Invalid("GenerateSbm: bad sizes");
  }
  Rng rng(opts.seed);
  SbmGraph out;
  out.block_of.resize(static_cast<size_t>(num_vertices));
  // Contiguous, slightly uneven community sizes (deterministic).
  for (int64_t v = 0; v < num_vertices; ++v) {
    out.block_of[v] =
        static_cast<int32_t>((v * opts.num_blocks) / num_vertices);
  }
  // Index ranges per block for fast intra-community sampling.
  std::vector<int64_t> block_begin(opts.num_blocks + 1, 0);
  for (int b = 0; b <= opts.num_blocks; ++b) {
    block_begin[b] = (b * num_vertices) / opts.num_blocks;
  }
  out.edges.reserve(static_cast<size_t>(num_edges));
  while (static_cast<int64_t>(out.edges.size()) < num_edges) {
    const int64_t u = static_cast<int64_t>(rng.NextInt(num_vertices));
    int64_t v;
    if (rng.NextDouble() < opts.intra_prob) {
      const int b = out.block_of[u];
      const int64_t lo = block_begin[b], hi = block_begin[b + 1];
      v = lo + static_cast<int64_t>(rng.NextInt(hi - lo));
    } else {
      v = static_cast<int64_t>(rng.NextInt(num_vertices));
    }
    if (u == v) continue;
    out.edges.emplace_back(static_cast<VertexId>(u), static_cast<VertexId>(v));
  }
  return out;
}

Result<EdgeList> GenerateWebGraph(int64_t num_vertices,
                                  const WebGraphOptions& opts) {
  if (num_vertices <= 1 || opts.out_degree <= 0) {
    return Status::Invalid("GenerateWebGraph: bad sizes");
  }
  Rng rng(opts.seed);
  EdgeList edges;
  edges.reserve(static_cast<size_t>(num_vertices) * opts.out_degree);
  for (int64_t v = 1; v < num_vertices; ++v) {
    // Prototype page whose out-links may be copied. Web pages mostly copy
    // from pages on the same host (nearby ids in crawl order), with an
    // occasional cross-host jump — this is what keeps the replication
    // factor of real web graphs small (Table 3, it-2004 row).
    int64_t proto;
    if (rng.NextDouble() < 0.1) {
      proto = static_cast<int64_t>(rng.NextInt(v));  // cross-host copy
    } else {
      const int64_t w = std::min<int64_t>(8 * opts.locality_window, v);
      proto = v - 1 - static_cast<int64_t>(rng.NextInt(w));
    }
    for (int k = 0; k < opts.out_degree; ++k) {
      int64_t target;
      if (rng.NextDouble() < opts.copy_prob && proto > 0) {
        // Copy: link near the prototype (emulates shared host link farms).
        const int64_t w = std::min<int64_t>(opts.locality_window, proto);
        target = proto - static_cast<int64_t>(rng.NextInt(w + 1));
      } else {
        // Fresh link within the local window (site-internal navigation).
        const int64_t w = std::min<int64_t>(opts.locality_window, v);
        target = v - 1 - static_cast<int64_t>(rng.NextInt(w));
      }
      if (target < 0) target = 0;
      if (target == v) continue;
      edges.emplace_back(static_cast<VertexId>(v),
                         static_cast<VertexId>(target));
    }
  }
  return edges;
}

Result<EdgeList> GenerateCitation(int64_t num_vertices,
                                  const CitationOptions& opts) {
  if (num_vertices <= 1 || opts.avg_refs <= 0) {
    return Status::Invalid("GenerateCitation: bad sizes");
  }
  Rng rng(opts.seed);
  EdgeList edges;
  edges.reserve(static_cast<size_t>(num_vertices) * opts.avg_refs);
  for (int64_t v = 1; v < num_vertices; ++v) {
    for (int k = 0; k < opts.avg_refs; ++k) {
      int64_t target;
      if (rng.NextDouble() < opts.recent_prob) {
        // Geometric age: mostly cite recent work.
        const double u = std::max(rng.NextDouble(), 1e-12);
        int64_t age =
            static_cast<int64_t>(-std::log(u) / opts.age_decay) + 1;
        if (age > v) age = v;
        target = v - age;
      } else {
        target = static_cast<int64_t>(rng.NextInt(v));
      }
      if (target == v) continue;
      edges.emplace_back(static_cast<VertexId>(v),
                         static_cast<VertexId>(target));
    }
  }
  return edges;
}

}  // namespace hongtu
