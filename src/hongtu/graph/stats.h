/// \file stats.h
/// \brief Structural graph statistics used to validate that the synthetic
/// datasets preserve the character of the paper's real inputs (Table 4) —
/// degree skew for the social graph, id-distance locality for the web and
/// citation graphs, community mixing for the SBM graphs.

#pragma once

#include <cstdint>
#include <vector>

#include "hongtu/graph/graph.h"

namespace hongtu {

struct GraphStats {
  int64_t num_vertices = 0;
  int64_t num_edges = 0;
  double avg_in_degree = 0.0;
  int64_t max_in_degree = 0;
  int64_t max_out_degree = 0;
  /// Gini coefficient of the in-degree distribution (0 = uniform, ->1 =
  /// extremely skewed). RMAT/social graphs land far above web graphs.
  double degree_gini = 0.0;
  /// Fraction of edges whose |src - dst| id distance is within 1% of |V|
  /// (sequential locality; high for web/citation generators).
  double local_edge_fraction = 0.0;
  /// Median |src - dst| id distance over all non-self edges.
  int64_t median_edge_distance = 0;
};

/// Computes all statistics in one pass over the CSC view (self-loops are
/// excluded from the distance metrics).
GraphStats ComputeGraphStats(const Graph& g);

}  // namespace hongtu
