#include "hongtu/graph/graph.h"

#include <sstream>

namespace hongtu {

int64_t Graph::TopologyBytes() const {
  return static_cast<int64_t>(out_offsets_.size() * sizeof(EdgeId) +
                              out_neighbors_.size() * sizeof(VertexId) +
                              in_offsets_.size() * sizeof(EdgeId) +
                              in_neighbors_.size() * sizeof(VertexId) +
                              in_weights_.size() * sizeof(float));
}

std::string Graph::DebugString() const {
  std::ostringstream os;
  os << "Graph(|V|=" << num_vertices_ << ", |E|=" << num_edges_ << ")";
  return os.str();
}

}  // namespace hongtu
