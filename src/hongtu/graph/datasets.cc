#include "hongtu/graph/datasets.h"

#include <algorithm>

#include "hongtu/common/random.h"
#include "hongtu/graph/builder.h"
#include "hongtu/graph/generators.h"

namespace hongtu {

namespace {

struct Spec {
  std::string canonical;
  std::vector<std::string> aliases;
  enum class Kind { kSbm, kWeb, kCitation, kRmat } kind;
  int64_t num_vertices;
  int64_t num_edges;  // pre-dedup target (generators may land slightly under)
  int feature_dim;
  int num_classes;
  int hidden_dim;
  int chunks_gcn;
  int chunks_gat;
  /// Fraction of labeled train/val vertices. reddit and the OGB datasets
  /// keep their real split ratios (ogbn-paper trains on only ~1.1% of the
  /// graph, which is why mini-batch systems do well on it, §7.2); graphs
  /// without ground truth use the paper's 25/25/50 split.
  double train_frac;
  double val_frac;
  // Paper-scale values from Table 4.
  int64_t paper_v;
  int64_t paper_e;
  int paper_f;
  int paper_l;
};

const std::vector<Spec>& Specs() {
  // Scaled ~40-700x from Table 4; structural generators chosen per dataset
  // character (see generators.h). Chunk counts follow the paper's settings:
  // RDT/OPT unsplit; IT 8/16; OPR and FDS 32/64 (GCN/GAT).
  static const std::vector<Spec> kSpecs = {
      {"reddit", {"RDT", "rdt"}, Spec::Kind::kSbm,
       6000, 280000, 64, 16, 64, 1, 1, 0.66, 0.10,
       230000, 114000000, 602, 41},
      {"ogbn-products", {"OPT", "opt", "products"}, Spec::Kind::kSbm,
       16000, 420000, 48, 16, 64, 1, 1, 0.08, 0.02,
       2400000, 62000000, 100, 47},
      {"it-2004", {"IT", "it"}, Spec::Kind::kWeb,
       80000, 1600000, 64, 16, 32, 8, 16, 0.25, 0.25,
       41000000, 1200000000, 256, 64},
      {"ogbn-paper", {"OPR", "opr", "paper"}, Spec::Kind::kCitation,
       100000, 1500000, 48, 16, 32, 32, 64, 0.011, 0.005,
       111000000, 1600000000, 200, 172},
      {"friendster", {"FDS", "fds"}, Spec::Kind::kRmat,
       90000, 2700000, 64, 16, 32, 32, 64, 0.25, 0.25,
       65600000, 2500000000LL, 256, 64},
  };
  return kSpecs;
}

const Spec* FindSpec(const std::string& name) {
  for (const auto& s : Specs()) {
    if (s.canonical == name) return &s;
    for (const auto& a : s.aliases) {
      if (a == name) return &s;
    }
  }
  return nullptr;
}

/// Features for labeled (SBM) datasets: class centroid + noise, so the task
/// is genuinely learnable and Fig. 8 accuracy curves are meaningful.
void MakeLearnableFeatures(const std::vector<int32_t>& labels, int num_classes,
                           int dim, uint64_t seed, Tensor* feats) {
  Tensor centroids = Tensor::Gaussian(num_classes, dim, 1.0f, seed * 7 + 1);
  Rng rng(seed * 13 + 5);
  for (int64_t v = 0; v < feats->rows(); ++v) {
    const float* c = centroids.row(labels[static_cast<size_t>(v)]);
    float* f = feats->row(v);
    for (int j = 0; j < dim; ++j) f[j] = c[j] + 1.5f * rng.NextGaussian();
  }
}

std::vector<SplitRole> MakeSplit(int64_t n, double train_frac, double val_frac,
                                 uint64_t seed) {
  std::vector<SplitRole> split(static_cast<size_t>(n));
  Rng rng(seed * 31 + 17);
  for (int64_t v = 0; v < n; ++v) {
    const double r = rng.NextDouble();
    split[static_cast<size_t>(v)] =
        r < train_frac              ? SplitRole::kTrain
        : r < train_frac + val_frac ? SplitRole::kVal
                                    : SplitRole::kTest;
  }
  return split;
}

}  // namespace

std::vector<VertexId> Dataset::VerticesWithRole(SplitRole role) const {
  std::vector<VertexId> out;
  for (size_t v = 0; v < split.size(); ++v) {
    if (split[v] == role) out.push_back(static_cast<VertexId>(v));
  }
  return out;
}

const std::vector<std::string>& AllDatasetNames() {
  static const std::vector<std::string> kNames = [] {
    std::vector<std::string> names;
    for (const auto& s : Specs()) names.push_back(s.canonical);
    return names;
  }();
  return kNames;
}

Result<Dataset> LoadDatasetScaled(const std::string& name, double scale,
                                  uint64_t seed) {
  const Spec* spec = FindSpec(name);
  if (spec == nullptr) {
    return Status::NotFound("unknown dataset: " + name);
  }
  if (scale <= 0.0 || scale > 1.0) {
    return Status::Invalid("dataset scale must be in (0, 1]");
  }
  const int64_t nv = std::max<int64_t>(64, static_cast<int64_t>(
                                               spec->num_vertices * scale));
  const int64_t ne =
      std::max<int64_t>(128, static_cast<int64_t>(spec->num_edges * scale));

  Dataset ds;
  ds.name = spec->canonical;
  ds.loaded_scale = scale;
  ds.load_seed = seed;
  ds.num_classes = spec->num_classes;
  ds.default_hidden_dim = spec->hidden_dim;
  ds.default_chunks_gcn = spec->chunks_gcn;
  ds.default_chunks_gat = spec->chunks_gat;
  ds.paper_num_vertices = spec->paper_v;
  ds.paper_num_edges = spec->paper_e;
  ds.paper_feature_dim = spec->paper_f;
  ds.paper_num_classes = spec->paper_l;

  EdgeList edges;
  std::vector<int32_t> labels;
  switch (spec->kind) {
    case Spec::Kind::kSbm: {
      SbmOptions o;
      o.num_blocks = spec->num_classes;
      o.seed = seed;
      HT_ASSIGN_OR_RETURN(SbmGraph sg, GenerateSbm(nv, ne, o));
      edges = std::move(sg.edges);
      labels = std::move(sg.block_of);
      break;
    }
    case Spec::Kind::kWeb: {
      WebGraphOptions o;
      o.out_degree = static_cast<int>(std::max<int64_t>(1, ne / nv));
      // Locality must scale with the graph so the structural character
      // (small replication factor, Table 3) survives down-scaling; the
      // window stays well below the finest chunk size used in evaluation.
      o.locality_window = static_cast<int>(std::max<int64_t>(32, nv / 300));
      o.seed = seed;
      HT_ASSIGN_OR_RETURN(edges, GenerateWebGraph(nv, o));
      break;
    }
    case Spec::Kind::kCitation: {
      CitationOptions o;
      o.avg_refs = static_cast<int>(std::max<int64_t>(1, ne / nv));
      // Mean citation age ~ nv/25: recency bias independent of scale.
      o.age_decay = 25.0 / static_cast<double>(nv);
      o.seed = seed;
      HT_ASSIGN_OR_RETURN(edges, GenerateCitation(nv, o));
      break;
    }
    case Spec::Kind::kRmat: {
      RmatOptions o;
      o.seed = seed;
      HT_ASSIGN_OR_RETURN(edges, GenerateRmat(nv, ne, o));
      break;
    }
  }

  GraphBuilder builder;
  HT_ASSIGN_OR_RETURN(ds.graph, builder.Build(nv, std::move(edges)));

  if (labels.empty()) {
    // Unlabeled source graphs get random labels (as the paper does for
    // it-2004 / friendster, §7.1).
    labels.resize(static_cast<size_t>(nv));
    Rng rng(seed * 101 + 3);
    for (auto& l : labels) {
      l = static_cast<int32_t>(rng.NextInt(spec->num_classes));
    }
    ds.features =
        Tensor::Gaussian(nv, spec->feature_dim, 1.0f, seed * 19 + 11);
  } else {
    ds.features = Tensor(nv, spec->feature_dim);
    MakeLearnableFeatures(labels, spec->num_classes, spec->feature_dim, seed,
                          &ds.features);
  }
  ds.labels = std::move(labels);
  ds.split = MakeSplit(nv, spec->train_frac, spec->val_frac, seed);
  return ds;
}

Result<Dataset> LoadDataset(const std::string& name, uint64_t seed) {
  return LoadDatasetScaled(name, 1.0, seed);
}

}  // namespace hongtu
