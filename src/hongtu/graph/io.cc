#include "hongtu/graph/io.h"

#include <cstdio>
#include <cstring>
#include <limits>
#include <memory>
#include <vector>

#include "hongtu/common/fault.h"

namespace hongtu {

namespace {

constexpr char kMagic[4] = {'H', 'T', 'D', 'S'};
constexpr uint32_t kVersion = 1;

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

Status WriteBytes(std::FILE* f, const void* data, size_t n) {
  if (std::fwrite(data, 1, n, f) != n) {
    return Status::IoError("short write");
  }
  return Status::OK();
}

Status ReadBytes(std::FILE* f, void* data, size_t n) {
  if (std::fread(data, 1, n, f) != n) {
    return Status::IoError("short read / truncated file");
  }
  return Status::OK();
}

template <typename T>
Status WritePod(std::FILE* f, const T& v) {
  return WriteBytes(f, &v, sizeof(T));
}

template <typename T>
Status ReadPod(std::FILE* f, T* v) {
  return ReadBytes(f, v, sizeof(T));
}

template <typename T>
Status WriteVec(std::FILE* f, const std::vector<T>& v) {
  HT_RETURN_IF_ERROR(WritePod<int64_t>(f, static_cast<int64_t>(v.size())));
  return WriteBytes(f, v.data(), v.size() * sizeof(T));
}

/// Bytes between the current position and end of file. A stored length
/// larger than this can only be garbage — checking before resize() keeps a
/// corrupted length field from over-allocating gigabytes.
int64_t RemainingBytes(std::FILE* f) {
  const long pos = std::ftell(f);
  if (pos < 0 || std::fseek(f, 0, SEEK_END) != 0) return 0;
  const long end = std::ftell(f);
  std::fseek(f, pos, SEEK_SET);
  return end < pos ? 0 : static_cast<int64_t>(end - pos);
}

template <typename T>
Status ReadVec(std::FILE* f, std::vector<T>* v) {
  int64_t n = 0;
  HT_RETURN_IF_ERROR(ReadPod(f, &n));
  if (n < 0 ||
      n > RemainingBytes(f) / static_cast<int64_t>(sizeof(T))) {
    return Status::IoError("vector length exceeds file size");
  }
  v->resize(static_cast<size_t>(n));
  return ReadBytes(f, v->data(), v->size() * sizeof(T));
}

Status WriteString(std::FILE* f, const std::string& s) {
  HT_RETURN_IF_ERROR(WritePod<int64_t>(f, static_cast<int64_t>(s.size())));
  return WriteBytes(f, s.data(), s.size());
}

Status ReadString(std::FILE* f, std::string* s) {
  int64_t n = 0;
  HT_RETURN_IF_ERROR(ReadPod(f, &n));
  if (n < 0 || n > (1 << 20) || n > RemainingBytes(f)) {
    return Status::IoError("bad string length");
  }
  s->resize(static_cast<size_t>(n));
  return ReadBytes(f, s->data(), s->size());
}

Status ReadEdgeListTextAttempt(const std::string& path, EdgeList* edges) {
  HT_RETURN_IF_ERROR(fault::Poke(fault::Site::kGraphIo));
  FilePtr f(std::fopen(path.c_str(), "r"));
  if (f == nullptr) return Status::IoError("cannot open " + path);
  edges->clear();
  char line[256];
  int lineno = 0;
  while (std::fgets(line, sizeof(line), f.get()) != nullptr) {
    ++lineno;
    // A line that filled the buffer without its newline would leave the
    // tail to be misparsed as another "edge" — reject instead.
    const size_t len = std::strlen(line);
    if (len + 1 == sizeof(line) && line[len - 1] != '\n') {
      return Status::IoError("overlong line at " + path + ":" +
                             std::to_string(lineno));
    }
    const char* p = line;
    while (*p == ' ' || *p == '\t') ++p;
    if (*p == '#' || *p == '%' || *p == '\n' || *p == '\0') continue;
    long long s, d;
    if (std::sscanf(p, "%lld %lld", &s, &d) != 2) {
      return Status::IoError("parse error at " + path + ":" +
                             std::to_string(lineno));
    }
    if (s < 0 || d < 0 ||
        s > std::numeric_limits<VertexId>::max() ||
        d > std::numeric_limits<VertexId>::max()) {
      return Status::IoError("vertex id out of range at " + path + ":" +
                             std::to_string(lineno));
    }
    edges->emplace_back(static_cast<VertexId>(s), static_cast<VertexId>(d));
  }
  if (std::ferror(f.get())) {
    return Status::IoError("read error in " + path);
  }
  return Status::OK();
}

}  // namespace

Result<EdgeList> ReadEdgeListText(const std::string& path) {
  EdgeList edges;
  // Fault site `graph.io`, wholesale retry: re-reading a file is idempotent.
  HT_RETURN_IF_ERROR(fault::RetryTransient(
      fault::DefaultRetryPolicy(), nullptr, "graph.io",
      [&] { return ReadEdgeListTextAttempt(path, &edges); }));
  return edges;
}

Status WriteEdgeListText(const std::string& path, const EdgeList& edges) {
  FilePtr f(std::fopen(path.c_str(), "w"));
  if (f == nullptr) return Status::IoError("cannot open " + path);
  for (const auto& [s, d] : edges) {
    if (std::fprintf(f.get(), "%d %d\n", s, d) < 0) {
      return Status::IoError("write failed for " + path);
    }
  }
  return Status::OK();
}

Result<Graph> LoadGraphFromEdgeList(const std::string& path,
                                    int64_t num_vertices,
                                    GraphBuilderOptions opts) {
  HT_ASSIGN_OR_RETURN(EdgeList edges, ReadEdgeListText(path));
  return GraphBuilder(opts).Build(num_vertices, std::move(edges));
}

Status SaveDataset(const std::string& path, const Dataset& ds) {
  HT_RETURN_IF_ERROR(fault::Poke(fault::Site::kGraphIo));
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (f == nullptr) return Status::IoError("cannot open " + path);
  HT_RETURN_IF_ERROR(WriteBytes(f.get(), kMagic, sizeof(kMagic)));
  HT_RETURN_IF_ERROR(WritePod(f.get(), kVersion));
  HT_RETURN_IF_ERROR(WriteString(f.get(), ds.name));
  // Graph: reconstruct from the CSC view on load (builder re-derives CSR
  // and weights deterministically).
  HT_RETURN_IF_ERROR(WritePod(f.get(), ds.graph.num_vertices()));
  HT_RETURN_IF_ERROR(WriteVec(f.get(), ds.graph.in_offsets()));
  HT_RETURN_IF_ERROR(WriteVec(f.get(), ds.graph.in_neighbors()));
  // Features.
  HT_RETURN_IF_ERROR(WritePod(f.get(), ds.features.rows()));
  HT_RETURN_IF_ERROR(WritePod(f.get(), ds.features.cols()));
  HT_RETURN_IF_ERROR(WriteBytes(f.get(), ds.features.data(),
                                static_cast<size_t>(ds.features.bytes())));
  // Labels and split.
  HT_RETURN_IF_ERROR(WritePod(f.get(), ds.num_classes));
  HT_RETURN_IF_ERROR(WriteVec(f.get(), ds.labels));
  std::vector<uint8_t> split(ds.split.size());
  for (size_t i = 0; i < split.size(); ++i) {
    split[i] = static_cast<uint8_t>(ds.split[i]);
  }
  HT_RETURN_IF_ERROR(WriteVec(f.get(), split));
  // Metadata.
  HT_RETURN_IF_ERROR(WritePod(f.get(), ds.default_hidden_dim));
  HT_RETURN_IF_ERROR(WritePod(f.get(), ds.default_chunks_gcn));
  HT_RETURN_IF_ERROR(WritePod(f.get(), ds.default_chunks_gat));
  HT_RETURN_IF_ERROR(WritePod(f.get(), ds.paper_num_vertices));
  HT_RETURN_IF_ERROR(WritePod(f.get(), ds.paper_num_edges));
  HT_RETURN_IF_ERROR(WritePod(f.get(), ds.paper_feature_dim));
  HT_RETURN_IF_ERROR(WritePod(f.get(), ds.paper_num_classes));
  return Status::OK();
}

Result<Dataset> LoadDatasetFile(const std::string& path) {
  HT_RETURN_IF_ERROR(fault::Poke(fault::Site::kGraphIo));
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (f == nullptr) return Status::IoError("cannot open " + path);
  char magic[4];
  HT_RETURN_IF_ERROR(ReadBytes(f.get(), magic, sizeof(magic)));
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::IoError(path + ": not a HongTu dataset file");
  }
  uint32_t version = 0;
  HT_RETURN_IF_ERROR(ReadPod(f.get(), &version));
  if (version != kVersion) {
    return Status::IoError("unsupported dataset file version " +
                           std::to_string(version));
  }
  Dataset ds;
  HT_RETURN_IF_ERROR(ReadString(f.get(), &ds.name));
  int64_t nv = 0;
  HT_RETURN_IF_ERROR(ReadPod(f.get(), &nv));
  std::vector<EdgeId> in_offsets;
  std::vector<VertexId> in_neighbors;
  HT_RETURN_IF_ERROR(ReadVec(f.get(), &in_offsets));
  HT_RETURN_IF_ERROR(ReadVec(f.get(), &in_neighbors));
  if (nv <= 0 || static_cast<int64_t>(in_offsets.size()) != nv + 1) {
    return Status::IoError("corrupt graph section");
  }
  // A valid CSC column-offset array starts at 0, never decreases, and ends
  // at the neighbor count; every neighbor id must name a stored vertex.
  // Garbage in either array would otherwise turn into out-of-bounds reads
  // in the edge-list reconstruction below.
  if (in_offsets.front() != 0 ||
      in_offsets.back() != static_cast<EdgeId>(in_neighbors.size())) {
    return Status::IoError("corrupt graph section: bad offset bounds");
  }
  for (int64_t v = 0; v < nv; ++v) {
    if (in_offsets[v + 1] < in_offsets[v]) {
      return Status::IoError("corrupt graph section: offsets not monotone");
    }
  }
  for (const VertexId u : in_neighbors) {
    if (u < 0 || static_cast<int64_t>(u) >= nv) {
      return Status::IoError("corrupt graph section: neighbor id out of "
                             "range");
    }
  }
  // Rebuild through the builder (self-loops already present in the stored
  // edge set, deduplication is idempotent).
  EdgeList edges;
  edges.reserve(in_neighbors.size());
  for (int64_t v = 0; v < nv; ++v) {
    for (EdgeId e = in_offsets[v]; e < in_offsets[v + 1]; ++e) {
      edges.emplace_back(in_neighbors[static_cast<size_t>(e)],
                         static_cast<VertexId>(v));
    }
  }
  HT_ASSIGN_OR_RETURN(ds.graph, GraphBuilder().Build(nv, std::move(edges)));

  int64_t rows = 0, cols = 0;
  HT_RETURN_IF_ERROR(ReadPod(f.get(), &rows));
  HT_RETURN_IF_ERROR(ReadPod(f.get(), &cols));
  if (rows != nv || cols <= 0 || cols > (1 << 20)) {
    return Status::IoError("corrupt feature section");
  }
  ds.features = Tensor(rows, cols);
  HT_RETURN_IF_ERROR(ReadBytes(f.get(), ds.features.data(),
                               static_cast<size_t>(ds.features.bytes())));
  HT_RETURN_IF_ERROR(ReadPod(f.get(), &ds.num_classes));
  HT_RETURN_IF_ERROR(ReadVec(f.get(), &ds.labels));
  std::vector<uint8_t> split;
  HT_RETURN_IF_ERROR(ReadVec(f.get(), &split));
  if (static_cast<int64_t>(ds.labels.size()) != nv ||
      static_cast<int64_t>(split.size()) != nv) {
    return Status::IoError("corrupt label/split section");
  }
  if (ds.num_classes <= 0 || ds.num_classes > (1 << 24)) {
    return Status::IoError("corrupt class count");
  }
  for (const int32_t y : ds.labels) {
    if (y < 0 || y >= ds.num_classes) {
      return Status::IoError("corrupt label: class id out of range");
    }
  }
  ds.split.resize(split.size());
  for (size_t i = 0; i < split.size(); ++i) {
    if (split[i] > 2) return Status::IoError("corrupt split role");
    ds.split[i] = static_cast<SplitRole>(split[i]);
  }
  HT_RETURN_IF_ERROR(ReadPod(f.get(), &ds.default_hidden_dim));
  HT_RETURN_IF_ERROR(ReadPod(f.get(), &ds.default_chunks_gcn));
  HT_RETURN_IF_ERROR(ReadPod(f.get(), &ds.default_chunks_gat));
  HT_RETURN_IF_ERROR(ReadPod(f.get(), &ds.paper_num_vertices));
  HT_RETURN_IF_ERROR(ReadPod(f.get(), &ds.paper_num_edges));
  HT_RETURN_IF_ERROR(ReadPod(f.get(), &ds.paper_feature_dim));
  HT_RETURN_IF_ERROR(ReadPod(f.get(), &ds.paper_num_classes));
  return ds;
}

}  // namespace hongtu
