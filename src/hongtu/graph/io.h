/// \file io.h
/// \brief Dataset and graph (de)serialization.
///
/// Two formats:
///  - text edge lists ("src dst" per line, '#' comments) for interoperating
///    with SNAP/WebGraph-style dumps, and
///  - a binary container ("HTDS" magic) that round-trips a full Dataset
///    (graph + features + labels + split) so expensive generator/partition
///    preprocessing can be done once and reloaded.

#pragma once

#include <string>

#include "hongtu/common/status.h"
#include "hongtu/graph/builder.h"
#include "hongtu/graph/generators.h"
#include "hongtu/graph/datasets.h"

namespace hongtu {

/// Reads a whitespace-separated edge list; vertex ids must be in
/// [0, num_vertices). Lines starting with '#' or '%' are skipped.
Result<EdgeList> ReadEdgeListText(const std::string& path);

/// Writes "src dst" lines (without self-loops added by the builder).
Status WriteEdgeListText(const std::string& path, const EdgeList& edges);

/// Builds a Graph directly from a text edge list file.
Result<Graph> LoadGraphFromEdgeList(const std::string& path,
                                    int64_t num_vertices,
                                    GraphBuilderOptions opts = {});

/// Serializes a Dataset to the binary container format.
Status SaveDataset(const std::string& path, const Dataset& ds);

/// Loads a Dataset previously written by SaveDataset. Validates the magic,
/// version and structural invariants.
Result<Dataset> LoadDatasetFile(const std::string& path);

}  // namespace hongtu
