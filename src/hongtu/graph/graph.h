/// \file graph.h
/// \brief Immutable directed graph in CSR (out-edges) + CSC (in-edges) form.
///
/// GNN aggregation in HongTu reads along *in*-edges (each destination gathers
/// its in-neighbors, §4.1), so the CSC view carries the normalized GCN edge
/// weights. The CSR view is used by the partitioner and by backward scatter.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hongtu/common/status.h"

namespace hongtu {

using VertexId = int32_t;
using EdgeId = int64_t;

/// Immutable directed graph. Construct through GraphBuilder.
class Graph {
 public:
  Graph() = default;

  int64_t num_vertices() const { return num_vertices_; }
  int64_t num_edges() const { return num_edges_; }

  /// Out-edge (CSR) view: neighbors of u are
  /// out_neighbors()[out_offsets()[u] .. out_offsets()[u+1]).
  const std::vector<EdgeId>& out_offsets() const { return out_offsets_; }
  const std::vector<VertexId>& out_neighbors() const { return out_neighbors_; }
  /// Normalized GCN weight for each CSR entry (same value as the matching
  /// CSC entry); used by backward scatter along out-edges.
  const std::vector<float>& out_weights() const { return out_weights_; }

  /// In-edge (CSC) view: in-neighbors of v are
  /// in_neighbors()[in_offsets()[v] .. in_offsets()[v+1]).
  const std::vector<EdgeId>& in_offsets() const { return in_offsets_; }
  const std::vector<VertexId>& in_neighbors() const { return in_neighbors_; }
  /// Symmetric-normalized GCN weight for each CSC entry:
  /// w(u,v) = 1/sqrt(deg_in(u) * deg_in(v)) with self-loops included.
  const std::vector<float>& in_weights() const { return in_weights_; }

  int64_t out_degree(VertexId u) const {
    return out_offsets_[u + 1] - out_offsets_[u];
  }
  int64_t in_degree(VertexId v) const {
    return in_offsets_[v + 1] - in_offsets_[v];
  }

  /// Bytes needed to store the topology (both views + weights).
  int64_t TopologyBytes() const;

  /// Simple stats string for logs/benches.
  std::string DebugString() const;

 private:
  friend class GraphBuilder;

  int64_t num_vertices_ = 0;
  int64_t num_edges_ = 0;
  std::vector<EdgeId> out_offsets_;
  std::vector<VertexId> out_neighbors_;
  std::vector<float> out_weights_;
  std::vector<EdgeId> in_offsets_;
  std::vector<VertexId> in_neighbors_;
  std::vector<float> in_weights_;
};

}  // namespace hongtu
