#include "hongtu/graph/stats.h"

#include <algorithm>
#include <cmath>

namespace hongtu {

GraphStats ComputeGraphStats(const Graph& g) {
  GraphStats s;
  s.num_vertices = g.num_vertices();
  s.num_edges = g.num_edges();
  if (s.num_vertices == 0) return s;
  s.avg_in_degree =
      static_cast<double>(s.num_edges) / static_cast<double>(s.num_vertices);

  std::vector<int64_t> in_deg(static_cast<size_t>(s.num_vertices));
  for (int64_t v = 0; v < s.num_vertices; ++v) {
    in_deg[static_cast<size_t>(v)] = g.in_degree(static_cast<VertexId>(v));
    s.max_in_degree = std::max(s.max_in_degree, in_deg[v]);
    s.max_out_degree =
        std::max(s.max_out_degree, g.out_degree(static_cast<VertexId>(v)));
  }

  // Gini coefficient via the sorted-degree formula.
  std::sort(in_deg.begin(), in_deg.end());
  double cum = 0.0, weighted = 0.0;
  for (size_t i = 0; i < in_deg.size(); ++i) {
    cum += static_cast<double>(in_deg[i]);
    weighted += static_cast<double>(i + 1) * static_cast<double>(in_deg[i]);
  }
  if (cum > 0) {
    const double n = static_cast<double>(in_deg.size());
    s.degree_gini = (2.0 * weighted) / (n * cum) - (n + 1.0) / n;
  }

  // Edge id-distance metrics (self-loops excluded).
  std::vector<int64_t> dist;
  dist.reserve(static_cast<size_t>(s.num_edges));
  const int64_t local_window = std::max<int64_t>(1, s.num_vertices / 100);
  int64_t local = 0;
  for (int64_t v = 0; v < s.num_vertices; ++v) {
    for (EdgeId e = g.in_offsets()[v]; e < g.in_offsets()[v + 1]; ++e) {
      const VertexId u = g.in_neighbors()[e];
      if (u == v) continue;
      const int64_t d = std::llabs(static_cast<long long>(u) - v);
      dist.push_back(d);
      if (d <= local_window) ++local;
    }
  }
  if (!dist.empty()) {
    s.local_edge_fraction =
        static_cast<double>(local) / static_cast<double>(dist.size());
    auto mid = dist.begin() + static_cast<int64_t>(dist.size()) / 2;
    std::nth_element(dist.begin(), mid, dist.end());
    s.median_edge_distance = *mid;
  }
  return s;
}

}  // namespace hongtu
