#include "hongtu/engine/inmemory_engine.h"

#include <algorithm>
#include <chrono>
#include <numeric>

#include "hongtu/sim/memory_model.h"

namespace hongtu {

namespace {
constexpr int64_t kF32 = static_cast<int64_t>(sizeof(float));

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

Result<std::unique_ptr<InMemoryEngine>> InMemoryEngine::Create(
    const Dataset* dataset, ModelConfig model_config, InMemoryOptions options) {
  if (dataset == nullptr) {
    return Status::Invalid("InMemoryEngine: null dataset");
  }
  if (model_config.dims.empty() ||
      model_config.dims.front() != dataset->feature_dim()) {
    return Status::Invalid("InMemoryEngine: model input dim must match "
                           "dataset feature dim");
  }
  auto engine = std::unique_ptr<InMemoryEngine>(new InMemoryEngine());
  engine->ds_ = dataset;
  engine->options_ = options;
  HT_ASSIGN_OR_RETURN(engine->model_, GnnModel::Create(model_config));
  engine->adam_ = Adam(options.adam);
  for (Tensor* p : engine->model_.AllParams()) engine->adam_.Register(p);
  engine->platform_ = std::make_unique<SimPlatform>(
      options.num_devices, options.device_capacity_bytes,
      options.interconnect);

  // The whole graph as one chunk; self-loops make the source space the
  // identity over all vertices.
  std::vector<VertexId> all(dataset->graph.num_vertices());
  std::iota(all.begin(), all.end(), 0);
  engine->full_chunk_ = ExtractChunk(dataset->graph, std::move(all), 0, 0);

  if (options.edge_schedules) {
    kernels::EdgeScheduleParams sp;
    sp.max_dim = 1;
    for (int d : model_config.dims) sp.max_dim = std::max(sp.max_dim, d);
    // Schedules ride along with the resident topology on device 0; if the
    // capacity cannot hold them (checked before paying for the compile),
    // train with the single-pass kernels.
    SimDevice& dev0 = engine->platform_->device(0);
    const int64_t estimate =
        ChunkSchedules::EstimateBytes(engine->full_chunk_, sp);
    if (dev0.used() + estimate <= dev0.capacity()) {
      auto sched = std::make_unique<ChunkSchedules>(
          ChunkSchedules::Build(engine->full_chunk_, sp));
      const int64_t bytes = sched->bytes();
      if (dev0.Allocate(bytes, "edge schedules").ok()) {
        engine->sched_alloc_ = DeviceAllocation(&dev0, bytes);
        engine->platform_->AddScheduleBytes(bytes);
        engine->sched_ = std::move(sched);
      }
    }
  }

  // Replication factor for the inter-GPU traffic model (multi-device only).
  if (options.num_devices > 1) {
    TwoLevelOptions tlo;
    tlo.metis.seed = options.partition_seed;
    HT_ASSIGN_OR_RETURN(
        TwoLevelPartition tl,
        BuildTwoLevelPartition(dataset->graph, options.num_devices, 1, tlo));
    engine->alpha_m_ = tl.ReplicationFactor(dataset->graph.num_vertices());
  }

  const int L = engine->model_.num_layers();
  engine->h_.reserve(L + 1);
  for (int l = 0; l <= L; ++l) {
    engine->h_.emplace_back(dataset->graph.num_vertices(),
                            model_config.dims[l]);
  }
  HT_RETURN_IF_ERROR(engine->h_[0].CopyFrom(dataset->features));
  engine->ctx_.resize(L);
  return engine;
}

Status InMemoryEngine::ReserveResidentMemory() {
  resident_.clear();
  // Vertex data (all layers' reps + grads), stored intermediates, topology
  // and parameter replicas, split evenly across the devices. Multi-device
  // full-graph systems additionally hold remote-neighbor replicas of the
  // representations (factor alpha_m) plus communication buffers and
  // allocator overhead — the "auxiliary data" of §1 that pushes real
  // systems into OOM well before the core state fills the devices.
  MemoryModelInput mm;
  mm.num_vertices = ds_->graph.num_vertices();
  mm.num_edges = ds_->graph.num_edges();
  for (int d : model_.config().dims) mm.dims.push_back(d);
  mm.kind = model_.config().kind == GnnKind::kGat ? ModelKind::kGat
                                                  : ModelKind::kGcn;
  const MemoryModelOutput out = EvaluateMemoryModel(mm);
  const int m = options_.num_devices;
  int64_t rep_dims = 0;
  for (int d : model_.config().dims) rep_dims += d;
  const int64_t rep_bytes = static_cast<int64_t>(
      static_cast<double>(ds_->graph.num_vertices()) * rep_dims *
      sizeof(float));
  int64_t aux_bytes = 0;
  if (m > 1) {
    // Multi-GPU full-graph systems (Sancus-style) additionally keep
    // (a) remote-neighbor replicas of the representations (factor alpha_m)
    // and (b) a historical-embedding copy of every layer used by
    // staleness-aware communication avoidance.
    aux_bytes = static_cast<int64_t>((alpha_m_ - 1.0) * rep_bytes) +
                rep_bytes;
  }
  constexpr double kAuxOverhead = 1.1;  // buffers + allocator slack
  const int64_t per_device = static_cast<int64_t>(
      kAuxOverhead *
      static_cast<double>(out.total() + aux_bytes + model_.ParamBytes() * m) /
      m);
  for (int i = 0; i < m; ++i) {
    HT_RETURN_IF_ERROR(
        platform_->device(i).Allocate(per_device, "resident training state"));
    resident_.emplace_back(&platform_->device(i), per_device);
  }
  return Status::OK();
}

Status InMemoryEngine::ForwardPass(bool store_ctx) {
  const int L = model_.num_layers();
  const LocalGraph lg = LocalGraph::FromChunk(full_chunk_, sched_.get());
  const int m = options_.num_devices;
  const int64_t nv = ds_->graph.num_vertices();

  for (int l = 0; l < L; ++l) {
    Layer* layer = model_.layer(l);
    Tensor dst_h;
    if (store_ctx) {
      HT_RETURN_IF_ERROR(layer->ForwardStore(lg, h_[l], &dst_h, &ctx_[l]));
    } else {
      HT_RETURN_IF_ERROR(layer->Forward(lg, h_[l], &dst_h, nullptr));
    }
    h_[l + 1] = std::move(dst_h);

    // Time model: kernels run on m devices in parallel; remote neighbor
    // access costs inter-GPU traffic proportional to (alpha_m - 1)|V|.
    // Replica exchange moves at the comm_precision wire width (a pure
    // traffic-model effect here: the resident numerics stay fp32).
    double flops = 0, bytes = 0;
    layer->ForwardCost(lg, &flops, &bytes);
    const int64_t eb = kernels::CommElemBytes(options_.comm_precision);
    for (int i = 0; i < m; ++i) {
      platform_->AddGpuCompute(i, flops / m, bytes / m);
      platform_->AddD2D(
          i, static_cast<int64_t>((alpha_m_ - 1.0) * nv / m) *
                 layer->in_dim() * eb);
    }
    platform_->Synchronize();
  }
  return Status::OK();
}

Result<EpochStats> InMemoryEngine::TrainEpoch() {
  const double w0 = NowSeconds();
  platform_->ResetEpoch();
  platform_->ResetPeaks();
  model_.ZeroGrads();
  HT_RETURN_IF_ERROR(ReserveResidentMemory());

  HT_RETURN_IF_ERROR(ForwardPass(/*store_ctx=*/true));

  const int L = model_.num_layers();
  const std::vector<VertexId> train = ds_->VerticesWithRole(SplitRole::kTrain);
  Tensor d_next(ds_->graph.num_vertices(), model_.config().dims[L]);
  LossResult loss = SoftmaxCrossEntropy(h_[L], ds_->labels, train, &d_next);
  platform_->AddCpuAccum(static_cast<int64_t>(train.size()) *
                         model_.config().dims.back() * kF32);
  platform_->Synchronize();

  const LocalGraph lg = LocalGraph::FromChunk(full_chunk_, sched_.get());
  const int m = options_.num_devices;
  const int64_t nv = ds_->graph.num_vertices();
  for (int l = L - 1; l >= 0; --l) {
    Layer* layer = model_.layer(l);
    Tensor d_src(nv, layer->in_dim());
    HT_RETURN_IF_ERROR(
        layer->BackwardStored(lg, *ctx_[l], h_[l], d_next, &d_src));
    double flops = 0, bytes = 0;
    layer->BackwardCost(lg, /*cached=*/true, &flops, &bytes);
    const int64_t eb = kernels::CommElemBytes(options_.comm_precision);
    for (int i = 0; i < m; ++i) {
      platform_->AddGpuCompute(i, flops / m, bytes / m);
      platform_->AddD2D(
          i, static_cast<int64_t>((alpha_m_ - 1.0) * nv / m) *
                 layer->in_dim() * eb);
    }
    platform_->Synchronize();
    d_next = std::move(d_src);
    // h_[l+1] may be a view of ctx_[l]'s stored activation (ForwardStore
    // hands out an alias instead of a copy); drop it together with the ctx
    // so no dangling view survives the epoch.
    h_[l + 1] = Tensor();
    ctx_[l].reset();
  }

  std::vector<const Tensor*> grads;
  for (Tensor* g : model_.AllGrads()) grads.push_back(g);
  HT_RETURN_IF_ERROR(adam_.Step(grads));

  EpochStats stats;
  stats.loss = loss.loss;
  stats.train_accuracy = loss.accuracy;
  stats.time = platform_->time();
  stats.bytes = platform_->bytes();
  stats.peak_device_bytes = platform_->MaxDevicePeak();
  stats.wall_seconds = NowSeconds() - w0;
  stats.host_peak_bytes = platform_->HostPeakBytes();
  stats.host_alloc_count = platform_->HostAllocCount();
  stats.host_pool_hits = platform_->HostPoolHits();
  resident_.clear();
  return stats;
}

Result<double> InMemoryEngine::EvaluateAccuracy(SplitRole role) {
  HT_RETURN_IF_ERROR(ForwardPass(/*store_ctx=*/false));
  return Accuracy(h_.back(), ds_->labels, ds_->VerticesWithRole(role));
}

}  // namespace hongtu
