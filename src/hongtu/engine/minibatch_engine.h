/// \file minibatch_engine.h
/// \brief Mini-batch GNN training with layered neighbor sampling — the
/// DistDGL role in Table 6 and the DGL-MB curves of Fig. 8.
///
/// Each step samples an L-level block structure from a batch of training
/// vertices with per-layer fanout, then trains on the sampled blocks.
/// Sampled block sizes grow roughly as fanout^L (the neighbor-explosion
/// problem, §7.2), which this engine reproduces both in runtime and in
/// device-memory pressure (OOM for deep models).

#pragma once

#include <memory>
#include <vector>

#include "hongtu/engine/engine.h"
#include "hongtu/gnn/loss.h"
#include "hongtu/gnn/model.h"
#include "hongtu/graph/datasets.h"
#include "hongtu/partition/two_level.h"

namespace hongtu {

// MiniBatchOptions is an alias of the flattened EngineConfig (engine.h);
// this engine consults fanout, batch_size and seed.

class MiniBatchEngine : public Engine {
 public:
  static Result<std::unique_ptr<MiniBatchEngine>> Create(
      const Dataset* dataset, ModelConfig model_config,
      MiniBatchOptions options);

  /// One epoch = one pass over all training vertices in shuffled batches.
  Result<EpochStats> TrainEpoch();

  // ---- Engine interface ----------------------------------------------------
  Result<EpochStats> RunEpoch() override { return TrainEpoch(); }
  /// Full-neighbor (unsampled) inference accuracy with current parameters.
  Result<double> EvaluateAccuracy(SplitRole role) override;
  const char* name() const override { return "minibatch"; }

  GnnModel* model() override { return &model_; }
  SimPlatform* platform() override { return platform_.get(); }

 private:
  MiniBatchEngine() = default;

  const Dataset* ds_ = nullptr;
  MiniBatchOptions options_;
  GnnModel model_;
  Adam adam_;
  std::unique_ptr<SimPlatform> platform_;
  Chunk full_chunk_;  ///< for unsampled evaluation
  uint64_t epoch_counter_ = 0;
};

/// Samples a block: for each destination keep at most `fanout` random
/// in-edges (the destination's self-loop is always kept). Exposed for tests.
Chunk SampleChunk(const Graph& g, std::vector<VertexId> dst_vertices,
                  int fanout, Rng* rng);

}  // namespace hongtu
