#include "hongtu/engine/engine.h"

// engine.h is header-only today; this TU anchors the library target.
