#include "hongtu/engine/engine.h"

#include <algorithm>
#include <mutex>
#include <utility>

#include "hongtu/common/logging.h"
#include "hongtu/engine/cpu_cluster_engine.h"
#include "hongtu/engine/hongtu_engine.h"
#include "hongtu/engine/inmemory_engine.h"
#include "hongtu/engine/minibatch_engine.h"
#include "hongtu/kernels/backend.h"

namespace hongtu {

Engine::~Engine() = default;

const char* EngineKindName(EngineKind k) {
  switch (k) {
    case EngineKind::kHongTu:
      return "hongtu";
    case EngineKind::kInMemory:
      return "inmemory";
    case EngineKind::kMiniBatch:
      return "minibatch";
    case EngineKind::kCpuCluster:
      return "cpu-cluster";
  }
  return "?";
}

bool ParseEngineKind(const std::string& s, EngineKind* out) {
  if (s == "hongtu") {
    *out = EngineKind::kHongTu;
  } else if (s == "inmemory") {
    *out = EngineKind::kInMemory;
  } else if (s == "minibatch") {
    *out = EngineKind::kMiniBatch;
  } else if (s == "cpu-cluster" || s == "cpucluster") {
    *out = EngineKind::kCpuCluster;
  } else {
    return false;
  }
  return true;
}

ExecutorKind EngineConfig::resolved_executor() const {
  if (pipeline_depth >= 0) {
    static std::once_flag warned;
    std::call_once(warned, [] {
      HT_LOG(WARNING)
          << "HongTuOptions::pipeline_depth is deprecated; use "
             "executor = {serial, pipeline, taskgraph} + max_inflight "
             "(depth 0/1 -> serial, depth d >= 2 -> pipeline with "
             "max_inflight = d)";
    });
    return pipeline_depth >= 2 ? ExecutorKind::kPipeline
                               : ExecutorKind::kSerial;
  }
  return executor;
}

int EngineConfig::resolved_max_inflight() const {
  if (pipeline_depth >= 2) return pipeline_depth;
  if (pipeline_depth >= 0) return 1;  // legacy serial
  return std::max(1, max_inflight);
}

RuntimeConfig EngineConfig::runtime() const {
  // Engine-scoped fields from this config (post alias resolution); the
  // process-scoped knobs from their live owners.
  RuntimeConfig rc = RuntimeConfig::Process();
  rc.kernel_backend = kernels::ActiveBackend();
  rc.comm_precision = comm_precision;
  rc.wire_integrity = wire_integrity;
  rc.executor = resolved_executor();
  rc.max_inflight = resolved_max_inflight();
  return rc;
}

Result<std::unique_ptr<Engine>> Engine::Create(EngineKind kind,
                                               const Dataset* dataset,
                                               ModelConfig model_config,
                                               const EngineConfig& config) {
  switch (kind) {
    case EngineKind::kHongTu: {
      HT_ASSIGN_OR_RETURN(auto e, HongTuEngine::Create(
                                      dataset, std::move(model_config),
                                      config));
      return {std::unique_ptr<Engine>(std::move(e))};
    }
    case EngineKind::kInMemory: {
      HT_ASSIGN_OR_RETURN(auto e, InMemoryEngine::Create(
                                      dataset, std::move(model_config),
                                      config));
      return {std::unique_ptr<Engine>(std::move(e))};
    }
    case EngineKind::kMiniBatch: {
      HT_ASSIGN_OR_RETURN(auto e, MiniBatchEngine::Create(
                                      dataset, std::move(model_config),
                                      config));
      return {std::unique_ptr<Engine>(std::move(e))};
    }
    case EngineKind::kCpuCluster: {
      HT_ASSIGN_OR_RETURN(auto e, CpuClusterEngine::Create(
                                      dataset, std::move(model_config),
                                      config));
      return {std::unique_ptr<Engine>(std::move(e))};
    }
  }
  return Status::Invalid("Engine::Create: unknown engine kind");
}

}  // namespace hongtu
