/// \file trainer.h
/// \brief Convergence-driven training loop (§2.3: full-graph training "runs
/// epochs repeatedly on the entire graph until reaching the target accuracy
/// or epoch").
///
/// Wraps any engine exposing `Result<EpochStats> TrainEpoch()` and
/// `Result<double> EvaluateAccuracy(SplitRole)` with early stopping on
/// validation accuracy, a target-accuracy cutoff and an epoch cap, and
/// reports the aggregate statistics the paper's evaluation quotes
/// (time-to-accuracy, mean epoch time).

#pragma once

#include <cstdint>

#include "hongtu/engine/engine.h"
#include "hongtu/graph/datasets.h"

namespace hongtu {

struct TrainerOptions {
  int max_epochs = 100;
  /// Stop once validation accuracy reaches this value (<= 0 disables).
  double target_val_accuracy = 0.0;
  /// Stop after this many evaluations without improvement (0 disables).
  int patience = 0;
  /// Evaluate validation accuracy every this many epochs.
  int eval_every = 5;
};

struct TrainerReport {
  int epochs_run = 0;
  double final_loss = 0.0;
  double best_val_accuracy = 0.0;
  double test_accuracy = 0.0;
  /// Sum of simulated per-epoch seconds (the paper's per-epoch metric x
  /// epochs = time-to-accuracy under the platform model).
  double total_sim_seconds = 0.0;
  double total_wall_seconds = 0.0;
  bool reached_target = false;
  bool early_stopped = false;

  double MeanEpochSimSeconds() const {
    return epochs_run > 0 ? total_sim_seconds / epochs_run : 0.0;
  }
};

/// Runs the convergence loop on any engine type with the TrainEpoch /
/// EvaluateAccuracy interface (HongTuEngine, InMemoryEngine,
/// MiniBatchEngine).
template <typename EngineT>
Result<TrainerReport> TrainToConvergence(EngineT* engine,
                                         const TrainerOptions& opts) {
  if (engine == nullptr) return Status::Invalid("TrainToConvergence: null");
  if (opts.max_epochs <= 0 || opts.eval_every <= 0) {
    return Status::Invalid("TrainToConvergence: bad options");
  }
  TrainerReport report;
  int evals_since_best = 0;
  for (int epoch = 1; epoch <= opts.max_epochs; ++epoch) {
    HT_ASSIGN_OR_RETURN(EpochStats st, engine->TrainEpoch());
    ++report.epochs_run;
    report.final_loss = st.loss;
    report.total_sim_seconds += st.SimSeconds();
    report.total_wall_seconds += st.wall_seconds;
    if (epoch % opts.eval_every != 0 && epoch != opts.max_epochs) continue;

    HT_ASSIGN_OR_RETURN(double val, engine->EvaluateAccuracy(SplitRole::kVal));
    if (val > report.best_val_accuracy) {
      report.best_val_accuracy = val;
      evals_since_best = 0;
    } else {
      ++evals_since_best;
    }
    if (opts.target_val_accuracy > 0 && val >= opts.target_val_accuracy) {
      report.reached_target = true;
      break;
    }
    if (opts.patience > 0 && evals_since_best >= opts.patience) {
      report.early_stopped = true;
      break;
    }
  }
  HT_ASSIGN_OR_RETURN(report.test_accuracy,
                      engine->EvaluateAccuracy(SplitRole::kTest));
  return report;
}

}  // namespace hongtu
