/// \file trainer.h
/// \brief Convergence-driven training loop (§2.3: full-graph training "runs
/// epochs repeatedly on the entire graph until reaching the target accuracy
/// or epoch").
///
/// Wraps any engine exposing `Result<EpochStats> RunEpoch()` and
/// `Result<double> EvaluateAccuracy(SplitRole)` (the unified Engine
/// interface, engine/engine.h) with early stopping on validation accuracy,
/// a target-accuracy cutoff and an epoch cap, and reports the aggregate
/// statistics the paper's evaluation quotes (time-to-accuracy, mean epoch
/// time).

#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <type_traits>
#include <utility>

#include "hongtu/common/logging.h"
#include "hongtu/engine/checkpoint.h"
#include "hongtu/engine/engine.h"
#include "hongtu/graph/datasets.h"

namespace hongtu {

struct TrainerOptions {
  int max_epochs = 100;
  /// Stop once validation accuracy reaches this value (<= 0 disables).
  double target_val_accuracy = 0.0;
  /// Stop after this many evaluations without improvement (0 disables).
  int patience = 0;
  /// Evaluate validation accuracy every this many epochs.
  int eval_every = 5;

  // ---- Checkpoint/resume (engine/checkpoint.h). --------------------------
  /// Directory for ckpt.htck / ckpt.prev.htck; empty disables
  /// checkpointing. The engine must expose model() and adam().
  std::string checkpoint_dir;
  /// Snapshot every this many completed epochs.
  int checkpoint_every = 1;
  /// Try to restore the newest intact snapshot before training and continue
  /// from its epoch counter. A killed run relaunched with the same options
  /// finishes with bitwise-identical weights to an uninterrupted one: the
  /// snapshot (params, Adam moments, step count) is the complete
  /// inter-epoch state.
  bool resume = true;
};

struct TrainerReport {
  int epochs_run = 0;
  double final_loss = 0.0;
  double best_val_accuracy = 0.0;
  double test_accuracy = 0.0;
  /// Sum of simulated per-epoch seconds (the paper's per-epoch metric x
  /// epochs = time-to-accuracy under the platform model).
  double total_sim_seconds = 0.0;
  double total_wall_seconds = 0.0;
  bool reached_target = false;
  bool early_stopped = false;
  /// Completed-epoch counter restored from a snapshot (0 = fresh start).
  int64_t resumed_from_epoch = 0;

  double MeanEpochSimSeconds() const {
    return epochs_run > 0 ? total_sim_seconds / epochs_run : 0.0;
  }
};

/// Runs the convergence loop on any engine with the unified RunEpoch /
/// EvaluateAccuracy interface. Checkpointing (opts.checkpoint_dir) requires
/// the engine's model()/adam() accessors to be non-null (HongTuEngine); the
/// baseline engines return nullptr there and reject checkpointed runs.
template <typename EngineT>
Result<TrainerReport> TrainToConvergence(EngineT* engine,
                                         const TrainerOptions& opts) {
  if (engine == nullptr) return Status::Invalid("TrainToConvergence: null");
  if (opts.max_epochs <= 0 || opts.eval_every <= 0) {
    return Status::Invalid("TrainToConvergence: bad options");
  }
  TrainerReport report;
  int start_epoch = 0;

  const bool has_hooks =
      engine->model() != nullptr && engine->adam() != nullptr;
  if (!opts.checkpoint_dir.empty() && !has_hooks) {
    return Status::Invalid(
        "TrainToConvergence: this engine has no model()/adam() checkpoint "
        "hooks; clear checkpoint_dir");
  }
  if (!opts.checkpoint_dir.empty() && opts.resume) {
    CheckpointManager mgr(opts.checkpoint_dir, engine->degradation());
    Result<int64_t> restored = mgr.Restore(engine->model(), engine->adam());
    if (restored.ok()) {
      start_epoch = static_cast<int>(restored.ValueOrDie());
      report.resumed_from_epoch = restored.ValueOrDie();
      HT_LOG(INFO) << "resumed from checkpoint: " << start_epoch
                   << " epochs already complete";
    } else if (!restored.status().IsNotFound()) {
      // A damaged checkpoint pair is a real error: silently restarting
      // from scratch would discard the run the user asked to resume.
      return restored.status();
    }
  }

  int evals_since_best = 0;
  for (int epoch = start_epoch + 1; epoch <= opts.max_epochs; ++epoch) {
    HT_ASSIGN_OR_RETURN(EpochStats st, engine->RunEpoch());
    ++report.epochs_run;
    report.final_loss = st.loss;
    report.total_sim_seconds += st.SimSeconds();
    report.total_wall_seconds += st.wall_seconds;

    if (!opts.checkpoint_dir.empty() &&
        epoch % std::max(1, opts.checkpoint_every) == 0) {
      // Best effort: a failed snapshot must not kill a healthy run, but
      // it must be visible.
      CheckpointManager mgr(opts.checkpoint_dir);
      const Status saved = mgr.Save(engine->model(), *engine->adam(), epoch);
      if (!saved.ok()) {
        HT_LOG(WARNING) << "checkpoint save failed (continuing): "
                        << saved.ToString();
      }
    }

    if (epoch % opts.eval_every != 0 && epoch != opts.max_epochs) continue;

    HT_ASSIGN_OR_RETURN(double val, engine->EvaluateAccuracy(SplitRole::kVal));
    if (val > report.best_val_accuracy) {
      report.best_val_accuracy = val;
      evals_since_best = 0;
    } else {
      ++evals_since_best;
    }
    if (opts.target_val_accuracy > 0 && val >= opts.target_val_accuracy) {
      report.reached_target = true;
      break;
    }
    if (opts.patience > 0 && evals_since_best >= opts.patience) {
      report.early_stopped = true;
      break;
    }
  }
  HT_ASSIGN_OR_RETURN(report.test_accuracy,
                      engine->EvaluateAccuracy(SplitRole::kTest));
  return report;
}

}  // namespace hongtu
