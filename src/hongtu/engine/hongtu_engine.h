/// \file hongtu_engine.h
/// \brief The HongTu training engine: partition-based CPU-offloaded
/// full-graph GNN training with recomputation-caching-hybrid intermediate
/// data management and deduplicated communication (Algorithm 1).
///
/// Per-layer vertex representations h^l and gradients (and, for cacheable
/// layers, the AGGREGATE checkpoints) live in host memory; each batch loads
/// one chunk per device through the deduplicated communication framework,
/// computes on the simulated GPU, and streams results back.

#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "hongtu/comm/dedup_plan.h"
#include "hongtu/common/pipeline.h"
#include "hongtu/comm/executor.h"
#include "hongtu/comm/reorganize.h"
#include "hongtu/engine/engine.h"
#include "hongtu/gnn/loss.h"
#include "hongtu/gnn/model.h"
#include "hongtu/graph/datasets.h"

namespace hongtu {

struct HongTuOptions : EngineOptions {
  /// Chunks per partition (n). Tunes memory vs. communication (Fig. 10).
  int chunks_per_partition = 8;
  /// Fig. 9 ablation: kNone = Baseline, kP2P, kP2PReuse (full HongTu).
  DedupLevel dedup = DedupLevel::kP2PReuse;
  /// Run Algorithm 4 partition reorganization during preprocessing.
  bool reorganize = true;
  /// Use the recomputation-caching hybrid for cacheable layers (§4.2); when
  /// false every layer recomputes (the pure recomputation ablation).
  bool hybrid_cache = true;
  /// In-flight chunk batches of the pipelined executor. 0 (or 1) runs the
  /// serial epoch loop; >= 2 overlaps deduplicated communication for batch
  /// j+1 and result write-back for batch j-1 with batch j's kernels, at the
  /// cost of one extra chunk working set per additional slot. Numerics are
  /// identical to the serial path (stages retire strictly in batch order).
  /// A layer that cannot fit the pipelined working set falls back to the
  /// serial loop for that layer instead of failing.
  int pipeline_depth = 2;
  /// Compile per-(chunk, direction) edge schedules at setup so the
  /// aggregation kernels run the propagation-blocked (cache-banded,
  /// conflict-free-parallel) path. One-time preprocessing cost, metered
  /// against device memory; a device that cannot hold its schedules simply
  /// runs the single-pass kernels. False = always single-pass (A/B).
  bool edge_schedules = true;
  uint64_t partition_seed = 7;
};

class HongTuEngine {
 public:
  /// Preprocesses (2-level partition, reorganization, dedup plan) and
  /// allocates host-side buffers. `dataset` must outlive the engine.
  static Result<std::unique_ptr<HongTuEngine>> Create(const Dataset* dataset,
                                                      ModelConfig model_config,
                                                      HongTuOptions options);

  /// One full forward+backward epoch with parameter update.
  Result<EpochStats> TrainEpoch();

  /// Forward-only pass; returns accuracy over the given split.
  Result<double> EvaluateAccuracy(SplitRole role);

  const DedupPlan& plan() const { return plan_; }
  const TwoLevelPartition& partition() const { return tl_; }
  /// Preprocessing wall-clock split: {partition, reorganize+plan} seconds.
  double partition_seconds() const { return partition_seconds_; }
  double dedup_preprocess_seconds() const { return dedup_preprocess_seconds_; }

  SimPlatform* platform() { return platform_.get(); }
  GnnModel* model() { return &model_; }
  /// Optimizer state — the checkpoint layer snapshots/restores it together
  /// with the parameters (engine/checkpoint.h).
  Adam* adam() { return &adam_; }
  /// The engine's degradation record (common/fault.h). TrainEpoch resets the
  /// per-epoch counters and snapshots them into EpochStats::recovery.
  fault::DegradationPolicy* degradation() { return &degrade_; }
  const HongTuOptions& options() const { return options_; }

 private:
  HongTuEngine() = default;

  /// Forward over all layers/batches; fills h^l buffers (and caches).
  Status ForwardPass();
  /// Backward from the loss gradient in grad_[L] down to layer 0.
  Status BackwardPass();
  Status AllReduceAndStep();

  /// Classifies a failed pipelined layer: OOM and transient causes are
  /// recorded as degradation events and return OK (caller runs the serial
  /// loop); permanent errors pass through.
  Status DegradeToSerial(const Status& st, const std::string& what);

  /// Serial per-layer loops (pipeline_depth <= 1, and the OOM fallback).
  Status ForwardLayerSerial(int l);
  Status BackwardLayerSerial(int l);
  /// Pipelined per-layer loops: load / compute / store stages on worker
  /// threads, `EffectiveDepth()` batches in flight.
  Status ForwardLayerPipelined(int l);
  Status BackwardLayerPipelined(int l);
  /// Shared scaffold of the pipelined layer loops: registers comm buffers
  /// (`comm_slots` in-flight neighbor slots), reserves `d` worst-case chunk
  /// working sets per device (the compute stage must never race the other
  /// stages for the allocator), then runs load/compute/store over all
  /// batches with `d` in flight inside a metering overlap region.
  Status RunPipelinedLayer(
      int in_dim, int comm_slots, int d,
      const std::function<int64_t(const Chunk&)>& scratch_bytes,
      StagePipeline::StageFn load, StagePipeline::StageFn compute,
      StagePipeline::StageFn store);
  /// In-flight batches actually used: pipeline_depth clamped to the batch
  /// count; 0 (serial path) when fewer than 2 batches can be in flight,
  /// since a window of 1 cannot overlap anything.
  int EffectiveDepth() const;

  /// Per-(pipeline-slot, device) chunk workspaces, pool-backed and reused
  /// across chunks, layers and epochs. Each hot-loop tensor is reshaped in
  /// place with EnsureShape, so the chunk loops never allocate once the
  /// workspaces are pre-sized (PresizeWorkspaces) to the worst-case chunk.
  struct SlotWorkspace {
    std::vector<Tensor> out;       ///< forward dst_h output (per device)
    std::vector<Tensor> agg;       ///< AGGREGATE output / reloaded checkpoint
    std::vector<Tensor> d_dst;     ///< destination gradients from host
    std::vector<Tensor> dst_rows;  ///< destinations' own h^l rows (hybrid)
    std::vector<Tensor> d_src;     ///< neighbor gradients (accumulator)
  };

  /// Sizes ws_ for max(1, EffectiveDepth()) slots and grows every workspace
  /// tensor to the worst-case chunk of its device across all layers, so the
  /// first epoch already runs allocation-free in the engine's own loops.
  void PresizeWorkspaces();

  /// Compiles the per-(chunk, direction) edge schedules (options_.
  /// edge_schedules), sized for the widest layer dimension, accounts their
  /// bytes against each device and the platform's schedule meter. A device
  /// whose capacity cannot hold its schedules keeps none (single-pass
  /// kernels) instead of failing.
  void BuildEdgeSchedules();

  /// The compiled schedules of chunk (i, j); null when schedules are
  /// disabled or device i could not hold them.
  const ChunkSchedules* chunk_schedules(int i, int j) const {
    if (scheds_.empty() || scheds_[static_cast<size_t>(i)].empty()) {
      return nullptr;
    }
    return &scheds_[static_cast<size_t>(i)][static_cast<size_t>(j)];
  }

  const Dataset* ds_ = nullptr;
  HongTuOptions options_;
  GnnModel model_;
  Adam adam_;
  /// Counted record of every graceful degradation (shared with executor_).
  fault::DegradationPolicy degrade_;

  TwoLevelPartition tl_;
  DedupPlan plan_;
  std::unique_ptr<SimPlatform> platform_;
  std::unique_ptr<CommExecutor> executor_;

  std::vector<Tensor> h_;      ///< h^l, l = 0..L (host)
  std::vector<Tensor> grad_;   ///< grad h^l, l = 0..L (host)
  std::vector<Tensor> cache_;  ///< AGGREGATE checkpoints per layer (host)
  std::vector<bool> use_cache_;  ///< per layer: hybrid cache active
  std::vector<SlotWorkspace> ws_;  ///< per-slot reusable chunk workspaces
  /// Per (device, chunk) compiled aggregation schedules ([m][n]; a device's
  /// row is empty when its schedules did not fit) and their device-memory
  /// registrations.
  std::vector<std::vector<ChunkSchedules>> scheds_;
  std::vector<DeviceAllocation> sched_alloc_;

  double partition_seconds_ = 0.0;
  double dedup_preprocess_seconds_ = 0.0;
};

}  // namespace hongtu
