/// \file hongtu_engine.h
/// \brief The HongTu training engine: partition-based CPU-offloaded
/// full-graph GNN training with recomputation-caching-hybrid intermediate
/// data management and deduplicated communication (Algorithm 1).
///
/// Per-layer vertex representations h^l and gradients (and, for cacheable
/// layers, the AGGREGATE checkpoints) live in host memory; each batch loads
/// one chunk per device through the deduplicated communication framework,
/// computes on the simulated GPU, and streams results back.

#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "hongtu/comm/dedup_plan.h"
#include "hongtu/common/pipeline.h"
#include "hongtu/common/taskgraph.h"
#include "hongtu/comm/executor.h"
#include "hongtu/comm/reorganize.h"
#include "hongtu/engine/engine.h"
#include "hongtu/gnn/loss.h"
#include "hongtu/gnn/model.h"
#include "hongtu/graph/datasets.h"

namespace hongtu {

// HongTuOptions is an alias of the flattened EngineConfig (engine/engine.h);
// the HongTu-specific knobs (chunks_per_partition, dedup, reorganize,
// hybrid_cache, edge_schedules, partition_seed) and the executor policy
// (executor + max_inflight, with pipeline_depth as the deprecated alias)
// live there.

class HongTuEngine : public Engine {
 public:
  /// Preprocesses (2-level partition, reorganization, dedup plan) and
  /// allocates host-side buffers. `dataset` must outlive the engine.
  static Result<std::unique_ptr<HongTuEngine>> Create(const Dataset* dataset,
                                                      ModelConfig model_config,
                                                      HongTuOptions options);

  /// One full forward+backward epoch with parameter update.
  Result<EpochStats> TrainEpoch();

  // ---- Engine interface ----------------------------------------------------
  Result<EpochStats> RunEpoch() override { return TrainEpoch(); }
  /// Forward-only pass; returns accuracy over the given split.
  Result<double> EvaluateAccuracy(SplitRole role) override;
  const char* name() const override { return "hongtu"; }

  const DedupPlan& plan() const { return plan_; }
  const TwoLevelPartition& partition() const { return tl_; }
  /// Preprocessing wall-clock split: {partition, reorganize+plan} seconds.
  double partition_seconds() const { return partition_seconds_; }
  double dedup_preprocess_seconds() const { return dedup_preprocess_seconds_; }

  SimPlatform* platform() override { return platform_.get(); }
  GnnModel* model() override { return &model_; }
  /// Optimizer state — the checkpoint layer snapshots/restores it together
  /// with the parameters (engine/checkpoint.h).
  Adam* adam() override { return &adam_; }
  /// The engine's degradation record (common/fault.h). TrainEpoch resets the
  /// per-epoch counters and snapshots them into EpochStats::recovery.
  fault::DegradationPolicy* degradation() override { return &degrade_; }
  const HongTuOptions& options() const { return options_; }

 private:
  HongTuEngine() = default;

  /// Forward over all layers/batches; fills h^l buffers (and caches).
  Status ForwardPass();
  /// Backward from the loss gradient in grad_[L] down to layer 0.
  Status BackwardPass();
  Status AllReduceAndStep();

  /// Classifies a failed pipelined layer: OOM and transient causes are
  /// recorded as degradation events and return OK (caller runs the serial
  /// loop); permanent errors pass through.
  Status DegradeToSerial(const Status& st, const std::string& what);

  /// Serial per-layer loops (pipeline_depth <= 1, and the OOM fallback).
  Status ForwardLayerSerial(int l);
  Status BackwardLayerSerial(int l);
  /// Pipelined per-layer loops: load / compute / store stages on worker
  /// threads, `EffectiveDepth()` batches in flight.
  Status ForwardLayerPipelined(int l);
  Status BackwardLayerPipelined(int l);
  /// Shared scaffold of the pipelined layer loops: registers comm buffers
  /// (`comm_slots` in-flight neighbor slots), reserves `d` worst-case chunk
  /// working sets per device (the compute stage must never race the other
  /// stages for the allocator), then runs load/compute/store over all
  /// batches with `d` in flight inside a metering overlap region.
  Status RunPipelinedLayer(
      int in_dim, int comm_slots, int d,
      const std::function<int64_t(const Chunk&)>& scratch_bytes,
      StagePipeline::StageFn load, StagePipeline::StageFn compute,
      StagePipeline::StageFn store);
  /// In-flight batches actually used: pipeline_depth clamped to the batch
  /// count; 0 (serial path) when fewer than 2 batches can be in flight,
  /// since a window of 1 cannot overlap anything.
  int EffectiveDepth() const;

  // ---- Dataflow task-graph executor (common/taskgraph.h) -------------------
  /// Whole-pass dependency graphs: every (chunk, layer, stage) is a node,
  /// edges carry per-edge readiness (load chains within a layer, cross-layer
  /// edges only where a chunk's transition rows are consumed), and a
  /// buffer-slot token pool — capacity resolved_max_inflight(), charged
  /// against the same device budget BeginLayerCtx registers — provides
  /// backpressure. A failed run degrades to a serial replay of the whole
  /// pass (DegradeToSerial), mirroring the pipelined fallback.
  Status ForwardPassTaskGraph();
  Status BackwardPassTaskGraph();
  /// Cross-layer dependency tables, computed once at Create:
  /// fwd_dep_batches_[j] = the batches whose forward store writes rows that
  /// batch j's fresh (non-reused) transition loads read on any device;
  /// bwd_dep_batch_[j] = the latest batch whose backward flush completes
  /// grad rows batch j's recompute load reads at layer l from layer l+1's
  /// store (-1 when none). Both are layer-independent (the dedup plan's
  /// transition structure is).
  void BuildTaskDeps();
  /// Workspace slots the active executor needs: the token-pool capacity
  /// under taskgraph, max(1, EffectiveDepth()) otherwise.
  int WorkspaceSlots() const;

  /// Per-(pipeline-slot, device) chunk workspaces, pool-backed and reused
  /// across chunks, layers and epochs. Each hot-loop tensor is reshaped in
  /// place with EnsureShape, so the chunk loops never allocate once the
  /// workspaces are pre-sized (PresizeWorkspaces) to the worst-case chunk.
  struct SlotWorkspace {
    std::vector<Tensor> out;       ///< forward dst_h output (per device)
    std::vector<Tensor> agg;       ///< AGGREGATE output / reloaded checkpoint
    std::vector<Tensor> d_dst;     ///< destination gradients from host
    std::vector<Tensor> dst_rows;  ///< destinations' own h^l rows (hybrid)
    std::vector<Tensor> d_src;     ///< neighbor gradients (accumulator)
  };

  /// Sizes ws_ for max(1, EffectiveDepth()) slots and grows every workspace
  /// tensor to the worst-case chunk of its device across all layers, so the
  /// first epoch already runs allocation-free in the engine's own loops.
  void PresizeWorkspaces();

  /// Compiles the per-(chunk, direction) edge schedules (options_.
  /// edge_schedules), sized for the widest layer dimension, accounts their
  /// bytes against each device and the platform's schedule meter. A device
  /// whose capacity cannot hold its schedules keeps none (single-pass
  /// kernels) instead of failing.
  void BuildEdgeSchedules();

  /// The compiled schedules of chunk (i, j); null when schedules are
  /// disabled or device i could not hold them.
  const ChunkSchedules* chunk_schedules(int i, int j) const {
    if (scheds_.empty() || scheds_[static_cast<size_t>(i)].empty()) {
      return nullptr;
    }
    return &scheds_[static_cast<size_t>(i)][static_cast<size_t>(j)];
  }

  const Dataset* ds_ = nullptr;
  HongTuOptions options_;
  GnnModel model_;
  Adam adam_;
  /// Counted record of every graceful degradation (shared with executor_).
  fault::DegradationPolicy degrade_;

  TwoLevelPartition tl_;
  DedupPlan plan_;
  std::unique_ptr<SimPlatform> platform_;
  std::unique_ptr<CommExecutor> executor_;

  std::vector<Tensor> h_;      ///< h^l, l = 0..L (host)
  std::vector<Tensor> grad_;   ///< grad h^l, l = 0..L (host)
  std::vector<Tensor> cache_;  ///< AGGREGATE checkpoints per layer (host)
  std::vector<bool> use_cache_;  ///< per layer: hybrid cache active
  std::vector<SlotWorkspace> ws_;  ///< per-slot reusable chunk workspaces
  /// Per (device, chunk) compiled aggregation schedules ([m][n]; a device's
  /// row is empty when its schedules did not fit) and their device-memory
  /// registrations.
  std::vector<std::vector<ChunkSchedules>> scheds_;
  std::vector<DeviceAllocation> sched_alloc_;

  /// Task-graph cross-layer dependency tables (BuildTaskDeps; empty until
  /// the taskgraph executor first runs).
  std::vector<std::vector<int>> fwd_dep_batches_;
  std::vector<int> bwd_dep_batch_;
  /// Per-layer worst-case scratch reservations of an in-flight task-graph
  /// pass (begin nodes reserve, end nodes release).
  std::vector<std::vector<DeviceAllocation>> task_scratch_;

  double partition_seconds_ = 0.0;
  double dedup_preprocess_seconds_ = 0.0;
};

}  // namespace hongtu
