#include "hongtu/engine/cpu_cluster_engine.h"

#include <algorithm>
#include <cmath>

#include "hongtu/sim/memory_model.h"

namespace hongtu {

namespace {
constexpr int64_t kF32 = static_cast<int64_t>(sizeof(float));
}

Result<std::unique_ptr<CpuClusterEngine>> CpuClusterEngine::Create(
    const Dataset* dataset, ModelConfig model_config,
    CpuClusterOptions options) {
  if (dataset == nullptr) {
    return Status::Invalid("CpuClusterEngine: null dataset");
  }
  auto engine = std::unique_ptr<CpuClusterEngine>(new CpuClusterEngine());
  engine->ds_ = dataset;
  engine->options_ = options;
  HT_ASSIGN_OR_RETURN(engine->model_, GnnModel::Create(model_config));

  TwoLevelOptions tlo;
  tlo.metis.seed = options.partition_seed;
  HT_ASSIGN_OR_RETURN(
      TwoLevelPartition tl,
      BuildTwoLevelPartition(dataset->graph, options.num_nodes, 1, tlo));
  engine->shares_.resize(options.num_nodes);
  for (int i = 0; i < options.num_nodes; ++i) {
    const Chunk& c = tl.chunks[i][0];
    engine->shares_[i] = {c.num_dst(), c.num_edges(), c.num_neighbors()};
  }

  if (!options.cluster_transport.empty()) {
    // Real multi-process mode: hand the training problem's provenance to a
    // ClusterCoordinator, which forks one worker per partition. Everything
    // the workers need travels through the env contract; the dataset's
    // (name, scale, seed) triple regenerates it bit-for-bit in each process.
    if (options.dedup == DedupLevel::kNone) {
      return Status::Invalid(
          "cluster_transport requires dedup kP2P or kP2PReuse: the "
          "owner-grouped transition buffers are the RPC wire format");
    }
    if (dataset->name.empty()) {
      return Status::Invalid(
          "cluster_transport needs a registry dataset (name/scale/seed "
          "provenance); ad-hoc datasets cannot be rebuilt in workers");
    }
    net::ClusterConfig cc;
    cc.transport = options.cluster_transport;
    cc.num_workers = options.cluster_workers;
    cc.dataset = dataset->name;
    cc.dataset_scale = dataset->loaded_scale;
    cc.dataset_seed = dataset->load_seed;
    cc.model_kind = model_config.kind;
    cc.model_dims = model_config.dims;
    cc.model_seed = model_config.seed;
    cc.chunks_per_partition = options.chunks_per_partition;
    cc.dedup_level = static_cast<int>(options.dedup);
    cc.reorganize = options.reorganize;
    cc.partition_seed = options.partition_seed;
    cc.wire = options.comm_precision;
    cc.adam = options.adam;
    cc.checkpoint_dir = options.cluster_checkpoint_dir;
    cc.runtime_dir = options.cluster_runtime_dir;
    cc.resume = options.cluster_resume;
    cc.recover_mode = options.cluster_recover_mode;
    cc.kill_rank = options.cluster_kill_rank;
    cc.kill_epoch = options.cluster_kill_epoch;
    cc.fault_rank = options.cluster_fault_rank;
    cc.worker_fault_spec = options.cluster_worker_fault_spec;
    cc.coord_kill_epoch = options.cluster_coord_kill_epoch;
    HT_ASSIGN_OR_RETURN(engine->coordinator_,
                        net::ClusterCoordinator::Start(std::move(cc)));
  }
  return engine;
}

Result<EpochStats> CpuClusterEngine::RunEpoch() {
  if (coordinator_ == nullptr) return EstimateEpoch();
  HT_ASSIGN_OR_RETURN(net::ClusterEpochResult r, coordinator_->RunEpoch());
  EpochStats stats;
  stats.loss = r.loss;
  stats.train_accuracy = r.train_accuracy;
  stats.wall_seconds = r.wall_seconds;
  // Measured wall-clock is the epoch time here — there is no simulated
  // platform in multi-process mode, so SimSeconds() == wall.
  stats.time.cpu = r.wall_seconds;
  stats.recovery = r.recovery;
  return stats;
}

int64_t CpuClusterEngine::MaxNodeBytes() const {
  // Per-node training state: its share of vertex + intermediate data, plus
  // neighbor replicas and matching communication buffers across all layers
  // (DistGNN keeps both, §7.2 "Comparison with distributed-CPU system").
  int64_t sum_dims = 0;
  for (int d : model_.config().dims) sum_dims += d;
  MemoryModelInput mm;
  mm.num_vertices = ds_->graph.num_vertices();
  mm.num_edges = ds_->graph.num_edges();
  for (int d : model_.config().dims) mm.dims.push_back(d);
  mm.kind = model_.config().kind == GnnKind::kGat ? ModelKind::kGat
                                                  : ModelKind::kGcn;
  const MemoryModelOutput out = EvaluateMemoryModel(mm);

  const int64_t nv = ds_->graph.num_vertices();
  const int64_t ne = ds_->graph.num_edges();
  int64_t mx = 0;
  for (const NodeShare& s : shares_) {
    const double v_frac = static_cast<double>(s.vertices) / nv;
    const double e_frac = static_cast<double>(s.edges) / ne;
    const int64_t own =
        static_cast<int64_t>(out.vertex_data_bytes * v_frac) +
        static_cast<int64_t>(out.intermediate_data_bytes *
                             (model_.config().kind == GnnKind::kGat ? e_frac
                                                                    : v_frac)) +
        static_cast<int64_t>(out.topology_bytes * e_frac);
    const int64_t replicas =
        2 * (s.neighbors - s.vertices) * sum_dims * kF32;  // data + buffers
    mx = std::max(mx, own + replicas);
  }
  return mx;
}

Result<double> CpuClusterEngine::EvaluateAccuracy(SplitRole role) {
  if (coordinator_ != nullptr) return coordinator_->Evaluate(role);
  return Status::NotImplemented(
      "CpuClusterEngine is an analytic cost model; it trains no parameters "
      "to evaluate");
}

Result<EpochStats> CpuClusterEngine::EstimateEpoch() const {
  const int64_t need = MaxNodeBytes();
  if (need > options_.node_memory_bytes) {
    return Status::OutOfMemory("CpuClusterEngine: node needs " +
                               std::to_string(need >> 20) + " MB > " +
                               std::to_string(options_.node_memory_bytes >> 20) +
                               " MB");
  }

  // Compute roofline over the full graph, split across nodes.
  LocalGraph lg;
  lg.num_dst = ds_->graph.num_vertices();
  lg.num_src = ds_->graph.num_vertices();
  lg.num_edges = ds_->graph.num_edges();
  double flops = 0, bytes = 0;
  for (int l = 0; l < model_.num_layers(); ++l) {
    double f = 0, b = 0;
    model_.layer(l)->ForwardCost(lg, &f, &b);
    flops += f;
    bytes += b;
    model_.layer(l)->BackwardCost(lg, /*cached=*/false, &f, &b);
    flops += f;
    bytes += b;
  }
  const double eff_nodes =
      std::pow(static_cast<double>(options_.num_nodes),
               options_.scaling_exponent);
  const double compute_secs =
      std::max(flops / (eff_nodes * options_.node_flops),
               bytes / (eff_nodes * options_.node_mem_bw));

  // Network: boundary vertex data in both directions, every layer; the
  // slowest node bounds the epoch.
  double net_secs = 0;
  for (int l = 0; l < model_.num_layers(); ++l) {
    const int64_t dim = model_.config().dims[l];
    int64_t mx_bytes = 0;
    for (const NodeShare& s : shares_) {
      mx_bytes =
          std::max(mx_bytes, 2 * (s.neighbors - s.vertices) * dim * kF32);
    }
    net_secs += static_cast<double>(mx_bytes) / options_.network_bandwidth;
  }

  EpochStats stats;
  stats.time.cpu = compute_secs;
  stats.time.d2d = net_secs;  // network transfer slot
  stats.peak_device_bytes = need;
  return stats;
}

}  // namespace hongtu
