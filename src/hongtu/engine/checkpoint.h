/// \file checkpoint.h
/// \brief Epoch-granular training checkpoints with integrity-checked
/// sections and crash-atomic installation.
///
/// A full-graph epoch over a billion-edge graph is minutes to hours of
/// work; the paper's out-of-core design makes multi-hour runs the normal
/// case, so losing a run to a crash is the single most expensive failure
/// mode. The complete inter-epoch training state of every engine here is
/// tiny — the replicated model parameters plus the Adam moments and step
/// counter (all activations h^l are recomputed from scratch each epoch) —
/// so a snapshot per epoch costs microseconds against an epoch of seconds.
///
/// ## File format (`HTCK`, version 1)
///
///     [magic "HTCK"][u32 version]
///     repeated sections:
///       [u32 tag][u64 payload_bytes][payload][u32 crc32c(payload)]
///     [tag "ENDS"][u64 0][u32 crc32c(empty)]
///
/// Sections: `META` (epoch counter, Adam step count, parameter count),
/// then per parameter slot `PARM`/`ADM1`/`ADM2` (shape + raw fp32 rows for
/// the parameter and its two Adam moments). Every payload carries its own
/// CRC32C; a missing `ENDS` footer means the writer died mid-file. Readers
/// reject a snapshot on the first bad magic, short read, oversized length,
/// CRC mismatch, or shape that does not match the live model.
///
/// ## Crash atomicity
///
/// Save writes to `<path>.tmp`, fsyncs, then renames over `<path>` (and
/// fsyncs the directory), so a SIGKILL at any instant leaves either the old
/// snapshot or the new one — never a half-written primary. The manager
/// additionally rotates the previous good snapshot to `ckpt.prev.htck`
/// before installing, and Restore falls back to it (counting a
/// DegradeEvent::kCheckpointFallback) when the primary is damaged.
///
/// Fault site `ckpt.write` pokes once per section write, so injected
/// faults (including `kill` — the CI crash smoke) land at deterministic
/// byte offsets. Fault site `ckpt.read` pokes once per snapshot parse
/// (after the file was read, before validation), so restore-time
/// corruption and transient IO exercise the previous-snapshot fallback.

#pragma once

#include <cstdint>
#include <string>

#include "hongtu/common/fault.h"
#include "hongtu/common/status.h"
#include "hongtu/gnn/model.h"
#include "hongtu/tensor/adam.h"

namespace hongtu {

/// Writes one crash-atomic snapshot of (model params, adam moments, adam
/// step count, `epoch`) to `path`. `epoch` is the number of completed
/// epochs (i.e. the epoch index training should resume at).
Status SaveCheckpoint(const std::string& path, GnnModel* model,
                      const Adam& adam, int64_t epoch);

/// Restores a snapshot written by SaveCheckpoint into the live model and
/// optimizer. Fails (without touching any state) on any integrity or shape
/// violation; on success `*epoch` receives the stored epoch counter.
Status RestoreCheckpoint(const std::string& path, GnnModel* model, Adam* adam,
                         int64_t* epoch);

/// Primary/previous rotation over a checkpoint directory:
///   Save:    rotate ckpt.htck -> ckpt.prev.htck, install the new snapshot
///   Restore: primary first; fall back to previous when the primary is
///            missing or damaged (recording kCheckpointFallback).
class CheckpointManager {
 public:
  /// `dir` must exist. `degrade` (may be null) counts fallback events.
  explicit CheckpointManager(std::string dir,
                             fault::DegradationPolicy* degrade = nullptr)
      : dir_(std::move(dir)), degrade_(degrade) {}

  std::string PrimaryPath() const { return dir_ + "/ckpt.htck"; }
  std::string PreviousPath() const { return dir_ + "/ckpt.prev.htck"; }

  Status Save(GnnModel* model, const Adam& adam, int64_t epoch);

  /// Restores the newest intact snapshot, returning its epoch counter.
  /// NotFound when neither primary nor previous is usable.
  Result<int64_t> Restore(GnnModel* model, Adam* adam);

 private:
  std::string dir_;
  fault::DegradationPolicy* degrade_;
};

}  // namespace hongtu
