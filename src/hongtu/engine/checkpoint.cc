#include "hongtu/engine/checkpoint.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <vector>

#include "hongtu/common/crc32c.h"

namespace hongtu {

namespace {

constexpr uint32_t Tag(char a, char b, char c, char d) {
  return static_cast<uint32_t>(static_cast<unsigned char>(a)) |
         static_cast<uint32_t>(static_cast<unsigned char>(b)) << 8 |
         static_cast<uint32_t>(static_cast<unsigned char>(c)) << 16 |
         static_cast<uint32_t>(static_cast<unsigned char>(d)) << 24;
}

constexpr uint32_t kMagic = Tag('H', 'T', 'C', 'K');
constexpr uint32_t kVersion = 1;
constexpr uint32_t kTagMeta = Tag('M', 'E', 'T', 'A');
constexpr uint32_t kTagParam = Tag('P', 'A', 'R', 'M');
constexpr uint32_t kTagMoment1 = Tag('A', 'D', 'M', '1');
constexpr uint32_t kTagMoment2 = Tag('A', 'D', 'M', '2');
constexpr uint32_t kTagEnd = Tag('E', 'N', 'D', 'S');

// Native-endian on purpose: a snapshot resumes the run that wrote it (or a
// rerun on the same machine class); it is not an interchange format.
struct MetaPayload {
  int64_t epoch = 0;
  int64_t adam_step = 0;
  uint32_t num_params = 0;
  uint32_t pad = 0;
};

struct TensorHeader {
  int64_t rows = 0;
  int64_t cols = 0;
};

Status WriteAll(int fd, const void* data, size_t n) {
  const char* p = static_cast<const char*>(data);
  while (n > 0) {
    const ssize_t w = ::write(fd, p, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("checkpoint write: ") +
                             std::strerror(errno));
    }
    p += w;
    n -= static_cast<size_t>(w);
  }
  return Status::OK();
}

/// One `[tag][len][payload parts...][crc]` section. The `ckpt.write` fault
/// site pokes once per section, before any of its bytes reach the file —
/// an injected kill lands between sections at a deterministic offset.
struct Part {
  const void* data;
  size_t len;
};

Status WriteSection(int fd, uint32_t tag, const Part* parts, int num_parts) {
  HT_RETURN_IF_ERROR(fault::Poke(fault::Site::kCkptWrite));
  uint64_t len = 0;
  uint32_t crc = 0;
  for (int i = 0; i < num_parts; ++i) {
    len += parts[i].len;
    crc = Crc32c(parts[i].data, parts[i].len, crc);
  }
  HT_RETURN_IF_ERROR(WriteAll(fd, &tag, sizeof(tag)));
  HT_RETURN_IF_ERROR(WriteAll(fd, &len, sizeof(len)));
  for (int i = 0; i < num_parts; ++i) {
    HT_RETURN_IF_ERROR(WriteAll(fd, parts[i].data, parts[i].len));
  }
  return WriteAll(fd, &crc, sizeof(crc));
}

Status WriteTensorSection(int fd, uint32_t tag, const Tensor& t) {
  const TensorHeader hdr{t.rows(), t.cols()};
  const Part parts[2] = {
      {&hdr, sizeof(hdr)},
      {t.data(), static_cast<size_t>(t.size()) * sizeof(float)},
  };
  return WriteSection(fd, tag, parts, 2);
}

Status FsyncPath(const std::string& path, bool directory) {
  const int fd = ::open(path.c_str(), directory ? O_RDONLY | O_DIRECTORY
                                                : O_RDONLY);
  if (fd < 0) {
    return Status::IoError("checkpoint fsync open '" + path +
                           "': " + std::strerror(errno));
  }
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) {
    return Status::IoError("checkpoint fsync '" + path +
                           "': " + std::strerror(errno));
  }
  return Status::OK();
}

std::string DirOf(const std::string& path) {
  const size_t slash = path.rfind('/');
  return slash == std::string::npos ? std::string(".") : path.substr(0, slash);
}

/// A parsed section: tag + payload span inside the file image.
struct Section {
  uint32_t tag = 0;
  const uint8_t* payload = nullptr;
  uint64_t len = 0;
};

/// Reads and structurally validates a snapshot: magic/version, per-section
/// bounds and CRC32C, terminating ENDS footer. Returns the sections in file
/// order. Any violation means the file is damaged or was cut mid-write.
Status ParseSnapshot(const std::string& path, std::vector<uint8_t>* image,
                     std::vector<Section>* sections) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound("checkpoint '" + path + "' not found");
  }
  std::fseek(f, 0, SEEK_END);
  const long fsize = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  if (fsize < 0) {
    std::fclose(f);
    return Status::IoError("checkpoint '" + path + "': cannot stat");
  }
  image->resize(static_cast<size_t>(fsize));
  const size_t got = fsize == 0 ? 0 : std::fread(image->data(), 1,
                                                 image->size(), f);
  std::fclose(f);
  if (got != image->size()) {
    return Status::IoError("checkpoint '" + path + "': short read");
  }
  // Restore-time injection (transient IO, corruption): poked after the
  // snapshot exists and was read, so kNotFound keeps its real meaning and
  // CheckpointManager::Restore's previous-snapshot fallback is what an
  // injected failure exercises.
  HT_RETURN_IF_ERROR(fault::Poke(fault::Site::kCkptRead));

  const uint8_t* p = image->data();
  size_t remaining = image->size();
  uint32_t magic = 0, version = 0;
  if (remaining < sizeof(magic) + sizeof(version)) {
    return Status::DataLoss("checkpoint '" + path + "': truncated header");
  }
  std::memcpy(&magic, p, sizeof(magic));
  std::memcpy(&version, p + sizeof(magic), sizeof(version));
  p += sizeof(magic) + sizeof(version);
  remaining -= sizeof(magic) + sizeof(version);
  if (magic != kMagic) {
    return Status::DataLoss("checkpoint '" + path + "': bad magic");
  }
  if (version != kVersion) {
    return Status::DataLoss("checkpoint '" + path +
                            "': unsupported version " +
                            std::to_string(version));
  }

  sections->clear();
  bool terminated = false;
  while (remaining > 0) {
    uint32_t tag = 0;
    uint64_t len = 0;
    if (remaining < sizeof(tag) + sizeof(len)) {
      return Status::DataLoss("checkpoint '" + path +
                              "': truncated section header");
    }
    std::memcpy(&tag, p, sizeof(tag));
    std::memcpy(&len, p + sizeof(tag), sizeof(len));
    p += sizeof(tag) + sizeof(len);
    remaining -= sizeof(tag) + sizeof(len);
    if (len > remaining || remaining - len < sizeof(uint32_t)) {
      return Status::DataLoss("checkpoint '" + path +
                              "': section length exceeds file");
    }
    uint32_t want = 0;
    std::memcpy(&want, p + len, sizeof(want));
    if (Crc32c(p, static_cast<size_t>(len)) != want) {
      return Status::DataLoss("checkpoint '" + path +
                              "': section CRC32C mismatch");
    }
    if (tag == kTagEnd) {
      terminated = true;
      break;
    }
    sections->push_back(Section{tag, p, len});
    p += len + sizeof(uint32_t);
    remaining -= len + sizeof(uint32_t);
  }
  if (!terminated) {
    return Status::DataLoss("checkpoint '" + path +
                            "': missing ENDS footer (writer died mid-file)");
  }
  return Status::OK();
}

Status CheckTensorSection(const Section& s, uint32_t want_tag,
                          const Tensor& t, const std::string& what) {
  if (s.tag != want_tag) {
    return Status::DataLoss("checkpoint: unexpected section order at " + what);
  }
  TensorHeader hdr;
  if (s.len != sizeof(hdr) + static_cast<uint64_t>(t.size()) * sizeof(float)) {
    return Status::DataLoss("checkpoint: payload size mismatch at " + what);
  }
  std::memcpy(&hdr, s.payload, sizeof(hdr));
  if (hdr.rows != t.rows() || hdr.cols != t.cols()) {
    return Status::DataLoss("checkpoint: shape mismatch at " + what +
                            " (snapshot " + std::to_string(hdr.rows) + "x" +
                            std::to_string(hdr.cols) + ", live " +
                            std::to_string(t.rows()) + "x" +
                            std::to_string(t.cols()) + ")");
  }
  return Status::OK();
}

void LoadTensorSection(const Section& s, Tensor* t) {
  std::memcpy(t->data(), s.payload + sizeof(TensorHeader),
              static_cast<size_t>(t->size()) * sizeof(float));
}

}  // namespace

Status SaveCheckpoint(const std::string& path, GnnModel* model,
                      const Adam& adam, int64_t epoch) {
  const std::vector<Tensor*> params = model->AllParams();
  if (static_cast<int64_t>(params.size()) != adam.num_params()) {
    return Status::Invalid(
        "SaveCheckpoint: model/optimizer parameter count mismatch");
  }
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IoError("checkpoint open '" + tmp +
                           "': " + std::strerror(errno));
  }
  Status st = [&]() -> Status {
    HT_RETURN_IF_ERROR(WriteAll(fd, &kMagic, sizeof(kMagic)));
    HT_RETURN_IF_ERROR(WriteAll(fd, &kVersion, sizeof(kVersion)));
    MetaPayload meta;
    meta.epoch = epoch;
    meta.adam_step = adam.step_count();
    meta.num_params = static_cast<uint32_t>(params.size());
    const Part meta_part{&meta, sizeof(meta)};
    HT_RETURN_IF_ERROR(WriteSection(fd, kTagMeta, &meta_part, 1));
    for (size_t i = 0; i < params.size(); ++i) {
      const int idx = static_cast<int>(i);
      HT_RETURN_IF_ERROR(WriteTensorSection(fd, kTagParam, *params[i]));
      HT_RETURN_IF_ERROR(
          WriteTensorSection(fd, kTagMoment1, adam.moment1(idx)));
      HT_RETURN_IF_ERROR(
          WriteTensorSection(fd, kTagMoment2, adam.moment2(idx)));
    }
    HT_RETURN_IF_ERROR(WriteSection(fd, kTagEnd, nullptr, 0));
    if (::fsync(fd) != 0) {
      return Status::IoError(std::string("checkpoint fsync: ") +
                             std::strerror(errno));
    }
    return Status::OK();
  }();
  ::close(fd);
  if (!st.ok()) {
    ::unlink(tmp.c_str());
    return st;
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return Status::IoError("checkpoint rename to '" + path +
                           "': " + std::strerror(errno));
  }
  // The rename must itself be durable before the snapshot counts.
  return FsyncPath(DirOf(path), /*directory=*/true);
}

Status RestoreCheckpoint(const std::string& path, GnnModel* model, Adam* adam,
                         int64_t* epoch) {
  const std::vector<Tensor*> params = model->AllParams();
  if (static_cast<int64_t>(params.size()) != adam->num_params()) {
    return Status::Invalid(
        "RestoreCheckpoint: model/optimizer parameter count mismatch");
  }
  std::vector<uint8_t> image;
  std::vector<Section> sections;
  HT_RETURN_IF_ERROR(ParseSnapshot(path, &image, &sections));

  // Validate everything against the live model before touching any state:
  // a rejected snapshot must leave the run exactly as it was.
  if (sections.empty() || sections[0].tag != kTagMeta ||
      sections[0].len != sizeof(MetaPayload)) {
    return Status::DataLoss("checkpoint '" + path + "': missing META");
  }
  MetaPayload meta;
  std::memcpy(&meta, sections[0].payload, sizeof(meta));
  if (meta.num_params != params.size() ||
      sections.size() != 1 + 3 * params.size()) {
    return Status::DataLoss("checkpoint '" + path +
                            "': parameter count mismatch");
  }
  for (size_t i = 0; i < params.size(); ++i) {
    const int idx = static_cast<int>(i);
    const std::string what = "param " + std::to_string(i);
    HT_RETURN_IF_ERROR(CheckTensorSection(sections[1 + 3 * i], kTagParam,
                                          *params[i], what));
    HT_RETURN_IF_ERROR(CheckTensorSection(sections[2 + 3 * i], kTagMoment1,
                                          adam->moment1(idx), what));
    HT_RETURN_IF_ERROR(CheckTensorSection(sections[3 + 3 * i], kTagMoment2,
                                          adam->moment2(idx), what));
  }

  for (size_t i = 0; i < params.size(); ++i) {
    const int idx = static_cast<int>(i);
    LoadTensorSection(sections[1 + 3 * i], params[i]);
    LoadTensorSection(sections[2 + 3 * i], adam->mutable_moment1(idx));
    LoadTensorSection(sections[3 + 3 * i], adam->mutable_moment2(idx));
  }
  adam->set_step_count(meta.adam_step);
  *epoch = meta.epoch;
  return Status::OK();
}

Status CheckpointManager::Save(GnnModel* model, const Adam& adam,
                               int64_t epoch) {
  // Rotate the last good snapshot aside first. If the process dies between
  // the rotation and the install, Restore finds only the previous snapshot
  // and resumes one epoch earlier — never from nothing.
  struct stat sb;
  if (::stat(PrimaryPath().c_str(), &sb) == 0) {
    if (::rename(PrimaryPath().c_str(), PreviousPath().c_str()) != 0) {
      return Status::IoError("checkpoint rotate: " +
                             std::string(std::strerror(errno)));
    }
  }
  return SaveCheckpoint(PrimaryPath(), model, adam, epoch);
}

Result<int64_t> CheckpointManager::Restore(GnnModel* model, Adam* adam) {
  int64_t epoch = 0;
  const Status primary = RestoreCheckpoint(PrimaryPath(), model, adam, &epoch);
  if (primary.ok()) return epoch;
  const Status previous =
      RestoreCheckpoint(PreviousPath(), model, adam, &epoch);
  if (previous.ok()) {
    if (degrade_ != nullptr) {
      degrade_->Record(fault::DegradeEvent::kCheckpointFallback,
                       "primary snapshot unusable (" + primary.ToString() +
                           "), resumed from " + PreviousPath());
    }
    return epoch;
  }
  if (primary.IsNotFound() && previous.IsNotFound()) {
    return Status::NotFound("no checkpoint in '" + dir_ + "'");
  }
  return Status::DataLoss("no usable checkpoint in '" + dir_ +
                          "': primary: " + primary.ToString() +
                          "; previous: " + previous.ToString());
}

}  // namespace hongtu
