/// \file inmemory_engine.h
/// \brief All-in-GPU full-graph training (the DGL / Sancus / HongTu-IM role
/// in Tables 5 and 6).
///
/// Keeps every layer's vertex representations, gradients AND stored
/// intermediates resident in device memory (original training, Fig. 4a).
/// With one device it models DGL; with several it models Sancus/HongTu-IM:
/// vertex data is metis-partitioned across devices and remote neighbor
/// aggregation costs inter-GPU traffic. Exceeding the aggregate capacity
/// returns OutOfMemory — the OOM cells of Table 6.
///
/// Numerically this engine is the *reference*: it trains on the dense full
/// graph in one shot, so equivalence tests compare HongTuEngine against it.

#pragma once

#include <memory>
#include <vector>

#include "hongtu/engine/engine.h"
#include "hongtu/gnn/loss.h"
#include "hongtu/gnn/model.h"
#include "hongtu/graph/datasets.h"
#include "hongtu/partition/two_level.h"

namespace hongtu {

// InMemoryOptions is an alias of the flattened EngineConfig (engine.h);
// this engine consults edge_schedules and partition_seed.

class InMemoryEngine : public Engine {
 public:
  static Result<std::unique_ptr<InMemoryEngine>> Create(
      const Dataset* dataset, ModelConfig model_config,
      InMemoryOptions options);

  /// One epoch; fails with OutOfMemory when the training state does not fit
  /// the devices.
  Result<EpochStats> TrainEpoch();

  // ---- Engine interface ----------------------------------------------------
  Result<EpochStats> RunEpoch() override { return TrainEpoch(); }
  Result<double> EvaluateAccuracy(SplitRole role) override;
  const char* name() const override { return "inmemory"; }

  /// Final-layer logits from the last forward (for tests).
  const Tensor& logits() const { return h_.back(); }
  GnnModel* model() override { return &model_; }
  SimPlatform* platform() override { return platform_.get(); }

 private:
  InMemoryEngine() = default;

  Status ForwardPass(bool store_ctx);
  Status ReserveResidentMemory();

  const Dataset* ds_ = nullptr;
  InMemoryOptions options_;
  GnnModel model_;
  Adam adam_;
  std::unique_ptr<SimPlatform> platform_;

  Chunk full_chunk_;  ///< the whole graph as one chunk (identity src space)
  /// Compiled aggregation schedules of the full chunk (null when disabled or
  /// not affordable) and their device registration.
  std::unique_ptr<ChunkSchedules> sched_;
  DeviceAllocation sched_alloc_;
  std::vector<Tensor> h_;  ///< resident h^l
  std::vector<std::unique_ptr<LayerCtx>> ctx_;
  std::vector<DeviceAllocation> resident_;
  /// Replication factor of the m-way partition; drives inter-GPU traffic.
  double alpha_m_ = 1.0;
};

}  // namespace hongtu
