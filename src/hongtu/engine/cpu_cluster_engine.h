/// \file cpu_cluster_engine.h
/// \brief DistGNN-style distributed CPU full-graph training model (the
/// CPU rows of Tables 5 and 7).
///
/// The paper runs DistGNN on a 16-node cluster (56 vCPU + 512 GB per node,
/// 20 Gbps network). No such cluster exists here, so this engine is a
/// calibrated analytic model over the metis-partitioned graph: per-node
/// memory (vertex + intermediate + neighbor-replica + communication-buffer
/// data) decides OOM, and epoch time is a CPU roofline plus network transfer
/// of boundary vertex data in both passes. The arithmetic kernels themselves
/// are shared with the other engines, so the cost formulas come from the
/// same Layer::*Cost methods.

#pragma once

#include <memory>
#include <vector>

#include "hongtu/engine/engine.h"
#include "hongtu/gnn/model.h"
#include "hongtu/graph/datasets.h"
#include "hongtu/partition/two_level.h"

namespace hongtu {

struct CpuClusterOptions {
  int num_nodes = 16;
  /// 512 GB/node scaled by the ~500x dataset scale-down (DESIGN.md §2).
  int64_t node_memory_bytes = 1ll << 30;
  double network_bandwidth = 20e9 / 8.0;  ///< 20 Gbps, bytes/s
  /// Effective per-node FLOP rate for sparse GNN kernels. CPUs sustain a
  /// small fraction of peak on irregular gather/scatter workloads.
  double node_flops = 60e9;
  double node_mem_bw = 50e9;
  /// Cluster scaling is poor for CPU full-graph training (synchronization,
  /// stragglers, MPI buffering): effective parallelism = nodes^exponent.
  /// Calibrated so 16 nodes give the ~2x aggregate throughput implied by
  /// the paper's DistGNN numbers (distribution buys memory, not speed).
  double scaling_exponent = 0.25;
  uint64_t partition_seed = 7;
};

class CpuClusterEngine {
 public:
  static Result<std::unique_ptr<CpuClusterEngine>> Create(
      const Dataset* dataset, ModelConfig model_config,
      CpuClusterOptions options);

  /// Per-epoch estimate; fails with OutOfMemory when a node cannot hold its
  /// share of the training state.
  Result<EpochStats> EstimateEpoch() const;

  /// Max bytes any node must hold (diagnostic).
  int64_t MaxNodeBytes() const;

 private:
  CpuClusterEngine() = default;

  const Dataset* ds_ = nullptr;
  CpuClusterOptions options_;
  GnnModel model_;
  /// Per node: owned vertices, owned edges, neighbor-set size.
  struct NodeShare {
    int64_t vertices = 0;
    int64_t edges = 0;
    int64_t neighbors = 0;
  };
  std::vector<NodeShare> shares_;
};

}  // namespace hongtu
