/// \file cpu_cluster_engine.h
/// \brief Distributed CPU full-graph training: a calibrated analytic model
/// (the CPU rows of Tables 5 and 7) and, under HONGTU_CLUSTER=tcp|uds, a
/// real multi-process cluster backend.
///
/// The paper runs DistGNN on a 16-node cluster (56 vCPU + 512 GB per node,
/// 20 Gbps network). No such cluster exists here, so by default this engine
/// is a calibrated analytic model over the metis-partitioned graph:
/// per-node memory (vertex + intermediate + neighbor-replica +
/// communication-buffer data) decides OOM, and epoch time is a CPU roofline
/// plus network transfer of boundary vertex data in both passes.
///
/// When `cluster_transport` is set ("tcp" or "uds", default from the
/// HONGTU_CLUSTER environment variable), the engine instead becomes real:
/// a ClusterCoordinator (net/cluster.h) forks one worker process per
/// partition, the workers exchange transition rows and gradients over the
/// resilient RPC transport along the owner-grouped dedup FetchPlans, and
/// RunEpoch returns measured wall-clock plus merged recovery counters. A
/// worker killed mid-epoch is detected by heartbeat/EOF, the epoch aborts,
/// state restores from the latest HTCK checkpoint, the worker respawns and
/// the epoch reruns — final weights bitwise-identical to an unkilled run.
/// Binaries using this mode must call net::MaybeRunClusterWorker() first
/// thing in main().

#pragma once

#include <memory>
#include <vector>

#include "hongtu/engine/engine.h"
#include "hongtu/gnn/model.h"
#include "hongtu/graph/datasets.h"
#include "hongtu/net/cluster.h"
#include "hongtu/partition/two_level.h"

namespace hongtu {

// CpuClusterOptions is an alias of the flattened EngineConfig (engine.h);
// this engine consults num_nodes, node_memory_bytes, network_bandwidth,
// node_flops, node_mem_bw, scaling_exponent, partition_seed and the
// cluster_* fields.

class CpuClusterEngine : public Engine {
 public:
  static Result<std::unique_ptr<CpuClusterEngine>> Create(
      const Dataset* dataset, ModelConfig model_config,
      CpuClusterOptions options);

  /// Per-epoch estimate; fails with OutOfMemory when a node cannot hold its
  /// share of the training state.
  Result<EpochStats> EstimateEpoch() const;

  // ---- Engine interface ----------------------------------------------------
  /// Analytic mode: the per-epoch estimate (no parameters are trained).
  /// Cluster mode: one real distributed epoch, measured wall-clock.
  Result<EpochStats> RunEpoch() override;
  Result<double> EvaluateAccuracy(SplitRole role) override;
  const char* name() const override {
    return coordinator_ ? "cpu-cluster-mp" : "cpu-cluster";
  }
  GnnModel* model() override {
    return coordinator_ ? coordinator_->model() : &model_;
  }
  Adam* adam() override {
    return coordinator_ ? coordinator_->adam() : nullptr;
  }
  fault::DegradationPolicy* degradation() override {
    return coordinator_ ? coordinator_->degradation() : nullptr;
  }

  /// Max bytes any node must hold (diagnostic).
  int64_t MaxNodeBytes() const;

  /// Null in analytic mode.
  net::ClusterCoordinator* coordinator() { return coordinator_.get(); }

 private:
  CpuClusterEngine() = default;

  const Dataset* ds_ = nullptr;
  CpuClusterOptions options_;
  GnnModel model_;
  /// Per node: owned vertices, owned edges, neighbor-set size.
  struct NodeShare {
    int64_t vertices = 0;
    int64_t edges = 0;
    int64_t neighbors = 0;
  };
  std::vector<NodeShare> shares_;
  /// Non-null when cluster_transport selected the real multi-process mode.
  std::unique_ptr<net::ClusterCoordinator> coordinator_;
};

}  // namespace hongtu
