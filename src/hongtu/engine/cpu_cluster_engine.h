/// \file cpu_cluster_engine.h
/// \brief DistGNN-style distributed CPU full-graph training model (the
/// CPU rows of Tables 5 and 7).
///
/// The paper runs DistGNN on a 16-node cluster (56 vCPU + 512 GB per node,
/// 20 Gbps network). No such cluster exists here, so this engine is a
/// calibrated analytic model over the metis-partitioned graph: per-node
/// memory (vertex + intermediate + neighbor-replica + communication-buffer
/// data) decides OOM, and epoch time is a CPU roofline plus network transfer
/// of boundary vertex data in both passes. The arithmetic kernels themselves
/// are shared with the other engines, so the cost formulas come from the
/// same Layer::*Cost methods.

#pragma once

#include <memory>
#include <vector>

#include "hongtu/engine/engine.h"
#include "hongtu/gnn/model.h"
#include "hongtu/graph/datasets.h"
#include "hongtu/partition/two_level.h"

namespace hongtu {

// CpuClusterOptions is an alias of the flattened EngineConfig (engine.h);
// this engine consults num_nodes, node_memory_bytes, network_bandwidth,
// node_flops, node_mem_bw, scaling_exponent and partition_seed.

class CpuClusterEngine : public Engine {
 public:
  static Result<std::unique_ptr<CpuClusterEngine>> Create(
      const Dataset* dataset, ModelConfig model_config,
      CpuClusterOptions options);

  /// Per-epoch estimate; fails with OutOfMemory when a node cannot hold its
  /// share of the training state.
  Result<EpochStats> EstimateEpoch() const;

  // ---- Engine interface ----------------------------------------------------
  /// An analytic model: RunEpoch is the per-epoch estimate (no parameters
  /// are trained).
  Result<EpochStats> RunEpoch() override { return EstimateEpoch(); }
  Result<double> EvaluateAccuracy(SplitRole role) override;
  const char* name() const override { return "cpu-cluster"; }
  GnnModel* model() override { return &model_; }

  /// Max bytes any node must hold (diagnostic).
  int64_t MaxNodeBytes() const;

 private:
  CpuClusterEngine() = default;

  const Dataset* ds_ = nullptr;
  CpuClusterOptions options_;
  GnnModel model_;
  /// Per node: owned vertices, owned edges, neighbor-set size.
  struct NodeShare {
    int64_t vertices = 0;
    int64_t edges = 0;
    int64_t neighbors = 0;
  };
  std::vector<NodeShare> shares_;
};

}  // namespace hongtu
