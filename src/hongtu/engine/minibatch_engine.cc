#include "hongtu/engine/minibatch_engine.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <numeric>

#include "hongtu/common/parallel.h"

namespace hongtu {

namespace {
constexpr int64_t kF32 = static_cast<int64_t>(sizeof(float));

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void GatherRows(const Tensor& host, const std::vector<VertexId>& rows,
                Tensor* out) {
  const int64_t dim = host.cols();
  *out = Tensor(static_cast<int64_t>(rows.size()), dim);
  for (size_t r = 0; r < rows.size(); ++r) {
    std::memcpy(out->row(static_cast<int64_t>(r)), host.row(rows[r]),
                static_cast<size_t>(dim) * sizeof(float));
  }
}

}  // namespace

Chunk SampleChunk(const Graph& g, std::vector<VertexId> dst_vertices,
                  int fanout, Rng* rng) {
  std::sort(dst_vertices.begin(), dst_vertices.end());
  // Pick sampled edge positions per destination.
  std::vector<std::vector<EdgeId>> picked(dst_vertices.size());
  for (size_t d = 0; d < dst_vertices.size(); ++d) {
    const VertexId v = dst_vertices[d];
    const EdgeId e0 = g.in_offsets()[v], e1 = g.in_offsets()[v + 1];
    const int64_t deg = e1 - e0;
    auto& out = picked[d];
    if (deg <= fanout) {
      for (EdgeId e = e0; e < e1; ++e) out.push_back(e);
    } else {
      // Partial Fisher-Yates over edge offsets.
      std::vector<EdgeId> idx(static_cast<size_t>(deg));
      std::iota(idx.begin(), idx.end(), e0);
      for (int k = 0; k < fanout; ++k) {
        const size_t r =
            k + static_cast<size_t>(rng->NextInt(deg - k));
        std::swap(idx[k], idx[r]);
        out.push_back(idx[k]);
      }
      // Keep the self-loop so the destination feeds its own update.
      bool has_self = false;
      for (EdgeId e : out) {
        if (g.in_neighbors()[e] == v) has_self = true;
      }
      if (!has_self) {
        for (EdgeId e = e0; e < e1; ++e) {
          if (g.in_neighbors()[e] == v) {
            out.back() = e;
            break;
          }
        }
      }
      std::sort(out.begin(), out.end());
    }
  }

  Chunk c;
  c.partition_id = 0;
  c.chunk_id = 0;
  c.dst_vertices = std::move(dst_vertices);
  for (auto& edges : picked) {
    for (EdgeId e : edges) c.neighbors.push_back(g.in_neighbors()[e]);
  }
  std::sort(c.neighbors.begin(), c.neighbors.end());
  c.neighbors.erase(std::unique(c.neighbors.begin(), c.neighbors.end()),
                    c.neighbors.end());
  auto local_of = [&](VertexId u) {
    return static_cast<int32_t>(
        std::lower_bound(c.neighbors.begin(), c.neighbors.end(), u) -
        c.neighbors.begin());
  };
  c.in_offsets.assign(c.dst_vertices.size() + 1, 0);
  for (size_t d = 0; d < picked.size(); ++d) {
    c.in_offsets[d + 1] =
        c.in_offsets[d] + static_cast<int64_t>(picked[d].size());
  }
  c.nbr_idx.resize(static_cast<size_t>(c.in_offsets.back()));
  c.in_weights.resize(static_cast<size_t>(c.in_offsets.back()));
  for (size_t d = 0; d < picked.size(); ++d) {
    int64_t o = c.in_offsets[d];
    for (EdgeId e : picked[d]) {
      c.nbr_idx[o] = local_of(g.in_neighbors()[e]);
      c.in_weights[o] = g.in_weights()[e];
      ++o;
    }
  }
  c.self_idx.resize(c.dst_vertices.size());
  for (size_t d = 0; d < c.dst_vertices.size(); ++d) {
    const VertexId v = c.dst_vertices[d];
    const auto it = std::lower_bound(c.neighbors.begin(), c.neighbors.end(), v);
    c.self_idx[d] = (it != c.neighbors.end() && *it == v)
                        ? static_cast<int32_t>(it - c.neighbors.begin())
                        : -1;
  }
  // Source-major mirror.
  c.src_offsets.assign(c.neighbors.size() + 1, 0);
  for (int64_t e = 0; e < c.num_edges(); ++e) c.src_offsets[c.nbr_idx[e] + 1]++;
  for (size_t s = 0; s < c.neighbors.size(); ++s) {
    c.src_offsets[s + 1] += c.src_offsets[s];
  }
  c.dst_idx.resize(static_cast<size_t>(c.num_edges()));
  c.src_weights.resize(static_cast<size_t>(c.num_edges()));
  c.src_edge_idx.resize(static_cast<size_t>(c.num_edges()));
  std::vector<int64_t> cur(c.src_offsets.begin(), c.src_offsets.end() - 1);
  for (size_t d = 0; d < c.dst_vertices.size(); ++d) {
    for (int64_t e = c.in_offsets[d]; e < c.in_offsets[d + 1]; ++e) {
      const int32_t s = c.nbr_idx[e];
      c.dst_idx[cur[s]] = static_cast<int32_t>(d);
      c.src_weights[cur[s]] = c.in_weights[e];
      c.src_edge_idx[cur[s]] = static_cast<int32_t>(e);
      ++cur[s];
    }
  }
  return c;
}

Result<std::unique_ptr<MiniBatchEngine>> MiniBatchEngine::Create(
    const Dataset* dataset, ModelConfig model_config, MiniBatchOptions options) {
  if (dataset == nullptr) {
    return Status::Invalid("MiniBatchEngine: null dataset");
  }
  if (model_config.dims.empty() ||
      model_config.dims.front() != dataset->feature_dim()) {
    return Status::Invalid("MiniBatchEngine: model input dim must match "
                           "dataset feature dim");
  }
  auto engine = std::unique_ptr<MiniBatchEngine>(new MiniBatchEngine());
  engine->ds_ = dataset;
  engine->options_ = options;
  HT_ASSIGN_OR_RETURN(engine->model_, GnnModel::Create(model_config));
  engine->adam_ = Adam(options.adam);
  for (Tensor* p : engine->model_.AllParams()) engine->adam_.Register(p);
  engine->platform_ = std::make_unique<SimPlatform>(
      options.num_devices, options.device_capacity_bytes,
      options.interconnect);
  std::vector<VertexId> all(dataset->graph.num_vertices());
  std::iota(all.begin(), all.end(), 0);
  engine->full_chunk_ = ExtractChunk(dataset->graph, std::move(all), 0, 0);
  return engine;
}

Result<EpochStats> MiniBatchEngine::TrainEpoch() {
  const double w0 = NowSeconds();
  platform_->ResetEpoch();
  platform_->ResetPeaks();
  const int L = model_.num_layers();
  const int m = options_.num_devices;

  std::vector<VertexId> train = ds_->VerticesWithRole(SplitRole::kTrain);
  Rng rng(options_.seed * 1315423911ull + (++epoch_counter_));
  for (size_t i = train.size(); i > 1; --i) {
    std::swap(train[i - 1], train[rng.NextInt(i)]);
  }

  double loss_sum = 0.0, acc_sum = 0.0;
  int num_batches = 0;
  for (size_t begin = 0; begin < train.size();
       begin += static_cast<size_t>(options_.batch_size)) {
    const size_t end =
        std::min(train.size(), begin + static_cast<size_t>(options_.batch_size));
    std::vector<VertexId> targets(train.begin() + begin, train.begin() + end);
    const int dev = num_batches % m;
    ++num_batches;

    // ---- Layered neighbor sampling (blocks), from the top down.
    std::vector<Chunk> blocks(L);
    std::vector<VertexId> frontier = targets;
    for (int l = L - 1; l >= 0; --l) {
      blocks[l] = SampleChunk(ds_->graph, frontier, options_.fanout, &rng);
      frontier = blocks[l].neighbors;
    }

    // ---- Device memory: input features + per-layer blocks and contexts.
    int64_t working = static_cast<int64_t>(frontier.size()) *
                      model_.config().dims[0] * kF32;

    // ---- Forward with stored intermediates.
    std::vector<Tensor> hb(L + 1);
    GatherRows(ds_->features, frontier, &hb[0]);
    platform_->AddH2D(dev, hb[0].bytes());
    std::vector<std::unique_ptr<LayerCtx>> ctx(L);
    Status oom = Status::OK();
    for (int l = 0; l < L && oom.ok(); ++l) {
      Layer* layer = model_.layer(l);
      const LocalGraph lg = LocalGraph::FromChunk(blocks[l]);
      Tensor dst_h;
      HT_RETURN_IF_ERROR(layer->ForwardStore(lg, hb[l], &dst_h, &ctx[l]));
      hb[l + 1] = std::move(dst_h);
      working += hb[l + 1].bytes() + ctx[l]->bytes();
      double flops = 0, bytes = 0;
      layer->ForwardCost(lg, &flops, &bytes);
      platform_->AddGpuCompute(dev, flops, bytes);
      oom = platform_->device(dev).Allocate(0, "probe");
    }
    HT_RETURN_IF_ERROR(
        platform_->device(dev).Allocate(working, "mini-batch working set"));
    DeviceAllocation guard(&platform_->device(dev), working);

    // ---- Loss over the batch targets (they are the rows of hb[L]).
    model_.ZeroGrads();
    std::vector<VertexId> rows(targets.size());
    std::iota(rows.begin(), rows.end(), 0);
    std::vector<int32_t> batch_labels(targets.size());
    // blocks[L-1].dst_vertices is sorted; map labels accordingly.
    for (size_t r = 0; r < targets.size(); ++r) {
      batch_labels[r] = ds_->labels[blocks[L - 1].dst_vertices[r]];
    }
    Tensor d_next(hb[L].rows(), hb[L].cols());
    LossResult lr = SoftmaxCrossEntropy(hb[L], batch_labels, rows, &d_next);
    loss_sum += lr.loss;
    acc_sum += lr.accuracy;

    // ---- Backward through the blocks.
    for (int l = L - 1; l >= 0; --l) {
      Layer* layer = model_.layer(l);
      const LocalGraph lg = LocalGraph::FromChunk(blocks[l]);
      Tensor d_src(lg.num_src, layer->in_dim());
      HT_RETURN_IF_ERROR(
          layer->BackwardStored(lg, *ctx[l], hb[l], d_next, &d_src));
      double flops = 0, bytes = 0;
      layer->BackwardCost(lg, /*cached=*/true, &flops, &bytes);
      platform_->AddGpuCompute(dev, flops, bytes);
      d_next = std::move(d_src);
    }

    std::vector<const Tensor*> grads;
    for (Tensor* g : model_.AllGrads()) grads.push_back(g);
    HT_RETURN_IF_ERROR(adam_.Step(grads));
  }
  platform_->Synchronize();

  EpochStats stats;
  stats.loss = num_batches > 0 ? loss_sum / num_batches : 0.0;
  stats.train_accuracy = num_batches > 0 ? acc_sum / num_batches : 0.0;
  stats.time = platform_->time();
  stats.bytes = platform_->bytes();
  stats.peak_device_bytes = platform_->MaxDevicePeak();
  stats.wall_seconds = NowSeconds() - w0;
  return stats;
}

Result<double> MiniBatchEngine::EvaluateAccuracy(SplitRole role) {
  const int L = model_.num_layers();
  const LocalGraph lg = LocalGraph::FromChunk(full_chunk_);
  Tensor h;
  for (int l = 0; l < L; ++l) {
    // Layer 0 reads the feature matrix in place — no copy of the largest
    // tensor in the system just to feed a read-only pass.
    const Tensor& src = l == 0 ? ds_->features : h;
    Tensor next;
    HT_RETURN_IF_ERROR(model_.layer(l)->Forward(lg, src, &next, nullptr));
    h = std::move(next);
  }
  return Accuracy(h, ds_->labels, ds_->VerticesWithRole(role));
}

}  // namespace hongtu
