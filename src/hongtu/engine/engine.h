/// \file engine.h
/// \brief Shared training-engine types: per-epoch statistics and the common
/// platform options every engine accepts.
///
/// Four engines reproduce the paper's evaluated systems:
///  - HongTuEngine     (engine/hongtu_engine.h)   — the paper's contribution
///  - InMemoryEngine   (engine/inmemory_engine.h) — DGL / Sancus / HongTu-IM
///  - MiniBatchEngine  (engine/minibatch_engine.h)— DistDGL-style sampling
///  - CpuClusterEngine (engine/cpu_cluster_engine.h) — DistGNN-style CPU
/// All run real float32 numerics on the host; device memory, link traffic
/// and kernel time follow the simulated platform (src/sim).

#pragma once

#include <cstdint>
#include <cstdlib>
#include <string>

#include "hongtu/common/fault.h"
#include "hongtu/kernels/codec.h"
#include "hongtu/sim/interconnect.h"
#include "hongtu/tensor/adam.h"

namespace hongtu {

/// Everything a benchmark needs from one training epoch.
struct EpochStats {
  double loss = 0.0;
  double train_accuracy = 0.0;
  TimeBreakdown time;         ///< simulated platform time (Fig. 9 components)
  ByteCounters bytes;         ///< link traffic
  int64_t peak_device_bytes = 0;  ///< max per-device memory watermark
  double wall_seconds = 0.0;  ///< real host wall-clock (diagnostic)

  // ---- Host tensor-pool metering (tensor/pool.h) for this epoch. In steady
  // state (epoch >= 2) a pooled engine's chunk loops perform zero heap
  // allocations, so host_alloc_count drops to 0 while host_pool_hits counts
  // the recycled buffers.
  int64_t host_peak_bytes = 0;   ///< peak live host tensor bytes
  int64_t host_alloc_count = 0;  ///< heap allocations (pool misses)
  int64_t host_pool_hits = 0;    ///< pool free-list hits

  /// Graceful-degradation events this epoch (common/fault.h): retries,
  /// integrity refetches, pipeline->serial replays, OOM/schedule fallbacks.
  /// All zero on a clean epoch; tests assert on these to prove a recovery
  /// path actually fired (and benchmarks report them next to the timings).
  fault::RecoveryCounters recovery;

  /// Critical-path epoch time. The `time` components are per-resource busy
  /// seconds; under the pipelined executor their sum double-counts what ran
  /// concurrently, and total() subtracts that (see TimeBreakdown).
  double SimSeconds() const { return time.total(); }
  /// Busy seconds hidden by comm/compute overlap (0 on the serial path).
  double OverlapSeconds() const { return time.overlapped; }
};

/// Default of EngineOptions::wire_integrity: on unless
/// HONGTU_WIRE_INTEGRITY=0 (a CI/benchmark hook).
inline bool DefaultWireIntegrity() {
  const char* s = std::getenv("HONGTU_WIRE_INTEGRITY");
  return s == nullptr || std::string(s) != "0";
}

/// Platform options common to the GPU-based engines.
struct EngineOptions {
  int num_devices = 4;
  /// Per-device memory capacity. The default models an A100's 80 GB scaled
  /// by the ~500x dataset scale-down (see DESIGN.md §2).
  int64_t device_capacity_bytes = 160ll << 20;
  InterconnectParams interconnect;
  AdamOptions adam;
  /// Wire precision of vertex-row communication (kernels/codec.h): fp32 =
  /// today's bit-exact transfers; bf16/fp16 halve every wire byte while all
  /// accumulation stays fp32. HongTuEngine runs the full mixed-precision
  /// data path (compressed transition payloads, convert-on-copy fetch,
  /// quantized row streams); InMemoryEngine scales its replica-exchange
  /// traffic model; the sampling engines keep fp32. The default is fp32
  /// unless the HONGTU_COMM_PRECISION environment variable moves it (a CI
  /// hook); explicit assignments always win.
  kernels::CommPrecision comm_precision = kernels::DefaultCommPrecision();
  /// Per-row CRC32C integrity words on every transition payload, verified
  /// at fetch time with repair-by-refetch (comm/executor.h). On by default;
  /// HONGTU_WIRE_INTEGRITY=0 turns it off (explicit assignments win).
  bool wire_integrity = DefaultWireIntegrity();
};

}  // namespace hongtu
