/// \file engine.h
/// \brief The unified training-engine API: per-epoch statistics, the common
/// options surface, and the abstract `Engine` interface with its factory.
///
/// Four engines reproduce the paper's evaluated systems:
///  - HongTuEngine     (engine/hongtu_engine.h)   — the paper's contribution
///  - InMemoryEngine   (engine/inmemory_engine.h) — DGL / Sancus / HongTu-IM
///  - MiniBatchEngine  (engine/minibatch_engine.h)— DistDGL-style sampling
///  - CpuClusterEngine (engine/cpu_cluster_engine.h) — DistGNN-style CPU
/// All run real float32 numerics on the host; device memory, link traffic
/// and kernel time follow the simulated platform (src/sim).
///
/// They share one entry point: `Engine::Create(kind, dataset, model, config)`
/// returns an `Engine*` whose `RunEpoch()` / `EvaluateAccuracy()` signatures
/// are identical across kinds, and `EngineConfig` is the one flattened
/// options struct (engine-specific knobs are simply ignored by engines they
/// do not apply to). The concrete Create functions remain available for
/// callers that need engine-specific accessors (dedup plans, logits, ...).
///
/// Executor policy lives in `EngineOptions::executor` + `max_inflight`
/// (common/config.h). The old `pipeline_depth` knob survives only as a
/// deprecated alias on EngineConfig — see its comment for the mapping.

#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "hongtu/comm/dedup_plan.h"
#include "hongtu/common/config.h"
#include "hongtu/common/fault.h"
#include "hongtu/gnn/model.h"
#include "hongtu/kernels/codec.h"
#include "hongtu/sim/interconnect.h"
#include "hongtu/tensor/adam.h"

namespace hongtu {

struct Dataset;
enum class SplitRole : uint8_t;

/// Everything a benchmark needs from one training epoch.
struct EpochStats {
  double loss = 0.0;
  double train_accuracy = 0.0;
  TimeBreakdown time;         ///< simulated platform time (Fig. 9 components)
  ByteCounters bytes;         ///< link traffic
  int64_t peak_device_bytes = 0;  ///< max per-device memory watermark
  double wall_seconds = 0.0;  ///< real host wall-clock (diagnostic)

  // ---- Host tensor-pool metering (tensor/pool.h) for this epoch. In steady
  // state (epoch >= 2) a pooled engine's chunk loops perform zero heap
  // allocations, so host_alloc_count drops to 0 while host_pool_hits counts
  // the recycled buffers.
  int64_t host_peak_bytes = 0;   ///< peak live host tensor bytes
  int64_t host_alloc_count = 0;  ///< heap allocations (pool misses)
  int64_t host_pool_hits = 0;    ///< pool free-list hits

  /// Graceful-degradation events this epoch (common/fault.h): retries,
  /// integrity refetches, pipeline->serial replays, OOM/schedule fallbacks.
  /// All zero on a clean epoch; tests assert on these to prove a recovery
  /// path actually fired (and benchmarks report them next to the timings).
  fault::RecoveryCounters recovery;

  /// Critical-path epoch time. The `time` components are per-resource busy
  /// seconds; under the concurrent executors their sum double-counts what
  /// ran concurrently, and total() subtracts that (see TimeBreakdown).
  double SimSeconds() const { return time.total(); }
  /// Busy seconds hidden by comm/compute overlap (0 on the serial path).
  double OverlapSeconds() const { return time.overlapped; }
};

/// Default of EngineOptions::wire_integrity: on unless
/// HONGTU_WIRE_INTEGRITY=0 (routed through the single parse point in
/// common/config.h).
inline bool DefaultWireIntegrity() {
  return RuntimeConfig::FromEnv().wire_integrity;
}

/// Platform options common to the GPU-based engines. This is a thin view
/// over RuntimeConfig (common/config.h): the runtime-policy fields below
/// default to the environment snapshot taken when the struct is constructed,
/// and explicit assignment always wins (explicit > env > default).
struct EngineOptions {
  int num_devices = 4;
  /// Per-device memory capacity. The default models an A100's 80 GB scaled
  /// by the ~500x dataset scale-down (see DESIGN.md §2).
  int64_t device_capacity_bytes = 160ll << 20;
  InterconnectParams interconnect;
  AdamOptions adam;
  /// Wire precision of vertex-row communication (kernels/codec.h): fp32 =
  /// today's bit-exact transfers; bf16/fp16 halve every wire byte while all
  /// accumulation stays fp32. HongTuEngine runs the full mixed-precision
  /// data path (compressed transition payloads, convert-on-copy fetch,
  /// quantized row streams); InMemoryEngine scales its replica-exchange
  /// traffic model; the sampling engines keep fp32. The default is fp32
  /// unless the HONGTU_COMM_PRECISION environment variable moves it (a CI
  /// hook); explicit assignments always win.
  kernels::CommPrecision comm_precision = kernels::DefaultCommPrecision();
  /// Per-row CRC32C integrity words on every transition payload, verified
  /// at fetch time with repair-by-refetch (comm/executor.h). On by default;
  /// HONGTU_WIRE_INTEGRITY=0 turns it off (explicit assignments win).
  bool wire_integrity = DefaultWireIntegrity();
  /// Which chunk executor HongTuEngine runs (other engines ignore it):
  /// serial, the 3-lane stage pipeline, or the dataflow task graph. Default
  /// pipeline, moved by HONGTU_EXECUTOR.
  ExecutorKind executor = RuntimeConfig::FromEnv().executor;
  /// In-flight chunk batches (buffer-slot tokens / pipeline window depth),
  /// clamped to the batch count at run time. Default 2, moved by
  /// HONGTU_MAX_INFLIGHT.
  int max_inflight = RuntimeConfig::FromEnv().max_inflight;
};

/// Which engine Engine::Create builds.
enum class EngineKind { kHongTu, kInMemory, kMiniBatch, kCpuCluster };

const char* EngineKindName(EngineKind k);
/// Parses "hongtu" / "inmemory" / "minibatch" / "cpu-cluster". Returns false
/// (out untouched) on anything else.
bool ParseEngineKind(const std::string& s, EngineKind* out);

/// The flattened options struct of the unified API: every engine-specific
/// knob under one roof, each ignored by the engines it does not apply to.
/// The per-engine option names (HongTuOptions, ...) are aliases of this
/// type, so existing call sites keep compiling unchanged.
struct EngineConfig : EngineOptions {
  // ---- HongTuEngine --------------------------------------------------------
  /// Chunks per partition (n). Tunes memory vs. communication (Fig. 10).
  int chunks_per_partition = 8;
  /// Fig. 9 ablation: kNone = Baseline, kP2P, kP2PReuse (full HongTu).
  DedupLevel dedup = DedupLevel::kP2PReuse;
  /// Run Algorithm 4 partition reorganization during preprocessing.
  bool reorganize = true;
  /// Use the recomputation-caching hybrid for cacheable layers (§4.2); when
  /// false every layer recomputes (the pure recomputation ablation).
  bool hybrid_cache = true;
  /// DEPRECATED alias of (executor, max_inflight); kept so pre-redesign call
  /// sites keep their meaning and warn once. < 0 (the default) = unset: the
  /// executor/max_inflight pair governs. >= 0 overrides the pair the way the
  /// old knob behaved: 0 or 1 -> serial, d >= 2 -> pipeline with
  /// max_inflight = d. Resolution happens in resolved_executor() /
  /// resolved_max_inflight(); engines only consult those.
  int pipeline_depth = -1;
  /// Compile per-(chunk, direction) edge schedules at setup so the
  /// aggregation kernels run the propagation-blocked (cache-banded,
  /// conflict-free-parallel) path. One-time preprocessing cost, metered
  /// against device memory; a device that cannot hold its schedules simply
  /// runs the single-pass kernels. False = always single-pass (A/B).
  /// (InMemoryEngine: full-graph schedules, metered against device 0.)
  bool edge_schedules = true;
  uint64_t partition_seed = 7;

  // ---- MiniBatchEngine -----------------------------------------------------
  int fanout = 10;       ///< sampled in-neighbors per vertex per layer (§7.1)
  int batch_size = 1024;
  uint64_t seed = 99;

  // ---- CpuClusterEngine ----------------------------------------------------
  int num_nodes = 16;
  /// 512 GB/node scaled by the ~500x dataset scale-down (DESIGN.md §2).
  int64_t node_memory_bytes = 1ll << 30;
  double network_bandwidth = 20e9 / 8.0;  ///< 20 Gbps, bytes/s
  /// Effective per-node FLOP rate for sparse GNN kernels. CPUs sustain a
  /// small fraction of peak on irregular gather/scatter workloads.
  double node_flops = 60e9;
  double node_mem_bw = 50e9;
  /// Cluster scaling is poor for CPU full-graph training (synchronization,
  /// stragglers, MPI buffering): effective parallelism = nodes^exponent.
  /// Calibrated so 16 nodes give the ~2x aggregate throughput implied by
  /// the paper's DistGNN numbers (distribution buys memory, not speed).
  double scaling_exponent = 0.25;

  // ---- Real multi-process cluster backend (net/cluster.h) ------------------
  /// "" keeps CpuClusterEngine analytic; "tcp" or "uds" makes it spawn one
  /// worker process per partition and train for real over the resilient RPC
  /// transport, with heartbeats, deadlines and crash-recovery resume.
  /// Default follows HONGTU_CLUSTER; explicit assignments win. Binaries
  /// that enable this must call net::MaybeRunClusterWorker() first thing in
  /// main() (workers re-exec the host binary).
  std::string cluster_transport = RuntimeConfig::FromEnv().cluster_transport;
  int cluster_workers = 4;  ///< worker processes (= partitions m)
  /// Checkpoint directory for the coordinator's epoch snapshots; empty =
  /// the run's scratch directory (removed on shutdown).
  std::string cluster_checkpoint_dir;
  /// Mid-epoch worker-death recovery rung: "step" (replay just the dead
  /// rank in-epoch, the default), "adopt" (a survivor hosts the dead
  /// partition for the rest of the epoch), or "epoch" (abort, restore the
  /// checkpoint, rerun — the coarsest ladder, and the fallback for the
  /// finer rungs).
  std::string cluster_recover_mode = "step";
  /// Stable directory for the coordinator's control sockets; empty = a
  /// fresh scratch directory. Must be set (with cluster_checkpoint_dir)
  /// for cluster_resume to find the previous incarnation's state.
  std::string cluster_runtime_dir;
  /// Resume a crashed coordinator: replay the cluster journal, re-attach
  /// surviving workers under a bumped term, adopt the in-flight epoch.
  bool cluster_resume = false;
  // Failure drills (CI smoke hooks; see net/cluster.h ClusterConfig).
  int cluster_kill_rank = -1;
  int64_t cluster_kill_epoch = -1;
  int cluster_fault_rank = -1;
  std::string cluster_worker_fault_spec;
  /// Coordinator self-SIGKILL after epoch N's reports are journaled but
  /// before the ack (the coordinator_kill_smoke drill). -1 = off.
  int64_t cluster_coord_kill_epoch = -1;

  /// The executor after applying the deprecated pipeline_depth alias (warns
  /// once per process when the alias is set).
  ExecutorKind resolved_executor() const;
  /// The in-flight window after the same resolution, always >= 1.
  int resolved_max_inflight() const;
  /// This config as a RuntimeConfig view (resolved executor fields; the
  /// process-scoped knobs — kernel backend, pool, fault spec — from
  /// RuntimeConfig::Process()). For Describe() dumps.
  RuntimeConfig runtime() const;
};

/// Pre-redesign per-engine option names; same type, kept as aliases.
using HongTuOptions = EngineConfig;
using InMemoryOptions = EngineConfig;
using MiniBatchOptions = EngineConfig;
using CpuClusterOptions = EngineConfig;

/// The abstract engine: identical RunEpoch/EvaluateAccuracy across all four
/// kinds. Accessors that not every engine supports (platform, model, adam,
/// degradation) default to nullptr.
class Engine {
 public:
  virtual ~Engine();

  /// One training epoch (forward + backward + update). CpuClusterEngine,
  /// an analytic model, returns its per-epoch estimate.
  virtual Result<EpochStats> RunEpoch() = 0;
  /// Forward-only accuracy over a split. NotImplemented on engines without
  /// trained parameters (CpuClusterEngine).
  virtual Result<double> EvaluateAccuracy(SplitRole role) = 0;

  virtual const char* name() const = 0;
  virtual SimPlatform* platform() { return nullptr; }
  virtual GnnModel* model() { return nullptr; }
  /// Optimizer state for checkpointing (engine/checkpoint.h).
  virtual Adam* adam() { return nullptr; }
  virtual fault::DegradationPolicy* degradation() { return nullptr; }

  /// The unified factory: builds the requested engine kind over `dataset`
  /// (which must outlive the engine).
  static Result<std::unique_ptr<Engine>> Create(EngineKind kind,
                                                const Dataset* dataset,
                                                ModelConfig model_config,
                                                const EngineConfig& config);
};

}  // namespace hongtu
