#include "hongtu/engine/hongtu_engine.h"

#include <algorithm>
#include <chrono>
#include <cstring>

#include "hongtu/common/logging.h"
#include "hongtu/common/parallel.h"
#include "hongtu/common/pipeline.h"
#include "hongtu/kernels/backend.h"

namespace hongtu {

namespace {

constexpr int64_t kF32 = static_cast<int64_t>(sizeof(float));

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Copies selected host rows into a dense device tensor, crossing the host
/// link at `wire` precision: fp32 is a plain memcpy, a 16-bit wire quantizes
/// each value once in passing (kernels/codec.h). The output is reshaped in
/// place (every row is overwritten), so a pre-sized workspace tensor never
/// reallocates. Fault site `device.h2d`: the copy is idempotent, so a
/// transient failure on this row stream retries in place.
Status GatherRows(const Tensor& host, const std::vector<VertexId>& rows,
                  Tensor* out, kernels::CommPrecision wire,
                  fault::DegradationPolicy* degrade) {
  return fault::RetryTransient(fault::DefaultRetryPolicy(), degrade, "device.h2d", [&] {
    HT_RETURN_IF_ERROR(fault::Poke(fault::Site::kDeviceH2D));
    const int64_t dim = host.cols();
    const kernels::Backend kb = kernels::ActiveBackend();
    out->EnsureShape(static_cast<int64_t>(rows.size()), dim);
    ParallelForChunked(0, static_cast<int64_t>(rows.size()),
                       [&](int64_t lo, int64_t hi) {
                         for (int64_t r = lo; r < hi; ++r) {
                           kernels::QuantizeCopyRows(kb, wire,
                                                     host.row(rows[r]), dim,
                                                     out->row(r));
                         }
                       });
    return Status::OK();
  });
}

/// Writes a dense device tensor back to selected host rows, crossing the
/// host link at `wire` precision (see GatherRows). Idempotent: target rows
/// are plain overwrites, so the same retry contract applies.
Status ScatterRows(const Tensor& dev, const std::vector<VertexId>& rows,
                   Tensor* host, kernels::CommPrecision wire,
                   fault::DegradationPolicy* degrade) {
  return fault::RetryTransient(fault::DefaultRetryPolicy(), degrade, "device.h2d", [&] {
    HT_RETURN_IF_ERROR(fault::Poke(fault::Site::kDeviceH2D));
    const int64_t dim = host->cols();
    const kernels::Backend kb = kernels::ActiveBackend();
    ParallelForChunked(0, static_cast<int64_t>(rows.size()),
                       [&](int64_t lo, int64_t hi) {
                         for (int64_t r = lo; r < hi; ++r) {
                           kernels::QuantizeCopyRows(kb, wire, dev.row(r), dim,
                                                     host->row(rows[r]));
                         }
                       });
    return Status::OK();
  });
}

/// Device scratch reservation with transient-failure retry (the `pool.alloc`
/// fault site fires inside SimDevice::Allocate). A real OutOfMemory result
/// is not transient and propagates immediately to the OOM-fallback logic.
Status AllocateWithRetry(SimDevice* dev, int64_t bytes, const std::string& tag,
                         fault::DegradationPolicy* degrade) {
  return fault::RetryTransient(fault::DefaultRetryPolicy(), degrade, "pool.alloc",
                               [&] { return dev->Allocate(bytes, tag); });
}

/// Per-batch device working set of a forward chunk: per-destination scratch
/// plus, for non-cacheable layers, the regenerated edge state.
int64_t ForwardScratchBytes(const Chunk& chunk, const Layer& layer) {
  return (chunk.num_dst() * (layer.agg_dim() + 2 * layer.out_dim()) +
          (layer.cacheable()
               ? 0
               : chunk.num_edges() * 3 +
                     chunk.num_neighbors() * layer.out_dim())) *
         kF32;
}

/// Per-batch device working set of a backward chunk. Neighbor-data and
/// neighbor-gradient rows live in the executor's merged comm buffers; only
/// per-destination scratch and (for the recompute path) regenerated edge
/// state count here.
int64_t BackwardScratchBytes(const Chunk& chunk, const Layer& layer,
                             bool cached) {
  return (chunk.num_dst() * (layer.agg_dim() + 3 * layer.out_dim()) +
          (cached ? 0
                  : chunk.num_edges() * 3 +
                        2 * chunk.num_neighbors() * layer.out_dim())) *
         kF32;
}

}  // namespace

Result<std::unique_ptr<HongTuEngine>> HongTuEngine::Create(
    const Dataset* dataset, ModelConfig model_config, HongTuOptions options) {
  if (dataset == nullptr) {
    return Status::Invalid("HongTuEngine: null dataset");
  }
  if (model_config.dims.empty() ||
      model_config.dims.front() != dataset->feature_dim()) {
    return Status::Invalid("HongTuEngine: model input dim must match dataset "
                           "feature dim");
  }
  auto engine = std::unique_ptr<HongTuEngine>(new HongTuEngine());
  engine->ds_ = dataset;
  engine->options_ = options;
  HT_ASSIGN_OR_RETURN(engine->model_, GnnModel::Create(model_config));
  engine->adam_ = Adam(options.adam);
  for (Tensor* p : engine->model_.AllParams()) engine->adam_.Register(p);

  // ---- Preprocessing: 2-level partition, reorganization, dedup plan.
  const double t0 = NowSeconds();
  TwoLevelOptions tlo;
  tlo.metis.seed = options.partition_seed;
  HT_ASSIGN_OR_RETURN(
      engine->tl_,
      BuildTwoLevelPartition(dataset->graph, options.num_devices,
                             options.chunks_per_partition, tlo));
  const double t1 = NowSeconds();
  if (options.reorganize && options.dedup != DedupLevel::kNone) {
    HT_RETURN_IF_ERROR(ReorganizePartition(&engine->tl_).status());
  }
  HT_ASSIGN_OR_RETURN(engine->plan_,
                      BuildDedupPlan(engine->tl_, options.dedup));
  const double t2 = NowSeconds();
  engine->partition_seconds_ = t1 - t0;
  engine->dedup_preprocess_seconds_ = t2 - t1;

  engine->platform_ = std::make_unique<SimPlatform>(
      options.num_devices, options.device_capacity_bytes,
      options.interconnect);
  engine->executor_ = std::make_unique<CommExecutor>(
      &engine->tl_, &engine->plan_, engine->platform_.get(),
      &engine->degrade_);

  // ---- Host buffers (Algorithm 1 line 3): h^l and grad h^l for all layers,
  // plus AGGREGATE checkpoints for cacheable layers under the hybrid policy.
  const int64_t nv = dataset->graph.num_vertices();
  const int L = engine->model_.num_layers();
  engine->h_.reserve(L + 1);
  engine->grad_.reserve(L + 1);
  for (int l = 0; l <= L; ++l) {
    engine->h_.emplace_back(nv, model_config.dims[l]);
    engine->grad_.emplace_back(nv, model_config.dims[l]);
  }
  HT_RETURN_IF_ERROR(engine->h_[0].CopyFrom(dataset->features));
  engine->cache_.resize(L);
  engine->use_cache_.resize(L);
  for (int l = 0; l < L; ++l) {
    Layer* layer = engine->model_.layer(l);
    engine->use_cache_[l] = options.hybrid_cache && layer->cacheable();
    if (engine->use_cache_[l]) {
      engine->cache_[l] = Tensor(nv, layer->agg_dim());
    }
  }
  engine->PresizeWorkspaces();
  if (options.edge_schedules) engine->BuildEdgeSchedules();
  return engine;
}

void HongTuEngine::BuildEdgeSchedules() {
  const int m = options_.num_devices;
  const int n = options_.chunks_per_partition;
  kernels::EdgeScheduleParams sp;
  sp.max_dim = 1;
  for (int d : model_.config().dims) sp.max_dim = std::max(sp.max_dim, d);
  scheds_.clear();
  scheds_.resize(static_cast<size_t>(m));
  sched_alloc_.clear();
  for (int i = 0; i < m; ++i) {
    // The schedules live in device memory next to the chunk topology they
    // permute. A device that cannot afford them keeps the single-pass
    // kernels — the schedules are an optimization, never a requirement —
    // and the capacity estimate runs *before* the builds, so an
    // over-capacity device pays nothing.
    if (platform_ != nullptr) {
      int64_t estimate = 0;
      for (int j = 0; j < n; ++j) {
        estimate += ChunkSchedules::EstimateBytes(tl_.chunks[i][j], sp);
      }
      SimDevice& dev = platform_->device(i);
      if (dev.used() + estimate > dev.capacity()) {
        degrade_.RecordSetup(
            fault::DegradeEvent::kScheduleFallback,
            "device " + std::to_string(i) +
                ": edge schedules do not fit, using single-pass kernels");
        continue;
      }
    }
    // Chunks compile independently — per-chunk parallel build keeps the
    // one-time preprocessing off the critical path at larger chunk counts
    // (ChunkSchedules::Build itself also fuses the two directions' counting
    // passes and parallelizes placement over shards).
    std::vector<ChunkSchedules> row(static_cast<size_t>(n));
    ParallelForChunked(0, n, /*serial_below=*/2, [&](int64_t lo, int64_t hi) {
      for (int64_t j = lo; j < hi; ++j) {
        row[static_cast<size_t>(j)] =
            ChunkSchedules::Build(tl_.chunks[i][j], sp);
      }
    });
    int64_t bytes = 0;
    for (int j = 0; j < n; ++j) bytes += row[static_cast<size_t>(j)].bytes();
    if (platform_ != nullptr) {
      // Cannot fail on capacity (bytes <= the estimate already checked
      // above), but an armed pool.alloc fault can still reject it — then
      // the device keeps the single-pass kernels like any other miss.
      if (!AllocateWithRetry(&platform_->device(i), bytes, "edge schedules",
                             &degrade_)
               .ok()) {
        degrade_.RecordSetup(
            fault::DegradeEvent::kScheduleFallback,
            "device " + std::to_string(i) +
                ": edge-schedule allocation rejected, using single-pass "
                "kernels");
        continue;
      }
      sched_alloc_.emplace_back(&platform_->device(i), bytes);
      platform_->AddScheduleBytes(bytes);
    }
    scheds_[static_cast<size_t>(i)] = std::move(row);
  }
}

void HongTuEngine::PresizeWorkspaces() {
  const int m = options_.num_devices;
  const int n = options_.chunks_per_partition;
  const int L = model_.num_layers();
  int64_t max_in = 0, max_out = 0, max_agg = 0;
  for (int l = 0; l < L; ++l) {
    const Layer* layer = model_.layer(l);
    max_in = std::max<int64_t>(max_in, layer->in_dim());
    max_out = std::max<int64_t>(max_out, layer->out_dim());
    max_agg = std::max<int64_t>(max_agg, layer->agg_dim());
  }
  ws_.resize(static_cast<size_t>(WorkspaceSlots()));
  for (SlotWorkspace& ws : ws_) {
    ws.out.resize(m);
    ws.agg.resize(m);
    ws.d_dst.resize(m);
    ws.dst_rows.resize(m);
    ws.d_src.resize(m);
    for (int i = 0; i < m; ++i) {
      int64_t max_dst = 0, max_nbr = 0;
      for (int j = 0; j < n; ++j) {
        max_dst = std::max(max_dst, tl_.chunks[i][j].num_dst());
        max_nbr = std::max(max_nbr, tl_.chunks[i][j].num_neighbors());
      }
      ws.out[i].EnsureShape(max_dst, max_out);
      ws.agg[i].EnsureShape(max_dst, max_agg);
      ws.d_dst[i].EnsureShape(max_dst, max_out);
      ws.dst_rows[i].EnsureShape(max_dst, max_in);
      ws.d_src[i].EnsureShape(max_nbr, max_in);
    }
  }
}

int HongTuEngine::EffectiveDepth() const {
  if (options_.resolved_executor() != ExecutorKind::kPipeline) return 0;
  const int d = std::min(options_.resolved_max_inflight(),
                         options_.chunks_per_partition);
  // A window of 1 in-flight batch cannot overlap anything (the stages
  // serialize through the depth bound), so running it inside an overlap
  // region would fabricate hidden seconds. Serial path instead.
  return d >= 2 ? d : 0;
}

int HongTuEngine::WorkspaceSlots() const {
  if (options_.resolved_executor() == ExecutorKind::kTaskGraph) {
    return std::max(
        1, std::min(options_.resolved_max_inflight(),
                    options_.chunks_per_partition));
  }
  return std::max(1, EffectiveDepth());
}

Status HongTuEngine::ForwardPass() {
  const int L = model_.num_layers();
  if (options_.resolved_executor() == ExecutorKind::kTaskGraph) {
    const Status st = ForwardPassTaskGraph();
    if (st.ok()) return st;
    HT_RETURN_IF_ERROR(DegradeToSerial(st, "forward task graph"));
    // Serial replay of the whole pass. Safe: forward h^{l+1}/cache writes
    // are idempotent overwrites, and the poisoned graph drained (skipped
    // nodes retire as no-ops) before its buffers were released.
    for (int l = 0; l < L; ++l) {
      HT_RETURN_IF_ERROR(ForwardLayerSerial(l));
    }
    return Status::OK();
  }
  for (int l = 0; l < L; ++l) {
    if (EffectiveDepth() > 0) {
      const Status st = ForwardLayerPipelined(l);
      if (st.ok()) continue;
      HT_RETURN_IF_ERROR(DegradeToSerial(st, "forward layer " +
                                                 std::to_string(l)));
      // Serial replay below. Safe and bitwise-identical: the forward's
      // h^{l+1}/cache writes are idempotent overwrites, and the poisoned
      // pipeline retired every batch (as no-ops past the failure point)
      // before RunPipelinedLayer released its buffers.
    }
    HT_RETURN_IF_ERROR(ForwardLayerSerial(l));
  }
  return Status::OK();
}

/// Decides what a failed pipelined layer means: OutOfMemory (the extra
/// in-flight working set did not fit) and *transient* causes (an injected
/// or real recoverable fault that poisoned the pipeline after its internal
/// retries) degrade to the serial loop — counted as distinct events;
/// anything else is a real error and propagates.
Status HongTuEngine::DegradeToSerial(const Status& st,
                                     const std::string& what) {
  if (st.IsOutOfMemory()) {
    degrade_.Record(fault::DegradeEvent::kPipelineOomFallback,
                    what + ": " + st.message());
    return Status::OK();
  }
  if (st.IsTransient()) {
    degrade_.Record(fault::DegradeEvent::kPipelineReplay,
                    what + ": " + st.message());
    return Status::OK();
  }
  return st;
}

Status HongTuEngine::ForwardLayerSerial(int l) {
  const int m = options_.num_devices;
  const int n = options_.chunks_per_partition;
  Layer* layer = model_.layer(l);
  SlotWorkspace& slot = ws_[0];
  const kernels::CommPrecision wire = options_.comm_precision;
  const int64_t eb = kernels::CommElemBytes(wire);
  HT_RETURN_IF_ERROR(executor_->BeginLayer(layer->in_dim(), 1, wire,
                                           options_.wire_integrity));
  for (int j = 0; j < n; ++j) {
    HT_RETURN_IF_ERROR(executor_->ForwardLoadSlot(j, 0, h_[l]));
    std::vector<Tensor>& nbr_bufs = executor_->slot_buffers(0);
    for (int i = 0; i < m; ++i) {
      const Chunk& chunk = tl_.chunks[i][j];
      if (chunk.num_dst() == 0) continue;
      const LocalGraph lg = LocalGraph::FromChunk(chunk, chunk_schedules(i, j));

      // Per-batch working memory on the device.
      const int64_t ws = ForwardScratchBytes(chunk, *layer);
      HT_RETURN_IF_ERROR(AllocateWithRetry(&platform_->device(i), ws,
                                           "fwd scratch", &degrade_));
      DeviceAllocation guard(&platform_->device(i), ws);

      Tensor& dst_h = slot.out[i];
      Tensor& agg = slot.agg[i];
      HT_RETURN_IF_ERROR(layer->Forward(
          lg, nbr_bufs[i], &dst_h, use_cache_[l] ? &agg : nullptr));

      // Copy the new representations back to host (Alg. 1 line 9).
      HT_RETURN_IF_ERROR(
          ScatterRows(dst_h, chunk.dst_vertices, &h_[l + 1], wire, &degrade_));
      platform_->AddH2D(i, chunk.num_dst() * layer->out_dim() * eb);
      if (use_cache_[l]) {
        // Cache the AGGREGATE checkpoint in host memory (§4.2).
        HT_RETURN_IF_ERROR(
            ScatterRows(agg, chunk.dst_vertices, &cache_[l], wire, &degrade_));
        platform_->AddH2D(i, chunk.num_dst() * layer->agg_dim() * eb);
      }
      double flops = 0, bytes = 0;
      layer->ForwardCost(lg, &flops, &bytes);
      platform_->AddGpuCompute(i, flops, bytes);
    }
    platform_->Synchronize();
  }
  executor_->EndLayer();
  return Status::OK();
}

Status HongTuEngine::RunPipelinedLayer(
    int in_dim, int comm_slots, int d,
    const std::function<int64_t(const Chunk&)>& scratch_bytes,
    StagePipeline::StageFn load, StagePipeline::StageFn compute,
    StagePipeline::StageFn store) {
  const int m = options_.num_devices;
  const int n = options_.chunks_per_partition;
  HT_RETURN_IF_ERROR(executor_->BeginLayer(
      in_dim, comm_slots, options_.comm_precision, options_.wire_integrity));

  // The compute stage must not race other stages for the device allocator,
  // so the whole layer reserves d worst-case chunk working sets up front.
  std::vector<DeviceAllocation> scratch;
  scratch.reserve(m);
  for (int i = 0; i < m; ++i) {
    int64_t ws = 0;
    for (int j = 0; j < n; ++j) {
      ws = std::max(ws, scratch_bytes(tl_.chunks[i][j]));
    }
    const Status st = AllocateWithRetry(&platform_->device(i), d * ws,
                                        "pipeline scratch", &degrade_);
    if (!st.ok()) {
      // Release the comm registrations before reporting: the serial
      // fallback's BeginLayer must see a clean device.
      executor_->EndLayer();
      return st;
    }
    scratch.emplace_back(&platform_->device(i), d * ws);
  }

  platform_->BeginOverlap(3);
  // Meter every item on every lane: the wall charge below replays the
  // in-order stage recurrence over these per-item costs, so the modeled
  // time honors what the lane totals alone hide — a stage cannot start an
  // item before the upstream stage finishes it, and batch j's buffer slot
  // (j mod d) frees only once batch j-d retires from the store stage.
  std::vector<std::vector<double>> item(
      3, std::vector<double>(static_cast<size_t>(n), 0.0));
  auto meter = [&](int lane, StagePipeline::StageFn fn) {
    return StagePipeline::StageFn(
        [this, lane, &item, fn = std::move(fn)](int64_t j) -> Status {
          const double before = platform_->LaneBusySeconds(lane);
          const Status st = fn(j);
          platform_->Synchronize();
          item[static_cast<size_t>(lane)][static_cast<size_t>(j)] =
              platform_->LaneBusySeconds(lane) - before;
          return st;
        });
  };
  Status st;
  {
    StagePipeline pipe(
        {meter(0, std::move(load)), meter(1, std::move(compute)),
         meter(2, std::move(store))},
        d);
    for (int j = 0; j < n; ++j) {
      if (!pipe.Submit(j).ok()) break;
    }
    st = pipe.Flush();
  }
  double load_fin = 0.0, comp_fin = 0.0, store_fin = 0.0;
  std::vector<double> retired(static_cast<size_t>(n), 0.0);
  for (int j = 0; j < n; ++j) {
    double start = load_fin;
    if (j >= d) start = std::max(start, retired[static_cast<size_t>(j - d)]);
    load_fin = start + item[0][static_cast<size_t>(j)];
    comp_fin = std::max(comp_fin, load_fin) + item[1][static_cast<size_t>(j)];
    store_fin =
        std::max(store_fin, comp_fin) + item[2][static_cast<size_t>(j)];
    retired[static_cast<size_t>(j)] = store_fin;
  }
  platform_->EndOverlap(store_fin);
  // Always release the layer's comm registrations — a poisoned pipeline
  // must not leak device reservations into the serial replay's BeginLayer.
  executor_->EndLayer();
  return st;
}

Status HongTuEngine::ForwardLayerPipelined(int l) {
  const int m = options_.num_devices;
  const int d = EffectiveDepth();
  Layer* layer = model_.layer(l);
  const kernels::CommPrecision wire = options_.comm_precision;
  const int64_t eb = kernels::CommElemBytes(wire);

  // Per-device outputs live in the pre-sized slot workspaces; slot j%d is
  // free for reuse once batch j has retired from the store stage (the
  // pipeline depth bound), so the lanes never share a tensor.

  // Stage A: deduplicated communication for batch j (Algorithm 2).
  auto load = [&, l](int64_t j) -> Status {
    SimPlatform::SetLane(0);
    return executor_->ForwardLoadSlot(static_cast<int>(j),
                                      static_cast<int>(j % d), h_[l]);
  };
  // Stage B: GNN kernels for batch j on every device.
  auto compute = [&, l](int64_t j) -> Status {
    SimPlatform::SetLane(1);
    const int s = static_cast<int>(j % d);
    std::vector<Tensor>& nbr = executor_->slot_buffers(s);
    for (int i = 0; i < m; ++i) {
      const Chunk& chunk = tl_.chunks[i][j];
      if (chunk.num_dst() == 0) continue;
      const LocalGraph lg = LocalGraph::FromChunk(chunk, chunk_schedules(i, static_cast<int>(j)));
      HT_RETURN_IF_ERROR(layer->Forward(
          lg, nbr[i], &ws_[s].out[i],
          use_cache_[l] ? &ws_[s].agg[i] : nullptr));
      double flops = 0, bytes = 0;
      layer->ForwardCost(lg, &flops, &bytes);
      platform_->AddGpuCompute(i, flops, bytes);
    }
    platform_->Synchronize();
    return Status::OK();
  };
  // Stage C: stream batch j's representations (and AGGREGATE checkpoints)
  // back to the host buffers (Alg. 1 line 9).
  auto store = [&, l](int64_t j) -> Status {
    SimPlatform::SetLane(2);
    const int s = static_cast<int>(j % d);
    for (int i = 0; i < m; ++i) {
      const Chunk& chunk = tl_.chunks[i][j];
      if (chunk.num_dst() == 0) continue;
      HT_RETURN_IF_ERROR(ScatterRows(ws_[s].out[i], chunk.dst_vertices,
                                     &h_[l + 1], wire, &degrade_));
      platform_->AddH2D(i, chunk.num_dst() * layer->out_dim() * eb);
      if (use_cache_[l]) {
        HT_RETURN_IF_ERROR(ScatterRows(ws_[s].agg[i], chunk.dst_vertices,
                                       &cache_[l], wire, &degrade_));
        platform_->AddH2D(i, chunk.num_dst() * layer->agg_dim() * eb);
      }
    }
    platform_->Synchronize();
    return Status::OK();
  };

  return RunPipelinedLayer(
      layer->in_dim(), /*comm_slots=*/d, d,
      [layer](const Chunk& c) { return ForwardScratchBytes(c, *layer); },
      std::move(load), std::move(compute), std::move(store));
}

Status HongTuEngine::BackwardPass() {
  const int L = model_.num_layers();
  if (options_.resolved_executor() == ExecutorKind::kTaskGraph) {
    const Status st = BackwardPassTaskGraph();
    if (st.ok()) return st;
    HT_RETURN_IF_ERROR(DegradeToSerial(st, "backward task graph"));
    // Serial replay from the top: grad_[L] (the loss gradient) is never
    // mutated by the backward pass, each BackwardLayerSerial starts by
    // re-zeroing grad_[l], and the parameter gradients the poisoned graph
    // partially accumulated are re-zeroed here (the backward pass is their
    // only writer this epoch), so the replay starts from the clean state.
    model_.ZeroGrads();
    for (int l = L - 1; l >= 0; --l) {
      HT_RETURN_IF_ERROR(BackwardLayerSerial(l));
    }
    return Status::OK();
  }
  for (int l = L - 1; l >= 0; --l) {
    if (EffectiveDepth() > 0) {
      const Status st = BackwardLayerPipelined(l);
      if (st.ok()) continue;
      HT_RETURN_IF_ERROR(DegradeToSerial(st, "backward layer " +
                                                 std::to_string(l)));
      // Serial replay: BackwardLayerSerial starts from grad_[l].Zero() and
      // BeginLayer re-zeroes the transition-gradient accumulators. Layer l's
      // parameter gradients were still zero when the pipelined attempt
      // began (only layer l's own backward writes them, once per epoch), so
      // re-zeroing them erases the poisoned attempt's partial accumulation.
      model_.layer(l)->ZeroGrads();
    }
    HT_RETURN_IF_ERROR(BackwardLayerSerial(l));
  }
  return Status::OK();
}

Status HongTuEngine::BackwardLayerSerial(int l) {
  const int m = options_.num_devices;
  const int n = options_.chunks_per_partition;
  Layer* layer = model_.layer(l);
  const bool cached = use_cache_[l];
  SlotWorkspace& slot = ws_[0];
  const kernels::CommPrecision wire = options_.comm_precision;
  const int64_t eb = kernels::CommElemBytes(wire);
  grad_[l].Zero();
  HT_RETURN_IF_ERROR(executor_->BeginLayer(layer->in_dim(), 1, wire,
                                           options_.wire_integrity));
  for (int j = 0; j < n; ++j) {
    if (!cached) {
      // Recomputation path: reload the neighbor representations through
      // the deduplicated communication framework (Fig. 4b).
      HT_RETURN_IF_ERROR(executor_->ForwardLoadSlot(j, 0, h_[l]));
    }
    for (int i = 0; i < m; ++i) {
      const Chunk& chunk = tl_.chunks[i][j];
      Tensor& d_src = slot.d_src[i];
      if (chunk.num_dst() == 0) {
        d_src.EnsureShape(0, layer->in_dim());
        continue;
      }
      const LocalGraph lg = LocalGraph::FromChunk(chunk, chunk_schedules(i, j));

      const int64_t ws = BackwardScratchBytes(chunk, *layer, cached);
      HT_RETURN_IF_ERROR(AllocateWithRetry(&platform_->device(i), ws,
                                           "bwd scratch", &degrade_));
      DeviceAllocation guard(&platform_->device(i), ws);

      // Load destination gradients from host (Alg. 1 line 16).
      Tensor& d_dst = slot.d_dst[i];
      HT_RETURN_IF_ERROR(GatherRows(grad_[l + 1], chunk.dst_vertices, &d_dst,
                                    wire, &degrade_));
      platform_->AddH2D(i, chunk.num_dst() * layer->out_dim() * eb);

      d_src.EnsureShapeZeroed(chunk.num_neighbors(), layer->in_dim());

      if (cached) {
        // Hybrid path (Fig. 4c): reload the AGGREGATE checkpoint, skip
        // the neighbor reload entirely.
        Tensor& agg = slot.agg[i];
        HT_RETURN_IF_ERROR(
            GatherRows(cache_[l], chunk.dst_vertices, &agg, wire, &degrade_));
        platform_->AddH2D(i, chunk.num_dst() * layer->agg_dim() * eb);
        Tensor& dst_rows = slot.dst_rows[i];
        if (layer->needs_dst_h()) {
          HT_RETURN_IF_ERROR(GatherRows(h_[l], chunk.dst_vertices, &dst_rows,
                                        wire, &degrade_));
          platform_->AddH2D(i, chunk.num_dst() * layer->in_dim() * eb);
        } else {
          dst_rows.EnsureShape(0, 0);
        }
        HT_RETURN_IF_ERROR(
            layer->BackwardCached(lg, agg, dst_rows, d_dst, &d_src));
      } else {
        HT_RETURN_IF_ERROR(layer->BackwardRecompute(
            lg, executor_->slot_buffers(0)[i], d_dst, &d_src));
      }
      double flops = 0, bytes = 0;
      layer->BackwardCost(lg, cached, &flops, &bytes);
      platform_->AddGpuCompute(i, flops, bytes);
    }
    platform_->Synchronize();
    // Deduplicated gradient write-back (Alg. 1 line 19 / Alg. 3).
    HT_RETURN_IF_ERROR(
        executor_->BackwardAccumulate(j, slot.d_src, &grad_[l]));
  }
  executor_->EndLayer();
  return Status::OK();
}

Status HongTuEngine::BackwardLayerPipelined(int l) {
  const int m = options_.num_devices;
  const int d = EffectiveDepth();
  Layer* layer = model_.layer(l);
  const bool cached = use_cache_[l];
  const kernels::CommPrecision wire = options_.comm_precision;
  const int64_t eb = kernels::CommElemBytes(wire);
  grad_[l].Zero();

  // Per-(slot, device) gather/gradient buffers come from the pre-sized slot
  // workspaces; the depth bound keeps the three lanes off each other's slot.

  // Stage A: destination gradients + checkpoints (hybrid) or the neighbor
  // reload (recompute) for batch j — all host->device traffic.
  auto load = [&, l](int64_t j) -> Status {
    SimPlatform::SetLane(0);
    const int s = static_cast<int>(j % d);
    if (!cached) {
      HT_RETURN_IF_ERROR(
          executor_->ForwardLoadSlot(static_cast<int>(j), s, h_[l]));
    }
    for (int i = 0; i < m; ++i) {
      const Chunk& chunk = tl_.chunks[i][j];
      if (chunk.num_dst() == 0) continue;
      HT_RETURN_IF_ERROR(GatherRows(grad_[l + 1], chunk.dst_vertices,
                                    &ws_[s].d_dst[i], wire, &degrade_));
      platform_->AddH2D(i, chunk.num_dst() * layer->out_dim() * eb);
      if (cached) {
        HT_RETURN_IF_ERROR(GatherRows(cache_[l], chunk.dst_vertices,
                                      &ws_[s].agg[i], wire, &degrade_));
        platform_->AddH2D(i, chunk.num_dst() * layer->agg_dim() * eb);
        if (layer->needs_dst_h()) {
          HT_RETURN_IF_ERROR(GatherRows(h_[l], chunk.dst_vertices,
                                        &ws_[s].dst_rows[i], wire, &degrade_));
          platform_->AddH2D(i, chunk.num_dst() * layer->in_dim() * eb);
        } else {
          ws_[s].dst_rows[i].EnsureShape(0, 0);
        }
      }
    }
    platform_->Synchronize();
    return Status::OK();
  };
  // Stage B: backward kernels for batch j. The neighbor slot only exists
  // on the recompute path (the hybrid path never loads neighbors, and its
  // BeginLayer registers a single comm slot).
  auto compute = [&, l](int64_t j) -> Status {
    SimPlatform::SetLane(1);
    const int s = static_cast<int>(j % d);
    std::vector<Tensor>* nbr =
        cached ? nullptr : &executor_->slot_buffers(s);
    for (int i = 0; i < m; ++i) {
      const Chunk& chunk = tl_.chunks[i][j];
      Tensor& ds = ws_[s].d_src[i];
      if (chunk.num_dst() == 0) {
        ds.EnsureShape(0, layer->in_dim());
        continue;
      }
      const LocalGraph lg = LocalGraph::FromChunk(chunk, chunk_schedules(i, static_cast<int>(j)));
      ds.EnsureShapeZeroed(chunk.num_neighbors(), layer->in_dim());
      if (cached) {
        HT_RETURN_IF_ERROR(layer->BackwardCached(
            lg, ws_[s].agg[i], ws_[s].dst_rows[i], ws_[s].d_dst[i], &ds));
      } else {
        HT_RETURN_IF_ERROR(
            layer->BackwardRecompute(lg, (*nbr)[i], ws_[s].d_dst[i], &ds));
      }
      double flops = 0, bytes = 0;
      layer->BackwardCost(lg, cached, &flops, &bytes);
      platform_->AddGpuCompute(i, flops, bytes);
    }
    platform_->Synchronize();
    return Status::OK();
  };
  // Stage C: deduplicated gradient write-back for batch j (Alg. 3). Runs
  // strictly in batch order, so transition-gradient slot reuse and the
  // host-side accumulation order match the serial path exactly.
  auto store = [&, l](int64_t j) -> Status {
    SimPlatform::SetLane(2);
    return executor_->BackwardAccumulate(
        static_cast<int>(j), ws_[static_cast<size_t>(j % d)].d_src,
        &grad_[l]);
  };

  return RunPipelinedLayer(
      layer->in_dim(), /*comm_slots=*/cached ? 1 : d, d,
      [layer, cached](const Chunk& c) {
        return BackwardScratchBytes(c, *layer, cached);
      },
      std::move(load), std::move(compute), std::move(store));
}

void HongTuEngine::BuildTaskDeps() {
  const int m = options_.num_devices;
  const int n = options_.chunks_per_partition;
  const int64_t nv = ds_->graph.num_vertices();

  // Each vertex is owned by exactly one chunk; its batch index is the
  // forward store (and the h^{l+1} row write) that produces it.
  std::vector<int32_t> owner_batch(static_cast<size_t>(nv), -1);
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      for (VertexId v : tl_.chunks[i][j].dst_vertices) {
        owner_batch[static_cast<size_t>(v)] = j;
      }
    }
  }

  // Forward: batch j's loads read h^l rows only for *fresh* transition
  // entries (reused[p] == 1 rows were fetched by an earlier batch's load,
  // which the within-layer load chain already orders). The producing
  // batches of those rows are the cross-layer dependencies.
  fwd_dep_batches_.assign(static_cast<size_t>(n), {});
  std::vector<uint8_t> mark(static_cast<size_t>(n), 0);
  for (int j = 0; j < n; ++j) {
    std::fill(mark.begin(), mark.end(), 0);
    for (int i = 0; i < m; ++i) {
      const TransitionStep& step = plan_.transition[i][j];
      for (size_t p = 0; p < step.vertices.size(); ++p) {
        if (step.reused[p]) continue;
        const int32_t b = owner_batch[static_cast<size_t>(step.vertices[p])];
        if (b >= 0) mark[static_cast<size_t>(b)] = 1;
      }
    }
    for (int b = 0; b < n; ++b) {
      if (mark[static_cast<size_t>(b)]) fwd_dep_batches_[j].push_back(b);
    }
  }

  // Backward: grad^{l+1}[v] is complete once the *last* flush of v's
  // transition slot retired (a vertex can flush more than once across
  // batches; only the final one matters). Backward stores are chained in
  // batch order, so one edge from the max producing batch covers all.
  std::vector<int32_t> final_flush(static_cast<size_t>(nv), -1);
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      const TransitionStep& step = plan_.transition[i][j];
      for (size_t p = 0; p < step.vertices.size(); ++p) {
        if (!step.flush[p]) continue;
        int32_t& f = final_flush[static_cast<size_t>(step.vertices[p])];
        f = std::max(f, j);
      }
    }
  }
  bwd_dep_batch_.assign(static_cast<size_t>(n), -1);
  for (int j = 0; j < n; ++j) {
    int32_t dep = -1;
    for (int i = 0; i < m; ++i) {
      for (VertexId v : tl_.chunks[i][j].dst_vertices) {
        dep = std::max(dep, final_flush[static_cast<size_t>(v)]);
      }
    }
    bwd_dep_batch_[j] = dep;
  }
}

Status HongTuEngine::ForwardPassTaskGraph() {
  const int m = options_.num_devices;
  const int n = options_.chunks_per_partition;
  const int L = model_.num_layers();
  const int S = WorkspaceSlots();
  const kernels::CommPrecision wire = options_.comm_precision;
  const int64_t eb = kernels::CommElemBytes(wire);
  if (fwd_dep_batches_.empty()) BuildTaskDeps();

  // One worst-case chunk working set per buffer-slot token per device,
  // reserved for the whole pass: the compute side of the same in-flight
  // budget BeginLayerCtx charges on the comm side.
  std::vector<DeviceAllocation> scratch;
  scratch.reserve(static_cast<size_t>(m));
  for (int i = 0; i < m; ++i) {
    int64_t ws = 0;
    for (int l = 0; l < L; ++l) {
      const Layer* layer = model_.layer(l);
      for (int j = 0; j < n; ++j) {
        ws = std::max(ws, ForwardScratchBytes(tl_.chunks[i][j], *layer));
      }
    }
    HT_RETURN_IF_ERROR(AllocateWithRetry(&platform_->device(i), S * ws,
                                         "taskgraph scratch", &degrade_));
    scratch.emplace_back(&platform_->device(i), S * ws);
  }

  TaskGraph tg;
  TaskGraph* tgp = &tg;
  const TaskGraph::PoolId pool = tg.AddTokenPool(S);
  std::vector<TaskGraph::NodeId> prev_store;  // layer l-1 stores, by batch
  TaskGraph::NodeId prev_end[2] = {-1, -1};
  for (int l = 0; l < L; ++l) {
    Layer* layer = model_.layer(l);
    const int ctx = l % 2;
    const bool cache_l = use_cache_[l];

    TaskGraph::NodeOptions bo;
    bo.label = "fwd begin l" + std::to_string(l);
    const TaskGraph::NodeId begin = tg.AddNode(
        [this, layer, ctx, wire, S](const TaskGraph::NodeContext& nc) {
          SimPlatform::SetTask(nc.node);
          return executor_->BeginLayerCtx(ctx, layer->in_dim(), S, wire,
                                          options_.wire_integrity);
        },
        bo);
    // Layer l reuses layer l-2's comm context; begin must wait for its end.
    if (prev_end[ctx] >= 0) tg.AddEdge(prev_end[ctx], begin);

    std::vector<TaskGraph::NodeId> stores(static_cast<size_t>(n), -1);
    TaskGraph::NodeId prev_load = -1;
    TaskGraph::NodeId prev_comp = -1;
    for (int j = 0; j < n; ++j) {
      TaskGraph::NodeOptions lo;
      lo.label = "fwd load l" + std::to_string(l) + " b" + std::to_string(j);
      lo.acquires = pool;
      lo.sim_resource = 0;
      const TaskGraph::NodeId load = tg.AddNode(
          [this, ctx, l, j](const TaskGraph::NodeContext& nc) {
            SimPlatform::SetTask(nc.node);
            return executor_->ForwardLoadSlotCtx(ctx, j, nc.token, h_[l]);
          },
          lo);
      tg.AddEdge(begin, load);
      // Transition slots advance in place, so loads chain in batch order.
      if (prev_load >= 0) tg.AddEdge(prev_load, load);
      if (l > 0) {
        for (int jd : fwd_dep_batches_[j]) tg.AddEdge(prev_store[jd], load);
      }
      prev_load = load;

      TaskGraph::NodeOptions co;
      co.label = "fwd comp l" + std::to_string(l) + " b" + std::to_string(j);
      co.sim_resource = 1;
      const TaskGraph::NodeId comp = tg.AddNode(
          [this, tgp, layer, ctx, l, j, m, cache_l,
           load](const TaskGraph::NodeContext& nc) -> Status {
            SimPlatform::SetTask(nc.node);
            const int s = tgp->TokenOf(load);
            std::vector<Tensor>& nbr = executor_->slot_buffers_ctx(ctx, s);
            for (int i = 0; i < m; ++i) {
              const Chunk& chunk = tl_.chunks[i][j];
              if (chunk.num_dst() == 0) continue;
              const LocalGraph lg =
                  LocalGraph::FromChunk(chunk, chunk_schedules(i, j));
              HT_RETURN_IF_ERROR(
                  layer->Forward(lg, nbr[i], &ws_[s].out[i],
                                 cache_l ? &ws_[s].agg[i] : nullptr));
              double flops = 0, bytes = 0;
              layer->ForwardCost(lg, &flops, &bytes);
              platform_->AddGpuCompute(i, flops, bytes);
            }
            platform_->Synchronize();
            return Status::OK();
          },
          co);
      tg.AddEdge(load, comp);
      // Computes of one layer chain in batch order: the layer object itself
      // is shared mutable state (GAT scratch today, parameter gradients in
      // the backward), and the analytic model serializes the GPU resource
      // anyway, so the chain costs no modeled time.
      if (prev_comp >= 0) tg.AddEdge(prev_comp, comp);
      prev_comp = comp;

      TaskGraph::NodeOptions so;
      so.label = "fwd store l" + std::to_string(l) + " b" + std::to_string(j);
      so.releases_token_of = load;
      so.sim_resource = 2;
      const TaskGraph::NodeId store = tg.AddNode(
          [this, tgp, layer, l, j, m, cache_l, wire, eb,
           load](const TaskGraph::NodeContext& nc) -> Status {
            SimPlatform::SetTask(nc.node);
            const int s = tgp->TokenOf(load);
            for (int i = 0; i < m; ++i) {
              const Chunk& chunk = tl_.chunks[i][j];
              if (chunk.num_dst() == 0) continue;
              HT_RETURN_IF_ERROR(ScatterRows(ws_[s].out[i],
                                             chunk.dst_vertices, &h_[l + 1],
                                             wire, &degrade_));
              platform_->AddH2D(i, chunk.num_dst() * layer->out_dim() * eb);
              if (cache_l) {
                HT_RETURN_IF_ERROR(ScatterRows(ws_[s].agg[i],
                                               chunk.dst_vertices, &cache_[l],
                                               wire, &degrade_));
                platform_->AddH2D(i, chunk.num_dst() * layer->agg_dim() * eb);
              }
            }
            platform_->Synchronize();
            return Status::OK();
          },
          so);
      tg.AddEdge(comp, store);
      stores[static_cast<size_t>(j)] = store;
    }

    TaskGraph::NodeOptions eo;
    eo.label = "fwd end l" + std::to_string(l);
    const TaskGraph::NodeId end = tg.AddNode(
        [this, ctx](const TaskGraph::NodeContext& nc) {
          SimPlatform::SetTask(nc.node);
          executor_->EndLayerCtx(ctx);
          return Status::OK();
        },
        eo);
    for (TaskGraph::NodeId s : stores) tg.AddEdge(s, end);
    prev_end[ctx] = end;
    prev_store = std::move(stores);
  }

  platform_->BeginTaskRegion();
  const Status st = tg.Run();
  std::vector<double> busy(static_cast<size_t>(tg.num_nodes()), 0.0);
  for (int nid = 0; nid < tg.num_nodes(); ++nid) {
    busy[static_cast<size_t>(nid)] = platform_->TaskBusySeconds(nid);
  }
  platform_->EndTaskRegion(tg.ScheduleSeconds(busy));
  // A poisoned graph may have skipped its end nodes; the serial fallback's
  // BeginLayer must see clean devices either way.
  executor_->EndLayerCtx(0);
  executor_->EndLayerCtx(1);
  return st;
}

Status HongTuEngine::BackwardPassTaskGraph() {
  const int m = options_.num_devices;
  const int n = options_.chunks_per_partition;
  const int L = model_.num_layers();
  const int S = WorkspaceSlots();
  const kernels::CommPrecision wire = options_.comm_precision;
  const int64_t eb = kernels::CommElemBytes(wire);
  if (fwd_dep_batches_.empty()) BuildTaskDeps();

  std::vector<DeviceAllocation> scratch;
  scratch.reserve(static_cast<size_t>(m));
  for (int i = 0; i < m; ++i) {
    int64_t ws = 0;
    for (int l = 0; l < L; ++l) {
      const Layer* layer = model_.layer(l);
      for (int j = 0; j < n; ++j) {
        ws = std::max(
            ws, BackwardScratchBytes(tl_.chunks[i][j], *layer, use_cache_[l]));
      }
    }
    HT_RETURN_IF_ERROR(AllocateWithRetry(&platform_->device(i), S * ws,
                                         "taskgraph scratch", &degrade_));
    scratch.emplace_back(&platform_->device(i), S * ws);
  }

  TaskGraph tg;
  TaskGraph* tgp = &tg;
  const TaskGraph::PoolId pool = tg.AddTokenPool(S);
  std::vector<TaskGraph::NodeId> next_store;  // layer l+1 stores, by batch
  TaskGraph::NodeId prev_end[2] = {-1, -1};
  // Built top-down (l = L-1 .. 0) so edges always point forward in id order.
  for (int l = L - 1; l >= 0; --l) {
    Layer* layer = model_.layer(l);
    const int ctx = l % 2;
    const bool cached = use_cache_[l];

    TaskGraph::NodeOptions bo;
    bo.label = "bwd begin l" + std::to_string(l);
    const TaskGraph::NodeId begin = tg.AddNode(
        [this, layer, ctx, l, wire, S, cached](const TaskGraph::NodeContext& nc) {
          SimPlatform::SetTask(nc.node);
          grad_[l].Zero();
          // The hybrid path never loads neighbor slots; one comm slot backs
          // its transition-gradient buffers (as in the pipelined layer).
          return executor_->BeginLayerCtx(ctx, layer->in_dim(),
                                          cached ? 1 : S, wire,
                                          options_.wire_integrity);
        },
        bo);
    if (prev_end[ctx] >= 0) tg.AddEdge(prev_end[ctx], begin);

    std::vector<TaskGraph::NodeId> stores(static_cast<size_t>(n), -1);
    TaskGraph::NodeId prev_load = -1;
    TaskGraph::NodeId prev_comp = -1;
    TaskGraph::NodeId prev_store_node = -1;
    for (int j = 0; j < n; ++j) {
      TaskGraph::NodeOptions lo;
      lo.label = "bwd load l" + std::to_string(l) + " b" + std::to_string(j);
      lo.acquires = pool;
      lo.sim_resource = 0;
      const TaskGraph::NodeId load = tg.AddNode(
          [this, layer, ctx, l, j, m, cached, wire,
           eb](const TaskGraph::NodeContext& nc) -> Status {
            SimPlatform::SetTask(nc.node);
            const int s = nc.token;
            if (!cached) {
              // Recomputation path: reload the neighbor representations
              // through the deduplicated communication framework.
              HT_RETURN_IF_ERROR(
                  executor_->ForwardLoadSlotCtx(ctx, j, s, h_[l]));
            }
            for (int i = 0; i < m; ++i) {
              const Chunk& chunk = tl_.chunks[i][j];
              if (chunk.num_dst() == 0) continue;
              HT_RETURN_IF_ERROR(GatherRows(grad_[l + 1], chunk.dst_vertices,
                                            &ws_[s].d_dst[i], wire,
                                            &degrade_));
              platform_->AddH2D(i, chunk.num_dst() * layer->out_dim() * eb);
              if (cached) {
                HT_RETURN_IF_ERROR(GatherRows(cache_[l], chunk.dst_vertices,
                                              &ws_[s].agg[i], wire,
                                              &degrade_));
                platform_->AddH2D(i, chunk.num_dst() * layer->agg_dim() * eb);
                if (layer->needs_dst_h()) {
                  HT_RETURN_IF_ERROR(GatherRows(h_[l], chunk.dst_vertices,
                                                &ws_[s].dst_rows[i], wire,
                                                &degrade_));
                  platform_->AddH2D(i,
                                    chunk.num_dst() * layer->in_dim() * eb);
                } else {
                  ws_[s].dst_rows[i].EnsureShape(0, 0);
                }
              }
            }
            platform_->Synchronize();
            return Status::OK();
          },
          lo);
      tg.AddEdge(begin, load);
      // Loads chain in batch order on both paths: the recompute path
      // advances transition slots in place, and the chain also pins token
      // acquisition to batch order, which the store chain's in-order token
      // release relies on for deadlock freedom.
      if (prev_load >= 0) tg.AddEdge(prev_load, load);
      if (l < L - 1 && bwd_dep_batch_[j] >= 0) {
        tg.AddEdge(next_store[static_cast<size_t>(bwd_dep_batch_[j])], load);
      }
      prev_load = load;

      TaskGraph::NodeOptions co;
      co.label = "bwd comp l" + std::to_string(l) + " b" + std::to_string(j);
      co.sim_resource = 1;
      const TaskGraph::NodeId comp = tg.AddNode(
          [this, tgp, layer, ctx, j, m, cached,
           load](const TaskGraph::NodeContext& nc) -> Status {
            SimPlatform::SetTask(nc.node);
            const int s = tgp->TokenOf(load);
            for (int i = 0; i < m; ++i) {
              const Chunk& chunk = tl_.chunks[i][j];
              Tensor& ds = ws_[s].d_src[i];
              if (chunk.num_dst() == 0) {
                ds.EnsureShape(0, layer->in_dim());
                continue;
              }
              const LocalGraph lg =
                  LocalGraph::FromChunk(chunk, chunk_schedules(i, j));
              ds.EnsureShapeZeroed(chunk.num_neighbors(), layer->in_dim());
              if (cached) {
                HT_RETURN_IF_ERROR(layer->BackwardCached(
                    lg, ws_[s].agg[i], ws_[s].dst_rows[i], ws_[s].d_dst[i],
                    &ds));
              } else {
                HT_RETURN_IF_ERROR(layer->BackwardRecompute(
                    lg, executor_->slot_buffers_ctx(ctx, s)[i],
                    ws_[s].d_dst[i], &ds));
              }
              double flops = 0, bytes = 0;
              layer->BackwardCost(lg, cached, &flops, &bytes);
              platform_->AddGpuCompute(i, flops, bytes);
            }
            platform_->Synchronize();
            return Status::OK();
          },
          co);
      tg.AddEdge(load, comp);
      // Same-layer computes chain: parameter-gradient accumulation (dw, db)
      // lives on the shared layer object, so its order is pinned by graph
      // structure — fp32 sums match the serial loop bitwise.
      if (prev_comp >= 0) tg.AddEdge(prev_comp, comp);
      prev_comp = comp;

      TaskGraph::NodeOptions so;
      so.label = "bwd store l" + std::to_string(l) + " b" + std::to_string(j);
      so.releases_token_of = load;
      so.sim_resource = 2;
      const TaskGraph::NodeId store = tg.AddNode(
          [this, tgp, ctx, l, j, load](const TaskGraph::NodeContext& nc) {
            SimPlatform::SetTask(nc.node);
            const int s = tgp->TokenOf(load);
            return executor_->BackwardAccumulateCtx(ctx, j, ws_[s].d_src,
                                                    &grad_[l]);
          },
          so);
      tg.AddEdge(comp, store);
      // The batch-order store chain *is* the retire-order-independent
      // accumulation contract: gradient retirement order is pinned by graph
      // structure, never by thread schedule, so fp32 sums match the serial
      // loop bitwise.
      if (prev_store_node >= 0) tg.AddEdge(prev_store_node, store);
      prev_store_node = store;
      stores[static_cast<size_t>(j)] = store;
    }

    TaskGraph::NodeOptions eo;
    eo.label = "bwd end l" + std::to_string(l);
    const TaskGraph::NodeId end = tg.AddNode(
        [this, ctx](const TaskGraph::NodeContext& nc) {
          SimPlatform::SetTask(nc.node);
          executor_->EndLayerCtx(ctx);
          return Status::OK();
        },
        eo);
    tg.AddEdge(prev_store_node, end);
    prev_end[ctx] = end;
    next_store = std::move(stores);
  }

  platform_->BeginTaskRegion();
  const Status st = tg.Run();
  std::vector<double> busy(static_cast<size_t>(tg.num_nodes()), 0.0);
  for (int nid = 0; nid < tg.num_nodes(); ++nid) {
    busy[static_cast<size_t>(nid)] = platform_->TaskBusySeconds(nid);
  }
  platform_->EndTaskRegion(tg.ScheduleSeconds(busy));
  executor_->EndLayerCtx(0);
  executor_->EndLayerCtx(1);
  return st;
}

Status HongTuEngine::AllReduceAndStep() {
  // Parameters are replicated across devices; gradients are synchronized
  // with a ring all-reduce (Alg. 1 line 21). In this single-process engine
  // the gradient tensors are already global sums, so only traffic is added.
  const int m = options_.num_devices;
  const int64_t param_bytes = model_.ParamBytes();
  for (int i = 0; i < m; ++i) {
    platform_->AddD2D(i, 2 * param_bytes * (m - 1) / std::max(1, m));
  }
  platform_->Synchronize();
  std::vector<const Tensor*> grads;
  for (Tensor* g : model_.AllGrads()) grads.push_back(g);
  return adam_.Step(grads);
}

Result<EpochStats> HongTuEngine::TrainEpoch() {
  const double w0 = NowSeconds();
  platform_->ResetEpoch();
  platform_->ResetPeaks();
  degrade_.ResetEpoch();
  model_.ZeroGrads();

  HT_RETURN_IF_ERROR(ForwardPass());

  // Downstream task (Alg. 1 lines 10-11) on the host.
  const int L = model_.num_layers();
  const std::vector<VertexId> train = ds_->VerticesWithRole(SplitRole::kTrain);
  LossResult loss = SoftmaxCrossEntropy(h_[L], ds_->labels, train, &grad_[L]);
  platform_->AddCpuAccum(static_cast<int64_t>(train.size()) *
                         model_.config().dims.back() * kF32);
  platform_->Synchronize();

  HT_RETURN_IF_ERROR(BackwardPass());
  HT_RETURN_IF_ERROR(AllReduceAndStep());

  EpochStats stats;
  stats.loss = loss.loss;
  stats.train_accuracy = loss.accuracy;
  stats.time = platform_->time();
  stats.bytes = platform_->bytes();
  stats.peak_device_bytes = platform_->MaxDevicePeak();
  stats.wall_seconds = NowSeconds() - w0;
  stats.host_peak_bytes = platform_->HostPeakBytes();
  stats.host_alloc_count = platform_->HostAllocCount();
  stats.host_pool_hits = platform_->HostPoolHits();
  stats.recovery = degrade_.SnapshotEpoch();
  return stats;
}

Result<double> HongTuEngine::EvaluateAccuracy(SplitRole role) {
  HT_RETURN_IF_ERROR(ForwardPass());
  const int L = model_.num_layers();
  return Accuracy(h_[L], ds_->labels, ds_->VerticesWithRole(role));
}

}  // namespace hongtu
