#include "hongtu/engine/hongtu_engine.h"

#include <chrono>
#include <cstring>

#include "hongtu/common/logging.h"
#include "hongtu/common/parallel.h"

namespace hongtu {

namespace {

constexpr int64_t kF32 = static_cast<int64_t>(sizeof(float));

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Copies selected host rows into a dense device tensor.
void GatherRows(const Tensor& host, const std::vector<VertexId>& rows,
                Tensor* out) {
  const int64_t dim = host.cols();
  if (out->rows() != static_cast<int64_t>(rows.size()) || out->cols() != dim) {
    *out = Tensor(static_cast<int64_t>(rows.size()), dim);
  }
  ParallelForChunked(0, static_cast<int64_t>(rows.size()),
                     [&](int64_t lo, int64_t hi) {
                       for (int64_t r = lo; r < hi; ++r) {
                         std::memcpy(out->row(r), host.row(rows[r]),
                                     static_cast<size_t>(dim) * sizeof(float));
                       }
                     });
}

/// Writes a dense device tensor back to selected host rows.
void ScatterRows(const Tensor& dev, const std::vector<VertexId>& rows,
                 Tensor* host) {
  const int64_t dim = host->cols();
  ParallelForChunked(0, static_cast<int64_t>(rows.size()),
                     [&](int64_t lo, int64_t hi) {
                       for (int64_t r = lo; r < hi; ++r) {
                         std::memcpy(host->row(rows[r]), dev.row(r),
                                     static_cast<size_t>(dim) * sizeof(float));
                       }
                     });
}

}  // namespace

Result<std::unique_ptr<HongTuEngine>> HongTuEngine::Create(
    const Dataset* dataset, ModelConfig model_config, HongTuOptions options) {
  if (dataset == nullptr) {
    return Status::Invalid("HongTuEngine: null dataset");
  }
  if (model_config.dims.empty() ||
      model_config.dims.front() != dataset->feature_dim()) {
    return Status::Invalid("HongTuEngine: model input dim must match dataset "
                           "feature dim");
  }
  auto engine = std::unique_ptr<HongTuEngine>(new HongTuEngine());
  engine->ds_ = dataset;
  engine->options_ = options;
  HT_ASSIGN_OR_RETURN(engine->model_, GnnModel::Create(model_config));
  engine->adam_ = Adam(options.adam);
  for (Tensor* p : engine->model_.AllParams()) engine->adam_.Register(p);

  // ---- Preprocessing: 2-level partition, reorganization, dedup plan.
  const double t0 = NowSeconds();
  TwoLevelOptions tlo;
  tlo.metis.seed = options.partition_seed;
  HT_ASSIGN_OR_RETURN(
      engine->tl_,
      BuildTwoLevelPartition(dataset->graph, options.num_devices,
                             options.chunks_per_partition, tlo));
  const double t1 = NowSeconds();
  if (options.reorganize && options.dedup != DedupLevel::kNone) {
    HT_RETURN_IF_ERROR(ReorganizePartition(&engine->tl_).status());
  }
  HT_ASSIGN_OR_RETURN(engine->plan_,
                      BuildDedupPlan(engine->tl_, options.dedup));
  const double t2 = NowSeconds();
  engine->partition_seconds_ = t1 - t0;
  engine->dedup_preprocess_seconds_ = t2 - t1;

  engine->platform_ = std::make_unique<SimPlatform>(
      options.num_devices, options.device_capacity_bytes,
      options.interconnect);
  engine->executor_ = std::make_unique<CommExecutor>(
      &engine->tl_, &engine->plan_, engine->platform_.get());

  // ---- Host buffers (Algorithm 1 line 3): h^l and grad h^l for all layers,
  // plus AGGREGATE checkpoints for cacheable layers under the hybrid policy.
  const int64_t nv = dataset->graph.num_vertices();
  const int L = engine->model_.num_layers();
  engine->h_.reserve(L + 1);
  engine->grad_.reserve(L + 1);
  for (int l = 0; l <= L; ++l) {
    engine->h_.emplace_back(nv, model_config.dims[l]);
    engine->grad_.emplace_back(nv, model_config.dims[l]);
  }
  HT_RETURN_IF_ERROR(engine->h_[0].CopyFrom(dataset->features));
  engine->cache_.resize(L);
  engine->use_cache_.resize(L);
  for (int l = 0; l < L; ++l) {
    Layer* layer = engine->model_.layer(l);
    engine->use_cache_[l] = options.hybrid_cache && layer->cacheable();
    if (engine->use_cache_[l]) {
      engine->cache_[l] = Tensor(nv, layer->agg_dim());
    }
  }
  return engine;
}

Status HongTuEngine::ForwardPass() {
  const int L = model_.num_layers();
  const int m = options_.num_devices;
  const int n = options_.chunks_per_partition;
  std::vector<Tensor> nbr_bufs;

  for (int l = 0; l < L; ++l) {
    Layer* layer = model_.layer(l);
    HT_RETURN_IF_ERROR(executor_->BeginLayer(layer->in_dim()));
    for (int j = 0; j < n; ++j) {
      HT_RETURN_IF_ERROR(executor_->ForwardLoad(j, h_[l], &nbr_bufs));
      for (int i = 0; i < m; ++i) {
        const Chunk& chunk = tl_.chunks[i][j];
        if (chunk.num_dst() == 0) continue;
        const LocalGraph lg = LocalGraph::FromChunk(chunk);

        // Per-batch working memory on the device.
        const int64_t ws = (chunk.num_dst() *
                                (layer->agg_dim() + 2 * layer->out_dim()) +
                            (layer->cacheable() ? 0
                                                : chunk.num_edges() * 3 +
                                                      chunk.num_neighbors() *
                                                          layer->out_dim())) *
                           kF32;
        HT_RETURN_IF_ERROR(platform_->device(i).Allocate(ws, "fwd scratch"));
        DeviceAllocation guard(&platform_->device(i), ws);

        Tensor dst_h;
        Tensor agg;
        HT_RETURN_IF_ERROR(layer->Forward(
            lg, nbr_bufs[i], &dst_h, use_cache_[l] ? &agg : nullptr));

        // Copy the new representations back to host (Alg. 1 line 9).
        ScatterRows(dst_h, chunk.dst_vertices, &h_[l + 1]);
        platform_->AddH2D(i, chunk.num_dst() * layer->out_dim() * kF32);
        if (use_cache_[l]) {
          // Cache the AGGREGATE checkpoint in host memory (§4.2).
          ScatterRows(agg, chunk.dst_vertices, &cache_[l]);
          platform_->AddH2D(i, chunk.num_dst() * layer->agg_dim() * kF32);
        }
        double flops = 0, bytes = 0;
        layer->ForwardCost(lg, &flops, &bytes);
        platform_->AddGpuCompute(i, flops, bytes);
      }
      platform_->Synchronize();
    }
    executor_->EndLayer();
  }
  return Status::OK();
}

Status HongTuEngine::BackwardPass() {
  const int L = model_.num_layers();
  const int m = options_.num_devices;
  const int n = options_.chunks_per_partition;
  std::vector<Tensor> nbr_bufs;
  std::vector<Tensor> d_srcs(m);

  for (int l = L - 1; l >= 0; --l) {
    Layer* layer = model_.layer(l);
    grad_[l].Zero();
    HT_RETURN_IF_ERROR(executor_->BeginLayer(layer->in_dim()));
    for (int j = 0; j < n; ++j) {
      const bool cached = use_cache_[l];
      if (!cached) {
        // Recomputation path: reload the neighbor representations through
        // the deduplicated communication framework (Fig. 4b).
        HT_RETURN_IF_ERROR(executor_->ForwardLoad(j, h_[l], &nbr_bufs));
      }
      for (int i = 0; i < m; ++i) {
        const Chunk& chunk = tl_.chunks[i][j];
        if (chunk.num_dst() == 0) {
          d_srcs[i] = Tensor(0, layer->in_dim());
          continue;
        }
        const LocalGraph lg = LocalGraph::FromChunk(chunk);

        // Neighbor-data and neighbor-gradient rows live in the executor's
        // merged comm buffers; only per-destination scratch and (for the
        // recompute path) regenerated edge state count here.
        const int64_t ws =
            (chunk.num_dst() * (layer->agg_dim() + 3 * layer->out_dim()) +
             (cached ? 0 : chunk.num_edges() * 3 + 2 * chunk.num_neighbors() *
                                                       layer->out_dim())) *
            kF32;
        HT_RETURN_IF_ERROR(platform_->device(i).Allocate(ws, "bwd scratch"));
        DeviceAllocation guard(&platform_->device(i), ws);

        // Load destination gradients from host (Alg. 1 line 16).
        Tensor d_dst;
        GatherRows(grad_[l + 1], chunk.dst_vertices, &d_dst);
        platform_->AddH2D(i, chunk.num_dst() * layer->out_dim() * kF32);

        Tensor& d_src = d_srcs[i];
        if (d_src.rows() != chunk.num_neighbors() ||
            d_src.cols() != layer->in_dim()) {
          d_src = Tensor(chunk.num_neighbors(), layer->in_dim());
        } else {
          d_src.Zero();
        }

        if (cached) {
          // Hybrid path (Fig. 4c): reload the AGGREGATE checkpoint, skip
          // the neighbor reload entirely.
          Tensor agg;
          GatherRows(cache_[l], chunk.dst_vertices, &agg);
          platform_->AddH2D(i, chunk.num_dst() * layer->agg_dim() * kF32);
          Tensor dst_h;
          if (layer->needs_dst_h()) {
            GatherRows(h_[l], chunk.dst_vertices, &dst_h);
            platform_->AddH2D(i, chunk.num_dst() * layer->in_dim() * kF32);
          }
          HT_RETURN_IF_ERROR(
              layer->BackwardCached(lg, agg, dst_h, d_dst, &d_src));
        } else {
          HT_RETURN_IF_ERROR(
              layer->BackwardRecompute(lg, nbr_bufs[i], d_dst, &d_src));
        }
        double flops = 0, bytes = 0;
        layer->BackwardCost(lg, cached, &flops, &bytes);
        platform_->AddGpuCompute(i, flops, bytes);
      }
      platform_->Synchronize();
      // Deduplicated gradient write-back (Alg. 1 line 19 / Alg. 3).
      HT_RETURN_IF_ERROR(executor_->BackwardAccumulate(j, d_srcs, &grad_[l]));
    }
    executor_->EndLayer();
  }
  return Status::OK();
}

Status HongTuEngine::AllReduceAndStep() {
  // Parameters are replicated across devices; gradients are synchronized
  // with a ring all-reduce (Alg. 1 line 21). In this single-process engine
  // the gradient tensors are already global sums, so only traffic is added.
  const int m = options_.num_devices;
  const int64_t param_bytes = model_.ParamBytes();
  for (int i = 0; i < m; ++i) {
    platform_->AddD2D(i, 2 * param_bytes * (m - 1) / std::max(1, m));
  }
  platform_->Synchronize();
  std::vector<const Tensor*> grads;
  for (Tensor* g : model_.AllGrads()) grads.push_back(g);
  return adam_.Step(grads);
}

Result<EpochStats> HongTuEngine::TrainEpoch() {
  const double w0 = NowSeconds();
  platform_->ResetEpoch();
  platform_->ResetPeaks();
  model_.ZeroGrads();

  HT_RETURN_IF_ERROR(ForwardPass());

  // Downstream task (Alg. 1 lines 10-11) on the host.
  const int L = model_.num_layers();
  const std::vector<VertexId> train = ds_->VerticesWithRole(SplitRole::kTrain);
  LossResult loss = SoftmaxCrossEntropy(h_[L], ds_->labels, train, &grad_[L]);
  platform_->AddCpuAccum(static_cast<int64_t>(train.size()) *
                         model_.config().dims.back() * kF32);
  platform_->Synchronize();

  HT_RETURN_IF_ERROR(BackwardPass());
  HT_RETURN_IF_ERROR(AllReduceAndStep());

  EpochStats stats;
  stats.loss = loss.loss;
  stats.train_accuracy = loss.accuracy;
  stats.time = platform_->time();
  stats.bytes = platform_->bytes();
  stats.peak_device_bytes = platform_->MaxDevicePeak();
  stats.wall_seconds = NowSeconds() - w0;
  return stats;
}

Result<double> HongTuEngine::EvaluateAccuracy(SplitRole role) {
  HT_RETURN_IF_ERROR(ForwardPass());
  const int L = model_.num_layers();
  return Accuracy(h_[L], ds_->labels, ds_->VerticesWithRole(role));
}

}  // namespace hongtu
