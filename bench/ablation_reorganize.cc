// Ablation (DESIGN.md): Algorithm 4's two-phase greedy reorganization vs
// the plain range-order schedule, sweeping chunk counts. Reports the Eq. 4
// host-load volume V_ru before/after, the preprocessing wall cost, and the
// end-to-end simulated epoch improvement. Also demonstrates the cost-model
// guard: the reorganizer never increases V_ru (it keeps the original order
// when the greedy would regress, e.g. on the already-sequential citation
// graph).

#include <cstdio>

#include "bench_util.h"
#include "hongtu/engine/hongtu_engine.h"

using namespace hongtu;

int main() {
  benchutil::PrintTitle(
      "Ablation: Algorithm 4 partition reorganization",
      "V_ru in vertex-rows per layer (lower = less host traffic); epoch = "
      "simulated.");
  const std::vector<int> w = {12, 7, 12, 12, 9, 11, 11, 9};
  benchutil::PrintRow({"Dataset", "Chunks", "V_ru plain", "V_ru reorg",
                       "saved", "ep plain", "ep reorg", "prep"},
                      w);
  benchutil::PrintRule(w);

  for (const char* name : {"it-2004", "ogbn-paper", "friendster"}) {
    for (int mult : {1, 2}) {
      Dataset ds = benchutil::MustLoad(name);
      const int chunks = ds.default_chunks_gcn * mult;
      ModelConfig cfg = ModelConfig::Make(GnnKind::kGcn, ds.feature_dim(),
                                          ds.default_hidden_dim,
                                          ds.num_classes, 2, 42);
      int64_t vru[2] = {0, 0};
      double epoch[2] = {0, 0};
      double prep = 0;
      bool ok = true;
      for (int reorg = 0; reorg < 2 && ok; ++reorg) {
        HongTuOptions o;
        o.num_devices = 4;
        o.chunks_per_partition = chunks;
        o.device_capacity_bytes = 1ll << 40;
        o.reorganize = reorg == 1;
        auto e = HongTuEngine::Create(&ds, cfg, o);
        if (!e.ok()) {
          ok = false;
          break;
        }
        vru[reorg] = e.ValueOrDie()->plan().volumes.v_ru;
        if (reorg == 1) prep = e.ValueOrDie()->dedup_preprocess_seconds();
        auto r = e.ValueOrDie()->TrainEpoch();
        if (!r.ok()) {
          ok = false;
          break;
        }
        epoch[reorg] = r.ValueOrDie().SimSeconds();
      }
      if (!ok) continue;
      const double saved =
          100.0 * static_cast<double>(vru[0] - vru[1]) /
          std::max<int64_t>(1, vru[0]);
      benchutil::PrintRow(
          {ds.name, std::to_string(4 * chunks),
           std::to_string(vru[0]), std::to_string(vru[1]),
           FormatDouble(saved, 1) + "%", FormatSeconds(epoch[0]),
           FormatSeconds(epoch[1]), FormatSeconds(prep)},
          w);
    }
  }
  std::printf("\n'saved' >= 0 always (cost-model guard); gains are largest "
              "on well-mixed graphs\nwith many chunks, ~0 on graphs whose "
              "range order is already sequential.\n");
  return 0;
}
