// Reproduces Table 3: neighbor replication factor alpha under 2..512
// partitions for the three large graphs (scaled generators; the claim under
// test is the growth trend and the per-dataset ordering:
// it-2004 << ogbn-paper < friendster at high partition counts).

#include <cstdio>

#include "bench_util.h"
#include "hongtu/partition/two_level.h"

using namespace hongtu;

int main() {
  const std::vector<std::string> datasets = {"it-2004", "ogbn-paper",
                                             "friendster"};
  // The paper sweeps up to 512 partitions of billion-edge graphs; at
  // reproduction scale chunks would degenerate past ~128.
  const std::vector<int> parts = {2, 4, 8, 16, 32, 64, 128};

  benchutil::PrintTitle(
      "Table 3: neighbor replication factor alpha vs #partitions",
      "Paper row shapes: it-2004 1.23->1.85 (flat), ogbn-paper 1.25->12.3,\n"
      "friendster 1.32->18.1 (steep). Scaled graphs, metis_lite + range "
      "chunking.");
  std::vector<int> w = {12};
  for (size_t i = 0; i < parts.size(); ++i) w.push_back(7);
  std::vector<std::string> header = {"Partitions"};
  for (int p : parts) header.push_back(std::to_string(p));
  benchutil::PrintRow(header, w);
  benchutil::PrintRule(w);

  for (const auto& name : datasets) {
    Dataset ds = benchutil::MustLoad(name);
    std::vector<std::string> row = {ds.name};
    for (int p : parts) {
      // alpha depends on the number of subgraphs m*n; mirror the paper by
      // splitting into p subgraphs total (1 partition x p chunks uses the
      // same range-based splitting the runtime uses).
      auto tl = BuildTwoLevelPartition(ds.graph, 4, std::max(1, p / 4));
      if (!tl.ok()) {
        row.push_back("ERR");
        continue;
      }
      row.push_back(FormatDouble(
          tl.ValueOrDie().ReplicationFactor(ds.graph.num_vertices()), 2));
    }
    benchutil::PrintRow(row, w);
  }
  std::printf("\nEvery doubling of partitions should increase alpha; "
              "friendster grows steepest,\nit-2004 stays near 1 (locality).\n");
  return 0;
}
