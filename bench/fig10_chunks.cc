// Reproduces Figure 10: runtime and peak device memory of HongTu when the
// chunk count grows from the initial setting to 2x/3x/4x, GCN on the three
// large graphs. Claims: 4x chunks cut memory by ~51%-65% while runtime
// grows 1.5x-2.2x (sublinearly), because more chunks increase duplicated
// neighbors (Table 3) and hence host traffic.

#include <cstdio>

#include "bench_util.h"

using namespace hongtu;

int main() {
  benchutil::PrintTitle(
      "Figure 10: runtime & memory vs chunk count, GCN",
      "Normalized to the initial chunk count (IT init=8, OPR/FDS init=32 "
      "per the paper).\nExpected: memory falls ~2x at 4x chunks; runtime "
      "grows sublinearly.");
  const std::vector<int> w = {12, 7, 12, 12, 13, 13};
  benchutil::PrintRow({"Dataset", "Chunks", "Time (sim)", "Peak mem",
                       "Time (norm)", "Mem (norm)"},
                      w);
  benchutil::PrintRule(w);

  for (const char* name : {"it-2004", "ogbn-paper", "friendster"}) {
    Dataset ds = benchutil::MustLoad(name);
    ModelConfig cfg = ModelConfig::Make(GnnKind::kGcn, ds.feature_dim(),
                                        ds.default_hidden_dim, ds.num_classes,
                                        2, 42);
    const int init = ds.default_chunks_gcn;
    double t0 = -1;
    double m0 = -1;
    for (int mult : {1, 2, 3, 4}) {
      EngineConfig o;
      o.num_devices = 4;
      o.chunks_per_partition = init * mult;
      o.device_capacity_bytes = 1ll << 40;
      auto e = Engine::Create(EngineKind::kHongTu, &ds, cfg, o);
      if (!e.ok()) continue;
      auto r = e.ValueOrDie()->RunEpoch();
      if (!r.ok()) continue;
      const double t = r.ValueOrDie().SimSeconds();
      const double m = static_cast<double>(r.ValueOrDie().peak_device_bytes);
      if (mult == 1) {
        t0 = t;
        m0 = m;
      }
      benchutil::PrintRow(
          {ds.name, std::to_string(init * mult), FormatSeconds(t),
           FormatBytes(m), FormatDouble(t / t0, 2) + "x",
           FormatDouble(m / m0, 2) + "x"},
          w);
    }
    benchutil::PrintRule(w);
  }
  return 0;
}
